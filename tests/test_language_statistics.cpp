// Statistical properties of the synthetic language family — the corpus
// must actually carry the phonotactic signal the recognizers model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "corpus/language_model.h"
#include "corpus/phone_inventory.h"

namespace phonolid::corpus {
namespace {

/// Empirical bigram matrix from samples of a language.
std::vector<std::vector<double>> empirical_bigram(const LanguageSpec& lang,
                                                  const PhoneInventory& inv,
                                                  std::size_t num_seqs,
                                                  std::uint64_t seed) {
  const std::size_t n = inv.size();
  std::vector<std::vector<double>> counts(n, std::vector<double>(n, 0.0));
  util::Rng rng(seed);
  for (std::size_t s = 0; s < num_seqs; ++s) {
    const auto seq = lang.sample_sequence(inv, 8.0, rng);
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      counts[seq[i]][seq[i + 1]] += 1.0;
    }
  }
  for (auto& row : counts) {
    double total = 0.0;
    for (double c : row) total += c;
    if (total > 0.0) {
      for (auto& c : row) c /= total;
    }
  }
  return counts;
}

TEST(LanguageStatistics, SampledSequencesFollowTheBigramChain) {
  const auto inv = build_universal_inventory(15, 3);
  const auto lang = build_language(inv, "x", 0.25, 0.8, 7);
  const auto empirical = empirical_bigram(lang, inv, 120, 11);

  // For rows with enough observations, the empirical distribution must be
  // close to the specification in total variation.
  std::size_t checked = 0;
  for (std::size_t p = 0; p < inv.size(); ++p) {
    double mass = 0.0;
    for (double c : empirical[p]) mass += c;
    if (mass == 0.0) continue;  // phone unused by this language
    double tv = 0.0;
    for (std::size_t q = 0; q < inv.size(); ++q) {
      tv += std::abs(empirical[p][q] - lang.bigram()[p][q]);
    }
    if (tv / 2.0 < 0.15) ++checked;
  }
  EXPECT_GT(checked, inv.size() / 2);
}

TEST(LanguageStatistics, SequencesFromDifferentLanguagesAreDistinguishable) {
  // A simple likelihood-ratio classifier on the *true* chains must be able
  // to tell two generated languages apart from their samples — otherwise
  // no recognizer could.
  const auto inv = build_universal_inventory(20, 5);
  const auto a = build_language(inv, "a", 0.25, 0.8, 100);
  const auto b = build_language(inv, "b", 0.25, 0.8, 200);

  const auto loglik = [&](const std::vector<std::size_t>& seq,
                          const LanguageSpec& lang) {
    double lp = std::log(std::max(lang.initial()[seq[0]], 1e-12));
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      lp += std::log(std::max(lang.bigram()[seq[i]][seq[i + 1]], 1e-12));
    }
    return lp;
  };

  util::Rng rng(13);
  std::size_t correct = 0;
  const std::size_t trials = 60;
  for (std::size_t t = 0; t < trials; ++t) {
    const bool from_a = t % 2 == 0;
    const auto seq =
        (from_a ? a : b).sample_sequence(inv, 2.0, rng);
    const bool classified_a = loglik(seq, a) > loglik(seq, b);
    if (classified_a == from_a) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / trials, 0.95);
}

TEST(LanguageStatistics, ShorterSequencesAreHarder) {
  // The duration-tier difficulty ordering the paper's tables rest on.
  const auto inv = build_universal_inventory(20, 5);
  const auto a = build_language(inv, "a", 0.25, 0.8, 300);
  const auto b = build_language(inv, "b", 0.25, 0.8, 400);

  const auto loglik = [&](const std::vector<std::size_t>& seq,
                          const LanguageSpec& lang) {
    if (seq.empty()) return 0.0;
    double lp = 0.0;
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      lp += std::log(std::max(lang.bigram()[seq[i]][seq[i + 1]], 1e-12));
    }
    return lp;
  };

  const auto accuracy_at = [&](double seconds, std::uint64_t seed) {
    util::Rng rng(seed);
    std::size_t correct = 0;
    const std::size_t trials = 300;
    for (std::size_t t = 0; t < trials; ++t) {
      const bool from_a = t % 2 == 0;
      const auto seq = (from_a ? a : b).sample_sequence(inv, seconds, rng);
      if ((loglik(seq, a) > loglik(seq, b)) == from_a) ++correct;
    }
    return static_cast<double>(correct) / trials;
  };

  const double long_acc = accuracy_at(3.0, 17);
  const double short_acc = accuracy_at(0.3, 19);
  EXPECT_GT(long_acc, short_acc);
  EXPECT_GT(long_acc, 0.9);
}

TEST(LanguageStatistics, ConcentrationControlsDistinctness) {
  // Lower Dirichlet concentration -> spikier chains -> more distinct
  // languages (larger pairwise bigram distance on average).
  const auto inv = build_universal_inventory(20, 5);
  const auto dist_at = [&](double concentration) {
    LanguageFamilyConfig cfg;
    cfg.num_languages = 6;
    cfg.concentration = concentration;
    cfg.sibling_stride = 0;
    const auto langs = build_language_family(inv, cfg, 55);
    double total = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < langs.size(); ++i) {
      for (std::size_t j = i + 1; j < langs.size(); ++j) {
        total += LanguageSpec::bigram_distance(langs[i], langs[j]);
        ++pairs;
      }
    }
    return total / static_cast<double>(pairs);
  };
  EXPECT_GT(dist_at(0.1), dist_at(2.0));
}

}  // namespace
}  // namespace phonolid::corpus
