#include "core/dba.h"

#include <gtest/gtest.h>

namespace phonolid::core {
namespace {

/// Builds a score matrix from a row-major initialiser.
util::Matrix scores_from(std::initializer_list<std::initializer_list<float>> rows) {
  util::Matrix m(rows.size(), rows.begin()->size());
  std::size_t r = 0;
  for (const auto& row : rows) {
    std::size_t c = 0;
    for (float v : row) m(r, c++) = v;
    ++r;
  }
  return m;
}

TEST(ComputeVotes, StrictCriterionMatchesEq13) {
  // Utterance 0: class 0 positive, others negative -> vote for 0.
  // Utterance 1: two positives -> no vote (rival not negative).
  // Utterance 2: all negative -> no vote.
  const util::Matrix s = scores_from({{1.0f, -0.5f, -0.2f},
                                      {0.5f, 0.4f, -1.0f},
                                      {-0.1f, -0.2f, -0.3f}});
  const auto votes = compute_votes({&s}, VoteCriterion::kStrict);
  EXPECT_EQ(votes.count(0, 0), 1);
  EXPECT_EQ(votes.count(0, 1), 0);
  EXPECT_EQ(votes.count(1, 0), 0);
  EXPECT_EQ(votes.count(1, 1), 0);
  EXPECT_EQ(votes.count(2, 0), 0);
  EXPECT_TRUE(votes.vote(0, 0, 0));
  EXPECT_FALSE(votes.vote(0, 1, 0));
}

TEST(ComputeVotes, PositiveArgmaxIsLooser) {
  const util::Matrix s = scores_from({{0.5f, 0.4f, -1.0f}});
  const auto strict = compute_votes({&s}, VoteCriterion::kStrict);
  const auto loose = compute_votes({&s}, VoteCriterion::kPositiveArgmax);
  EXPECT_EQ(strict.count(0, 0), 0);
  EXPECT_EQ(loose.count(0, 0), 1);
}

TEST(ComputeVotes, ArgmaxAlwaysVotes) {
  const util::Matrix s = scores_from({{-3.0f, -1.0f, -2.0f}});
  const auto votes = compute_votes({&s}, VoteCriterion::kArgmax);
  EXPECT_EQ(votes.count(0, 1), 1);
}

TEST(ComputeVotes, AccumulatesAcrossSubsystems) {
  const util::Matrix a = scores_from({{1.0f, -1.0f}});
  const util::Matrix b = scores_from({{2.0f, -0.5f}});
  const util::Matrix c = scores_from({{-1.0f, 0.5f}});
  const auto votes = compute_votes({&a, &b, &c}, VoteCriterion::kStrict);
  EXPECT_EQ(votes.count(0, 0), 2);
  EXPECT_EQ(votes.count(0, 1), 1);
  EXPECT_EQ(votes.num_subsystems, 3u);
}

TEST(ComputeVotes, StrictMarginsArePositiveIffVote) {
  const util::Matrix s = scores_from({{1.0f, -0.5f, -0.2f},
                                      {0.5f, 0.4f, -1.0f},
                                      {-0.1f, -0.2f, -0.3f}});
  const auto votes = compute_votes({&s}, VoteCriterion::kStrict);
  // Utterance 0 votes for class 0: margin = min(f_0, -max_rival)
  //   = min(1.0, -(-0.2)) = 0.2.
  EXPECT_NEAR(votes.margin(0, 0, 0), 0.2f, 1e-6f);
  // Class 1 of utterance 0: margin = min(-0.5, -1.0) = -1.0 (no vote).
  EXPECT_NEAR(votes.margin(0, 0, 1), -1.0f, 1e-6f);
  // Utterance 1: rival 0.4 is positive, so class 0's margin is
  //   min(0.5, -0.4) = -0.4 — inside argmax but outside Eq. 13.
  EXPECT_NEAR(votes.margin(0, 1, 0), -0.4f, 1e-6f);
  // Sign convention: margin > 0 exactly when the subsystem voted.
  for (std::size_t j = 0; j < votes.num_utts; ++j) {
    for (std::size_t k = 0; k < votes.num_classes; ++k) {
      EXPECT_EQ(votes.vote(0, j, k), votes.margin(0, j, k) > 0.0f)
          << "utt " << j << " class " << k;
    }
  }
}

TEST(ComputeVotes, MarginSignMatchesVoteForAllCriteria) {
  const util::Matrix s = scores_from({{0.5f, 0.4f, -1.0f},
                                      {-3.0f, -1.0f, -2.0f},
                                      {1.0f, -0.5f, -0.2f}});
  for (const auto criterion :
       {VoteCriterion::kStrict, VoteCriterion::kPositiveArgmax,
        VoteCriterion::kArgmax}) {
    const auto votes = compute_votes({&s}, criterion);
    for (std::size_t j = 0; j < votes.num_utts; ++j) {
      for (std::size_t k = 0; k < votes.num_classes; ++k) {
        EXPECT_EQ(votes.vote(0, j, k), votes.margin(0, j, k) > 0.0f);
      }
    }
  }
}

TEST(ComputeVotes, ArgmaxMarginIsScoreGap) {
  const util::Matrix s = scores_from({{-3.0f, -1.0f, -2.0f}});
  const auto votes = compute_votes({&s}, VoteCriterion::kArgmax);
  // Argmax class 1: margin = f_1 - runner-up = -1 - (-2) = 1.
  EXPECT_NEAR(votes.margin(0, 0, 1), 1.0f, 1e-6f);
  // Class 2: margin = f_2 - best = -2 - (-1) = -1.
  EXPECT_NEAR(votes.margin(0, 0, 2), -1.0f, 1e-6f);
}

TEST(ComputeVotes, ValidatesShapes) {
  const util::Matrix a = scores_from({{1.0f, -1.0f}});
  const util::Matrix b = scores_from({{1.0f, -1.0f}, {0.0f, 0.0f}});
  EXPECT_THROW(compute_votes({&a, &b}), std::invalid_argument);
  EXPECT_THROW(compute_votes({}), std::invalid_argument);
}

VoteResult make_votes(std::initializer_list<std::initializer_list<int>> counts,
                      std::size_t num_subsystems = 6) {
  VoteResult v;
  v.num_utts = counts.size();
  v.num_classes = counts.begin()->size();
  v.num_subsystems = num_subsystems;
  for (const auto& row : counts) {
    for (int c : row) v.counts.push_back(static_cast<std::uint16_t>(c));
  }
  // per_subsystem bits: mark subsystem 0..count-1 as voters for the class.
  v.per_subsystem.assign(num_subsystems,
                         std::vector<std::uint8_t>(v.counts.size(), 0));
  for (std::size_t j = 0; j < v.num_utts; ++j) {
    for (std::size_t k = 0; k < v.num_classes; ++k) {
      const std::uint16_t n = v.counts[j * v.num_classes + k];
      for (std::uint16_t q = 0; q < n && q < num_subsystems; ++q) {
        v.per_subsystem[q][j * v.num_classes + k] = 1;
      }
    }
  }
  return v;
}

TEST(SelectTrdba, ThresholdFiltersUtterances) {
  const auto votes = make_votes({{5, 0, 0}, {3, 0, 0}, {0, 2, 0}, {0, 0, 6}});
  const auto sel3 = select_trdba(votes, 3);
  ASSERT_EQ(sel3.utt_index.size(), 3u);
  EXPECT_EQ(sel3.label[0], 0);
  EXPECT_EQ(sel3.label[1], 0);
  EXPECT_EQ(sel3.label[2], 2);

  const auto sel6 = select_trdba(votes, 6);
  ASSERT_EQ(sel6.utt_index.size(), 1u);
  EXPECT_EQ(sel6.utt_index[0], 3u);
}

TEST(SelectTrdba, MonotoneInThreshold) {
  // Lower thresholds must adopt supersets (Table 1's monotone counts).
  const auto votes =
      make_votes({{6, 0}, {5, 0}, {4, 0}, {3, 0}, {2, 0}, {1, 0}, {0, 0}});
  std::size_t prev = 0;
  for (std::size_t v = 6; v >= 1; --v) {
    const auto sel = select_trdba(votes, v);
    EXPECT_GE(sel.utt_index.size(), prev);
    prev = sel.utt_index.size();
  }
  EXPECT_EQ(prev, 6u);
}

TEST(SelectTrdba, SkipsAmbiguousTies) {
  const auto votes = make_votes({{3, 3, 0}});
  const auto sel = select_trdba(votes, 3);
  EXPECT_TRUE(sel.utt_index.empty());
}

TEST(SelectTrdba, FitCountsMatchVotes) {
  const auto votes = make_votes({{4, 0}, {2, 0}}, 6);
  const auto sel = select_trdba(votes, 2);
  ASSERT_EQ(sel.subsystem_fit_counts.size(), 6u);
  // Subsystems 0 and 1 voted for both adopted utterances; 2 and 3 only for
  // the first; 4 and 5 for none.
  EXPECT_EQ(sel.subsystem_fit_counts[0], 2u);
  EXPECT_EQ(sel.subsystem_fit_counts[1], 2u);
  EXPECT_EQ(sel.subsystem_fit_counts[2], 1u);
  EXPECT_EQ(sel.subsystem_fit_counts[3], 1u);
  EXPECT_EQ(sel.subsystem_fit_counts[4], 0u);
  EXPECT_EQ(sel.subsystem_fit_counts[5], 0u);
}

TEST(SelectTrdba, RejectsZeroThreshold) {
  const auto votes = make_votes({{1, 0}});
  EXPECT_THROW(select_trdba(votes, 0), std::invalid_argument);
}

TEST(SelectionErrorRate, CountsMislabels) {
  TrdbaSelection sel;
  sel.utt_index = {0, 1, 2, 3};
  sel.label = {0, 1, 0, 1};
  const std::vector<std::int32_t> truth = {0, 1, 1, 1};
  EXPECT_NEAR(selection_error_rate(sel, truth), 0.25, 1e-12);
  TrdbaSelection empty;
  EXPECT_EQ(selection_error_rate(empty, truth), 0.0);
}

TEST(ComposeTrdba, M1UsesOnlyAdoptedTestData) {
  std::vector<phonotactic::SparseVec> test_svs(3), train_svs(2);
  std::vector<std::int32_t> train_labels = {0, 1};
  TrdbaSelection sel;
  sel.utt_index = {1, 2};
  sel.label = {1, 0};
  std::vector<const phonotactic::SparseVec*> x;
  std::vector<std::int32_t> y;
  compose_trdba(DbaMode::kM1, sel, test_svs, train_svs, train_labels, x, y);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_EQ(x[0], &test_svs[1]);
  EXPECT_EQ(x[1], &test_svs[2]);
  EXPECT_EQ(y, (std::vector<std::int32_t>{1, 0}));
}

TEST(ComposeTrdba, M2AppendsOriginalTraining) {
  std::vector<phonotactic::SparseVec> test_svs(3), train_svs(2);
  std::vector<std::int32_t> train_labels = {0, 1};
  TrdbaSelection sel;
  sel.utt_index = {0};
  sel.label = {1};
  std::vector<const phonotactic::SparseVec*> x;
  std::vector<std::int32_t> y;
  compose_trdba(DbaMode::kM2, sel, test_svs, train_svs, train_labels, x, y);
  ASSERT_EQ(x.size(), 3u);
  EXPECT_EQ(x[0], &test_svs[0]);
  EXPECT_EQ(x[1], &train_svs[0]);
  EXPECT_EQ(x[2], &train_svs[1]);
  EXPECT_EQ(y, (std::vector<std::int32_t>{1, 0, 1}));
}

TEST(ComposeTrdba, M2EmptySelectionIsJustTraining) {
  std::vector<phonotactic::SparseVec> test_svs(2), train_svs(2);
  std::vector<std::int32_t> train_labels = {0, 1};
  TrdbaSelection sel;
  std::vector<const phonotactic::SparseVec*> x;
  std::vector<std::int32_t> y;
  compose_trdba(DbaMode::kM2, sel, test_svs, train_svs, train_labels, x, y);
  EXPECT_EQ(x.size(), 2u);
}

TEST(DbaModeNames, Strings) {
  EXPECT_STREQ(to_string(DbaMode::kM1), "DBA-M1");
  EXPECT_STREQ(to_string(DbaMode::kM2), "DBA-M2");
}

}  // namespace
}  // namespace phonolid::core
