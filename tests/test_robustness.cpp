// Failure-injection and robustness tests: degenerate inputs must produce
// defined (chance-level) behaviour, never crashes, hangs or NaNs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "backend/fusion.h"
#include "backend/gaussian_backend.h"
#include "backend/lda.h"
#include "decoder/phone_loop_decoder.h"
#include "eval/metrics.h"
#include "util/rng.h"

namespace phonolid {
namespace {

TEST(Robustness, TrialSetSanitisesNonFiniteScores) {
  util::Matrix scores(2, 2);
  scores(0, 0) = std::numeric_limits<float>::quiet_NaN();
  scores(0, 1) = std::numeric_limits<float>::infinity();
  scores(1, 0) = -std::numeric_limits<float>::infinity();
  scores(1, 1) = 1.0f;
  std::vector<std::int32_t> labels = {0, 1};
  const auto trials = eval::TrialSet::from_scores(scores, labels);
  for (double s : trials.target_scores) EXPECT_TRUE(std::isfinite(s));
  for (double s : trials.nontarget_scores) EXPECT_TRUE(std::isfinite(s));
  // NaN target -> pessimistic; inf nontarget -> pessimistic.
  const double eer = eval::equal_error_rate(trials);
  EXPECT_GE(eer, 0.0);
  EXPECT_LE(eer, 1.0);
}

TEST(Robustness, DetCurveTerminatesOnPathologicalScores) {
  eval::TrialSet trials;
  for (int i = 0; i < 100; ++i) {
    trials.target_scores.push_back(i % 2 ? 1e300 : -1e300);
    trials.nontarget_scores.push_back(i % 2 ? -1e300 : 1e300);
  }
  const auto curve = eval::det_curve(trials);
  EXPECT_FALSE(curve.empty());
  EXPECT_LT(curve.size(), 1000u);
}

TEST(Robustness, LdaSurvivesConstantFeatures) {
  // A feature with zero variance everywhere must not blow up the whitening.
  util::Rng rng(3);
  util::Matrix x(60, 4);
  std::vector<std::int32_t> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    y[i] = static_cast<std::int32_t>(i % 2);
    x(i, 0) = static_cast<float>(y[i] + rng.gaussian(0.0, 0.1));
    x(i, 1) = 7.0f;  // constant
    x(i, 2) = 7.0f;  // constant
    x(i, 3) = static_cast<float>(rng.gaussian());
  }
  backend::Lda lda;
  lda.fit(x, y, 2);
  const auto projected = lda.transform(x);
  for (std::size_t i = 0; i < projected.rows(); ++i) {
    for (std::size_t c = 0; c < projected.cols(); ++c) {
      EXPECT_TRUE(std::isfinite(projected(i, c)));
      EXPECT_LT(std::abs(projected(i, c)), 1e6f);
    }
  }
}

TEST(Robustness, GaussianBackendSurvivesHugeInputs) {
  util::Matrix x(20, 2);
  std::vector<std::int32_t> y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    y[i] = static_cast<std::int32_t>(i % 2);
    x(i, 0) = y[i] == 0 ? -1e18f : 1e18f;
    x(i, 1) = 0.0f;
  }
  backend::GaussianBackend backend;
  backend.fit(x, y, 2);
  std::vector<float> probe = {1e18f, 0.0f};
  std::vector<float> lp(2);
  backend.log_posteriors(probe, lp);
  for (float v : lp) EXPECT_TRUE(std::isfinite(v));
}

TEST(Robustness, FusionWithSingleUtterancePerClass) {
  // Minimal dev data: must not crash (quality is allowed to be poor).
  std::vector<util::Matrix> blocks(1);
  blocks[0].resize(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      blocks[0](i, c) = (i == c) ? 1.0f : -1.0f;
    }
  }
  std::vector<std::int32_t> y = {0, 1, 2};
  backend::ScoreFusion fusion;
  EXPECT_NO_THROW(fusion.fit(blocks, y, 3));
  const auto out = fusion.apply(blocks);
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      EXPECT_TRUE(std::isfinite(out(i, c)));
    }
  }
}

/// Minimal acoustic model where one state is impossibly bad everywhere.
class HostileModel final : public am::AcousticModel {
 public:
  explicit HostileModel(am::HmmTopology topo) : topo_(topo) {}
  [[nodiscard]] std::size_t num_states() const noexcept override {
    return topo_.num_states();
  }
  [[nodiscard]] std::size_t feature_dim() const noexcept override { return 1; }
  void score(const util::Matrix& features, util::Matrix& out) const override {
    out.resize(features.rows(), num_states());
    for (std::size_t t = 0; t < out.rows(); ++t) {
      for (std::size_t s = 0; s < out.cols(); ++s) {
        // Phone 0 is catastrophically bad; others near-equal.
        out(t, s) = (topo_.phone_of(s) == 0) ? -1e30f : 0.0f;
      }
    }
  }

 private:
  am::HmmTopology topo_;
};

TEST(Robustness, DecoderHandlesExtremeScoreRanges) {
  am::HmmTopology topo{3, 3};
  HostileModel model(topo);
  decoder::PhoneLoopDecoder dec(
      model, topo, am::HmmTransitions::uniform(topo.num_states(), 2.0), {});
  const auto lattice = dec.decode(util::Matrix(12, 1, 0.0f));
  EXPECT_FALSE(lattice.edges().empty());
  EXPECT_FALSE(lattice.best_path().empty());
  for (std::uint32_t phone : lattice.best_path()) {
    EXPECT_NE(phone, 0u);  // never picks the impossible phone
  }
  const auto occ = lattice.frame_occupancy();
  for (double o : occ) EXPECT_NEAR(o, 1.0, 1e-3);
}

TEST(Robustness, CavgWithMissingClassesInTestSet) {
  // Test labels only cover 2 of 4 classes; Cavg must ignore empty classes.
  util::Matrix llr(4, 4, -1.0f);
  llr(0, 0) = 1.0f;
  llr(1, 0) = 1.0f;
  llr(2, 1) = 1.0f;
  llr(3, 1) = 1.0f;
  std::vector<std::int32_t> y = {0, 0, 1, 1};
  const double c = eval::cavg(llr, y, 4);
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);
  EXPECT_NEAR(c, 0.0, 1e-9);  // perfectly separated on the present classes
}

}  // namespace
}  // namespace phonolid
