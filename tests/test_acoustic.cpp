#include <gtest/gtest.h>

#include <cmath>

#include "acoustic/gmm_lr.h"
#include "acoustic/sdc.h"
#include "corpus/dataset.h"
#include "eval/metrics.h"

namespace phonolid::acoustic {
namespace {

TEST(Sdc, DimensionFormula) {
  EXPECT_EQ(sdc_dim({7, 1, 3, 7}), 7u * 8u);
  EXPECT_EQ(sdc_dim({5, 2, 2, 3}), 5u * 4u);
}

TEST(Sdc, OutputShape) {
  util::Matrix ceps(40, 13);
  const auto out = compute_sdc(ceps, {7, 1, 3, 7});
  EXPECT_EQ(out.rows(), 40u);
  EXPECT_EQ(out.cols(), 56u);
}

TEST(Sdc, StaticsCopied) {
  util::Matrix ceps(10, 8);
  for (std::size_t t = 0; t < 10; ++t) {
    for (std::size_t c = 0; c < 8; ++c) {
      ceps(t, c) = static_cast<float>(t + 10 * c);
    }
  }
  const SdcConfig cfg{7, 1, 3, 2};
  const auto out = compute_sdc(ceps, cfg);
  for (std::size_t t = 0; t < 10; ++t) {
    for (std::size_t c = 0; c < 7; ++c) {
      EXPECT_FLOAT_EQ(out(t, c), ceps(t, c));
    }
  }
}

TEST(Sdc, DeltasOfLinearRampAreConstant) {
  // cepstra(t, c) = t -> every delta = 2*d (interior frames).
  util::Matrix ceps(30, 7);
  for (std::size_t t = 0; t < 30; ++t) {
    for (std::size_t c = 0; c < 7; ++c) ceps(t, c) = static_cast<float>(t);
  }
  const SdcConfig cfg{7, 1, 3, 3};
  const auto out = compute_sdc(ceps, cfg);
  // Frame 5: all blocks interior (5 + 2*3 + 1 = 12 < 30).
  for (std::size_t block = 0; block < 3; ++block) {
    for (std::size_t c = 0; c < 7; ++c) {
      EXPECT_FLOAT_EQ(out(5, 7 * (1 + block) + c), 2.0f);
    }
  }
}

TEST(Sdc, ConstantSignalHasZeroDeltas) {
  util::Matrix ceps(20, 7, 3.0f);
  const auto out = compute_sdc(ceps, {7, 1, 3, 7});
  for (std::size_t t = 0; t < 20; ++t) {
    for (std::size_t j = 7; j < out.cols(); ++j) {
      EXPECT_FLOAT_EQ(out(t, j), 0.0f);
    }
  }
}

TEST(Sdc, RejectsTooFewCepstra) {
  util::Matrix ceps(10, 5);
  EXPECT_THROW(compute_sdc(ceps, {7, 1, 3, 7}), std::invalid_argument);
}

TEST(Sdc, EmptyInput) {
  util::Matrix ceps(0, 13);
  const auto out = compute_sdc(ceps, {7, 1, 3, 7});
  EXPECT_EQ(out.rows(), 0u);
}

TEST(GmmLr, BeatsChanceOnMicroCorpus) {
  corpus::CorpusConfig cfg = corpus::CorpusConfig::preset(util::Scale::kQuick, 99);
  cfg.family.num_languages = 3;
  // Acoustic LR discriminates via per-frame phone inventories, not phone
  // ordering; shrink the subset overlap so the languages are acoustically
  // (not just phonotactically) separable.
  cfg.family.subset_fraction = 0.45;
  cfg.train_utts_per_language = 16;
  cfg.dev_utts_per_language_per_tier = 1;
  cfg.test_utts_per_language_per_tier = 5;
  cfg.num_native_languages = 1;
  cfg.am_train_utts_per_native = 1;
  const auto corpus = corpus::LreCorpus::build(cfg);

  GmmLrConfig lr_cfg;
  lr_cfg.gmm.num_components = 8;
  const auto system = GmmLrSystem::train(corpus.vsm_train(), 3, lr_cfg);
  EXPECT_EQ(system.num_languages(), 3u);

  const util::Matrix scores = system.score_all(corpus.test());
  std::vector<std::int32_t> labels;
  for (const auto& u : corpus.test()) labels.push_back(u.language);
  const double acc = eval::identification_accuracy(scores, labels);
  EXPECT_GT(acc, 0.45);  // chance = 1/3
}

TEST(GmmLr, DeterministicScores) {
  corpus::CorpusConfig cfg = corpus::CorpusConfig::preset(util::Scale::kQuick, 7);
  cfg.family.num_languages = 2;
  cfg.train_utts_per_language = 4;
  cfg.dev_utts_per_language_per_tier = 1;
  cfg.test_utts_per_language_per_tier = 2;
  cfg.num_native_languages = 1;
  cfg.am_train_utts_per_native = 1;
  const auto corpus = corpus::LreCorpus::build(cfg);
  const auto a = GmmLrSystem::train(corpus.vsm_train(), 2, {});
  const auto b = GmmLrSystem::train(corpus.vsm_train(), 2, {});
  const auto sa = a.score_all(corpus.test());
  const auto sb = b.score_all(corpus.test());
  EXPECT_TRUE(sa == sb);
}

TEST(GmmLr, InputValidation) {
  EXPECT_THROW(GmmLrSystem::train({}, 3, {}), std::invalid_argument);
  corpus::Dataset bad(1);
  bad[0].language = -1;
  bad[0].samples.assign(4000, 0.1f);
  EXPECT_THROW(GmmLrSystem::train(bad, 3, {}), std::invalid_argument);
}

}  // namespace
}  // namespace phonolid::acoustic
