#include "dsp/features.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace phonolid::dsp {
namespace {

util::Matrix random_features(std::size_t frames, std::size_t dim,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  util::Matrix m(frames, dim);
  for (std::size_t t = 0; t < frames; ++t) {
    for (std::size_t d = 0; d < dim; ++d) {
      m(t, d) = static_cast<float>(rng.gaussian(static_cast<double>(d), 2.0));
    }
  }
  return m;
}

TEST(Deltas, TriplesDimension) {
  const auto base = random_features(50, 13, 1);
  const auto out = add_deltas(base, 2);
  EXPECT_EQ(out.rows(), 50u);
  EXPECT_EQ(out.cols(), 39u);
}

TEST(Deltas, StaticsPreserved) {
  const auto base = random_features(20, 5, 2);
  const auto out = add_deltas(base, 2);
  for (std::size_t t = 0; t < 20; ++t) {
    for (std::size_t d = 0; d < 5; ++d) {
      EXPECT_FLOAT_EQ(out(t, d), base(t, d));
    }
  }
}

TEST(Deltas, ConstantSignalHasZeroDeltas) {
  util::Matrix base(30, 4, 3.5f);
  const auto out = add_deltas(base, 2);
  for (std::size_t t = 0; t < 30; ++t) {
    for (std::size_t d = 4; d < 12; ++d) {
      EXPECT_NEAR(out(t, d), 0.0f, 1e-6);
    }
  }
}

TEST(Deltas, LinearRampHasConstantDelta) {
  util::Matrix base(40, 1);
  for (std::size_t t = 0; t < 40; ++t) base(t, 0) = static_cast<float>(t);
  const auto out = add_deltas(base, 2);
  // Interior frames: delta of slope-1 ramp is exactly 1.
  for (std::size_t t = 2; t < 38; ++t) {
    EXPECT_NEAR(out(t, 1), 1.0f, 1e-5) << t;
  }
  // Delta-delta of a ramp is 0 in the interior.
  for (std::size_t t = 4; t < 36; ++t) {
    EXPECT_NEAR(out(t, 2), 0.0f, 1e-5) << t;
  }
}

TEST(Deltas, EmptyInput) {
  util::Matrix empty(0, 13);
  const auto out = add_deltas(empty, 2);
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.cols(), 39u);
}

TEST(Cmvn, ZeroMeanUnitVariance) {
  auto m = random_features(200, 7, 3);
  cmvn_inplace(m, true);
  for (std::size_t d = 0; d < 7; ++d) {
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t t = 0; t < 200; ++t) {
      sum += m(t, d);
      sum2 += static_cast<double>(m(t, d)) * m(t, d);
    }
    const double mean = sum / 200.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sum2 / 200.0 - mean * mean, 1.0, 1e-3);
  }
}

TEST(Cmvn, MeanOnlyMode) {
  auto m = random_features(100, 3, 4);
  auto copy = m;
  cmvn_inplace(m, false);
  for (std::size_t d = 0; d < 3; ++d) {
    double sum = 0.0;
    for (std::size_t t = 0; t < 100; ++t) sum += m(t, d);
    EXPECT_NEAR(sum / 100.0, 0.0, 1e-4);
  }
  // Shape (relative differences) preserved in mean-only mode.
  EXPECT_NEAR(m(1, 0) - m(0, 0), copy(1, 0) - copy(0, 0), 1e-4);
}

TEST(Cmvn, ConstantColumnStaysFinite) {
  util::Matrix m(50, 2, 4.0f);
  cmvn_inplace(m, true);
  for (std::size_t t = 0; t < 50; ++t) {
    EXPECT_TRUE(std::isfinite(m(t, 0)));
    EXPECT_NEAR(m(t, 0), 0.0f, 1e-4);
  }
}

TEST(FeaturePipeline, MfccDimWithDeltas) {
  FeaturePipelineConfig cfg;
  cfg.kind = FeatureKind::kMfcc;
  FeaturePipeline pipe(cfg);
  EXPECT_EQ(pipe.feature_dim(), cfg.mfcc.num_ceps * 3);
}

TEST(FeaturePipeline, PlpDimWithoutDeltas) {
  FeaturePipelineConfig cfg;
  cfg.kind = FeatureKind::kPlp;
  cfg.deltas = false;
  FeaturePipeline pipe(cfg);
  EXPECT_EQ(pipe.feature_dim(), cfg.plp.num_ceps);
}

TEST(FeaturePipeline, EndToEndProducesNormalisedFeatures) {
  FeaturePipelineConfig cfg;
  FeaturePipeline pipe(cfg);
  util::Rng rng(7);
  std::vector<float> x(8000);
  for (auto& v : x) {
    v = static_cast<float>(
        std::sin(2.0 * std::numbers::pi * 0.05 * static_cast<double>(&v - x.data())) +
        0.3 * rng.gaussian());
  }
  const auto feats = pipe.process(x);
  EXPECT_EQ(feats.cols(), pipe.feature_dim());
  EXPECT_GT(feats.rows(), 50u);
  // CMVN applied: every column ~zero mean.
  for (std::size_t d = 0; d < feats.cols(); ++d) {
    double sum = 0.0;
    for (std::size_t t = 0; t < feats.rows(); ++t) sum += feats(t, d);
    EXPECT_NEAR(sum / static_cast<double>(feats.rows()), 0.0, 1e-3);
  }
}

}  // namespace
}  // namespace phonolid::dsp
