#include "am/hmm.h"

#include <gtest/gtest.h>

#include <cmath>

namespace phonolid::am {
namespace {

TEST(HmmTopology, StateIndexing) {
  HmmTopology topo{10, 3};
  EXPECT_EQ(topo.num_states(), 30u);
  EXPECT_EQ(topo.state_of(0, 0), 0u);
  EXPECT_EQ(topo.state_of(4, 2), 14u);
  EXPECT_EQ(topo.phone_of(14), 4u);
  EXPECT_EQ(topo.position_of(14), 2u);
  // Round trip over all states.
  for (std::size_t s = 0; s < topo.num_states(); ++s) {
    EXPECT_EQ(topo.state_of(topo.phone_of(s), topo.position_of(s)), s);
  }
}

TEST(HmmTransitions, UniformProbabilitiesSumToOne) {
  const auto t = HmmTransitions::uniform(6, 3.0);
  ASSERT_EQ(t.log_self.size(), 6u);
  for (std::size_t s = 0; s < 6; ++s) {
    const double total =
        std::exp(static_cast<double>(t.log_self[s])) +
        std::exp(static_cast<double>(t.log_advance[s]));
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(HmmTransitions, UniformMatchesMeanOccupancy) {
  // stay prob p gives mean occupancy 1/(1-p).
  const auto t = HmmTransitions::uniform(1, 4.0);
  const double stay = std::exp(static_cast<double>(t.log_self[0]));
  EXPECT_NEAR(1.0 / (1.0 - stay), 4.0, 1e-6);
}

TEST(HmmTransitions, EstimateFromCounts) {
  std::vector<std::size_t> self = {30, 0};
  std::vector<std::size_t> advance = {10, 0};
  const auto t = HmmTransitions::estimate(self, advance, 3.0);
  EXPECT_NEAR(std::exp(static_cast<double>(t.log_self[0])), 0.75, 1e-5);
  // Unobserved state falls back to the prior (finite, valid).
  EXPECT_TRUE(std::isfinite(t.log_self[1]));
  const double total = std::exp(static_cast<double>(t.log_self[1])) +
                       std::exp(static_cast<double>(t.log_advance[1]));
  EXPECT_NEAR(total, 1.0, 1e-5);
}

TEST(HmmTransitions, EstimateClampsExtremes) {
  // All-self counts would give stay=1.0 (absorbing) -> must be clamped.
  std::vector<std::size_t> self = {1000};
  std::vector<std::size_t> advance = {0};
  const auto t = HmmTransitions::estimate(self, advance, 3.0);
  EXPECT_LT(std::exp(static_cast<double>(t.log_self[0])), 0.999);
  EXPECT_TRUE(std::isfinite(t.log_advance[0]));
}

}  // namespace
}  // namespace phonolid::am
