// Streaming-session equivalence suite: for ANY chunking of the same audio,
// the streaming front end, decoder session and subsystem chain must be
// BIT-identical to the batch path — features, lattices, counts and
// supervectors compare with exact float equality, never tolerances.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/subsystem.h"
#include "decoder/phone_loop_decoder.h"
#include "dsp/streaming_features.h"
#include "phonotactic/ngram_counts.h"
#include "phonotactic/supervector.h"

namespace phonolid {
namespace {

// ---------------------------------------------------------------------------
// dsp: StreamingFeatures vs the batch pipeline
// ---------------------------------------------------------------------------

std::vector<float> synth_signal(std::size_t n) {
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto noise = static_cast<float>((i * 2654435761u >> 16) & 0xffu) /
                           255.0f -
                       0.5f;
    x[i] = 0.6f * std::sin(0.071 * static_cast<double>(i) + 0.3) +
           0.3f * std::sin(0.0173 * static_cast<double>(i)) + 0.1f * noise;
  }
  return x;
}

util::Matrix stream_in_chunks(const dsp::FeaturePipeline& pipeline,
                              const std::vector<float>& signal,
                              std::size_t chunk) {
  dsp::StreamingFeatures stream(pipeline);
  if (chunk == 0) {
    stream.push(signal);
  } else {
    for (std::size_t i = 0; i < signal.size(); i += chunk) {
      stream.push(std::span<const float>(signal).subspan(
          i, std::min(chunk, signal.size() - i)));
    }
  }
  stream.finish();
  return stream.take();
}

void expect_matrices_identical(const util::Matrix& a, const util::Matrix& b,
                               const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t t = 0; t < a.rows(); ++t) {
    for (std::size_t d = 0; d < a.cols(); ++d) {
      ASSERT_EQ(a(t, d), b(t, d))
          << what << ": mismatch at (" << t << ", " << d << ")";
    }
  }
}

TEST(StreamingFeatures, BitIdenticalAcrossChunkSizesMfccAndPlp) {
  const std::vector<float> signal = synth_signal(8000 + 123);
  for (const auto kind : {dsp::FeatureKind::kMfcc, dsp::FeatureKind::kPlp}) {
    dsp::FeaturePipelineConfig cfg;
    cfg.kind = kind;
    cfg.cmvn = false;  // compare the raw streaming rows
    const dsp::FeaturePipeline pipeline(cfg);
    const util::Matrix batch = stream_in_chunks(pipeline, signal, 0);
    // 1 sample, one frame shift (80), 160 samples, a prime, > utterance.
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{80},
                                    std::size_t{160}, std::size_t{401},
                                    std::size_t{100000}}) {
      expect_matrices_identical(batch,
                                stream_in_chunks(pipeline, signal, chunk),
                                kind == dsp::FeatureKind::kMfcc ? "mfcc"
                                                                : "plp");
    }
  }
}

TEST(StreamingFeatures, MatchesBatchPipelineWithCmvnAndWithoutDeltas) {
  const std::vector<float> signal = synth_signal(6000);
  for (const bool deltas : {true, false}) {
    dsp::FeaturePipelineConfig cfg;
    cfg.deltas = deltas;
    const dsp::FeaturePipeline pipeline(cfg);
    const util::Matrix batch = pipeline.process(signal);
    util::Matrix streamed = stream_in_chunks(pipeline, signal, 257);
    dsp::cmvn_inplace(streamed, cfg.cmvn_variance);
    expect_matrices_identical(batch, streamed, deltas ? "deltas" : "statics");
  }
}

TEST(StreamingFeatures, PrefixRowsAreFinal) {
  const std::vector<float> signal = synth_signal(4000);
  const dsp::FeaturePipeline pipeline{dsp::FeaturePipelineConfig{}};
  dsp::StreamingFeatures stream(pipeline);
  stream.push(std::span<const float>(signal).first(2500));
  const std::size_t ready = stream.num_rows();
  ASSERT_GT(ready, 0u);
  const util::Matrix prefix = stream.prefix(ready);
  stream.push(std::span<const float>(signal).subspan(2500));
  stream.finish();
  const util::Matrix full = stream.take();
  ASSERT_GE(full.rows(), ready);
  for (std::size_t t = 0; t < ready; ++t) {
    for (std::size_t d = 0; d < full.cols(); ++d) {
      ASSERT_EQ(prefix(t, d), full(t, d)) << "(" << t << ", " << d << ")";
    }
  }
}

TEST(StreamingFeatures, LifecycleErrorsAndEmptyInput) {
  const dsp::FeaturePipeline pipeline{dsp::FeaturePipelineConfig{}};
  dsp::StreamingFeatures stream(pipeline);
  EXPECT_THROW((void)stream.take(), std::logic_error);  // before finish()
  stream.push({});
  stream.finish();
  stream.finish();  // idempotent
  EXPECT_THROW(stream.push(synth_signal(100)), std::logic_error);
  const util::Matrix empty = stream.take();
  EXPECT_EQ(empty.rows(), 0u);
}

// ---------------------------------------------------------------------------
// decoder: DecodeSession vs decode_from_scores
// ---------------------------------------------------------------------------

util::Matrix synth_scores(std::size_t frames, std::size_t states) {
  util::Matrix m(frames, states);
  for (std::size_t t = 0; t < frames; ++t) {
    for (std::size_t s = 0; s < states; ++s) {
      m(t, s) = -2.0f +
                1.5f * std::sin(0.37 * static_cast<double>(t * states + s)) +
                (((t + s) % 7 == 0) ? 1.0f : 0.0f);
    }
  }
  return m;
}

class FlatModel final : public am::AcousticModel {
 public:
  explicit FlatModel(am::HmmTopology topo) : topo_(topo) {}
  [[nodiscard]] std::size_t num_states() const noexcept override {
    return topo_.num_states();
  }
  [[nodiscard]] std::size_t feature_dim() const noexcept override { return 1; }
  void score(const util::Matrix& features, util::Matrix& out) const override {
    out.resize(features.rows(), num_states());
    for (std::size_t t = 0; t < features.rows(); ++t) {
      for (std::size_t s = 0; s < num_states(); ++s) out(t, s) = 0.0f;
    }
  }

 private:
  am::HmmTopology topo_;
};

void expect_lattices_identical(const decoder::Lattice& a,
                               const decoder::Lattice& b) {
  ASSERT_EQ(a.num_frames(), b.num_frames());
  ASSERT_EQ(a.best_path(), b.best_path());
  ASSERT_EQ(a.edges().size(), b.edges().size());
  for (std::size_t i = 0; i < a.edges().size(); ++i) {
    const auto& ea = a.edges()[i];
    const auto& eb = b.edges()[i];
    ASSERT_EQ(ea.start_node, eb.start_node) << "edge " << i;
    ASSERT_EQ(ea.end_node, eb.end_node) << "edge " << i;
    ASSERT_EQ(ea.phone, eb.phone) << "edge " << i;
    ASSERT_EQ(ea.score, eb.score) << "edge " << i;
    ASSERT_EQ(ea.posterior, eb.posterior) << "edge " << i;
  }
}

TEST(DecodeSession, BitIdenticalToBatchAcrossChunkSizes) {
  const am::HmmTopology topo{5, 3};
  const FlatModel model(topo);
  const decoder::PhoneLoopDecoder decoder(
      model, topo, am::HmmTransitions::uniform(topo.num_states(), 2.0));
  const util::Matrix scores = synth_scores(23, topo.num_states());
  const decoder::Lattice batch = decoder.decode_from_scores(scores);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{2},
                                  std::size_t{7}, std::size_t{23},
                                  std::size_t{100}}) {
    decoder::DecodeSession session(decoder);
    for (std::size_t begin = 0; begin < scores.rows(); begin += chunk) {
      const std::size_t end = std::min(begin + chunk, scores.rows());
      util::Matrix slice(end - begin, scores.cols());
      for (std::size_t t = begin; t < end; ++t) {
        for (std::size_t s = 0; s < scores.cols(); ++s) {
          slice(t - begin, s) = scores(t, s);
        }
      }
      session.advance(slice);
    }
    expect_lattices_identical(batch, session.finalize());
  }
}

TEST(DecodeSession, LifecycleErrorsAndEmptyInput) {
  const am::HmmTopology topo{3, 3};
  const FlatModel model(topo);
  const decoder::PhoneLoopDecoder decoder(
      model, topo, am::HmmTransitions::uniform(topo.num_states(), 2.0));

  decoder::DecodeSession session(decoder);
  (void)session.finalize();
  EXPECT_THROW((void)session.finalize(), std::logic_error);
  EXPECT_THROW(session.advance(util::Matrix(1, topo.num_states())),
               std::logic_error);

  // Zero frames: streaming and batch agree on the empty lattice.
  decoder::DecodeSession empty_session(decoder);
  empty_session.advance(util::Matrix(0, topo.num_states()));
  const decoder::Lattice streamed = empty_session.finalize();
  const decoder::Lattice batch =
      decoder.decode_from_scores(util::Matrix(0, topo.num_states()));
  expect_lattices_identical(batch, streamed);
  EXPECT_EQ(streamed.num_frames(), 0u);
}

// ---------------------------------------------------------------------------
// phonotactic: mergeable partial accumulators
// ---------------------------------------------------------------------------

TEST(CountAccumulator, SegmentSumsAreExactAndOrderedDeterministically) {
  using phonotactic::SparseVec;
  const SparseVec a = SparseVec::from_pairs({{3, 1.5f}, {7, 2.0f}, {1, 0.25f}});
  const SparseVec b = SparseVec::from_pairs({{7, 0.5f}, {2, 4.0f}});

  phonotactic::CountAccumulator acc;
  EXPECT_TRUE(acc.empty());
  acc.add(a);
  acc.add(b);
  const SparseVec sum = acc.build();
  EXPECT_EQ(sum.indices(), (std::vector<std::uint32_t>{1, 2, 3, 7}));
  EXPECT_EQ(sum.values(), (std::vector<float>{0.25f, 4.0f, 1.5f, 2.5f}));

  // merge() of two partial accumulators == add() of their segments.
  phonotactic::CountAccumulator left, right;
  left.add(a);
  right.add(b);
  left.merge(right);
  const SparseVec merged = left.build();
  EXPECT_EQ(merged.indices(), sum.indices());
  EXPECT_EQ(merged.values(), sum.values());

  // build() is a snapshot: accumulating further still works.
  acc.add(a);
  EXPECT_EQ(acc.build().values(),
            (std::vector<float>{0.5f, 4.0f, 3.0f, 4.5f}));
}

TEST(TfllrScaler, MergeMatchesSequentialAccumulation) {
  using phonotactic::SparseVec;
  const SparseVec s1 = SparseVec::from_pairs({{0, 1.0f}, {3, 0.5f}});
  const SparseVec s2 = SparseVec::from_pairs({{1, 2.0f}, {3, 0.25f}});
  const SparseVec s3 = SparseVec::from_pairs({{2, 0.125f}});

  phonotactic::TfllrScaler sequential(4);
  sequential.accumulate(s1);
  sequential.accumulate(s2);
  sequential.accumulate(s3);
  sequential.finalize();

  phonotactic::TfllrScaler shard_a(4), shard_b(4);
  shard_a.accumulate(s1);
  shard_a.accumulate(s2);
  shard_b.accumulate(s3);
  shard_a.merge(shard_b);
  shard_a.finalize();

  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sequential.scale_of(i), shard_a.scale_of(i)) << "dim " << i;
  }

  phonotactic::TfllrScaler unfinalized(4), finalized(4), mismatched(5);
  finalized.finalize();
  EXPECT_THROW(unfinalized.merge(finalized), std::logic_error);
  EXPECT_THROW(finalized.merge(unfinalized), std::logic_error);
  EXPECT_THROW(unfinalized.merge(mismatched), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// core: StreamingSession on a micro-corpus subsystem
// ---------------------------------------------------------------------------

corpus::CorpusConfig micro_corpus_config() {
  corpus::CorpusConfig cfg =
      corpus::CorpusConfig::preset(util::Scale::kQuick, 47);
  cfg.family.num_languages = 2;
  cfg.num_universal_phones = 14;
  cfg.train_utts_per_language = 4;
  cfg.dev_utts_per_language_per_tier = 1;
  cfg.test_utts_per_language_per_tier = 2;
  cfg.num_native_languages = 1;
  cfg.am_train_utts_per_native = 8;
  cfg.am_train_seconds = 1.5;
  return cfg;
}

core::FrontEndSpec micro_spec() {
  core::FrontEndSpec spec;
  spec.name = "micro";
  spec.family = core::ModelFamily::kGmmHmm;
  spec.num_phones = 6;
  spec.native_language = 0;
  spec.hidden_sizes = {12};
  spec.gmm_components = 2;
  spec.seed_salt = 0x99;
  return spec;
}

class StreamingSessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new corpus::LreCorpus(
        corpus::LreCorpus::build(micro_corpus_config()));
    subsystem_ = core::Subsystem::build(*corpus_, micro_spec(), 7).release();
  }
  static void TearDownTestSuite() {
    delete subsystem_;
    subsystem_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
  }
  void TearDown() override { subsystem_->set_batch_chunk_samples(0); }

  static void expect_supervectors_identical(const phonotactic::SparseVec& a,
                                            const phonotactic::SparseVec& b) {
    ASSERT_EQ(a.indices(), b.indices());
    ASSERT_EQ(a.values(), b.values());
  }

  static corpus::LreCorpus* corpus_;
  static core::Subsystem* subsystem_;
};

corpus::LreCorpus* StreamingSessionTest::corpus_ = nullptr;
core::Subsystem* StreamingSessionTest::subsystem_ = nullptr;

TEST_F(StreamingSessionTest, ProcessBitIdenticalAcrossChunkSizes) {
  const auto& utt = corpus_->test()[0];
  subsystem_->set_batch_chunk_samples(0);
  const phonotactic::SparseVec batch_sv = subsystem_->process(utt);
  const decoder::Lattice batch_lat = subsystem_->decode(utt);
  // One frame shift, 160 samples, a prime, and longer-than-utterance.
  for (const std::size_t chunk : {std::size_t{80}, std::size_t{160},
                                  std::size_t{1009}, std::size_t{1 << 20}}) {
    subsystem_->set_batch_chunk_samples(chunk);
    expect_supervectors_identical(batch_sv, subsystem_->process(utt));
    expect_lattices_identical(batch_lat, subsystem_->decode(utt));
  }
}

TEST_F(StreamingSessionTest, ScoreStreamMatchesProcess) {
  const auto& utt = corpus_->test()[1];
  const phonotactic::SparseVec batch_sv = subsystem_->process(utt);
  core::StreamingOptions opts;
  opts.chunk_samples = 160;
  const core::StreamingResult res =
      subsystem_->score_stream(utt.samples, opts);
  expect_supervectors_identical(batch_sv, res.supervector);
  EXPECT_EQ(res.frames, res.lattice.num_frames());
  EXPECT_GT(res.audio_s, 0.0);
  EXPECT_TRUE(res.checkpoints.empty());
}

TEST_F(StreamingSessionTest, ZeroLengthUtteranceMatchesBatch) {
  corpus::Utterance empty;
  const phonotactic::SparseVec batch_sv = subsystem_->process(empty);
  const core::StreamingResult res =
      subsystem_->score_stream(empty.samples, core::StreamingOptions{});
  expect_supervectors_identical(batch_sv, res.supervector);
  EXPECT_EQ(res.frames, 0u);
  EXPECT_EQ(res.lattice.num_frames(), 0u);
}

TEST_F(StreamingSessionTest, SessionLifecycleErrors) {
  core::StreamingSession session = subsystem_->open_stream();
  session.push(synth_signal(500));
  (void)session.finalize();
  EXPECT_TRUE(session.finalized());
  EXPECT_THROW((void)session.finalize(), std::logic_error);
  EXPECT_THROW(session.push(synth_signal(10)), std::logic_error);
}

TEST_F(StreamingSessionTest, CheckpointsFireAtCadenceWithLlrs) {
  // Longest-tier utterance so several checkpoint intervals fit.
  const auto tier30 = corpus_->test_indices(corpus::DurationTier::k30s);
  ASSERT_FALSE(tier30.empty());
  const auto& utt = corpus_->test()[tier30[0]];
  const double audio_s = static_cast<double>(utt.samples.size()) /
                         micro_corpus_config().sample_rate;

  core::StreamingOptions opts;
  opts.chunk_samples = 160;  // 20 ms pushes
  opts.checkpoint_interval_s = 0.25;
  opts.scorer = [](const phonotactic::SparseVec& sv) {
    float sum = 0.0f;
    for (float v : sv.values()) sum += v;
    return std::vector<float>{sum, -sum};
  };
  const core::StreamingResult res =
      subsystem_->score_stream(utt.samples, opts);

  // At least one checkpoint per full interval (minus the tail) must fire.
  const auto expected = static_cast<std::size_t>(
      audio_s / opts.checkpoint_interval_s);
  ASSERT_GE(expected, 2u) << "micro corpus utterance too short for the test";
  EXPECT_GE(res.checkpoints.size(), expected - 1);
  double prev_audio = 0.0;
  std::size_t prev_frames = 0;
  for (const auto& cp : res.checkpoints) {
    EXPECT_GT(cp.audio_s, prev_audio);
    EXPECT_GE(cp.frames, prev_frames);
    ASSERT_EQ(cp.llr.size(), 2u);
    EXPECT_LT(cp.best_language, 2u);
    EXPECT_EQ(cp.llr[0], -cp.llr[1]);
    prev_audio = cp.audio_s;
    prev_frames = cp.frames;
  }

  // Checkpoints must not perturb the final (batch-identical) result.
  expect_supervectors_identical(subsystem_->process(utt), res.supervector);
}

TEST_F(StreamingSessionTest, CheckpointLlrEqualsBatchAnswerOnPrefix) {
  // A checkpoint is the exact batch chain on the delta-resolved feature
  // prefix: replaying the checkpoint's supervector through process()-like
  // machinery is covered by the lower layers; here we verify the scorer
  // sees a per-order-normalised, TFLLR-scaled supervector consistent with
  // the final one when the checkpoint covers the whole utterance.
  const auto& utt = corpus_->test()[0];
  std::vector<phonotactic::SparseVec> seen;
  core::StreamingOptions opts;
  opts.checkpoint_interval_s =
      static_cast<double>(utt.samples.size()) /
      micro_corpus_config().sample_rate / 2.0;
  opts.scorer = [&seen](const phonotactic::SparseVec& sv) {
    seen.push_back(sv);
    return std::vector<float>{0.0f};
  };
  core::StreamingSession session = subsystem_->open_stream(opts);
  session.push(utt.samples);  // one push: exactly one checkpoint fires
  const core::StreamingResult res = session.finalize();
  ASSERT_EQ(seen.size(), res.checkpoints.size());
  ASSERT_GE(seen.size(), 1u);
  // The prefix supervector covers fewer frames than the final one (delta
  // tail not yet resolved), so it differs — but both are unit-normalised
  // per order before TFLLR, so non-empty means well-formed.
  EXPECT_FALSE(seen.back().empty());
  EXPECT_LT(res.checkpoints.back().frames, res.frames);
}

TEST_F(StreamingSessionTest, ParallelSessionsAreIndependent) {
  // TSan target: concurrent sessions over one const Subsystem must share no
  // mutable state (per-session FFT scratch, rings, decoder tokens).
  constexpr std::size_t kThreads = 4;
  std::vector<phonotactic::SparseVec> serial(kThreads), parallel(kThreads);
  const auto& test_set = corpus_->test();
  for (std::size_t i = 0; i < kThreads; ++i) {
    serial[i] = subsystem_->process(test_set[i % test_set.size()]);
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      core::StreamingOptions opts;
      opts.chunk_samples = 80 + 7 * i;  // different chunkings per thread
      parallel[i] = subsystem_
                        ->score_stream(
                            test_set[i % test_set.size()].samples, opts)
                        .supervector;
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kThreads; ++i) {
    expect_supervectors_identical(serial[i], parallel[i]);
  }
}

}  // namespace
}  // namespace phonolid
