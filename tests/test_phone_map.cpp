#include "am/phone_map.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "corpus/phone_inventory.h"

namespace phonolid::am {
namespace {

TEST(PhoneSetMap, EveryFrontendPhoneNonEmpty) {
  const auto inv = corpus::build_universal_inventory(40, 1);
  for (std::size_t target : {5, 10, 20, 39}) {
    const auto map = build_phone_map(inv, target, 7);
    ASSERT_EQ(map.num_frontend_phones(), target);
    std::vector<std::size_t> counts(target, 0);
    for (std::size_t u = 0; u < inv.size(); ++u) {
      ASSERT_LT(map.map(u), target);
      ++counts[map.map(u)];
    }
    for (std::size_t c = 0; c < target; ++c) {
      EXPECT_GT(counts[c], 0u) << "empty front-end phone " << c
                               << " for target " << target;
    }
  }
}

TEST(PhoneSetMap, IdentityWhenFrontendLargerOrEqual) {
  const auto inv = corpus::build_universal_inventory(20, 2);
  const auto map = build_phone_map(inv, 20, 3);
  for (std::size_t u = 0; u < 20; ++u) EXPECT_EQ(map.map(u), u);
  const auto bigger = build_phone_map(inv, 30, 3);
  EXPECT_EQ(bigger.num_frontend_phones(), 20u);
}

TEST(PhoneSetMap, DifferentSeedsGiveDifferentMaps) {
  // The paper's front-end diversity: equal-sized phone sets must still
  // carve the space differently.
  const auto inv = corpus::build_universal_inventory(40, 4);
  const auto a = build_phone_map(inv, 15, 100);
  const auto b = build_phone_map(inv, 15, 200);
  std::size_t differences = 0;
  for (std::size_t u = 0; u < 40; ++u) {
    // Maps are label-permutation-ambiguous, so compare co-clustering of
    // pairs instead of raw labels.
    for (std::size_t v = u + 1; v < 40; ++v) {
      const bool same_a = a.map(u) == a.map(v);
      const bool same_b = b.map(u) == b.map(v);
      if (same_a != same_b) ++differences;
    }
  }
  EXPECT_GT(differences, 10u);
}

TEST(PhoneSetMap, DeterministicForSeed) {
  const auto inv = corpus::build_universal_inventory(30, 4);
  const auto a = build_phone_map(inv, 12, 55);
  const auto b = build_phone_map(inv, 12, 55);
  EXPECT_EQ(a.mapping(), b.mapping());
}

TEST(PhoneSetMap, ClustersAcousticNeighbours) {
  // Phones mapped together should on average be closer in formant space
  // than phones mapped apart.
  const auto inv = corpus::build_universal_inventory(40, 6);
  const auto map = build_phone_map(inv, 10, 8);
  double same_dist = 0.0, diff_dist = 0.0;
  std::size_t same_n = 0, diff_n = 0;
  for (std::size_t u = 0; u < 40; ++u) {
    for (std::size_t v = u + 1; v < 40; ++v) {
      const double df1 = inv.phone(u).formant_hz[0] - inv.phone(v).formant_hz[0];
      const double df2 = inv.phone(u).formant_hz[1] - inv.phone(v).formant_hz[1];
      const double d = df1 * df1 + df2 * df2;
      if (map.map(u) == map.map(v)) {
        same_dist += d;
        ++same_n;
      } else {
        diff_dist += d;
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 0u);
  ASSERT_GT(diff_n, 0u);
  EXPECT_LT(same_dist / static_cast<double>(same_n),
            diff_dist / static_cast<double>(diff_n));
}

TEST(PhoneSetMap, ValidatesConstruction) {
  EXPECT_THROW(PhoneSetMap({0, 1, 5}, 3), std::invalid_argument);
  EXPECT_NO_THROW(PhoneSetMap({0, 1, 2}, 3));
}

}  // namespace
}  // namespace phonolid::am
