#include "phonotactic/ngram_lm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace phonolid::phonotactic {
namespace {

TEST(NgramLm, ValidatesConfiguration) {
  EXPECT_THROW(NgramLm(0, {2}), std::invalid_argument);
  EXPECT_THROW(NgramLm(5, {0}), std::invalid_argument);
  EXPECT_THROW(NgramLm(5, {5}), std::invalid_argument);
  EXPECT_NO_THROW(NgramLm(5, {3}));
}

TEST(NgramLm, ProbabilitiesSumToOneOverAlphabet) {
  NgramLm lm(4, {2});
  lm.add_sequence({0, 1, 2, 1, 0, 3, 1});
  lm.add_sequence({2, 2, 1, 0});
  // Unconditional distribution.
  double total = 0.0;
  for (std::uint32_t w = 0; w < 4; ++w) {
    total += lm.probability(w, {});
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Conditional on a seen history.
  total = 0.0;
  for (std::uint32_t w = 0; w < 4; ++w) {
    total += lm.probability(w, {1});
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(NgramLm, LearnsBigramPreference) {
  NgramLm lm(3, {2});
  // 0 is almost always followed by 1.
  for (int i = 0; i < 20; ++i) lm.add_sequence({0, 1, 0, 1, 0, 1});
  lm.add_sequence({0, 2});
  EXPECT_GT(lm.probability(1, {0}), lm.probability(2, {0}));
  EXPECT_GT(lm.probability(1, {0}), 0.5);
}

TEST(NgramLm, UnseenHistoryBacksOffToUnigram) {
  NgramLm lm(4, {3});
  lm.add_sequence({0, 1, 0, 1});
  const double backoff = lm.probability(1, {3, 3});  // history never seen
  const double unigram = lm.probability(1, {});
  EXPECT_NEAR(backoff, unigram, 1e-9);
}

TEST(NgramLm, UntrainedModelIsUniform) {
  NgramLm lm(5, {2});
  for (std::uint32_t w = 0; w < 5; ++w) {
    EXPECT_NEAR(lm.probability(w, {}), 0.2, 1e-9);
  }
}

TEST(NgramLm, ScoreIsLengthNormalised) {
  NgramLm lm(3, {2});
  for (int i = 0; i < 10; ++i) lm.add_sequence({0, 1, 2, 0, 1, 2});
  const std::vector<std::uint32_t> once = {0, 1, 2};
  const std::vector<std::uint32_t> twice = {0, 1, 2, 0, 1, 2};
  // Per-phone log-prob should be nearly equal (same pattern).
  EXPECT_NEAR(lm.score(once), lm.score(twice), 0.25);
  EXPECT_EQ(lm.score({}), 0.0);
}

TEST(NgramLm, InDomainScoresHigherThanOutOfDomain) {
  NgramLm lm(4, {3});
  util::Rng rng(5);
  for (int u = 0; u < 30; ++u) {
    std::vector<std::uint32_t> seq;
    std::uint32_t prev = 0;
    for (int t = 0; t < 40; ++t) {
      // Deterministic-ish cycle 0->1->2->0 with noise.
      prev = rng.uniform() < 0.85 ? (prev + 1) % 3 : 3;
      seq.push_back(prev);
    }
    lm.add_sequence(seq);
  }
  const std::vector<std::uint32_t> in_domain = {0, 1, 2, 0, 1, 2, 0, 1};
  const std::vector<std::uint32_t> out_domain = {3, 3, 2, 1, 0, 2, 3, 3};
  EXPECT_GT(lm.score(in_domain), lm.score(out_domain));
}

TEST(PrlmSystem, DiscriminatesLanguagesBySequenceStatistics) {
  util::Rng rng(7);
  // Language 0 prefers ascending cycles, language 1 descending.
  const auto sample = [&](int lang) {
    std::vector<std::uint32_t> seq;
    std::uint32_t prev = rng.uniform_index(5);
    for (int t = 0; t < 60; ++t) {
      if (rng.uniform() < 0.8) {
        prev = lang == 0 ? (prev + 1) % 5 : (prev + 4) % 5;
      } else {
        prev = static_cast<std::uint32_t>(rng.uniform_index(5));
      }
      seq.push_back(prev);
    }
    return seq;
  };
  std::vector<std::vector<std::uint32_t>> train;
  std::vector<std::int32_t> labels;
  for (int i = 0; i < 40; ++i) {
    train.push_back(sample(i % 2));
    labels.push_back(i % 2);
  }
  const auto prlm = PrlmSystem::train(train, labels, 2, 5, {2});
  ASSERT_EQ(prlm.num_languages(), 2u);

  std::size_t correct = 0;
  const std::size_t trials = 50;
  std::vector<float> scores(2);
  for (std::size_t i = 0; i < trials; ++i) {
    const int truth = static_cast<int>(i % 2);
    prlm.score(sample(truth), scores);
    if ((scores[1] > scores[0]) == (truth == 1)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / trials, 0.9);
}

TEST(PrlmSystem, ScoreAllShape) {
  std::vector<std::vector<std::uint32_t>> train = {{0, 1, 2}, {2, 1, 0}};
  std::vector<std::int32_t> labels = {0, 1};
  const auto prlm = PrlmSystem::train(train, labels, 2, 3, {2});
  const auto scores = prlm.score_all(train);
  EXPECT_EQ(scores.rows(), 2u);
  EXPECT_EQ(scores.cols(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_TRUE(std::isfinite(scores(i, c)));
      EXPECT_LE(scores(i, c), 0.0f);
    }
  }
}

TEST(PrlmSystem, InputValidation) {
  std::vector<std::vector<std::uint32_t>> seqs = {{0, 1}};
  std::vector<std::int32_t> bad = {5};
  EXPECT_THROW(PrlmSystem::train(seqs, bad, 2, 3, {}), std::invalid_argument);
  std::vector<std::int32_t> short_labels;
  EXPECT_THROW(PrlmSystem::train(seqs, short_labels, 2, 3, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace phonolid::phonotactic
