#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace phonolid::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.25);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.25);
  }
}

TEST(Rng, UniformIndexBounded) {
  Rng rng(5);
  std::vector<int> hist(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const auto idx = rng.uniform_index(7);
    ASSERT_LT(idx, 7u);
    ++hist[idx];
  }
  // Each bucket should be close to 10000.
  for (int count : hist) EXPECT_NEAR(count, 10000, 500);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, GaussianScaled) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(3.0, 2.0);
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> hist(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hist[rng.categorical(weights)];
  EXPECT_NEAR(hist[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(hist[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(hist[2], 0);
  EXPECT_NEAR(hist[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, CategoricalDegenerateWeights) {
  Rng rng(23);
  std::vector<double> zero = {0.0, 0.0, 0.0};
  // Falls back to uniform rather than crashing.
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.categorical(zero), 3u);
  }
}

TEST(Rng, ForkDecorrelatesStreams) {
  Rng root(99);
  Rng a = root.fork(0);
  Rng b = root.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkDeterministic) {
  Rng root(99);
  Rng a = root.fork(123);
  Rng b = Rng(99).fork(123);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DeriveStreamDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t id = 0; id < 10000; ++id) {
    seen.insert(derive_stream(42, id));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(41);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

class RngStreamTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngStreamTest, EveryStreamHasHealthyMoments) {
  Rng rng = Rng(7).fork(GetParam());
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Streams, RngStreamTest,
                         ::testing::Values(0, 1, 2, 17, 255, 1024, 99999));

}  // namespace
}  // namespace phonolid::util
