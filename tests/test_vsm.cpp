#include "svm/vsm.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.h"

namespace phonolid::svm {
namespace {

using phonotactic::SparseVec;

/// K classes, each concentrated on its own feature block.
struct MultiProblem {
  std::vector<SparseVec> x;
  std::vector<std::int32_t> y;
  std::size_t num_classes;
  std::size_t dim;
};

MultiProblem make_problem(std::size_t k, std::size_t per_class,
                          std::uint64_t seed) {
  util::Rng rng(seed);
  MultiProblem p;
  p.num_classes = k;
  p.dim = k * 2;
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      std::vector<std::pair<std::uint32_t, float>> pairs;
      for (std::uint32_t d = 0; d < p.dim; ++d) {
        const bool own = d / 2 == c;
        const float v = static_cast<float>(
            rng.gaussian(own ? 1.0 : 0.0, 0.25));
        if (std::abs(v) > 0.01f) pairs.emplace_back(d, v);
      }
      p.x.push_back(SparseVec::from_pairs(std::move(pairs)));
      p.y.push_back(static_cast<std::int32_t>(c));
    }
  }
  return p;
}

TEST(VsmModel, OneVersusRestClassifiesAllClasses) {
  const auto p = make_problem(4, 40, 1);
  const VsmModel model = VsmModel::train(p.x, p.y, 4, p.dim, {});
  ASSERT_EQ(model.num_classes(), 4u);
  std::size_t correct = 0;
  std::vector<float> scores(4);
  for (std::size_t i = 0; i < p.x.size(); ++i) {
    model.score(p.x[i], scores);
    std::size_t best = 0;
    for (std::size_t c = 1; c < 4; ++c) {
      if (scores[c] > scores[best]) best = c;
    }
    if (static_cast<std::int32_t>(best) == p.y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(p.x.size()),
            0.95);
}

TEST(VsmModel, OwnScorePositiveRivalsNegativeOnClearData) {
  // This is exactly the paper's Eq. 13 voting precondition: on clean data
  // most utterances should have a positive own-model score and negative
  // rival scores.
  const auto p = make_problem(3, 50, 2);
  const VsmModel model = VsmModel::train(p.x, p.y, 3, p.dim, {});
  std::size_t strict_votes = 0;
  std::vector<float> scores(3);
  for (std::size_t i = 0; i < p.x.size(); ++i) {
    model.score(p.x[i], scores);
    bool own_pos = scores[p.y[i]] > 0.0f;
    bool rivals_neg = true;
    for (std::size_t c = 0; c < 3; ++c) {
      if (static_cast<std::int32_t>(c) != p.y[i] && scores[c] >= 0.0f) {
        rivals_neg = false;
      }
    }
    if (own_pos && rivals_neg) ++strict_votes;
  }
  EXPECT_GT(static_cast<double>(strict_votes) /
                static_cast<double>(p.x.size()),
            0.7);
}

TEST(VsmModel, ScoreAllMatchesScore) {
  const auto p = make_problem(3, 10, 3);
  const VsmModel model = VsmModel::train(p.x, p.y, 3, p.dim, {});
  const util::Matrix all = model.score_all(p.x);
  ASSERT_EQ(all.rows(), p.x.size());
  ASSERT_EQ(all.cols(), 3u);
  std::vector<float> one(3);
  for (std::size_t i = 0; i < p.x.size(); i += 7) {
    model.score(p.x[i], one);
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(all(i, c), one[c]);
    }
  }
}

TEST(VsmModel, PointerOverloadMatchesValueOverload) {
  const auto p = make_problem(3, 15, 4);
  std::vector<const SparseVec*> ptrs;
  for (const auto& v : p.x) ptrs.push_back(&v);
  VsmTrainConfig cfg;
  cfg.seed = 5;
  const VsmModel a = VsmModel::train(p.x, p.y, 3, p.dim, cfg);
  const VsmModel b = VsmModel::train(
      std::span<const SparseVec* const>(ptrs), p.y, 3, p.dim, cfg);
  std::vector<float> sa(3), sb(3);
  a.score(p.x[0], sa);
  b.score(p.x[0], sb);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(sa[c], sb[c]);
}

TEST(VsmModel, InputValidation) {
  const auto p = make_problem(2, 5, 6);
  auto bad_labels = p.y;
  bad_labels[0] = 7;
  EXPECT_THROW(VsmModel::train(p.x, bad_labels, 2, p.dim, {}),
               std::invalid_argument);
  EXPECT_THROW(VsmModel::train(std::span<const SparseVec>{}, {}, 2, 4, {}),
               std::invalid_argument);
}

TEST(VsmModel, SerializationRoundTrip) {
  const auto p = make_problem(3, 20, 7);
  const VsmModel model = VsmModel::train(p.x, p.y, 3, p.dim, {});
  std::stringstream ss;
  model.serialize(ss);
  const VsmModel loaded = VsmModel::deserialize(ss);
  ASSERT_EQ(loaded.num_classes(), 3u);
  std::vector<float> sa(3), sb(3);
  model.score(p.x[3], sa);
  loaded.score(p.x[3], sb);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(sa[c], sb[c]);
}

}  // namespace
}  // namespace phonolid::svm
