// Parameterised property sweeps across configuration axes.
#include <gtest/gtest.h>

#include <cmath>

#include "am/gmm.h"
#include "decoder/phone_loop_decoder.h"
#include "phonotactic/ngram_counts.h"
#include "svm/linear_svm.h"
#include "util/rng.h"

namespace phonolid {
namespace {

// ---------------------------------------------------------------- SVM / C
class SvmCSweep : public ::testing::TestWithParam<double> {};

TEST_P(SvmCSweep, SeparableProblemSolvedAtEveryC) {
  const double c = GetParam();
  util::Rng rng(17);
  std::vector<phonotactic::SparseVec> x;
  std::vector<std::int8_t> y;
  for (int i = 0; i < 200; ++i) {
    const float a = static_cast<float>(rng.uniform(0.0, 1.0));
    const float b = static_cast<float>(rng.uniform(0.0, 1.0));
    if (std::abs(a - b) < 0.15f) continue;
    x.push_back(phonotactic::SparseVec({0, 1}, {a, b}));
    y.push_back(a > b ? 1 : -1);
  }
  std::vector<const phonotactic::SparseVec*> xptr;
  for (const auto& v : x) xptr.push_back(&v);
  svm::LinearSvm machine;
  svm::SvmConfig cfg;
  cfg.C = c;
  machine.train(xptr, y, 2, cfg);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if ((machine.score(x[i]) > 0) == (y[i] > 0)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(x.size()), 0.97)
      << "C=" << c;
}

INSTANTIATE_TEST_SUITE_P(CValues, SvmCSweep,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0, 100.0));

// ------------------------------------------------------------- GMM / dims
class GmmDimSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GmmDimSweep, LikelihoodHigherOnInDistributionData) {
  const std::size_t dim = GetParam();
  util::Rng rng(dim);
  util::Matrix train(400, dim), in_dist(100, dim), out_dist(100, dim);
  for (std::size_t i = 0; i < 400; ++i) {
    for (std::size_t d = 0; d < dim; ++d) {
      train(i, d) = static_cast<float>(rng.gaussian(1.0, 0.5));
    }
  }
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t d = 0; d < dim; ++d) {
      in_dist(i, d) = static_cast<float>(rng.gaussian(1.0, 0.5));
      out_dist(i, d) = static_cast<float>(rng.gaussian(-2.0, 0.5));
    }
  }
  am::DiagGmm gmm;
  am::GmmTrainConfig cfg;
  cfg.num_components = 4;
  gmm.train(train, cfg);
  EXPECT_GT(gmm.average_log_likelihood(in_dist),
            gmm.average_log_likelihood(out_dist) + 1.0)
      << "dim=" << dim;
}

INSTANTIATE_TEST_SUITE_P(Dims, GmmDimSweep, ::testing::Values(1, 2, 8, 24, 39));

// -------------------------------------------------------- decoder / beams
class BeamSweep : public ::testing::TestWithParam<double> {};

class SweepOracle final : public am::AcousticModel {
 public:
  SweepOracle(am::HmmTopology topo, std::vector<std::size_t> truth)
      : topo_(topo), truth_(std::move(truth)) {}
  [[nodiscard]] std::size_t num_states() const noexcept override {
    return topo_.num_states();
  }
  [[nodiscard]] std::size_t feature_dim() const noexcept override { return 1; }
  void score(const util::Matrix& f, util::Matrix& out) const override {
    out.resize(f.rows(), num_states());
    for (std::size_t t = 0; t < f.rows(); ++t) {
      for (std::size_t s = 0; s < num_states(); ++s) {
        out(t, s) = topo_.phone_of(s) == truth_[t] ? 0.0f : -2.0f;
      }
    }
  }

 private:
  am::HmmTopology topo_;
  std::vector<std::size_t> truth_;
};

TEST_P(BeamSweep, LatticeIsSoundAtEveryBeam) {
  const double beam = GetParam();
  am::HmmTopology topo{4, 3};
  std::vector<std::size_t> truth;
  for (int seg = 0; seg < 6; ++seg) {
    for (int i = 0; i < 5; ++i) truth.push_back(seg % 4);
  }
  SweepOracle model(topo, truth);
  decoder::DecoderConfig cfg;
  cfg.lattice_beam = beam;
  decoder::PhoneLoopDecoder dec(
      model, topo, am::HmmTransitions::uniform(topo.num_states(), 3.0), cfg);
  const auto lat = dec.decode(util::Matrix(truth.size(), 1, 0.0f));
  ASSERT_FALSE(lat.edges().empty());
  const auto occ = lat.frame_occupancy();
  for (double o : occ) EXPECT_NEAR(o, 1.0, 1e-3) << "beam=" << beam;
  // The 1-best must be identical regardless of lattice beam (the beam only
  // affects which *alternatives* are kept).
  EXPECT_EQ(lat.best_path(), (std::vector<std::uint32_t>{0, 1, 2, 3, 0, 1}));
}

INSTANTIATE_TEST_SUITE_P(Beams, BeamSweep,
                         ::testing::Values(0.5, 2.0, 5.0, 10.0, 25.0));

TEST(BeamMonotonicity, WiderBeamNeverShrinksTheLattice) {
  am::HmmTopology topo{4, 3};
  std::vector<std::size_t> truth;
  util::Rng rng(3);
  for (int i = 0; i < 30; ++i) truth.push_back(rng.uniform_index(4));
  SweepOracle model(topo, truth);
  std::size_t prev = 0;
  for (double beam : {0.5, 2.0, 5.0, 10.0, 25.0}) {
    decoder::DecoderConfig cfg;
    cfg.lattice_beam = beam;
    cfg.posterior_prune = 0.0;
    decoder::PhoneLoopDecoder dec(
        model, topo, am::HmmTransitions::uniform(topo.num_states(), 3.0), cfg);
    const auto lat = dec.decode(util::Matrix(truth.size(), 1, 0.0f));
    EXPECT_GE(lat.edges().size(), prev) << "beam=" << beam;
    prev = lat.edges().size();
  }
}

// ---------------------------------------------------- N-gram order sweep
class OrderSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OrderSweep, IndexerDimensionAndRoundTrip) {
  const std::size_t order = GetParam();
  phonotactic::NgramIndexer idx(6, order);
  std::size_t expected = 0, power = 1;
  for (std::size_t n = 1; n <= order; ++n) {
    power *= 6;
    expected += power;
  }
  EXPECT_EQ(idx.dimension(), expected);
  // Round-trip a few ids at each order.
  util::Rng rng(order);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(order);
    std::vector<std::uint32_t> gram(n);
    for (auto& g : gram) g = static_cast<std::uint32_t>(rng.uniform_index(6));
    EXPECT_EQ(idx.decode(idx.index(gram.data(), n)), gram);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, OrderSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace phonolid
