#include "decoder/lattice.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace phonolid::decoder {
namespace {

/// Two-frame lattice with two competing paths:
///   path A: edge(0->2, phone 0, score a)
///   path B: edge(0->1, phone 1, score b1) + edge(1->2, phone 2, score b2)
Lattice two_path_lattice(float a, float b1, float b2) {
  std::vector<LatticeEdge> edges;
  edges.push_back({0, 2, 0, a, 0.0});
  edges.push_back({0, 1, 1, b1, 0.0});
  edges.push_back({1, 2, 2, b2, 0.0});
  return Lattice(2, std::move(edges));
}

TEST(Lattice, RejectsMalformedEdges) {
  std::vector<LatticeEdge> bad;
  bad.push_back({2, 1, 0, 0.0f, 0.0});
  EXPECT_THROW(Lattice(3, std::move(bad)), std::invalid_argument);
  std::vector<LatticeEdge> oob;
  oob.push_back({0, 5, 0, 0.0f, 0.0});
  EXPECT_THROW(Lattice(3, std::move(oob)), std::invalid_argument);
}

TEST(Lattice, PosteriorsMatchClosedForm) {
  // With scale 1: P(A) = e^a / (e^a + e^{b1+b2}).
  Lattice lat = two_path_lattice(1.0f, 0.2f, 0.3f);
  const double total = lat.compute_posteriors(1.0, 0.0);
  const double pa = std::exp(1.0) / (std::exp(1.0) + std::exp(0.5));
  ASSERT_EQ(lat.edges().size(), 3u);
  // Edge scores are stored as float, so allow float-level tolerance.
  EXPECT_NEAR(lat.edges()[0].posterior, pa, 1e-6);
  EXPECT_NEAR(lat.edges()[1].posterior, 1.0 - pa, 1e-6);
  EXPECT_NEAR(lat.edges()[2].posterior, 1.0 - pa, 1e-6);
  EXPECT_NEAR(total, std::log(std::exp(1.0) + std::exp(0.5)), 1e-6);
}

TEST(Lattice, AcousticScaleFlattensPosteriors) {
  Lattice sharp = two_path_lattice(3.0f, 0.0f, 0.0f);
  Lattice flat = two_path_lattice(3.0f, 0.0f, 0.0f);
  sharp.compute_posteriors(1.0, 0.0);
  flat.compute_posteriors(0.1, 0.0);
  EXPECT_GT(sharp.edges()[0].posterior, flat.edges()[0].posterior);
  EXPECT_GT(flat.edges()[0].posterior, 0.5);  // still the better path
}

TEST(Lattice, FrameOccupancySumsToOne) {
  Lattice lat = two_path_lattice(0.5f, -0.2f, 0.4f);
  lat.compute_posteriors(0.7, 0.0);
  const auto occ = lat.frame_occupancy();
  ASSERT_EQ(occ.size(), 2u);
  EXPECT_NEAR(occ[0], 1.0, 1e-9);
  EXPECT_NEAR(occ[1], 1.0, 1e-9);
}

TEST(Lattice, PruningRemovesWeakEdges) {
  // Make path B extremely unlikely.
  Lattice lat = two_path_lattice(30.0f, 0.0f, 0.0f);
  lat.compute_posteriors(1.0, 1e-6);
  EXPECT_EQ(lat.edges().size(), 1u);
  EXPECT_EQ(lat.edges()[0].phone, 0u);
}

TEST(Lattice, DeadEndEdgeGetsZeroPosterior) {
  std::vector<LatticeEdge> edges;
  edges.push_back({0, 3, 0, 0.0f, 0.0});  // complete path
  edges.push_back({0, 2, 1, 5.0f, 0.0});  // dangles: nothing leaves node 2
  Lattice lat(3, std::move(edges));
  lat.compute_posteriors(1.0, 0.0);
  EXPECT_NEAR(lat.edges()[0].posterior, 1.0, 1e-12);
  EXPECT_NEAR(lat.edges()[1].posterior, 0.0, 1e-12);
}

TEST(Lattice, EmptyLatticeReturnsNegInf) {
  Lattice lat(5, {});
  EXPECT_EQ(lat.compute_posteriors(1.0), -std::numeric_limits<double>::infinity());
}

TEST(Lattice, ForwardBackwardConsistency) {
  // alpha(final) == beta(initial) == total log-probability.
  Lattice lat = two_path_lattice(0.3f, 0.1f, -0.2f);
  std::vector<double> alpha, beta;
  const double total = lat.forward_backward(0.5, alpha, beta);
  EXPECT_NEAR(alpha.back(), total, 1e-12);
  EXPECT_NEAR(beta.front(), total, 1e-12);
  // alpha(n) + beta(n) <= total only when no path through n... for nodes on
  // every path it equals total exactly: node 0 and final node qualify.
  EXPECT_NEAR(alpha[0] + beta[0], total, 1e-12);
}

TEST(Lattice, AdjacencyIndexesBySourceNode) {
  Lattice lat = two_path_lattice(0.0f, 0.0f, 0.0f);
  const auto& adj = lat.adjacency();
  ASSERT_EQ(adj.size(), 3u);
  EXPECT_EQ(adj[0].size(), 2u);
  EXPECT_EQ(adj[1].size(), 1u);
  EXPECT_TRUE(adj[2].empty());
}

TEST(Lattice, BestPathStorage) {
  Lattice lat(2, {});
  lat.set_best_path({3, 1, 4});
  EXPECT_EQ(lat.best_path(), (std::vector<std::uint32_t>{3, 1, 4}));
}

}  // namespace
}  // namespace phonolid::decoder
