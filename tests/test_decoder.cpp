#include "decoder/phone_loop_decoder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "am/hmm.h"

namespace phonolid::decoder {
namespace {

/// A synthetic acoustic model over P phones x 3 states whose score for
/// state s at frame t is high when `truth[t] == phone_of(s)`.
class OracleModel final : public am::AcousticModel {
 public:
  OracleModel(am::HmmTopology topo, std::vector<std::size_t> truth,
              float margin)
      : topo_(topo), truth_(std::move(truth)), margin_(margin) {}

  [[nodiscard]] std::size_t num_states() const noexcept override {
    return topo_.num_states();
  }
  [[nodiscard]] std::size_t feature_dim() const noexcept override { return 1; }

  void score(const util::Matrix& features, util::Matrix& out) const override {
    out.resize(features.rows(), num_states());
    for (std::size_t t = 0; t < features.rows(); ++t) {
      for (std::size_t s = 0; s < num_states(); ++s) {
        const bool correct = topo_.phone_of(s) == truth_.at(t);
        out(t, s) = correct ? 0.0f : -margin_;
      }
    }
  }

 private:
  am::HmmTopology topo_;
  std::vector<std::size_t> truth_;
  float margin_;
};

struct DecoderFixture {
  am::HmmTopology topo{4, 3};
  std::vector<std::size_t> truth;
  std::unique_ptr<OracleModel> model;
  std::unique_ptr<PhoneLoopDecoder> decoder;

  explicit DecoderFixture(float margin = 5.0f, DecoderConfig cfg = {}) {
    // Ground truth: phone 1 for 6 frames, phone 3 for 6, phone 0 for 6.
    for (int i = 0; i < 6; ++i) truth.push_back(1);
    for (int i = 0; i < 6; ++i) truth.push_back(3);
    for (int i = 0; i < 6; ++i) truth.push_back(0);
    model = std::make_unique<OracleModel>(topo, truth, margin);
    decoder = std::make_unique<PhoneLoopDecoder>(
        *model, topo, am::HmmTransitions::uniform(topo.num_states(), 2.0), cfg);
  }

  util::Matrix features() const {
    return util::Matrix(truth.size(), 1, 0.0f);
  }
};

TEST(PhoneLoopDecoder, OneBestRecoversClearSequence) {
  DecoderFixture fx(8.0f);
  const Lattice lat = fx.decoder->decode(fx.features());
  EXPECT_EQ(lat.best_path(), (std::vector<std::uint32_t>{1, 3, 0}));
}

TEST(PhoneLoopDecoder, LatticeContainsBestPathEdges) {
  DecoderFixture fx(8.0f);
  const Lattice lat = fx.decoder->decode(fx.features());
  std::set<std::uint32_t> phones;
  for (const auto& e : lat.edges()) phones.insert(e.phone);
  EXPECT_TRUE(phones.count(1));
  EXPECT_TRUE(phones.count(3));
  EXPECT_TRUE(phones.count(0));
}

TEST(PhoneLoopDecoder, PosteriorsFormValidDistribution) {
  DecoderFixture fx(2.0f);  // small margin -> competitive lattice
  const Lattice lat = fx.decoder->decode(fx.features());
  ASSERT_FALSE(lat.edges().empty());
  const auto occ = lat.frame_occupancy();
  for (std::size_t t = 0; t < occ.size(); ++t) {
    EXPECT_NEAR(occ[t], 1.0, 1e-3) << "frame " << t;
  }
  for (const auto& e : lat.edges()) {
    EXPECT_GE(e.posterior, 0.0);
    EXPECT_LE(e.posterior, 1.0 + 1e-9);
  }
}

TEST(PhoneLoopDecoder, AmbiguousAcousticsYieldRicherLattice) {
  DecoderFixture clear(10.0f);
  DecoderConfig wide;
  wide.lattice_beam = 20.0;
  DecoderFixture fuzzy(0.5f, wide);
  const Lattice lat_clear = clear.decoder->decode(clear.features());
  const Lattice lat_fuzzy = fuzzy.decoder->decode(fuzzy.features());
  EXPECT_GT(lat_fuzzy.edges().size(), lat_clear.edges().size());
}

TEST(PhoneLoopDecoder, EmptyFeaturesGiveEmptyLattice) {
  DecoderFixture fx;
  util::Matrix empty(0, 1);
  const Lattice lat = fx.decoder->decode(empty);
  EXPECT_EQ(lat.num_frames(), 0u);
  EXPECT_TRUE(lat.edges().empty());
}

TEST(PhoneLoopDecoder, VeryShortUtteranceStillProducesLattice) {
  DecoderFixture fx;
  util::Matrix two(2, 1, 0.0f);  // shorter than one 3-state phone
  const Lattice lat = fx.decoder->decode(two);
  EXPECT_FALSE(lat.edges().empty());
  EXPECT_FALSE(lat.best_path().empty());
  const auto occ = lat.frame_occupancy();
  for (double o : occ) EXPECT_NEAR(o, 1.0, 1e-6);
}

TEST(PhoneLoopDecoder, EdgesAreWellFormed) {
  DecoderFixture fx(1.0f);
  const Lattice lat = fx.decoder->decode(fx.features());
  for (const auto& e : lat.edges()) {
    EXPECT_LT(e.start_node, e.end_node);
    EXPECT_LE(e.end_node, lat.num_frames());
    EXPECT_LT(e.phone, 4u);
    EXPECT_TRUE(std::isfinite(e.score));
  }
}

TEST(PhoneLoopDecoder, StateCountMismatchThrows) {
  am::HmmTopology topo{4, 3};
  OracleModel model(topo, std::vector<std::size_t>(5, 0), 1.0f);
  am::HmmTopology wrong{5, 3};
  EXPECT_THROW(PhoneLoopDecoder(model, wrong,
                                am::HmmTransitions::uniform(15, 2.0), {}),
               std::invalid_argument);
}

TEST(PhoneLoopDecoder, DeterministicDecoding) {
  DecoderFixture fx(1.5f);
  const Lattice a = fx.decoder->decode(fx.features());
  const Lattice b = fx.decoder->decode(fx.features());
  ASSERT_EQ(a.edges().size(), b.edges().size());
  for (std::size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i].start_node, b.edges()[i].start_node);
    EXPECT_EQ(a.edges()[i].phone, b.edges()[i].phone);
    EXPECT_FLOAT_EQ(a.edges()[i].score, b.edges()[i].score);
  }
  EXPECT_EQ(a.best_path(), b.best_path());
}

}  // namespace
}  // namespace phonolid::decoder
