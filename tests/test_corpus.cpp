#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "corpus/dataset.h"
#include "corpus/language_model.h"
#include "corpus/phone_inventory.h"
#include "corpus/synthesizer.h"

namespace phonolid::corpus {
namespace {

TEST(PhoneInventory, SizeAndDeterminism) {
  const auto a = build_universal_inventory(30, 42);
  const auto b = build_universal_inventory(30, 42);
  ASSERT_EQ(a.size(), 30u);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(a.phone(i).label, b.phone(i).label);
    EXPECT_DOUBLE_EQ(a.phone(i).formant_hz[0], b.phone(i).formant_hz[0]);
  }
}

TEST(PhoneInventory, DifferentSeedsDiffer) {
  const auto a = build_universal_inventory(30, 1);
  const auto b = build_universal_inventory(30, 2);
  int diffs = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    if (std::abs(a.phone(i).formant_hz[0] - b.phone(i).formant_hz[0]) > 1e-9) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);
}

TEST(PhoneInventory, AcousticallyValidPrototypes) {
  const auto inv = build_universal_inventory(40, 7);
  for (std::size_t i = 0; i < inv.size(); ++i) {
    const auto& p = inv.phone(i);
    EXPECT_GT(p.formant_hz[0], 100.0);
    EXPECT_LT(p.formant_hz[0], 1000.0);
    EXPECT_GT(p.formant_hz[1], p.formant_hz[0]);
    EXPECT_GE(p.noise_fraction, 0.0);
    EXPECT_LE(p.noise_fraction, 1.0);
    EXPECT_GT(p.duration_mean_s, 0.01);
    EXPECT_LT(p.duration_mean_s, 0.5);
  }
}

TEST(LanguageSpec, RowsAreDistributions) {
  const auto inv = build_universal_inventory(20, 5);
  const auto lang = build_language(inv, "x", 0.3, 0.8, 11);
  double init_sum = 0.0;
  for (double p : lang.initial()) {
    EXPECT_GE(p, 0.0);
    init_sum += p;
  }
  EXPECT_NEAR(init_sum, 1.0, 1e-9);
  for (const auto& row : lang.bigram()) {
    double sum = 0.0;
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(LanguageSpec, SampleSequenceApproximatesTargetDuration) {
  const auto inv = build_universal_inventory(20, 5);
  const auto lang = build_language(inv, "x", 0.3, 0.8, 13);
  util::Rng rng(17);
  const auto seq = lang.sample_sequence(inv, 3.0, rng);
  double dur = 0.0;
  for (std::size_t p : seq) dur += inv.phone(p).duration_mean_s;
  EXPECT_GE(dur, 3.0);
  EXPECT_LT(dur, 3.6);
  EXPECT_GT(seq.size(), 10u);
}

TEST(LanguageFamily, LanguagesAreDistinct) {
  const auto inv = build_universal_inventory(30, 3);
  LanguageFamilyConfig cfg;
  cfg.num_languages = 6;
  cfg.sibling_stride = 0;
  const auto langs = build_language_family(inv, cfg, 77);
  ASSERT_EQ(langs.size(), 6u);
  for (std::size_t i = 0; i < langs.size(); ++i) {
    for (std::size_t j = i + 1; j < langs.size(); ++j) {
      EXPECT_GT(LanguageSpec::bigram_distance(langs[i], langs[j]), 0.2)
          << i << " vs " << j;
    }
  }
}

TEST(LanguageFamily, SiblingsAreCloserThanStrangers) {
  const auto inv = build_universal_inventory(30, 3);
  LanguageFamilyConfig cfg;
  cfg.num_languages = 8;
  cfg.sibling_stride = 4;        // languages 3 and 7 are siblings of 2 and 6
  cfg.sibling_similarity = 0.8;
  const auto langs = build_language_family(inv, cfg, 99);
  const double sib = LanguageSpec::bigram_distance(langs[2], langs[3]);
  const double stranger = LanguageSpec::bigram_distance(langs[2], langs[5]);
  EXPECT_LT(sib, stranger);
}

TEST(Synthesizer, RendersNonEmptyAudioWithAlignment) {
  const auto inv = build_universal_inventory(20, 5);
  Synthesizer synth(inv, 8000.0);
  util::Rng rng(23);
  const std::vector<std::size_t> phones = {0, 3, 7, 2, 9};
  const auto speaker = SpeakerProfile::sample(rng);
  const auto channel = ChannelProfile::sample(rng);
  const auto utt = synth.render(phones, speaker, channel, rng);
  ASSERT_EQ(utt.alignment.size(), phones.size());
  EXPECT_GT(utt.samples.size(), 800u);  // >= 5 phones * 30ms at 8 kHz-ish
  // Alignment tiles the sample range exactly.
  EXPECT_EQ(utt.alignment.front().start_sample, 0u);
  for (std::size_t i = 0; i + 1 < utt.alignment.size(); ++i) {
    EXPECT_EQ(utt.alignment[i].end_sample, utt.alignment[i + 1].start_sample);
    EXPECT_EQ(utt.alignment[i].phone, phones[i]);
  }
  EXPECT_EQ(utt.alignment.back().end_sample, utt.samples.size());
  for (float s : utt.samples) EXPECT_TRUE(std::isfinite(s));
}

TEST(Synthesizer, ChannelGainScalesSignal) {
  const auto inv = build_universal_inventory(20, 5);
  Synthesizer synth(inv, 8000.0);
  const std::vector<std::size_t> phones = {1, 2, 3};
  SpeakerProfile speaker;  // defaults
  ChannelProfile quiet, loud;
  quiet.gain = 0.5;
  quiet.snr_db = 60.0;
  loud.gain = 2.0;
  loud.snr_db = 60.0;
  util::Rng rng_a(5), rng_b(5);
  const auto a = synth.render(phones, speaker, quiet, rng_a);
  const auto b = synth.render(phones, speaker, loud, rng_b);
  double ea = 0.0, eb = 0.0;
  for (float s : a.samples) ea += static_cast<double>(s) * s;
  for (float s : b.samples) eb += static_cast<double>(s) * s;
  EXPECT_GT(eb, ea * 4.0);  // 4x gain -> 16x energy (same noise seed)
}

TEST(Dataset, QuickPresetBuildsConsistentCorpus) {
  CorpusConfig cfg = CorpusConfig::preset(util::Scale::kQuick, 2024);
  cfg.family.num_languages = 3;
  cfg.train_utts_per_language = 4;
  cfg.dev_utts_per_language_per_tier = 2;
  cfg.test_utts_per_language_per_tier = 2;
  cfg.am_train_utts_per_native = 3;
  cfg.num_native_languages = 2;
  const auto corpus = LreCorpus::build(cfg);

  EXPECT_EQ(corpus.num_target_languages(), 3u);
  EXPECT_EQ(corpus.vsm_train().size(), 12u);
  EXPECT_EQ(corpus.dev().size(), 3u * 2u * kNumTiers);
  EXPECT_EQ(corpus.test().size(), 3u * 2u * kNumTiers);
  EXPECT_EQ(corpus.am_train(0).size(), 3u);
  EXPECT_EQ(corpus.am_train(1).size(), 3u);

  // AM train has alignment; VSM/test sets do not (label-only, like real LRE
  // data).
  EXPECT_FALSE(corpus.am_train(0)[0].alignment.empty());
  EXPECT_TRUE(corpus.vsm_train()[0].alignment.empty());
  EXPECT_TRUE(corpus.test()[0].alignment.empty());

  // Labels are in range; tier indices partition the test set.
  std::set<std::size_t> seen;
  for (std::size_t tier = 0; tier < kNumTiers; ++tier) {
    for (std::size_t i : corpus.test_indices(static_cast<DurationTier>(tier))) {
      EXPECT_TRUE(seen.insert(i).second);
      EXPECT_GE(corpus.test()[i].language, 0);
      EXPECT_LT(corpus.test()[i].language, 3);
    }
  }
  EXPECT_EQ(seen.size(), corpus.test().size());
}

TEST(Dataset, TierDurationsOrdered) {
  CorpusConfig cfg = CorpusConfig::preset(util::Scale::kQuick, 11);
  cfg.family.num_languages = 2;
  cfg.train_utts_per_language = 2;
  cfg.dev_utts_per_language_per_tier = 1;
  cfg.test_utts_per_language_per_tier = 2;
  cfg.num_native_languages = 1;
  cfg.am_train_utts_per_native = 1;
  const auto corpus = LreCorpus::build(cfg);
  double mean_len[kNumTiers] = {0, 0, 0};
  std::size_t count[kNumTiers] = {0, 0, 0};
  for (const auto& u : corpus.test()) {
    mean_len[static_cast<std::size_t>(u.tier)] +=
        static_cast<double>(u.samples.size());
    ++count[static_cast<std::size_t>(u.tier)];
  }
  for (std::size_t t = 0; t < kNumTiers; ++t) {
    ASSERT_GT(count[t], 0u);
    mean_len[t] /= static_cast<double>(count[t]);
  }
  EXPECT_GT(mean_len[0], mean_len[1]);  // "30s" > "10s"
  EXPECT_GT(mean_len[1], mean_len[2]);  // "10s" > "3s"
}

TEST(Dataset, DeterministicAcrossBuilds) {
  CorpusConfig cfg = CorpusConfig::preset(util::Scale::kQuick, 5);
  cfg.family.num_languages = 2;
  cfg.train_utts_per_language = 2;
  cfg.dev_utts_per_language_per_tier = 1;
  cfg.test_utts_per_language_per_tier = 1;
  cfg.num_native_languages = 1;
  cfg.am_train_utts_per_native = 1;
  const auto a = LreCorpus::build(cfg);
  const auto b = LreCorpus::build(cfg);
  ASSERT_EQ(a.test().size(), b.test().size());
  for (std::size_t i = 0; i < a.test().size(); ++i) {
    ASSERT_EQ(a.test()[i].samples.size(), b.test()[i].samples.size());
    EXPECT_EQ(a.test()[i].samples, b.test()[i].samples) << "utterance " << i;
  }
}

}  // namespace
}  // namespace phonolid::corpus
