#include "am/gmm_hmm.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "corpus/language_model.h"
#include "corpus/synthesizer.h"

namespace phonolid::am {
namespace {

struct TinyWorld {
  corpus::PhoneInventory inventory;
  PhoneSetMap map;
  dsp::FeaturePipeline pipeline;
  corpus::Synthesizer synth;

  TinyWorld()
      : inventory(corpus::build_universal_inventory(12, 3)),
        map(build_phone_map(inventory, 6, 5)),
        pipeline(dsp::FeaturePipelineConfig{}),
        synth(inventory, 8000.0) {}

  corpus::Utterance make_utterance(std::uint64_t seed, double seconds = 1.5) {
    util::Rng rng(seed);
    const auto lang = corpus::build_language(inventory, "t", 0.4, 0.9, 17);
    const auto phones = lang.sample_sequence(inventory, seconds, rng);
    auto speaker = corpus::SpeakerProfile::sample(rng);
    auto channel = corpus::ChannelProfile::sample(rng);
    auto rendered = synth.render(phones, speaker, channel, rng);
    corpus::Utterance utt;
    utt.samples = std::move(rendered.samples);
    utt.alignment = std::move(rendered.alignment);
    return utt;
  }

  std::vector<AlignedUtterance> make_corpus(std::size_t n) {
    std::vector<AlignedUtterance> out;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(align_utterance(make_utterance(100 + i), pipeline, map));
    }
    return out;
  }
};

TEST(AlignUtterance, SegmentsTileFrames) {
  TinyWorld world;
  const auto utt = world.make_utterance(1);
  const auto aligned = align_utterance(utt, world.pipeline, world.map);
  ASSERT_GT(aligned.features.rows(), 0u);
  ASSERT_FALSE(aligned.phone_seq.empty());
  ASSERT_EQ(aligned.phone_seq.size(), aligned.seg_begin.size());
  ASSERT_EQ(aligned.phone_seq.size(), aligned.seg_end.size());
  EXPECT_EQ(aligned.seg_begin.front(), 0u);
  for (std::size_t s = 0; s + 1 < aligned.phone_seq.size(); ++s) {
    EXPECT_EQ(aligned.seg_end[s], aligned.seg_begin[s + 1]);
    EXPECT_LT(aligned.seg_begin[s], aligned.seg_end[s]);
  }
  EXPECT_EQ(aligned.seg_end.back(), aligned.features.rows());
  for (std::size_t p : aligned.phone_seq) {
    EXPECT_LT(p, world.map.num_frontend_phones());
  }
}

TEST(AlignUtterance, EmptyAlignmentYieldsNoSegments) {
  TinyWorld world;
  corpus::Utterance utt;
  utt.samples.assign(4000, 0.01f);
  const auto aligned = align_utterance(utt, world.pipeline, world.map);
  EXPECT_TRUE(aligned.phone_seq.empty());
  EXPECT_GT(aligned.features.rows(), 0u);
}

TEST(UniformStateLabels, SplitsSegmentsAcrossStates) {
  TinyWorld world;
  const auto aligned =
      align_utterance(world.make_utterance(2), world.pipeline, world.map);
  HmmTopology topo{world.map.num_frontend_phones(), 3};
  const auto labels = uniform_state_labels(aligned, topo);
  ASSERT_EQ(labels.state.size(), aligned.features.rows());
  // Every frame's state belongs to its segment's phone, and positions are
  // non-decreasing within a segment.
  for (std::size_t s = 0; s < aligned.phone_seq.size(); ++s) {
    std::size_t prev_pos = 0;
    for (std::size_t t = aligned.seg_begin[s]; t < aligned.seg_end[s]; ++t) {
      EXPECT_EQ(topo.phone_of(labels.state[t]), aligned.phone_seq[s]);
      const std::size_t pos = topo.position_of(labels.state[t]);
      EXPECT_GE(pos, prev_pos);
      prev_pos = pos;
    }
    // A long enough segment must reach the last state.
    if (aligned.seg_end[s] - aligned.seg_begin[s] >= 3) {
      EXPECT_EQ(prev_pos, 2u);
    }
  }
}

TEST(TrainGmmHmm, ProducesFiniteScores) {
  TinyWorld world;
  const auto data = world.make_corpus(6);
  GmmHmmTrainConfig cfg;
  cfg.gmm.num_components = 2;
  cfg.realign_passes = 1;
  const auto model = train_gmm_hmm(data, world.map.num_frontend_phones(), cfg);
  EXPECT_EQ(model.num_states(), world.map.num_frontend_phones() * 3);
  util::Matrix scores;
  model.score(data[0].features, scores);
  ASSERT_EQ(scores.rows(), data[0].features.rows());
  ASSERT_EQ(scores.cols(), model.num_states());
  for (std::size_t t = 0; t < scores.rows(); ++t) {
    for (std::size_t s = 0; s < scores.cols(); ++s) {
      EXPECT_TRUE(std::isfinite(scores(t, s)));
    }
  }
}

TEST(TrainGmmHmm, ModelPrefersTrueStateOnAverage) {
  TinyWorld world;
  const auto data = world.make_corpus(8);
  GmmHmmTrainConfig cfg;
  cfg.gmm.num_components = 2;
  const auto model = train_gmm_hmm(data, world.map.num_frontend_phones(), cfg);
  HmmTopology topo{world.map.num_frontend_phones(), 3};

  // On training data the true phone's states should beat the average
  // competing phone clearly more often than chance.
  const auto eval = align_utterance(world.make_utterance(500), world.pipeline,
                                    world.map);
  const auto labels = uniform_state_labels(eval, topo);
  util::Matrix scores;
  model.score(eval.features, scores);
  std::size_t wins = 0;
  for (std::size_t t = 0; t < scores.rows(); ++t) {
    const std::size_t truth = labels.state[t];
    double others = 0.0;
    for (std::size_t s = 0; s < scores.cols(); ++s) {
      if (s != truth) others += scores(t, s);
    }
    others /= static_cast<double>(scores.cols() - 1);
    if (scores(t, truth) > others) ++wins;
  }
  EXPECT_GT(static_cast<double>(wins) / static_cast<double>(scores.rows()),
            0.6);
}

TEST(ForcedAlign, RespectsPhoneSequence) {
  TinyWorld world;
  const auto data = world.make_corpus(6);
  GmmHmmTrainConfig cfg;
  cfg.gmm.num_components = 2;
  const auto model = train_gmm_hmm(data, world.map.num_frontend_phones(), cfg);

  const auto& utt = data[0];
  const auto labels = forced_align(utt, model);
  ASSERT_EQ(labels.state.size(), utt.features.rows());
  // Reconstruct the phone sequence from the alignment: collapsing runs of
  // equal phones must yield a subsequence consistent with utt.phone_seq.
  const HmmTopology& topo = model.topology();
  std::vector<std::size_t> decoded;
  for (std::size_t t = 0; t < labels.state.size(); ++t) {
    const std::size_t phone = topo.phone_of(labels.state[t]);
    if (decoded.empty() || decoded.back() != phone ||
        (t > 0 && topo.position_of(labels.state[t]) <
                      topo.position_of(labels.state[t - 1]))) {
      if (decoded.empty() || phone != decoded.back()) decoded.push_back(phone);
    }
  }
  // The forced alignment visits phones in order; every decoded phone must
  // appear in the reference sequence order (allowing merged repetitions).
  std::size_t ref = 0;
  for (std::size_t phone : decoded) {
    while (ref < utt.phone_seq.size() && utt.phone_seq[ref] != phone) ++ref;
    EXPECT_LT(ref, utt.phone_seq.size()) << "phone out of order";
  }
}

TEST(ForcedAlign, FallsBackWhenTooShort) {
  TinyWorld world;
  const auto data = world.make_corpus(4);
  GmmHmmTrainConfig cfg;
  cfg.gmm.num_components = 1;
  const auto model = train_gmm_hmm(data, world.map.num_frontend_phones(), cfg);

  // Construct an utterance whose frame count is below its chain length.
  AlignedUtterance tiny;
  tiny.features = util::Matrix(4, data[0].features.cols(), 0.1f);
  tiny.phone_seq = {0, 1, 2};  // needs 9 frames minimum
  tiny.seg_begin = {0, 1, 2};
  tiny.seg_end = {1, 2, 4};
  const auto labels = forced_align(tiny, model);
  EXPECT_EQ(labels.state.size(), 4u);  // uniform fallback, no crash
}

TEST(TrainGmmHmm, ThrowsOnEmptyData) {
  EXPECT_THROW(train_gmm_hmm({}, 5, {}), std::invalid_argument);
}

}  // namespace
}  // namespace phonolid::am
