#include "phonotactic/ngram_counts.h"

#include <gtest/gtest.h>

#include <cmath>

namespace phonolid::phonotactic {
namespace {

TEST(NgramIndexer, DimensionsPerOrder) {
  NgramIndexer idx(5, 3);
  EXPECT_EQ(idx.dimension(), 5u + 25u + 125u);
  EXPECT_EQ(idx.order_offset(1), 0u);
  EXPECT_EQ(idx.order_offset(2), 5u);
  EXPECT_EQ(idx.order_offset(3), 30u);
  EXPECT_EQ(idx.order_size(1), 5u);
  EXPECT_EQ(idx.order_size(2), 25u);
  EXPECT_EQ(idx.order_size(3), 125u);
}

TEST(NgramIndexer, IndexDecodeRoundTrip) {
  NgramIndexer idx(7, 3);
  std::uint32_t unigram[] = {4};
  std::uint32_t bigram[] = {2, 6};
  std::uint32_t trigram[] = {1, 0, 5};
  EXPECT_EQ(idx.decode(idx.index(unigram, 1)), std::vector<std::uint32_t>{4});
  EXPECT_EQ(idx.decode(idx.index(bigram, 2)),
            (std::vector<std::uint32_t>{2, 6}));
  EXPECT_EQ(idx.decode(idx.index(trigram, 3)),
            (std::vector<std::uint32_t>{1, 0, 5}));
}

TEST(NgramIndexer, IdsAreUniqueAcrossOrders) {
  NgramIndexer idx(3, 2);
  std::vector<bool> seen(idx.dimension(), false);
  for (std::uint32_t a = 0; a < 3; ++a) {
    const std::uint32_t id = idx.index(&a, 1);
    ASSERT_LT(id, idx.dimension());
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
  }
  for (std::uint32_t a = 0; a < 3; ++a) {
    for (std::uint32_t b = 0; b < 3; ++b) {
      std::uint32_t gram[] = {a, b};
      const std::uint32_t id = idx.index(gram, 2);
      ASSERT_LT(id, idx.dimension());
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
    }
  }
}

TEST(NgramIndexer, RejectsOversizedSpace) {
  EXPECT_THROW(NgramIndexer(5000, 4), std::invalid_argument);
  EXPECT_THROW(NgramIndexer(0, 2), std::invalid_argument);
}

TEST(SequenceCounts, CountsAllOrders) {
  NgramIndexer idx(4, 2);
  const std::vector<std::uint32_t> phones = {0, 1, 0, 1};
  const auto counts = sequence_ngram_counts(phones, idx);
  std::uint32_t u0[] = {0};
  std::uint32_t u1[] = {1};
  std::uint32_t b01[] = {0, 1};
  std::uint32_t b10[] = {1, 0};
  EXPECT_FLOAT_EQ(counts.at(idx.index(u0, 1)), 2.0f);
  EXPECT_FLOAT_EQ(counts.at(idx.index(u1, 1)), 2.0f);
  EXPECT_FLOAT_EQ(counts.at(idx.index(b01, 2)), 2.0f);
  EXPECT_FLOAT_EQ(counts.at(idx.index(b10, 2)), 1.0f);
}

TEST(SequenceCounts, ShortSequenceSkipsHighOrders) {
  NgramIndexer idx(4, 3);
  const std::vector<std::uint32_t> phones = {2};
  const auto counts = sequence_ngram_counts(phones, idx);
  EXPECT_EQ(counts.nnz(), 1u);
}

// Deterministic two-path lattice: path A = [p0], path B = [p1, p2], with
// equal scores so each path has posterior 0.5 at scale 1.
decoder::Lattice balanced_lattice() {
  std::vector<decoder::LatticeEdge> edges;
  edges.push_back({0, 2, 0, 0.0f, 0.0});
  edges.push_back({0, 1, 1, 0.0f, 0.0});
  edges.push_back({1, 2, 2, 0.0f, 0.0});
  return decoder::Lattice(2, std::move(edges));
}

TEST(ExpectedCounts, MatchPathPosteriors) {
  NgramIndexer idx(3, 2);
  NgramCountConfig cfg;
  cfg.acoustic_scale = 1.0;
  cfg.count_floor = 1e-9;
  const auto counts = expected_ngram_counts(balanced_lattice(), idx, cfg);

  std::uint32_t p0[] = {0};
  std::uint32_t p1[] = {1};
  std::uint32_t p2[] = {2};
  std::uint32_t b12[] = {1, 2};
  EXPECT_NEAR(counts.at(idx.index(p0, 1)), 0.5f, 1e-6);
  EXPECT_NEAR(counts.at(idx.index(p1, 1)), 0.5f, 1e-6);
  EXPECT_NEAR(counts.at(idx.index(p2, 1)), 0.5f, 1e-6);
  EXPECT_NEAR(counts.at(idx.index(b12, 2)), 0.5f, 1e-6);
  // Bigram (0, anything) never occurs: path A is a single edge.
  std::uint32_t b01[] = {0, 1};
  EXPECT_FLOAT_EQ(counts.at(idx.index(b01, 2)), 0.0f);
}

TEST(ExpectedCounts, UnigramMassEqualsExpectedPathLength) {
  // Expected #edges on a path = 0.5 * 1 + 0.5 * 2 = 1.5.
  NgramIndexer idx(3, 1);
  NgramCountConfig cfg;
  cfg.acoustic_scale = 1.0;
  cfg.count_floor = 1e-9;
  const auto counts = expected_ngram_counts(balanced_lattice(), idx, cfg);
  EXPECT_NEAR(counts.sum(), 1.5, 1e-6);
}

TEST(ExpectedCounts, EmptyLatticeGivesEmptyCounts) {
  NgramIndexer idx(3, 2);
  decoder::Lattice lat(4, {});
  const auto counts = expected_ngram_counts(lat, idx, {});
  EXPECT_TRUE(counts.empty());
}

TEST(ExpectedCounts, FloorFiltersNegligibleTuples) {
  // Heavily skewed lattice: path B nearly impossible.
  std::vector<decoder::LatticeEdge> edges;
  edges.push_back({0, 2, 0, 20.0f, 0.0});
  edges.push_back({0, 1, 1, 0.0f, 0.0});
  edges.push_back({1, 2, 2, 0.0f, 0.0});
  decoder::Lattice lat(2, std::move(edges));
  NgramIndexer idx(3, 2);
  NgramCountConfig strict;
  strict.acoustic_scale = 1.0;
  strict.count_floor = 1e-3;
  const auto counts = expected_ngram_counts(lat, idx, strict);
  std::uint32_t p1[] = {1};
  EXPECT_FLOAT_EQ(counts.at(idx.index(p1, 1)), 0.0f);
  std::uint32_t p0[] = {0};
  EXPECT_GT(counts.at(idx.index(p0, 1)), 0.99f);
}

}  // namespace
}  // namespace phonolid::phonotactic
