#include "eval/diagnostics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "eval/metrics.h"
#include "obs/ledger.h"

namespace phonolid::eval {
namespace {

double ref_cllr(const std::vector<double>& targets,
                const std::vector<double>& nontargets) {
  double t = 0.0, n = 0.0;
  for (double s : targets) t += std::log2(1.0 + std::exp(-s));
  for (double s : nontargets) n += std::log2(1.0 + std::exp(s));
  return 0.5 * (t / static_cast<double>(targets.size()) +
                n / static_cast<double>(nontargets.size()));
}

TEST(Cllr, MatchesHandComputedFormula) {
  TrialSet trials;
  trials.target_scores = {2.0, 1.0, -0.5};
  trials.nontarget_scores = {-2.0, 0.3};
  EXPECT_NEAR(cllr(trials),
              ref_cllr(trials.target_scores, trials.nontarget_scores), 1e-12);
}

TEST(Cllr, ZeroScoresCostOneBit) {
  // An LLR of 0 carries no information: exactly 1 bit per trial.
  TrialSet trials;
  trials.target_scores = {0.0, 0.0};
  trials.nontarget_scores = {0.0};
  EXPECT_NEAR(cllr(trials), 1.0, 1e-12);
}

TEST(Cllr, WellSeparatedScoresCostNothing) {
  TrialSet trials;
  trials.target_scores = {50.0};
  trials.nontarget_scores = {-50.0};
  EXPECT_NEAR(cllr(trials), 0.0, 1e-9);
  EXPECT_EQ(cllr(TrialSet{}), 0.0);
}

TEST(Cllr, LargeScoresDoNotOverflow) {
  TrialSet trials;
  trials.target_scores = {-1000.0};  // catastrophically miscalibrated
  trials.nontarget_scores = {-1000.0};
  const double c = cllr(trials);
  EXPECT_TRUE(std::isfinite(c));
  EXPECT_GT(c, 500.0);  // ~ 1000 * log2(e) / 2
}

TEST(MinCllr, PerfectlySeparatedIsZero) {
  // Badly calibrated (all scores negative) but perfectly *ranked*:
  // PAV recalibration recovers a zero-cost system.
  TrialSet trials;
  trials.target_scores = {-1.0, -2.0};
  trials.nontarget_scores = {-5.0, -4.0};
  EXPECT_GT(cllr(trials), 1.0);
  EXPECT_NEAR(min_cllr(trials), 0.0, 1e-9);
}

TEST(MinCllr, FullyReversedRankingCostsOneBit) {
  // One target below one nontarget: PAV merges both into a single block
  // with p = 0.5, i.e. LLR 0 everywhere, which costs exactly 1 bit.
  TrialSet trials;
  trials.target_scores = {-1.0};
  trials.nontarget_scores = {1.0};
  EXPECT_NEAR(min_cllr(trials), 1.0, 1e-12);
}

TEST(MinCllr, HandComputedPavBlocks) {
  // Scores ascending: n(-2) t(-1) n(0) t(1) t(2); Nt = 3, Nn = 2.
  // Isotonic fit of the target indicators [0 1 0 1 1] merges the (1, 0)
  // violation at scores -1 / 0 into a p = 1/2 block:
  //   [p=0 | p=1/2 p=1/2 | p=1 p=1].
  // At prior odds Nt/Nn = 3/2 the middle block's LLR is
  // logit(1/2) - log(3/2) = -log(3/2); the pure blocks contribute 0.
  TrialSet trials;
  trials.target_scores = {-1.0, 1.0, 2.0};
  trials.nontarget_scores = {-2.0, 0.0};
  const double l = std::log(1.5);
  const double expected = 0.5 * (std::log2(1.0 + std::exp(l)) / 3.0 +
                                 std::log2(1.0 + std::exp(-l)) / 2.0);
  EXPECT_NEAR(min_cllr(trials), expected, 1e-9);
}

TEST(MinCllr, NeverExceedsCllr) {
  TrialSet trials;
  trials.target_scores = {0.3, -0.2, 1.7, 0.4};
  trials.nontarget_scores = {-0.6, 0.9, -1.2, 0.1, -0.3};
  EXPECT_LE(min_cllr(trials), cllr(trials) + 1e-12);
}

/// A hand-built 2-language, 2-subsystem ledger with 4 utterances and two
/// DBA rounds; every diagnostic below is checkable by hand.
obs::DecisionLedger make_ledger() {
  obs::DecisionLedger led;
  led.num_classes = 2;
  led.num_subsystems = 2;
  led.languages = {"alpha", "beta"};
  led.scale = "quick";
  led.seed = 7;
  // True labels 0 0 1 1; fused arg-max 0 0 1 0 (utt 3 misclassified).
  const double fused[4][2] = {
      {2.0, -2.0}, {1.0, -1.0}, {-1.0, 1.0}, {3.0, -3.0}};
  for (std::uint64_t j = 0; j < 4; ++j) {
    obs::LedgerEntry e;
    e.utt = j;
    e.corpus_id = 100 + j;
    e.true_label = j < 2 ? 0 : 1;
    e.tier = j % 2 == 0 ? "30s" : "10s";
    e.scores = {{0.5 - 0.1 * static_cast<double>(j), -0.5},
                {0.25, -0.25 + 0.05 * static_cast<double>(j)}};
    e.fused_llr = {fused[j][0], fused[j][1]};
    led.entries.push_back(std::move(e));
  }
  // Round 1 adopts utts 0 (correct) and 3 (hyp alpha, wrong).
  // Round 2 re-adopts utt 3 with hyp beta: correct, and a label flip.
  for (std::uint64_t j = 0; j < 4; ++j) {
    obs::LedgerRound r1;
    r1.round = 1;
    r1.mode = "DBA-M1";
    r1.min_votes = 2;
    r1.best_class = 0;
    r1.vote_count = 2;
    r1.votes = {1, 1};
    r1.margins = {0.4, 0.2};
    if (j == 0 || j == 3) {
      r1.adopted = true;
      r1.hyp_label = 0;
      r1.correct = j == 0;
    }
    led.entries[j].rounds.push_back(std::move(r1));

    obs::LedgerRound r2;
    r2.round = 2;
    r2.mode = "DBA-M2";
    r2.min_votes = 2;
    r2.best_class = j == 3 ? 1 : 0;
    r2.vote_count = 1;
    r2.votes = {1, 0};
    r2.margins = {0.1, -0.3};
    if (j == 3) {
      r2.adopted = true;
      r2.hyp_label = 1;
      r2.correct = true;
      r2.flip = true;
    }
    led.entries[j].rounds.push_back(std::move(r2));
  }
  return led;
}

TEST(Diagnostics, AdoptionPrecisionRecallPerRound) {
  const DiagnosticsResult d = compute_diagnostics(make_ledger());
  ASSERT_EQ(d.rounds.size(), 2u);
  // Round 1: 2 adopted, 1 correct -> precision 1/2, recall 1/4.
  EXPECT_EQ(d.rounds[0].round, 1u);
  EXPECT_EQ(d.rounds[0].mode, "DBA-M1");
  EXPECT_EQ(d.rounds[0].adopted, 2u);
  EXPECT_EQ(d.rounds[0].correct, 1u);
  EXPECT_NEAR(d.rounds[0].precision, 0.5, 1e-12);
  EXPECT_NEAR(d.rounds[0].recall, 0.25, 1e-12);
  EXPECT_EQ(d.rounds[0].flips, 0u);
  // Round 2: 1 adopted, 1 correct, 1 flip.
  EXPECT_EQ(d.rounds[1].round, 2u);
  EXPECT_EQ(d.rounds[1].mode, "DBA-M2");
  EXPECT_EQ(d.rounds[1].adopted, 1u);
  EXPECT_EQ(d.rounds[1].correct, 1u);
  EXPECT_NEAR(d.rounds[1].precision, 1.0, 1e-12);
  EXPECT_EQ(d.rounds[1].flips, 1u);
  // Overall: 3 adoptions, 2 correct, 1 flip.
  EXPECT_EQ(d.adopted, 3u);
  EXPECT_EQ(d.adopted_correct, 2u);
  EXPECT_NEAR(d.adoption_precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(d.adoption_recall, 0.5, 1e-12);
  EXPECT_EQ(d.flips, 1u);
}

TEST(Diagnostics, ConfusionAndAccuracyFromFusedScores) {
  const DiagnosticsResult d = compute_diagnostics(make_ledger());
  EXPECT_TRUE(d.calibrated);
  EXPECT_EQ(d.num_utts, 4u);
  EXPECT_NEAR(d.accuracy, 0.75, 1e-12);
  // Rows = true label, cols = prediction: alpha [2 0], beta [1 1].
  ASSERT_EQ(d.confusion.size(), 4u);
  EXPECT_EQ(d.confusion[0], 2u);
  EXPECT_EQ(d.confusion[1], 0u);
  EXPECT_EQ(d.confusion[2], 1u);
  EXPECT_EQ(d.confusion[3], 1u);
  ASSERT_EQ(d.languages.size(), 2u);
  EXPECT_EQ(d.languages[0].language, "alpha");
  EXPECT_EQ(d.languages[0].trials, 2u);
  EXPECT_EQ(d.languages[0].correct, 2u);
  EXPECT_NEAR(d.languages[0].accuracy, 1.0, 1e-12);
  EXPECT_EQ(d.languages[1].trials, 2u);
  EXPECT_EQ(d.languages[1].correct, 1u);
  EXPECT_NEAR(d.languages[1].accuracy, 0.5, 1e-12);
}

TEST(Diagnostics, PooledCllrMatchesTrialSetCllr) {
  const DiagnosticsResult d = compute_diagnostics(make_ledger());
  // The pooled trial set over the fused LLR matrix, written out by hand.
  TrialSet trials;
  trials.target_scores = {2.0, 1.0, 1.0, -3.0};
  trials.nontarget_scores = {-2.0, -1.0, -1.0, 3.0};
  EXPECT_NEAR(d.cllr, cllr(trials), 1e-9);
  EXPECT_NEAR(d.min_cllr, min_cllr(trials), 1e-9);
  EXPECT_LE(d.min_cllr, d.cllr + 1e-12);
}

TEST(Diagnostics, FallsBackToBaselineScoresWithoutFusedLlr) {
  obs::DecisionLedger led = make_ledger();
  for (auto& e : led.entries) e.fused_llr.clear();
  const DiagnosticsResult d = compute_diagnostics(led);
  EXPECT_FALSE(d.calibrated);
  // Mean baseline scores still put class 0 on top for every utterance, so
  // both beta utterances are misclassified.
  EXPECT_NEAR(d.accuracy, 0.5, 1e-12);
}

TEST(Diagnostics, EmptyLedgerThrows) {
  EXPECT_THROW(compute_diagnostics(obs::DecisionLedger{}),
               std::invalid_argument);
}

TEST(Diagnostics, JsonHasVersionedQualityLeaves) {
  const DiagnosticsResult d = compute_diagnostics(make_ledger());
  const obs::Json doc = diagnostics_json(d);
  ASSERT_NE(doc.find("quality_version"), nullptr);
  EXPECT_EQ(doc.find("quality_version")->as_int(), kQualityVersion);
  for (const char* key : {"eer", "cavg", "cllr", "min_cllr", "accuracy",
                          "adoption", "languages", "confusion", "histogram",
                          "det"}) {
    EXPECT_NE(doc.find(key), nullptr) << key;
  }
  const obs::Json* adoption = doc.find("adoption");
  ASSERT_NE(adoption, nullptr);
  ASSERT_NE(adoption->find("rounds"), nullptr);
  EXPECT_EQ(adoption->find("rounds")->as_array().size(), 2u);
  EXPECT_NEAR(adoption->find("precision")->as_double(), 2.0 / 3.0, 1e-12);
}

TEST(Diagnostics, HistogramCountsEveryTrialExactlyOnce) {
  const DiagnosticsResult d = compute_diagnostics(make_ledger());
  std::uint64_t t = 0, n = 0;
  for (std::uint64_t c : d.histogram.target_counts) t += c;
  for (std::uint64_t c : d.histogram.nontarget_counts) n += c;
  EXPECT_EQ(t, 4u);  // one target trial per utterance (2 classes)
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(d.histogram.target_counts.size(), d.histogram.edges.size() + 1);
  EXPECT_EQ(d.histogram.nontarget_counts.size(),
            d.histogram.edges.size() + 1);
}

TEST(Ledger, JsonlRoundTripIsLossless) {
  const obs::DecisionLedger led = make_ledger();
  std::ostringstream first;
  led.write_jsonl(first);

  std::istringstream in(first.str());
  const obs::DecisionLedger back = obs::DecisionLedger::read_jsonl(in);
  EXPECT_EQ(back.num_classes, led.num_classes);
  EXPECT_EQ(back.num_subsystems, led.num_subsystems);
  EXPECT_EQ(back.languages, led.languages);
  EXPECT_EQ(back.scale, led.scale);
  EXPECT_EQ(back.seed, led.seed);
  ASSERT_EQ(back.entries.size(), led.entries.size());
  for (std::size_t j = 0; j < led.entries.size(); ++j) {
    const obs::LedgerEntry& a = led.entries[j];
    const obs::LedgerEntry& b = back.entries[j];
    EXPECT_EQ(b.utt, a.utt);
    EXPECT_EQ(b.corpus_id, a.corpus_id);
    EXPECT_EQ(b.true_label, a.true_label);
    EXPECT_EQ(b.tier, a.tier);
    EXPECT_EQ(b.scores, a.scores);
    EXPECT_EQ(b.fused_llr, a.fused_llr);
    ASSERT_EQ(b.rounds.size(), a.rounds.size());
    for (std::size_t r = 0; r < a.rounds.size(); ++r) {
      EXPECT_EQ(b.rounds[r].round, a.rounds[r].round);
      EXPECT_EQ(b.rounds[r].mode, a.rounds[r].mode);
      EXPECT_EQ(b.rounds[r].min_votes, a.rounds[r].min_votes);
      EXPECT_EQ(b.rounds[r].best_class, a.rounds[r].best_class);
      EXPECT_EQ(b.rounds[r].vote_count, a.rounds[r].vote_count);
      EXPECT_EQ(b.rounds[r].tie, a.rounds[r].tie);
      EXPECT_EQ(b.rounds[r].votes, a.rounds[r].votes);
      EXPECT_EQ(b.rounds[r].margins, a.rounds[r].margins);
      EXPECT_EQ(b.rounds[r].adopted, a.rounds[r].adopted);
      EXPECT_EQ(b.rounds[r].hyp_label, a.rounds[r].hyp_label);
      EXPECT_EQ(b.rounds[r].correct, a.rounds[r].correct);
      EXPECT_EQ(b.rounds[r].flip, a.rounds[r].flip);
    }
  }

  // Re-serializing the round-tripped ledger is byte-identical.
  std::ostringstream second;
  back.write_jsonl(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Ledger, VersionMismatchThrows) {
  std::istringstream wrong("{\"ledger_version\":999}\n");
  EXPECT_THROW(obs::DecisionLedger::read_jsonl(wrong), std::runtime_error);
  std::istringstream empty("");
  EXPECT_THROW(obs::DecisionLedger::read_jsonl(empty), std::runtime_error);
}

TEST(Ledger, FindResolvesUttIndexAndCorpusId) {
  const obs::DecisionLedger led = make_ledger();
  ASSERT_NE(led.find(1), nullptr);
  EXPECT_EQ(led.find(1)->utt, 1u);
  ASSERT_NE(led.find(103), nullptr);  // corpus id of utterance 3
  EXPECT_EQ(led.find(103)->utt, 3u);
  EXPECT_EQ(led.find(999), nullptr);
}

TEST(Ledger, GoldenExplainOutput) {
  obs::DecisionLedger led;
  led.num_classes = 2;
  led.num_subsystems = 1;
  led.languages = {"alpha", "beta"};
  obs::LedgerEntry e;
  e.utt = 1;
  e.corpus_id = 101;
  e.true_label = 0;
  e.tier = "30s";
  e.scores = {{0.5, -0.5}};
  obs::LedgerRound r;
  r.round = 1;
  r.mode = "DBA-M1";
  r.min_votes = 1;
  r.best_class = 0;
  r.vote_count = 1;
  r.votes = {1};
  r.margins = {0.5};
  r.adopted = true;
  r.hyp_label = 0;
  r.correct = true;
  e.rounds.push_back(r);
  e.fused_llr = {1.5, -1.5};
  led.entries.push_back(e);

  const std::string expected =
      "utterance #1 (corpus id 101)\n"
      "  true language : alpha (0)   tier: 30s\n"
      "  baseline scores f_qk (* = true class, ^ = argmax):\n"
      "    q0:  +0.5000^*  -0.5000  \n"
      "  round 1 [DBA-M1, V>=1]: leading alpha with 1/1 votes\n"
      "    votes: q0+(+0.5000)\n"
      "    ADOPTED as alpha (correct)\n"
      "  fused LLR (calibrated):\n"
      "     +1.5000^  -1.5000 \n"
      "  fused decision : alpha (correct)\n";
  EXPECT_EQ(obs::format_explain(led, led.entries[0]), expected);
}

}  // namespace
}  // namespace phonolid::eval
