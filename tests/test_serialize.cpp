#include "util/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

namespace phonolid::util {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x1234567890ABCDEFull);
  w.write_i64(-42);
  w.write_f32(3.25f);
  w.write_f64(-2.5e100);

  BinaryReader r(ss);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEF);
  EXPECT_EQ(r.read_u64(), 0x1234567890ABCDEFull);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.read_f64(), -2.5e100);
}

TEST(Serialize, StringRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_string("hello phonolid");
  w.write_string("");
  BinaryReader r(ss);
  EXPECT_EQ(r.read_string(), "hello phonolid");
  EXPECT_EQ(r.read_string(), "");
}

TEST(Serialize, VectorRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_f32_vec({1.0f, -2.0f, 3.5f});
  w.write_f64_vec({});
  w.write_u32_vec({7, 8, 9});
  BinaryReader r(ss);
  EXPECT_EQ(r.read_f32_vec(), (std::vector<float>{1.0f, -2.0f, 3.5f}));
  EXPECT_TRUE(r.read_f64_vec().empty());
  EXPECT_EQ(r.read_u32_vec(), (std::vector<std::uint32_t>{7, 8, 9}));
}

TEST(Serialize, MagicRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_magic("TEST", 3);
  BinaryReader r(ss);
  EXPECT_NO_THROW(r.expect_magic("TEST", 3));
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_magic("AAAA", 1);
  BinaryReader r(ss);
  EXPECT_THROW(r.expect_magic("BBBB", 1), SerializeError);
}

TEST(Serialize, WrongVersionThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_magic("TEST", 2);
  BinaryReader r(ss);
  EXPECT_THROW(r.expect_magic("TEST", 1), SerializeError);
}

TEST(Serialize, TruncatedStreamThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u32(5);
  BinaryReader r(ss);
  (void)r.read_u32();
  EXPECT_THROW(r.read_u64(), SerializeError);
}

TEST(Serialize, CorruptLengthPrefixThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  // A length prefix far beyond the guard (kMaxElements) must be rejected
  // before any allocation attempt.
  w.write_u64(0xFFFFFFFFFFFFull);
  BinaryReader r(ss);
  EXPECT_THROW(r.read_f32_vec(), SerializeError);
}

TEST(Serialize, BytesRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  std::string blob = "binary\0blob\xff payload";
  blob.push_back('\0');
  w.write_bytes(blob);
  w.write_bytes("");
  BinaryReader r(ss);
  EXPECT_EQ(r.read_bytes(), blob);
  EXPECT_EQ(r.read_bytes(), "");
}

TEST(Serialize, OversizedBytesLengthThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64(0x7FFFFFFFFFFFull);  // claims ~128 TiB of payload
  BinaryReader r(ss);
  EXPECT_THROW(r.read_bytes(), SerializeError);
}

TEST(Serialize, OversizedStringLengthThrows) {
  // Strings are identifiers, never bulk data: a corrupted length prefix
  // beyond kMaxStringBytes must be rejected before allocation, even though
  // it would pass the (much larger) element-count guard.
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64((1ull << 20) + 1);
  BinaryReader r(ss);
  EXPECT_THROW(r.read_string(), SerializeError);
}

}  // namespace
}  // namespace phonolid::util
