// Cross-checks between the evaluation primitives.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace phonolid::eval {
namespace {

TrialSet gaussian_trials(double separation, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  TrialSet t;
  for (std::size_t i = 0; i < n; ++i) {
    t.target_scores.push_back(rng.gaussian(separation, 1.0));
    t.nontarget_scores.push_back(rng.gaussian(-separation, 1.0));
  }
  return t;
}

TEST(EvalConsistency, EerLiesOnTheDetCurveDiagonal) {
  const auto trials = gaussian_trials(0.8, 4000, 3);
  const double eer = equal_error_rate(trials);
  const auto curve = det_curve(trials);
  // Find the curve point closest to the diagonal; its coordinates must
  // bracket the reported EER.
  double best_gap = 1e9;
  DetPoint closest;
  for (const auto& p : curve) {
    const double gap = std::abs(p.p_fa - p.p_miss);
    if (gap < best_gap) {
      best_gap = gap;
      closest = p;
    }
  }
  EXPECT_NEAR(eer, 0.5 * (closest.p_fa + closest.p_miss), 0.01);
}

TEST(EvalConsistency, GaussianEerMatchesTheory) {
  // Equal-variance Gaussians separated by 2a: EER = Phi(-a).
  for (double a : {0.5, 1.0, 1.5}) {
    const auto trials = gaussian_trials(a, 60000, 7);
    const double theory = util::normal_cdf(-a);
    EXPECT_NEAR(equal_error_rate(trials), theory, 0.01) << a;
  }
}

TEST(EvalConsistency, CavgAtBayesThresholdUpperBoundsEerTimesTwoApprox) {
  // For well-calibrated LLR scores, Cavg at threshold 0 is close to the
  // EER (both average miss/fa at nearby operating points).
  util::Rng rng(11);
  const std::size_t n = 6000;
  util::Matrix llr(n, 2);
  std::vector<std::int32_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<std::int32_t>(i % 2);
    for (std::size_t c = 0; c < 2; ++c) {
      const double mean = (static_cast<std::int32_t>(c) == y[i]) ? 1.0 : -1.0;
      llr(i, c) = static_cast<float>(rng.gaussian(mean, 1.0));
    }
  }
  const double c = cavg(llr, y, 2);
  const double e = equal_error_rate(TrialSet::from_scores(llr, y));
  EXPECT_NEAR(c, e, 0.03);
}

TEST(EvalConsistency, ThinnedCurveEerApproximatesFullCurveEer) {
  const auto trials = gaussian_trials(1.0, 3000, 13);
  const auto curve = det_curve(trials);
  const auto thin = thin_det_curve(curve, 64);
  // Recompute an EER estimate from the thinned curve.
  double eer_thin = 0.5;
  DetPoint prev = thin.front();
  for (const auto& p : thin) {
    if (p.p_fa >= p.p_miss) {
      eer_thin = 0.25 * (p.p_fa + p.p_miss + prev.p_fa + prev.p_miss);
      break;
    }
    prev = p;
  }
  EXPECT_NEAR(eer_thin, equal_error_rate(trials), 0.02);
}

TEST(EvalConsistency, LlrIdentityOrderPreserved) {
  // Converting log-posteriors to LLR must not change the arg-max decision.
  util::Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    util::Matrix lp(1, 4);
    double lse_in[4];
    for (std::size_t c = 0; c < 4; ++c) lse_in[c] = rng.gaussian();
    const double lse = util::log_sum_exp(std::span<const double>(lse_in, 4));
    for (std::size_t c = 0; c < 4; ++c) {
      lp(0, c) = static_cast<float>(lse_in[c] - lse);
    }
    const auto llr = log_posteriors_to_llr(lp);
    EXPECT_EQ(util::argmax(lp.row(0)), util::argmax(llr.row(0)));
  }
}

TEST(EvalConsistency, IdentificationAccuracyConsistentWithPerfectScores) {
  util::Matrix scores(6, 3, -1.0f);
  std::vector<std::int32_t> y = {0, 1, 2, 0, 1, 2};
  for (std::size_t i = 0; i < 6; ++i) {
    scores(i, static_cast<std::size_t>(y[i])) = 1.0f;
  }
  EXPECT_DOUBLE_EQ(identification_accuracy(scores, y), 1.0);
  const auto trials = TrialSet::from_scores(scores, y);
  EXPECT_DOUBLE_EQ(equal_error_rate(trials), 0.0);
}

}  // namespace
}  // namespace phonolid::eval
