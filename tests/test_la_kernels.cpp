#include "la/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "la/batched_gaussian.h"
#include "util/matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace phonolid::la {
namespace {

// Odd, unaligned and degenerate shapes: every size class the blocked
// kernels special-case (empty, sub-tile, one-past-lane, multi-tile).
constexpr std::size_t kShapes[] = {0, 1, 3, 17, 129};

util::Matrix random_matrix(std::size_t rows, std::size_t cols,
                           util::Rng& rng) {
  util::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
  }
  return m;
}

void expect_matrix_near(const util::Matrix& got, const util::Matrix& want,
                        float tol) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) {
      EXPECT_NEAR(got(i, j), want(i, j), tol)
          << "at (" << i << ", " << j << ")";
    }
  }
}

float shape_tolerance(std::size_t k) {
  // Reassociated float sums drift with the reduction length.
  return 1e-4f * static_cast<float>(k + 1);
}

TEST(LaKernels, GemmMatchesReference) {
  util::Rng rng(11);
  for (std::size_t m : kShapes) {
    for (std::size_t k : kShapes) {
      for (std::size_t n : kShapes) {
        const util::Matrix a = random_matrix(m, k, rng);
        const util::Matrix b = random_matrix(k, n, rng);
        util::Matrix got, want;
        gemm(a, b, got);
        ref::gemm(a, b, want);
        expect_matrix_near(got, want, shape_tolerance(k));
      }
    }
  }
}

TEST(LaKernels, GemmNtMatchesReferenceWithEpilogues) {
  util::Rng rng(12);
  for (std::size_t m : kShapes) {
    for (std::size_t k : kShapes) {
      for (std::size_t n : kShapes) {
        const util::Matrix a = random_matrix(m, k, rng);
        const util::Matrix b = random_matrix(n, k, rng);
        std::vector<float> bias(n);
        for (auto& v : bias) v = static_cast<float>(rng.uniform(-1.0, 1.0));
        for (const Epilogue ep :
             {Epilogue::kNone, Epilogue::kBias, Epilogue::kBiasSigmoid}) {
          util::Matrix got, want;
          gemm_nt(a, b, got, bias, ep);
          ref::gemm_nt(a, b, want, bias, ep);
          expect_matrix_near(got, want, shape_tolerance(k));
        }
      }
    }
  }
}

TEST(LaKernels, GemmTnMatchesReferenceIncludingAccumulate) {
  util::Rng rng(13);
  for (std::size_t k : kShapes) {
    for (std::size_t m : kShapes) {
      for (std::size_t n : kShapes) {
        const util::Matrix a = random_matrix(k, m, rng);
        const util::Matrix b = random_matrix(k, n, rng);
        util::Matrix got, want;
        gemm_tn(a, b, got, 0.7f);
        ref::gemm_tn(a, b, want, 0.7f);
        expect_matrix_near(got, want, shape_tolerance(k));

        util::Matrix seed = random_matrix(m, n, rng);
        util::Matrix got_acc = seed, want_acc = seed;
        gemm_tn(a, b, got_acc, -0.3f, /*accumulate=*/true);
        ref::gemm_tn(a, b, want_acc, -0.3f, /*accumulate=*/true);
        expect_matrix_near(got_acc, want_acc, shape_tolerance(k));
      }
    }
  }
}

TEST(LaKernels, GemvMatchesNaive) {
  util::Rng rng(14);
  for (std::size_t m : kShapes) {
    for (std::size_t n : kShapes) {
      const util::Matrix a = random_matrix(m, n, rng);
      std::vector<float> x(n), y(m), out(m), out_t(n);
      for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      for (auto& v : y) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      gemv(a, x, out);
      for (std::size_t i = 0; i < m; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < n; ++j) acc += a(i, j) * x[j];
        EXPECT_NEAR(out[i], acc, shape_tolerance(n));
      }
      gemv_t(a, y, out_t);
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t i = 0; i < m; ++i) acc += a(i, j) * y[i];
        EXPECT_NEAR(out_t[j], acc, shape_tolerance(m));
      }
    }
  }
}

TEST(LaKernels, DotAndAxpyMatchNaive) {
  util::Rng rng(15);
  for (std::size_t n : kShapes) {
    std::vector<float> a(n), b(n), y(n);
    for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : y) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    double want = 0.0;
    for (std::size_t i = 0; i < n; ++i) want += a[i] * b[i];
    EXPECT_NEAR(dot(a, b), want, shape_tolerance(n));

    std::vector<float> y2 = y;
    axpy(0.5f, a, y2);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_FLOAT_EQ(y2[i], y[i] + 0.5f * a[i]);
    }
  }
}

TEST(LaKernels, SparseKernelsMatchNaive) {
  const std::vector<std::uint32_t> idx = {0, 2, 3, 7, 8, 9, 15};
  const std::vector<float> val = {1.0f, -2.0f, 0.5f, 3.0f, -0.25f, 4.0f, 2.0f};
  std::vector<float> dense(17);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    dense[i] = static_cast<float>(i) * 0.1f - 0.5f;
  }
  double want = 0.0;
  for (std::size_t i = 0; i < idx.size(); ++i) want += val[i] * dense[idx[i]];
  EXPECT_NEAR(sparse_dot(idx, val, dense), want, 1e-5);

  std::vector<float> acc = dense;
  sparse_axpy(2.0f, idx, val, acc);
  for (std::size_t i = 0; i < idx.size(); ++i) dense[idx[i]] += 2.0f * val[i];
  for (std::size_t i = 0; i < acc.size(); ++i) {
    EXPECT_FLOAT_EQ(acc[i], dense[i]);
  }
  // Empty sparse vector is a no-op / zero.
  EXPECT_EQ(sparse_dot({}, {}, dense), 0.0f);
  sparse_axpy(1.0f, {}, {}, acc);
}

TEST(LaKernels, SigmoidIsStableAtExtremes) {
  EXPECT_FLOAT_EQ(sigmoid(0.0f), 0.5f);
  EXPECT_NEAR(sigmoid(100.0f), 1.0f, 1e-6);
  EXPECT_NEAR(sigmoid(-100.0f), 0.0f, 1e-6);
  EXPECT_GT(sigmoid(-100.0f), 0.0f - 1e-30f);
}

TEST(LaKernels, BatchedGaussianMatchesScalarReference) {
  util::Rng rng(16);
  const std::size_t dim = 17;
  const std::size_t comps = 5;
  const std::size_t frames = 129;
  BatchedGaussians::Builder builder(dim, comps);
  std::vector<std::vector<float>> means(comps), vars(comps);
  std::vector<float> biases(comps);
  for (std::size_t c = 0; c < comps; ++c) {
    means[c].resize(dim);
    vars[c].resize(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      means[c][d] = static_cast<float>(rng.uniform(-1.0, 1.0));
      vars[c][d] = static_cast<float>(rng.uniform(0.1, 2.0));
    }
    biases[c] = static_cast<float>(rng.uniform(-1.0, 0.0));
    builder.add(means[c], vars[c], biases[c]);
  }
  const BatchedGaussians bg = builder.build();
  EXPECT_EQ(bg.num_components(), comps);
  EXPECT_GT(bg.flops_per_frame(), 0.0);

  const util::Matrix x = random_matrix(frames, dim, rng);
  util::Matrix scores;
  bg.score(x, scores);
  ASSERT_EQ(scores.rows(), frames);
  ASSERT_EQ(scores.cols(), comps);
  for (std::size_t t = 0; t < frames; ++t) {
    for (std::size_t c = 0; c < comps; ++c) {
      double quad = 0.0, log_det = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double diff = x(t, d) - means[c][d];
        quad += diff * diff / vars[c][d];
        log_det += std::log(static_cast<double>(vars[c][d]));
      }
      const double want =
          biases[c] -
          0.5 * (static_cast<double>(dim) * std::log(2.0 * std::numbers::pi) +
                 log_det + quad);
      EXPECT_NEAR(scores(t, c), want, 2e-3) << "t=" << t << " c=" << c;
    }
  }
}

TEST(LaKernels, LogsumexpSegmentsMatchesPerSegmentReference) {
  const std::vector<float> row = {0.0f, 1.0f, -1.0f, 2.0f, 0.5f, -0.5f};
  const std::vector<std::size_t> seg = {0, 2, 2, 6};  // includes empty segment
  std::vector<float> out(3);
  logsumexp_segments(row, seg, out);
  EXPECT_NEAR(out[0], std::log(std::exp(0.0) + std::exp(1.0)), 1e-5);
  EXPECT_EQ(out[1], -std::numeric_limits<float>::infinity());
  double s = 0.0;
  for (std::size_t i = 2; i < 6; ++i) s += std::exp(static_cast<double>(row[i]));
  EXPECT_NEAR(out[2], std::log(s), 1e-5);
}

// The determinism contract: identical bits regardless of thread count.
TEST(LaKernels, GemmBitIdenticalAcrossThreadCounts) {
  util::Rng rng(17);
  // Big enough to cross the parallelisation threshold and span many tiles.
  const util::Matrix a = random_matrix(129, 65, rng);
  const util::Matrix b = random_matrix(65, 43, rng);
  const util::Matrix bt = random_matrix(43, 65, rng);
  const util::Matrix g = random_matrix(129, 43, rng);  // same rows as a

  util::Matrix serial_nn, serial_nt, serial_tn;
  gemm(a, b, serial_nn, nullptr);
  gemm_nt(a, bt, serial_nt, {}, Epilogue::kNone, nullptr);
  gemm_tn(a, g, serial_tn, 1.0f, false, nullptr);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    util::Matrix c_nn, c_nt, c_tn;
    gemm(a, b, c_nn, &pool);
    gemm_nt(a, bt, c_nt, {}, Epilogue::kNone, &pool);
    gemm_tn(a, g, c_tn, 1.0f, false, &pool);
    for (std::size_t i = 0; i < serial_nn.rows(); ++i) {
      for (std::size_t j = 0; j < serial_nn.cols(); ++j) {
        ASSERT_EQ(c_nn(i, j), serial_nn(i, j)) << threads << " threads";
      }
    }
    for (std::size_t i = 0; i < serial_nt.rows(); ++i) {
      for (std::size_t j = 0; j < serial_nt.cols(); ++j) {
        ASSERT_EQ(c_nt(i, j), serial_nt(i, j)) << threads << " threads";
      }
    }
    for (std::size_t i = 0; i < serial_tn.rows(); ++i) {
      for (std::size_t j = 0; j < serial_tn.cols(); ++j) {
        ASSERT_EQ(c_tn(i, j), serial_tn(i, j)) << threads << " threads";
      }
    }
  }
}

TEST(LaKernels, BatchedGaussianBitIdenticalAcrossThreadCounts) {
  util::Rng rng(18);
  const std::size_t dim = 20;
  BatchedGaussians::Builder builder(dim, 8);
  std::vector<float> mean(dim), var(dim);
  for (std::size_t c = 0; c < 8; ++c) {
    for (std::size_t d = 0; d < dim; ++d) {
      mean[d] = static_cast<float>(rng.uniform(-1.0, 1.0));
      var[d] = static_cast<float>(rng.uniform(0.5, 1.5));
    }
    builder.add(mean, var);
  }
  const BatchedGaussians bg = builder.build();
  const util::Matrix x = random_matrix(300, dim, rng);
  util::Matrix serial;
  bg.score(x, serial, nullptr);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    util::Matrix scores;
    bg.score(x, scores, &pool);
    for (std::size_t t = 0; t < serial.rows(); ++t) {
      for (std::size_t c = 0; c < serial.cols(); ++c) {
        ASSERT_EQ(scores(t, c), serial(t, c)) << threads << " threads";
      }
    }
  }
}

TEST(LaKernels, ShapeMismatchThrows) {
  util::Matrix a(2, 3), b(4, 5), c;
  EXPECT_THROW(gemm(a, b, c), std::invalid_argument);
  EXPECT_THROW(gemm_nt(a, b, c), std::invalid_argument);
  EXPECT_THROW(gemm_tn(a, b, c), std::invalid_argument);
  util::Matrix b2(3, 4), wrong(7, 7);
  EXPECT_THROW(gemm_tn(a, a, wrong, 1.0f, /*accumulate=*/true),
               std::invalid_argument);
}

TEST(LaKernels, ActiveImplDefaultsToBlocked) {
  // The test binary runs without PHONOLID_KERNEL set (tier1 exercises the
  // generic path separately), so the blocked kernels must be the default.
  EXPECT_EQ(active_impl(), KernelImpl::kBlocked);
}

}  // namespace
}  // namespace phonolid::la
