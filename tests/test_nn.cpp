#include "am/nn.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/math_util.h"
#include "util/rng.h"

namespace phonolid::am {
namespace {

/// Two linearly separable 2-D blobs plus a third class.
void make_blobs(std::size_t n, util::Matrix& x,
                std::vector<std::uint32_t>& y, std::uint64_t seed) {
  util::Rng rng(seed);
  x.resize(n, 2);
  y.resize(n);
  static const double centers[3][2] = {{-2.0, 0.0}, {2.0, 0.0}, {0.0, 2.5}};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % 3;
    x(i, 0) = static_cast<float>(rng.gaussian(centers[c][0], 0.4));
    x(i, 1) = static_cast<float>(rng.gaussian(centers[c][1], 0.4));
    y[i] = static_cast<std::uint32_t>(c);
  }
}

TEST(FeedForwardNet, ShapesAndParameterCount) {
  util::Rng rng(1);
  FeedForwardNet net(10, {16, 8}, 4, rng);
  EXPECT_EQ(net.input_dim(), 10u);
  EXPECT_EQ(net.output_dim(), 4u);
  EXPECT_EQ(net.num_layers(), 3u);
  EXPECT_EQ(net.num_parameters(), 10u * 16 + 16 + 16 * 8 + 8 + 8 * 4 + 4);
}

TEST(FeedForwardNet, LogPosteriorsAreNormalised) {
  util::Rng rng(2);
  FeedForwardNet net(3, {5}, 4, rng);
  util::Matrix x(7, 3);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t d = 0; d < 3; ++d) {
      x(i, d) = static_cast<float>(rng.gaussian());
    }
  }
  util::Matrix logp;
  net.log_posteriors(x, logp);
  ASSERT_EQ(logp.rows(), 7u);
  ASSERT_EQ(logp.cols(), 4u);
  for (std::size_t i = 0; i < 7; ++i) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_LE(logp(i, c), 0.0f + 1e-5);
      sum += std::exp(static_cast<double>(logp(i, c)));
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(FeedForwardNet, LearnsSeparableBlobs) {
  util::Matrix train_x, dev_x;
  std::vector<std::uint32_t> train_y, dev_y;
  make_blobs(900, train_x, train_y, 3);
  make_blobs(300, dev_x, dev_y, 4);

  util::Rng rng(5);
  FeedForwardNet net(2, {16}, 3, rng);
  NnConfig cfg;
  cfg.learning_rate = 0.3;
  cfg.max_epochs = 20;
  cfg.seed = 7;
  const double dev_acc = train_net(net, train_x, train_y, dev_x, dev_y, cfg);
  EXPECT_GT(dev_acc, 0.95);
  EXPECT_GT(net.frame_accuracy(train_x, train_y), 0.95);
}

TEST(FeedForwardNet, DeepNetAlsoLearns) {
  util::Matrix train_x, dev_x;
  std::vector<std::uint32_t> train_y, dev_y;
  make_blobs(900, train_x, train_y, 11);
  make_blobs(300, dev_x, dev_y, 12);
  util::Rng rng(13);
  FeedForwardNet net(2, {12, 12}, 3, rng);
  NnConfig cfg;
  cfg.learning_rate = 0.3;
  cfg.max_epochs = 30;
  const double dev_acc = train_net(net, train_x, train_y, dev_x, dev_y, cfg);
  EXPECT_GT(dev_acc, 0.9);
}

TEST(FeedForwardNet, TrainBatchReducesLossOnFixedBatch) {
  util::Matrix x;
  std::vector<std::uint32_t> y32;
  make_blobs(120, x, y32, 17);
  util::Rng rng(19);
  FeedForwardNet net(2, {8}, 3, rng);
  double first = 0.0, last = 0.0;
  for (int it = 0; it < 60; ++it) {
    const double loss = net.train_batch(x, y32, 0.2, 0.5, 0.0);
    if (it == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(FeedForwardNet, GradientMatchesFiniteDifference) {
  // Numerical check of the backprop pipeline through the cross-entropy:
  // loss decreases along the (negative-)gradient direction for a tiny lr.
  util::Matrix x(4, 2);
  std::vector<std::uint32_t> y = {0, 1, 0, 1};
  x(0, 0) = 1.0f;
  x(1, 0) = -1.0f;
  x(2, 1) = 1.0f;
  x(3, 1) = -1.0f;
  util::Rng rng(23);
  FeedForwardNet net(2, {4}, 2, rng);
  // Measure loss, take one tiny step, re-measure.
  const double before = net.train_batch(x, y, 1e-3, 0.0, 0.0);
  const double after = net.train_batch(x, y, 1e-3, 0.0, 0.0);
  EXPECT_LE(after, before + 1e-6);
}

TEST(FeedForwardNet, DeterministicTraining) {
  util::Matrix x, dx;
  std::vector<std::uint32_t> y, dy;
  make_blobs(200, x, y, 29);
  make_blobs(60, dx, dy, 31);
  NnConfig cfg;
  cfg.max_epochs = 4;
  cfg.seed = 37;
  util::Rng rng_a(41), rng_b(41);
  FeedForwardNet a(2, {6}, 3, rng_a), b(2, {6}, 3, rng_b);
  train_net(a, x, y, dx, dy, cfg);
  train_net(b, x, y, dx, dy, cfg);
  util::Matrix pa, pb;
  a.log_posteriors(dx, pa);
  b.log_posteriors(dx, pb);
  for (std::size_t i = 0; i < pa.rows(); ++i) {
    for (std::size_t c = 0; c < pa.cols(); ++c) {
      EXPECT_FLOAT_EQ(pa(i, c), pb(i, c));
    }
  }
}

TEST(FeedForwardNet, SerializationRoundTrip) {
  util::Rng rng(43);
  FeedForwardNet net(3, {5, 4}, 2, rng);
  std::stringstream ss;
  net.serialize(ss);
  const FeedForwardNet loaded = FeedForwardNet::deserialize(ss);
  EXPECT_EQ(loaded.input_dim(), 3u);
  EXPECT_EQ(loaded.output_dim(), 2u);
  util::Matrix x(2, 3, 0.3f);
  util::Matrix pa, pb;
  net.log_posteriors(x, pa);
  loaded.log_posteriors(x, pb);
  for (std::size_t c = 0; c < 2; ++c) EXPECT_FLOAT_EQ(pa(0, c), pb(0, c));
}

TEST(FeedForwardNet, MismatchedLabelsThrow) {
  util::Rng rng(47);
  FeedForwardNet net(2, {4}, 2, rng);
  util::Matrix x(10, 2, 0.0f);
  std::vector<std::uint32_t> y(5, 0);
  NnConfig cfg;
  EXPECT_THROW(train_net(net, x, y, x, y, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace phonolid::am
