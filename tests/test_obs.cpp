// Tests for the observability layer: metrics registry, trace spans, JSON
// round-trips, and structured run reports (src/obs/).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace phonolid {
namespace {

// --- Counters -------------------------------------------------------------

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter& c = obs::Metrics::counter("test.counter.basic");
  const std::uint64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before + 42);
}

TEST(Counter, LookupReturnsSameObject) {
  obs::Counter& a = obs::Metrics::counter("test.counter.same");
  obs::Counter& b = obs::Metrics::counter("test.counter.same");
  EXPECT_EQ(&a, &b);
}

TEST(Counter, ConcurrentIncrementsSumExactly) {
  // The tentpole property: relaxed-atomic increments from a thread pool must
  // lose nothing.  4 workers x 256 tasks x 100 increments.
  obs::Counter& c = obs::Metrics::counter("test.counter.concurrent");
  const std::uint64_t before = c.value();
  constexpr std::size_t kTasks = 256;
  constexpr std::size_t kAddsPerTask = 100;
  util::ThreadPool pool(4);
  util::parallel_for(pool, 0, kTasks, [&](std::size_t) {
    for (std::size_t i = 0; i < kAddsPerTask; ++i) c.add();
  });
  EXPECT_EQ(c.value(), before + kTasks * kAddsPerTask);
}

// --- Gauges ---------------------------------------------------------------

TEST(Gauge, TracksValueAndHighWatermark) {
  obs::Gauge& g = obs::Metrics::gauge("test.gauge.watermark");
  g.reset();
  EXPECT_EQ(g.add(3), 3);
  EXPECT_EQ(g.add(4), 7);
  EXPECT_EQ(g.add(-5), 2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 7);
  g.set(-1);
  EXPECT_EQ(g.value(), -1);
  EXPECT_EQ(g.max(), 7);  // watermark never decreases
}

TEST(Gauge, ConcurrentAddsBalanceToZero) {
  obs::Gauge& g = obs::Metrics::gauge("test.gauge.concurrent");
  g.reset();
  util::ThreadPool pool(4);
  util::parallel_for(pool, 0, 200, [&](std::size_t) {
    g.add(1);
    g.add(-1);
  });
  EXPECT_EQ(g.value(), 0);
  EXPECT_GE(g.max(), 1);
}

// --- Histograms -----------------------------------------------------------

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram& h =
      obs::Metrics::histogram("test.hist.edges", {1.0, 2.0, 5.0});
  h.reset();
  // Bucket i counts edges[i-1] < v <= edges[i]; final bucket is overflow.
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (inclusive upper edge)
  h.observe(1.001); // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(5.0);   // bucket 2
  h.observe(5.1);   // bucket 3 (overflow)
  h.observe(100.0); // bucket 3
  ASSERT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.total_count(), 7u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 5.0 + 5.1 + 100.0, 1e-9);
}

TEST(Histogram, EdgeMismatchThrows) {
  obs::Metrics::histogram("test.hist.mismatch", {1.0, 2.0});
  EXPECT_THROW(obs::Metrics::histogram("test.hist.mismatch", {1.0, 3.0}),
               std::invalid_argument);
  // Same edges: fine, same object.
  obs::Histogram& a = obs::Metrics::histogram("test.hist.mismatch", {1.0, 2.0});
  obs::Histogram& b = obs::Metrics::histogram("test.hist.mismatch", {1.0, 2.0});
  EXPECT_EQ(&a, &b);
}

TEST(Histogram, ConcurrentObservationsCountExactly) {
  obs::Histogram& h = obs::Metrics::histogram("test.hist.concurrent", {0.5});
  h.reset();
  util::ThreadPool pool(4);
  util::parallel_for(pool, 0, 1000, [&](std::size_t i) {
    h.observe(i % 2 == 0 ? 0.25 : 0.75);
  });
  EXPECT_EQ(h.total_count(), 1000u);
  EXPECT_EQ(h.bucket_count(0), 500u);
  EXPECT_EQ(h.bucket_count(1), 500u);
}

TEST(Metrics, SnapshotsContainRegisteredNames) {
  obs::Metrics::counter("test.snapshot.counter").add(5);
  obs::Metrics::gauge("test.snapshot.gauge").set(9);
  obs::Metrics::histogram("test.snapshot.hist", {1.0}).observe(0.5);

  const auto counters = obs::Metrics::counters();
  ASSERT_TRUE(counters.count("test.snapshot.counter"));
  EXPECT_GE(counters.at("test.snapshot.counter"), 5u);

  const auto gauges = obs::Metrics::gauges();
  ASSERT_TRUE(gauges.count("test.snapshot.gauge"));
  EXPECT_EQ(gauges.at("test.snapshot.gauge").value, 9);

  const auto hists = obs::Metrics::histograms();
  ASSERT_TRUE(hists.count("test.snapshot.hist"));
  EXPECT_EQ(hists.at("test.snapshot.hist").counts.size(), 2u);
}

TEST(Metrics, ResetZeroesInPlace) {
  obs::Counter& c = obs::Metrics::counter("test.reset.counter");
  c.add(10);
  obs::Metrics::reset();
  EXPECT_EQ(c.value(), 0u);  // hoisted reference still valid
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

// --- Trace spans ----------------------------------------------------------

const obs::SpanSnapshot* find_span(const std::vector<obs::SpanSnapshot>& spans,
                                   const std::string& path) {
  for (const auto& s : spans) {
    if (s.path == path) return &s;
  }
  return nullptr;
}

TEST(Trace, NestedSpansAggregateUnderJoinedPath) {
  obs::Trace::reset();
  {
    PHONOLID_SPAN("outer");
    { PHONOLID_SPAN("inner"); }
    { PHONOLID_SPAN("inner"); }
  }
  const auto spans = obs::Trace::snapshot();
  const auto* outer = find_span(spans, "outer");
  const auto* inner = find_span(spans, "outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->total.count, 1u);
  EXPECT_EQ(inner->total.count, 2u);
  // The outer span covers both inner spans.
  EXPECT_GE(outer->total.total_s, inner->total.total_s);
  EXPECT_LE(inner->total.min_s, inner->total.max_s);
  // Sibling scopes at the same depth do not nest under each other.
  EXPECT_EQ(find_span(spans, "outer/inner/inner"), nullptr);
}

TEST(Trace, StopReturnsElapsedAndRecordsOnce) {
  obs::Trace::reset();
  obs::Span span("stopped");
  const double elapsed = span.stop();
  EXPECT_GE(elapsed, 0.0);
  {
    // Destruction after stop() must not double-record; a sibling span after
    // stop() starts from the restored parent path.
    PHONOLID_SPAN("sibling");
  }
  const auto spans = obs::Trace::snapshot();
  const auto* stopped = find_span(spans, "stopped");
  ASSERT_NE(stopped, nullptr);
  EXPECT_EQ(stopped->total.count, 1u);
  EXPECT_NEAR(stopped->total.total_s, elapsed, 1e-12);
  EXPECT_NE(find_span(spans, "sibling"), nullptr);
  EXPECT_EQ(find_span(spans, "stopped/sibling"), nullptr);
}

TEST(Trace, MergesSpansAcrossThreads) {
  obs::Trace::reset();
  { PHONOLID_SPAN("xthread"); }
  std::thread worker([] {
    { PHONOLID_SPAN("xthread"); }
    { PHONOLID_SPAN("xthread"); }
  });
  worker.join();  // retired-thread stats must survive the thread's exit
  const auto spans = obs::Trace::snapshot();
  const auto* s = find_span(spans, "xthread");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->total.count, 3u);
  ASSERT_EQ(s->by_thread.size(), 2u);
  std::uint64_t by_thread_total = 0;
  for (const auto& [tid, stats] : s->by_thread) by_thread_total += stats.count;
  EXPECT_EQ(by_thread_total, 3u);
}

TEST(Trace, ResetDropsHistory) {
  { PHONOLID_SPAN("doomed"); }
  obs::Trace::reset();
  EXPECT_EQ(find_span(obs::Trace::snapshot(), "doomed"), nullptr);
}

// --- Thread-pool instrumentation -----------------------------------------

TEST(ThreadPoolMetrics, CountsTasksAndDrainsQueue) {
  obs::Counter& submitted = obs::Metrics::counter("threadpool.tasks_submitted");
  obs::Counter& completed = obs::Metrics::counter("threadpool.tasks_completed");
  obs::Gauge& depth = obs::Metrics::gauge("threadpool.queue_depth");
  const std::uint64_t sub0 = submitted.value();
  const std::uint64_t com0 = completed.value();

  util::ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([] {}));
  }
  for (auto& f : futures) f.get();

  EXPECT_EQ(submitted.value() - sub0, 20u);
  EXPECT_EQ(completed.value() - com0, 20u);
  EXPECT_EQ(depth.value(), 0);  // fully drained

  const auto hists = obs::Metrics::histograms();
  ASSERT_TRUE(hists.count("threadpool.task_wait_s"));
  ASSERT_TRUE(hists.count("threadpool.task_run_s"));
  EXPECT_GE(hists.at("threadpool.task_run_s").count, 20u);
}

// --- JSON -----------------------------------------------------------------

TEST(Json, DumpParseRoundTrip) {
  obs::Json doc = obs::Json::object();
  doc["null"] = obs::Json(nullptr);
  doc["bool"] = obs::Json(true);
  doc["int"] = obs::Json(-42);
  doc["big"] = obs::Json(std::int64_t{1} << 53);
  doc["double"] = obs::Json(2.5);
  doc["string"] = obs::Json("he said \"hi\"\n\ttab");
  obs::Json arr = obs::Json::array();
  arr.push_back(obs::Json(1));
  arr.push_back(obs::Json("two"));
  arr.push_back(obs::Json::object());
  doc["array"] = std::move(arr);

  const obs::Json parsed = obs::Json::parse(doc.dump_string());
  ASSERT_TRUE(parsed.is_object());
  EXPECT_TRUE(parsed.find("null")->is_null());
  EXPECT_EQ(parsed.find("bool")->as_bool(), true);
  EXPECT_EQ(parsed.find("int")->as_int(), -42);
  EXPECT_EQ(parsed.find("big")->as_int(), std::int64_t{1} << 53);
  EXPECT_DOUBLE_EQ(parsed.find("double")->as_double(), 2.5);
  EXPECT_EQ(parsed.find("string")->as_string(), "he said \"hi\"\n\ttab");
  ASSERT_TRUE(parsed.find("array")->is_array());
  ASSERT_EQ(parsed.find("array")->as_array().size(), 3u);
  EXPECT_EQ(parsed.find("array")->as_array()[1].as_string(), "two");
  // Insertion order is preserved.
  EXPECT_EQ(parsed.as_object().front().first, "null");
  EXPECT_EQ(parsed.as_object().back().first, "array");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(obs::Json::parse("{"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse(""), std::runtime_error);
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  obs::Json doc = obs::Json::object();
  doc["inf"] = obs::Json(std::numeric_limits<double>::infinity());
  const obs::Json parsed = obs::Json::parse(doc.dump_string());
  EXPECT_TRUE(parsed.find("inf")->is_null());
}

// --- Run reports ----------------------------------------------------------

TEST(Report, BuildContainsSchemaMetaMetricsAndSpans) {
  obs::Metrics::counter("test.report.counter").add(3);
  obs::Trace::reset();
  { PHONOLID_SPAN("report_span"); }

  obs::ReportMeta meta;
  meta.tool = "test_obs";
  meta.command = "unit";
  meta.scale = "quick";
  meta.seed = 7;
  meta.threads = 2;
  obs::Json extra = obs::Json::object();
  extra["custom"] = obs::Json("section");
  const obs::Json report = obs::build_report(meta, std::move(extra));

  EXPECT_EQ(report.find("schema_version")->as_int(), obs::kReportSchemaVersion);
  const std::string& ts = report.find("generated_at")->as_string();
  EXPECT_EQ(ts.size(), 24u);  // 2026-08-06T12:34:56.789Z
  EXPECT_EQ(ts.back(), 'Z');

  const obs::Json* m = report.find("meta");
  EXPECT_EQ(m->find("tool")->as_string(), "test_obs");
  EXPECT_EQ(m->find("command")->as_string(), "unit");
  EXPECT_EQ(m->find("seed")->as_int(), 7);

  const obs::Json* counters = report.find("metrics")->find("counters");
  ASSERT_NE(counters->find("test.report.counter"), nullptr);
  EXPECT_GE(counters->find("test.report.counter")->as_int(), 3);

  bool saw_span = false;
  for (const auto& s : report.find("spans")->as_array()) {
    if (s.find("path")->as_string() == "report_span") {
      saw_span = true;
      EXPECT_EQ(s.find("count")->as_int(), 1);
      EXPECT_GE(s.find("total_s")->as_double(), 0.0);
      EXPECT_GE(s.find("by_thread")->as_array().size(), 1u);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_EQ(report.find("custom")->as_string(), "section");
}

TEST(Report, FileRoundTrip) {
  obs::ReportMeta meta;
  meta.tool = "test_obs";
  const std::string path = testing::TempDir() + "phonolid_test_report.json";
  obs::write_report_file(path, obs::build_report(meta));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::Json parsed = obs::Json::parse(buf.str());
  EXPECT_EQ(parsed.find("schema_version")->as_int(),
            obs::kReportSchemaVersion);
  EXPECT_EQ(parsed.find("meta")->find("tool")->as_string(), "test_obs");
  std::remove(path.c_str());
}

TEST(Report, UnwritablePathThrows) {
  obs::ReportMeta meta;
  EXPECT_THROW(
      obs::write_report_file("/nonexistent-dir/report.json",
                             obs::build_report(meta)),
      std::runtime_error);
}

}  // namespace
}  // namespace phonolid
