// Tests for the observability layer: metrics registry, trace spans, JSON
// round-trips, and structured run reports (src/obs/).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/report_diff.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace phonolid {
namespace {

// --- Counters -------------------------------------------------------------

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter& c = obs::Metrics::counter("test.counter.basic");
  const std::uint64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before + 42);
}

TEST(Counter, LookupReturnsSameObject) {
  obs::Counter& a = obs::Metrics::counter("test.counter.same");
  obs::Counter& b = obs::Metrics::counter("test.counter.same");
  EXPECT_EQ(&a, &b);
}

TEST(Counter, ConcurrentIncrementsSumExactly) {
  // The tentpole property: relaxed-atomic increments from a thread pool must
  // lose nothing.  4 workers x 256 tasks x 100 increments.
  obs::Counter& c = obs::Metrics::counter("test.counter.concurrent");
  const std::uint64_t before = c.value();
  constexpr std::size_t kTasks = 256;
  constexpr std::size_t kAddsPerTask = 100;
  util::ThreadPool pool(4);
  util::parallel_for(pool, 0, kTasks, [&](std::size_t) {
    for (std::size_t i = 0; i < kAddsPerTask; ++i) c.add();
  });
  EXPECT_EQ(c.value(), before + kTasks * kAddsPerTask);
}

// --- Gauges ---------------------------------------------------------------

TEST(Gauge, TracksValueAndHighWatermark) {
  obs::Gauge& g = obs::Metrics::gauge("test.gauge.watermark");
  g.reset();
  EXPECT_EQ(g.add(3), 3);
  EXPECT_EQ(g.add(4), 7);
  EXPECT_EQ(g.add(-5), 2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 7);
  g.set(-1);
  EXPECT_EQ(g.value(), -1);
  EXPECT_EQ(g.max(), 7);  // watermark never decreases
}

TEST(Gauge, ConcurrentAddsBalanceToZero) {
  obs::Gauge& g = obs::Metrics::gauge("test.gauge.concurrent");
  g.reset();
  util::ThreadPool pool(4);
  util::parallel_for(pool, 0, 200, [&](std::size_t) {
    g.add(1);
    g.add(-1);
  });
  EXPECT_EQ(g.value(), 0);
  EXPECT_GE(g.max(), 1);
}

// --- Histograms -----------------------------------------------------------

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram& h =
      obs::Metrics::histogram("test.hist.edges", {1.0, 2.0, 5.0});
  h.reset();
  // Bucket i counts edges[i-1] < v <= edges[i]; final bucket is overflow.
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (inclusive upper edge)
  h.observe(1.001); // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(5.0);   // bucket 2
  h.observe(5.1);   // bucket 3 (overflow)
  h.observe(100.0); // bucket 3
  ASSERT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.total_count(), 7u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 5.0 + 5.1 + 100.0, 1e-9);
}

TEST(Histogram, EdgeMismatchThrows) {
  obs::Metrics::histogram("test.hist.mismatch", {1.0, 2.0});
  EXPECT_THROW(obs::Metrics::histogram("test.hist.mismatch", {1.0, 3.0}),
               std::invalid_argument);
  // Same edges: fine, same object.
  obs::Histogram& a = obs::Metrics::histogram("test.hist.mismatch", {1.0, 2.0});
  obs::Histogram& b = obs::Metrics::histogram("test.hist.mismatch", {1.0, 2.0});
  EXPECT_EQ(&a, &b);
}

TEST(Histogram, ConcurrentObserveStressLosesNothing) {
  // Heavier stress than the pool variant: 8 raw threads x 10k observations
  // of exactly 1.0, so both the count and the sum must be bit-exact.
  obs::Histogram& h = obs::Metrics::histogram("test.hist.stress", {0.5, 2.0});
  h.reset();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::size_t i = 0; i < kPerThread; ++i) h.observe(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.total_count(), kThreads * kPerThread);
  EXPECT_EQ(h.bucket_count(1), kThreads * kPerThread);  // 0.5 < 1.0 <= 2.0
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kPerThread));
}

TEST(Histogram, ConcurrentObservationsCountExactly) {
  obs::Histogram& h = obs::Metrics::histogram("test.hist.concurrent", {0.5});
  h.reset();
  util::ThreadPool pool(4);
  util::parallel_for(pool, 0, 1000, [&](std::size_t i) {
    h.observe(i % 2 == 0 ? 0.25 : 0.75);
  });
  EXPECT_EQ(h.total_count(), 1000u);
  EXPECT_EQ(h.bucket_count(0), 500u);
  EXPECT_EQ(h.bucket_count(1), 500u);
}

TEST(Metrics, SnapshotsContainRegisteredNames) {
  obs::Metrics::counter("test.snapshot.counter").add(5);
  obs::Metrics::gauge("test.snapshot.gauge").set(9);
  obs::Metrics::histogram("test.snapshot.hist", {1.0}).observe(0.5);

  const auto counters = obs::Metrics::counters();
  ASSERT_TRUE(counters.count("test.snapshot.counter"));
  EXPECT_GE(counters.at("test.snapshot.counter"), 5u);

  const auto gauges = obs::Metrics::gauges();
  ASSERT_TRUE(gauges.count("test.snapshot.gauge"));
  EXPECT_EQ(gauges.at("test.snapshot.gauge").value, 9);

  const auto hists = obs::Metrics::histograms();
  ASSERT_TRUE(hists.count("test.snapshot.hist"));
  EXPECT_EQ(hists.at("test.snapshot.hist").counts.size(), 2u);
}

TEST(Metrics, ResetZeroesInPlace) {
  obs::Counter& c = obs::Metrics::counter("test.reset.counter");
  c.add(10);
  obs::Metrics::reset();
  EXPECT_EQ(c.value(), 0u);  // hoisted reference still valid
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

// --- Trace spans ----------------------------------------------------------

const obs::SpanSnapshot* find_span(const std::vector<obs::SpanSnapshot>& spans,
                                   const std::string& path) {
  for (const auto& s : spans) {
    if (s.path == path) return &s;
  }
  return nullptr;
}

TEST(Trace, NestedSpansAggregateUnderJoinedPath) {
  obs::Trace::reset();
  {
    PHONOLID_SPAN("outer");
    { PHONOLID_SPAN("inner"); }
    { PHONOLID_SPAN("inner"); }
  }
  const auto spans = obs::Trace::snapshot();
  const auto* outer = find_span(spans, "outer");
  const auto* inner = find_span(spans, "outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->total.count, 1u);
  EXPECT_EQ(inner->total.count, 2u);
  // The outer span covers both inner spans.
  EXPECT_GE(outer->total.total_s, inner->total.total_s);
  EXPECT_LE(inner->total.min_s, inner->total.max_s);
  // Sibling scopes at the same depth do not nest under each other.
  EXPECT_EQ(find_span(spans, "outer/inner/inner"), nullptr);
}

TEST(Trace, StopReturnsElapsedAndRecordsOnce) {
  obs::Trace::reset();
  obs::Span span("stopped");
  const double elapsed = span.stop();
  EXPECT_GE(elapsed, 0.0);
  {
    // Destruction after stop() must not double-record; a sibling span after
    // stop() starts from the restored parent path.
    PHONOLID_SPAN("sibling");
  }
  const auto spans = obs::Trace::snapshot();
  const auto* stopped = find_span(spans, "stopped");
  ASSERT_NE(stopped, nullptr);
  EXPECT_EQ(stopped->total.count, 1u);
  EXPECT_NEAR(stopped->total.total_s, elapsed, 1e-12);
  EXPECT_NE(find_span(spans, "sibling"), nullptr);
  EXPECT_EQ(find_span(spans, "stopped/sibling"), nullptr);
}

TEST(Trace, MergesSpansAcrossThreads) {
  obs::Trace::reset();
  { PHONOLID_SPAN("xthread"); }
  std::thread worker([] {
    { PHONOLID_SPAN("xthread"); }
    { PHONOLID_SPAN("xthread"); }
  });
  worker.join();  // retired-thread stats must survive the thread's exit
  const auto spans = obs::Trace::snapshot();
  const auto* s = find_span(spans, "xthread");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->total.count, 3u);
  ASSERT_EQ(s->by_thread.size(), 2u);
  std::uint64_t by_thread_total = 0;
  for (const auto& [tid, stats] : s->by_thread) by_thread_total += stats.count;
  EXPECT_EQ(by_thread_total, 3u);
}

TEST(Trace, ResetDropsHistory) {
  { PHONOLID_SPAN("doomed"); }
  obs::Trace::reset();
  EXPECT_EQ(find_span(obs::Trace::snapshot(), "doomed"), nullptr);
}

// --- Thread-pool instrumentation -----------------------------------------

TEST(ThreadPoolMetrics, CountsTasksAndDrainsQueue) {
  obs::Counter& submitted = obs::Metrics::counter("threadpool.tasks_submitted");
  obs::Counter& completed = obs::Metrics::counter("threadpool.tasks_completed");
  obs::Gauge& depth = obs::Metrics::gauge("threadpool.queue_depth");
  const std::uint64_t sub0 = submitted.value();
  const std::uint64_t com0 = completed.value();

  util::ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([] {}));
  }
  for (auto& f : futures) f.get();

  EXPECT_EQ(submitted.value() - sub0, 20u);
  EXPECT_EQ(completed.value() - com0, 20u);
  EXPECT_EQ(depth.value(), 0);  // fully drained

  const auto hists = obs::Metrics::histograms();
  ASSERT_TRUE(hists.count("threadpool.task_wait_s"));
  ASSERT_TRUE(hists.count("threadpool.task_run_s"));
  EXPECT_GE(hists.at("threadpool.task_run_s").count, 20u);
}

// --- JSON -----------------------------------------------------------------

TEST(Json, DumpParseRoundTrip) {
  obs::Json doc = obs::Json::object();
  doc["null"] = obs::Json(nullptr);
  doc["bool"] = obs::Json(true);
  doc["int"] = obs::Json(-42);
  doc["big"] = obs::Json(std::int64_t{1} << 53);
  doc["double"] = obs::Json(2.5);
  doc["string"] = obs::Json("he said \"hi\"\n\ttab");
  obs::Json arr = obs::Json::array();
  arr.push_back(obs::Json(1));
  arr.push_back(obs::Json("two"));
  arr.push_back(obs::Json::object());
  doc["array"] = std::move(arr);

  const obs::Json parsed = obs::Json::parse(doc.dump_string());
  ASSERT_TRUE(parsed.is_object());
  EXPECT_TRUE(parsed.find("null")->is_null());
  EXPECT_EQ(parsed.find("bool")->as_bool(), true);
  EXPECT_EQ(parsed.find("int")->as_int(), -42);
  EXPECT_EQ(parsed.find("big")->as_int(), std::int64_t{1} << 53);
  EXPECT_DOUBLE_EQ(parsed.find("double")->as_double(), 2.5);
  EXPECT_EQ(parsed.find("string")->as_string(), "he said \"hi\"\n\ttab");
  ASSERT_TRUE(parsed.find("array")->is_array());
  ASSERT_EQ(parsed.find("array")->as_array().size(), 3u);
  EXPECT_EQ(parsed.find("array")->as_array()[1].as_string(), "two");
  // Insertion order is preserved.
  EXPECT_EQ(parsed.as_object().front().first, "null");
  EXPECT_EQ(parsed.as_object().back().first, "array");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(obs::Json::parse("{"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse(""), std::runtime_error);
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  obs::Json doc = obs::Json::object();
  doc["inf"] = obs::Json(std::numeric_limits<double>::infinity());
  const obs::Json parsed = obs::Json::parse(doc.dump_string());
  EXPECT_TRUE(parsed.find("inf")->is_null());
}

// --- Run reports ----------------------------------------------------------

TEST(Report, BuildContainsSchemaMetaMetricsAndSpans) {
  obs::Metrics::counter("test.report.counter").add(3);
  obs::Trace::reset();
  { PHONOLID_SPAN("report_span"); }

  obs::ReportMeta meta;
  meta.tool = "test_obs";
  meta.command = "unit";
  meta.scale = "quick";
  meta.seed = 7;
  meta.threads = 2;
  obs::Json extra = obs::Json::object();
  extra["custom"] = obs::Json("section");
  const obs::Json report = obs::build_report(meta, std::move(extra));

  EXPECT_EQ(report.find("schema_version")->as_int(), obs::kReportSchemaVersion);
  const std::string& ts = report.find("generated_at")->as_string();
  EXPECT_EQ(ts.size(), 24u);  // 2026-08-06T12:34:56.789Z
  EXPECT_EQ(ts.back(), 'Z');

  const obs::Json* m = report.find("meta");
  EXPECT_EQ(m->find("tool")->as_string(), "test_obs");
  EXPECT_EQ(m->find("command")->as_string(), "unit");
  EXPECT_EQ(m->find("seed")->as_int(), 7);

  const obs::Json* counters = report.find("metrics")->find("counters");
  ASSERT_NE(counters->find("test.report.counter"), nullptr);
  EXPECT_GE(counters->find("test.report.counter")->as_int(), 3);

  bool saw_span = false;
  for (const auto& s : report.find("spans")->as_array()) {
    if (s.find("path")->as_string() == "report_span") {
      saw_span = true;
      EXPECT_EQ(s.find("count")->as_int(), 1);
      EXPECT_GE(s.find("total_s")->as_double(), 0.0);
      EXPECT_GE(s.find("by_thread")->as_array().size(), 1u);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_EQ(report.find("custom")->as_string(), "section");
}

TEST(Report, FileRoundTrip) {
  obs::ReportMeta meta;
  meta.tool = "test_obs";
  const std::string path = testing::TempDir() + "phonolid_test_report.json";
  obs::write_report_file(path, obs::build_report(meta));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::Json parsed = obs::Json::parse(buf.str());
  EXPECT_EQ(parsed.find("schema_version")->as_int(),
            obs::kReportSchemaVersion);
  EXPECT_EQ(parsed.find("meta")->find("tool")->as_string(), "test_obs");
  std::remove(path.c_str());
}

TEST(Report, UnwritablePathThrows) {
  obs::ReportMeta meta;
  EXPECT_THROW(
      obs::write_report_file("/nonexistent-dir/report.json",
                             obs::build_report(meta)),
      std::runtime_error);
}

// --- Flight recorder ------------------------------------------------------

/// Leaves the recorder disabled, empty, and at default capacity regardless
/// of what the test did (capacity is sticky per-process otherwise).
struct RecorderGuard {
  RecorderGuard() { obs::FlightRecorder::reset(); }
  ~RecorderGuard() {
    obs::FlightRecorder::disable();
    obs::FlightRecorder::enable(obs::FlightRecorder::kDefaultCapacity);
    obs::FlightRecorder::disable();
    obs::FlightRecorder::reset();
  }
};

const obs::ThreadEvents* find_thread_with_event(
    const std::vector<obs::ThreadEvents>& threads, const std::string& name) {
  for (const auto& t : threads) {
    for (const auto& e : t.events) {
      if (e.name != nullptr && name == e.name) return &t;
    }
  }
  return nullptr;
}

TEST(FlightRecorder, DisabledEmitsNothing) {
  RecorderGuard guard;
  ASSERT_FALSE(obs::FlightRecorder::enabled());
  obs::FlightRecorder::begin("fr_disabled");
  obs::FlightRecorder::end("fr_disabled");
  PHONOLID_EVENT("fr_disabled_evt", "k", 1);
  PHONOLID_COUNTER_SAMPLE("fr_disabled_ctr", 2.0);
  const auto snap = obs::FlightRecorder::snapshot();
  EXPECT_EQ(find_thread_with_event(snap, "fr_disabled"), nullptr);
  EXPECT_EQ(find_thread_with_event(snap, "fr_disabled_evt"), nullptr);
  EXPECT_EQ(find_thread_with_event(snap, "fr_disabled_ctr"), nullptr);
}

TEST(FlightRecorder, SpansEmitMatchedBeginEndInOrder) {
  RecorderGuard guard;
  obs::FlightRecorder::enable();
  {
    PHONOLID_SPAN("fr_outer");
    { PHONOLID_SPAN("fr_inner"); }
  }
  obs::FlightRecorder::disable();
  const auto snap = obs::FlightRecorder::snapshot();
  const auto* t = find_thread_with_event(snap, "fr_outer");
  ASSERT_NE(t, nullptr);

  // Project out just this test's events (the ring may hold unrelated ones).
  std::vector<const obs::TraceEvent*> mine;
  for (const auto& e : t->events) {
    if (std::string(e.name) == "fr_outer" || std::string(e.name) == "fr_inner")
      mine.push_back(&e);
  }
  ASSERT_EQ(mine.size(), 4u);
  EXPECT_EQ(mine[0]->phase, obs::TraceEvent::Phase::kBegin);
  EXPECT_STREQ(mine[0]->name, "fr_outer");
  EXPECT_EQ(mine[1]->phase, obs::TraceEvent::Phase::kBegin);
  EXPECT_STREQ(mine[1]->name, "fr_inner");
  EXPECT_EQ(mine[2]->phase, obs::TraceEvent::Phase::kEnd);
  EXPECT_STREQ(mine[2]->name, "fr_inner");
  EXPECT_EQ(mine[3]->phase, obs::TraceEvent::Phase::kEnd);
  EXPECT_STREQ(mine[3]->name, "fr_outer");
  for (std::size_t i = 1; i < mine.size(); ++i) {
    EXPECT_GE(mine[i]->ts_ns, mine[i - 1]->ts_ns);
  }
}

TEST(FlightRecorder, SpanAnnotateAttachesArgsToEndEvent) {
  RecorderGuard guard;
  obs::FlightRecorder::enable();
  {
    obs::Span span("fr_annotated");
    span.annotate("round", 7);
    span.annotate("trdba", 1234);
  }
  obs::FlightRecorder::disable();
  const auto snap = obs::FlightRecorder::snapshot();
  const auto* t = find_thread_with_event(snap, "fr_annotated");
  ASSERT_NE(t, nullptr);
  bool saw_end = false;
  for (const auto& e : t->events) {
    if (std::string(e.name) != "fr_annotated" ||
        e.phase != obs::TraceEvent::Phase::kEnd)
      continue;
    saw_end = true;
    ASSERT_EQ(e.num_args, 2u);
    EXPECT_STREQ(e.args[0].key, "round");
    EXPECT_EQ(e.args[0].value, 7);
    EXPECT_STREQ(e.args[1].key, "trdba");
    EXPECT_EQ(e.args[1].value, 1234);
  }
  EXPECT_TRUE(saw_end);
}

TEST(FlightRecorder, WraparoundKeepsNewestAndCountsDropped) {
  RecorderGuard guard;
  obs::FlightRecorder::enable(8);  // applies to rings created from now on
  std::thread worker([] {
    for (std::int64_t i = 0; i < 20; ++i) {
      PHONOLID_EVENT("fr_wrap", "i", i);
    }
  });
  worker.join();
  obs::FlightRecorder::disable();
  const auto snap = obs::FlightRecorder::snapshot();
  const auto* t = find_thread_with_event(snap, "fr_wrap");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->events.size(), 8u);  // ring is full, not grown
  EXPECT_EQ(t->dropped, 12u);
  // Oldest events were overwritten; the newest 8 survive in order.
  for (std::size_t i = 0; i < t->events.size(); ++i) {
    ASSERT_EQ(t->events[i].num_args, 1u);
    EXPECT_EQ(t->events[i].args[0].value,
              static_cast<std::int64_t>(12 + i));
  }
}

TEST(FlightRecorder, CrossThreadEventsKeepPerThreadIdentityAndOrder) {
  RecorderGuard guard;
  obs::FlightRecorder::enable();
  auto work = [](const char* name) {
    obs::FlightRecorder::set_thread_name(name);
    for (int i = 0; i < 50; ++i) PHONOLID_EVENT("fr_xthread");
  };
  std::thread a(work, "worker-a");
  std::thread b(work, "worker-b");
  a.join();
  b.join();
  obs::FlightRecorder::disable();

  const auto snap = obs::FlightRecorder::snapshot();
  std::size_t named = 0;
  std::uint32_t last_tid = 0;
  bool first = true;
  for (const auto& t : snap) {
    if (!first) EXPECT_GT(t.tid, last_tid);  // sorted, unique tids
    last_tid = t.tid;
    first = false;
    if (t.name == "worker-a" || t.name == "worker-b") {
      ++named;
      EXPECT_EQ(t.events.size(), 50u);
      for (std::size_t i = 1; i < t.events.size(); ++i) {
        EXPECT_GE(t.events[i].ts_ns, t.events[i - 1].ts_ns);
      }
    }
  }
  EXPECT_EQ(named, 2u);
}

// --- Chrome trace export --------------------------------------------------

/// Asserts the acceptance-criteria invariants on a parsed trace document:
/// every "B" has a matching "E" (per thread, properly nested) and per-thread
/// timestamps are monotonically non-decreasing.
void check_trace_invariants(const obs::Json& doc) {
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  const obs::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::map<std::int64_t, std::vector<std::string>> stacks;
  std::map<std::int64_t, double> last_ts;
  for (const obs::Json& e : events->as_array()) {
    const std::string ph = e.find("ph")->as_string();
    const std::int64_t tid = e.find("tid")->as_int();
    if (ph == "M") continue;  // metadata carries no timestamp ordering
    const double ts = e.find("ts")->as_double();
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) EXPECT_GE(ts, it->second);
    last_ts[tid] = ts;
    if (ph == "B") {
      stacks[tid].push_back(e.find("name")->as_string());
    } else if (ph == "E") {
      ASSERT_FALSE(stacks[tid].empty()) << "unmatched E on tid " << tid;
      EXPECT_EQ(stacks[tid].back(), e.find("name")->as_string());
      stacks[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
}

TEST(ChromeTrace, ExportedFileIsValidAndMatched) {
  RecorderGuard guard;
  obs::FlightRecorder::enable();
  obs::FlightRecorder::set_thread_name("test-main");
  {
    PHONOLID_SPAN("ct_outer");
    { PHONOLID_SPAN("ct_inner"); }
    PHONOLID_EVENT("ct_instant", "round", 3, "trdba", 99);
    PHONOLID_COUNTER_SAMPLE("ct_depth", 5.0);
  }
  std::thread worker([] {
    obs::FlightRecorder::set_thread_name("ct-worker");
    PHONOLID_SPAN("ct_worker_span");
  });
  worker.join();
  obs::FlightRecorder::disable();

  const std::string path = testing::TempDir() + "phonolid_test_trace.json";
  obs::write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());
  const obs::Json doc = obs::Json::parse(buf.str());
  check_trace_invariants(doc);

  bool saw_main_name = false, saw_worker_name = false, saw_instant = false,
       saw_counter = false;
  for (const obs::Json& e : doc.find("traceEvents")->as_array()) {
    const std::string ph = e.find("ph")->as_string();
    const std::string name = e.find("name")->as_string();
    if (ph == "M" && name == "thread_name") {
      const std::string& tn = e.find("args")->find("name")->as_string();
      saw_main_name |= tn == "test-main";
      saw_worker_name |= tn == "ct-worker";
    }
    if (ph == "i" && name == "ct_instant") {
      saw_instant = true;
      EXPECT_EQ(e.find("s")->as_string(), "t");
      EXPECT_EQ(e.find("args")->find("round")->as_int(), 3);
      EXPECT_EQ(e.find("args")->find("trdba")->as_int(), 99);
    }
    if (ph == "C" && name == "ct_depth") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(e.find("args")->find("value")->as_double(), 5.0);
    }
  }
  EXPECT_TRUE(saw_main_name);
  EXPECT_TRUE(saw_worker_name);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
}

TEST(ChromeTrace, WraparoundOrphansAndOpenSpansStayMatched) {
  RecorderGuard guard;
  obs::FlightRecorder::enable(4);
  std::thread worker([] {
    // Begins fall off the ring (4 slots), leaving orphaned ends...
    obs::FlightRecorder::begin("ct_lost_a");
    obs::FlightRecorder::begin("ct_lost_b");
    for (int i = 0; i < 6; ++i) PHONOLID_EVENT("ct_filler");
    obs::FlightRecorder::end("ct_lost_b");
    obs::FlightRecorder::end("ct_lost_a");
    // ...and this span is still open when the thread exits.
    obs::FlightRecorder::begin("ct_left_open");
  });
  worker.join();
  obs::FlightRecorder::disable();
  // The exporter must drop the orphaned E's and synthesize a close for the
  // open B — the result still satisfies the matched-pairs invariant.
  check_trace_invariants(obs::chrome_trace_json());
}

// --- Prometheus export ----------------------------------------------------

TEST(Prometheus, TextFormatExposesAllMetricKinds) {
  obs::Metrics::counter("test.prom.counter").add(7);
  obs::Gauge& g = obs::Metrics::gauge("test.prom.gauge");
  g.reset();
  g.set(3);
  g.set(1);
  obs::Histogram& h = obs::Metrics::histogram("test.prom.hist", {1.0, 2.0});
  h.reset();
  h.observe(0.5);
  h.observe(1.5);
  h.observe(2.5);

  const std::string text = obs::prometheus_text();
  // Counter: dots sanitized, _total suffix, TYPE line.
  EXPECT_NE(text.find("# TYPE phonolid_test_prom_counter_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("phonolid_test_prom_counter_total 7\n"),
            std::string::npos);
  // Gauge: value plus high-watermark companion series.
  EXPECT_NE(text.find("# TYPE phonolid_test_prom_gauge gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("phonolid_test_prom_gauge 1\n"), std::string::npos);
  EXPECT_NE(text.find("phonolid_test_prom_gauge_max 3\n"), std::string::npos);
  // Histogram: cumulative buckets ending in +Inf, then _sum and _count.
  EXPECT_NE(text.find("# TYPE phonolid_test_prom_hist histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("phonolid_test_prom_hist_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("phonolid_test_prom_hist_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("phonolid_test_prom_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("phonolid_test_prom_hist_sum 4.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("phonolid_test_prom_hist_count 3\n"),
            std::string::npos);
}

TEST(Prometheus, OutputSortedByExportedNameAcrossKinds) {
  // Register deliberately out of lexical order, mixing kinds: export order
  // must depend only on the exported family name, never on registration
  // order or metric kind, so the text is byte-stable and diffable.
  obs::Metrics::histogram("test.zorder.cc", {1.0}).observe(0.5);
  obs::Metrics::counter("test.zorder.aa").add(1);
  obs::Metrics::gauge("test.zorder.bb").set(2);
  const std::string text = obs::prometheus_text();
  const auto pos_a = text.find("phonolid_test_zorder_aa_total ");
  const auto pos_b = text.find("phonolid_test_zorder_bb ");
  const auto pos_c = text.find("phonolid_test_zorder_cc_sum ");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  ASSERT_NE(pos_c, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
  EXPECT_LT(pos_b, pos_c);
  // Byte-stability: a second export of the same registry is identical.
  EXPECT_EQ(text, obs::prometheus_text());
}

// --- report-diff ----------------------------------------------------------

/// Minimal schema-v1 run report with one slow span, one sub-threshold span,
/// one counter, and one EER leaf.
obs::Json mini_report(double build_s, double tiny_s, double eer,
                      long long lattices) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema_version\": 1,"
      " \"spans\": [{\"path\": \"experiment_build\", \"mean_s\": %.17g},"
      "             {\"path\": \"tiny\", \"mean_s\": %.17g}],"
      " \"metrics\": {\"counters\": {\"decoder.lattices\": %lld}},"
      " \"results\": {\"dba\": {\"30s\": {\"eer\": %.17g}}}}",
      build_s, tiny_s, lattices, eer);
  return obs::Json::parse(buf);
}

obs::ReportDiffOptions gated_options() {
  obs::ReportDiffOptions opt;
  opt.max_regress_pct = 20.0;
  opt.max_eer_delta = 0.02;
  return opt;
}

TEST(ReportDiff, IdenticalReportsPass) {
  const obs::Json r = mini_report(10.0, 0.001, 0.15, 2376);
  const auto result = obs::diff_reports(r, r, gated_options());
  EXPECT_FALSE(result.violated);
  EXPECT_FALSE(result.rows.empty());
  EXPECT_NE(result.format().find("report-diff: OK"), std::string::npos);
}

TEST(ReportDiff, SpanRegressionBeyondThresholdViolates) {
  const obs::Json base = mini_report(10.0, 0.001, 0.15, 2376);
  const obs::Json slow = mini_report(13.0, 0.001, 0.15, 2376);  // +30%
  const auto result = obs::diff_reports(base, slow, gated_options());
  EXPECT_TRUE(result.violated);
  EXPECT_NE(result.format().find("VIOLATION"), std::string::npos);
  // +10% stays inside the 20% budget.
  const obs::Json ok = mini_report(11.0, 0.001, 0.15, 2376);
  EXPECT_FALSE(obs::diff_reports(base, ok, gated_options()).violated);
  // A speedup is never a violation, however large.
  const obs::Json fast = mini_report(1.0, 0.001, 0.15, 2376);
  EXPECT_FALSE(obs::diff_reports(base, fast, gated_options()).violated);
}

TEST(ReportDiff, SubMinimumSpansAreNotGated) {
  // "tiny" regresses 100x but its baseline mean is below min_span_s: noise,
  // not signal.
  const obs::Json base = mini_report(10.0, 0.001, 0.15, 2376);
  const obs::Json cur = mini_report(10.0, 0.1, 0.15, 2376);
  EXPECT_FALSE(obs::diff_reports(base, cur, gated_options()).violated);
}

TEST(ReportDiff, EerDeltaGatesAbsolutely) {
  const obs::Json base = mini_report(10.0, 0.001, 0.15, 2376);
  const obs::Json worse = mini_report(10.0, 0.001, 0.18, 2376);
  EXPECT_TRUE(obs::diff_reports(base, worse, gated_options()).violated);
  const obs::Json slightly = mini_report(10.0, 0.001, 0.16, 2376);
  EXPECT_FALSE(obs::diff_reports(base, slightly, gated_options()).violated);
  const obs::Json better = mini_report(10.0, 0.001, 0.05, 2376);
  EXPECT_FALSE(obs::diff_reports(base, better, gated_options()).violated);
}

TEST(ReportDiff, CountersReportButNeverGate) {
  const obs::Json base = mini_report(10.0, 0.001, 0.15, 1000);
  const obs::Json cur = mini_report(10.0, 0.001, 0.15, 9999);
  const auto result = obs::diff_reports(base, cur, gated_options());
  EXPECT_FALSE(result.violated);
  bool saw_counter = false;
  for (const auto& row : result.rows) {
    if (row.kind == "counter") {
      saw_counter = true;
      EXPECT_FALSE(row.gated);
    }
  }
  EXPECT_TRUE(saw_counter);
}

TEST(ReportDiff, ThresholdsDefaultOff) {
  // Default options (negative thresholds) report deltas without gating.
  const obs::Json base = mini_report(10.0, 0.001, 0.15, 2376);
  const obs::Json worse = mini_report(30.0, 0.001, 0.40, 2376);
  const auto result = obs::diff_reports(base, worse, obs::ReportDiffOptions{});
  EXPECT_FALSE(result.violated);
}

TEST(ReportDiff, OneSidedKeysAreNotesNotViolations) {
  obs::Json base = mini_report(10.0, 0.001, 0.15, 2376);
  const obs::Json cur = obs::Json::parse(
      "{\"schema_version\": 1, \"spans\": [],"
      " \"metrics\": {\"counters\": {}}, \"results\": {}}");
  const auto result = obs::diff_reports(base, cur, gated_options());
  EXPECT_FALSE(result.violated);
  EXPECT_FALSE(result.notes.empty());
  bool saw = false;
  for (const auto& note : result.notes) {
    saw |= note.find("only in baseline") != std::string::npos;
  }
  EXPECT_TRUE(saw);
}

TEST(ReportDiff, SchemaMismatchViolates) {
  const obs::Json base = mini_report(10.0, 0.001, 0.15, 2376);
  obs::Json cur = mini_report(10.0, 0.001, 0.15, 2376);
  cur["schema_version"] = obs::Json(2);
  EXPECT_TRUE(obs::diff_reports(base, cur, obs::ReportDiffOptions{}).violated);
}

/// Minimal report with a "quality" section (scalars + adoption + an
/// undiffed DET subtree) and a "resource" section.
obs::Json quality_report(double cavg, double cllr, double precision,
                         long long rss) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema_version\": 1, \"spans\": [],"
      " \"metrics\": {\"counters\": {}}, \"results\": {},"
      " \"quality\": {\"quality_version\": 1, \"cavg\": %.17g,"
      "   \"cllr\": %.17g,"
      "   \"adoption\": {\"precision\": %.17g, \"recall\": 0.5},"
      "   \"det\": [{\"p_fa\": 0.1, \"p_miss\": 0.2}]},"
      " \"resource\": {\"peak_rss_bytes\": %lld, \"user_cpu_s\": 1.5}}",
      cavg, cllr, precision, rss);
  return obs::Json::parse(buf);
}

TEST(ReportDiff, CavgDeltaGatesWithDedicatedThreshold) {
  const obs::Json base = quality_report(0.20, 1.0, 0.9, 1000);
  const obs::Json worse = quality_report(0.24, 1.0, 0.9, 1000);
  obs::ReportDiffOptions opt;
  opt.max_cavg_delta = 0.03;
  EXPECT_TRUE(obs::diff_reports(base, worse, opt).violated);
  opt.max_cavg_delta = 0.05;
  EXPECT_FALSE(obs::diff_reports(base, worse, opt).violated);
}

TEST(ReportDiff, CavgFallsBackToEerDelta) {
  // With max_cavg_delta unset, cavg leaves gate on max_eer_delta
  // (the pre-cavg-flag behaviour).
  const obs::Json base = quality_report(0.20, 1.0, 0.9, 1000);
  const obs::Json worse = quality_report(0.24, 1.0, 0.9, 1000);
  obs::ReportDiffOptions opt;
  opt.max_eer_delta = 0.02;
  EXPECT_TRUE(obs::diff_reports(base, worse, opt).violated);
  // A dedicated cavg budget overrides the fallback.
  opt.max_cavg_delta = 0.1;
  EXPECT_FALSE(obs::diff_reports(base, worse, opt).violated);
}

TEST(ReportDiff, CllrDeltaGatesQualityLeaves) {
  const obs::Json base = quality_report(0.20, 1.0, 0.9, 1000);
  const obs::Json worse = quality_report(0.20, 1.6, 0.9, 1000);
  obs::ReportDiffOptions opt;
  opt.max_cllr_delta = 0.5;
  EXPECT_TRUE(obs::diff_reports(base, worse, opt).violated);
  const obs::Json better = quality_report(0.20, 0.2, 0.9, 1000);
  EXPECT_FALSE(obs::diff_reports(base, better, opt).violated);
}

TEST(ReportDiff, AdoptionPrecisionGatesOnDrop) {
  const obs::Json base = quality_report(0.20, 1.0, 0.90, 1000);
  obs::ReportDiffOptions opt;
  opt.max_adoption_precision_drop = 0.05;
  // Precision is better-high: a drop beyond the budget violates ...
  const obs::Json dropped = quality_report(0.20, 1.0, 0.80, 1000);
  EXPECT_TRUE(obs::diff_reports(base, dropped, opt).violated);
  // ... a small drop or any rise does not.
  const obs::Json slight = quality_report(0.20, 1.0, 0.87, 1000);
  EXPECT_FALSE(obs::diff_reports(base, slight, opt).violated);
  const obs::Json rise = quality_report(0.20, 1.0, 0.99, 1000);
  EXPECT_FALSE(obs::diff_reports(base, rise, opt).violated);
}

TEST(ReportDiff, ResourceRowsReportButNeverGate) {
  const obs::Json base = quality_report(0.20, 1.0, 0.9, 1000);
  const obs::Json cur = quality_report(0.20, 1.0, 0.9, 999999);
  obs::ReportDiffOptions opt;
  opt.max_cllr_delta = 0.0;
  opt.max_adoption_precision_drop = 0.0;
  const auto result = obs::diff_reports(base, cur, opt);
  EXPECT_FALSE(result.violated);
  bool saw_resource = false;
  for (const auto& row : result.rows) {
    if (row.kind == "resource") {
      saw_resource = true;
      EXPECT_FALSE(row.gated);
    }
  }
  EXPECT_TRUE(saw_resource);
}

TEST(ReportDiff, QualityDetSubtreeIsNotDiffed) {
  const obs::Json base = quality_report(0.20, 1.0, 0.9, 1000);
  const auto result = obs::diff_reports(base, base, obs::ReportDiffOptions{});
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.key.find("quality/det"), std::string::npos) << row.key;
  }
}

TEST(ReportDiff, MissingQualitySectionIsNoteNotViolation) {
  // An old report without quality/resource sections must still compare
  // cleanly against a new one — even with every quality gate enabled.
  const obs::Json old_report = mini_report(10.0, 0.001, 0.15, 2376);
  const obs::Json new_report = quality_report(0.20, 1.0, 0.9, 1000);
  obs::ReportDiffOptions opt = gated_options();
  opt.max_cavg_delta = 0.02;
  opt.max_cllr_delta = 0.1;
  opt.max_adoption_precision_drop = 0.02;
  const auto ab = obs::diff_reports(old_report, new_report, opt);
  EXPECT_FALSE(ab.violated);
  bool saw = false;
  for (const auto& note : ab.notes) {
    saw |= note.find("quality") != std::string::npos;
  }
  EXPECT_TRUE(saw);
  EXPECT_FALSE(obs::diff_reports(new_report, old_report, opt).violated);
}

TEST(ReportDiff, UnknownTopLevelSectionIsNoteNotViolation) {
  // A report written by a newer binary may carry sections this build has
  // never heard of; they must surface as notes and never gate or error.
  const obs::Json base = mini_report(10.0, 0.001, 0.15, 2376);
  obs::Json cur = mini_report(10.0, 0.001, 0.15, 2376);
  cur["quantum_decoder"] =
      obs::Json::parse("{\"qubits\": 12, \"fidelity\": 0.99}");
  obs::ReportDiffOptions opt = gated_options();
  opt.max_cllr_delta = 0.0;
  opt.max_energy_delta_pct = 0.0;
  const auto result = obs::diff_reports(base, cur, opt);
  EXPECT_FALSE(result.violated);
  bool saw = false;
  for (const auto& note : result.notes) {
    saw |= note.find("unknown section \"quantum_decoder\"") !=
           std::string::npos;
  }
  EXPECT_TRUE(saw);
  // The unknown subtree must not leak comparison rows either.
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.key.find("quantum_decoder"), std::string::npos) << row.key;
  }
}

/// Minimal bench_serve report: the serve section's two gated leaves plus a
/// report-only shed counter.
obs::Json serve_report(double p99_ms, double throughput_rps) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema_version\": 1, \"spans\": [],"
      " \"metrics\": {\"counters\": {}},"
      " \"serve\": {\"version\": 1, \"throughput_rps\": %.17g,"
      "   \"latency_ms\": {\"p50\": 1.0, \"p99\": %.17g},"
      "   \"sheds_overloaded\": 0}}",
      throughput_rps, p99_ms);
  return obs::Json::parse(buf);
}

TEST(ReportDiff, ServeP99GatesOnRelativeGrowth) {
  const obs::Json base = serve_report(100.0, 50.0);
  obs::ReportDiffOptions opt;
  opt.max_serve_p99_regress_pct = 200.0;
  // 4x the baseline p99 (+300%) breaches a 200% budget ...
  const auto worse = obs::diff_reports(base, serve_report(400.0, 50.0), opt);
  EXPECT_TRUE(worse.violated);
  EXPECT_NE(worse.format().find("max-serve-p99-regress"), std::string::npos);
  // ... +100% stays inside it, and a faster daemon never violates.
  EXPECT_FALSE(obs::diff_reports(base, serve_report(200.0, 50.0), opt).violated);
  EXPECT_FALSE(obs::diff_reports(base, serve_report(10.0, 50.0), opt).violated);
}

TEST(ReportDiff, ServeThroughputGatesOnDrop) {
  const obs::Json base = serve_report(100.0, 50.0);
  obs::ReportDiffOptions opt;
  opt.max_serve_throughput_drop_pct = 50.0;
  // Losing 80% of baseline throughput breaches a 50% budget ...
  EXPECT_TRUE(obs::diff_reports(base, serve_report(100.0, 10.0), opt).violated);
  // ... a 20% dip or any gain does not.
  EXPECT_FALSE(obs::diff_reports(base, serve_report(100.0, 40.0), opt).violated);
  EXPECT_FALSE(
      obs::diff_reports(base, serve_report(100.0, 500.0), opt).violated);
}

/// Serve report with a per-phase breakdown (bench_serve serve section v2):
/// queue_wait and compute p99s vary, the other phases stay fixed.
obs::Json serve_phase_report(double queue_wait_p99_ms, double compute_p99_ms) {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema_version\": 1, \"spans\": [],"
      " \"metrics\": {\"counters\": {}},"
      " \"serve\": {\"version\": 2, \"throughput_rps\": 50.0,"
      "   \"latency_ms\": {\"p50\": 1.0, \"p99\": 100.0},"
      "   \"phases\": {"
      "     \"queue_wait_ms\": {\"p50\": 1.0, \"p99\": %.17g, \"p999\": %.17g},"
      "     \"compute_ms\": {\"p50\": 10.0, \"p99\": %.17g, \"p999\": %.17g},"
      "     \"write_ms\": {\"p50\": 0.1, \"p99\": 0.2, \"p999\": 0.5}}}}",
      queue_wait_p99_ms, queue_wait_p99_ms, compute_p99_ms, compute_p99_ms);
  return obs::Json::parse(buf);
}

TEST(ReportDiff, PhaseP99GatesEachPhaseSeparately) {
  const obs::Json base = serve_phase_report(20.0, 50.0);
  obs::ReportDiffOptions opt;
  opt.max_phase_p99_regress_pct = 200.0;
  // A queue-wait blowup breaches the budget even though compute is flat —
  // the per-phase gate is exactly what separates an admission/batching
  // regression from a kernel slowdown.
  const auto queue_worse =
      obs::diff_reports(base, serve_phase_report(100.0, 50.0), opt);
  EXPECT_TRUE(queue_worse.violated);
  EXPECT_NE(queue_worse.format().find("max-phase-p99-regress"),
            std::string::npos);
  EXPECT_NE(queue_worse.format().find("queue_wait_ms"), std::string::npos);
  // A compute blowup with flat queue wait also gates.
  EXPECT_TRUE(
      obs::diff_reports(base, serve_phase_report(20.0, 300.0), opt).violated);
  // Inside the budget (or faster) never violates.
  EXPECT_FALSE(
      obs::diff_reports(base, serve_phase_report(40.0, 50.0), opt).violated);
  EXPECT_FALSE(
      obs::diff_reports(base, serve_phase_report(1.0, 5.0), opt).violated);
}

TEST(ReportDiff, PhaseP99SubMillisecondDeltasNeverViolate) {
  // 0.1 -> 0.5 ms is +400% but only one histogram bucket of wobble; the
  // absolute 1 ms slack keeps CI from flaking on fast phases.
  const obs::Json base = serve_phase_report(0.1, 50.0);
  obs::ReportDiffOptions opt;
  opt.max_phase_p99_regress_pct = 200.0;
  EXPECT_FALSE(
      obs::diff_reports(base, serve_phase_report(0.5, 50.0), opt).violated);
  // Past the slack AND past the relative budget, it does violate.
  EXPECT_TRUE(
      obs::diff_reports(base, serve_phase_report(5.0, 50.0), opt).violated);
}

TEST(ReportDiff, PhaseP99GateOffByDefault) {
  const obs::Json base = serve_phase_report(20.0, 50.0);
  EXPECT_FALSE(obs::diff_reports(base, serve_phase_report(2000.0, 5000.0), {})
                   .violated);
}

TEST(ReportDiff, ServeRowsOtherThanGatedLeavesNeverGate) {
  const obs::Json base = serve_report(100.0, 50.0);
  obs::ReportDiffOptions opt;
  opt.max_serve_p99_regress_pct = 0.0;
  opt.max_serve_throughput_drop_pct = 0.0;
  const auto result = obs::diff_reports(base, base, opt);
  EXPECT_FALSE(result.violated);
  bool saw_ungated = false;
  for (const auto& row : result.rows) {
    if (row.kind != "serve") continue;
    if (row.key == "serve/latency_ms/p99" ||
        row.key == "serve/throughput_rps") {
      EXPECT_TRUE(row.gated) << row.key;
    } else {
      EXPECT_FALSE(row.gated) << row.key;
      saw_ungated = true;
    }
  }
  EXPECT_TRUE(saw_ungated);
}

}  // namespace
}  // namespace phonolid
