#include "dsp/filterbank.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace phonolid::dsp {
namespace {

TEST(MelScale, KnownAnchors) {
  EXPECT_NEAR(hz_to_mel(0.0), 0.0, 1e-9);
  EXPECT_NEAR(hz_to_mel(1000.0), 999.99, 1.0);  // 1000 Hz ~ 1000 mel
}

TEST(MelScale, RoundTrip) {
  for (double hz : {50.0, 300.0, 1000.0, 2500.0, 3999.0}) {
    EXPECT_NEAR(mel_to_hz(hz_to_mel(hz)), hz, 1e-6) << hz;
  }
}

TEST(MelScale, Monotone) {
  double prev = -1.0;
  for (double hz = 0.0; hz <= 4000.0; hz += 100.0) {
    const double mel = hz_to_mel(hz);
    EXPECT_GT(mel, prev);
    prev = mel;
  }
}

TEST(BarkScale, MonotoneAndBounded) {
  double prev = hz_to_bark(0.0);
  for (double hz = 100.0; hz <= 4000.0; hz += 100.0) {
    const double bark = hz_to_bark(hz);
    EXPECT_GT(bark, prev);
    prev = bark;
  }
  EXPECT_LT(hz_to_bark(4000.0), 18.0);
}

TEST(Filterbank, FiltersAreTriangularAndNonNegative) {
  Filterbank fb(10, 129, 8000.0, 100.0, 3800.0);
  for (std::size_t f = 0; f < fb.num_filters(); ++f) {
    auto w = fb.filter(f);
    double sum = 0.0;
    for (float v : w) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f + 1e-6);
      sum += v;
    }
    EXPECT_GT(sum, 0.0) << "filter " << f << " is empty";
  }
}

TEST(Filterbank, NeighbourFiltersOverlap) {
  Filterbank fb(8, 129, 8000.0, 100.0, 3800.0);
  for (std::size_t f = 0; f + 1 < fb.num_filters(); ++f) {
    auto a = fb.filter(f);
    auto b = fb.filter(f + 1);
    double overlap = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k) {
      overlap += static_cast<double>(a[k]) * b[k];
    }
    EXPECT_GT(overlap, 0.0) << "filters " << f << "," << f + 1;
  }
}

TEST(Filterbank, AppliesAsWeightedSum) {
  Filterbank fb(4, 65, 8000.0, 100.0, 3800.0);
  std::vector<float> power(65, 1.0f);
  std::vector<float> out(4);
  fb.apply(power, out);
  for (std::size_t f = 0; f < 4; ++f) {
    auto w = fb.filter(f);
    float expected = 0.0f;
    for (float v : w) expected += v;
    EXPECT_NEAR(out[f], expected, 1e-4);
  }
}

TEST(Filterbank, RejectsBadRanges) {
  EXPECT_THROW(Filterbank(10, 129, 8000.0, 3800.0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(Filterbank(10, 129, 8000.0, 100.0, 5000.0),
               std::invalid_argument);
  EXPECT_THROW(Filterbank(0, 129, 8000.0, 100.0, 3800.0),
               std::invalid_argument);
}

TEST(Dct, OrthonormalRows) {
  Dct dct(16, 16);
  // Apply to each basis vector and reassemble the matrix; D D^T must be I.
  std::vector<std::vector<float>> rows(16, std::vector<float>(16));
  std::vector<float> e(16, 0.0f), out(16);
  for (std::size_t n = 0; n < 16; ++n) {
    std::fill(e.begin(), e.end(), 0.0f);
    e[n] = 1.0f;
    dct.apply(e, out);
    for (std::size_t k = 0; k < 16; ++k) rows[k][n] = out[k];
  }
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      double d = 0.0;
      for (std::size_t n = 0; n < 16; ++n) {
        d += static_cast<double>(rows[i][n]) * rows[j][n];
      }
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-5) << i << "," << j;
    }
  }
}

TEST(Dct, ConstantInputActivatesOnlyC0) {
  Dct dct(20, 13);
  std::vector<float> in(20, 2.0f), out(13);
  dct.apply(in, out);
  EXPECT_GT(std::abs(out[0]), 1.0f);
  for (std::size_t k = 1; k < 13; ++k) EXPECT_NEAR(out[k], 0.0f, 1e-5);
}

TEST(Dct, RejectsBadShapes) {
  EXPECT_THROW(Dct(0, 1), std::invalid_argument);
  EXPECT_THROW(Dct(4, 5), std::invalid_argument);
}

}  // namespace
}  // namespace phonolid::dsp
