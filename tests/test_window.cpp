#include "dsp/window.h"

#include <gtest/gtest.h>

#include <cmath>

namespace phonolid::dsp {
namespace {

TEST(Window, HammingEndpointsAndPeak) {
  const auto w = make_window(WindowType::kHamming, 101);
  EXPECT_NEAR(w.front(), 0.08f, 1e-5);
  EXPECT_NEAR(w.back(), 0.08f, 1e-5);
  EXPECT_NEAR(w[50], 1.0f, 1e-5);
}

TEST(Window, HannEndpointsAreZero) {
  const auto w = make_window(WindowType::kHann, 65);
  EXPECT_NEAR(w.front(), 0.0f, 1e-6);
  EXPECT_NEAR(w.back(), 0.0f, 1e-6);
  EXPECT_NEAR(w[32], 1.0f, 1e-6);
}

TEST(Window, RectangularIsAllOnes) {
  const auto w = make_window(WindowType::kRectangular, 10);
  for (float v : w) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(Window, SymmetryProperty) {
  for (auto type : {WindowType::kHamming, WindowType::kHann}) {
    const auto w = make_window(type, 64);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-6);
    }
  }
}

TEST(Window, DegenerateLengths) {
  EXPECT_EQ(make_window(WindowType::kHamming, 0).size(), 0u);
  const auto one = make_window(WindowType::kHann, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_FLOAT_EQ(one[0], 1.0f);
}

TEST(PreEmphasis, HighPassesSteps) {
  // A DC signal should be almost annihilated after the first sample.
  std::vector<float> x(16, 1.0f);
  pre_emphasis(x, 0.97f);
  EXPECT_NEAR(x[0], 0.03f, 1e-6);
  for (std::size_t i = 1; i < x.size(); ++i) EXPECT_NEAR(x[i], 0.03f, 1e-5);
}

TEST(PreEmphasis, ZeroCoeffIsIdentity) {
  std::vector<float> x = {1.0f, -2.0f, 3.0f};
  pre_emphasis(x, 0.0f);
  EXPECT_FLOAT_EQ(x[0], 1.0f);
  EXPECT_FLOAT_EQ(x[1], -2.0f);
  EXPECT_FLOAT_EQ(x[2], 3.0f);
}

TEST(Framer, FrameCountFormula) {
  Framer framer(200, 80);
  EXPECT_EQ(framer.num_frames(199), 0u);
  EXPECT_EQ(framer.num_frames(200), 1u);
  EXPECT_EQ(framer.num_frames(279), 1u);
  EXPECT_EQ(framer.num_frames(280), 2u);
  EXPECT_EQ(framer.num_frames(8000), (8000 - 200) / 80 + 1);
}

TEST(Framer, ExtractsCorrectRegion) {
  Framer framer(4, 2);
  std::vector<float> signal = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<float> frame(4);
  framer.extract(signal, 0, {}, frame);
  EXPECT_FLOAT_EQ(frame[0], 0.0f);
  EXPECT_FLOAT_EQ(frame[3], 3.0f);
  framer.extract(signal, 2, {}, frame);
  EXPECT_FLOAT_EQ(frame[0], 4.0f);
  EXPECT_FLOAT_EQ(frame[3], 7.0f);
}

TEST(Framer, AppliesWindow) {
  Framer framer(4, 4);
  std::vector<float> signal = {2, 2, 2, 2};
  std::vector<float> window = {0.5f, 1.0f, 1.0f, 0.5f};
  std::vector<float> frame(4);
  framer.extract(signal, 0, window, frame);
  EXPECT_FLOAT_EQ(frame[0], 1.0f);
  EXPECT_FLOAT_EQ(frame[1], 2.0f);
  EXPECT_FLOAT_EQ(frame[3], 1.0f);
}

TEST(Framer, RejectsZeroShift) {
  EXPECT_THROW(Framer(10, 0), std::invalid_argument);
  EXPECT_THROW(Framer(0, 10), std::invalid_argument);
}

}  // namespace
}  // namespace phonolid::dsp
