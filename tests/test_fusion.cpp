#include "backend/fusion.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace phonolid::backend {
namespace {

/// Builds Q subsystem score matrices for a 3-class problem.  Subsystem
/// quality varies: higher `quality` = cleaner scores.
struct FusionData {
  std::vector<util::Matrix> dev_scores, test_scores;
  std::vector<std::int32_t> dev_y, test_y;
};

FusionData make_data(const std::vector<double>& qualities, std::size_t n,
                     std::uint64_t seed) {
  util::Rng rng(seed);
  FusionData d;
  const std::size_t k = 3;
  const auto fill = [&](util::Matrix& m, std::vector<std::int32_t>& y,
                        double quality, bool fresh_labels) {
    m.resize(n, k);
    if (fresh_labels) y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (fresh_labels) y[i] = static_cast<std::int32_t>(i % k);
      for (std::size_t c = 0; c < k; ++c) {
        const double mean = (static_cast<std::int32_t>(c) == y[i]) ? quality : -quality;
        m(i, c) = static_cast<float>(rng.gaussian(mean, 1.0));
      }
    }
  };
  for (double q : qualities) {
    util::Matrix dev, test;
    fill(dev, d.dev_y, q, d.dev_y.empty());
    fill(test, d.test_y, q, d.test_y.empty());
    d.dev_scores.push_back(std::move(dev));
    d.test_scores.push_back(std::move(test));
  }
  return d;
}

double accuracy(const util::Matrix& log_post,
                const std::vector<std::int32_t>& y) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < log_post.rows(); ++i) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < log_post.cols(); ++c) {
      if (log_post(i, c) > log_post(i, best)) best = c;
    }
    if (static_cast<std::int32_t>(best) == y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(log_post.rows());
}

TEST(FusionWeights, NormalisedFromCounts) {
  const auto w = fusion_weights_from_counts({10, 30, 60});
  ASSERT_EQ(w.size(), 3u);
  EXPECT_NEAR(w[0], 0.1, 1e-12);
  EXPECT_NEAR(w[1], 0.3, 1e-12);
  EXPECT_NEAR(w[2], 0.6, 1e-12);
}

TEST(FusionWeights, ZeroCountsFallBackToUniform) {
  const auto w = fusion_weights_from_counts({0, 0});
  EXPECT_NEAR(w[0], 0.5, 1e-12);
  EXPECT_NEAR(w[1], 0.5, 1e-12);
}

TEST(ScoreFusion, FusionBeatsWeakSubsystem) {
  const auto d = make_data({0.8, 0.8, 0.8}, 300, 1);
  ScoreFusion fusion;
  fusion.fit(d.dev_scores, d.dev_y, 3);
  const double fused_acc = accuracy(fusion.apply(d.test_scores), d.test_y);

  ScoreFusion single;
  single.fit({d.dev_scores[0]}, d.dev_y, 3);
  const double single_acc = accuracy(single.apply({d.test_scores[0]}), d.test_y);
  EXPECT_GT(fused_acc, single_acc);
}

TEST(ScoreFusion, ApplyShape) {
  const auto d = make_data({1.0, 0.5}, 120, 3);
  ScoreFusion fusion;
  fusion.fit(d.dev_scores, d.dev_y, 3);
  const util::Matrix out = fusion.apply(d.test_scores);
  EXPECT_EQ(out.rows(), 120u);
  EXPECT_EQ(out.cols(), 3u);
  for (std::size_t i = 0; i < out.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      sum += std::exp(static_cast<double>(out(i, c)));
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(ScoreFusion, WeightsNormalisedInternally) {
  const auto d = make_data({1.0, 1.0}, 90, 5);
  ScoreFusion fusion;
  fusion.fit(d.dev_scores, d.dev_y, 3, {2.0, 6.0});
  ASSERT_EQ(fusion.weights().size(), 2u);
  EXPECT_NEAR(fusion.weights()[0], 0.25, 1e-12);
  EXPECT_NEAR(fusion.weights()[1], 0.75, 1e-12);
}

TEST(ScoreFusion, NoLdaAblationStillWorks) {
  const auto d = make_data({1.2, 1.2}, 240, 7);
  ScoreFusion with_lda, without_lda;
  FusionConfig plain;
  plain.use_lda = false;
  with_lda.fit(d.dev_scores, d.dev_y, 3);
  without_lda.fit(d.dev_scores, d.dev_y, 3, {}, plain);
  const double a = accuracy(with_lda.apply(d.test_scores), d.test_y);
  const double b = accuracy(without_lda.apply(d.test_scores), d.test_y);
  EXPECT_GT(a, 0.7);
  EXPECT_GT(b, 0.7);
}

TEST(ScoreFusion, InputValidation) {
  ScoreFusion fusion;
  EXPECT_THROW(fusion.fit({}, {}, 3), std::invalid_argument);
  const auto d = make_data({1.0}, 30, 9);
  EXPECT_THROW(fusion.fit(d.dev_scores, d.dev_y, 3, {1.0, 2.0}),
               std::invalid_argument);
  // Inconsistent shapes across subsystems.
  auto bad = d.dev_scores;
  bad.push_back(util::Matrix(10, 3));
  EXPECT_THROW(fusion.fit(bad, d.dev_y, 3), std::invalid_argument);
}

}  // namespace
}  // namespace phonolid::backend
