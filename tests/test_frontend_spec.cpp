#include "core/frontend_spec.h"

#include <gtest/gtest.h>

#include <set>

namespace phonolid::core {
namespace {

TEST(FrontendSpec, SixDiversifiedFrontends) {
  for (auto scale : {util::Scale::kQuick, util::Scale::kDefault,
                     util::Scale::kFull}) {
    const auto specs = default_frontends(scale);
    ASSERT_EQ(specs.size(), 6u) << to_string(scale);

    // The paper's battery: 3 ANN-HMM, 1 DNN-HMM, 2 GMM-HMM.
    std::size_t ann = 0, dnn = 0, gmm = 0;
    for (const auto& s : specs) {
      switch (s.family) {
        case ModelFamily::kAnnHmm: ++ann; break;
        case ModelFamily::kDnnHmm: ++dnn; break;
        case ModelFamily::kGmmHmm: ++gmm; break;
      }
    }
    EXPECT_EQ(ann, 3u);
    EXPECT_EQ(dnn, 1u);
    EXPECT_EQ(gmm, 2u);
  }
}

TEST(FrontendSpec, DistinctNativeLanguagesAndSeeds) {
  const auto specs = default_frontends(util::Scale::kDefault);
  std::set<std::size_t> natives;
  std::set<std::uint64_t> salts;
  std::set<std::string> names;
  for (const auto& s : specs) {
    natives.insert(s.native_language);
    salts.insert(s.seed_salt);
    names.insert(s.name);
  }
  EXPECT_EQ(natives.size(), 6u);
  EXPECT_EQ(salts.size(), 6u);
  EXPECT_EQ(names.size(), 6u);
}

TEST(FrontendSpec, PhoneSetOrderingMatchesPaper) {
  // Paper inventories: MA 64 > HU 59 > RU 50 > EN 47 > CZ 43.
  const auto specs = default_frontends(util::Scale::kDefault);
  std::size_t hu = 0, ru = 0, cz = 0, ma = 0, en = 0;
  for (const auto& s : specs) {
    if (s.name.find("HU") != std::string::npos) hu = s.num_phones;
    if (s.name.find("RU") != std::string::npos) ru = s.num_phones;
    if (s.name.find("CZ") != std::string::npos) cz = s.num_phones;
    if (s.name.find("MA") != std::string::npos) ma = s.num_phones;
    if (s.family == ModelFamily::kDnnHmm) en = s.num_phones;
  }
  EXPECT_GT(ma, hu);
  EXPECT_GT(hu, ru);
  EXPECT_GT(ru, en);
  EXPECT_GT(en, cz);
}

TEST(FrontendSpec, DnnUsesPlpAsInPaper) {
  const auto specs = default_frontends(util::Scale::kDefault);
  for (const auto& s : specs) {
    if (s.family == ModelFamily::kDnnHmm) {
      EXPECT_EQ(s.feature, dsp::FeatureKind::kPlp);
      EXPECT_GE(s.hidden_sizes.size(), 2u);  // deep
    }
    if (s.family == ModelFamily::kAnnHmm) {
      EXPECT_EQ(s.hidden_sizes.size(), 1u);  // shallow
    }
  }
}

TEST(FrontendSpec, FamilyNames) {
  EXPECT_STREQ(to_string(ModelFamily::kAnnHmm), "ANN-HMM");
  EXPECT_STREQ(to_string(ModelFamily::kDnnHmm), "DNN-HMM");
  EXPECT_STREQ(to_string(ModelFamily::kGmmHmm), "GMM-HMM");
}

}  // namespace
}  // namespace phonolid::core
