#include "backend/gaussian_backend.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace phonolid::backend {
namespace {

void make_gaussian_classes(util::Matrix& x, std::vector<std::int32_t>& y,
                           std::size_t n, double separation,
                           std::uint64_t seed) {
  util::Rng rng(seed);
  x.resize(n, 2);
  y.resize(n);
  static const double angle[3] = {0.0, 2.1, 4.2};
  for (std::size_t i = 0; i < n; ++i) {
    const int c = static_cast<int>(i % 3);
    x(i, 0) = static_cast<float>(separation * std::cos(angle[c]) +
                                 rng.gaussian(0.0, 1.0));
    x(i, 1) = static_cast<float>(separation * std::sin(angle[c]) +
                                 rng.gaussian(0.0, 1.0));
    y[i] = c;
  }
}

TEST(GaussianBackend, PosteriorsNormalised) {
  util::Matrix x;
  std::vector<std::int32_t> y;
  make_gaussian_classes(x, y, 300, 2.0, 1);
  GaussianBackend backend;
  backend.fit(x, y, 3);
  const util::Matrix lp = backend.log_posteriors(x);
  for (std::size_t i = 0; i < lp.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      sum += std::exp(static_cast<double>(lp(i, c)));
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(GaussianBackend, ClassifiesSeparatedClasses) {
  util::Matrix x;
  std::vector<std::int32_t> y;
  make_gaussian_classes(x, y, 600, 4.0, 3);
  GaussianBackend backend;
  backend.fit(x, y, 3);
  const util::Matrix lp = backend.log_posteriors(x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < lp.rows(); ++i) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < 3; ++c) {
      if (lp(i, c) > lp(i, best)) best = c;
    }
    if (static_cast<std::int32_t>(best) == y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(lp.rows()),
            0.95);
}

TEST(GaussianBackend, MmiImprovesObjective) {
  util::Matrix x;
  std::vector<std::int32_t> y;
  make_gaussian_classes(x, y, 400, 1.5, 5);  // overlapping classes
  GaussianBackend ml_only, mmi;
  MmiConfig no_mmi;
  no_mmi.iterations = 0;
  MmiConfig with_mmi;
  with_mmi.iterations = 60;
  with_mmi.learning_rate = 0.2;
  ml_only.fit(x, y, 3, no_mmi);
  mmi.fit(x, y, 3, with_mmi);
  EXPECT_GT(mmi.objective(x, y), ml_only.objective(x, y));
}

TEST(GaussianBackend, MmiObjectiveIsMeanLogPosterior) {
  util::Matrix x;
  std::vector<std::int32_t> y;
  make_gaussian_classes(x, y, 150, 2.0, 7);
  GaussianBackend backend;
  backend.fit(x, y, 3);
  const util::Matrix lp = backend.log_posteriors(x);
  double manual = 0.0;
  for (std::size_t i = 0; i < lp.rows(); ++i) {
    manual += lp(i, static_cast<std::size_t>(y[i]));
  }
  manual /= static_cast<double>(lp.rows());
  EXPECT_NEAR(backend.objective(x, y), manual, 1e-9);
}

TEST(GaussianBackend, FlatPriorsGiveSymmetricMidpointPosterior) {
  // Two classes mirrored across the origin with equal counts: with flat
  // priors and ML fit (no MMI drift), the midpoint must score 50/50.
  util::Rng rng(11);
  const std::size_t n = 400;
  util::Matrix x(n, 2);
  std::vector<std::int32_t> y(n);
  for (std::size_t i = 0; i < n; i += 2) {
    // Pairwise-mirrored noise makes the two sample means exact mirrors.
    const double g0 = rng.gaussian(), g1 = rng.gaussian();
    x(i, 0) = static_cast<float>(-2.0 + g0);
    x(i, 1) = static_cast<float>(g1);
    y[i] = 0;
    x(i + 1, 0) = static_cast<float>(2.0 - g0);
    x(i + 1, 1) = static_cast<float>(-g1);
    y[i + 1] = 1;
  }
  GaussianBackend backend;
  MmiConfig cfg;
  cfg.flat_priors = true;
  cfg.iterations = 0;
  backend.fit(x, y, 2, cfg);
  std::vector<float> center = {0.0f, 0.0f};
  std::vector<float> lp(2);
  backend.log_posteriors(center, lp);
  EXPECT_NEAR(std::exp(static_cast<double>(lp[0])), 0.5, 0.05);
  EXPECT_NEAR(std::exp(static_cast<double>(lp[1])), 0.5, 0.05);
}

TEST(GaussianBackend, InputValidation) {
  GaussianBackend backend;
  util::Matrix x(4, 2, 0.0f);
  std::vector<std::int32_t> y = {0, 1, 0, 1};
  EXPECT_THROW(backend.fit(x, y, 1), std::invalid_argument);
  std::vector<std::int32_t> bad = {0, 9, 0, 1};
  EXPECT_THROW(backend.fit(x, bad, 2), std::invalid_argument);
}

TEST(GaussianBackend, VarianceUpdateStaysPositive) {
  util::Matrix x;
  std::vector<std::int32_t> y;
  make_gaussian_classes(x, y, 200, 2.0, 13);
  GaussianBackend backend;
  MmiConfig cfg;
  cfg.update_variance = true;
  cfg.iterations = 100;
  cfg.learning_rate = 0.5;
  backend.fit(x, y, 3, cfg);
  // Posteriors remain finite and normalised after aggressive variance MMI.
  const util::Matrix lp = backend.log_posteriors(x);
  for (std::size_t i = 0; i < lp.rows(); ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_TRUE(std::isfinite(lp(i, c)));
    }
  }
}

}  // namespace
}  // namespace phonolid::backend
