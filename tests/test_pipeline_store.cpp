#include "pipeline/artifact_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "pipeline/stage_key.h"
#include "pipeline/stage_runner.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace phonolid::pipeline {
namespace {

namespace fs = std::filesystem;

StageKey golden_key() {
  KeyHasher h("golden");
  h.add_u64(42);
  h.add_i64(-7);
  h.add_f64(1.5);
  h.add_bool(true);
  h.add_string("phonolid");
  h.add_key(StageKey{"upstream", 0x1234567890abcdefull});
  return h.finish();
}

TEST(StageKey, StableAcrossProcesses) {
  // Golden fingerprint: a change here means every existing cache entry in
  // the world goes stale.  That is sometimes intended (new hashed field,
  // format revision) — update the constant AND bump kPipelineFormatVersion
  // so gc can reap the stale entries — but it must never happen by accident.
  const StageKey k = golden_key();
  EXPECT_EQ(k.hash, 0xaa8b041f8a86c619ull);
  EXPECT_EQ(k.hex(), "aa8b041f8a86c619");
  EXPECT_EQ(k.filename(), "golden-aa8b041f8a86c619.art");
}

TEST(StageKey, EveryFieldParticipates) {
  const StageKey base = golden_key();
  {
    KeyHasher h("other");  // stage name
    h.add_u64(42);
    h.add_i64(-7);
    h.add_f64(1.5);
    h.add_bool(true);
    h.add_string("phonolid");
    h.add_key(StageKey{"upstream", 0x1234567890abcdefull});
    EXPECT_NE(h.finish().hash, base.hash);
  }
  {
    KeyHasher h("golden");
    h.add_u64(43);  // changed
    h.add_i64(-7);
    h.add_f64(1.5);
    h.add_bool(true);
    h.add_string("phonolid");
    h.add_key(StageKey{"upstream", 0x1234567890abcdefull});
    EXPECT_NE(h.finish().hash, base.hash);
  }
  {
    KeyHasher h("golden");
    h.add_u64(42);
    h.add_i64(-7);
    h.add_f64(1.5);
    h.add_bool(false);  // changed
    h.add_string("phonolid");
    h.add_key(StageKey{"upstream", 0x1234567890abcdefull});
    EXPECT_NE(h.finish().hash, base.hash);
  }
  {
    KeyHasher h("golden");
    h.add_u64(42);
    h.add_i64(-7);
    h.add_f64(1.5);
    h.add_bool(true);
    h.add_string("phonolid");
    h.add_key(StageKey{"upstream", 0xfedcba0987654321ull});  // upstream hash
    EXPECT_NE(h.finish().hash, base.hash);
  }
}

TEST(StageKey, FieldBoundariesCannotAlias) {
  // Length-prefixed mixing: "ab"+"c" must differ from "a"+"bc".
  KeyHasher a("s");
  a.add_string("ab");
  a.add_string("c");
  KeyHasher b("s");
  b.add_string("a");
  b.add_string("bc");
  EXPECT_NE(a.finish().hash, b.finish().hash);
}

TEST(StageKey, TypeTagsCannotAlias) {
  // The same 8 bytes added as u64 vs i64 vs f64 must produce distinct keys.
  KeyHasher u("s");
  u.add_u64(0);
  KeyHasher i("s");
  i.add_i64(0);
  KeyHasher f("s");
  f.add_f64(0.0);
  EXPECT_NE(u.finish().hash, i.finish().hash);
  EXPECT_NE(u.finish().hash, f.finish().hash);
  EXPECT_NE(i.finish().hash, f.finish().hash);
}

TEST(StageKey, NegativeZeroCanonicalized) {
  KeyHasher pos("s");
  pos.add_f64(0.0);
  KeyHasher neg("s");
  neg.add_f64(-0.0);
  EXPECT_EQ(pos.finish().hash, neg.finish().hash);
}

/// RAII temp directory + counter snapshot for store tests.
class ArtifactStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("phonolid_store_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(root_);
    hits0_ = hits().value();
    misses0_ = misses().value();
    evictions0_ = evictions().value();
  }
  void TearDown() override { fs::remove_all(root_); }

  static obs::Counter& hits() {
    return obs::Metrics::counter("pipeline.cache.hits");
  }
  static obs::Counter& misses() {
    return obs::Metrics::counter("pipeline.cache.misses");
  }
  static obs::Counter& evictions() {
    return obs::Metrics::counter("pipeline.cache.evictions");
  }
  [[nodiscard]] std::uint64_t hit_delta() const {
    return hits().value() - hits0_;
  }
  [[nodiscard]] std::uint64_t miss_delta() const {
    return misses().value() - misses0_;
  }
  [[nodiscard]] std::uint64_t eviction_delta() const {
    return evictions().value() - evictions0_;
  }

  /// get_or_compute of a string payload, counting compute invocations.
  std::string roundtrip(ArtifactStore& store, const StageKey& key,
                        const std::string& value, int& computes) {
    return store.get_or_compute<std::string>(
        key,
        [](std::istream& in) {
          util::BinaryReader r(in);
          return r.read_string();
        },
        [](std::ostream& out, const std::string& v) {
          util::BinaryWriter w(out);
          w.write_string(v);
        },
        [&] {
          ++computes;
          return value;
        });
  }

  fs::path root_;
  std::uint64_t hits0_ = 0, misses0_ = 0, evictions0_ = 0;
};

TEST_F(ArtifactStoreTest, MissComputeThenHit) {
  ArtifactStore store(root_.string());
  ASSERT_TRUE(store.enabled());
  const StageKey key = golden_key();

  int computes = 0;
  EXPECT_EQ(roundtrip(store, key, "payload-1", computes), "payload-1");
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(miss_delta(), 1u);
  EXPECT_EQ(hit_delta(), 0u);
  EXPECT_TRUE(fs::exists(store.path_for(key)));

  // Second lookup (fresh store object = fresh process) hits, no recompute.
  ArtifactStore store2(root_.string());
  EXPECT_EQ(roundtrip(store2, key, "never-computed", computes), "payload-1");
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(hit_delta(), 1u);
}

TEST_F(ArtifactStoreTest, DisabledStoreAlwaysComputes) {
  ArtifactStore store;
  EXPECT_FALSE(store.enabled());
  int computes = 0;
  EXPECT_EQ(roundtrip(store, golden_key(), "v", computes), "v");
  EXPECT_EQ(roundtrip(store, golden_key(), "v", computes), "v");
  EXPECT_EQ(computes, 2);
}

TEST_F(ArtifactStoreTest, TruncatedArtifactFallsBackToRecompute) {
  ArtifactStore store(root_.string());
  const StageKey key = golden_key();
  int computes = 0;
  (void)roundtrip(store, key, "payload", computes);

  // Truncate the entry mid-envelope.
  const std::string path = store.path_for(key);
  const auto full = fs::file_size(path);
  fs::resize_file(path, full / 2);

  EXPECT_EQ(roundtrip(store, key, "payload", computes), "payload");
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(eviction_delta(), 1u);
  // The recompute re-wrote a valid entry.
  EXPECT_EQ(roundtrip(store, key, "unused", computes), "payload");
  EXPECT_EQ(computes, 2);
}

TEST_F(ArtifactStoreTest, BitFlipFallsBackToRecompute) {
  ArtifactStore store(root_.string());
  const StageKey key = golden_key();
  int computes = 0;
  (void)roundtrip(store, key, "payload-to-corrupt", computes);

  // Flip one bit near the end of the file (inside the payload/checksum).
  const std::string path = store.path_for(key);
  const auto size = static_cast<std::streamoff>(fs::file_size(path));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(size - 12);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(size - 12);
    f.write(&byte, 1);
  }

  EXPECT_EQ(roundtrip(store, key, "payload-to-corrupt", computes),
            "payload-to-corrupt");
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(eviction_delta(), 1u);
}

TEST_F(ArtifactStoreTest, WrongKeyEntryIsEvictedNotReturned) {
  ArtifactStore store(root_.string());
  const StageKey key = golden_key();
  int computes = 0;
  (void)roundtrip(store, key, "right", computes);

  // A file renamed onto another key's path must fail the echo check.
  StageKey other = key;
  other.hash ^= 1;
  fs::rename(store.path_for(key), store.path_for(other));
  EXPECT_EQ(roundtrip(store, other, "recomputed", computes), "recomputed");
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(eviction_delta(), 1u);
}

TEST_F(ArtifactStoreTest, StatusCountsEntries) {
  ArtifactStore store(root_.string());
  EXPECT_EQ(store.status().entries, 0u);
  int computes = 0;
  (void)roundtrip(store, golden_key(), "a", computes);
  StageKey k2 = golden_key();
  k2.hash ^= 0xFF;
  (void)roundtrip(store, k2, "b", computes);
  const auto st = store.status();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_GT(st.bytes, 0u);
}

TEST_F(ArtifactStoreTest, GcKeepsValidRemovesCorruptAndOrphans) {
  ArtifactStore store(root_.string());
  const StageKey good = golden_key();
  StageKey bad = good;
  bad.hash ^= 0xABC;
  int computes = 0;
  (void)roundtrip(store, good, "keep-me", computes);
  (void)roundtrip(store, bad, "corrupt-me", computes);
  fs::resize_file(store.path_for(bad), 5);
  // Orphaned temp file from a crashed writer.
  std::ofstream(root_ / "frontend-0.art.tmp.12345") << "junk";

  const auto gc = store.gc();
  EXPECT_EQ(gc.kept, 1u);
  EXPECT_EQ(gc.removed, 2u);
  EXPECT_TRUE(fs::exists(store.path_for(good)));
  EXPECT_FALSE(fs::exists(store.path_for(bad)));

  // The kept entry still loads.
  EXPECT_EQ(roundtrip(store, good, "unused", computes), "keep-me");
}

TEST_F(ArtifactStoreTest, GcByteBudgetEvictsOldestFirst) {
  ArtifactStore store(root_.string());
  StageKey oldest = golden_key();
  StageKey middle = golden_key();
  middle.hash ^= 0x1;
  StageKey newest = golden_key();
  newest.hash ^= 0x2;
  int computes = 0;
  (void)roundtrip(store, oldest, "payload-oldest", computes);
  (void)roundtrip(store, middle, "payload-middle", computes);
  (void)roundtrip(store, newest, "payload-newest", computes);
  // Pin mtimes explicitly — same-second writes would make age a coin flip.
  const auto now = fs::last_write_time(store.path_for(newest));
  fs::last_write_time(store.path_for(oldest), now - std::chrono::hours(2));
  fs::last_write_time(store.path_for(middle), now - std::chrono::hours(1));

  // Budget for roughly two entries: only the oldest must go.
  const auto entry_size = fs::file_size(store.path_for(newest));
  const auto gc = store.gc(2 * entry_size + entry_size / 2);
  EXPECT_EQ(gc.evicted, 1u);
  EXPECT_EQ(gc.kept, 2u);
  EXPECT_EQ(gc.removed, 0u);
  EXPECT_FALSE(fs::exists(store.path_for(oldest)));
  EXPECT_TRUE(fs::exists(store.path_for(middle)));
  EXPECT_TRUE(fs::exists(store.path_for(newest)));
  EXPECT_GE(gc.reclaimed_bytes, entry_size);
  EXPECT_EQ(eviction_delta(), 1u);

  // A budget below one entry clears the store; survivors-by-age = none.
  const auto gc2 = store.gc(1);
  EXPECT_EQ(gc2.evicted, 2u);
  EXPECT_EQ(gc2.kept, 0u);
  EXPECT_FALSE(fs::exists(store.path_for(middle)));
  EXPECT_FALSE(fs::exists(store.path_for(newest)));

  // Zero budget means "no byte limit", not "evict everything".
  (void)roundtrip(store, newest, "payload-back", computes);
  const auto gc3 = store.gc(0);
  EXPECT_EQ(gc3.evicted, 0u);
  EXPECT_EQ(gc3.kept, 1u);
  EXPECT_TRUE(fs::exists(store.path_for(newest)));
}

TEST_F(ArtifactStoreTest, ConcurrentWritersSameKeyAreSafe) {
  // N threads race get_or_compute on one key: every thread must come back
  // with a valid value (its own compute or another's artifact), and the
  // store must end with exactly one valid entry.  Run under TSan in tier1.
  ArtifactStore store(root_.string());
  const StageKey key = golden_key();
  constexpr int kThreads = 8;
  std::atomic<int> computes{0};
  std::vector<std::string> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        results[t] = store.get_or_compute<std::string>(
            key,
            [](std::istream& in) {
              util::BinaryReader r(in);
              return r.read_string();
            },
            [](std::ostream& out, const std::string& v) {
              util::BinaryWriter w(out);
              w.write_string(v);
            },
            [&] {
              computes.fetch_add(1);
              return std::string("shared-value");
            });
      });
    }
    for (auto& th : threads) th.join();
  }
  for (const auto& r : results) EXPECT_EQ(r, "shared-value");
  EXPECT_GE(computes.load(), 1);
  EXPECT_EQ(store.status().entries, 1u);
  int post = 0;
  EXPECT_EQ(roundtrip(store, key, "unused", post), "shared-value");
  EXPECT_EQ(post, 0);
}

TEST(StageRunner, RunsEveryStageOnce) {
  StageRunner runner;
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    runner.add("stage" + std::to_string(i), [&] { ran.fetch_add(1); });
  }
  EXPECT_EQ(runner.size(), 5u);
  runner.run_all();
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(runner.size(), 0u);  // list cleared; re-running is a no-op
  runner.run_all();
  EXPECT_EQ(ran.load(), 5);
}

TEST(StageRunner, NestedParallelForDoesNotDeadlock) {
  // Each stage runs a parallel_for on the same pool the runner schedules
  // stages on; the helping-wait must drain nested tasks even when stages
  // occupy every worker.
  util::ThreadPool pool(2);
  StageRunner runner(pool);
  std::atomic<int> total{0};
  for (int s = 0; s < 4; ++s) {
    runner.add("nested" + std::to_string(s), [&] {
      util::parallel_for(pool, std::size_t{0}, std::size_t{100},
                         [&](std::size_t) { total.fetch_add(1); });
    });
  }
  runner.run_all();
  EXPECT_EQ(total.load(), 400);
}

TEST(StageRunner, FirstExceptionPropagatesAfterAllStagesFinish) {
  StageRunner runner;
  std::atomic<int> ran{0};
  runner.add("ok1", [&] { ran.fetch_add(1); });
  runner.add("boom", [] { throw std::runtime_error("stage failed"); });
  runner.add("ok2", [&] { ran.fetch_add(1); });
  EXPECT_THROW(runner.run_all(), std::runtime_error);
  EXPECT_EQ(ran.load(), 2);  // healthy stages still completed
}

}  // namespace
}  // namespace phonolid::pipeline
