#include "am/gmm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <sstream>

#include "util/rng.h"

namespace phonolid::am {
namespace {

util::Matrix sample_two_clusters(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  util::Matrix data(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      data(i, 0) = static_cast<float>(rng.gaussian(-3.0, 0.5));
      data(i, 1) = static_cast<float>(rng.gaussian(0.0, 0.5));
    } else {
      data(i, 0) = static_cast<float>(rng.gaussian(3.0, 0.5));
      data(i, 1) = static_cast<float>(rng.gaussian(1.0, 0.5));
    }
  }
  return data;
}

TEST(DiagGaussian, LogLikelihoodMatchesClosedForm) {
  DiagGaussian g({0.0f, 0.0f}, {1.0f, 1.0f});
  std::vector<float> x = {0.0f, 0.0f};
  EXPECT_NEAR(g.log_likelihood(x), -std::log(2.0 * std::numbers::pi), 1e-5);
  x = {1.0f, 0.0f};
  EXPECT_NEAR(g.log_likelihood(x), -std::log(2.0 * std::numbers::pi) - 0.5,
              1e-5);
}

TEST(DiagGaussian, VarianceFloorApplied) {
  DiagGaussian g({0.0f}, {0.0f});  // zero variance must be floored
  std::vector<float> x = {0.0f};
  EXPECT_TRUE(std::isfinite(g.log_likelihood(x)));
}

TEST(DiagGaussian, MismatchedSizesThrow) {
  EXPECT_THROW(DiagGaussian({0.0f, 1.0f}, {1.0f}), std::invalid_argument);
}

TEST(DiagGmm, RecoverTwoClusters) {
  const auto data = sample_two_clusters(2000, 7);
  DiagGmm gmm;
  GmmTrainConfig cfg;
  cfg.num_components = 2;
  cfg.seed = 3;
  gmm.train(data, cfg);
  ASSERT_EQ(gmm.num_components(), 2u);
  // The two component means should sit near (-3, 0) and (3, 1).
  const auto& m0 = gmm.component(0).mean();
  const auto& m1 = gmm.component(1).mean();
  const bool first_is_left = m0[0] < m1[0];
  const auto& left = first_is_left ? m0 : m1;
  const auto& right = first_is_left ? m1 : m0;
  EXPECT_NEAR(left[0], -3.0, 0.3);
  EXPECT_NEAR(right[0], 3.0, 0.3);
}

TEST(DiagGmm, WeightsFormDistribution) {
  const auto data = sample_two_clusters(500, 11);
  DiagGmm gmm;
  GmmTrainConfig cfg;
  cfg.num_components = 3;
  gmm.train(data, cfg);
  double total = 0.0;
  for (float lw : gmm.log_weights()) total += std::exp(static_cast<double>(lw));
  EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST(DiagGmm, EmTrainingImprovesLikelihood) {
  const auto data = sample_two_clusters(1000, 13);
  GmmTrainConfig short_cfg;
  short_cfg.num_components = 2;
  short_cfg.kmeans_iters = 1;
  short_cfg.em_iters = 0;
  short_cfg.seed = 5;
  DiagGmm rough;
  rough.train(data, short_cfg);

  GmmTrainConfig long_cfg = short_cfg;
  long_cfg.em_iters = 10;
  DiagGmm refined;
  refined.train(data, long_cfg);

  EXPECT_GE(refined.average_log_likelihood(data),
            rough.average_log_likelihood(data) - 1e-6);
}

TEST(DiagGmm, MoreComponentsFitAtLeastAsWell) {
  const auto data = sample_two_clusters(1000, 17);
  double prev = -1e18;
  for (std::size_t m : {1, 2, 4}) {
    DiagGmm gmm;
    GmmTrainConfig cfg;
    cfg.num_components = m;
    cfg.seed = 23;
    gmm.train(data, cfg);
    const double ll = gmm.average_log_likelihood(data);
    EXPECT_GE(ll, prev - 0.05) << m;  // tiny slack for EM local optima
    prev = ll;
  }
}

TEST(DiagGmm, HandlesFewerFramesThanComponents) {
  util::Matrix tiny(3, 2, 0.5f);
  tiny(1, 0) = 1.0f;
  tiny(2, 1) = -1.0f;
  DiagGmm gmm;
  GmmTrainConfig cfg;
  cfg.num_components = 8;
  gmm.train(tiny, cfg);
  EXPECT_LE(gmm.num_components(), 3u);
  std::vector<float> x = {0.5f, 0.5f};
  EXPECT_TRUE(std::isfinite(gmm.log_likelihood(x)));
}

TEST(DiagGmm, EmptyDataThrows) {
  util::Matrix empty(0, 3);
  DiagGmm gmm;
  EXPECT_THROW(gmm.train(empty, {}), std::invalid_argument);
}

TEST(DiagGmm, DeterministicForSeed) {
  const auto data = sample_two_clusters(300, 29);
  GmmTrainConfig cfg;
  cfg.num_components = 2;
  cfg.seed = 31;
  DiagGmm a, b;
  a.train(data, cfg);
  b.train(data, cfg);
  std::vector<float> x = {0.7f, -0.2f};
  EXPECT_FLOAT_EQ(a.log_likelihood(x), b.log_likelihood(x));
}

TEST(DiagGmm, SerializationRoundTrip) {
  const auto data = sample_two_clusters(300, 37);
  DiagGmm gmm;
  GmmTrainConfig cfg;
  cfg.num_components = 2;
  gmm.train(data, cfg);
  std::stringstream ss;
  gmm.serialize(ss);
  const DiagGmm loaded = DiagGmm::deserialize(ss);
  std::vector<float> x = {1.5f, 0.3f};
  EXPECT_FLOAT_EQ(gmm.log_likelihood(x), loaded.log_likelihood(x));
}

}  // namespace
}  // namespace phonolid::am
