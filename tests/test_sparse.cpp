#include "phonotactic/sparse.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace phonolid::phonotactic {
namespace {

TEST(SparseVec, ConstructionValidation) {
  EXPECT_NO_THROW(SparseVec({1, 5, 9}, {1.0f, 2.0f, 3.0f}));
  EXPECT_THROW(SparseVec({1, 5}, {1.0f}), std::invalid_argument);
  EXPECT_THROW(SparseVec({5, 1}, {1.0f, 2.0f}), std::invalid_argument);
  EXPECT_THROW(SparseVec({3, 3}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(SparseVec, FromPairsSortsAndMerges) {
  const auto v = SparseVec::from_pairs({{7, 1.0f}, {2, 2.0f}, {7, 3.0f}});
  ASSERT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.indices()[0], 2u);
  EXPECT_EQ(v.indices()[1], 7u);
  EXPECT_FLOAT_EQ(v.values()[0], 2.0f);
  EXPECT_FLOAT_EQ(v.values()[1], 4.0f);
}

TEST(SparseVec, AtLookup) {
  const auto v = SparseVec({1, 4, 8}, {0.5f, 1.5f, 2.5f});
  EXPECT_FLOAT_EQ(v.at(1), 0.5f);
  EXPECT_FLOAT_EQ(v.at(4), 1.5f);
  EXPECT_FLOAT_EQ(v.at(8), 2.5f);
  EXPECT_FLOAT_EQ(v.at(0), 0.0f);
  EXPECT_FLOAT_EQ(v.at(5), 0.0f);
  EXPECT_FLOAT_EQ(v.at(100), 0.0f);
}

TEST(SparseVec, SumAndNorm) {
  const auto v = SparseVec({0, 3}, {3.0f, 4.0f});
  EXPECT_DOUBLE_EQ(v.sum(), 7.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
}

TEST(SparseVec, ScaleInPlace) {
  auto v = SparseVec({0, 1}, {1.0f, 2.0f});
  v.scale(3.0f);
  EXPECT_FLOAT_EQ(v.values()[0], 3.0f);
  EXPECT_FLOAT_EQ(v.values()[1], 6.0f);
}

TEST(SparseVec, SparseSparseDot) {
  const auto a = SparseVec({1, 3, 5}, {1.0f, 2.0f, 3.0f});
  const auto b = SparseVec({0, 3, 5, 9}, {7.0f, 4.0f, 5.0f, 11.0f});
  EXPECT_DOUBLE_EQ(SparseVec::dot(a, b), 2.0 * 4.0 + 3.0 * 5.0);
  EXPECT_DOUBLE_EQ(SparseVec::dot(a, SparseVec()), 0.0);
}

TEST(SparseVec, DotDense) {
  const auto a = SparseVec({0, 2}, {2.0f, 3.0f});
  std::vector<float> dense = {1.0f, 10.0f, 4.0f};
  EXPECT_DOUBLE_EQ(a.dot_dense(dense), 2.0 + 12.0);
}

TEST(SparseVec, AddToDense) {
  const auto a = SparseVec({1, 2}, {1.0f, -2.0f});
  std::vector<float> dense = {0.0f, 1.0f, 1.0f};
  a.add_to_dense(2.0f, dense);
  EXPECT_FLOAT_EQ(dense[0], 0.0f);
  EXPECT_FLOAT_EQ(dense[1], 3.0f);
  EXPECT_FLOAT_EQ(dense[2], -3.0f);
}

TEST(SparseVec, DotIsSymmetric) {
  const auto a = SparseVec::from_pairs({{3, 1.5f}, {10, -1.0f}, {77, 2.0f}});
  const auto b = SparseVec::from_pairs({{3, 2.0f}, {77, 0.5f}, {100, 9.0f}});
  EXPECT_DOUBLE_EQ(SparseVec::dot(a, b), SparseVec::dot(b, a));
}

TEST(SparseVec, SerializationRoundTrip) {
  const auto v = SparseVec({2, 9, 200000}, {1.25f, -0.5f, 7.0f});
  std::stringstream ss;
  v.serialize(ss);
  const auto loaded = SparseVec::deserialize(ss);
  EXPECT_EQ(loaded.indices(), v.indices());
  EXPECT_EQ(loaded.values(), v.values());
}

TEST(SparseVec, EmptyBehaviour) {
  SparseVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.nnz(), 0u);
  EXPECT_DOUBLE_EQ(v.sum(), 0.0);
  EXPECT_DOUBLE_EQ(v.norm(), 0.0);
}

}  // namespace
}  // namespace phonolid::phonotactic
