#include "util/options.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/logging.h"

namespace phonolid::util {
namespace {

TEST(Options, ParseScale) {
  EXPECT_EQ(parse_scale("quick"), Scale::kQuick);
  EXPECT_EQ(parse_scale("default"), Scale::kDefault);
  EXPECT_EQ(parse_scale("full"), Scale::kFull);
  EXPECT_EQ(parse_scale("bogus"), Scale::kDefault);
  EXPECT_EQ(parse_scale(""), Scale::kDefault);
}

TEST(Options, ScaleNames) {
  EXPECT_STREQ(to_string(Scale::kQuick), "quick");
  EXPECT_STREQ(to_string(Scale::kDefault), "default");
  EXPECT_STREQ(to_string(Scale::kFull), "full");
}

TEST(Options, ScaleFromEnv) {
  ::setenv("PHONOLID_SCALE", "full", 1);
  EXPECT_EQ(scale_from_env(), Scale::kFull);
  ::setenv("PHONOLID_SCALE", "quick", 1);
  EXPECT_EQ(scale_from_env(), Scale::kQuick);
  ::unsetenv("PHONOLID_SCALE");
  EXPECT_EQ(scale_from_env(), Scale::kDefault);
}

TEST(Options, EnvIntFallbacks) {
  ::unsetenv("PHONOLID_TEST_INT");
  EXPECT_EQ(env_int("PHONOLID_TEST_INT", 42), 42);
  ::setenv("PHONOLID_TEST_INT", "123", 1);
  EXPECT_EQ(env_int("PHONOLID_TEST_INT", 42), 123);
  ::setenv("PHONOLID_TEST_INT", "-7", 1);
  EXPECT_EQ(env_int("PHONOLID_TEST_INT", 42), -7);
  ::setenv("PHONOLID_TEST_INT", "notanumber", 1);
  EXPECT_EQ(env_int("PHONOLID_TEST_INT", 42), 42);
  ::unsetenv("PHONOLID_TEST_INT");
}

TEST(Options, MasterSeedOverride) {
  ::unsetenv("PHONOLID_SEED");
  EXPECT_EQ(master_seed(), 20090704u);
  ::setenv("PHONOLID_SEED", "777", 1);
  EXPECT_EQ(master_seed(), 777u);
  ::unsetenv("PHONOLID_SEED");
}

TEST(Logging, LevelParsing) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("???"), LogLevel::kWarn);
}

TEST(Logging, LevelFiltering) {
  Logger& logger = Logger::instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kError);
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(LogLevel::kTrace);
  EXPECT_TRUE(logger.enabled(LogLevel::kDebug));
  logger.set_level(saved);
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
}

TEST(Logging, Iso8601Timestamp) {
  // 2026-08-06T12:34:56.789Z
  const auto tp = std::chrono::system_clock::time_point(
      std::chrono::milliseconds(1786019696789LL));
  EXPECT_EQ(format_log_timestamp(tp), "2026-08-06T12:34:56.789Z");
  // The epoch itself.
  EXPECT_EQ(format_log_timestamp(std::chrono::system_clock::time_point{}),
            "1970-01-01T00:00:00.000Z");
}

TEST(Logging, PrefixFormat) {
  const auto tp = std::chrono::system_clock::time_point(
      std::chrono::milliseconds(1786019696789LL));
  EXPECT_EQ(format_log_prefix(LogLevel::kInfo, "core", tp, 0),
            "[2026-08-06T12:34:56.789Z T00 INFO  core]");
  EXPECT_EQ(format_log_prefix(LogLevel::kError, "decoder", tp, 7),
            "[2026-08-06T12:34:56.789Z T07 ERROR decoder]");
}

TEST(Logging, ThreadIdStableWithinThread) {
  const std::uint32_t a = current_log_thread_id();
  const std::uint32_t b = current_log_thread_id();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace phonolid::util
