#include "phonotactic/supervector.h"

#include <gtest/gtest.h>

#include <cmath>

namespace phonolid::phonotactic {
namespace {

decoder::Lattice chain_lattice(const std::vector<std::uint32_t>& phones) {
  std::vector<decoder::LatticeEdge> edges;
  for (std::uint32_t i = 0; i < phones.size(); ++i) {
    edges.push_back({i, i + 1, phones[i], 0.0f, 0.0});
  }
  decoder::Lattice lat(phones.size(), std::move(edges));
  lat.set_best_path(phones);
  return lat;
}

TEST(SupervectorBuilder, PerOrderProbabilitiesSumToOne) {
  NgramIndexer idx(4, 3);
  SupervectorBuilder builder(idx);
  const auto sv = builder.build(chain_lattice({0, 1, 2, 3, 0, 1}));
  ASSERT_FALSE(sv.empty());
  double order_sum[3] = {0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < sv.nnz(); ++i) {
    const std::uint32_t id = sv.indices()[i];
    std::size_t order = 1;
    if (id >= idx.order_offset(3)) {
      order = 3;
    } else if (id >= idx.order_offset(2)) {
      order = 2;
    }
    order_sum[order - 1] += sv.values()[i];
  }
  EXPECT_NEAR(order_sum[0], 1.0, 1e-5);
  EXPECT_NEAR(order_sum[1], 1.0, 1e-5);
  EXPECT_NEAR(order_sum[2], 1.0, 1e-5);
}

TEST(SupervectorBuilder, OneBestModeUsesBestPath) {
  NgramIndexer idx(4, 2);
  SupervectorConfig cfg;
  cfg.use_lattice = false;
  SupervectorBuilder builder(idx, cfg);
  const auto sv = builder.build(chain_lattice({1, 1, 2}));
  std::uint32_t p1[] = {1};
  std::uint32_t p2[] = {2};
  // Unigrams: p1 2/3, p2 1/3.
  EXPECT_NEAR(sv.at(idx.index(p1, 1)), 2.0f / 3.0f, 1e-5);
  EXPECT_NEAR(sv.at(idx.index(p2, 1)), 1.0f / 3.0f, 1e-5);
}

TEST(SupervectorBuilder, EmptyLatticeGivesEmptySupervector) {
  NgramIndexer idx(4, 2);
  SupervectorBuilder builder(idx);
  decoder::Lattice empty(0, {});
  EXPECT_TRUE(builder.build(empty).empty());
}

TEST(TfllrScaler, ScalesByInverseSqrtBackground) {
  TfllrScaler scaler(4);
  // Background: feature 0 seen with probability ~0.75, feature 1 ~0.25.
  scaler.accumulate(SparseVec({0, 1}, {3.0f, 1.0f}));
  scaler.finalize();
  EXPECT_NEAR(scaler.scale_of(0), 1.0f / std::sqrt(0.75f), 1e-4);
  EXPECT_NEAR(scaler.scale_of(1), 1.0f / std::sqrt(0.25f), 1e-4);
  // Rare features get a bigger boost than frequent ones.
  EXPECT_GT(scaler.scale_of(1), scaler.scale_of(0));
}

TEST(TfllrScaler, UnseenFeatureScaleIsBoundedAndLargest) {
  TfllrScaler scaler(3);
  scaler.accumulate(SparseVec({0}, {10.0f}));
  scaler.finalize();
  EXPECT_TRUE(std::isfinite(scaler.scale_of(2)));
  EXPECT_GT(scaler.scale_of(2), scaler.scale_of(0));
}

TEST(TfllrScaler, TransformAppliesScales) {
  TfllrScaler scaler(4);
  scaler.accumulate(SparseVec({0, 1}, {1.0f, 1.0f}));
  scaler.finalize();
  SparseVec v({0, 1}, {2.0f, 4.0f});
  scaler.transform(v);
  EXPECT_NEAR(v.values()[0], 2.0f * scaler.scale_of(0), 1e-5);
  EXPECT_NEAR(v.values()[1], 4.0f * scaler.scale_of(1), 1e-5);
}

TEST(TfllrScaler, KernelEquivalence) {
  // TFLLR kernel (paper Eq. 5): K(x,y) = sum p_x p_y / p_all.
  // After transform, plain dot product must equal the kernel.
  TfllrScaler scaler(3);
  scaler.accumulate(SparseVec({0, 1, 2}, {2.0f, 1.0f, 1.0f}));
  scaler.finalize();
  SparseVec x({0, 1}, {0.6f, 0.4f});
  SparseVec y({0, 2}, {0.5f, 0.5f});
  double kernel = 0.0;
  for (std::uint32_t q = 0; q < 3; ++q) {
    const double p_all =
        1.0 / (static_cast<double>(scaler.scale_of(q)) * scaler.scale_of(q));
    kernel += static_cast<double>(x.at(q)) * y.at(q) / p_all;
  }
  scaler.transform(x);
  scaler.transform(y);
  EXPECT_NEAR(SparseVec::dot(x, y), kernel, 1e-5);
}

TEST(TfllrScaler, LifecycleErrors) {
  TfllrScaler scaler(2);
  SparseVec v({0}, {1.0f});
  EXPECT_THROW(scaler.transform(v), std::logic_error);
  scaler.accumulate(v);
  scaler.finalize();
  EXPECT_THROW(scaler.accumulate(v), std::logic_error);
  SparseVec oob({5}, {1.0f});
  EXPECT_THROW(scaler.transform(oob), std::out_of_range);
}

TEST(TfllrScaler, SerializationRoundTrip) {
  TfllrScaler scaler(3);
  scaler.accumulate(SparseVec({0, 2}, {1.0f, 3.0f}));
  scaler.finalize();
  std::stringstream ss;
  scaler.serialize(ss);
  const auto loaded = TfllrScaler::deserialize(ss);
  for (std::uint32_t q = 0; q < 3; ++q) {
    EXPECT_FLOAT_EQ(loaded.scale_of(q), scaler.scale_of(q));
  }
}

}  // namespace
}  // namespace phonolid::phonotactic
