// Tests for the sampling CPU profiler (obs/profiler.h): sample capture
// under the helping-wait thread pool at several widths, ring wraparound
// with nonzero drop counters, the forced-timer_create degradation path,
// the folded-stack export format, and the report-diff self-share gate.
//
// Timers fire on *thread CPU time*, so every sampling test burns real CPU
// and loops against a wall-clock deadline instead of asserting on a fixed
// duration — the same code stays robust under ThreadSanitizer, where each
// iteration is several times slower.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporters.h"
#include "obs/json.h"
#include "obs/profiler.h"
#include "obs/report_diff.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace {

using namespace phonolid;
using Clock = std::chrono::steady_clock;

std::atomic<double> g_sink{0.0};

/// Burn a visible chunk of CPU; the body is opaque enough that the
/// optimizer cannot elide it, so SIGPROF has something to land on.
void burn_cpu(int iters = 200000) {
  double acc = 0.0;
  for (int i = 0; i < iters; ++i) acc += std::sqrt(static_cast<double>(i) + 1.0);
  g_sink.store(acc, std::memory_order_relaxed);
}

/// Every test leaves the profiler exactly as it found it: no forced
/// errors, default ring capacity, disarmed, and with no retained samples.
class ProfilerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::Profiler::force_timer_error_for_test(0);
    obs::Profiler::set_ring_capacity_for_test(0);
    obs::Profiler::stop();
    obs::Profiler::reset();
  }
};

/// Start at a high rate (keeps test wall time low) or skip on hosts
/// without per-thread CPU timers (the profiler degrades, so must the test).
bool start_or_skip() {
  if (!obs::Profiler::start(997)) {
    return false;
  }
  return true;
}

#define START_OR_SKIP()                                                \
  do {                                                                 \
    if (!start_or_skip())                                              \
      GTEST_SKIP() << "CPU profiler unavailable on this host (errno "  \
                   << obs::Profiler::unavailable_errno() << ")";       \
  } while (0)

/// Drive span-wrapped busy work through `pool` until the profiler has
/// retained samples attributed to the span, or the deadline passes.
void sample_under_pool(util::ThreadPool& pool) {
  const auto deadline = Clock::now() + std::chrono::seconds(20);
  bool attributed = false;
  while (!attributed && Clock::now() < deadline) {
    util::parallel_for(pool, 0, pool.num_threads() * 4,
                       [](std::size_t) {
                         PHONOLID_SPAN("profiler_test_burn");
                         burn_cpu();
                       });
    const obs::ProfileData data = obs::Profiler::snapshot();
    for (const obs::ProfileSpan& span : data.spans) {
      if (span.path.find("profiler_test_burn") != std::string::npos &&
          span.samples > 0) {
        attributed = true;
        break;
      }
    }
  }
  EXPECT_TRUE(attributed)
      << "no samples attributed to the busy-work span before the deadline";
  EXPECT_GT(obs::Profiler::snapshot().samples, 0u);
}

TEST_F(ProfilerTest, SamplesWorkOnPoolWidth1) {
  START_OR_SKIP();
  util::ThreadPool pool(1);
  sample_under_pool(pool);
}

TEST_F(ProfilerTest, SamplesWorkOnPoolWidth4) {
  START_OR_SKIP();
  util::ThreadPool pool(4);
  sample_under_pool(pool);
}

TEST_F(ProfilerTest, SamplesWorkOnPoolWidth8) {
  START_OR_SKIP();
  util::ThreadPool pool(8);
  sample_under_pool(pool);
}

TEST_F(ProfilerTest, RingWraparoundCountsDrops) {
  // A 4-slot ring at ~2 kHz overflows within milliseconds of CPU burn.
  // The burner thread opens no spans (on_span_enter would drain the ring
  // opportunistically) and nobody snapshots until it exits, so overflow is
  // the only possible outcome; the handler must count drops, not block or
  // overwrite.
  obs::Profiler::set_ring_capacity_for_test(4);
  if (!obs::Profiler::start(2000)) {
    GTEST_SKIP() << "CPU profiler unavailable on this host";
  }
  const auto deadline = Clock::now() + std::chrono::seconds(20);
  std::uint64_t dropped = 0;
  while (dropped == 0 && Clock::now() < deadline) {
    std::thread burner([] {
      // Ad-hoc threads (not pool workers, no spans) must opt in; pool
      // workers do this in worker_loop.
      obs::Profiler::register_thread();
      const auto stop_at = Clock::now() + std::chrono::milliseconds(300);
      while (Clock::now() < stop_at) burn_cpu(50000);
    });
    burner.join();
    const obs::ProfileData data = obs::Profiler::snapshot();
    dropped = data.dropped;
  }
  EXPECT_GT(dropped, 0u) << "4-slot ring never overflowed";
  EXPECT_GT(obs::Profiler::snapshot().samples, 0u);
}

TEST_F(ProfilerTest, ForcedTimerFailureDegradesGracefully) {
  obs::Profiler::force_timer_error_for_test(EPERM);
  EXPECT_FALSE(obs::Profiler::start(0));
  EXPECT_FALSE(obs::Profiler::available());
  EXPECT_FALSE(obs::Profiler::enabled());
  EXPECT_EQ(obs::Profiler::unavailable_errno(), EPERM);

  const obs::Json profile = obs::Profiler::profile_json();
  const obs::Json* source = profile.find("source");
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->as_string(), "cpu");
  const obs::Json* available = profile.find("available");
  ASSERT_NE(available, nullptr);
  EXPECT_FALSE(available->as_bool());
  const obs::Json* err = profile.find("unavailable_errno");
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->as_double(), static_cast<double>(EPERM));

  // Clearing the forced error re-probes on the next start: the profiler
  // recovers without a process restart (skip the recovery assertion on
  // hosts where timers genuinely do not work).
  obs::Profiler::force_timer_error_for_test(0);
  if (obs::Profiler::start(997)) {
    EXPECT_TRUE(obs::Profiler::available());
    EXPECT_EQ(obs::Profiler::unavailable_errno(), 0);
  }
}

TEST_F(ProfilerTest, FoldedStackOutputParsesWithPositiveCounts) {
  START_OR_SKIP();
  const auto deadline = Clock::now() + std::chrono::seconds(20);
  while (obs::Profiler::snapshot().samples == 0 && Clock::now() < deadline) {
    PHONOLID_SPAN("profiler_test_folded");
    burn_cpu();
  }
  obs::Profiler::stop();
  ASSERT_GT(obs::Profiler::snapshot().samples, 0u);

  const std::string text = obs::folded_stacks_text();
  ASSERT_FALSE(text.empty());
  std::istringstream lines(text);
  std::string line;
  std::vector<std::string> all_lines;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    // "<frame>;<frame>;...;<frame> <count>": the last space splits the
    // stack from its sample count, which must parse as a positive integer.
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    const std::string stack = line.substr(0, space);
    const std::string count_str = line.substr(space + 1);
    ASSERT_FALSE(count_str.empty()) << line;
    std::size_t parsed = 0;
    const long long count = std::stoll(count_str, &parsed);
    EXPECT_EQ(parsed, count_str.size()) << line;
    EXPECT_GT(count, 0) << line;
    // Frames never contain the separators the format reserves.
    for (const char c : stack) {
      EXPECT_NE(c, '\n');
    }
    all_lines.push_back(line);
  }
  ASSERT_FALSE(all_lines.empty());
  // Byte-stable export: lines come out sorted.
  EXPECT_TRUE(std::is_sorted(all_lines.begin(), all_lines.end()));
}

// --- report-diff profile gate ----------------------------------------------

/// Minimal schema-v1 report with a profile section holding one function.
obs::Json profile_report(double self_share, std::uint64_t dropped = 0) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema_version\": 1,"
      " \"profile\": {\"source\": \"cpu\", \"available\": true, \"hz\": 99,"
      "   \"samples\": 1000, \"dropped\": %llu,"
      "   \"functions\": [{\"name\": \"fft\", \"self\": %d, \"total\": %d,"
      "                    \"self_share\": %.17g, \"total_share\": %.17g}]}}",
      static_cast<unsigned long long>(dropped),
      static_cast<int>(self_share * 1000), static_cast<int>(self_share * 1000),
      self_share, self_share);
  return obs::Json::parse(buf);
}

TEST(ProfilerReportDiff, SelfShareWithinBudgetPasses) {
  obs::ReportDiffOptions opt;
  opt.max_self_share_delta = 0.05;
  const auto result =
      obs::diff_reports(profile_report(0.50), profile_report(0.52), opt);
  EXPECT_FALSE(result.violated);
  bool saw_gated_row = false;
  for (const auto& row : result.rows) {
    if (row.key == "profile/functions/fft/self_share") {
      EXPECT_TRUE(row.gated);
      EXPECT_EQ(row.gate, "max-self-share-delta");
      EXPECT_FALSE(row.violation);
      saw_gated_row = true;
    }
  }
  EXPECT_TRUE(saw_gated_row);
}

TEST(ProfilerReportDiff, SelfShareRegressionFires) {
  obs::ReportDiffOptions opt;
  opt.max_self_share_delta = 0.05;
  const auto result =
      obs::diff_reports(profile_report(0.50), profile_report(0.60), opt);
  EXPECT_TRUE(result.violated);
  bool saw_violation = false;
  for (const auto& row : result.rows) {
    if (row.key == "profile/functions/fft/self_share" && row.violation) {
      EXPECT_EQ(row.gate, "max-self-share-delta");
      saw_violation = true;
    }
  }
  EXPECT_TRUE(saw_violation);
  // Improvements never violate.
  EXPECT_FALSE(
      obs::diff_reports(profile_report(0.60), profile_report(0.50), opt)
          .violated);
}

TEST(ProfilerReportDiff, MissingProfileSectionStaysANote) {
  // Old baselines predate the profiler; they must diff clean under the
  // gate, with the absent section surfaced as a note only.
  const obs::Json old_baseline =
      obs::Json::parse("{\"schema_version\": 1}");
  obs::ReportDiffOptions opt;
  opt.max_self_share_delta = 0.05;
  const auto result =
      obs::diff_reports(old_baseline, profile_report(0.50), opt);
  EXPECT_FALSE(result.violated);
  bool noted = false;
  for (const auto& note : result.notes) {
    if (note.find("profile") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST(ProfilerReportDiff, DroppedSamplesSurfaceAsWarning) {
  const auto result = obs::diff_reports(profile_report(0.50),
                                        profile_report(0.50, /*dropped=*/7));
  EXPECT_FALSE(result.violated);  // drops warn, they never gate
  bool warned = false;
  for (const auto& note : result.notes) {
    if (note.find("WARNING") != std::string::npos &&
        note.find("current") != std::string::npos &&
        note.find("profiler samples") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
  EXPECT_NE(result.format().find("WARNING"), std::string::npos);
}

}  // namespace
