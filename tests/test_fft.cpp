#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "util/rng.h"

namespace phonolid::dsp {
namespace {

TEST(Fft, RejectsNonPowerOfTwo) {
  EXPECT_THROW(Fft(0), std::invalid_argument);
  EXPECT_THROW(Fft(1), std::invalid_argument);
  EXPECT_THROW(Fft(100), std::invalid_argument);
  EXPECT_NO_THROW(Fft(2));
  EXPECT_NO_THROW(Fft(256));
}

TEST(Fft, DeltaFunctionIsFlat) {
  Fft fft(16);
  std::vector<std::complex<float>> x(16, {0.0f, 0.0f});
  x[0] = {1.0f, 0.0f};
  fft.forward(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-5);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-5);
  }
}

TEST(Fft, PureToneLandsInOneBin) {
  const std::size_t n = 64;
  Fft fft(n);
  std::vector<std::complex<float>> x(n);
  const std::size_t bin = 5;
  for (std::size_t t = 0; t < n; ++t) {
    const double angle =
        2.0 * std::numbers::pi * static_cast<double>(bin * t) / static_cast<double>(n);
    x[t] = {static_cast<float>(std::cos(angle)), 0.0f};
  }
  fft.forward(x);
  for (std::size_t k = 0; k < n; ++k) {
    const float mag = std::abs(x[k]);
    if (k == bin || k == n - bin) {
      EXPECT_NEAR(mag, n / 2.0f, 1e-3) << k;
    } else {
      EXPECT_NEAR(mag, 0.0f, 1e-3) << k;
    }
  }
}

TEST(Fft, InverseRecoversSignal) {
  const std::size_t n = 128;
  Fft fft(n);
  util::Rng rng(5);
  std::vector<std::complex<float>> x(n), orig(n);
  for (auto& v : x) {
    v = {static_cast<float>(rng.gaussian()), static_cast<float>(rng.gaussian())};
  }
  orig = x;
  fft.forward(x);
  fft.inverse(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), orig[i].real(), 1e-4);
    EXPECT_NEAR(x[i].imag(), orig[i].imag(), 1e-4);
  }
}

TEST(Fft, LinearityProperty) {
  const std::size_t n = 32;
  Fft fft(n);
  util::Rng rng(9);
  std::vector<std::complex<float>> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {static_cast<float>(rng.gaussian()), 0.0f};
    b[i] = {static_cast<float>(rng.gaussian()), 0.0f};
    sum[i] = a[i] + b[i];
  }
  fft.forward(a);
  fft.forward(b);
  fft.forward(sum);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sum[i].real(), a[i].real() + b[i].real(), 1e-3);
    EXPECT_NEAR(sum[i].imag(), a[i].imag() + b[i].imag(), 1e-3);
  }
}

TEST(Fft, ParsevalForPowerSpectrum) {
  // Sum of |x|^2 over time == mean of |X|^2 over frequency.
  const std::size_t n = 256;
  Fft fft(n);
  util::Rng rng(11);
  std::vector<float> x(n);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = static_cast<float>(rng.gaussian());
    time_energy += static_cast<double>(v) * v;
  }
  std::vector<float> power(n / 2 + 1);
  std::vector<std::complex<float>> scratch;
  fft.power_spectrum(x, power, scratch);
  // Reassemble full-spectrum energy from the half spectrum (bins 1..n/2-1
  // appear twice in the full spectrum).
  double freq_energy = power[0] + power[n / 2];
  for (std::size_t k = 1; k < n / 2; ++k) freq_energy += 2.0 * power[k];
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              time_energy * 1e-4);
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, RoundTripAtEverySize) {
  const std::size_t n = GetParam();
  Fft fft(n);
  util::Rng rng(n);
  std::vector<std::complex<float>> x(n), orig;
  for (auto& v : x) v = {static_cast<float>(rng.uniform(-1, 1)), 0.0f};
  orig = x;
  fft.forward(x);
  fft.inverse(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), orig[i].real(), 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256, 512,
                                           1024));

}  // namespace
}  // namespace phonolid::dsp
