#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace phonolid::eval {
namespace {

TEST(TrialSet, SplitsTargetsAndNontargets) {
  util::Matrix scores(2, 3);
  scores(0, 0) = 1.0f;
  scores(0, 1) = -1.0f;
  scores(0, 2) = -2.0f;
  scores(1, 0) = -3.0f;
  scores(1, 1) = 2.0f;
  scores(1, 2) = -4.0f;
  std::vector<std::int32_t> labels = {0, 1};
  const auto trials = TrialSet::from_scores(scores, labels);
  ASSERT_EQ(trials.target_scores.size(), 2u);
  ASSERT_EQ(trials.nontarget_scores.size(), 4u);
  EXPECT_DOUBLE_EQ(trials.target_scores[0], 1.0);
  EXPECT_DOUBLE_EQ(trials.target_scores[1], 2.0);
}

TEST(Eer, PerfectSeparationIsZero) {
  TrialSet trials;
  trials.target_scores = {3.0, 4.0, 5.0};
  trials.nontarget_scores = {-1.0, 0.0, 1.0};
  EXPECT_NEAR(equal_error_rate(trials), 0.0, 1e-9);
}

TEST(Eer, CompleteOverlapIsHalf) {
  // Identical score distributions: EER = 0.5.
  TrialSet trials;
  util::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    trials.target_scores.push_back(rng.gaussian());
    trials.nontarget_scores.push_back(rng.gaussian());
  }
  EXPECT_NEAR(equal_error_rate(trials), 0.5, 0.02);
}

TEST(Eer, InvertedScoresGiveHighError) {
  TrialSet trials;
  trials.target_scores = {-5.0, -4.0};
  trials.nontarget_scores = {4.0, 5.0};
  EXPECT_NEAR(equal_error_rate(trials), 1.0, 1e-9);
}

TEST(Eer, KnownPartialOverlap) {
  // Gaussian shift of 2 sigma: EER = Phi(-1) ~ 0.1587.
  TrialSet trials;
  util::Rng rng(3);
  for (int i = 0; i < 60000; ++i) {
    trials.target_scores.push_back(rng.gaussian(1.0, 1.0));
    trials.nontarget_scores.push_back(rng.gaussian(-1.0, 1.0));
  }
  EXPECT_NEAR(equal_error_rate(trials), 0.1587, 0.01);
}

TEST(Eer, EmptyTrialsGiveZero) {
  TrialSet trials;
  EXPECT_EQ(equal_error_rate(trials), 0.0);
}

TEST(DetCurve, MonotoneStaircase) {
  TrialSet trials;
  util::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    trials.target_scores.push_back(rng.gaussian(1.0, 1.0));
    trials.nontarget_scores.push_back(rng.gaussian(-1.0, 1.0));
  }
  const auto curve = det_curve(trials);
  ASSERT_GT(curve.size(), 10u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].p_fa, curve[i - 1].p_fa);
    EXPECT_LE(curve[i].p_miss, curve[i - 1].p_miss + 1e-12);
  }
  EXPECT_NEAR(curve.front().p_miss, 1.0, 1e-9);
  EXPECT_NEAR(curve.back().p_fa, 1.0, 1e-9);
  EXPECT_NEAR(curve.back().p_miss, 0.0, 1e-9);
}

TEST(DetCurve, ThinningPreservesEndpoints) {
  TrialSet trials;
  util::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    trials.target_scores.push_back(rng.gaussian(0.5, 1.0));
    trials.nontarget_scores.push_back(rng.gaussian(-0.5, 1.0));
  }
  const auto curve = det_curve(trials);
  const auto thin = thin_det_curve(curve, 50);
  ASSERT_EQ(thin.size(), 50u);
  EXPECT_DOUBLE_EQ(thin.front().p_fa, curve.front().p_fa);
  EXPECT_DOUBLE_EQ(thin.back().p_miss, curve.back().p_miss);
}

TEST(Llr, ConversionAgainstManual) {
  util::Matrix lp(1, 3);
  lp(0, 0) = std::log(0.7f);
  lp(0, 1) = std::log(0.2f);
  lp(0, 2) = std::log(0.1f);
  const auto llr = log_posteriors_to_llr(lp);
  // llr_0 = log(0.7) - log((0.2+0.1)/2)
  EXPECT_NEAR(llr(0, 0), std::log(0.7) - std::log(0.15), 1e-5);
  EXPECT_NEAR(llr(0, 1), std::log(0.2) - std::log(0.4), 1e-5);
}

TEST(Cavg, PerfectLlrScoresGiveZero) {
  // Targets well above 0, nontargets well below.
  util::Matrix llr(4, 2);
  std::vector<std::int32_t> y = {0, 0, 1, 1};
  for (std::size_t i = 0; i < 4; ++i) {
    llr(i, 0) = y[i] == 0 ? 5.0f : -5.0f;
    llr(i, 1) = y[i] == 1 ? 5.0f : -5.0f;
  }
  EXPECT_NEAR(cavg(llr, y, 2), 0.0, 1e-9);
}

TEST(Cavg, AllWrongGivesOneHalfPlusHalf) {
  // Every target rejected (P_miss=1) and every nontarget accepted (P_fa=1):
  // Cavg = P_t * 1 + (1-P_t) * 1 = 1 with default P_t = 0.5... per class.
  util::Matrix llr(4, 2);
  std::vector<std::int32_t> y = {0, 0, 1, 1};
  for (std::size_t i = 0; i < 4; ++i) {
    llr(i, 0) = y[i] == 0 ? -5.0f : 5.0f;
    llr(i, 1) = y[i] == 1 ? -5.0f : 5.0f;
  }
  EXPECT_NEAR(cavg(llr, y, 2), 1.0, 1e-9);
}

TEST(Cavg, MidpointForChanceScores) {
  // Scores exactly at threshold accept everything: P_miss = 0, P_fa = 1
  // -> Cavg = 0.5.
  util::Matrix llr(6, 3, 0.5f);
  std::vector<std::int32_t> y = {0, 1, 2, 0, 1, 2};
  EXPECT_NEAR(cavg(llr, y, 3), 0.5, 1e-9);
}

TEST(Cavg, ShapeValidation) {
  util::Matrix llr(2, 2, 0.0f);
  std::vector<std::int32_t> y = {0};
  EXPECT_THROW(cavg(llr, y, 2), std::invalid_argument);
}

TEST(IdentificationAccuracy, Basic) {
  util::Matrix scores(3, 2);
  scores(0, 0) = 1.0f;
  scores(0, 1) = 0.0f;
  scores(1, 0) = 0.0f;
  scores(1, 1) = 1.0f;
  scores(2, 0) = 1.0f;
  scores(2, 1) = 2.0f;  // wrong
  std::vector<std::int32_t> y = {0, 1, 0};
  EXPECT_NEAR(identification_accuracy(scores, y), 2.0 / 3.0, 1e-12);
}

TEST(EerAndCavg, CorrelateOnSyntheticSweep) {
  // Property: as score separation grows, both EER and Cavg shrink.
  util::Rng rng(11);
  double prev_eer = 1.0, prev_cavg = 1.0;
  for (double sep : {0.2, 1.0, 3.0}) {
    const std::size_t n = 3000;
    util::Matrix llr(n, 2);
    std::vector<std::int32_t> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = static_cast<std::int32_t>(i % 2);
      for (std::size_t c = 0; c < 2; ++c) {
        const double mean = (static_cast<std::int32_t>(c) == y[i]) ? sep : -sep;
        llr(i, c) = static_cast<float>(rng.gaussian(mean, 1.0));
      }
    }
    const auto trials = TrialSet::from_scores(llr, y);
    const double e = equal_error_rate(trials);
    const double c = cavg(llr, y, 2);
    EXPECT_LT(e, prev_eer);
    EXPECT_LT(c, prev_cavg);
    prev_eer = e;
    prev_cavg = c;
  }
}

}  // namespace
}  // namespace phonolid::eval
