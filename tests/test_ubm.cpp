#include "acoustic/ubm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"

namespace phonolid::acoustic {
namespace {

corpus::LreCorpus make_corpus(double subset_fraction, std::uint64_t seed) {
  corpus::CorpusConfig cfg = corpus::CorpusConfig::preset(util::Scale::kQuick, seed);
  cfg.family.num_languages = 3;
  cfg.family.subset_fraction = subset_fraction;
  cfg.train_utts_per_language = 14;
  cfg.dev_utts_per_language_per_tier = 1;
  cfg.test_utts_per_language_per_tier = 5;
  cfg.num_native_languages = 1;
  cfg.am_train_utts_per_native = 1;
  return corpus::LreCorpus::build(cfg);
}

TEST(UbmLr, TrainsAndScoresFinite) {
  const auto corpus = make_corpus(0.5, 123);
  UbmMapConfig cfg;
  cfg.ubm_components = 8;
  const auto system = UbmLrSystem::train(corpus.vsm_train(), 3, cfg);
  EXPECT_EQ(system.num_languages(), 3u);
  EXPECT_EQ(system.ubm().num_components(), 8u);
  const auto scores = system.score_all(corpus.test());
  ASSERT_EQ(scores.rows(), corpus.test().size());
  for (std::size_t i = 0; i < scores.rows(); ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_TRUE(std::isfinite(scores(i, c)));
    }
  }
}

TEST(UbmLr, BeatsChanceOnAcousticallySeparableLanguages) {
  const auto corpus = make_corpus(0.45, 99);
  UbmMapConfig cfg;
  cfg.ubm_components = 8;
  const auto system = UbmLrSystem::train(corpus.vsm_train(), 3, cfg);
  const auto scores = system.score_all(corpus.test());
  std::vector<std::int32_t> labels;
  for (const auto& u : corpus.test()) labels.push_back(u.language);
  EXPECT_GT(eval::identification_accuracy(scores, labels), 0.45);
}

TEST(UbmLr, LlrScoresAreChannelNormalisedAroundZero) {
  // The UBM LLR should hover around 0 for non-target languages (that's the
  // point of the UBM normalisation) rather than drifting with channel.
  const auto corpus = make_corpus(0.5, 7);
  UbmMapConfig cfg;
  cfg.ubm_components = 8;
  const auto system = UbmLrSystem::train(corpus.vsm_train(), 3, cfg);
  const auto scores = system.score_all(corpus.test());
  double mean_abs = 0.0;
  for (std::size_t i = 0; i < scores.rows(); ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      mean_abs += std::abs(scores(i, c));
    }
  }
  mean_abs /= static_cast<double>(scores.rows() * 3);
  EXPECT_LT(mean_abs, 20.0);  // loglik-ratio scale, not raw loglik scale
}

TEST(UbmLr, RelevanceControlsAdaptationStrength) {
  const auto corpus = make_corpus(0.5, 11);
  UbmMapConfig weak, strong;
  weak.ubm_components = strong.ubm_components = 4;
  weak.relevance = 1e6;   // effectively no adaptation
  strong.relevance = 2.0; // strong adaptation
  const auto sys_weak = UbmLrSystem::train(corpus.vsm_train(), 3, weak);
  const auto sys_strong = UbmLrSystem::train(corpus.vsm_train(), 3, strong);
  const auto s_weak = sys_weak.score_all(corpus.test());
  const auto s_strong = sys_strong.score_all(corpus.test());
  // With huge relevance, adapted models == UBM -> LLR ~ 0 everywhere.
  double weak_mag = 0.0, strong_mag = 0.0;
  for (std::size_t i = 0; i < s_weak.rows(); ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      weak_mag += std::abs(s_weak(i, c));
      strong_mag += std::abs(s_strong(i, c));
    }
  }
  EXPECT_LT(weak_mag, strong_mag);
  EXPECT_NEAR(weak_mag / static_cast<double>(s_weak.rows() * 3), 0.0, 0.05);
}

TEST(UbmLr, InputValidation) {
  EXPECT_THROW(UbmLrSystem::train({}, 3, {}), std::invalid_argument);
  corpus::Dataset bad(1);
  bad[0].language = 7;
  bad[0].samples.assign(4000, 0.1f);
  EXPECT_THROW(UbmLrSystem::train(bad, 3, {}), std::invalid_argument);
}

}  // namespace
}  // namespace phonolid::acoustic
