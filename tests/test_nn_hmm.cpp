#include "am/nn_hmm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "corpus/language_model.h"
#include "corpus/synthesizer.h"

namespace phonolid::am {
namespace {

TEST(StackContext, ZeroContextIsIdentity) {
  util::Matrix m(3, 2);
  m(1, 0) = 5.0f;
  const auto out = stack_context(m, 0);
  EXPECT_TRUE(out == m);
}

TEST(StackContext, WidthAndCenterColumn) {
  util::Matrix m(5, 3);
  for (std::size_t t = 0; t < 5; ++t) {
    for (std::size_t d = 0; d < 3; ++d) {
      m(t, d) = static_cast<float>(t * 10 + d);
    }
  }
  const auto out = stack_context(m, 2);
  ASSERT_EQ(out.rows(), 5u);
  ASSERT_EQ(out.cols(), 15u);
  // Centre block (offset 2*dim) must equal the original frame.
  for (std::size_t t = 0; t < 5; ++t) {
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_FLOAT_EQ(out(t, 6 + d), m(t, d));
    }
  }
  // Interior frame: left block = previous frames.
  EXPECT_FLOAT_EQ(out(2, 0), m(0, 0));
  EXPECT_FLOAT_EQ(out(2, 3), m(1, 0));
  EXPECT_FLOAT_EQ(out(2, 12), m(4, 0));
}

TEST(StackContext, EdgesClampToBoundaryFrames) {
  util::Matrix m(3, 1);
  m(0, 0) = 1.0f;
  m(1, 0) = 2.0f;
  m(2, 0) = 3.0f;
  const auto out = stack_context(m, 1);
  // Frame 0: left neighbour clamped to frame 0.
  EXPECT_FLOAT_EQ(out(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(out(0, 2), 2.0f);
  // Frame 2: right neighbour clamped to frame 2.
  EXPECT_FLOAT_EQ(out(2, 1), 3.0f);
  EXPECT_FLOAT_EQ(out(2, 2), 3.0f);
}

struct NnWorld {
  corpus::PhoneInventory inventory;
  PhoneSetMap map;
  dsp::FeaturePipeline pipeline;
  corpus::Synthesizer synth;

  NnWorld()
      : inventory(corpus::build_universal_inventory(12, 3)),
        map(build_phone_map(inventory, 5, 5)),
        pipeline(dsp::FeaturePipelineConfig{}),
        synth(inventory, 8000.0) {}

  std::vector<AlignedUtterance> make_corpus(std::size_t n) {
    const auto lang = corpus::build_language(inventory, "t", 0.4, 0.9, 17);
    std::vector<AlignedUtterance> out;
    for (std::size_t i = 0; i < n; ++i) {
      util::Rng rng(200 + i);
      const auto phones = lang.sample_sequence(inventory, 1.5, rng);
      auto speaker = corpus::SpeakerProfile::sample(rng);
      auto channel = corpus::ChannelProfile::sample(rng);
      auto rendered = synth.render(phones, speaker, channel, rng);
      corpus::Utterance utt;
      utt.samples = std::move(rendered.samples);
      utt.alignment = std::move(rendered.alignment);
      out.push_back(align_utterance(utt, pipeline, map));
    }
    return out;
  }
};

TEST(TrainNnHmm, ProducesFiniteScaledLikelihoods) {
  NnWorld world;
  const auto data = world.make_corpus(8);
  NnHmmTrainConfig cfg;
  cfg.nn.hidden_sizes = {16};
  cfg.nn.max_epochs = 4;
  const auto model = train_nn_hmm(data, 5, cfg);
  EXPECT_EQ(model.num_states(), 15u);
  EXPECT_EQ(model.context(), cfg.context);
  util::Matrix scores;
  model.score(data[0].features, scores);
  ASSERT_EQ(scores.rows(), data[0].features.rows());
  ASSERT_EQ(scores.cols(), 15u);
  for (std::size_t t = 0; t < scores.rows(); ++t) {
    for (std::size_t s = 0; s < scores.cols(); ++s) {
      EXPECT_TRUE(std::isfinite(scores(t, s)));
    }
  }
}

TEST(TrainNnHmm, ScoreGainScalesOutput) {
  NnWorld world;
  const auto data = world.make_corpus(6);
  NnHmmTrainConfig cfg;
  cfg.nn.hidden_sizes = {12};
  cfg.nn.max_epochs = 2;
  cfg.score_gain = 1.0f;
  const auto base = train_nn_hmm(data, 5, cfg);
  cfg.score_gain = 3.0f;
  const auto gained = train_nn_hmm(data, 5, cfg);
  util::Matrix a, b;
  base.score(data[0].features, a);
  gained.score(data[0].features, b);
  for (std::size_t s = 0; s < a.cols(); ++s) {
    EXPECT_NEAR(b(0, s), 3.0f * a(0, s), 5e-2f * std::abs(a(0, s)) + 1e-3f);
  }
}

TEST(TrainNnHmm, BetterThanChanceOnTrainingFrames) {
  NnWorld world;
  const auto data = world.make_corpus(10);
  NnHmmTrainConfig cfg;
  cfg.nn.hidden_sizes = {24};
  cfg.nn.max_epochs = 12;
  const auto model = train_nn_hmm(data, 5, cfg);
  HmmTopology topo{5, 3};
  util::Matrix scores;
  std::size_t correct = 0, total = 0;
  for (const auto& utt : data) {
    const auto labels = uniform_state_labels(utt, topo);
    model.score(utt.features, scores);
    for (std::size_t t = 0; t < labels.state.size(); ++t) {
      std::size_t best = 0;
      for (std::size_t s = 1; s < scores.cols(); ++s) {
        if (scores(t, s) > scores(t, best)) best = s;
      }
      // Count phone-level (not state-level) accuracy.
      if (topo.phone_of(best) == topo.phone_of(labels.state[t])) ++correct;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.4);
}

TEST(TrainNnHmm, ThrowsOnEmptyData) {
  EXPECT_THROW(train_nn_hmm({}, 5, {}), std::invalid_argument);
}

TEST(NnHmmModel, ValidatesStateCounts) {
  util::Rng rng(1);
  FeedForwardNet net(10, {4}, 6, rng);  // 6 outputs
  HmmTopology topo{5, 3};               // 15 states
  std::vector<float> priors(15, -1.0f);
  EXPECT_THROW(NnHmmModel(topo, std::move(net), std::move(priors),
                          HmmTransitions::uniform(15, 3.0), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace phonolid::am
