#include "util/math_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace phonolid::util {
namespace {

TEST(MathUtil, SafeLogClampsZero) {
  EXPECT_TRUE(std::isfinite(safe_log(0.0)));
  EXPECT_NEAR(safe_log(std::exp(1.0)), 1.0, 1e-12);
}

TEST(MathUtil, LogAddMatchesDirect) {
  const double a = std::log(0.3), b = std::log(0.45);
  EXPECT_NEAR(log_add(a, b), std::log(0.75), 1e-12);
}

TEST(MathUtil, LogAddHandlesNegInfinity) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_NEAR(log_add(-inf, 1.5), 1.5, 1e-12);
  EXPECT_NEAR(log_add(1.5, -inf), 1.5, 1e-12);
}

TEST(MathUtil, LogAddExtremeMagnitudes) {
  // exp(1000) would overflow; log_add must not.
  EXPECT_NEAR(log_add(1000.0, 990.0), 1000.0 + std::log1p(std::exp(-10.0)),
              1e-9);
}

TEST(MathUtil, LogSumExpBasics) {
  std::vector<double> v = {std::log(1.0), std::log(2.0), std::log(3.0)};
  EXPECT_NEAR(log_sum_exp(std::span<const double>(v)), std::log(6.0), 1e-12);
}

TEST(MathUtil, LogSumExpEmptyIsNegInf) {
  std::vector<double> v;
  EXPECT_EQ(log_sum_exp(std::span<const double>(v)),
            -std::numeric_limits<double>::infinity());
}

TEST(MathUtil, LogSumExpFloatVariant) {
  std::vector<float> v = {0.0f, 0.0f, 0.0f, 0.0f};
  EXPECT_NEAR(log_sum_exp(std::span<const float>(v)), std::log(4.0f), 1e-5);
}

TEST(MathUtil, SigmoidSymmetry) {
  EXPECT_NEAR(sigmoid(0.0), 0.5, 1e-12);
  for (double x : {0.5, 1.0, 3.0, 10.0, 50.0}) {
    EXPECT_NEAR(sigmoid(x) + sigmoid(-x), 1.0, 1e-12) << x;
  }
}

TEST(MathUtil, SigmoidExtremesDontOverflow) {
  EXPECT_NEAR(sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(MathUtil, SoftmaxSumsToOne) {
  std::vector<float> v = {1.0f, 2.0f, 3.0f, -1.0f};
  softmax_inplace(std::span<float>(v));
  float sum = 0.0f;
  for (float x : v) {
    EXPECT_GT(x, 0.0f);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-6);
  EXPECT_GT(v[2], v[1]);
  EXPECT_GT(v[1], v[0]);
}

TEST(MathUtil, SoftmaxInvariantToShift) {
  std::vector<float> a = {1.0f, 2.0f, 3.0f};
  std::vector<float> b = {101.0f, 102.0f, 103.0f};
  softmax_inplace(std::span<float>(a));
  softmax_inplace(std::span<float>(b));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-6);
}

TEST(MathUtil, LogSoftmaxExpSumsToOne) {
  std::vector<float> v = {0.3f, -2.0f, 5.0f};
  log_softmax_inplace(std::span<float>(v));
  double sum = 0.0;
  for (float x : v) sum += std::exp(static_cast<double>(x));
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(MathUtil, ProbitInvertsNormalCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(probit(p)), p, 1e-8) << p;
  }
}

TEST(MathUtil, ProbitKnownValues) {
  EXPECT_NEAR(probit(0.5), 0.0, 1e-9);
  EXPECT_NEAR(probit(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(probit(0.025), -1.959964, 1e-4);
}

TEST(MathUtil, MeanAndVariance) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(mean(std::span<const double>(v)), 5.0, 1e-12);
  EXPECT_NEAR(variance(std::span<const double>(v)), 32.0 / 7.0, 1e-12);
}

TEST(MathUtil, VarianceDegenerate) {
  std::vector<double> one = {3.0};
  EXPECT_EQ(variance(std::span<const double>(one)), 0.0);
  std::vector<double> empty;
  EXPECT_EQ(mean(std::span<const double>(empty)), 0.0);
}

TEST(MathUtil, Argmax) {
  std::vector<float> v = {1.0f, 5.0f, 3.0f, 5.0f};
  EXPECT_EQ(argmax(std::span<const float>(v)), 1u);  // first max wins
  std::vector<double> d = {-3.0, -1.0, -2.0};
  EXPECT_EQ(argmax(std::span<const double>(d)), 1u);
}

}  // namespace
}  // namespace phonolid::util
