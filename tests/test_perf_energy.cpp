// Tests for the energy accounting and hardware-counter layer
// (src/obs/energy.h, src/obs/perf.h): software-model determinism across
// thread counts, span attribution, graceful perf fallback, and the
// report-diff energy gate.
#include <gtest/gtest.h>

#include <cerrno>
#include <cmath>
#include <map>
#include <string>

#include "la/kernels.h"
#include "obs/energy.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "obs/report.h"
#include "obs/report_diff.h"
#include "obs/trace.h"
#include "util/matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace phonolid {
namespace {

util::Matrix random_matrix(std::size_t rows, std::size_t cols,
                           std::uint64_t seed) {
  util::Matrix m(rows, cols);
  util::Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  return m;
}

/// Total software joules charged by a fixed gemm workload run on `threads`
/// pool workers.
double software_joules_for_workload(std::size_t threads) {
  obs::Energy::force_source_for_test(obs::EnergySource::kSoftware);
  util::ThreadPool pool(threads);
  const util::Matrix a = random_matrix(96, 64, 1);
  const util::Matrix b = random_matrix(64, 80, 2);
  util::Matrix c;
  for (int i = 0; i < 5; ++i) la::gemm(a, b, c, &pool);
  return obs::Energy::total_joules();
}

// --- Software cost model --------------------------------------------------

TEST(Energy, OffSourceChargesNothing) {
  obs::Energy::force_source_for_test(obs::EnergySource::kOff);
  obs::Energy::charge_flops(1e9);
  EXPECT_EQ(obs::Energy::total_joules(), 0.0);
  EXPECT_EQ(obs::Energy::total_gflops(), 0.0);
}

TEST(Energy, SoftwareChargesAtConfiguredRate) {
  obs::Energy::force_source_for_test(obs::EnergySource::kSoftware);
  obs::Energy::charge_flops(2e9);  // 2 GFLOP
  EXPECT_NEAR(obs::Energy::total_gflops(), 2.0, 1e-12);
  EXPECT_NEAR(obs::Energy::total_joules(),
              2.0 * obs::Energy::joules_per_gflop(), 1e-9);
}

TEST(Energy, SoftwareModelIsDeterministicAcrossThreadCounts) {
  // The charge depends only on problem sizes, never on how the kernel was
  // scheduled — the portability contract behind the CI energy gate.
  const double j1 = software_joules_for_workload(1);
  const double j4 = software_joules_for_workload(4);
  const double j8 = software_joules_for_workload(8);
  EXPECT_GT(j1, 0.0);
  EXPECT_DOUBLE_EQ(j1, j4);
  EXPECT_DOUBLE_EQ(j1, j8);
}

TEST(Energy, ChargesAttributeToCurrentSpanPath) {
  obs::Energy::force_source_for_test(obs::EnergySource::kSoftware);
  obs::Trace::reset();
  {
    PHONOLID_SPAN("outer");
    obs::Energy::charge_flops(1e9);
    {
      PHONOLID_SPAN("inner");
      obs::Energy::charge_flops(3e9);
    }
  }
  const std::map<std::string, double> by_span = obs::Energy::joules_by_span();
  const double rate = obs::Energy::joules_per_gflop();
  ASSERT_TRUE(by_span.count("outer"));
  ASSERT_TRUE(by_span.count("outer/inner"));
  EXPECT_NEAR(by_span.at("outer"), 1.0 * rate, 1e-9);
  EXPECT_NEAR(by_span.at("outer/inner"), 3.0 * rate, 1e-9);
}

TEST(Energy, ChargesOutsideAnySpanLandInUnattributedBucket) {
  obs::Energy::force_source_for_test(obs::EnergySource::kSoftware);
  obs::Energy::charge_flops(1e9);
  const auto by_span = obs::Energy::joules_by_span();
  ASSERT_TRUE(by_span.count("(unattributed)"));
  EXPECT_NEAR(by_span.at("(unattributed)"),
              obs::Energy::joules_per_gflop(), 1e-9);
}

TEST(Energy, ReportSpanJoulesSumToTotalWithinOnePercent) {
  obs::Energy::force_source_for_test(obs::EnergySource::kSoftware);
  obs::Trace::reset();
  util::ThreadPool pool(4);
  const util::Matrix a = random_matrix(128, 96, 3);
  const util::Matrix b = random_matrix(96, 64, 4);
  util::Matrix c;
  {
    PHONOLID_SPAN("stage_a");
    la::gemm(a, b, c, &pool);
  }
  {
    PHONOLID_SPAN("stage_b");
    la::gemm(a, b, c, &pool);
    obs::Energy::charge_flops(5e8);
  }
  obs::ReportMeta meta;
  meta.tool = "test";
  const obs::Json report = obs::build_report(meta);
  const obs::Json* energy = report.find("energy");
  ASSERT_NE(energy, nullptr);
  ASSERT_EQ(energy->find("source")->as_string(), "software");
  const double total = energy->find("total_joules")->as_double();
  ASSERT_GT(total, 0.0);
  double sum = 0.0;
  for (const obs::Json& s : report.find("spans")->as_array()) {
    if (const obs::Json* j = s.find("joules"); j != nullptr) {
      sum += j->as_double();
    }
  }
  EXPECT_NEAR(sum, total, 0.01 * total);
}

TEST(Energy, ResetDropsAccumulatedJoules) {
  obs::Energy::force_source_for_test(obs::EnergySource::kSoftware);
  obs::Energy::charge_flops(1e9);
  ASSERT_GT(obs::Energy::total_joules(), 0.0);
  obs::Energy::reset();
  EXPECT_EQ(obs::Energy::total_joules(), 0.0);
  EXPECT_EQ(obs::Energy::total_gflops(), 0.0);
}

TEST(Energy, EnergyJsonRoundsToMicrojoules) {
  obs::Energy::force_source_for_test(obs::EnergySource::kSoftware);
  obs::Energy::charge_flops(1.23456789e7);  // sub-µJ tail
  const obs::Json energy = obs::Energy::energy_json();
  const double joules = energy.find("total_joules")->as_double();
  EXPECT_DOUBLE_EQ(joules, std::round(joules * 1e6) / 1e6);
}

// --- Perf graceful degradation --------------------------------------------

TEST(Perf, ForcedOpenErrorDegradesGracefully) {
  for (const int err : {EACCES, ENOSYS}) {
    obs::Perf::force_open_error_for_test(err);
    obs::HwCounters counters;
    EXPECT_FALSE(obs::Perf::read_thread(counters));
    EXPECT_FALSE(obs::Perf::available());
    EXPECT_EQ(obs::Perf::unavailable_errno(), err);
    const obs::Json hw = obs::Perf::hw_json();
    EXPECT_FALSE(hw.find("available")->as_bool());
    EXPECT_EQ(hw.find("unavailable_errno")->as_int(), err);
    ASSERT_NE(hw.find("unavailable_reason"), nullptr);
  }
  obs::Perf::force_open_error_for_test(0);  // restore: re-probe next use
}

TEST(Perf, SpansRecordWithoutCountersWhenPerfUnavailable) {
  obs::Perf::force_open_error_for_test(EACCES);
  obs::Trace::reset();
  {
    PHONOLID_SPAN("no_perf_span");
  }
  bool found = false;
  for (const obs::SpanSnapshot& s : obs::Trace::snapshot()) {
    if (s.path == "no_perf_span") {
      found = true;
      EXPECT_FALSE(s.total.hw.any());
    }
  }
  EXPECT_TRUE(found);
  obs::Perf::force_open_error_for_test(0);
}

TEST(Perf, HwCountersDeltaSaturatesInsteadOfWrapping) {
  obs::HwCounters a;
  obs::HwCounters b;
  a.cycles = 100;
  b.cycles = 40;  // "later" read below "earlier" (e.g. after a reset)
  const obs::HwCounters d = b.delta(a);
  EXPECT_EQ(d.cycles, 0u);
}

// --- report-diff energy gate ----------------------------------------------

obs::Json energy_report(double joules, const std::string& source) {
  obs::Json energy = obs::Json::object();
  energy["source"] = obs::Json(source);
  energy["total_joules"] = obs::Json(joules);
  obs::Json doc = obs::Json::object();
  doc["schema_version"] = obs::Json(obs::kReportSchemaVersion);
  doc["energy"] = std::move(energy);
  return doc;
}

TEST(ReportDiffEnergy, WithinThresholdPasses) {
  obs::ReportDiffOptions options;
  options.max_energy_delta_pct = 1.0;
  const auto result = obs::diff_reports(energy_report(10.0, "software"),
                                        energy_report(10.05, "software"),
                                        options);
  EXPECT_FALSE(result.violated);
}

TEST(ReportDiffEnergy, RegressionBeyondThresholdFails) {
  obs::ReportDiffOptions options;
  options.max_energy_delta_pct = 1.0;
  const auto result = obs::diff_reports(energy_report(10.0, "software"),
                                        energy_report(10.5, "software"),
                                        options);
  EXPECT_TRUE(result.violated);
  bool found = false;
  for (const obs::ReportDiffRow& row : result.rows) {
    if (row.violation) {
      found = true;
      EXPECT_EQ(row.gate, "max-energy-delta-pct");
      EXPECT_EQ(row.key, "energy/total_joules");
      EXPECT_DOUBLE_EQ(row.threshold, 1.0);
    }
  }
  EXPECT_TRUE(found);
  // The formatted output carries the one-line violation summary.
  const std::string text = result.format();
  EXPECT_NE(text.find("violation: max-energy-delta-pct"), std::string::npos);
  EXPECT_NE(text.find("FAIL (1 violation)"), std::string::npos);
}

TEST(ReportDiffEnergy, ImprovementNeverViolates) {
  obs::ReportDiffOptions options;
  options.max_energy_delta_pct = 1.0;
  const auto result = obs::diff_reports(energy_report(10.0, "software"),
                                        energy_report(5.0, "software"),
                                        options);
  EXPECT_FALSE(result.violated);
}

TEST(ReportDiffEnergy, MissingSectionInBaselineIsNoteOnly) {
  // Pre-energy reports must stay diffable: the section appearing on one
  // side is a note, never a violation, even with the gate enabled.
  obs::Json old_report = obs::Json::object();
  old_report["schema_version"] = obs::Json(obs::kReportSchemaVersion);
  obs::ReportDiffOptions options;
  options.max_energy_delta_pct = 1.0;
  const auto result = obs::diff_reports(
      old_report, energy_report(10.0, "software"), options);
  EXPECT_FALSE(result.violated);
  bool noted = false;
  for (const std::string& note : result.notes) {
    if (note.find("energy/total_joules") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST(ReportDiffEnergy, SourceMismatchDisablesGateWithNote) {
  obs::ReportDiffOptions options;
  options.max_energy_delta_pct = 1.0;
  const auto result = obs::diff_reports(energy_report(10.0, "rapl"),
                                        energy_report(100.0, "software"),
                                        options);
  EXPECT_FALSE(result.violated);
  bool noted = false;
  for (const std::string& note : result.notes) {
    if (note.find("energy source differs") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
}

}  // namespace
}  // namespace phonolid
