// Serve daemon tests over an in-memory micro model: bundle round-trip,
// socket scoring bit-identity, micro-batching, warm swap, explicit
// load-shedding, and the malformed-frame robustness contract (protocol.h).
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "backend/fusion.h"
#include "core/frozen_model.h"
#include "core/subsystem.h"
#include "obs/json.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "svm/vsm.h"

namespace phonolid::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

corpus::CorpusConfig micro_corpus_config() {
  corpus::CorpusConfig cfg =
      corpus::CorpusConfig::preset(util::Scale::kQuick, 31);
  cfg.family.num_languages = 2;
  cfg.num_universal_phones = 14;
  cfg.train_utts_per_language = 4;
  cfg.dev_utts_per_language_per_tier = 1;
  cfg.test_utts_per_language_per_tier = 2;
  cfg.num_native_languages = 1;
  cfg.am_train_utts_per_native = 8;
  cfg.am_train_seconds = 1.5;
  return cfg;
}

core::FrontEndSpec micro_spec() {
  core::FrontEndSpec spec;
  spec.name = "micro";
  spec.family = core::ModelFamily::kGmmHmm;
  spec.num_phones = 6;
  spec.native_language = 0;
  spec.gmm_components = 2;
  spec.seed_salt = 0x99;
  return spec;
}

/// One shared micro corpus + frozen model for the whole suite: a single GMM
/// subsystem, its VSM head trained on the train supervectors, and fusion
/// fitted on the dev scores — the same chain `phonolid freeze` runs, minus
/// DBA (irrelevant to transport-level behaviour).
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new corpus::LreCorpus(
        corpus::LreCorpus::build(micro_corpus_config()));
    model_ = new std::shared_ptr<const core::FrozenModel>(build_model());
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
  }

  static std::shared_ptr<const core::FrozenModel> build_model() {
    auto sub = core::Subsystem::build(*corpus_, micro_spec(), 7);
    const std::size_t num_classes = corpus_->num_target_languages();
    std::vector<std::int32_t> train_labels;
    for (const auto& u : corpus_->vsm_train()) {
      train_labels.push_back(u.language);
    }
    std::vector<std::int32_t> dev_labels;
    for (const auto& u : corpus_->dev()) dev_labels.push_back(u.language);

    const auto train_svs = sub->take_train_supervectors();
    svm::VsmTrainConfig vsm_cfg;
    svm::VsmModel vsm = svm::VsmModel::train(
        train_svs, train_labels, num_classes, sub->supervector_dim(), vsm_cfg);

    const auto dev_svs = sub->process_all(corpus_->dev());
    const util::Matrix dev_scores = vsm.score_all(dev_svs);
    backend::ScoreFusion fusion;
    fusion.fit({dev_scores}, dev_labels, num_classes);

    std::vector<std::string> languages;
    for (const auto& spec : corpus_->target_languages()) {
      languages.push_back(spec.name());
    }
    std::vector<core::FrozenHead> heads;
    heads.push_back(core::FrozenHead{0, std::move(vsm)});
    std::vector<std::unique_ptr<core::Subsystem>> subs;
    subs.push_back(std::move(sub));
    return std::make_shared<core::FrozenModel>(
        "quick", corpus_->config().seed, corpus_->config().sample_rate,
        std::move(languages), std::move(subs), std::move(heads),
        std::move(fusion));
  }

  [[nodiscard]] static std::span<const float> test_utt(std::size_t i) {
    return corpus_->test().at(i).samples;
  }

  static corpus::LreCorpus* corpus_;
  static std::shared_ptr<const core::FrozenModel>* model_;
};

corpus::LreCorpus* ServeTest::corpus_ = nullptr;
std::shared_ptr<const core::FrozenModel>* ServeTest::model_ = nullptr;

/// RAII server on an ephemeral port; shutdown on scope exit.
struct TestServer {
  explicit TestServer(std::shared_ptr<const core::FrozenModel> model,
                      ServerConfig config = {})
      : server(std::move(model), config) {
    port = server.start();
  }
  ~TestServer() { server.shutdown(); }
  ScoreServer server;
  int port = 0;
};

Client connect_to(const TestServer& ts) {
  Client c;
  c.connect("127.0.0.1", ts.port);
  return c;
}

double stat_at(const obs::Json& stats,
               std::initializer_list<const char*> path) {
  const obs::Json* node = &stats;
  for (const char* key : path) {
    node = node->find(key);
    if (node == nullptr) ADD_FAILURE() << "missing stats key " << key;
    if (node == nullptr) return -1.0;
  }
  return node->as_double();
}

TEST_F(ServeTest, BundleRoundTripScoresBitIdentical) {
  const fs::path dir = fs::path(::testing::TempDir()) / "serve_bundle_rt";
  fs::remove_all(dir);
  (*model_)->save_bundle(dir.string());
  const core::FrozenModel loaded = core::FrozenModel::load_bundle(dir.string());
  EXPECT_EQ(loaded.num_subsystems(), (*model_)->num_subsystems());
  EXPECT_EQ(loaded.num_heads(), (*model_)->num_heads());
  EXPECT_EQ(loaded.languages(), (*model_)->languages());

  std::vector<std::span<const float>> utts;
  for (const auto& u : corpus_->test()) utts.emplace_back(u.samples);
  const core::BatchScore a = (*model_)->score_batch(utts);
  const core::BatchScore b = loaded.score_batch(utts);
  ASSERT_EQ(a.llr.rows(), b.llr.rows());
  ASSERT_EQ(a.llr.cols(), b.llr.cols());
  for (std::size_t i = 0; i < a.llr.rows(); ++i) {
    for (std::size_t k = 0; k < a.llr.cols(); ++k) {
      EXPECT_EQ(a.llr(i, k), b.llr(i, k)) << "utt " << i << " class " << k;
    }
  }
  EXPECT_EQ(a.best, b.best);
  fs::remove_all(dir);
}

TEST_F(ServeTest, SocketScoresMatchOfflineBitForBit) {
  std::vector<std::span<const float>> utts;
  for (const auto& u : corpus_->test()) utts.emplace_back(u.samples);
  const core::BatchScore offline = (*model_)->score_batch(utts);

  TestServer ts(*model_);
  Client c = connect_to(ts);
  for (std::size_t i = 0; i < utts.size(); ++i) {
    const Response r = c.score(utts[i]);
    ASSERT_EQ(r.status, Status::kOk);
    ASSERT_EQ(r.llr.size(), offline.llr.cols());
    for (std::size_t k = 0; k < r.llr.size(); ++k) {
      EXPECT_EQ(r.llr[k], offline.llr(i, k)) << "utt " << i << " class " << k;
    }
    EXPECT_EQ(r.best_language, offline.best[i]);
  }
}

TEST_F(ServeTest, PingEchoesAndStatsParse) {
  TestServer ts(*model_);
  Client c = connect_to(ts);
  const Response pong = c.ping();
  EXPECT_EQ(pong.status, Status::kOk);

  const Response st = c.stats();
  ASSERT_EQ(st.status, Status::kOk);
  const obs::Json stats = obs::Json::parse(st.text);
  EXPECT_EQ(stat_at(stats, {"protocol_version"}),
            static_cast<double>(kServeProtocolVersion));
  EXPECT_EQ(stat_at(stats, {"bundle_format"}),
            static_cast<double>(core::kBundleFormatVersion));
  EXPECT_EQ(stat_at(stats, {"model", "languages"}), 2.0);
  // The ping and this stats call are both counted.
  EXPECT_GE(stat_at(stats, {"requests"}), 2.0);
}

TEST_F(ServeTest, MicroBatchingCoalescesConcurrentRequests) {
  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.batch_window_ms = 250.0;
  TestServer ts(*model_, cfg);

  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      Client c = connect_to(ts);
      if (c.score(test_utt(0)).status == Status::kOk) ok.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);

  // All 8 scores went through fewer than 8 batches: the window coalesced
  // co-arrivals (the batcher waits batch_window_ms after the first pop, far
  // longer than the spread between 8 simultaneous sends).
  Client admin = connect_to(ts);
  const obs::Json stats = obs::Json::parse(admin.stats().text);
  EXPECT_EQ(stat_at(stats, {"batch", "sum"}), static_cast<double>(kClients));
  EXPECT_LT(stat_at(stats, {"batch", "count"}), static_cast<double>(kClients));
}

TEST_F(ServeTest, WarmSwapFailsZeroInFlightRequests) {
  const fs::path dir = fs::path(::testing::TempDir()) / "serve_swap_bundle";
  fs::remove_all(dir);
  (*model_)->save_bundle(dir.string());

  TestServer ts(*model_);
  Client ref_client = connect_to(ts);
  const Response ref = ref_client.score(test_utt(0));
  ASSERT_EQ(ref.status, Status::kOk);

  // Clients hammer the daemon while swaps flip the model underneath them.
  // The swapped-in bundle is a copy of the serving model, so every response
  // must stay kOk with byte-identical LLRs across every generation.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      Client c = connect_to(ts);
      while (!stop.load(std::memory_order_relaxed)) {
        const Response r = c.score(test_utt(0));
        sent.fetch_add(1);
        if (r.status != Status::kOk || r.llr != ref.llr) failed.fetch_add(1);
      }
    });
  }
  Client admin = connect_to(ts);
  constexpr int kSwaps = 3;
  for (int s = 0; s < kSwaps; ++s) {
    std::this_thread::sleep_for(25ms);
    ASSERT_EQ(admin.swap(dir.string()).status, Status::kOk);
  }
  std::this_thread::sleep_for(25ms);
  stop.store(true);
  for (auto& t : workers) t.join();

  EXPECT_GT(sent.load(), 0u);
  EXPECT_EQ(failed.load(), 0u);
  const obs::Json stats = obs::Json::parse(admin.stats().text);
  EXPECT_EQ(stat_at(stats, {"swaps"}), static_cast<double>(kSwaps));
  fs::remove_all(dir);
}

TEST_F(ServeTest, SwapDisabledIsRejectedAndKeepsServing) {
  ServerConfig cfg;
  cfg.allow_swap = false;
  TestServer ts(*model_, cfg);
  Client c = connect_to(ts);
  const Response r = c.swap("/any/path");
  EXPECT_EQ(r.status, Status::kBadRequest);
  EXPECT_FALSE(r.text.empty());
  EXPECT_EQ(c.score(test_utt(0)).status, Status::kOk);
  const obs::Json stats = obs::Json::parse(c.stats().text);
  EXPECT_EQ(stat_at(stats, {"swaps"}), 0.0);
}

TEST_F(ServeTest, SwapRootConfinesSwapTargets) {
  const fs::path root = fs::path(::testing::TempDir()) / "serve_swap_root";
  const fs::path inside = root / "bundle";
  const fs::path outside =
      fs::path(::testing::TempDir()) / "serve_swap_outside";
  fs::remove_all(root);
  fs::remove_all(outside);
  (*model_)->save_bundle(inside.string());
  (*model_)->save_bundle(outside.string());

  ServerConfig cfg;
  cfg.swap_root = root.string();
  TestServer ts(*model_, cfg);
  Client c = connect_to(ts);
  EXPECT_EQ(c.swap(outside.string()).status, Status::kBadRequest);
  // Traversal back out of the root is rejected too.
  EXPECT_EQ(c.swap((root / ".." / "serve_swap_outside").string()).status,
            Status::kBadRequest);
  EXPECT_EQ(c.swap(inside.string()).status, Status::kOk);
  const obs::Json stats = obs::Json::parse(c.stats().text);
  EXPECT_EQ(stat_at(stats, {"swaps"}), 1.0);
  fs::remove_all(root);
  fs::remove_all(outside);
}

TEST_F(ServeTest, SwapToMissingBundleIsErrorAndKeepsServing) {
  TestServer ts(*model_);
  Client c = connect_to(ts);
  const Response bad = c.swap("/nonexistent/bundle/dir");
  EXPECT_EQ(bad.status, Status::kError);
  EXPECT_FALSE(bad.text.empty());
  // The old model keeps serving.
  EXPECT_EQ(c.score(test_utt(0)).status, Status::kOk);
}

TEST_F(ServeTest, FullQueueShedsWithExplicitOverloaded) {
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_window_ms = 300.0;
  cfg.queue_depth = 1;
  TestServer ts(*model_, cfg);

  constexpr int kClients = 16;
  std::atomic<int> ok{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      Client c = connect_to(ts);
      const Response r = c.score(test_utt(0));
      if (r.status == Status::kOk) {
        ok.fetch_add(1);
      } else if (r.status == Status::kOverloaded) {
        overloaded.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every request got an explicit answer; overload shed at least one and
  // nothing was silently dropped or failed some other way.
  EXPECT_EQ(ok.load() + overloaded.load(), kClients);
  EXPECT_GE(overloaded.load(), 1);
  EXPECT_EQ(other.load(), 0);
  Client admin = connect_to(ts);
  const obs::Json stats = obs::Json::parse(admin.stats().text);
  EXPECT_EQ(stat_at(stats, {"sheds", "overloaded"}),
            static_cast<double>(overloaded.load()));
}

TEST_F(ServeTest, ByteBudgetShedsWithExplicitOverloaded) {
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_window_ms = 300.0;
  cfg.queue_depth = 256;  // count bound out of the way: bytes must shed
  cfg.queue_max_bytes = test_utt(0).size() * sizeof(float);  // one queued utt
  TestServer ts(*model_, cfg);

  constexpr int kClients = 16;
  std::atomic<int> ok{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      Client c = connect_to(ts);
      const Response r = c.score(test_utt(0));
      if (r.status == Status::kOk) {
        ok.fetch_add(1);
      } else if (r.status == Status::kOverloaded) {
        overloaded.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(ok.load() + overloaded.load(), kClients);
  EXPECT_GE(overloaded.load(), 1);
  EXPECT_EQ(other.load(), 0);
  Client admin = connect_to(ts);
  const obs::Json stats = obs::Json::parse(admin.stats().text);
  EXPECT_EQ(stat_at(stats, {"sheds", "overloaded"}),
            static_cast<double>(overloaded.load()));
  // Everything answered, so nothing may stay pinned in the byte ledger.
  EXPECT_EQ(stat_at(stats, {"queue", "bytes"}), 0.0);
}

#ifdef __linux__
std::size_t open_fd_count() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       fs::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;
}

TEST_F(ServeTest, DisconnectedClientsDoNotLeakFds) {
  TestServer ts(*model_);
  {
    Client warm = connect_to(ts);
    ASSERT_EQ(warm.score(test_utt(0)).status, Status::kOk);
  }
  const std::size_t before = open_fd_count();
  constexpr int kChurn = 40;
  for (int i = 0; i < kChurn; ++i) {
    Client c = connect_to(ts);
    ASSERT_EQ(c.ping().status, Status::kOk);
  }
  // The reader threads notice EOF asynchronously; poll until the churned
  // sockets are closed.  Without connection reaping the server keeps all
  // kChurn fds open and this never converges.
  std::size_t after = open_fd_count();
  for (int tries = 0; tries < 200 && after > before + 8; ++tries) {
    std::this_thread::sleep_for(10ms);
    after = open_fd_count();
  }
  EXPECT_LE(after, before + 8);
}
#endif  // __linux__

TEST_F(ServeTest, LapsedDeadlineShedsWithExplicitStatus) {
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_window_ms = 300.0;  // the lone request waits the full window
  TestServer ts(*model_, cfg);
  Client c = connect_to(ts);
  const Response r = c.score(test_utt(0), /*deadline_ms=*/1);
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  const obs::Json stats = obs::Json::parse(c.stats().text);
  EXPECT_EQ(stat_at(stats, {"sheds", "deadline"}), 1.0);
}

TEST_F(ServeTest, EmptyScorePayloadIsBadRequest) {
  TestServer ts(*model_);
  Client c = connect_to(ts);
  const Response r = c.score(std::span<const float>{});
  EXPECT_EQ(r.status, Status::kBadRequest);
  // The connection itself is fine — only the request was bad.
  EXPECT_EQ(c.ping().status, Status::kOk);
}

// --- malformed-frame robustness -------------------------------------------
//
// Contract (protocol.h): a malformed frame gets one clean kBadRequest
// response, then the server closes the poisoned connection; the daemon
// itself keeps serving fresh clients.

void expect_bad_request_then_close(int fd) {
  std::string body;
  ASSERT_TRUE(read_frame(fd, body)) << "expected an error response frame";
  const Response r = decode_response(body);
  EXPECT_EQ(r.status, Status::kBadRequest);
  EXPECT_FALSE(r.text.empty());
  EXPECT_FALSE(read_frame(fd, body)) << "poisoned connection must be closed";
}

void expect_server_alive(const TestServer& ts) {
  Client fresh = connect_to(ts);
  EXPECT_EQ(fresh.ping().status, Status::kOk);
}

TEST_F(ServeTest, BadMagicFrameGetsCleanErrorAndClose) {
  TestServer ts(*model_);
  Client probe = connect_to(ts);
  Request ping;
  ping.type = FrameType::kPing;
  ping.request_id = 7;
  std::string body = encode_request(ping);
  body[0] = 'X';  // corrupt the "PLSV" magic
  ASSERT_TRUE(write_frame(probe.fd(), body));
  expect_bad_request_then_close(probe.fd());
  expect_server_alive(ts);
}

TEST_F(ServeTest, WrongProtocolVersionGetsCleanErrorAndClose) {
  TestServer ts(*model_);
  Client probe = connect_to(ts);
  Request ping;
  ping.type = FrameType::kPing;
  ping.request_id = 8;
  std::string body = encode_request(ping);
  body[4] ^= 0x20;  // bytes 4..7 are the little-endian protocol version
  ASSERT_TRUE(write_frame(probe.fd(), body));
  expect_bad_request_then_close(probe.fd());
  expect_server_alive(ts);
}

TEST_F(ServeTest, OversizedLengthPrefixGetsCleanErrorAndClose) {
  TestServer ts(*model_);
  Client probe = connect_to(ts);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  ASSERT_TRUE(write_all(probe.fd(), &huge, sizeof huge));
  expect_bad_request_then_close(probe.fd());
  expect_server_alive(ts);
}

TEST_F(ServeTest, TruncatedFrameDoesNotWedgeTheServer) {
  TestServer ts(*model_);
  Client probe = connect_to(ts);
  // A length prefix promising 64 bytes, then only 8 and a hangup: the
  // server's reader hits EOF mid-frame and must drop the connection without
  // taking the daemon down.
  const std::uint32_t claimed = 64;
  ASSERT_TRUE(write_all(probe.fd(), &claimed, sizeof claimed));
  const std::uint64_t partial = 0xDEADBEEF;
  ASSERT_TRUE(write_all(probe.fd(), &partial, sizeof partial));
  probe.close();
  expect_server_alive(ts);
}

TEST_F(ServeTest, ShutdownIsIdempotentAndStopsAccepting) {
  TestServer ts(*model_);
  const int port = ts.port;
  EXPECT_EQ(connect_to(ts).ping().status, Status::kOk);
  ts.server.shutdown();
  ts.server.shutdown();  // second call is a no-op
  Client late;
  EXPECT_THROW(late.connect("127.0.0.1", port), std::runtime_error);
}

}  // namespace
}  // namespace phonolid::serve
