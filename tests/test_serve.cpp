// Serve daemon tests over an in-memory micro model: bundle round-trip,
// socket scoring bit-identity, micro-batching, warm swap, explicit
// load-shedding, and the malformed-frame robustness contract (protocol.h).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "backend/fusion.h"
#include "core/frozen_model.h"
#include "core/subsystem.h"
#include "obs/json.h"
#include "serve/admin_http.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "svm/vsm.h"

namespace phonolid::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

corpus::CorpusConfig micro_corpus_config() {
  corpus::CorpusConfig cfg =
      corpus::CorpusConfig::preset(util::Scale::kQuick, 31);
  cfg.family.num_languages = 2;
  cfg.num_universal_phones = 14;
  cfg.train_utts_per_language = 4;
  cfg.dev_utts_per_language_per_tier = 1;
  cfg.test_utts_per_language_per_tier = 2;
  cfg.num_native_languages = 1;
  cfg.am_train_utts_per_native = 8;
  cfg.am_train_seconds = 1.5;
  return cfg;
}

core::FrontEndSpec micro_spec() {
  core::FrontEndSpec spec;
  spec.name = "micro";
  spec.family = core::ModelFamily::kGmmHmm;
  spec.num_phones = 6;
  spec.native_language = 0;
  spec.gmm_components = 2;
  spec.seed_salt = 0x99;
  return spec;
}

/// One shared micro corpus + frozen model for the whole suite: a single GMM
/// subsystem, its VSM head trained on the train supervectors, and fusion
/// fitted on the dev scores — the same chain `phonolid freeze` runs, minus
/// DBA (irrelevant to transport-level behaviour).
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new corpus::LreCorpus(
        corpus::LreCorpus::build(micro_corpus_config()));
    model_ = new std::shared_ptr<const core::FrozenModel>(build_model());
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
  }

  static std::shared_ptr<const core::FrozenModel> build_model() {
    auto sub = core::Subsystem::build(*corpus_, micro_spec(), 7);
    const std::size_t num_classes = corpus_->num_target_languages();
    std::vector<std::int32_t> train_labels;
    for (const auto& u : corpus_->vsm_train()) {
      train_labels.push_back(u.language);
    }
    std::vector<std::int32_t> dev_labels;
    for (const auto& u : corpus_->dev()) dev_labels.push_back(u.language);

    const auto train_svs = sub->take_train_supervectors();
    svm::VsmTrainConfig vsm_cfg;
    svm::VsmModel vsm = svm::VsmModel::train(
        train_svs, train_labels, num_classes, sub->supervector_dim(), vsm_cfg);

    const auto dev_svs = sub->process_all(corpus_->dev());
    const util::Matrix dev_scores = vsm.score_all(dev_svs);
    backend::ScoreFusion fusion;
    fusion.fit({dev_scores}, dev_labels, num_classes);

    std::vector<std::string> languages;
    for (const auto& spec : corpus_->target_languages()) {
      languages.push_back(spec.name());
    }
    std::vector<core::FrozenHead> heads;
    heads.push_back(core::FrozenHead{0, std::move(vsm)});
    std::vector<std::unique_ptr<core::Subsystem>> subs;
    subs.push_back(std::move(sub));
    return std::make_shared<core::FrozenModel>(
        "quick", corpus_->config().seed, corpus_->config().sample_rate,
        std::move(languages), std::move(subs), std::move(heads),
        std::move(fusion));
  }

  [[nodiscard]] static std::span<const float> test_utt(std::size_t i) {
    return corpus_->test().at(i).samples;
  }

  static corpus::LreCorpus* corpus_;
  static std::shared_ptr<const core::FrozenModel>* model_;
};

corpus::LreCorpus* ServeTest::corpus_ = nullptr;
std::shared_ptr<const core::FrozenModel>* ServeTest::model_ = nullptr;

/// RAII server on an ephemeral port; shutdown on scope exit.
struct TestServer {
  explicit TestServer(std::shared_ptr<const core::FrozenModel> model,
                      ServerConfig config = {})
      : server(std::move(model), config) {
    port = server.start();
  }
  ~TestServer() { server.shutdown(); }
  ScoreServer server;
  int port = 0;
};

Client connect_to(const TestServer& ts) {
  Client c;
  c.connect("127.0.0.1", ts.port);
  return c;
}

double stat_at(const obs::Json& stats,
               std::initializer_list<const char*> path) {
  const obs::Json* node = &stats;
  for (const char* key : path) {
    node = node->find(key);
    if (node == nullptr) ADD_FAILURE() << "missing stats key " << key;
    if (node == nullptr) return -1.0;
  }
  return node->as_double();
}

TEST_F(ServeTest, BundleRoundTripScoresBitIdentical) {
  const fs::path dir = fs::path(::testing::TempDir()) / "serve_bundle_rt";
  fs::remove_all(dir);
  (*model_)->save_bundle(dir.string());
  const core::FrozenModel loaded = core::FrozenModel::load_bundle(dir.string());
  EXPECT_EQ(loaded.num_subsystems(), (*model_)->num_subsystems());
  EXPECT_EQ(loaded.num_heads(), (*model_)->num_heads());
  EXPECT_EQ(loaded.languages(), (*model_)->languages());

  std::vector<std::span<const float>> utts;
  for (const auto& u : corpus_->test()) utts.emplace_back(u.samples);
  const core::BatchScore a = (*model_)->score_batch(utts);
  const core::BatchScore b = loaded.score_batch(utts);
  ASSERT_EQ(a.llr.rows(), b.llr.rows());
  ASSERT_EQ(a.llr.cols(), b.llr.cols());
  for (std::size_t i = 0; i < a.llr.rows(); ++i) {
    for (std::size_t k = 0; k < a.llr.cols(); ++k) {
      EXPECT_EQ(a.llr(i, k), b.llr(i, k)) << "utt " << i << " class " << k;
    }
  }
  EXPECT_EQ(a.best, b.best);
  fs::remove_all(dir);
}

TEST_F(ServeTest, SocketScoresMatchOfflineBitForBit) {
  std::vector<std::span<const float>> utts;
  for (const auto& u : corpus_->test()) utts.emplace_back(u.samples);
  const core::BatchScore offline = (*model_)->score_batch(utts);

  TestServer ts(*model_);
  Client c = connect_to(ts);
  for (std::size_t i = 0; i < utts.size(); ++i) {
    const Response r = c.score(utts[i]);
    ASSERT_EQ(r.status, Status::kOk);
    ASSERT_EQ(r.llr.size(), offline.llr.cols());
    for (std::size_t k = 0; k < r.llr.size(); ++k) {
      EXPECT_EQ(r.llr[k], offline.llr(i, k)) << "utt " << i << " class " << k;
    }
    EXPECT_EQ(r.best_language, offline.best[i]);
  }
}

TEST_F(ServeTest, PingEchoesAndStatsParse) {
  TestServer ts(*model_);
  Client c = connect_to(ts);
  const Response pong = c.ping();
  EXPECT_EQ(pong.status, Status::kOk);

  const Response st = c.stats();
  ASSERT_EQ(st.status, Status::kOk);
  const obs::Json stats = obs::Json::parse(st.text);
  EXPECT_EQ(stat_at(stats, {"protocol_version"}),
            static_cast<double>(kServeProtocolVersion));
  EXPECT_EQ(stat_at(stats, {"bundle_format"}),
            static_cast<double>(core::kBundleFormatVersion));
  EXPECT_EQ(stat_at(stats, {"model", "languages"}), 2.0);
  // The ping and this stats call are both counted.
  EXPECT_GE(stat_at(stats, {"requests"}), 2.0);
}

TEST_F(ServeTest, MicroBatchingCoalescesConcurrentRequests) {
  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.batch_window_ms = 250.0;
  TestServer ts(*model_, cfg);

  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      Client c = connect_to(ts);
      if (c.score(test_utt(0)).status == Status::kOk) ok.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);

  // All 8 scores went through fewer than 8 batches: the window coalesced
  // co-arrivals (the batcher waits batch_window_ms after the first pop, far
  // longer than the spread between 8 simultaneous sends).
  Client admin = connect_to(ts);
  const obs::Json stats = obs::Json::parse(admin.stats().text);
  EXPECT_EQ(stat_at(stats, {"batch", "sum"}), static_cast<double>(kClients));
  EXPECT_LT(stat_at(stats, {"batch", "count"}), static_cast<double>(kClients));
}

TEST_F(ServeTest, WarmSwapFailsZeroInFlightRequests) {
  const fs::path dir = fs::path(::testing::TempDir()) / "serve_swap_bundle";
  fs::remove_all(dir);
  (*model_)->save_bundle(dir.string());

  TestServer ts(*model_);
  Client ref_client = connect_to(ts);
  const Response ref = ref_client.score(test_utt(0));
  ASSERT_EQ(ref.status, Status::kOk);

  // Clients hammer the daemon while swaps flip the model underneath them.
  // The swapped-in bundle is a copy of the serving model, so every response
  // must stay kOk with byte-identical LLRs across every generation.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      Client c = connect_to(ts);
      while (!stop.load(std::memory_order_relaxed)) {
        const Response r = c.score(test_utt(0));
        sent.fetch_add(1);
        if (r.status != Status::kOk || r.llr != ref.llr) failed.fetch_add(1);
      }
    });
  }
  Client admin = connect_to(ts);
  constexpr int kSwaps = 3;
  for (int s = 0; s < kSwaps; ++s) {
    std::this_thread::sleep_for(25ms);
    ASSERT_EQ(admin.swap(dir.string()).status, Status::kOk);
  }
  std::this_thread::sleep_for(25ms);
  stop.store(true);
  for (auto& t : workers) t.join();

  EXPECT_GT(sent.load(), 0u);
  EXPECT_EQ(failed.load(), 0u);
  const obs::Json stats = obs::Json::parse(admin.stats().text);
  EXPECT_EQ(stat_at(stats, {"swaps"}), static_cast<double>(kSwaps));
  fs::remove_all(dir);
}

TEST_F(ServeTest, SwapDisabledIsRejectedAndKeepsServing) {
  ServerConfig cfg;
  cfg.allow_swap = false;
  TestServer ts(*model_, cfg);
  Client c = connect_to(ts);
  const Response r = c.swap("/any/path");
  EXPECT_EQ(r.status, Status::kBadRequest);
  EXPECT_FALSE(r.text.empty());
  EXPECT_EQ(c.score(test_utt(0)).status, Status::kOk);
  const obs::Json stats = obs::Json::parse(c.stats().text);
  EXPECT_EQ(stat_at(stats, {"swaps"}), 0.0);
}

TEST_F(ServeTest, SwapRootConfinesSwapTargets) {
  const fs::path root = fs::path(::testing::TempDir()) / "serve_swap_root";
  const fs::path inside = root / "bundle";
  const fs::path outside =
      fs::path(::testing::TempDir()) / "serve_swap_outside";
  fs::remove_all(root);
  fs::remove_all(outside);
  (*model_)->save_bundle(inside.string());
  (*model_)->save_bundle(outside.string());

  ServerConfig cfg;
  cfg.swap_root = root.string();
  TestServer ts(*model_, cfg);
  Client c = connect_to(ts);
  EXPECT_EQ(c.swap(outside.string()).status, Status::kBadRequest);
  // Traversal back out of the root is rejected too.
  EXPECT_EQ(c.swap((root / ".." / "serve_swap_outside").string()).status,
            Status::kBadRequest);
  EXPECT_EQ(c.swap(inside.string()).status, Status::kOk);
  const obs::Json stats = obs::Json::parse(c.stats().text);
  EXPECT_EQ(stat_at(stats, {"swaps"}), 1.0);
  fs::remove_all(root);
  fs::remove_all(outside);
}

TEST_F(ServeTest, SwapToMissingBundleIsErrorAndKeepsServing) {
  TestServer ts(*model_);
  Client c = connect_to(ts);
  const Response bad = c.swap("/nonexistent/bundle/dir");
  EXPECT_EQ(bad.status, Status::kError);
  EXPECT_FALSE(bad.text.empty());
  // The old model keeps serving.
  EXPECT_EQ(c.score(test_utt(0)).status, Status::kOk);
}

TEST_F(ServeTest, FullQueueShedsWithExplicitOverloaded) {
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_window_ms = 300.0;
  cfg.queue_depth = 1;
  TestServer ts(*model_, cfg);

  constexpr int kClients = 16;
  std::atomic<int> ok{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      Client c = connect_to(ts);
      const Response r = c.score(test_utt(0));
      if (r.status == Status::kOk) {
        ok.fetch_add(1);
      } else if (r.status == Status::kOverloaded) {
        overloaded.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every request got an explicit answer; overload shed at least one and
  // nothing was silently dropped or failed some other way.
  EXPECT_EQ(ok.load() + overloaded.load(), kClients);
  EXPECT_GE(overloaded.load(), 1);
  EXPECT_EQ(other.load(), 0);
  Client admin = connect_to(ts);
  const obs::Json stats = obs::Json::parse(admin.stats().text);
  EXPECT_EQ(stat_at(stats, {"sheds", "overloaded"}),
            static_cast<double>(overloaded.load()));
}

TEST_F(ServeTest, ByteBudgetShedsWithExplicitOverloaded) {
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_window_ms = 300.0;
  cfg.queue_depth = 256;  // count bound out of the way: bytes must shed
  cfg.queue_max_bytes = test_utt(0).size() * sizeof(float);  // one queued utt
  TestServer ts(*model_, cfg);

  constexpr int kClients = 16;
  std::atomic<int> ok{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      Client c = connect_to(ts);
      const Response r = c.score(test_utt(0));
      if (r.status == Status::kOk) {
        ok.fetch_add(1);
      } else if (r.status == Status::kOverloaded) {
        overloaded.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(ok.load() + overloaded.load(), kClients);
  EXPECT_GE(overloaded.load(), 1);
  EXPECT_EQ(other.load(), 0);
  Client admin = connect_to(ts);
  const obs::Json stats = obs::Json::parse(admin.stats().text);
  EXPECT_EQ(stat_at(stats, {"sheds", "overloaded"}),
            static_cast<double>(overloaded.load()));
  // Everything answered, so nothing may stay pinned in the byte ledger.
  EXPECT_EQ(stat_at(stats, {"queue", "bytes"}), 0.0);
}

#ifdef __linux__
std::size_t open_fd_count() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       fs::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;
}

TEST_F(ServeTest, DisconnectedClientsDoNotLeakFds) {
  TestServer ts(*model_);
  {
    Client warm = connect_to(ts);
    ASSERT_EQ(warm.score(test_utt(0)).status, Status::kOk);
  }
  const std::size_t before = open_fd_count();
  constexpr int kChurn = 40;
  for (int i = 0; i < kChurn; ++i) {
    Client c = connect_to(ts);
    ASSERT_EQ(c.ping().status, Status::kOk);
  }
  // The reader threads notice EOF asynchronously; poll until the churned
  // sockets are closed.  Without connection reaping the server keeps all
  // kChurn fds open and this never converges.
  std::size_t after = open_fd_count();
  for (int tries = 0; tries < 200 && after > before + 8; ++tries) {
    std::this_thread::sleep_for(10ms);
    after = open_fd_count();
  }
  EXPECT_LE(after, before + 8);
}
#endif  // __linux__

TEST_F(ServeTest, LapsedDeadlineShedsWithExplicitStatus) {
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_window_ms = 300.0;  // the lone request waits the full window
  TestServer ts(*model_, cfg);
  Client c = connect_to(ts);
  const Response r = c.score(test_utt(0), /*deadline_ms=*/1);
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  const obs::Json stats = obs::Json::parse(c.stats().text);
  EXPECT_EQ(stat_at(stats, {"sheds", "deadline"}), 1.0);
}

TEST_F(ServeTest, EmptyScorePayloadIsBadRequest) {
  TestServer ts(*model_);
  Client c = connect_to(ts);
  const Response r = c.score(std::span<const float>{});
  EXPECT_EQ(r.status, Status::kBadRequest);
  // The connection itself is fine — only the request was bad.
  EXPECT_EQ(c.ping().status, Status::kOk);
}

// --- malformed-frame robustness -------------------------------------------
//
// Contract (protocol.h): a malformed frame gets one clean kBadRequest
// response, then the server closes the poisoned connection; the daemon
// itself keeps serving fresh clients.

void expect_bad_request_then_close(int fd) {
  std::string body;
  ASSERT_TRUE(read_frame(fd, body)) << "expected an error response frame";
  const Response r = decode_response(body);
  EXPECT_EQ(r.status, Status::kBadRequest);
  EXPECT_FALSE(r.text.empty());
  EXPECT_FALSE(read_frame(fd, body)) << "poisoned connection must be closed";
}

void expect_server_alive(const TestServer& ts) {
  Client fresh = connect_to(ts);
  EXPECT_EQ(fresh.ping().status, Status::kOk);
}

TEST_F(ServeTest, BadMagicFrameGetsCleanErrorAndClose) {
  TestServer ts(*model_);
  Client probe = connect_to(ts);
  Request ping;
  ping.type = FrameType::kPing;
  ping.request_id = 7;
  std::string body = encode_request(ping);
  body[0] = 'X';  // corrupt the "PLSV" magic
  ASSERT_TRUE(write_frame(probe.fd(), body));
  expect_bad_request_then_close(probe.fd());
  expect_server_alive(ts);
}

TEST_F(ServeTest, WrongProtocolVersionGetsCleanErrorAndClose) {
  TestServer ts(*model_);
  Client probe = connect_to(ts);
  Request ping;
  ping.type = FrameType::kPing;
  ping.request_id = 8;
  std::string body = encode_request(ping);
  body[4] ^= 0x20;  // bytes 4..7 are the little-endian protocol version
  ASSERT_TRUE(write_frame(probe.fd(), body));
  expect_bad_request_then_close(probe.fd());
  expect_server_alive(ts);
}

TEST_F(ServeTest, OversizedLengthPrefixGetsCleanErrorAndClose) {
  TestServer ts(*model_);
  Client probe = connect_to(ts);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  ASSERT_TRUE(write_all(probe.fd(), &huge, sizeof huge));
  expect_bad_request_then_close(probe.fd());
  expect_server_alive(ts);
}

TEST_F(ServeTest, TruncatedFrameDoesNotWedgeTheServer) {
  TestServer ts(*model_);
  Client probe = connect_to(ts);
  // A length prefix promising 64 bytes, then only 8 and a hangup: the
  // server's reader hits EOF mid-frame and must drop the connection without
  // taking the daemon down.
  const std::uint32_t claimed = 64;
  ASSERT_TRUE(write_all(probe.fd(), &claimed, sizeof claimed));
  const std::uint64_t partial = 0xDEADBEEF;
  ASSERT_TRUE(write_all(probe.fd(), &partial, sizeof partial));
  probe.close();
  expect_server_alive(ts);
}

// --- request-scoped tracing (PLSV v2) -------------------------------------

TEST_F(ServeTest, TraceIdsAreMintedAndClientIdsAreEchoed) {
  TestServer ts(*model_);
  Client c = connect_to(ts);

  // trace_id 0 asks the daemon to mint: two requests get distinct nonzero
  // ids assigned at admission.
  const Response a = c.score(test_utt(0));
  const Response b = c.score(test_utt(0));
  ASSERT_EQ(a.status, Status::kOk);
  ASSERT_EQ(b.status, Status::kOk);
  EXPECT_NE(a.trace_id, 0u);
  EXPECT_NE(b.trace_id, 0u);
  EXPECT_NE(a.trace_id, b.trace_id);

  // A client-supplied id is propagated, not replaced.
  const Response tagged = c.score(test_utt(0), /*deadline_ms=*/0,
                                  /*trace_id=*/0x5EED5EED5EEDull);
  ASSERT_EQ(tagged.status, Status::kOk);
  EXPECT_EQ(tagged.trace_id, 0x5EED5EED5EEDull);
}

TEST_F(ServeTest, StatsCarryPhasesUptimeAndSlowLog) {
  ServerConfig cfg;
  cfg.slow_log = 4;
  TestServer ts(*model_, cfg);
  Client c = connect_to(ts);
  constexpr int kScores = 3;
  for (int i = 0; i < kScores; ++i) {
    ASSERT_EQ(c.score(test_utt(0)).status, Status::kOk);
  }

  const obs::Json stats = obs::Json::parse(c.stats().text);
  EXPECT_GE(stat_at(stats, {"uptime_s"}), 0.0);
  EXPECT_EQ(stat_at(stats, {"requests_total"}), stat_at(stats, {"requests"}));
  // Every scored request passed through all four phases exactly once.
  for (const char* phase :
       {"queue_wait_ms", "batch_wait_ms", "compute_ms", "write_ms"}) {
    EXPECT_EQ(stat_at(stats, {"phases", phase, "count"}),
              static_cast<double>(kScores))
        << phase;
    EXPECT_GE(stat_at(stats, {"phases", phase, "p99"}), 0.0) << phase;
  }
  // The slow-request ring holds the worst completed requests, each with a
  // full phase breakdown that sums to its total.
  const obs::Json* slow = stats.find("slow_requests");
  ASSERT_NE(slow, nullptr);
  ASSERT_TRUE(slow->is_array());
  ASSERT_GE(slow->as_array().size(), 1u);
  const obs::Json& worst = slow->as_array().front();
  EXPECT_NE(stat_at(worst, {"trace_id"}), 0.0);
  EXPECT_STREQ(worst.find("outcome")->as_string().c_str(), "ok");
  const double parts =
      stat_at(worst, {"queue_wait_ms"}) + stat_at(worst, {"batch_wait_ms"}) +
      stat_at(worst, {"compute_ms"}) + stat_at(worst, {"write_ms"});
  EXPECT_NEAR(stat_at(worst, {"total_ms"}), parts, 1e-6);
}

// --- PLSV v1 backward compatibility ---------------------------------------

std::uint32_t frame_wire_version(const std::string& body) {
  std::uint32_t version = 0;
  EXPECT_GE(body.size(), 8u);
  std::memcpy(&version, body.data() + 4, sizeof version);
  return version;
}

TEST_F(ServeTest, V1ClientsKeepWorkingByteIdentically) {
  TestServer ts(*model_);
  Client probe = connect_to(ts);

  // A pre-tracing client encodes wire_version 1: no trace-id field in
  // either direction, and the daemon answers with a v1 frame.
  Request score;
  score.type = FrameType::kScore;
  score.request_id = 41;
  score.wire_version = 1;
  const auto utt = test_utt(0);
  score.samples.assign(utt.begin(), utt.end());
  const std::string v1_body = encode_request(score);
  ASSERT_TRUE(write_frame(probe.fd(), v1_body));

  std::string reply;
  ASSERT_TRUE(read_frame(probe.fd(), reply));
  EXPECT_EQ(frame_wire_version(reply), 1u);
  const Response r = decode_response(reply);
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.wire_version, 1u);
  EXPECT_EQ(r.trace_id, 0u);
  EXPECT_FALSE(r.llr.empty());

  // Byte identity: re-encoding the decoded response as v1 reproduces the
  // wire bytes exactly — the v2 daemon added nothing to the v1 layout.
  Response reencoded = r;
  reencoded.wire_version = 1;
  EXPECT_EQ(encode_response(reencoded), reply);

  // v2 on the same daemon does carry the trace id, proving the per-frame
  // version echo rather than a daemon-wide downgrade.
  Client v2 = connect_to(ts);
  EXPECT_NE(v2.score(test_utt(0)).trace_id, 0u);
}

// --- admin HTTP endpoint --------------------------------------------------

struct HttpReply {
  int status = 0;
  std::string body;
  std::string raw;  // full response, headers included
};

/// Connect to the admin port, send `request` verbatim, read to EOF.  When
/// `half_close` is set the write side shuts down after the send, modelling
/// a client that hangs up mid-request.
HttpReply http_raw(int port, const std::string& request,
                   bool half_close = false) {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ADD_FAILURE() << "admin connect failed";
    ::close(fd);
    return reply;
  }
  if (!request.empty()) {
    // A server rejecting early (oversized head) may close before the whole
    // request lands; the status we read back is the assertion, not the send.
    (void)write_all(fd, request.data(), request.size());
  }
  if (half_close) ::shutdown(fd, SHUT_WR);
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) {
    reply.raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (reply.raw.rfind("HTTP/1.1 ", 0) == 0 && reply.raw.size() >= 12) {
    reply.status = std::atoi(reply.raw.c_str() + 9);
  }
  const std::size_t header_end = reply.raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    reply.body = reply.raw.substr(header_end + 4);
  }
  return reply;
}

HttpReply http_get(int port, const std::string& target) {
  return http_raw(port, "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

/// Value of a sample line "name value" in Prometheus text, or -1.0.
double prom_value(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = text.find(name + " ", pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::atof(text.c_str() + pos + name.size() + 1);
    }
    pos += name.size();
  }
  return -1.0;
}

TEST_F(ServeTest, AdminMetricsServeLivePrometheusText) {
  ServerConfig cfg;
  cfg.admin_port = 0;  // ephemeral
  TestServer ts(*model_, cfg);
  ASSERT_GT(ts.server.admin_port(), 0);

  // Registry counters appear in the exposition once first touched; a ping
  // seeds serve_requests_total so the baseline scrape can read it.
  Client c = connect_to(ts);
  ASSERT_EQ(c.ping().status, Status::kOk);

  const HttpReply first = http_get(ts.server.admin_port(), "/metrics");
  ASSERT_EQ(first.status, 200);
  const double before = prom_value(first.body, "phonolid_serve_requests_total");
  ASSERT_GE(before, 1.0) << first.body.substr(0, 400);

  constexpr int kScores = 3;
  for (int i = 0; i < kScores; ++i) {
    ASSERT_EQ(c.score(test_utt(0)).status, Status::kOk);
  }

  // The scrape is live registry state, not an at-exit snapshot: the counter
  // must have grown by the requests just served (the registry is process-
  // global, so compare deltas, not absolutes).
  const HttpReply second = http_get(ts.server.admin_port(), "/metrics");
  ASSERT_EQ(second.status, 200);
  const double after = prom_value(second.body, "phonolid_serve_requests_total");
  EXPECT_GE(after, before + kScores);
  // Scrapes are counted on their own meter, never as PLSV requests.
  EXPECT_GE(prom_value(second.body, "phonolid_serve_admin_http_requests_total"),
            2.0);
}

TEST_F(ServeTest, AdminStatuszAgreesWithStatsFrame) {
  ServerConfig cfg;
  cfg.admin_port = 0;
  TestServer ts(*model_, cfg);
  Client c = connect_to(ts);
  ASSERT_EQ(c.score(test_utt(0)).status, Status::kOk);
  const obs::Json frame_stats = obs::Json::parse(c.stats().text);

  // No PLSV traffic between the kStats frame and the scrape, so the two
  // views of requests_total must agree exactly.
  const HttpReply reply = http_get(ts.server.admin_port(), "/statusz");
  ASSERT_EQ(reply.status, 200);
  const obs::Json statusz = obs::Json::parse(reply.body);
  EXPECT_EQ(stat_at(statusz, {"requests_total"}),
            stat_at(frame_stats, {"requests_total"}));
  EXPECT_EQ(stat_at(statusz, {"protocol_version"}),
            static_cast<double>(kServeProtocolVersion));
  EXPECT_EQ(stat_at(statusz, {"admin", "http_version"}),
            static_cast<double>(kAdminHttpVersion));
  EXPECT_GE(stat_at(statusz, {"phases", "compute_ms", "count"}), 1.0);
}

TEST_F(ServeTest, AdminHealthzFlipsTo503DuringDrain) {
  ServerConfig cfg;
  cfg.admin_port = 0;
  TestServer ts(*model_, cfg);
  const int admin_port = ts.server.admin_port();

  const HttpReply ready = http_get(admin_port, "/healthz");
  EXPECT_EQ(ready.status, 200);
  EXPECT_EQ(ready.body, "ok\n");

  // A drain keeps the admin plane up but flips readiness: an LB probing
  // /healthz stops routing to this instance before the listener dies.
  ts.server.request_shutdown();
  const HttpReply draining = http_get(admin_port, "/healthz");
  EXPECT_EQ(draining.status, 503);
  EXPECT_NE(draining.body.find("drain"), std::string::npos) << draining.body;
}

TEST_F(ServeTest, AdminMalformedRequestsGetOneClean400) {
  ServerConfig cfg;
  cfg.admin_port = 0;
  TestServer ts(*model_, cfg);
  const int port = ts.server.admin_port();

  // Garbage that is not HTTP at all.
  EXPECT_EQ(http_raw(port, "BLARG\r\n\r\n").status, 400);
  // A head that never terminates and exceeds the request-size bound.
  EXPECT_EQ(http_raw(port, std::string(kMaxAdminRequestBytes + 512, 'A'))
                .status,
            400);
  // A partial request followed by a hangup.
  EXPECT_EQ(http_raw(port, "GET /hea", /*half_close=*/true).status, 400);
  // Wrong method and unknown path are explicit, not connection drops.
  EXPECT_EQ(http_raw(port, "POST /metrics HTTP/1.1\r\n\r\n").status, 405);
  EXPECT_EQ(http_get(port, "/nope").status, 404);

  // None of it perturbed the serving plane or the admin plane.
  EXPECT_EQ(http_get(port, "/healthz").status, 200);
  expect_server_alive(ts);
  const HttpReply scrape = http_get(port, "/metrics");
  EXPECT_GE(prom_value(scrape.body, "phonolid_serve_admin_http_bad_total"),
            3.0);
}

TEST_F(ServeTest, AdminConcurrentScrapesDuringScoringAreClean) {
  ServerConfig cfg;
  cfg.admin_port = 0;
  TestServer ts(*model_, cfg);
  const int port = ts.server.admin_port();

  // Scorers and scrapers race; under TSan this is the data-race check for
  // the registry snapshot, stats document, and slow-request ring.
  std::atomic<int> score_ok{0};
  std::atomic<int> scrape_ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      Client c = connect_to(ts);
      for (int i = 0; i < 8; ++i) {
        if (c.score(test_utt(0)).status == Status::kOk) score_ok.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        const char* target = (i + t) % 2 == 0 ? "/metrics" : "/statusz";
        if (http_get(port, target).status == 200) scrape_ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(score_ok.load(), 3 * 8);
  EXPECT_EQ(scrape_ok.load(), 2 * 8);
}

TEST_F(ServeTest, ShutdownIsIdempotentAndStopsAccepting) {
  TestServer ts(*model_);
  const int port = ts.port;
  EXPECT_EQ(connect_to(ts).ping().status, Status::kOk);
  ts.server.shutdown();
  ts.server.shutdown();  // second call is a no-op
  Client late;
  EXPECT_THROW(late.connect("127.0.0.1", port), std::runtime_error);
}

}  // namespace
}  // namespace phonolid::serve
