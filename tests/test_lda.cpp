#include "backend/lda.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace phonolid::backend {
namespace {

TEST(SymmetricEigen, DiagonalMatrix) {
  util::Matrix m(3, 3, 0.0f);
  m(0, 0) = 3.0f;
  m(1, 1) = 1.0f;
  m(2, 2) = 2.0f;
  std::vector<double> evals;
  util::Matrix evecs;
  symmetric_eigen(m, evals, evecs);
  ASSERT_EQ(evals.size(), 3u);
  EXPECT_NEAR(evals[0], 3.0, 1e-9);
  EXPECT_NEAR(evals[1], 2.0, 1e-9);
  EXPECT_NEAR(evals[2], 1.0, 1e-9);
  // Leading eigenvector = e0 (up to sign).
  EXPECT_NEAR(std::abs(evecs(0, 0)), 1.0, 1e-9);
}

TEST(SymmetricEigen, Known2x2) {
  util::Matrix m(2, 2);
  m(0, 0) = 2.0f;
  m(0, 1) = m(1, 0) = 1.0f;
  m(1, 1) = 2.0f;
  std::vector<double> evals;
  util::Matrix evecs;
  symmetric_eigen(m, evals, evecs);
  EXPECT_NEAR(evals[0], 3.0, 1e-8);
  EXPECT_NEAR(evals[1], 1.0, 1e-8);
  // Eigenvector for 3 is (1,1)/sqrt(2).
  EXPECT_NEAR(std::abs(evecs(0, 0)), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(std::abs(evecs(0, 1)), 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(SymmetricEigen, ReconstructsMatrix) {
  // A = V^T diag(e) V with our row-convention eigenvectors.
  util::Rng rng(3);
  const std::size_t n = 6;
  util::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = a(j, i) = static_cast<float>(rng.gaussian());
    }
  }
  std::vector<double> evals;
  util::Matrix v;
  symmetric_eigen(a, evals, v);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += evals[k] * v(k, i) * v(k, j);
      }
      EXPECT_NEAR(sum, a(i, j), 1e-4) << i << "," << j;
    }
  }
}

TEST(SymmetricEigen, EigenvectorsOrthonormal) {
  util::Rng rng(5);
  const std::size_t n = 5;
  util::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = a(j, i) = static_cast<float>(rng.uniform(-1, 1));
    }
  }
  std::vector<double> evals;
  util::Matrix v;
  symmetric_eigen(a, evals, v);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double d = util::dot(v.row(i), v.row(j));
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-5);
    }
  }
}

TEST(SymmetricEigen, RejectsNonSquare) {
  util::Matrix m(2, 3);
  std::vector<double> evals;
  util::Matrix v;
  EXPECT_THROW(symmetric_eigen(m, evals, v), std::invalid_argument);
}

/// Two classes separated along (1,1,0) with strong noise along (1,-1,0).
void make_lda_data(util::Matrix& x, std::vector<std::int32_t>& y,
                   std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  x.resize(n, 3);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int c = static_cast<int>(i % 2);
    const double offset = c == 0 ? -1.0 : 1.0;
    const double noise = rng.gaussian(0.0, 3.0);
    x(i, 0) = static_cast<float>(offset + noise + rng.gaussian(0.0, 0.2));
    x(i, 1) = static_cast<float>(offset - noise + rng.gaussian(0.0, 0.2));
    x(i, 2) = static_cast<float>(rng.gaussian(0.0, 1.0));
    y[i] = c;
  }
}

TEST(Lda, FindsDiscriminativeDirection) {
  util::Matrix x;
  std::vector<std::int32_t> y;
  make_lda_data(x, y, 600, 7);
  Lda lda;
  lda.fit(x, y, 2);
  EXPECT_EQ(lda.output_dim(), 1u);

  const util::Matrix projected = lda.transform(x);
  // Class means in the projected space must be well separated relative to
  // the within-class spread.
  double m0 = 0.0, m1 = 0.0;
  std::size_t n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < projected.rows(); ++i) {
    if (y[i] == 0) {
      m0 += projected(i, 0);
      ++n0;
    } else {
      m1 += projected(i, 0);
      ++n1;
    }
  }
  m0 /= static_cast<double>(n0);
  m1 /= static_cast<double>(n1);
  double var = 0.0;
  for (std::size_t i = 0; i < projected.rows(); ++i) {
    const double m = y[i] == 0 ? m0 : m1;
    var += (projected(i, 0) - m) * (projected(i, 0) - m);
  }
  var /= static_cast<double>(projected.rows());
  const double separation = std::abs(m1 - m0) / std::sqrt(var + 1e-12);
  EXPECT_GT(separation, 3.0);
}

TEST(Lda, OutputDimCappedByClassesAndRequest) {
  util::Rng rng(11);
  util::Matrix x(90, 5);
  std::vector<std::int32_t> y(90);
  for (std::size_t i = 0; i < 90; ++i) {
    y[i] = static_cast<std::int32_t>(i % 3);
    for (std::size_t d = 0; d < 5; ++d) {
      x(i, d) = static_cast<float>(rng.gaussian(y[i], 1.0));
    }
  }
  Lda lda;
  lda.fit(x, y, 3);
  EXPECT_EQ(lda.output_dim(), 2u);
  Lda capped;
  capped.fit(x, y, 3, 1);
  EXPECT_EQ(capped.output_dim(), 1u);
}

TEST(Lda, InputValidation) {
  Lda lda;
  util::Matrix x(4, 2, 0.0f);
  std::vector<std::int32_t> y = {0, 1, 0, 1};
  EXPECT_THROW(lda.fit(x, y, 1), std::invalid_argument);
  std::vector<std::int32_t> bad = {0, 5, 0, 1};
  EXPECT_THROW(lda.fit(x, bad, 2), std::invalid_argument);
}

}  // namespace
}  // namespace phonolid::backend
