#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/mfcc.h"
#include "dsp/plp.h"
#include "util/rng.h"

namespace phonolid::dsp {
namespace {

std::vector<float> make_tone(double freq, double seconds, double sr,
                             double noise = 0.0, std::uint64_t seed = 1) {
  util::Rng rng(seed);
  std::vector<float> x(static_cast<std::size_t>(seconds * sr));
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = static_cast<float>(
        std::sin(2.0 * std::numbers::pi * freq * static_cast<double>(t) / sr) +
        noise * rng.gaussian());
  }
  return x;
}

TEST(Mfcc, OutputShape) {
  MfccConfig cfg;
  MfccExtractor mfcc(cfg);
  const auto x = make_tone(440.0, 0.5, cfg.sample_rate);
  const auto feats = mfcc.extract(x);
  EXPECT_EQ(feats.cols(), cfg.num_ceps);
  EXPECT_EQ(feats.rows(), (x.size() - cfg.frame_length) / cfg.frame_shift + 1);
}

TEST(Mfcc, EmptySignalGivesNoFrames) {
  MfccExtractor mfcc;
  std::vector<float> x(10, 0.0f);  // shorter than one frame
  EXPECT_EQ(mfcc.extract(x).rows(), 0u);
}

TEST(Mfcc, FiniteOnSilence) {
  MfccExtractor mfcc;
  std::vector<float> x(4000, 0.0f);
  const auto feats = mfcc.extract(x);
  for (std::size_t t = 0; t < feats.rows(); ++t) {
    for (std::size_t d = 0; d < feats.cols(); ++d) {
      EXPECT_TRUE(std::isfinite(feats(t, d)));
    }
  }
}

TEST(Mfcc, DistinguishesTones) {
  MfccExtractor mfcc;
  const auto lo = mfcc.extract(make_tone(300.0, 0.3, 8000.0));
  const auto hi = mfcc.extract(make_tone(2000.0, 0.3, 8000.0));
  ASSERT_GT(lo.rows(), 0u);
  // Compare mean cepstra: different spectral envelopes must differ clearly.
  double dist = 0.0;
  for (std::size_t d = 1; d < lo.cols(); ++d) {
    double m_lo = 0.0, m_hi = 0.0;
    for (std::size_t t = 0; t < lo.rows(); ++t) m_lo += lo(t, d);
    for (std::size_t t = 0; t < hi.rows(); ++t) m_hi += hi(t, d);
    m_lo /= static_cast<double>(lo.rows());
    m_hi /= static_cast<double>(hi.rows());
    dist += (m_lo - m_hi) * (m_lo - m_hi);
  }
  EXPECT_GT(std::sqrt(dist), 1.0);
}

TEST(Mfcc, DeterministicForSameInput) {
  MfccExtractor mfcc;
  const auto x = make_tone(700.0, 0.2, 8000.0, 0.1);
  const auto a = mfcc.extract(x);
  const auto b = mfcc.extract(x);
  EXPECT_TRUE(a == b);
}

TEST(Mfcc, RejectsFrameLongerThanFft) {
  MfccConfig cfg;
  cfg.frame_length = 512;
  cfg.n_fft = 256;
  EXPECT_THROW(MfccExtractor{cfg}, std::invalid_argument);
}

TEST(LevinsonDurbin, SolvesKnownAr1Process) {
  // AR(1): x[t] = a x[t-1] + e  ->  R[k] = a^k / (1-a^2) (up to scale).
  const double a = 0.7;
  std::vector<double> autocorr(4);
  for (std::size_t k = 0; k < 4; ++k) autocorr[k] = std::pow(a, k);
  std::vector<double> lpc(2);
  const double err = levinson_durbin(autocorr, lpc);
  EXPECT_NEAR(lpc[0], a, 1e-9);
  EXPECT_NEAR(lpc[1], 0.0, 1e-9);
  EXPECT_NEAR(err, 1.0 - a * a, 1e-9);
}

TEST(LevinsonDurbin, RejectsNonPositiveR0) {
  std::vector<double> autocorr = {0.0, 0.1};
  std::vector<double> lpc(1);
  EXPECT_THROW(levinson_durbin(autocorr, lpc), std::invalid_argument);
}

TEST(LevinsonDurbin, StableFilterForValidAutocorrelation) {
  // For a positive-definite autocorrelation the reflection coefficients
  // stay in (-1, 1) and the error remains positive.
  std::vector<double> autocorr = {2.0, 1.1, 0.6, 0.2, 0.05};
  std::vector<double> lpc(4);
  const double err = levinson_durbin(autocorr, lpc);
  EXPECT_GT(err, 0.0);
  EXPECT_LT(err, 2.0);  // prediction reduces error
}

TEST(LpcToCepstrum, FirstCepstrumIsLogGain) {
  std::vector<double> lpc = {0.5};
  std::vector<double> ceps(3);
  lpc_to_cepstrum(lpc, std::exp(2.0), ceps);
  EXPECT_NEAR(ceps[0], 2.0, 1e-12);
  EXPECT_NEAR(ceps[1], 0.5, 1e-12);
  // c2 = a2 + (1/2) c1 a1 = 0 + 0.5*0.5*0.5
  EXPECT_NEAR(ceps[2], 0.125, 1e-12);
}

TEST(Plp, OutputShapeAndFiniteness) {
  PlpConfig cfg;
  PlpExtractor plp(cfg);
  const auto x = make_tone(600.0, 0.4, cfg.sample_rate, 0.2);
  const auto feats = plp.extract(x);
  EXPECT_EQ(feats.cols(), cfg.num_ceps);
  EXPECT_GT(feats.rows(), 0u);
  for (std::size_t t = 0; t < feats.rows(); ++t) {
    for (std::size_t d = 0; d < feats.cols(); ++d) {
      EXPECT_TRUE(std::isfinite(feats(t, d))) << t << "," << d;
    }
  }
}

TEST(Plp, DistinguishesTones) {
  PlpExtractor plp;
  const auto lo = plp.extract(make_tone(350.0, 0.3, 8000.0));
  const auto hi = plp.extract(make_tone(1800.0, 0.3, 8000.0));
  ASSERT_GT(lo.rows(), 0u);
  double dist = 0.0;
  for (std::size_t d = 1; d < lo.cols(); ++d) {
    double m_lo = 0.0, m_hi = 0.0;
    for (std::size_t t = 0; t < lo.rows(); ++t) m_lo += lo(t, d);
    for (std::size_t t = 0; t < hi.rows(); ++t) m_hi += hi(t, d);
    dist += std::abs(m_lo / static_cast<double>(lo.rows()) -
                     m_hi / static_cast<double>(hi.rows()));
  }
  EXPECT_GT(dist, 0.1);
}

TEST(Plp, DiffersFromMfcc) {
  // The two front-ends must produce genuinely different representations —
  // that difference is the diversification the paper fuses over.
  MfccExtractor mfcc;
  PlpExtractor plp;
  const auto x = make_tone(500.0, 0.3, 8000.0, 0.3);
  const auto a = mfcc.extract(x);
  const auto b = plp.extract(x);
  ASSERT_EQ(a.rows(), b.rows());
  double diff = 0.0;
  for (std::size_t t = 0; t < a.rows(); ++t) {
    for (std::size_t d = 0; d < std::min(a.cols(), b.cols()); ++d) {
      diff += std::abs(a(t, d) - b(t, d));
    }
  }
  EXPECT_GT(diff, 1.0);
}

}  // namespace
}  // namespace phonolid::dsp
