#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace phonolid::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, SizeRespected) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, NonZeroBegin) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  parallel_for(pool, 10, 20, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 145);  // 10+..+19
}

TEST(ParallelFor, DeterministicResultSlots) {
  ThreadPool pool(6);
  const std::size_t n = 5000;
  std::vector<double> out_a(n), out_b(n);
  const auto body = [](std::size_t i) {
    return static_cast<double>(i) * 1.5 + 1.0;
  };
  parallel_for(pool, 0, n, [&](std::size_t i) { out_a[i] = body(i); });
  parallel_for(pool, 0, n, [&](std::size_t i) { out_b[i] = body(i); });
  EXPECT_EQ(out_a, out_b);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [&](std::size_t i) {
                     if (i == 57) throw std::runtime_error("body failed");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> hits(64, 0);
  parallel_for(pool, 0, 64, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ParallelFor, MinBlockHonoursSerialFallback) {
  ThreadPool pool(4);
  // min_block >= n forces the serial path; result must be identical.
  std::vector<int> hits(32, 0);
  parallel_for(pool, 0, 32, [&](std::size_t i) { ++hits[i]; }, 32);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, GlobalPoolConvenience) {
  std::atomic<int> counter{0};
  parallel_for(0, 100, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, NestedSubmissionDoesNotDeadlock) {
  // Submitting new work from within a task (not waiting on it inside the
  // task) must not deadlock.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> inner;
  std::mutex m;
  parallel_for(pool, 0, 8, [&](std::size_t) {
    auto fut = pool.submit([&counter] { ++counter; });
    std::lock_guard lock(m);
    inner.push_back(std::move(fut));
  });
  for (auto& f : inner) f.get();
  EXPECT_EQ(counter.load(), 8);
}

}  // namespace
}  // namespace phonolid::util
