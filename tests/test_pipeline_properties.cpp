// Cross-module property tests: decoder lattices and phonotactic expected
// counts must be mutually consistent.
#include <gtest/gtest.h>

#include <cmath>

#include "am/hmm.h"
#include "decoder/phone_loop_decoder.h"
#include "phonotactic/ngram_counts.h"
#include "phonotactic/supervector.h"
#include "util/rng.h"

namespace phonolid {
namespace {

/// Noisy oracle: score(state, frame) is high when phone matches truth,
/// plus Gaussian jitter controlled by `noise`.
class NoisyOracle final : public am::AcousticModel {
 public:
  NoisyOracle(am::HmmTopology topo, std::vector<std::size_t> truth,
              float margin, float noise, std::uint64_t seed)
      : topo_(topo), truth_(std::move(truth)) {
    util::Rng rng(seed);
    scores_.resize(truth_.size(), topo_.num_states());
    for (std::size_t t = 0; t < truth_.size(); ++t) {
      for (std::size_t s = 0; s < topo_.num_states(); ++s) {
        const bool correct = topo_.phone_of(s) == truth_[t];
        scores_(t, s) = (correct ? 0.0f : -margin) +
                        static_cast<float>(rng.gaussian(0.0, noise));
      }
    }
  }

  [[nodiscard]] std::size_t num_states() const noexcept override {
    return topo_.num_states();
  }
  [[nodiscard]] std::size_t feature_dim() const noexcept override { return 1; }
  void score(const util::Matrix& features, util::Matrix& out) const override {
    (void)features;
    out = scores_;
  }

 private:
  am::HmmTopology topo_;
  std::vector<std::size_t> truth_;
  util::Matrix scores_;
};

struct PipelineCase {
  am::HmmTopology topo{5, 3};
  std::vector<std::size_t> truth;
  std::unique_ptr<NoisyOracle> model;
  std::unique_ptr<decoder::PhoneLoopDecoder> dec;

  PipelineCase(float margin, float noise, std::uint64_t seed,
               decoder::DecoderConfig cfg = {}) {
    util::Rng rng(seed);
    for (int seg = 0; seg < 8; ++seg) {
      const std::size_t phone = rng.uniform_index(5);
      const std::size_t len = 4 + rng.uniform_index(5);
      for (std::size_t i = 0; i < len; ++i) truth.push_back(phone);
    }
    model = std::make_unique<NoisyOracle>(topo, truth, margin, noise, seed);
    dec = std::make_unique<decoder::PhoneLoopDecoder>(
        *model, topo, am::HmmTransitions::uniform(topo.num_states(), 3.0),
        cfg);
  }

  decoder::Lattice decode() const {
    return dec->decode(util::Matrix(truth.size(), 1, 0.0f));
  }
};

TEST(PipelineProperties, ExpectedUnigramMassEqualsExpectedPathLength) {
  // Sum of unigram expected counts == expected number of edges on a path,
  // which must be >= 1 and <= num_frames.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    PipelineCase pc(3.0f, 1.0f, seed);
    const auto lattice = pc.decode();
    phonotactic::NgramIndexer idx(5, 1);
    phonotactic::NgramCountConfig cfg;
    cfg.acoustic_scale = pc.dec->config().acoustic_scale;
    cfg.count_floor = 1e-9;
    const auto counts = expected_ngram_counts(lattice, idx, cfg);
    const double mass = counts.sum();
    EXPECT_GE(mass, 1.0 - 1e-6) << seed;
    EXPECT_LE(mass, static_cast<double>(lattice.num_frames()) + 1e-6) << seed;
  }
}

TEST(PipelineProperties, SharpScaleConvergesToOneBestCounts) {
  // As the acoustic scale grows, expected counts concentrate on the best
  // path, approaching the 1-best sequence counts.
  PipelineCase pc(6.0f, 0.5f, 7);
  const auto lattice = pc.decode();
  phonotactic::NgramIndexer idx(5, 2);
  const auto onebest = sequence_ngram_counts(lattice.best_path(), idx);

  phonotactic::NgramCountConfig sharp;
  sharp.acoustic_scale = 50.0;
  sharp.count_floor = 1e-9;
  const auto expected = expected_ngram_counts(lattice, idx, sharp);

  // L1 distance between the count vectors should be small relative to the
  // total 1-best mass.
  double l1 = 0.0;
  for (std::size_t i = 0; i < onebest.nnz(); ++i) {
    l1 += std::abs(onebest.values()[i] -
                   expected.at(onebest.indices()[i]));
  }
  for (std::size_t i = 0; i < expected.nnz(); ++i) {
    if (onebest.at(expected.indices()[i]) == 0.0f) {
      l1 += expected.values()[i];
    }
  }
  EXPECT_LT(l1 / onebest.sum(), 0.15);
}

TEST(PipelineProperties, BigramMassBoundedByUnigramMass) {
  // Every path with E edges contributes E unigrams and E-1 bigrams, so the
  // expected bigram mass must be exactly unigram mass minus 1.
  PipelineCase pc(2.0f, 1.0f, 11);
  const auto lattice = pc.decode();
  phonotactic::NgramIndexer idx(5, 2);
  phonotactic::NgramCountConfig cfg;
  cfg.acoustic_scale = pc.dec->config().acoustic_scale;
  cfg.count_floor = 1e-12;
  const auto counts = expected_ngram_counts(lattice, idx, cfg);
  double unigram = 0.0, bigram = 0.0;
  for (std::size_t i = 0; i < counts.nnz(); ++i) {
    if (counts.indices()[i] < idx.order_offset(2)) {
      unigram += counts.values()[i];
    } else {
      bigram += counts.values()[i];
    }
  }
  EXPECT_NEAR(bigram, unigram - 1.0, 0.02);
}

TEST(PipelineProperties, SupervectorInvariantToLatticeScaleShift) {
  // Adding a constant to every edge score must not change per-order
  // normalised supervectors (it cancels in path posteriors only when the
  // path lengths are equal; for mixed lengths it re-weights, so we test a
  // *uniform-length* chain lattice where invariance is exact).
  std::vector<decoder::LatticeEdge> edges;
  for (std::uint32_t t = 0; t < 6; ++t) {
    edges.push_back({t, t + 1, t % 3, 0.5f, 0.0});
    edges.push_back({t, t + 1, (t + 1) % 3, 0.2f, 0.0});
  }
  auto shifted = edges;
  for (auto& e : shifted) e.score += 2.0f;

  phonotactic::NgramIndexer idx(3, 2);
  phonotactic::SupervectorBuilder builder(
      idx, {{2, 1.0, 1e-9}, true});
  const auto a = builder.build(decoder::Lattice(6, std::move(edges)));
  const auto b = builder.build(decoder::Lattice(6, std::move(shifted)));
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::size_t i = 0; i < a.nnz(); ++i) {
    EXPECT_EQ(a.indices()[i], b.indices()[i]);
    EXPECT_NEAR(a.values()[i], b.values()[i], 1e-4);
  }
}

TEST(PipelineProperties, NoiseIncreasesLatticeDensity) {
  double clear_edges = 0.0, noisy_edges = 0.0;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    PipelineCase clear(8.0f, 0.2f, seed);
    PipelineCase noisy(1.0f, 2.0f, seed);
    clear_edges += static_cast<double>(clear.decode().edges().size());
    noisy_edges += static_cast<double>(noisy.decode().edges().size());
  }
  EXPECT_GT(noisy_edges, clear_edges);
}

TEST(PipelineProperties, OneBestStableUnderSmallNoise) {
  // With a large margin, small acoustic jitter must not change the 1-best
  // phone sequence.
  PipelineCase a(8.0f, 0.0f, 31);
  PipelineCase b(8.0f, 0.3f, 31);
  EXPECT_EQ(a.decode().best_path(), b.decode().best_path());
}

}  // namespace
}  // namespace phonolid
