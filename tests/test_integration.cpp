// End-to-end pipeline tests on a micro corpus: two front-ends, three
// languages.  These verify the full chain audio -> features -> lattice ->
// supervector -> SVM -> votes -> DBA -> fusion -> metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.h"

namespace phonolid::core {
namespace {

ExperimentConfig micro_config() {
  ExperimentConfig cfg = ExperimentConfig::preset(util::Scale::kQuick, 77);
  cfg.corpus.family.num_languages = 3;
  cfg.corpus.num_universal_phones = 20;
  cfg.corpus.train_utts_per_language = 10;
  cfg.corpus.dev_utts_per_language_per_tier = 3;
  cfg.corpus.test_utts_per_language_per_tier = 4;
  cfg.corpus.num_native_languages = 2;
  cfg.corpus.am_train_utts_per_native = 8;
  cfg.corpus.am_train_seconds = 1.5;
  cfg.corpus.tier_seconds[0] = 1.2;
  cfg.corpus.tier_seconds[1] = 0.5;
  cfg.corpus.tier_seconds[2] = 0.25;
  cfg.corpus.train_seconds = 1.2;

  // Two front-ends only: one GMM-HMM, one ANN-HMM.
  auto all = default_frontends(util::Scale::kQuick);
  cfg.frontends = {all[0], all[5]};
  cfg.frontends[0].num_phones = 10;
  cfg.frontends[0].hidden_sizes = {24};
  cfg.frontends[0].native_language = 0;
  cfg.frontends[1].num_phones = 9;
  cfg.frontends[1].native_language = 1;
  return cfg;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    experiment_ = Experiment::build(micro_config()).release();
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }
  static Experiment* experiment_;
};

Experiment* IntegrationTest::experiment_ = nullptr;

TEST_F(IntegrationTest, BaselineScoreShapes) {
  const auto& exp = *experiment_;
  ASSERT_EQ(exp.num_subsystems(), 2u);
  for (std::size_t q = 0; q < 2; ++q) {
    const auto& scores = exp.baseline_scores()[q];
    EXPECT_EQ(scores.test.rows(), exp.corpus().test().size());
    EXPECT_EQ(scores.test.cols(), exp.num_languages());
    EXPECT_EQ(scores.dev.rows(), exp.corpus().dev().size());
    for (std::size_t i = 0; i < scores.test.rows(); ++i) {
      for (std::size_t c = 0; c < scores.test.cols(); ++c) {
        EXPECT_TRUE(std::isfinite(scores.test(i, c)));
      }
    }
  }
}

TEST_F(IntegrationTest, BaselineBeatsChanceOnLongestTier) {
  const auto& exp = *experiment_;
  // Identification accuracy of the raw SVM scores on the 30s tier should
  // clearly beat chance (1/3).
  const auto idx = exp.corpus().test_indices(corpus::DurationTier::k30s);
  const auto& scores = exp.baseline_scores()[0].test;
  std::size_t correct = 0;
  for (std::size_t i : idx) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < exp.num_languages(); ++c) {
      if (scores(i, c) > scores(i, best)) best = c;
    }
    if (static_cast<std::int32_t>(best) == exp.test_labels()[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(idx.size()),
            0.5);
}

TEST_F(IntegrationTest, VotesAreConsistentWithScores) {
  const auto& exp = *experiment_;
  const auto& votes = exp.votes();
  EXPECT_EQ(votes.num_utts, exp.corpus().test().size());
  EXPECT_EQ(votes.num_subsystems, 2u);
  // Re-derive a few votes manually from the baseline scores.
  for (std::size_t j = 0; j < std::min<std::size_t>(votes.num_utts, 10); ++j) {
    for (std::size_t q = 0; q < 2; ++q) {
      const auto& f = exp.baseline_scores()[q].test;
      std::size_t best = 0;
      bool own_pos = false, rivals_neg = true;
      for (std::size_t c = 0; c < votes.num_classes; ++c) {
        if (f(j, c) > f(j, best)) best = c;
      }
      own_pos = f(j, best) > 0.0f;
      for (std::size_t c = 0; c < votes.num_classes; ++c) {
        if (c != best && f(j, c) >= 0.0f) rivals_neg = false;
      }
      const bool expected = own_pos && rivals_neg;
      EXPECT_EQ(votes.vote(q, j, best), expected) << "utt " << j << " sub " << q;
    }
  }
}

TEST_F(IntegrationTest, SelectionPurityImprovesWithThreshold) {
  const auto& exp = *experiment_;
  // Table 1's structure: higher V -> fewer adopted utterances, and the
  // count is monotone.
  std::size_t prev_count = exp.corpus().test().size() + 1;
  for (std::size_t v = 1; v <= 2; ++v) {
    const auto sel = exp.select(v);
    EXPECT_LE(sel.utt_index.size(), prev_count);
    prev_count = sel.utt_index.size();
  }
  // With two subsystems, V=1 should adopt a reasonable share of test data.
  const auto sel1 = exp.select(1);
  EXPECT_GT(sel1.utt_index.size(), 0u);
  // Adopted labels beat chance clearly.
  const double err = selection_error_rate(sel1, exp.test_labels());
  EXPECT_LT(err, 0.5);
}

TEST_F(IntegrationTest, DbaRetrainingProducesValidScores) {
  const auto& exp = *experiment_;
  const auto m1 = exp.run_dba(1, DbaMode::kM1);
  const auto m2 = exp.run_dba(1, DbaMode::kM2);
  ASSERT_EQ(m1.size(), 2u);
  ASSERT_EQ(m2.size(), 2u);
  for (const auto& block : {m1[0], m2[0]}) {
    EXPECT_EQ(block.test.rows(), exp.corpus().test().size());
    for (std::size_t i = 0; i < block.test.rows(); ++i) {
      for (std::size_t c = 0; c < block.test.cols(); ++c) {
        EXPECT_TRUE(std::isfinite(block.test(i, c)));
      }
    }
  }
}

TEST_F(IntegrationTest, EvaluationProducesSaneMetrics) {
  const auto& exp = *experiment_;
  std::vector<const SubsystemScores*> blocks;
  for (const auto& b : exp.baseline_scores()) blocks.push_back(&b);
  const EvalResult result = exp.evaluate(blocks);
  for (std::size_t tier = 0; tier < corpus::kNumTiers; ++tier) {
    EXPECT_GE(result.tier[tier].eer, 0.0);
    EXPECT_LE(result.tier[tier].eer, 0.5 + 0.25);
    EXPECT_GE(result.tier[tier].cavg, 0.0);
    EXPECT_LE(result.tier[tier].cavg, 1.0);
    EXPECT_FALSE(result.det[tier].empty());
  }
  // Longest tier should not be harder than the shortest tier.
  EXPECT_LE(result.tier[0].eer, result.tier[2].eer + 0.1);
}

TEST_F(IntegrationTest, FusedBeatsOrMatchesWorstSingle) {
  const auto& exp = *experiment_;
  std::vector<const SubsystemScores*> blocks;
  for (const auto& b : exp.baseline_scores()) blocks.push_back(&b);
  const EvalResult fused = exp.evaluate(blocks);
  const EvalResult single0 = exp.evaluate_single(exp.baseline_scores()[0]);
  const EvalResult single1 = exp.evaluate_single(exp.baseline_scores()[1]);
  const double worst =
      std::max(single0.tier[0].eer, single1.tier[0].eer);
  EXPECT_LE(fused.tier[0].eer, worst + 0.05);
}

TEST_F(IntegrationTest, StageTimesAccumulated) {
  const auto& exp = *experiment_;
  const StageTimes t = exp.subsystem(0).stage_times();
  EXPECT_GT(t.decode_s, 0.0);
  EXPECT_GT(t.feature_s, 0.0);
  EXPECT_GT(t.supervector_s, 0.0);
  EXPECT_GT(t.audio_s, 0.0);
}

TEST_F(IntegrationTest, SubsystemDecodeProducesSoundLattice) {
  const auto& exp = *experiment_;
  const auto lattice = exp.subsystem(0).decode(exp.corpus().test()[0]);
  EXPECT_FALSE(lattice.edges().empty());
  EXPECT_FALSE(lattice.best_path().empty());
  const auto occ = lattice.frame_occupancy();
  for (double o : occ) EXPECT_NEAR(o, 1.0, 1e-3);
}

}  // namespace
}  // namespace phonolid::core
