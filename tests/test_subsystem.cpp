// Subsystem-level tests on a micro corpus (cheaper than the full
// integration suite; exercises the audio -> supervector chain directly).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/subsystem.h"

namespace phonolid::core {
namespace {

corpus::CorpusConfig micro_corpus_config() {
  corpus::CorpusConfig cfg = corpus::CorpusConfig::preset(util::Scale::kQuick, 31);
  cfg.family.num_languages = 2;
  cfg.num_universal_phones = 14;
  cfg.train_utts_per_language = 4;
  cfg.dev_utts_per_language_per_tier = 1;
  cfg.test_utts_per_language_per_tier = 2;
  cfg.num_native_languages = 1;
  cfg.am_train_utts_per_native = 8;
  cfg.am_train_seconds = 1.5;
  return cfg;
}

FrontEndSpec micro_spec(ModelFamily family) {
  FrontEndSpec spec;
  spec.name = "micro";
  spec.family = family;
  spec.num_phones = 6;
  spec.native_language = 0;
  spec.hidden_sizes = {12};
  spec.gmm_components = 2;
  spec.seed_salt = 0x99;
  return spec;
}

class SubsystemTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new corpus::LreCorpus(corpus::LreCorpus::build(micro_corpus_config()));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }
  static corpus::LreCorpus* corpus_;
};

corpus::LreCorpus* SubsystemTest::corpus_ = nullptr;

TEST_F(SubsystemTest, BuildsForEveryFamily) {
  for (auto family : {ModelFamily::kGmmHmm, ModelFamily::kAnnHmm,
                      ModelFamily::kDnnHmm}) {
    auto sub = Subsystem::build(*corpus_, micro_spec(family), 1);
    EXPECT_EQ(sub->spec().family, family);
    EXPECT_GT(sub->supervector_dim(), 6u);
    const auto train_svs = sub->take_train_supervectors();
    EXPECT_EQ(train_svs.size(), corpus_->vsm_train().size());
  }
}

TEST_F(SubsystemTest, ProcessProducesNormalisedSparseVector) {
  auto sub = Subsystem::build(*corpus_, micro_spec(ModelFamily::kGmmHmm), 2);
  const auto sv = sub->process(corpus_->test()[0]);
  ASSERT_FALSE(sv.empty());
  for (std::size_t i = 0; i < sv.nnz(); ++i) {
    EXPECT_TRUE(std::isfinite(sv.values()[i]));
    EXPECT_GE(sv.values()[i], 0.0f);
    ASSERT_LT(sv.indices()[i], sub->supervector_dim());
  }
}

TEST_F(SubsystemTest, ProcessIsDeterministic) {
  auto a = Subsystem::build(*corpus_, micro_spec(ModelFamily::kGmmHmm), 3);
  auto b = Subsystem::build(*corpus_, micro_spec(ModelFamily::kGmmHmm), 3);
  const auto sva = a->process(corpus_->test()[1]);
  const auto svb = b->process(corpus_->test()[1]);
  ASSERT_EQ(sva.nnz(), svb.nnz());
  for (std::size_t i = 0; i < sva.nnz(); ++i) {
    EXPECT_EQ(sva.indices()[i], svb.indices()[i]);
    EXPECT_FLOAT_EQ(sva.values()[i], svb.values()[i]);
  }
}

TEST_F(SubsystemTest, DifferentSeedsGiveDifferentFrontends) {
  auto a = Subsystem::build(*corpus_, micro_spec(ModelFamily::kGmmHmm), 10);
  FrontEndSpec spec_b = micro_spec(ModelFamily::kGmmHmm);
  spec_b.seed_salt = 0xAB;
  auto b = Subsystem::build(*corpus_, spec_b, 10);
  // Phone maps should cluster differently (diversification).
  EXPECT_NE(a->phone_map().mapping(), b->phone_map().mapping());
}

TEST_F(SubsystemTest, ProcessAllMatchesProcess) {
  auto sub = Subsystem::build(*corpus_, micro_spec(ModelFamily::kGmmHmm), 4);
  const auto batch = sub->process_all(corpus_->dev());
  ASSERT_EQ(batch.size(), corpus_->dev().size());
  const auto single = sub->process(corpus_->dev()[0]);
  ASSERT_EQ(batch[0].nnz(), single.nnz());
  for (std::size_t i = 0; i < single.nnz(); ++i) {
    EXPECT_FLOAT_EQ(batch[0].values()[i], single.values()[i]);
  }
}

TEST_F(SubsystemTest, StageTimesGrowAndReset) {
  auto sub = Subsystem::build(*corpus_, micro_spec(ModelFamily::kGmmHmm), 5);
  sub->reset_stage_times();
  (void)sub->process(corpus_->test()[0]);
  const auto t1 = sub->stage_times();
  EXPECT_GT(t1.decode_s + t1.feature_s + t1.supervector_s, 0.0);
  EXPECT_GT(t1.audio_s, 0.0);
  (void)sub->process(corpus_->test()[1]);
  const auto t2 = sub->stage_times();
  EXPECT_GT(t2.audio_s, t1.audio_s);
  sub->reset_stage_times();
  const auto t3 = sub->stage_times();
  EXPECT_EQ(t3.audio_s, 0.0);
}

TEST_F(SubsystemTest, InvalidNativeLanguageThrows) {
  FrontEndSpec spec = micro_spec(ModelFamily::kGmmHmm);
  spec.native_language = 99;
  EXPECT_THROW(Subsystem::build(*corpus_, spec, 1), std::invalid_argument);
}

TEST_F(SubsystemTest, SecondTakeOfTrainSupervectorsThrows) {
  auto sub = Subsystem::build(*corpus_, micro_spec(ModelFamily::kGmmHmm), 7);
  const auto svs = sub->take_train_supervectors();
  EXPECT_EQ(svs.size(), corpus_->vsm_train().size());
  // The moved-out cache would silently be empty — that's always a bug.
  EXPECT_THROW((void)sub->take_train_supervectors(), std::logic_error);
}

TEST_F(SubsystemTest, TrainedFrontEndRoundTripReproducesSubsystem) {
  for (auto family : {ModelFamily::kGmmHmm, ModelFamily::kAnnHmm,
                      ModelFamily::kDnnHmm}) {
    const FrontEndSpec spec = micro_spec(family);
    TrainedFrontEnd fe = Subsystem::train_front_end(*corpus_, spec, 8);
    std::stringstream ss;
    fe.serialize(ss);
    TrainedFrontEnd restored = TrainedFrontEnd::deserialize(ss);
    EXPECT_EQ(restored.family, family);
    EXPECT_EQ(restored.phone_map.mapping(), fe.phone_map.mapping());

    // A subsystem assembled from the deserialized front end must process
    // identically to the freshly built one.
    auto direct = Subsystem::build(*corpus_, spec, 8);
    auto warm = Subsystem::assemble(*corpus_, spec, std::move(restored));
    const DecodedSupervectors ds = warm->decode_splits(*corpus_);
    const auto direct_svs = direct->take_train_supervectors();
    ASSERT_EQ(ds.train.size(), direct_svs.size());
    for (std::size_t u = 0; u < ds.train.size(); ++u) {
      ASSERT_EQ(ds.train[u].nnz(), direct_svs[u].nnz());
      for (std::size_t i = 0; i < ds.train[u].nnz(); ++i) {
        EXPECT_EQ(ds.train[u].indices()[i], direct_svs[u].indices()[i]);
        EXPECT_FLOAT_EQ(ds.train[u].values()[i], direct_svs[u].values()[i]);
      }
    }
  }
}

TEST_F(SubsystemTest, DecodedSupervectorsRoundTrip) {
  auto sub = Subsystem::build(*corpus_, micro_spec(ModelFamily::kGmmHmm), 9);
  auto warm = Subsystem::assemble(
      *corpus_, micro_spec(ModelFamily::kGmmHmm),
      Subsystem::train_front_end(*corpus_, micro_spec(ModelFamily::kGmmHmm),
                                 9));
  const DecodedSupervectors ds = warm->decode_splits(*corpus_);
  std::stringstream ss;
  ds.serialize(ss);
  const DecodedSupervectors restored = DecodedSupervectors::deserialize(ss);
  ASSERT_EQ(restored.train.size(), ds.train.size());
  ASSERT_EQ(restored.dev.size(), ds.dev.size());
  ASSERT_EQ(restored.test.size(), ds.test.size());
  for (std::size_t u = 0; u < ds.test.size(); ++u) {
    ASSERT_EQ(restored.test[u].nnz(), ds.test[u].nnz());
    for (std::size_t i = 0; i < ds.test[u].nnz(); ++i) {
      EXPECT_EQ(restored.test[u].indices()[i], ds.test[u].indices()[i]);
      EXPECT_FLOAT_EQ(restored.test[u].values()[i], ds.test[u].values()[i]);
    }
  }
  // The restored scaler transforms a fresh utterance identically to the
  // fitted one (warm runs install it via set_tfllr).
  sub->set_tfllr(restored.tfllr);
  const auto direct = warm->process(corpus_->test()[0]);
  const auto via_restored = sub->process(corpus_->test()[0]);
  ASSERT_EQ(direct.nnz(), via_restored.nnz());
  for (std::size_t i = 0; i < direct.nnz(); ++i) {
    EXPECT_FLOAT_EQ(direct.values()[i], via_restored.values()[i]);
  }
}

TEST_F(SubsystemTest, TfllrOffChangesSupervectors) {
  auto with = Subsystem::build(*corpus_, micro_spec(ModelFamily::kGmmHmm), 6);
  FrontEndSpec raw_spec = micro_spec(ModelFamily::kGmmHmm);
  raw_spec.use_tfllr = false;
  auto without = Subsystem::build(*corpus_, raw_spec, 6);
  const auto a = with->process(corpus_->test()[0]);
  const auto b = without->process(corpus_->test()[0]);
  ASSERT_EQ(a.nnz(), b.nnz());
  bool any_different = false;
  for (std::size_t i = 0; i < a.nnz(); ++i) {
    if (std::abs(a.values()[i] - b.values()[i]) > 1e-6f) any_different = true;
  }
  EXPECT_TRUE(any_different);
  // Raw supervectors are per-order probabilities: values <= 1.
  for (float v : b.values()) EXPECT_LE(v, 1.0f + 1e-5f);
}

}  // namespace
}  // namespace phonolid::core
