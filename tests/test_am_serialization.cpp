// Round-trip serialization of the trained acoustic models — the pieces a
// deployment would persist between the (expensive) front-end training and
// the (cheap) VSM/DBA stages.
#include <gtest/gtest.h>

#include <sstream>

#include "util/serialize.h"

#include "am/gmm_hmm.h"
#include "am/nn_hmm.h"
#include "decoder/phone_loop_decoder.h"
#include "corpus/language_model.h"
#include "corpus/synthesizer.h"

namespace phonolid::am {
namespace {

struct SerWorld {
  corpus::PhoneInventory inventory;
  PhoneSetMap map;
  dsp::FeaturePipeline pipeline;
  corpus::Synthesizer synth;

  SerWorld()
      : inventory(corpus::build_universal_inventory(10, 3)),
        map(build_phone_map(inventory, 4, 5)),
        pipeline(dsp::FeaturePipelineConfig{}),
        synth(inventory, 8000.0) {}

  std::vector<AlignedUtterance> make_corpus(std::size_t n) {
    const auto lang = corpus::build_language(inventory, "t", 0.4, 0.9, 17);
    std::vector<AlignedUtterance> out;
    for (std::size_t i = 0; i < n; ++i) {
      util::Rng rng(300 + i);
      const auto phones = lang.sample_sequence(inventory, 1.2, rng);
      auto speaker = corpus::SpeakerProfile::sample(rng);
      auto channel = corpus::ChannelProfile::sample(rng);
      auto rendered = synth.render(phones, speaker, channel, rng);
      corpus::Utterance utt;
      utt.samples = std::move(rendered.samples);
      utt.alignment = std::move(rendered.alignment);
      out.push_back(align_utterance(utt, pipeline, map));
    }
    return out;
  }
};

TEST(AmSerialization, GmmHmmRoundTripScoresIdentical) {
  SerWorld world;
  const auto data = world.make_corpus(5);
  GmmHmmTrainConfig cfg;
  cfg.gmm.num_components = 2;
  const auto model = train_gmm_hmm(data, 4, cfg);

  std::stringstream ss;
  model.serialize(ss);
  const auto loaded = GmmHmmModel::deserialize(ss);

  EXPECT_EQ(loaded.num_states(), model.num_states());
  EXPECT_EQ(loaded.feature_dim(), model.feature_dim());
  util::Matrix a, b;
  model.score(data[0].features, a);
  loaded.score(data[0].features, b);
  ASSERT_TRUE(a.rows() == b.rows() && a.cols() == b.cols());
  for (std::size_t t = 0; t < a.rows(); ++t) {
    for (std::size_t s = 0; s < a.cols(); ++s) {
      EXPECT_FLOAT_EQ(a(t, s), b(t, s));
    }
  }
  // Transitions preserved.
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    EXPECT_FLOAT_EQ(loaded.transitions().log_self[s],
                    model.transitions().log_self[s]);
  }
}

TEST(AmSerialization, NnHmmRoundTripScoresIdentical) {
  SerWorld world;
  const auto data = world.make_corpus(5);
  NnHmmTrainConfig cfg;
  cfg.nn.hidden_sizes = {8};
  cfg.nn.max_epochs = 2;
  cfg.score_gain = 2.5f;
  const auto model = train_nn_hmm(data, 4, cfg);

  std::stringstream ss;
  model.serialize(ss);
  const auto loaded = NnHmmModel::deserialize(ss);

  EXPECT_EQ(loaded.num_states(), model.num_states());
  EXPECT_EQ(loaded.context(), model.context());
  util::Matrix a, b;
  model.score(data[1].features, a);
  loaded.score(data[1].features, b);
  for (std::size_t t = 0; t < a.rows(); ++t) {
    for (std::size_t s = 0; s < a.cols(); ++s) {
      EXPECT_FLOAT_EQ(a(t, s), b(t, s));
    }
  }
}

TEST(AmSerialization, GmmHmmRejectsCorruptMagic) {
  std::stringstream ss;
  ss << "XXXX garbage";
  EXPECT_THROW(GmmHmmModel::deserialize(ss), util::SerializeError);
}

TEST(AmSerialization, NnHmmRejectsTruncatedStream) {
  SerWorld world;
  const auto data = world.make_corpus(4);
  NnHmmTrainConfig cfg;
  cfg.nn.hidden_sizes = {6};
  cfg.nn.max_epochs = 1;
  const auto model = train_nn_hmm(data, 4, cfg);
  std::stringstream ss;
  model.serialize(ss);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(NnHmmModel::deserialize(truncated), util::SerializeError);
}

TEST(AmSerialization, DecodingIdenticalThroughRoundTrip) {
  // The persisted model must drive the decoder to identical lattices.
  SerWorld world;
  const auto data = world.make_corpus(5);
  GmmHmmTrainConfig cfg;
  cfg.gmm.num_components = 2;
  const auto model = train_gmm_hmm(data, 4, cfg);
  std::stringstream ss;
  model.serialize(ss);
  const auto loaded = GmmHmmModel::deserialize(ss);

  decoder::PhoneLoopDecoder dec_a(model, model.topology(),
                                  model.transitions(), {});
  decoder::PhoneLoopDecoder dec_b(loaded, loaded.topology(),
                                  loaded.transitions(), {});
  const auto lat_a = dec_a.decode(data[2].features);
  const auto lat_b = dec_b.decode(data[2].features);
  EXPECT_EQ(lat_a.best_path(), lat_b.best_path());
  ASSERT_EQ(lat_a.edges().size(), lat_b.edges().size());
  for (std::size_t i = 0; i < lat_a.edges().size(); ++i) {
    EXPECT_FLOAT_EQ(lat_a.edges()[i].score, lat_b.edges()[i].score);
  }
}

}  // namespace
}  // namespace phonolid::am
