#include "util/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace phonolid::util {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(3, 4, 1.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(m(r, c), 1.5f);
  }
  m(1, 2) = -7.0f;
  EXPECT_FLOAT_EQ(m(1, 2), -7.0f);
}

TEST(Matrix, RowSpanIsContiguousView) {
  Matrix m(2, 3);
  m(1, 0) = 1.0f;
  m(1, 1) = 2.0f;
  m(1, 2) = 3.0f;
  auto row = m.row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_FLOAT_EQ(row[0], 1.0f);
  EXPECT_FLOAT_EQ(row[2], 3.0f);
  row[0] = 9.0f;
  EXPECT_FLOAT_EQ(m(1, 0), 9.0f);
}

TEST(Matrix, ResizeResets) {
  Matrix m(2, 2, 5.0f);
  m.resize(3, 1, 2.0f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 1u);
  EXPECT_FLOAT_EQ(m(2, 0), 2.0f);
}

TEST(Matrix, EqualityOperator) {
  Matrix a(2, 2, 1.0f), b(2, 2, 1.0f), c(2, 2, 2.0f);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Blas, DotBasic) {
  std::vector<float> a = {1, 2, 3, 4, 5};
  std::vector<float> b = {5, 4, 3, 2, 1};
  EXPECT_FLOAT_EQ(dot(a, b), 5 + 8 + 9 + 8 + 5);
}

TEST(Blas, DotEmpty) {
  std::vector<float> a, b;
  EXPECT_FLOAT_EQ(dot(a, b), 0.0f);
}

TEST(Blas, DotLongVectorMatchesNaive) {
  std::vector<float> a(1003), b(1003);
  double naive = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(std::sin(0.1 * static_cast<double>(i)));
    b[i] = static_cast<float>(std::cos(0.05 * static_cast<double>(i)));
    naive += static_cast<double>(a[i]) * b[i];
  }
  EXPECT_NEAR(dot(a, b), naive, 1e-2);
}

TEST(Blas, AxpyAccumulates) {
  std::vector<float> x = {1, 2, 3};
  std::vector<float> y = {10, 20, 30};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 24.0f);
  EXPECT_FLOAT_EQ(y[2], 36.0f);
}

TEST(Blas, ScaleAndNorm) {
  std::vector<float> x = {3, 4};
  EXPECT_FLOAT_EQ(norm2(x), 5.0f);
  scale(2.0f, x);
  EXPECT_FLOAT_EQ(norm2(x), 10.0f);
}

TEST(Blas, MatvecIdentity) {
  Matrix eye(3, 3);
  for (std::size_t i = 0; i < 3; ++i) eye(i, i) = 1.0f;
  std::vector<float> x = {1, 2, 3}, out(3);
  matvec(eye, x, out);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
  EXPECT_FLOAT_EQ(out[2], 3.0f);
}

TEST(Blas, MatvecRectangular) {
  Matrix a(2, 3);
  // [1 2 3; 4 5 6]
  float v = 1.0f;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
  }
  std::vector<float> x = {1, 0, -1}, out(2);
  matvec(a, x, out);
  EXPECT_FLOAT_EQ(out[0], -2.0f);
  EXPECT_FLOAT_EQ(out[1], -2.0f);
}

TEST(Blas, MatvecTransposedMatchesManual) {
  Matrix a(2, 3);
  float v = 1.0f;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
  }
  std::vector<float> x = {1, 2}, out(3);
  matvec_transposed(a, x, out);
  // A^T x = [1+8, 2+10, 3+12]
  EXPECT_FLOAT_EQ(out[0], 9.0f);
  EXPECT_FLOAT_EQ(out[1], 12.0f);
  EXPECT_FLOAT_EQ(out[2], 15.0f);
}

TEST(Blas, MatmulSmall) {
  Matrix a(2, 2), b(2, 2), c;
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  matmul(a, b, c);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(Blas, MatmulRectangularShapes) {
  Matrix a(3, 2, 1.0f), b(2, 4, 2.0f), c;
  matmul(a, b, c);
  ASSERT_EQ(c.rows(), 3u);
  ASSERT_EQ(c.cols(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(c(i, j), 4.0f);
  }
}

TEST(Blas, GerRankOneUpdate) {
  Matrix a(2, 3, 0.0f);
  std::vector<float> x = {1, 2};
  std::vector<float> y = {3, 4, 5};
  ger(2.0f, x, y, a);
  EXPECT_FLOAT_EQ(a(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(a(0, 2), 10.0f);
  EXPECT_FLOAT_EQ(a(1, 1), 16.0f);
}

}  // namespace
}  // namespace phonolid::util
