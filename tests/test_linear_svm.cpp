#include "svm/linear_svm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/rng.h"

namespace phonolid::svm {
namespace {

using phonotactic::SparseVec;

struct Problem {
  std::vector<SparseVec> x;
  std::vector<const SparseVec*> xptr;
  std::vector<std::int8_t> y;
  std::size_t dim;

  void finish() {
    xptr.clear();
    for (const auto& v : x) xptr.push_back(&v);
  }
};

/// Linearly separable: label = sign(x0 - x1).
Problem separable_problem(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Problem p;
  p.dim = 3;  // feature 2 is noise
  for (std::size_t i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.uniform(0.0, 1.0));
    const float b = static_cast<float>(rng.uniform(0.0, 1.0));
    const float noise = static_cast<float>(rng.uniform(0.0, 1.0));
    if (std::abs(a - b) < 0.1f) continue;  // margin
    p.x.push_back(SparseVec({0, 1, 2}, {a, b, noise}));
    p.y.push_back(a > b ? 1 : -1);
  }
  p.finish();
  return p;
}

TEST(LinearSvm, SeparatesSeparableData) {
  Problem p = separable_problem(400, 1);
  LinearSvm svm;
  SvmConfig cfg;
  cfg.C = 10.0;
  svm.train(p.xptr, p.y, p.dim, cfg);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < p.x.size(); ++i) {
    const double s = svm.score(p.x[i]);
    if ((s > 0) == (p.y[i] > 0)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(p.x.size()),
            0.98);
}

TEST(LinearSvm, WeightSignsMatchProblemStructure) {
  Problem p = separable_problem(400, 2);
  LinearSvm svm;
  svm.train(p.xptr, p.y, p.dim, {});
  EXPECT_GT(svm.weights()[0], 0.0f);
  EXPECT_LT(svm.weights()[1], 0.0f);
  // The noise feature should carry much less weight.
  EXPECT_LT(std::abs(svm.weights()[2]),
            0.5f * std::abs(svm.weights()[0]));
}

TEST(LinearSvm, DualObjectiveDecreasesWithEpochs) {
  Problem p = separable_problem(300, 3);
  SvmConfig one;
  one.max_epochs = 1;
  one.epsilon = 0.0;
  SvmConfig many;
  many.max_epochs = 50;
  many.epsilon = 0.0;
  LinearSvm a, b;
  a.train(p.xptr, p.y, p.dim, one);
  b.train(p.xptr, p.y, p.dim, many);
  EXPECT_LE(b.dual_objective(), a.dual_objective() + 1e-9);
}

TEST(LinearSvm, ConvergesBeforeMaxEpochs) {
  Problem p = separable_problem(200, 4);
  LinearSvm svm;
  SvmConfig cfg;
  cfg.max_epochs = 1000;
  cfg.epsilon = 0.01;
  const std::size_t epochs = svm.train(p.xptr, p.y, p.dim, cfg);
  EXPECT_LT(epochs, 1000u);
}

TEST(LinearSvm, L1LossVariantAlsoSeparates) {
  Problem p = separable_problem(300, 5);
  LinearSvm svm;
  SvmConfig cfg;
  cfg.l2_loss = false;
  cfg.C = 5.0;
  svm.train(p.xptr, p.y, p.dim, cfg);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < p.x.size(); ++i) {
    if ((svm.score(p.x[i]) > 0) == (p.y[i] > 0)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(p.x.size()),
            0.95);
}

TEST(LinearSvm, BiasShiftsDecisionBoundary) {
  // All-positive vs all-negative in a single constant feature needs bias.
  Problem p;
  p.dim = 1;
  for (int i = 0; i < 20; ++i) {
    p.x.push_back(SparseVec({0}, {i < 10 ? 2.0f : 1.0f}));
    p.y.push_back(i < 10 ? 1 : -1);
  }
  p.finish();
  LinearSvm svm;
  SvmConfig cfg;
  cfg.C = 100.0;
  cfg.bias = 1.0;
  svm.train(p.xptr, p.y, p.dim, cfg);
  EXPECT_GT(svm.score(p.x[0]), 0.0);
  EXPECT_LT(svm.score(p.x[19]), 0.0);
}

TEST(LinearSvm, DeterministicForSeed) {
  Problem p = separable_problem(200, 7);
  SvmConfig cfg;
  cfg.seed = 11;
  LinearSvm a, b;
  a.train(p.xptr, p.y, p.dim, cfg);
  b.train(p.xptr, p.y, p.dim, cfg);
  EXPECT_EQ(a.weights(), b.weights());
}

TEST(LinearSvm, InputValidation) {
  LinearSvm svm;
  std::vector<const SparseVec*> empty;
  std::vector<std::int8_t> y;
  EXPECT_THROW(svm.train(empty, y, 3, {}), std::invalid_argument);

  SparseVec v({0}, {1.0f});
  std::vector<const SparseVec*> x = {&v};
  std::vector<std::int8_t> bad_label = {0};
  EXPECT_THROW(svm.train(x, bad_label, 1, {}), std::invalid_argument);
}

TEST(LinearSvm, SerializationRoundTrip) {
  Problem p = separable_problem(150, 13);
  LinearSvm svm;
  svm.train(p.xptr, p.y, p.dim, {});
  std::stringstream ss;
  svm.serialize(ss);
  const LinearSvm loaded = LinearSvm::deserialize(ss);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(svm.score(p.x[i]), loaded.score(p.x[i]));
  }
}

TEST(LinearSvm, ImbalancedDataStillScoresTargetsHigher) {
  // One-versus-rest produces ~10% positives; the machine must still rank
  // positives above negatives on average (this mirrors the VSM setting).
  util::Rng rng(17);
  Problem p;
  p.dim = 4;
  for (std::size_t i = 0; i < 400; ++i) {
    const bool pos = i % 10 == 0;
    const float base = pos ? 1.0f : 0.0f;
    p.x.push_back(SparseVec(
        {0, 1, 2, 3},
        {base + static_cast<float>(rng.gaussian(0, 0.2)),
         static_cast<float>(rng.gaussian(0, 0.2)),
         static_cast<float>(rng.gaussian(0, 0.2)),
         1.0f}));
    p.y.push_back(pos ? 1 : -1);
  }
  p.finish();
  LinearSvm svm;
  svm.train(p.xptr, p.y, p.dim, {});
  double pos_mean = 0.0, neg_mean = 0.0;
  std::size_t pos_n = 0, neg_n = 0;
  for (std::size_t i = 0; i < p.x.size(); ++i) {
    if (p.y[i] > 0) {
      pos_mean += svm.score(p.x[i]);
      ++pos_n;
    } else {
      neg_mean += svm.score(p.x[i]);
      ++neg_n;
    }
  }
  EXPECT_GT(pos_mean / static_cast<double>(pos_n),
            neg_mean / static_cast<double>(neg_n) + 0.5);
}

}  // namespace
}  // namespace phonolid::svm
