// quickstart — minimal end-to-end tour of the phonolid public API.
//
// Builds the synthetic LRE corpus, trains the six diversified front-ends,
// runs the PPRVSM baseline and one DBA pass (V = 3, both update modes),
// and prints EER/Cavg per duration tier — a miniature of the paper's
// headline experiment.
//
// Usage:  quickstart            (set PHONOLID_SCALE=quick for a fast run)
#include <cstdio>

#include "core/experiment.h"
#include "util/options.h"

int main() {
  using namespace phonolid;

  const auto scale = util::scale_from_env();
  std::printf("phonolid quickstart (scale=%s, seed=%llu)\n",
              util::to_string(scale),
              static_cast<unsigned long long>(util::master_seed()));

  // 1. Build everything: corpus, front-ends, supervectors, baseline VSMs.
  const auto config = core::ExperimentConfig::preset(scale, util::master_seed());
  const auto experiment = core::Experiment::build(config);
  std::printf("corpus: %zu languages, %zu train / %zu test utterances\n",
              experiment->num_languages(),
              experiment->corpus().vsm_train().size(),
              experiment->corpus().test().size());

  // 2. Baseline PPRVSM: fuse all six subsystems.
  std::vector<const core::SubsystemScores*> baseline_blocks;
  for (const auto& b : experiment->baseline_scores()) {
    baseline_blocks.push_back(&b);
  }
  const core::EvalResult baseline = experiment->evaluate(baseline_blocks);

  // 3. One DBA pass at the paper's optimal threshold V = 3 (scaled by the
  //    subsystem count if fewer than six front-ends are configured).
  const std::size_t v = 3;
  const auto selection = experiment->select(v);
  std::printf("\nDBA adopts %zu of %zu test utterances at V=%zu "
              "(hypothesised-label error %.1f%%)\n",
              selection.utt_index.size(), experiment->corpus().test().size(),
              v,
              100.0 * core::selection_error_rate(selection,
                                                 experiment->test_labels()));

  const auto m1 = experiment->run_dba(v, core::DbaMode::kM1);
  const auto m2 = experiment->run_dba(v, core::DbaMode::kM2);

  // 4. Fuse (DBA-M1)+(DBA-M2) with Eq. 15 weights, as in paper Table 4.
  std::vector<const core::SubsystemScores*> dba_blocks;
  for (const auto& b : m1) dba_blocks.push_back(&b);
  for (const auto& b : m2) dba_blocks.push_back(&b);
  std::vector<double> weights;
  for (int rep = 0; rep < 2; ++rep) {
    for (std::size_t count : selection.subsystem_fit_counts) {
      weights.push_back(static_cast<double>(count));
    }
  }
  const core::EvalResult dba = experiment->evaluate(dba_blocks, weights);

  std::printf("\n%-12s %14s %14s\n", "duration", "PPRVSM EER/Cavg",
              "DBA EER/Cavg");
  static const char* tiers[] = {"30s", "10s", "3s"};
  for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
    std::printf("%-12s %6.2f / %5.2f %7.2f / %5.2f\n", tiers[t],
                100.0 * baseline.tier[t].eer, 100.0 * baseline.tier[t].cavg,
                100.0 * dba.tier[t].eer, 100.0 * dba.tier[t].cavg);
  }
  std::printf("\n(values in %%; DBA should match or beat the baseline, with "
              "the largest relative gain on the shortest tier)\n");
  return 0;
}
