// dba_tuning — sweep the vote threshold V and both Tr_DBA update modes.
//
// Reproduces the *shape* of paper Tables 1-3 interactively: for each V it
// prints the adopted-set size and label error (Table 1) and the resulting
// EER per duration tier for DBA-M1 and DBA-M2 on one chosen front-end.
//
// Usage:  dba_tuning [frontend-index]      (default 0)
#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace phonolid;

  const std::size_t frontend =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 0;
  const auto scale = util::scale_from_env();
  const auto config = core::ExperimentConfig::preset(scale, util::master_seed());
  if (frontend >= config.frontends.size()) {
    std::fprintf(stderr, "frontend index out of range (have %zu)\n",
                 config.frontends.size());
    return 1;
  }
  std::printf("== DBA threshold sweep on front-end #%zu ==\n", frontend);
  const auto experiment = core::Experiment::build(config);
  std::printf("front-end: %s\n\n",
              experiment->subsystem(frontend).name().c_str());

  const core::EvalResult base =
      experiment->evaluate_single(experiment->baseline_scores()[frontend]);
  std::printf("%-8s %-9s %-9s | %-23s | %-23s\n", "V", "adopted", "err%",
              "M1 EER% (30s/10s/3s)", "M2 EER% (30s/10s/3s)");
  std::printf("%-8s %-9s %-9s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
              "base", "-", "-", 100.0 * base.tier[0].eer,
              100.0 * base.tier[1].eer, 100.0 * base.tier[2].eer,
              100.0 * base.tier[0].eer, 100.0 * base.tier[1].eer,
              100.0 * base.tier[2].eer);

  const std::size_t q = experiment->num_subsystems();
  for (std::size_t v = q; v >= 1; --v) {
    const auto sel = experiment->select(v);
    const double err =
        core::selection_error_rate(sel, experiment->test_labels());
    const auto m1 = experiment->run_dba(v, core::DbaMode::kM1);
    const auto m2 = experiment->run_dba(v, core::DbaMode::kM2);
    const auto r1 = experiment->evaluate_single(m1[frontend]);
    const auto r2 = experiment->evaluate_single(m2[frontend]);
    std::printf("%-8zu %-9zu %-9.2f | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
                v, sel.utt_index.size(), 100.0 * err,
                100.0 * r1.tier[0].eer, 100.0 * r1.tier[1].eer,
                100.0 * r1.tier[2].eer, 100.0 * r2.tier[0].eer,
                100.0 * r2.tier[1].eer, 100.0 * r2.tier[2].eer);
  }
  std::printf("\nExpected shape (paper §5.2): EER is U-shaped in V with the "
              "minimum at an intermediate threshold.\n");
  return 0;
}
