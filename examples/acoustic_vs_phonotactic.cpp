// acoustic_vs_phonotactic — the comparison the paper's introduction draws:
// acoustic language recognition (GMM over shifted-delta-cepstra, the
// paper's reference [3]) versus the phonotactic PPRVSM system and its DBA
// refinement, on the same synthetic LRE corpus.
//
// Note the synthetic languages are designed to differ *phonotactically*
// (shared phone inventory, different sequencing), so the phonotactic
// systems should dominate here — the regime the paper's systems target.
//
// Usage:  acoustic_vs_phonotactic       (PHONOLID_SCALE=quick for speed)
#include <cstdio>

#include "acoustic/gmm_lr.h"
#include "acoustic/ubm.h"
#include "core/experiment.h"
#include "eval/metrics.h"
#include "util/options.h"

int main() {
  using namespace phonolid;

  const auto scale = util::scale_from_env();
  std::printf("== acoustic (GMM-SDC) vs phonotactic (PPRVSM/DBA) LR "
              "(scale=%s) ==\n", util::to_string(scale));
  const auto config = core::ExperimentConfig::preset(scale, util::master_seed());
  const auto exp = core::Experiment::build(config);
  const std::size_t k = exp->num_languages();

  // --- Acoustic system. ---
  acoustic::GmmLrConfig lr_cfg;
  lr_cfg.seed = util::master_seed();
  const auto gmm_lr =
      acoustic::GmmLrSystem::train(exp->corpus().vsm_train(), k, lr_cfg);
  core::SubsystemScores gmm_block;
  gmm_block.dev = gmm_lr.score_all(exp->corpus().dev());
  gmm_block.test = gmm_lr.score_all(exp->corpus().test());
  const core::EvalResult acoustic_result = exp->evaluate_single(gmm_block);

  acoustic::UbmMapConfig ubm_cfg;
  ubm_cfg.seed = util::master_seed();
  const auto ubm_lr =
      acoustic::UbmLrSystem::train(exp->corpus().vsm_train(), k, ubm_cfg);
  core::SubsystemScores ubm_block;
  ubm_block.dev = ubm_lr.score_all(exp->corpus().dev());
  ubm_block.test = ubm_lr.score_all(exp->corpus().test());
  const core::EvalResult ubm_result = exp->evaluate_single(ubm_block);

  // --- Phonotactic systems. ---
  std::vector<const core::SubsystemScores*> blocks;
  for (const auto& b : exp->baseline_scores()) blocks.push_back(&b);
  const core::EvalResult pprvsm = exp->evaluate(blocks);

  const std::size_t v = std::min<std::size_t>(3, exp->num_subsystems());
  const auto selection = exp->select(v);
  const auto m1 = exp->run_dba(v, core::DbaMode::kM1);
  const auto m2 = exp->run_dba(v, core::DbaMode::kM2);
  std::vector<const core::SubsystemScores*> dba_blocks;
  for (const auto& b : m1) dba_blocks.push_back(&b);
  for (const auto& b : m2) dba_blocks.push_back(&b);
  std::vector<double> weights;
  for (int rep = 0; rep < 2; ++rep) {
    for (std::size_t c : selection.subsystem_fit_counts) {
      weights.push_back(static_cast<double>(c));
    }
  }
  const core::EvalResult dba = exp->evaluate(dba_blocks, std::move(weights));

  // --- Acoustic + phonotactic fusion (common in LRE submissions). ---
  std::vector<const core::SubsystemScores*> all_blocks = blocks;
  all_blocks.push_back(&gmm_block);
  const core::EvalResult combined = exp->evaluate(all_blocks);

  static const char* tiers[] = {"30s", "10s", "3s"};
  std::printf("\n%-34s %8s %8s %8s   (EER%%)\n", "system", "30s", "10s", "3s");
  const auto row = [&](const char* name, const core::EvalResult& r) {
    std::printf("%-34s", name);
    for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
      std::printf(" %8.2f", 100.0 * r.tier[t].eer);
    }
    std::printf("\n");
  };
  (void)tiers;
  row("acoustic GMM-SDC", acoustic_result);
  row("acoustic GMM-UBM (MAP)", ubm_result);
  row("phonotactic PPRVSM fusion", pprvsm);
  row("phonotactic DBA (M1+M2, V=3)", dba);
  row("PPRVSM + acoustic fusion", combined);
  return 0;
}
