// frontend_explorer — inspect each front-end of the PPRVSM system.
//
// For every front-end this example reports:
//   * the phone-set size and supervector dimensionality,
//   * phone error rate (PER) of the 1-best decode against ground truth on
//     held-out native-language speech,
//   * identification accuracy of the baseline VSM on the training set and
//     on each test duration tier,
//   * the strict-vote rate (how often paper Eq. 13 fires).
//
// Usage:  frontend_explorer            (PHONOLID_SCALE=quick|default|full)
#include <algorithm>
#include <cstdio>
#include <vector>

#include "am/gmm_hmm.h"
#include "core/experiment.h"
#include "util/options.h"

namespace {

using namespace phonolid;

/// Levenshtein distance between phone sequences (for PER).
std::size_t edit_distance(const std::vector<std::uint32_t>& a,
                          const std::vector<std::uint32_t>& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

double tier_accuracy(const core::Experiment& exp, const util::Matrix& scores,
                     corpus::DurationTier tier) {
  const auto idx = exp.corpus().test_indices(tier);
  std::size_t correct = 0;
  for (std::size_t i : idx) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < scores.cols(); ++c) {
      if (scores(i, c) > scores(i, best)) best = c;
    }
    if (static_cast<std::int32_t>(best) == exp.test_labels()[i]) ++correct;
  }
  return idx.empty() ? 0.0
                     : static_cast<double>(correct) / static_cast<double>(idx.size());
}

}  // namespace

int main() {
  const auto scale = util::scale_from_env();
  std::printf("== phonolid front-end explorer (scale=%s) ==\n",
              util::to_string(scale));
  const auto config = core::ExperimentConfig::preset(scale, util::master_seed());
  const auto exp = core::Experiment::build(config);
  const auto& corpus = exp->corpus();

  for (std::size_t q = 0; q < exp->num_subsystems(); ++q) {
    const core::Subsystem& sub = exp->subsystem(q);
    std::printf("\n--- %s ---\n", sub.name().c_str());
    std::printf("phones: %zu   supervector dim: %zu\n",
                sub.spec().num_phones, sub.supervector_dim());

    // Phone error rate on native speech (decode vs mapped ground truth).
    const auto& native = corpus.am_train(sub.spec().native_language);
    std::size_t errs = 0, total = 0;
    const std::size_t sample = std::min<std::size_t>(native.size(), 10);
    for (std::size_t i = 0; i < sample; ++i) {
      const auto lattice = sub.decode(native[i]);
      std::vector<std::uint32_t> truth;
      for (const auto& seg : native[i].alignment) {
        const auto phone =
            static_cast<std::uint32_t>(sub.phone_map().map(seg.phone));
        if (truth.empty() || truth.back() != phone) truth.push_back(phone);
      }
      errs += edit_distance(lattice.best_path(), truth);
      total += truth.size();
    }
    std::printf("phone error rate (native, %zu utts): %.1f%%\n", sample,
                100.0 * static_cast<double>(errs) / static_cast<double>(total));

    // VSM accuracies.
    const auto& scores = exp->baseline_scores()[q];
    std::printf("test identification accuracy: 30s %.1f%%  10s %.1f%%  3s %.1f%%\n",
                100.0 * tier_accuracy(*exp, scores.test, corpus::DurationTier::k30s),
                100.0 * tier_accuracy(*exp, scores.test, corpus::DurationTier::k10s),
                100.0 * tier_accuracy(*exp, scores.test, corpus::DurationTier::k3s));

    // Strict-vote rate (paper Eq. 13).
    std::size_t votes = 0;
    const auto& v = exp->votes();
    for (std::size_t j = 0; j < v.num_utts; ++j) {
      for (std::size_t k = 0; k < v.num_classes; ++k) {
        if (v.vote(q, j, k)) {
          ++votes;
          break;
        }
      }
    }
    std::printf("strict-vote rate: %.1f%%\n",
                100.0 * static_cast<double>(votes) /
                    static_cast<double>(v.num_utts));
  }

  // Pooled vote-count histogram (drives Table 1).
  const auto& v = exp->votes();
  std::vector<std::size_t> hist(exp->num_subsystems() + 1, 0);
  for (std::size_t j = 0; j < v.num_utts; ++j) {
    std::uint16_t best = 0;
    for (std::size_t k = 0; k < v.num_classes; ++k) {
      best = std::max(best, v.count(j, k));
    }
    ++hist[best];
  }
  std::printf("\nvote-count histogram over %zu test utterances:\n", v.num_utts);
  for (std::size_t c = 0; c < hist.size(); ++c) {
    std::printf("  %zu votes: %zu\n", c, hist[c]);
  }
  return 0;
}
