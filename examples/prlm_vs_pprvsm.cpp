// prlm_vs_pprvsm — three generations of phonotactic language recognition
// on one front-end:
//   1. PRLM   (Zissman 1996, paper ref. [2]): per-language N-gram LMs over
//              the 1-best decoded phone stream,
//   2. PPRVSM (paper baseline): TFLLR supervectors + one-vs-rest SVM,
//   3. DBA    (the paper's contribution) on top of the same subsystem.
//
// Expected: PPRVSM > PRLM (the motivation for VSM), and DBA >= PPRVSM.
//
// Usage:  prlm_vs_pprvsm [frontend-index]    (PHONOLID_SCALE=quick for speed)
#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "phonotactic/ngram_lm.h"
#include "util/options.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace phonolid;

  const std::size_t frontend =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 0;
  const auto scale = util::scale_from_env();
  const auto config = core::ExperimentConfig::preset(scale, util::master_seed());
  if (frontend >= config.frontends.size()) {
    std::fprintf(stderr, "frontend index out of range\n");
    return 1;
  }
  std::printf("== PRLM vs PPRVSM vs DBA (scale=%s) ==\n", util::to_string(scale));
  const auto exp = core::Experiment::build(config);
  const core::Subsystem& sub = exp->subsystem(frontend);
  const std::size_t k = exp->num_languages();
  std::printf("front-end: %s\n", sub.name().c_str());

  // --- PRLM: decode 1-best phone streams for train and test. ---
  const auto decode_all = [&](const corpus::Dataset& data) {
    std::vector<std::vector<std::uint32_t>> out(data.size());
    util::parallel_for(0, data.size(), [&](std::size_t i) {
      out[i] = sub.decode(data[i]).best_path();
    });
    return out;
  };
  const auto train_seqs = decode_all(exp->corpus().vsm_train());
  const auto dev_seqs = decode_all(exp->corpus().dev());
  const auto test_seqs = decode_all(exp->corpus().test());

  phonotactic::NgramLmConfig lm_cfg;
  lm_cfg.order = 3;
  const auto prlm = phonotactic::PrlmSystem::train(
      train_seqs, exp->train_labels(), k, sub.spec().num_phones, lm_cfg);
  core::SubsystemScores prlm_block;
  prlm_block.dev = prlm.score_all(dev_seqs);
  prlm_block.test = prlm.score_all(test_seqs);
  const core::EvalResult prlm_result = exp->evaluate_single(prlm_block);

  // --- PPRVSM and DBA on the same subsystem. ---
  const core::EvalResult pprvsm =
      exp->evaluate_single(exp->baseline_scores()[frontend]);
  const std::size_t v = std::min<std::size_t>(3, exp->num_subsystems());
  const auto m2 = exp->run_dba(v, core::DbaMode::kM2);
  const core::EvalResult dba = exp->evaluate_single(m2[frontend]);

  std::printf("\n%-28s %8s %8s %8s   (EER%%)\n", "system", "30s", "10s", "3s");
  const auto row = [&](const char* name, const core::EvalResult& r) {
    std::printf("%-28s", name);
    for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
      std::printf(" %8.2f", 100.0 * r.tier[t].eer);
    }
    std::printf("\n");
  };
  row("PRLM (3-gram LM, 1-best)", prlm_result);
  row("PPRVSM (TFLLR + SVM)", pprvsm);
  row("DBA-M2 (V=3)", dba);
  return 0;
}
