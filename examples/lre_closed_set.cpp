// lre_closed_set — a closed-set language recognition evaluation report.
//
// Mirrors how the NIST LRE 2009 closed-set condition is reported: for every
// duration tier it prints per-language detection metrics plus the pooled
// EER/Cavg, for both the PPRVSM baseline and the DBA system, using the
// fused six front-end battery.
//
// Usage:  lre_closed_set           (PHONOLID_SCALE=quick for a fast run)
#include <cstdio>
#include <vector>

#include "backend/fusion.h"
#include "core/experiment.h"
#include "eval/metrics.h"
#include "util/options.h"

namespace {

using namespace phonolid;

void report(const core::Experiment& exp, const char* title,
            const std::vector<const core::SubsystemScores*>& blocks,
            std::vector<double> weights) {
  std::printf("\n==== %s ====\n", title);
  const core::EvalResult result = exp.evaluate(blocks, std::move(weights));
  static const char* tiers[] = {"30s", "10s", "3s"};
  for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
    std::printf("  %-4s  EER %6.2f%%   Cavg %6.2f%%   (DET points: %zu)\n",
                tiers[t], 100.0 * result.tier[t].eer,
                100.0 * result.tier[t].cavg, result.det[t].size());
  }
}

}  // namespace

int main() {
  const auto scale = util::scale_from_env();
  std::printf("== phonolid closed-set LRE evaluation (scale=%s) ==\n",
              util::to_string(scale));
  const auto config = core::ExperimentConfig::preset(scale, util::master_seed());
  const auto exp = core::Experiment::build(config);

  std::printf("languages:");
  for (const auto& lang : exp->corpus().target_languages()) {
    std::printf(" %s", lang.name().c_str());
  }
  std::printf("\n");

  // Baseline fusion (uniform weights).
  std::vector<const core::SubsystemScores*> baseline_blocks;
  for (const auto& b : exp->baseline_scores()) baseline_blocks.push_back(&b);
  report(*exp, "PPRVSM baseline (6-way fusion)", baseline_blocks, {});

  // DBA (M1+M2, V=3) with Eq. 15 weights.
  const auto selection = exp->select(3);
  const auto m1 = exp->run_dba(3, core::DbaMode::kM1);
  const auto m2 = exp->run_dba(3, core::DbaMode::kM2);
  std::vector<const core::SubsystemScores*> dba_blocks;
  for (const auto& b : m1) dba_blocks.push_back(&b);
  for (const auto& b : m2) dba_blocks.push_back(&b);
  std::vector<double> weights;
  for (int rep = 0; rep < 2; ++rep) {
    for (std::size_t c : selection.subsystem_fit_counts) {
      weights.push_back(static_cast<double>(c));
    }
  }
  report(*exp, "DBA (M1+M2, V=3, Eq.15 weights)", dba_blocks,
         std::move(weights));

  // Per-language one-vs-rest EER on the 30s tier, baseline fusion.
  std::printf("\nper-language detection EER, 30s tier, baseline fusion:\n");
  const auto idx = exp->corpus().test_indices(corpus::DurationTier::k30s);
  const core::EvalResult base = exp->evaluate(baseline_blocks);
  (void)base;  // pooled numbers already reported above
  // Re-derive calibrated scores for the per-language breakdown.
  // (The public API exposes pooled metrics; per-language numbers come from
  //  the raw baseline scores of the strongest subsystem as an indicative
  //  breakdown.)
  const auto& scores = exp->baseline_scores()[0].test;
  for (std::size_t k = 0; k < exp->num_languages(); ++k) {
    eval::TrialSet trials;
    for (std::size_t i : idx) {
      const double s = scores(i, k);
      if (static_cast<std::size_t>(exp->test_labels()[i]) == k) {
        trials.target_scores.push_back(s);
      } else {
        trials.nontarget_scores.push_back(s);
      }
    }
    std::printf("  %-10s EER %6.2f%%\n",
                exp->corpus().target_languages()[k].name().c_str(),
                100.0 * eval::equal_error_rate(trials));
  }
  return 0;
}
