#!/usr/bin/env bash
# Regenerate the committed run-report baselines that `phonolid report-diff`
# gates against (see DESIGN.md "Observability" and scripts/tier1.sh).
#
#   scripts/bench_baseline.sh [scale]     # scale: quick|default|full
#
# Writes BENCH_<scale>_{run,det,votes}.json at the repo root from the CLI
# subcommands.  Reports embed wall-clock span timings, so regenerate on the
# reference machine before committing; the tier-1 gate only checks the
# deterministic accuracy leaves (EER/Cavg), never timings, exactly so that
# baselines stay meaningful across machines.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-default}"
case "$SCALE" in
  quick|default|full) ;;
  *) echo "usage: $0 [quick|default|full]" >&2; exit 2 ;;
esac

PHONOLID="build/tools/phonolid"
if [[ ! -x "$PHONOLID" ]]; then
  echo "error: $PHONOLID not built (run: cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

# All three commands build the same experiment, so share one artifact store:
# `run` trains and decodes everything cold, `det` and `votes` pull every
# stage warm.  The same store also serves the bench/ binaries (they read
# $PHONOLID_CACHE via Experiment::build).  Accuracy leaves are unaffected —
# artifacts are bit-identical to a cold computation by construction.
export PHONOLID_CACHE="${PHONOLID_CACHE:-$PWD/.phonolid-cache}"
echo "=== artifact store: $PHONOLID_CACHE"

for cmd in run det votes; do
  out="BENCH_${SCALE}_${cmd}.json"
  echo "=== $cmd --scale $SCALE -> $out"
  "$PHONOLID" "$cmd" --scale "$SCALE" --report "$out"
done

echo "baselines written: BENCH_${SCALE}_{run,det,votes}.json"
