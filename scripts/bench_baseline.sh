#!/usr/bin/env bash
# Regenerate the committed run-report baselines that `phonolid report-diff`
# gates against (see DESIGN.md "Observability" and scripts/tier1.sh).
#
#   scripts/bench_baseline.sh [scale]     # scale: quick|default|full
#
# Writes BENCH_<scale>_{run,det,votes}.json at the repo root from the CLI
# subcommands.  Reports embed wall-clock span timings, so regenerate on the
# reference machine before committing; the tier-1 gate only checks the
# deterministic accuracy leaves (EER/Cavg), never timings, exactly so that
# baselines stay meaningful across machines.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-default}"
case "$SCALE" in
  quick|default|full) ;;
  *) echo "usage: $0 [quick|default|full]" >&2; exit 2 ;;
esac

PHONOLID="build/tools/phonolid"
if [[ ! -x "$PHONOLID" ]]; then
  echo "error: $PHONOLID not built (run: cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

# Baselines always carry the deterministic software energy model so the
# tier-1 energy gate (`report-diff --max-energy-delta-pct`) has joule leaves
# to compare.  NOTE: software joules measure work actually done — regenerate
# BENCH_<scale>_run.json with a *fresh* store (unset/clear PHONOLID_CACHE)
# or the warm `run` will bake in a fraction of the cold energy and the
# tier-1 cold-cache smoke will trip its gate.
export PHONOLID_ENERGY=software

# Baselines never carry live profile data: sample counts and shares are
# machine-dependent, so a baseline with them would make every tier-1
# self-share diff noisy.  The committed reports record the profiler as
# explicitly off; profiled runs still diff clean against them (a missing
# numeric profile section is a note, never a violation).
export PHONOLID_PROFILE=off

# All three commands build the same experiment, so share one artifact store:
# `run` trains and decodes everything cold, `det` and `votes` pull every
# stage warm.  The same store also serves the bench/ binaries (they read
# $PHONOLID_CACHE via Experiment::build).  Accuracy leaves are unaffected —
# artifacts are bit-identical to a cold computation by construction.
export PHONOLID_CACHE="${PHONOLID_CACHE:-$PWD/.phonolid-cache}"
echo "=== artifact store: $PHONOLID_CACHE"

for cmd in run det votes; do
  out="BENCH_${SCALE}_${cmd}.json"
  echo "=== $cmd --scale $SCALE -> $out"
  "$PHONOLID" "$cmd" --scale "$SCALE" --report "$out"
done

# Serve baseline (quick scale only — that is what tier-1 gates): freeze a
# bundle from the warm store, bring up the daemon on an ephemeral port, and
# record the load generator's report as BENCH_serve.json.  The gated leaves
# (latency p99/p99.9, throughput, per-phase p99 from the daemon's phase
# histograms) are machine-dependent, which is why tier-1 applies only
# order-of-magnitude thresholds to them.
if [[ "$SCALE" == "quick" ]]; then
  echo "=== bench_serve -> BENCH_serve.json"
  TMP="$(mktemp -d)"
  trap 'rm -rf "$TMP"' EXIT
  "$PHONOLID" run --scale quick --ledger "$TMP/offline.jsonl" > /dev/null
  "$PHONOLID" freeze --scale quick --out "$TMP/bundle" > /dev/null
  "$PHONOLID" serve --bundle "$TMP/bundle" --port 0 \
    --port-file "$TMP/serve.port" > "$TMP/serve.log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$TMP/serve.port" ] && break
    sleep 0.1
  done
  ./build/bench/bench_serve --port "$(cat "$TMP/serve.port")" --scale quick \
    --connections 8 --ledger "$TMP/offline.jsonl" --min-batch-p50 2 \
    --report BENCH_serve.json
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID"
  echo "baseline written: BENCH_serve.json"
fi

echo "baselines written: BENCH_${SCALE}_{run,det,votes}.json"
