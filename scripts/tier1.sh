#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): full build + test suite, then the
# concurrency-sensitive tests again under ThreadSanitizer to vet the
# lock-free obs metrics / trace-span plumbing and the thread pool, then a
# quick-scale end-to-end run with the flight recorder on, gated against the
# committed baseline report via `phonolid report-diff`.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

cmake -B build-tsan -S . -DPHONOLID_SANITIZE=thread
cmake --build build-tsan -j --target test_obs test_thread_pool test_pipeline_store test_la_kernels
./build-tsan/tests/test_obs
./build-tsan/tests/test_thread_pool
./build-tsan/tests/test_pipeline_store
./build-tsan/tests/test_la_kernels

# Kernel microbenchmark smoke: one repetition at minimal time, just to prove
# the harness runs and every registered shape executes.
cmake --build build -j --target bench_kernels
./build/bench/bench_kernels --benchmark_min_time=0.01

# End-to-end observability smoke: a traced quick run must produce a loadable
# Chrome trace, Prometheus text, and a schema-v1 report that (a) diffs clean
# against itself and (b) keeps the deterministic accuracy leaves (EER/Cavg)
# within +0.02 of the committed baseline.  Span timings are never gated here
# (they are machine-dependent); BENCH_*.json track the reference trajectory.
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
# Artifact store: $PHONOLID_CACHE (CI restores one across runs) or a temp
# dir.  Either way the cold/warm pair below shares it.
CACHE_DIR="${PHONOLID_CACHE:-$TMP/cache}"
PHONOLID_TRACE="$TMP/quick.trace.json" PHONOLID_PROM="$TMP/quick.prom" \
  ./build/tools/phonolid run --scale quick --report "$TMP/quick.report.json" \
  --cache-dir "$CACHE_DIR"
test -s "$TMP/quick.trace.json"
test -s "$TMP/quick.prom"
./build/tools/phonolid report-diff "$TMP/quick.report.json" "$TMP/quick.report.json" > /dev/null
./build/tools/phonolid report-diff BENCH_quick_run.json "$TMP/quick.report.json" \
  --max-eer-delta 0.02

# Artifact-store determinism gate: the warm run (every stage a cache hit)
# must reproduce the cold run's accuracy leaves *exactly* — zero EER/Cavg
# delta — while skipping AM training and decoding entirely.
./build/tools/phonolid run --scale quick --report "$TMP/warm.report.json" \
  --cache-dir "$CACHE_DIR"
./build/tools/phonolid report-diff "$TMP/quick.report.json" "$TMP/warm.report.json" \
  --max-eer-delta 0
./build/tools/phonolid pipeline status --cache-dir "$CACHE_DIR"
./build/tools/phonolid pipeline gc --cache-dir "$CACHE_DIR"

echo "tier-1 OK"
