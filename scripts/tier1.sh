#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): full build + test suite, then the
# concurrency-sensitive tests again under ThreadSanitizer to vet the
# lock-free obs metrics / trace-span plumbing and the thread pool.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

cmake -B build-tsan -S . -DPHONOLID_SANITIZE=thread
cmake --build build-tsan -j --target test_obs test_thread_pool
./build-tsan/tests/test_obs
./build-tsan/tests/test_thread_pool

echo "tier-1 OK"
