#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): full build + test suite, then the
# concurrency-sensitive tests again under ThreadSanitizer to vet the
# lock-free obs metrics / trace-span plumbing, the sampling profiler's
# signal handler, and the thread pool, then a quick-scale end-to-end run
# with the flight recorder on, gated against the committed baseline report
# via `phonolid report-diff`, plus a profiled run that must yield folded
# stacks and >= 95% sample attribution.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
# Unit/integration tests must be hermetic: a restored $PHONOLID_CACHE would
# serve the integration fixture warm artifacts and zero out the stage times
# it asserts on.  The artifact store is exercised explicitly below.
(cd build && env -u PHONOLID_CACHE ctest --output-on-failure -j)

cmake -B build-tsan -S . -DPHONOLID_SANITIZE=thread
cmake --build build-tsan -j --target test_obs test_thread_pool test_pipeline_store test_la_kernels test_perf_energy test_profiler test_streaming test_serve
./build-tsan/tests/test_obs
./build-tsan/tests/test_thread_pool
./build-tsan/tests/test_pipeline_store
./build-tsan/tests/test_la_kernels
./build-tsan/tests/test_perf_energy
./build-tsan/tests/test_profiler
./build-tsan/tests/test_streaming
./build-tsan/tests/test_serve

# Kernel microbenchmark smoke: one repetition at minimal time, just to prove
# the harness runs and every registered shape executes.
cmake --build build -j --target bench_kernels
./build/bench/bench_kernels --benchmark_min_time=0.01

# End-to-end observability smoke: a traced quick run must produce a loadable
# Chrome trace, Prometheus text, a decision ledger, and a schema-v1 report
# that (a) diffs clean against itself and (b) keeps the deterministic
# accuracy leaves (EER/Cavg) and the quality section (Cllr, adoption
# precision) within budget of the committed baseline.  Span timings are
# never gated here (they are machine-dependent); BENCH_*.json track the
# reference trajectory.
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
# Artifact store: $PHONOLID_CACHE (CI restores one across runs) or a temp
# dir.  Either way the cold/warm pair below shares it.
CACHE_DIR="${PHONOLID_CACHE:-$TMP/cache}"
PHONOLID_TRACE="$TMP/quick.trace.json" PHONOLID_PROM="$TMP/quick.prom" \
  ./build/tools/phonolid run --scale quick --report "$TMP/quick.report.json" \
  --ledger "$TMP/quick.ledger.jsonl" --cache-dir "$CACHE_DIR"
test -s "$TMP/quick.trace.json"
test -s "$TMP/quick.prom"
test -s "$TMP/quick.ledger.jsonl"
./build/tools/phonolid report-diff "$TMP/quick.report.json" "$TMP/quick.report.json" > /dev/null
./build/tools/phonolid report-diff BENCH_quick_run.json "$TMP/quick.report.json" \
  --max-eer-delta 0.02 --max-cavg-delta 0.02 --max-cllr-delta 0.25 \
  --max-adoption-precision-drop 0.05

# Artifact-store determinism gate: the warm run (every stage a cache hit)
# must reproduce the cold run's accuracy leaves *exactly* — zero EER/Cavg
# delta — while skipping AM training and decoding entirely.  The decision
# ledger must come out byte-identical regardless of thread count or cache
# temperature: it is the explainability record, so any nondeterminism here
# is a bug, not noise.
PHONOLID_THREADS=1 ./build/tools/phonolid run --scale quick \
  --report "$TMP/warm.report.json" --ledger "$TMP/warm_t1.ledger.jsonl" \
  --cache-dir "$CACHE_DIR"
PHONOLID_THREADS=4 ./build/tools/phonolid run --scale quick \
  --ledger "$TMP/warm_t4.ledger.jsonl" --cache-dir "$CACHE_DIR"
cmp "$TMP/quick.ledger.jsonl" "$TMP/warm_t1.ledger.jsonl"
cmp "$TMP/quick.ledger.jsonl" "$TMP/warm_t4.ledger.jsonl"
./build/tools/phonolid report-diff "$TMP/quick.report.json" "$TMP/warm.report.json" \
  --max-eer-delta 0
./build/tools/phonolid pipeline status --cache-dir "$CACHE_DIR"
./build/tools/phonolid pipeline gc --cache-dir "$CACHE_DIR"

# Streaming-equivalence gate: the batch pipeline is a single-chunk streaming
# session, so a chunked run must reproduce the batch run bit-for-bit — the
# decision ledger comes out byte-identical for ANY --chunk-ms and the
# accuracy leaves diff at zero tolerance.  Cold cache dirs on purpose: the
# chunking deliberately does not enter stage keys (warm artifacts are valid
# across chunkings — that is this very equivalence), so a warm store would
# serve the batch run's artifacts and prove nothing.  The first run also
# turns on checkpoint LLRs, which must leave a "streaming" section in the
# report without perturbing the ledger.
./build/tools/phonolid run --scale quick --chunk-ms 17 --stream-checkpoint-s 0.5 \
  --report "$TMP/stream17.report.json" --ledger "$TMP/stream17.ledger.jsonl" \
  --cache-dir "$TMP/stream17-cache"
cmp "$TMP/quick.ledger.jsonl" "$TMP/stream17.ledger.jsonl"
./build/tools/phonolid report-diff "$TMP/quick.report.json" \
  "$TMP/stream17.report.json" --max-eer-delta 0
grep -q '"streaming"' "$TMP/stream17.report.json"
./build/tools/phonolid run --scale quick --chunk-ms 250 \
  --ledger "$TMP/stream250.ledger.jsonl" --cache-dir "$TMP/stream250-cache"
cmp "$TMP/quick.ledger.jsonl" "$TMP/stream250.ledger.jsonl"
# Invalid streaming flags must exit 2 before any work happens.
rc=0
./build/tools/phonolid run --scale quick --chunk-ms 0 2> /dev/null || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "run: --chunk-ms 0 should exit 2 (got $rc)" >&2
  exit 1
fi

# Energy-accounting smoke: a run with the deterministic software cost model
# must stay within 1% of the committed baseline's joules.  This run gets its
# own cold cache dir on purpose — software joules measure work actually
# done, so a warm store (which skips AM training and decoding) would report
# a fraction of the baseline's energy and trip the gate spuriously.  The
# sampling CPU profiler rides along on the same run (software joules count
# work, not wall time, so sampling cannot perturb the energy gate) and must
# leave folded stacks plus a populated "profile" report section behind.
PHONOLID_ENERGY=software PHONOLID_PROFILE=cpu \
  PHONOLID_PROFILE_OUT="$TMP/quick.folded" \
  ./build/tools/phonolid run --scale quick \
  --report "$TMP/energy.report.json" --cache-dir "$TMP/energy-cache"
test -s "$TMP/quick.folded"
./build/tools/phonolid report-diff BENCH_quick_run.json "$TMP/energy.report.json" \
  --max-energy-delta-pct 1 --max-eer-delta 0.02 --max-cavg-delta 0.02 \
  --max-cllr-delta 0.25 --max-adoption-precision-drop 0.05 \
  --max-self-share-delta 0.2
# Per-stage watts table, kept with the CI artifacts.
./build/tools/phonolid power --input "$TMP/energy.report.json" \
  | tee "$TMP/quick.power.txt"
# Flame table from the same report; the profile must attribute >= 95% of
# samples to named functions (the profiler is useless if most samples only
# say "libm.so.6+0x..."), and the self-share gate must pass a self-diff at
# a zero threshold (identical reports have zero share deltas).
./build/tools/phonolid flame --input "$TMP/energy.report.json" \
  | tee "$TMP/quick.flame.txt"
grep -Eo '[0-9.]+% of samples attributed' "$TMP/quick.flame.txt" \
  | awk -F% '{ if ($1 < 95) { print "profile attribution below 95%: " $1 "%"; exit 1 } }'
./build/tools/phonolid report-diff "$TMP/energy.report.json" \
  "$TMP/energy.report.json" --max-self-share-delta 0 > /dev/null

# Decision-ledger surface smoke: diag must summarize the ledger, explain
# must resolve a recorded utterance id, and an unknown id must exit 2.
./build/tools/phonolid diag --ledger "$TMP/quick.ledger.jsonl" > /dev/null
./build/tools/phonolid explain 0 --scale quick --ledger "$TMP/quick.ledger.jsonl" > /dev/null
rc=0
./build/tools/phonolid explain 999999999 --scale quick \
  --ledger "$TMP/quick.ledger.jsonl" 2> /dev/null || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "explain: unknown id should exit 2 (got $rc)" >&2
  exit 1
fi

# Serve gate: the train/infer split end to end.  Freeze a bundle from the
# warm cache, serve it as a daemon, and drive it with the closed-loop load
# generator.  The daemon's LLRs must come out byte-identical to the offline
# run's decision ledger (`cmp` of two %.17g dumps — batching and transport
# must never change an answer), micro-batching must actually engage
# (batch-size p50 >= 2 with 8 concurrent connections), and the serve report
# diffs against the committed baseline with deliberately generous gates:
# bucketed p99 on a loaded daemon is noisy, so only order-of-magnitude
# regressions should trip CI.  The admin HTTP plane is exercised live:
# /healthz must answer ok before and during load, /metrics must scrape
# during load, and after the load the scrape's serve_requests_total must
# equal the requests_total the daemon reports in its own stats document
# (/statusz) — the pull-based plane and the kStats frame are two views of
# the same ledger.  Per-phase p99/p99.9 gate separately from end-to-end
# latency so a queue-wait regression cannot hide behind fast compute.
# SIGTERM must drain gracefully (exit 0).
./build/tools/phonolid freeze --scale quick --out "$TMP/bundle" \
  --cache-dir "$CACHE_DIR"
./build/tools/phonolid serve --bundle "$TMP/bundle" --port 0 \
  --port-file "$TMP/serve.port" --admin-port 0 \
  --admin-port-file "$TMP/admin.port" > "$TMP/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$TMP/serve.port" ] && [ -s "$TMP/admin.port" ] && break
  if ! kill -0 "$SERVE_PID" 2> /dev/null; then
    echo "serve daemon died during startup:" >&2
    cat "$TMP/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done
test -s "$TMP/serve.port"
test -s "$TMP/admin.port"
ADMIN_URL="http://127.0.0.1:$(cat "$TMP/admin.port")"
curl -fsS "$ADMIN_URL/healthz" | grep -qx "ok"
./build/bench/bench_serve --port "$(cat "$TMP/serve.port")" --scale quick \
  --connections 8 --ledger "$TMP/quick.ledger.jsonl" \
  --llr-out "$TMP/serve_llr.txt" --expected-llr "$TMP/expected_llr.txt" \
  --min-batch-p50 2 --report "$TMP/serve.report.json" &
BENCH_PID=$!
# Scrapes during load: read-only, must succeed, must not perturb scoring.
# (healthz may honestly answer 503 while the queue is at the shed threshold,
# so only the metrics/statusz scrapes demand a 200 here.)
curl -sS "$ADMIN_URL/healthz" > /dev/null
curl -fsS "$ADMIN_URL/metrics" > "$TMP/during.prom"
curl -fsS "$ADMIN_URL/statusz" > /dev/null
wait "$BENCH_PID"
cmp "$TMP/serve_llr.txt" "$TMP/expected_llr.txt"
# Post-load, with the daemon idle: the Prometheus scrape and the daemon's
# own stats document must agree exactly on how many PLSV requests ran
# (admin scrapes are metered separately and must not inflate it).
curl -fsS "$ADMIN_URL/metrics" > "$TMP/serve.prom"
curl -fsS "$ADMIN_URL/statusz" > "$TMP/serve.statusz.json"
SCRAPE_TOTAL="$(awk '/^phonolid_serve_requests_total /{print $2}' "$TMP/serve.prom")"
STATS_TOTAL="$(python3 -c 'import json,sys
print(int(json.load(open(sys.argv[1]))["requests_total"]))' "$TMP/serve.statusz.json")"
if [ "${SCRAPE_TOTAL%.*}" != "$STATS_TOTAL" ]; then
  echo "serve: /metrics requests_total ($SCRAPE_TOTAL) != /statusz requests_total ($STATS_TOTAL)" >&2
  exit 1
fi
./build/tools/phonolid report-diff BENCH_serve.json "$TMP/serve.report.json" \
  --max-serve-p99-regress 400 --max-serve-throughput-drop 90 \
  --max-phase-p99-regress 400
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q "drained and stopped" "$TMP/serve.log"

# Keep the run artifacts around for CI upload (the mktemp dir is wiped on
# exit).
ARTIFACTS="build/tier1-artifacts"
rm -rf "$ARTIFACTS" && mkdir -p "$ARTIFACTS"
cp "$TMP/quick.report.json" "$TMP/quick.ledger.jsonl" "$TMP/quick.trace.json" \
   "$TMP/quick.prom" "$TMP/energy.report.json" "$TMP/quick.power.txt" \
   "$TMP/quick.folded" "$TMP/quick.flame.txt" \
   "$TMP/serve.report.json" "$TMP/serve.log" \
   "$TMP/serve.prom" "$TMP/serve.statusz.json" \
   "$ARTIFACTS/"

echo "tier-1 OK"
