// Table 5 + cost model (paper §5.4-5.5): real-time factors of each pipeline
// stage for PPRVSM vs DBA, and the measured C_DBA / C_baseline ratio.
//
// The paper reports (HU front-end, 30s test): decoding RT 0.11 for both
// systems, supervector generation and supervector product roughly doubling
// under DBA (two VSM passes) — negligible next to decoding, hence
// C_DBA/C_baseline ~= 1 (Eq. 19).
//
// Stage timings use google-benchmark on a subsystem built at quick scale;
// the cost model section aggregates whole-pipeline wall time.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <span>
#include <vector>

#include "bench_common.h"
#include "core/experiment.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/options.h"

namespace {

using namespace phonolid;

/// One lazily-built shared experiment for all benchmarks in this binary.
core::Experiment& experiment() {
  static std::unique_ptr<core::Experiment> exp = [] {
    auto cfg = core::ExperimentConfig::preset(util::Scale::kQuick,
                                              util::master_seed());
    // One ANN front-end (the paper's Table 5 uses the HU front-end) plus a
    // GMM front-end for contrast.
    auto all = core::default_frontends(util::Scale::kQuick);
    cfg.frontends = {all[0], all[5]};
    return core::Experiment::build(cfg);
  }();
  return *exp;
}

const corpus::Utterance& long_test_utterance() {
  const auto& corpus = experiment().corpus();
  const auto idx = corpus.test_indices(corpus::DurationTier::k30s);
  return corpus.test()[idx.front()];
}

void BM_Decoding(benchmark::State& state) {
  const auto& sub = experiment().subsystem(static_cast<std::size_t>(state.range(0)));
  const auto& utt = long_test_utterance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sub.decode(utt));
  }
  const double audio_s = static_cast<double>(utt.samples.size()) / 8000.0;
  state.counters["rt_factor"] = benchmark::Counter(
      state.iterations() * audio_s,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_Decoding)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SupervectorGeneration(benchmark::State& state) {
  // Full chain (features + decode + counts); dominated by decode, like the
  // paper's "SV gen." column which excludes only the phone decoding.
  const auto& sub = experiment().subsystem(static_cast<std::size_t>(state.range(0)));
  const auto& utt = long_test_utterance();
  const auto lattice = sub.decode(utt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sub.process(utt));
  }
}
BENCHMARK(BM_SupervectorGeneration)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SupervectorProduct(benchmark::State& state) {
  // Scoring one supervector against all K language models (the paper's
  // "SV prod." column).  DBA doubles this work (baseline + re-trained VSM).
  const auto& exp = experiment();
  const auto& model = exp.baseline_vsm(0);
  const auto& sv = exp.test_svs(0).front();
  std::vector<float> scores(exp.num_languages());
  for (auto _ : state) {
    model.score(sv, scores);
    benchmark::DoNotOptimize(scores);
  }
}
BENCHMARK(BM_SupervectorProduct)->Unit(benchmark::kMicrosecond);

void BM_VsmTraining(benchmark::State& state) {
  // Cost of one VSM (re-)training pass — the only extra work DBA does.
  const auto& exp = experiment();
  svm::VsmTrainConfig cfg = exp.config().vsm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svm::VsmModel::train(
        exp.train_svs(0), exp.train_labels(), exp.num_languages(),
        exp.subsystem(0).supervector_dim(), cfg));
  }
}
BENCHMARK(BM_VsmTraining)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Energy/perf accounting must be live before the lazily-built experiment
  // trains and decodes (this bench builds it directly, not through
  // bench::build_experiment).
  obs::enable_recorder_from_env();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // --- Cost-model section (paper Eq. 16-19). ---
  const auto& exp = experiment();
  core::StageTimes total;
  for (std::size_t q = 0; q < exp.num_subsystems(); ++q) {
    total += exp.subsystem(q).stage_times();
  }
  const double c_phi = total.feature_s + total.decode_s + total.supervector_s;
  // DBA adds one more VSM training + one more scoring pass; measure them.
  obs::Span dba_span("dba_extra_cost");
  const auto dba = exp.run_dba(1, core::DbaMode::kM2);
  (void)dba;
  const double c_extra = dba_span.stop();
  const double ratio = (c_phi + c_extra) / c_phi;

  std::printf("\nCost model (paper Eq. 16-19):\n");
  std::printf("  C_phi (features+decoding+counts, all utterances): %.2fs\n",
              c_phi);
  std::printf("    features %.2fs | decoding %.2fs | counts %.2fs\n",
              total.feature_s, total.decode_s, total.supervector_s);
  std::printf("  audio processed: %.1fs  (=> pipeline RT factor %.4f)\n",
              total.audio_s, c_phi / total.audio_s);
  // Watts on the wire: the same per-second-of-audio normalization as the RT
  // factor, but for energy — how many joules the pipeline spends to process
  // one second of speech.
  if (obs::Energy::source() != obs::EnergySource::kOff &&
      total.audio_s > 0.0) {
    const double joules = obs::Energy::total_joules();
    std::printf("  energy: %.3f J (%s)  (=> %.4f J per second of audio)\n",
                joules, obs::to_string(obs::Energy::source()),
                joules / total.audio_s);
  }
  std::printf("  extra DBA cost (VSM retrain + rescore): %.2fs\n", c_extra);
  std::printf("  C_DBA / C_baseline = %.3f   (paper: ~1)\n", ratio);

  // --- Profiler overhead (ISSUE 7 acceptance: < 5% at the default rate). ---
  // Time a fixed decode workload with sampling off, then at the default Hz,
  // on the same warm subsystem.  SIGPROF delivery + ring writes are the only
  // difference between the two timings.
  {
    const auto& sub = exp.subsystem(0);
    const auto& utt = long_test_utterance();
    const auto time_decodes = [&](int reps) {
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r) {
        benchmark::DoNotOptimize(sub.decode(utt));
      }
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    };
    (void)time_decodes(2);  // warm caches before either timing
    const bool was_enabled = obs::Profiler::enabled();
    obs::Profiler::stop();
    // Interleave off/on rounds so clock drift, thermal throttling, or a
    // noisy neighbour biases both sums equally instead of whichever
    // happened to run second.
    const int rounds = 5;
    const int reps_per_round = 20;
    double base_s = 0.0;
    double profiled_s = 0.0;
    bool profiler_ok = true;
    for (int round = 0; round < rounds && profiler_ok; ++round) {
      base_s += time_decodes(reps_per_round);
      if (obs::Profiler::start(0)) {
        profiled_s += time_decodes(reps_per_round);
        obs::Profiler::stop();
      } else {
        profiler_ok = false;
      }
    }
    if (was_enabled) obs::Profiler::start(0);
    if (profiler_ok) {
      const double overhead_pct =
          base_s > 0.0 ? 100.0 * (profiled_s - base_s) / base_s : 0.0;
      std::printf(
          "  profiler overhead @ %d Hz: %.3fs -> %.3fs over %d decodes "
          "(%+.2f%%)\n",
          obs::Profiler::rate_hz(), base_s, profiled_s,
          rounds * reps_per_round, overhead_pct);
    } else {
      std::printf("  profiler overhead: profiler unavailable on this host\n");
    }
  }
  // --- Streaming latency (ISSUE 8: early LLR checkpoints). ---
  // Two numbers a deployment cares about beyond the batch RT factor: how
  // long after audio starts the first checkpoint LLR is available (compute
  // latency, audio pushed back-to-back), and how expensive each 20 ms push
  // is relative to the audio it carries (per-chunk RTF — the steady-state
  // streaming load).
  obs::Json streaming_extra = obs::Json::object();
  {
    const auto& sub = exp.subsystem(0);
    const auto& vsm = exp.baseline_vsm(0);
    const auto& utt = long_test_utterance();
    const double sample_rate = exp.corpus().config().sample_rate;
    const double chunk_ms = 20.0;
    const double interval_s = 0.25;
    const auto chunk = static_cast<std::size_t>(sample_rate * chunk_ms / 1e3);

    std::vector<double> first_cp_s;
    std::vector<double> chunk_rtf;
    double streamed_s = 0.0;
    double audio_s = 0.0;
    const int reps = 21;
    for (int r = 0; r < reps; ++r) {
      core::StreamingOptions opts;
      opts.chunk_samples = chunk;
      opts.checkpoint_interval_s = interval_s;
      opts.scorer = [&](const phonotactic::SparseVec& sv) {
        std::vector<float> llr(exp.num_languages());
        vsm.score(sv, llr);
        return llr;
      };
      auto session = sub.open_stream(opts);
      const auto t0 = std::chrono::steady_clock::now();
      double first = -1.0;
      const std::span<const float> samples(utt.samples);
      for (std::size_t i = 0; i < samples.size(); i += chunk) {
        const auto piece =
            samples.subspan(i, std::min(chunk, samples.size() - i));
        const auto c0 = std::chrono::steady_clock::now();
        session.push(piece);
        const auto c1 = std::chrono::steady_clock::now();
        if (first < 0.0 && !session.checkpoints().empty()) {
          first = std::chrono::duration<double>(c1 - t0).count();
        }
        chunk_rtf.push_back(
            std::chrono::duration<double>(c1 - c0).count() /
            (static_cast<double>(piece.size()) / sample_rate));
      }
      const auto res = session.finalize();
      streamed_s +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      audio_s += res.audio_s;
      if (first >= 0.0) first_cp_s.push_back(first);
      benchmark::DoNotOptimize(res.supervector);
    }
    const auto pct = [](std::vector<double> v, double p) {
      if (v.empty()) return 0.0;
      std::sort(v.begin(), v.end());
      const double pos = p * static_cast<double>(v.size() - 1);
      const auto lo = static_cast<std::size_t>(pos);
      const auto hi = std::min(lo + 1, v.size() - 1);
      return v[lo] + (v[hi] - v[lo]) * (pos - static_cast<double>(lo));
    };
    std::printf("\nStreaming latency (%s, %.0f ms chunks, %.2fs cadence):\n",
                sub.name().c_str(), chunk_ms, interval_s);
    std::printf("  first checkpoint LLR: p50 %.1f ms, p99 %.1f ms (n=%zu)\n",
                1e3 * pct(first_cp_s, 0.50), 1e3 * pct(first_cp_s, 0.99),
                first_cp_s.size());
    std::printf("  per-chunk RTF: p50 %.4f, p99 %.4f (n=%zu)\n",
                pct(chunk_rtf, 0.50), pct(chunk_rtf, 0.99), chunk_rtf.size());
    std::printf("  streamed RT factor (push + finalize): %.4f\n",
                audio_s > 0.0 ? streamed_s / audio_s : 0.0);

    obs::Json section = obs::Json::object();
    section["version"] = 1;
    section["subsystem"] = sub.name();
    section["chunk_ms"] = chunk_ms;
    section["checkpoint_interval_s"] = interval_s;
    obs::Json first_cp = obs::Json::object();
    first_cp["p50_s"] = pct(first_cp_s, 0.50);
    first_cp["p99_s"] = pct(first_cp_s, 0.99);
    first_cp["n"] = first_cp_s.size();
    section["first_checkpoint_latency"] = std::move(first_cp);
    obs::Json rtf = obs::Json::object();
    rtf["p50"] = pct(chunk_rtf, 0.50);
    rtf["p99"] = pct(chunk_rtf, 0.99);
    rtf["n"] = chunk_rtf.size();
    section["per_chunk_rtf"] = std::move(rtf);
    section["streamed_rt_factor"] = audio_s > 0.0 ? streamed_s / audio_s : 0.0;
    streaming_extra["streaming"] = std::move(section);
  }

  bench::maybe_write_report(exp, "bench_table5_rtf",
                            std::move(streaming_extra));
  benchmark::Shutdown();
  return 0;
}
