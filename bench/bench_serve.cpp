// bench_serve — closed-loop load generator for the `phonolid serve` daemon.
//
//   bench_serve --port N [--host 127.0.0.1] [--scale quick] [--seed S]
//               [--connections 8] [--repeat 1] [--ledger offline.jsonl]
//               [--expected-llr f.txt] [--llr-out f.txt] [--report out.json]
//               [--min-batch-p50 X]
//
// Regenerates the pooled test set of the given scale/seed (the same corpus
// the daemon's bundle was frozen from), opens `--connections` closed-loop
// clients, and scores every test utterance `--repeat` times.  Verifies the
// daemon end to end:
//
//   * every response OK, and repeats of one utterance bit-identical;
//   * with --ledger, daemon LLRs exactly equal the offline run's fused_llr
//     (the trainer/server split must not move a single bit);
//   * with --min-batch-p50, the server's batch-size histogram median must
//     reach it — proof that micro-batching actually engaged under load.
//
// --llr-out / --expected-llr write daemon and ledger LLRs in one shared
// text format ("<utt> <llr0> <llr1> ...", %.17g) so scripts/tier1.sh can
// `cmp` them byte for byte.  --report emits a schema-v1 run report with a
// "serve" section for report-diff gating against BENCH_serve.json.
#include <algorithm>
#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "corpus/dataset.h"
#include "obs/json.h"
#include "obs/ledger.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "util/options.h"
#include "util/thread_pool.h"

namespace {

using namespace phonolid;

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: bench_serve --port N [--host H] [--scale S] [--seed N]\n"
               "         [--connections C] [--repeat R] [--ledger l.jsonl]\n"
               "         [--expected-llr f] [--llr-out f] [--report out.json]\n"
               "         [--min-batch-p50 X]\n",
               message);
  std::exit(2);
}

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  std::size_t connections = 8;
  std::size_t repeat = 1;
  std::string ledger_path;
  std::string expected_llr_path;
  std::string llr_out_path;
  std::string report_path;
  double min_batch_p50 = 0.0;
};

long parse_long(const std::string& text, const char* flag) {
  long value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || text.empty()) {
    std::fprintf(stderr, "error: flag %s expects an integer, got '%s'\n",
                 flag, text.c_str());
    std::exit(2);
  }
  return value;
}

struct RequestSample {
  std::size_t utt = 0;
  double latency_ms = 0.0;
};

double exact_percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

double json_number(const obs::Json* node, const char* key) {
  const obs::Json* v = node == nullptr ? nullptr : node->find(key);
  return v != nullptr && v->is_number() ? v->as_double() : 0.0;
}

/// One line per utterance, "<utt> <llr0> <llr1> ...\n" with %.17g — the
/// exact round-trip format the ledger uses, so daemon f32 LLRs and offline
/// double LLRs compare byte-identically via cmp when the bits agree.
void write_llr_file(const std::string& path,
                    const std::map<std::size_t, std::vector<double>>& llrs) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  char buf[64];
  for (const auto& [utt, llr] : llrs) {
    out << utt;
    for (double v : llr) {
      std::snprintf(buf, sizeof buf, " %.17g", v);
      out << buf;
    }
    out << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (i + 1 >= argc) usage_error(("flag " + key + " expects a value").c_str());
    const std::string value = argv[++i];
    if (key == "--port") {
      opt.port = static_cast<int>(parse_long(value, "--port"));
    } else if (key == "--host") {
      opt.host = value;
    } else if (key == "--scale" || key == "--seed") {
      // Parsed below through the standard env-compatible helpers.
      ::setenv(key == "--scale" ? "PHONOLID_SCALE" : "PHONOLID_SEED",
               value.c_str(), 1);
    } else if (key == "--connections") {
      opt.connections =
          static_cast<std::size_t>(parse_long(value, "--connections"));
    } else if (key == "--repeat") {
      opt.repeat = static_cast<std::size_t>(parse_long(value, "--repeat"));
    } else if (key == "--ledger") {
      opt.ledger_path = value;
    } else if (key == "--expected-llr") {
      opt.expected_llr_path = value;
    } else if (key == "--llr-out") {
      opt.llr_out_path = value;
    } else if (key == "--report") {
      opt.report_path = value;
    } else if (key == "--min-batch-p50") {
      opt.min_batch_p50 = std::atof(value.c_str());
    } else {
      usage_error(("unknown flag " + key).c_str());
    }
  }
  if (opt.port <= 0) usage_error("--port is required");
  if (opt.connections == 0) opt.connections = 1;
  if (opt.repeat == 0) opt.repeat = 1;

  const auto scale = util::scale_from_env();
  const std::uint64_t seed = util::master_seed();
  std::printf("# bench_serve (scale=%s, seed=%llu, %s:%d, %zu connections, "
              "repeat %zu)\n",
              util::to_string(scale), static_cast<unsigned long long>(seed),
              opt.host.c_str(), opt.port, opt.connections, opt.repeat);

  const auto corpus_cfg = corpus::CorpusConfig::preset(scale, seed);
  const auto corpus = corpus::LreCorpus::build(corpus_cfg);
  const auto& test = corpus.test();
  if (test.empty()) {
    std::fprintf(stderr, "error: empty test set at scale %s\n",
                 util::to_string(scale));
    return 1;
  }
  std::printf("# %zu pooled test utterances -> %zu requests\n", test.size(),
              test.size() * opt.repeat);

  // The work list: every pooled test utterance, repeated; shards rotate so
  // each connection touches a spread of utterance lengths.
  std::vector<std::size_t> work;
  work.reserve(test.size() * opt.repeat);
  for (std::size_t r = 0; r < opt.repeat; ++r) {
    for (std::size_t u = 0; u < test.size(); ++u) work.push_back(u);
  }

  std::mutex results_mu;
  std::map<std::size_t, std::vector<double>> llr_by_utt;
  std::vector<RequestSample> samples;
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> mismatches{0};

  obs::Span load_span("bench_serve_load");
  std::vector<std::thread> threads;
  threads.reserve(opt.connections);
  for (std::size_t c = 0; c < opt.connections; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client;
      try {
        client.connect(opt.host, opt.port);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "connection %zu: %s\n", c, e.what());
        failures.fetch_add(1);
        return;
      }
      std::vector<RequestSample> local_samples;
      for (std::size_t i = c; i < work.size(); i += opt.connections) {
        const std::size_t utt = work[i];
        const auto t0 = std::chrono::steady_clock::now();
        serve::Response response;
        try {
          response = client.score(test[utt].samples);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "utt %zu: %s\n", utt, e.what());
          failures.fetch_add(1);
          return;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (response.status != serve::Status::kOk) {
          std::fprintf(stderr, "utt %zu: status %s (%s)\n", utt,
                       serve::to_string(response.status),
                       response.text.c_str());
          failures.fetch_add(1);
          continue;
        }
        std::vector<double> llr(response.llr.begin(), response.llr.end());
        std::lock_guard<std::mutex> lock(results_mu);
        local_samples.push_back({utt, ms});
        const auto [it, inserted] =
            llr_by_utt.emplace(utt, std::move(llr));
        if (!inserted &&
            !std::equal(it->second.begin(), it->second.end(),
                        response.llr.begin(), response.llr.end(),
                        [](double a, float b) {
                          return a == static_cast<double>(b);
                        })) {
          mismatches.fetch_add(1);  // repeats must be bit-identical
        }
      }
      std::lock_guard<std::mutex> lock(results_mu);
      samples.insert(samples.end(), local_samples.begin(),
                     local_samples.end());
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = load_span.stop();

  if (samples.empty()) {
    std::fprintf(stderr, "error: no successful requests\n");
    return 1;
  }
  std::vector<double> latencies;
  latencies.reserve(samples.size());
  for (const auto& s : samples) latencies.push_back(s.latency_ms);
  std::sort(latencies.begin(), latencies.end());
  const double p50 = exact_percentile(latencies, 0.50);
  const double p95 = exact_percentile(latencies, 0.95);
  const double p99 = exact_percentile(latencies, 0.99);
  const double p999 = exact_percentile(latencies, 0.999);
  double latency_sum = 0.0;
  for (double v : latencies) latency_sum += v;
  const double throughput =
      wall_s > 0.0 ? static_cast<double>(samples.size()) / wall_s : 0.0;
  std::printf("# %zu ok in %.2fs: %.1f req/s, latency ms p50 %.1f p95 %.1f "
              "p99 %.1f p99.9 %.1f\n",
              samples.size(), wall_s, throughput, p50, p95, p99, p999);

  // Server-side view: batch-size histogram, sheds, swaps, phase breakdown.
  obs::Json stats = obs::Json::object();
  double batch_p50 = 0.0, batch_mean = 0.0;
  try {
    serve::Client client;
    client.connect(opt.host, opt.port);
    stats = obs::Json::parse(client.stats().text);
    const obs::Json* batch = stats.find("batch");
    batch_p50 = json_number(batch, "p50");
    batch_mean = json_number(batch, "mean");
    std::printf("# server: %0.f requests, batch size p50 %.0f mean %.2f, "
                "%.0f overload sheds, %.0f bad frames, up %.1fs\n",
                json_number(&stats, "requests_total"), batch_p50, batch_mean,
                json_number(stats.find("sheds"), "overloaded"),
                json_number(stats.find("errors"), "bad_frame"),
                json_number(&stats, "uptime_s"));
    if (const obs::Json* phases = stats.find("phases"); phases != nullptr) {
      std::printf("# phases p99 ms: queue_wait %.2f batch_wait %.2f "
                  "compute %.2f write %.2f\n",
                  json_number(phases->find("queue_wait_ms"), "p99"),
                  json_number(phases->find("batch_wait_ms"), "p99"),
                  json_number(phases->find("compute_ms"), "p99"),
                  json_number(phases->find("write_ms"), "p99"));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: stats frame failed: %s\n", e.what());
  }

  int rc = 0;
  if (failures.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu failed requests\n",
                 static_cast<unsigned long long>(failures.load()));
    rc = 1;
  }
  if (mismatches.load() != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu repeated scores differed (non-deterministic "
                 "daemon)\n",
                 static_cast<unsigned long long>(mismatches.load()));
    rc = 1;
  }

  // Bit-exact comparison against the offline run's ledger.
  if (!opt.ledger_path.empty()) {
    obs::DecisionLedger ledger;
    try {
      ledger = obs::DecisionLedger::read_jsonl_file(opt.ledger_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::map<std::size_t, std::vector<double>> expected;
    for (const auto& entry : ledger.entries) {
      if (!entry.fused_llr.empty()) {
        expected[static_cast<std::size_t>(entry.utt)] = entry.fused_llr;
      }
    }
    std::size_t compared = 0, unequal = 0;
    for (const auto& [utt, llr] : llr_by_utt) {
      const auto it = expected.find(utt);
      if (it == expected.end()) continue;
      ++compared;
      if (llr != it->second) {
        if (++unequal <= 3) {
          std::fprintf(stderr, "LLR mismatch at utt %zu\n", utt);
        }
      }
    }
    std::printf("# ledger: %zu utterances compared, %zu mismatched\n",
                compared, unequal);
    if (compared == 0 || unequal != 0) {
      std::fprintf(stderr,
                   "FAIL: daemon is not bit-identical to the offline run\n");
      rc = 1;
    }
    if (!opt.expected_llr_path.empty()) {
      // Only utterances the daemon scored, in the same order/format as
      // --llr-out, so tier1.sh can cmp the two files directly.
      std::map<std::size_t, std::vector<double>> subset;
      for (const auto& [utt, llr] : llr_by_utt) {
        const auto it = expected.find(utt);
        if (it != expected.end()) subset[utt] = it->second;
      }
      write_llr_file(opt.expected_llr_path, subset);
    }
  }
  if (!opt.llr_out_path.empty()) write_llr_file(opt.llr_out_path, llr_by_utt);

  if (opt.min_batch_p50 > 0.0 && batch_p50 < opt.min_batch_p50) {
    std::fprintf(stderr,
                 "FAIL: batch size p50 %.1f below required %.1f — "
                 "micro-batching did not engage\n",
                 batch_p50, opt.min_batch_p50);
    rc = 1;
  }

  if (!opt.report_path.empty()) {
    obs::ReportMeta meta;
    meta.tool = "phonolid-bench";
    meta.command = "bench_serve";
    meta.scale = util::to_string(scale);
    meta.seed = seed;
    meta.threads = util::ThreadPool::global().num_threads();
    obs::Json serve_section = obs::Json::object();
    // v2: adds latency_ms.p999 and the per-phase "phases" block sourced
    // from the daemon's kStats frame (p50/p99/p999/mean/count per phase).
    serve_section["version"] = 2;
    serve_section["protocol_version"] = json_number(&stats, "protocol_version");
    serve_section["connections"] = opt.connections;
    serve_section["repeat"] = opt.repeat;
    serve_section["requests"] = samples.size();
    serve_section["failures"] = failures.load();
    serve_section["wall_s"] = wall_s;
    serve_section["throughput_rps"] = throughput;
    obs::Json latency = obs::Json::object();
    latency["p50"] = p50;
    latency["p95"] = p95;
    latency["p99"] = p99;
    latency["p999"] = p999;
    latency["mean"] = latency_sum / static_cast<double>(latencies.size());
    latency["max"] = latencies.back();
    serve_section["latency_ms"] = std::move(latency);
    if (const obs::Json* phases = stats.find("phases"); phases != nullptr) {
      obs::Json phase_section = obs::Json::object();
      for (const char* name :
           {"queue_wait_ms", "batch_wait_ms", "compute_ms", "write_ms"}) {
        const obs::Json* h = phases->find(name);
        if (h == nullptr) continue;
        obs::Json p = obs::Json::object();
        p["p50"] = json_number(h, "p50");
        p["p99"] = json_number(h, "p99");
        p["p999"] = json_number(h, "p999");
        p["mean"] = json_number(h, "mean");
        p["count"] = json_number(h, "count");
        phase_section[name] = std::move(p);
      }
      serve_section["phases"] = std::move(phase_section);
    }
    obs::Json batch = obs::Json::object();
    batch["p50"] = batch_p50;
    batch["mean"] = batch_mean;
    serve_section["batch_size"] = std::move(batch);
    serve_section["sheds_overloaded"] =
        json_number(stats.find("sheds"), "overloaded");
    serve_section["sheds_deadline"] =
        json_number(stats.find("sheds"), "deadline");
    serve_section["swaps"] = json_number(&stats, "swaps");
    obs::Json extra = obs::Json::object();
    extra["serve"] = std::move(serve_section);
    obs::write_report_file(opt.report_path,
                           obs::build_report(meta, std::move(extra)));
    std::printf("# wrote run report to %s\n", opt.report_path.c_str());
  }
  return rc;
}
