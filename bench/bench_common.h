// Shared helpers for the table/figure benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/energy.h"
#include "obs/exporters.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/options.h"

namespace phonolid::bench {

inline std::unique_ptr<core::Experiment> build_experiment() {
  // Honors PHONOLID_TRACE before any instrumented work, so the flight
  // recorder captures the build itself; the matching export happens in
  // maybe_write_report at bench exit.  When $PHONOLID_CACHE is set (see
  // scripts/bench_baseline.sh) every bench shares one artifact store, so
  // only the first bench of a session pays for AM training and decoding.
  obs::enable_recorder_from_env();
  const auto scale = util::scale_from_env();
  std::printf("# phonolid bench (scale=%s, seed=%llu)\n",
              util::to_string(scale),
              static_cast<unsigned long long>(util::master_seed()));
  obs::Span build_span("bench_build");
  auto config = core::ExperimentConfig::preset(scale, util::master_seed());
  auto experiment = core::Experiment::build(config);
  std::printf("# experiment built in %.1fs: %zu languages, %zu subsystems, "
              "%zu test utterances\n",
              build_span.stop(), experiment->num_languages(),
              experiment->num_subsystems(),
              experiment->corpus().test().size());
  return experiment;
}

/// When PHONOLID_REPORT=<path> is set, write the structured JSON run report
/// (same schema as `phonolid run --report`, DESIGN.md "Observability") after
/// the bench finishes; likewise PHONOLID_TRACE (Chrome trace-event JSON)
/// and PHONOLID_PROM (Prometheus text).  Call at the end of every bench
/// main.  `extra` sections (an object) merge into the report top level —
/// bench_table5_rtf uses this for its measured "streaming" section.
inline void maybe_write_report(const core::Experiment& exp,
                               const std::string& bench_name,
                               obs::Json extra = obs::Json::object()) {
  obs::export_from_env();
  // One energy line per bench so trajectories of bench logs carry cost next
  // to speed; the full per-stage breakdown lives in the report's "energy"
  // section and `phonolid power --input <report>`.
  if (obs::Energy::source() != obs::EnergySource::kOff) {
    std::printf("# energy: %.3f J (%s), %.2f GFLOP charged\n",
                obs::Energy::total_joules(),
                obs::to_string(obs::Energy::source()),
                obs::Energy::total_gflops());
  }
  // Same idea for the sampling profiler (PHONOLID_PROFILE=cpu): one summary
  // line here, full tables via `phonolid flame --input <report>`.
  if (obs::Profiler::available()) {
    const obs::ProfileData p = obs::Profiler::snapshot();
    std::printf("# profile: %llu samples (%llu dropped) at %d Hz\n",
                static_cast<unsigned long long>(p.samples),
                static_cast<unsigned long long>(p.dropped), p.hz);
  }
  const char* path = std::getenv("PHONOLID_REPORT");
  if (path == nullptr || *path == '\0') return;
  exp.write_report(path, bench_name, std::move(extra));
  std::printf("# wrote run report to %s\n", path);
}

/// All baseline blocks as evaluate() input.
inline std::vector<const core::SubsystemScores*> baseline_blocks(
    const core::Experiment& exp) {
  std::vector<const core::SubsystemScores*> blocks;
  for (const auto& b : exp.baseline_scores()) blocks.push_back(&b);
  return blocks;
}

inline std::vector<const core::SubsystemScores*> as_blocks(
    const std::vector<core::SubsystemScores>& scores) {
  std::vector<const core::SubsystemScores*> blocks;
  for (const auto& b : scores) blocks.push_back(&b);
  return blocks;
}

/// Eq. 15 weights for a fused (M1 + M2) block list.
inline std::vector<double> eq15_weights(const core::TrdbaSelection& selection,
                                        std::size_t repetitions) {
  std::vector<double> weights;
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    for (std::size_t c : selection.subsystem_fit_counts) {
      weights.push_back(static_cast<double>(c));
    }
  }
  return weights;
}

}  // namespace phonolid::bench
