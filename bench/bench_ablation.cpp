// Ablations of the design choices DESIGN.md calls out:
//   1. the strict high-confidence vote criterion (Eq. 13) vs looser ones,
//   2. M1 vs M2 vs no boosting,
//   3. Eq. 15 fusion weights vs uniform,
//   4. a second boosting iteration,
//   5. TFLLR scaling vs raw probability supervectors (via a second
//      experiment build).
// Each section prints fused EER%% per duration tier.
#include "bench_common.h"

namespace {

using namespace phonolid;

void print_result(const char* name, const core::EvalResult& r) {
  std::printf("  %-38s", name);
  for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
    std::printf(" %6.2f", 100.0 * r.tier[t].eer);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const auto exp = bench::build_experiment();
  const std::size_t q = exp->num_subsystems();
  const std::size_t v_star = std::min<std::size_t>(3, q);

  std::printf("\nAblations (fused EER%% at 30s/10s/3s)\n");

  // --- Baseline reference. ---
  const auto base = exp->evaluate(bench::baseline_blocks(*exp));
  print_result("baseline PPRVSM fusion", base);

  // --- 1. Vote criterion. ---
  std::printf("\n# 1. vote criterion (DBA-M1, V=%zu)\n", v_star);
  for (const auto& [name, criterion] :
       {std::pair{"strict (Eq. 13)", core::VoteCriterion::kStrict},
        std::pair{"positive-argmax", core::VoteCriterion::kPositiveArgmax},
        std::pair{"argmax (always votes)", core::VoteCriterion::kArgmax}}) {
    const auto votes = exp->votes_for(exp->baseline_scores(), criterion);
    const auto sel = core::select_trdba(votes, v_star);
    const double err = core::selection_error_rate(sel, exp->test_labels());
    const auto scores = exp->run_dba_selection(sel, core::DbaMode::kM1);
    const auto r = exp->evaluate(bench::as_blocks(scores));
    std::printf("  [adopted %4zu, label err %5.1f%%]\n", sel.utt_index.size(),
                100.0 * err);
    print_result(name, r);
  }

  // --- 2. Update mode. ---
  std::printf("\n# 2. Tr_DBA update mode (V=%zu)\n", v_star);
  const auto sel = exp->select(v_star);
  const auto m1 = exp->run_dba(v_star, core::DbaMode::kM1);
  const auto m2 = exp->run_dba(v_star, core::DbaMode::kM2);
  print_result("DBA-M1 only", exp->evaluate(bench::as_blocks(m1)));
  print_result("DBA-M2 only", exp->evaluate(bench::as_blocks(m2)));
  {
    std::vector<const core::SubsystemScores*> blocks;
    for (const auto& b : m1) blocks.push_back(&b);
    for (const auto& b : m2) blocks.push_back(&b);
    print_result("(DBA-M1)+(DBA-M2)",
                 exp->evaluate(blocks, bench::eq15_weights(sel, 2)));
  }

  // --- 3. Fusion weights. ---
  std::printf("\n# 3. fusion weights for (M1)+(M2)\n");
  {
    std::vector<const core::SubsystemScores*> blocks;
    for (const auto& b : m1) blocks.push_back(&b);
    for (const auto& b : m2) blocks.push_back(&b);
    print_result("Eq. 15 weights (w_n ~ M_n)",
                 exp->evaluate(blocks, bench::eq15_weights(sel, 2)));
    print_result("uniform weights", exp->evaluate(blocks));
  }

  // --- 4. Second boosting iteration. ---
  std::printf("\n# 4. boosting iterations (M2, V=%zu)\n", v_star);
  print_result("1 iteration", exp->evaluate(bench::as_blocks(m2)));
  {
    const auto votes2 = exp->votes_for(m2);
    const auto sel2 = core::select_trdba(votes2, v_star);
    const auto scores2 = exp->run_dba_selection(sel2, core::DbaMode::kM2);
    std::printf("  [iteration 2 adopts %zu, label err %.1f%%]\n",
                sel2.utt_index.size(),
                100.0 * core::selection_error_rate(sel2, exp->test_labels()));
    print_result("2 iterations", exp->evaluate(bench::as_blocks(scores2)));
  }

  // --- 5. TFLLR scaling (requires re-building the pipeline). ---
  std::printf("\n# 5. TFLLR kernel scaling (baseline fusion, re-built "
              "without TFLLR)\n");
  {
    auto cfg = core::ExperimentConfig::preset(util::scale_from_env(),
                                              util::master_seed());
    for (auto& spec : cfg.frontends) spec.use_tfllr = false;
    const auto raw_exp = core::Experiment::build(cfg);
    print_result("raw probability supervectors",
                 raw_exp->evaluate(bench::baseline_blocks(*raw_exp)));
    print_result("TFLLR supervectors (reference)", base);
  }

  // --- 6. Lattice expected counts vs 1-best. ---
  std::printf("\n# 6. expected counts vs 1-best counts (baseline fusion)\n");
  {
    auto cfg = core::ExperimentConfig::preset(util::scale_from_env(),
                                              util::master_seed());
    cfg.use_lattice_counts = false;
    const auto onebest_exp = core::Experiment::build(cfg);
    print_result("1-best counts",
                 onebest_exp->evaluate(bench::baseline_blocks(*onebest_exp)));
    print_result("lattice expected counts (reference)", base);
  }
  bench::maybe_write_report(*exp, "bench_ablation");
  return 0;
}
