// Table 1: composition of Tr_DBA at each vote threshold V (DBA-M1).
//
// Paper row 1: number of adopted test utterances; row 2: error rate of the
// hypothesised labels.  Expected shape: count grows and purity falls
// monotonically as V decreases.
#include "bench_common.h"

#include "core/dba.h"

int main() {
  using namespace phonolid;
  const auto exp = bench::build_experiment();
  const std::size_t q = exp->num_subsystems();

  std::printf("\nTable 1: Tr_DBA of varied threshold V, DBA-M1\n");
  std::printf("%-12s", "");
  for (std::size_t v = q; v >= 1; --v) std::printf("  V = %zu  ", v);
  std::printf("\n%-12s", "number");
  std::vector<core::TrdbaSelection> selections;
  for (std::size_t v = q; v >= 1; --v) {
    selections.push_back(exp->select(v));
    std::printf("%8zu ", selections.back().utt_index.size());
  }
  std::printf("\n%-12s", "error rate");
  for (const auto& sel : selections) {
    std::printf("%7.2f%% ",
                100.0 * core::selection_error_rate(sel, exp->test_labels()));
  }
  std::printf("\n\n# paper (41793-utterance NIST test set): counts "
              "4939..35262, error 4.74%%..31.88%% over V=6..1\n");

  bench::maybe_write_report(*exp, "bench_table1_trdba");

  // Invariant check for the harness itself: monotone counts.
  for (std::size_t i = 1; i < selections.size(); ++i) {
    if (selections[i].utt_index.size() < selections[i - 1].utt_index.size()) {
      std::printf("# WARNING: adopted count not monotone in V\n");
      return 1;
    }
  }
  return 0;
}
