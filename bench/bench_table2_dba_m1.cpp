// Table 2: EER / Cavg of DBA-M1 per front-end, duration tier and vote
// threshold V (plus the PPRVSM baseline column).
//
// Expected shape (paper §5.2): for each front-end and tier the EER first
// falls then rises as V decreases (U-shape) with the optimum at an
// intermediate threshold (V = 3 in the paper), and the DBA optimum beats
// the baseline, most strongly at the shortest tier.
#include "bench_common.h"

int main() {
  using namespace phonolid;
  const auto exp = bench::build_experiment();
  const std::size_t q = exp->num_subsystems();
  static const char* tiers[] = {"30s", "10s", "3s"};

  // Pre-compute DBA-M1 scores for every threshold.
  std::vector<std::vector<core::SubsystemScores>> dba(q + 1);
  for (std::size_t v = 1; v <= q; ++v) {
    dba[v] = exp->run_dba(v, core::DbaMode::kM1);
  }

  std::printf("\nTable 2: DBA-M1, closed set (EER%% / Cavg%%)\n");
  std::printf("%-14s %-5s %-6s %-15s", "front-end", "dur", "", "baseline");
  for (std::size_t v = q; v >= 1; --v) std::printf("V=%-13zu", v);
  std::printf("\n");

  for (std::size_t s = 0; s < q; ++s) {
    const core::EvalResult base =
        exp->evaluate_single(exp->baseline_scores()[s]);
    std::vector<core::EvalResult> results(q + 1);
    for (std::size_t v = 1; v <= q; ++v) {
      results[v] = exp->evaluate_single(dba[v][s]);
    }
    for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
      std::printf("%-14s %-5s EER   %6.2f         ",
                  exp->subsystem(s).name().c_str(), tiers[t],
                  100.0 * base.tier[t].eer);
      for (std::size_t v = q; v >= 1; --v) {
        std::printf("%6.2f         ", 100.0 * results[v].tier[t].eer);
      }
      std::printf("\n%-14s %-5s Cavg  %6.2f         ", "", tiers[t],
                  100.0 * base.tier[t].cavg);
      for (std::size_t v = q; v >= 1; --v) {
        std::printf("%6.2f         ", 100.0 * results[v].tier[t].cavg);
      }
      std::printf("\n");
    }
  }

  // Shape summary: where does the minimum EER sit, and does it beat the
  // baseline?
  std::printf("\n# shape summary (30s tier): per front-end best V and gain\n");
  for (std::size_t s = 0; s < q; ++s) {
    const core::EvalResult base =
        exp->evaluate_single(exp->baseline_scores()[s]);
    double best = 1.0;
    std::size_t best_v = 0;
    for (std::size_t v = 1; v <= q; ++v) {
      const auto r = exp->evaluate_single(dba[v][s]);
      if (r.tier[2].eer < best) {
        best = r.tier[2].eer;
        best_v = v;
      }
    }
    std::printf("#   %-14s best V=%zu  EER(3s) %.2f%% vs baseline %.2f%%\n",
                exp->subsystem(s).name().c_str(), best_v, 100.0 * best,
                100.0 * base.tier[2].eer);
  }
  bench::maybe_write_report(*exp, "bench_table2_dba_m1");
  return 0;
}
