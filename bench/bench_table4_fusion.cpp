// Table 4: PPRVSM vs DBA systems — per front-end and LDA-MMI fusion across
// all six, at the optimal threshold (paper: (DBA-M1)+(DBA-M2), V = 3).
//
// Expected shape: DBA improves every single front-end; fusion beats every
// single system; the DBA fusion beats the baseline fusion, with the gain
// concentrated on the 10s/3s tiers.
#include "bench_common.h"

int main() {
  using namespace phonolid;
  const auto exp = bench::build_experiment();
  const std::size_t q = exp->num_subsystems();
  static const char* tiers[] = {"30s", "10s", "3s"};

  const std::size_t v_star = std::min<std::size_t>(3, q);
  const auto selection = exp->select(v_star);
  const auto m1 = exp->run_dba(v_star, core::DbaMode::kM1);
  const auto m2 = exp->run_dba(v_star, core::DbaMode::kM2);

  std::printf("\nTable 4: PPRVSM vs DBA, closed set, (DBA-M1)+(DBA-M2), "
              "V=%zu (EER%%/Cavg%%)\n", v_star);
  std::printf("%-10s %-16s %10s %14s %14s\n", "system", "front-end", "30s",
              "10s", "3s");

  const auto print_row = [&](const char* sys, const char* name,
                             const core::EvalResult& r) {
    std::printf("%-10s %-16s", sys, name);
    for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
      std::printf(" %6.2f/%-6.2f", 100.0 * r.tier[t].eer,
                  100.0 * r.tier[t].cavg);
    }
    std::printf("\n");
  };

  // Baseline singles + fusion.
  for (std::size_t s = 0; s < q; ++s) {
    print_row("Baseline", exp->subsystem(s).name().c_str(),
              exp->evaluate_single(exp->baseline_scores()[s]));
  }
  const core::EvalResult base_fusion =
      exp->evaluate(bench::baseline_blocks(*exp));
  print_row("Baseline", "fusion", base_fusion);

  // DBA singles: per front-end, fuse its M1 and M2 blocks.
  for (std::size_t s = 0; s < q; ++s) {
    const core::EvalResult r = exp->evaluate({&m1[s], &m2[s]});
    print_row("DBA", exp->subsystem(s).name().c_str(), r);
  }
  // DBA fusion across all 2q blocks with Eq. 15 weights.
  std::vector<const core::SubsystemScores*> blocks;
  for (const auto& b : m1) blocks.push_back(&b);
  for (const auto& b : m2) blocks.push_back(&b);
  const core::EvalResult dba_fusion =
      exp->evaluate(blocks, bench::eq15_weights(selection, 2));
  print_row("DBA", "fusion", dba_fusion);

  std::printf("\n# paper fusion rows: baseline 1.11/2.73/12.37 EER%%, DBA "
              "1.09/2.41/10.47 EER%% (30s/10s/3s)\n");
  std::printf("# relative EER reduction here:");
  for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
    const double rel = base_fusion.tier[t].eer > 0
                           ? 100.0 * (base_fusion.tier[t].eer -
                                      dba_fusion.tier[t].eer) /
                                 base_fusion.tier[t].eer
                           : 0.0;
    std::printf(" %s %.1f%%", tiers[t], rel);
  }
  std::printf("  (paper: 1.8%% / 11.7%% / 15.4%%)\n");
  bench::maybe_write_report(*exp, "bench_table4_fusion");
  return 0;
}
