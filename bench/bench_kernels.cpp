// Microbenchmarks for the src/la kernel library at acoustic-model
// representative shapes: MLP forward/backward GEMMs (batch x features
// against hidden/state layers) and the batched diagonal-Gaussian scorer
// that dominates GMM-HMM decoding.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "la/batched_gaussian.h"
#include "la/kernels.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace {

using namespace phonolid;

util::Matrix random_matrix(std::size_t rows, std::size_t cols,
                           std::uint64_t seed) {
  util::Rng rng(seed);
  util::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  return m;
}

// MLP forward: batch x in against a (out x in) weight matrix, fused
// bias+sigmoid epilogue.  Shapes follow the NN-HMM front-ends (stacked
// features -> hidden -> tied states).
void BM_GemmNtBiasSigmoid(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto in = static_cast<std::size_t>(state.range(1));
  const auto out = static_cast<std::size_t>(state.range(2));
  const util::Matrix x = random_matrix(batch, in, 1);
  const util::Matrix w = random_matrix(out, in, 2);
  const std::vector<float> bias(out, 0.1f);
  util::Matrix c;
  for (auto _ : state) {
    la::gemm_nt(x, w, c, bias, la::Epilogue::kBiasSigmoid);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["gflops"] = benchmark::Counter(
      2.0 * static_cast<double>(batch * in * out) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

// Gradient reduction: delta^T activations (the backward-pass kernel).
void BM_GemmTn(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto out = static_cast<std::size_t>(state.range(1));
  const auto in = static_cast<std::size_t>(state.range(2));
  const util::Matrix delta = random_matrix(batch, out, 3);
  const util::Matrix acts = random_matrix(batch, in, 4);
  util::Matrix grad;
  for (auto _ : state) {
    la::gemm_tn(delta, acts, grad, 1.0f / 128.0f);
    benchmark::DoNotOptimize(grad.data());
  }
  state.counters["gflops"] = benchmark::Counter(
      2.0 * static_cast<double>(batch * in * out) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

void BM_Gemv(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cols = static_cast<std::size_t>(state.range(1));
  const util::Matrix a = random_matrix(rows, cols, 5);
  std::vector<float> x(cols, 0.5f), out(rows);
  for (auto _ : state) {
    la::gemv(a, x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["gflops"] = benchmark::Counter(
      2.0 * static_cast<double>(rows * cols) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

// Batched diagonal-Gaussian log-densities: T frames x (states * mixture
// components), the GMM-HMM decoding hot path.  Shapes mirror the quick
// (13-dim SDC/PLP, ~60 states x 2 comps) and default (39-dim, 32-comp UBM)
// model sizes.
void BM_BatchedLogGaussian(benchmark::State& state) {
  const auto frames = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto comps = static_cast<std::size_t>(state.range(2));
  util::Rng rng(6);
  la::BatchedGaussians::Builder builder(dim, comps);
  std::vector<float> mean(dim), var(dim);
  for (std::size_t c = 0; c < comps; ++c) {
    for (std::size_t d = 0; d < dim; ++d) {
      mean[d] = static_cast<float>(rng.uniform(-1.0, 1.0));
      var[d] = static_cast<float>(rng.uniform(0.5, 1.5));
    }
    builder.add(mean, var);
  }
  const la::BatchedGaussians bg = builder.build();
  const util::Matrix x = random_matrix(frames, dim, 7);
  util::Matrix scores;
  for (auto _ : state) {
    bg.score(x, scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.counters["gflops"] = benchmark::Counter(
      bg.flops_per_frame() * static_cast<double>(frames) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

}  // namespace

// NN-HMM forward at quick scale (65-dim stacked input, 64 hidden, 60
// states) and default scale (195 input, 256 hidden, 120 states).
BENCHMARK(BM_GemmNtBiasSigmoid)
    ->Args({128, 65, 64})
    ->Args({128, 195, 256})
    ->Args({512, 256, 120});
BENCHMARK(BM_GemmTn)->Args({128, 64, 65})->Args({128, 256, 195});
BENCHMARK(BM_Gemv)->Args({64, 65})->Args({256, 195});
BENCHMARK(BM_BatchedLogGaussian)
    ->Args({300, 13, 120})
    ->Args({300, 39, 32})
    ->Args({3000, 39, 160});

BENCHMARK_MAIN();
