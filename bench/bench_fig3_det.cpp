// Figure 3: DET curves of the baseline fusion vs the (DBA-M1)+(DBA-M2)
// (V = 3) fusion, NIST-style probit-probit axes.
//
// Prints each curve as rows "p_fa p_miss probit(p_fa) probit(p_miss)" so
// the figure can be re-plotted directly.  Expected shape: the DBA curve
// lies on or below the baseline curve, with the gap widening on the
// shorter duration tiers.
#include "bench_common.h"

#include "util/math_util.h"

namespace {

void print_curve(const char* name, const char* tier,
                 const std::vector<phonolid::eval::DetPoint>& curve) {
  const auto thin = phonolid::eval::thin_det_curve(curve, 32);
  std::printf("\n# DET curve: %s, %s (%zu points)\n", name, tier, thin.size());
  std::printf("# p_fa p_miss probit_fa probit_miss\n");
  for (const auto& p : thin) {
    std::printf("%.5f %.5f %8.4f %8.4f\n", p.p_fa, p.p_miss,
                phonolid::util::probit(std::max(p.p_fa, 1e-5)),
                phonolid::util::probit(std::max(p.p_miss, 1e-5)));
  }
}

}  // namespace

int main() {
  using namespace phonolid;
  const auto exp = bench::build_experiment();
  const std::size_t q = exp->num_subsystems();
  static const char* tiers[] = {"30s", "10s", "3s"};

  const core::EvalResult baseline =
      exp->evaluate(bench::baseline_blocks(*exp));

  const std::size_t v_star = std::min<std::size_t>(3, q);
  const auto selection = exp->select(v_star);
  const auto m1 = exp->run_dba(v_star, core::DbaMode::kM1);
  const auto m2 = exp->run_dba(v_star, core::DbaMode::kM2);
  std::vector<const core::SubsystemScores*> blocks;
  for (const auto& b : m1) blocks.push_back(&b);
  for (const auto& b : m2) blocks.push_back(&b);
  const core::EvalResult dba =
      exp->evaluate(blocks, bench::eq15_weights(selection, 2));

  for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
    print_curve("PPRVSM baseline fusion", tiers[t], baseline.det[t]);
    print_curve("(DBA-M1)+(DBA-M2) V=3 fusion", tiers[t], dba.det[t]);
  }

  std::printf("\n# operating summary (EER%% baseline -> DBA):");
  for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
    std::printf("  %s %.2f->%.2f", tiers[t], 100.0 * baseline.tier[t].eer,
                100.0 * dba.tier[t].eer);
  }
  std::printf("\n");
  bench::maybe_write_report(*exp, "bench_fig3_det");
  return 0;
}
