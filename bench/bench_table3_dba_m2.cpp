// Table 3: EER / Cavg of DBA-M2 (adopted test data + original training
// data) per front-end, duration tier and vote threshold V.
//
// Expected shape (paper §5.2): same U-shape in V as Table 2; relative to
// DBA-M1, M2 is stronger on the longest tier (more training data) while M1
// wins on the short tiers (test-condition adaptation).
#include "bench_common.h"

int main() {
  using namespace phonolid;
  const auto exp = bench::build_experiment();
  const std::size_t q = exp->num_subsystems();
  static const char* tiers[] = {"30s", "10s", "3s"};

  std::vector<std::vector<core::SubsystemScores>> m2(q + 1);
  for (std::size_t v = 1; v <= q; ++v) {
    m2[v] = exp->run_dba(v, core::DbaMode::kM2);
  }

  std::printf("\nTable 3: DBA-M2, closed set (EER%% / Cavg%%)\n");
  std::printf("%-14s %-5s %-6s %-15s", "front-end", "dur", "", "baseline");
  for (std::size_t v = q; v >= 1; --v) std::printf("V=%-13zu", v);
  std::printf("\n");

  for (std::size_t s = 0; s < q; ++s) {
    const core::EvalResult base =
        exp->evaluate_single(exp->baseline_scores()[s]);
    std::vector<core::EvalResult> results(q + 1);
    for (std::size_t v = 1; v <= q; ++v) {
      results[v] = exp->evaluate_single(m2[v][s]);
    }
    for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
      std::printf("%-14s %-5s EER   %6.2f         ",
                  exp->subsystem(s).name().c_str(), tiers[t],
                  100.0 * base.tier[t].eer);
      for (std::size_t v = q; v >= 1; --v) {
        std::printf("%6.2f         ", 100.0 * results[v].tier[t].eer);
      }
      std::printf("\n%-14s %-5s Cavg  %6.2f         ", "", tiers[t],
                  100.0 * base.tier[t].cavg);
      for (std::size_t v = q; v >= 1; --v) {
        std::printf("%6.2f         ", 100.0 * results[v].tier[t].cavg);
      }
      std::printf("\n");
    }
  }

  // M1-vs-M2 comparison at the paper's optimum V=3 (paper §5.2: M2 wins at
  // 30s, M1 wins at 10s/3s).
  const std::size_t v_star = std::min<std::size_t>(3, q);
  const auto m1 = exp->run_dba(v_star, core::DbaMode::kM1);
  std::printf("\n# M1 vs M2 at V=%zu (mean EER%% across front-ends)\n", v_star);
  for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
    double mean_m1 = 0.0, mean_m2 = 0.0;
    for (std::size_t s = 0; s < q; ++s) {
      mean_m1 += exp->evaluate_single(m1[s]).tier[t].eer;
      mean_m2 += exp->evaluate_single(m2[v_star][s]).tier[t].eer;
    }
    std::printf("#   %-4s M1 %.2f%%  M2 %.2f%%\n", tiers[t],
                100.0 * mean_m1 / static_cast<double>(q),
                100.0 * mean_m2 / static_cast<double>(q));
  }
  bench::maybe_write_report(*exp, "bench_table3_dba_m2");
  return 0;
}
