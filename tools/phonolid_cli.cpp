// phonolid — command-line driver for the library.
//
//   phonolid corpus  [--scale S] [--seed N]         corpus statistics
//   phonolid decode  [--frontend Q] [--utterance I] decode + lattice dump
//   phonolid run     [--v N] [--mode m1|m2|both]    baseline vs DBA summary
//   phonolid det     [--v N] [--points N]           DET series (CSV)
//   phonolid votes                                  vote histogram (Table 1)
//   phonolid export  [--trace T] [--prom P]         run pipeline, export
//                                                   trace / Prometheus text
//   phonolid explain <utt-id> [--ledger L]          why was this utterance
//                                                   adopted/scored this way?
//   phonolid diag    --ledger L [--report R]        quality diagnostics from
//                                                   a decision ledger
//   phonolid power   [--input report.json]          per-stage energy and
//                                                   hardware-counter table
//   phonolid flame   [--input report.json]          sampling-profiler top
//                                                   table (self/total time)
//   phonolid profile [--hz N] [--out f.folded] <command...>
//                                                   run any command under the
//                                                   CPU profiler
//   phonolid report-diff base.json cur.json         compare two run reports
//   phonolid freeze  --out bundle/                  train + freeze a model
//                                                   bundle for serving
//   phonolid serve   --bundle bundle/ [--port N]    micro-batching scoring
//                                                   daemon over a bundle
//   phonolid version                                schema/format versions
//
// Global flags: --scale quick|default|full, --seed <uint>,
// --report out.json (structured JSON run report), --ledger out.jsonl
// (decision ledger, deterministic JSONL).  PHONOLID_TRACE / PHONOLID_PROM
// env vars additionally export a Perfetto trace / Prometheus metrics from
// any command.
#include <algorithm>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <csignal>

#include "core/experiment.h"
#include "core/frozen_model.h"
#include "core/stage_cache.h"
#include "serve/admin_http.h"
#include "serve/server.h"
#include "eval/diagnostics.h"
#include "obs/exporters.h"
#include "obs/ledger.h"
#include "pipeline/artifact_store.h"
#include "pipeline/stage_key.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/report.h"
#include "obs/report_diff.h"
#include "util/math_util.h"
#include "util/options.h"
#include "util/thread_pool.h"

namespace {

using namespace phonolid;

void usage() {
  std::fprintf(
      stderr,
      "usage: phonolid <command> [flags]\n"
      "  corpus       corpus statistics\n"
      "  decode       decode one test utterance (--frontend N --utterance I)\n"
      "  run          baseline vs DBA summary (--v N --mode m1|m2|both)\n"
      "               run/decode stream each utterance through the chunked\n"
      "               front end: --chunk-ms N sets the chunk size\n"
      "               (bit-identical for any N), --stream-checkpoint-s S\n"
      "               emits early LLR checkpoints every S seconds into the\n"
      "               report's \"streaming\" section\n"
      "  det          DET curve CSV for the baseline fusion (--points N)\n"
      "  votes        vote histogram and Tr_DBA sizes\n"
      "  export       run the pipeline and export observability artifacts:\n"
      "               --trace out.trace.json  Chrome trace-event JSON\n"
      "                                       (open in ui.perfetto.dev)\n"
      "               --prom  out.prom        Prometheus text metrics\n"
      "  explain      explain every DBA decision for one utterance:\n"
      "               explain <utt-id> [--ledger l.jsonl]\n"
      "               (without --ledger, runs the quick pipeline first;\n"
      "               exits 2 when the id is unknown)\n"
      "  diag         quality diagnostics from a decision ledger:\n"
      "               diag --ledger l.jsonl [--report out.json]\n"
      "               (DET/confusion/Cllr/adoption precision per round)\n"
      "  power        per-stage energy / hardware-counter table:\n"
      "               power [--scale S] [--cache-dir D]  run the pipeline\n"
      "               power --input report.json          table from a report\n"
      "               (energy source: PHONOLID_ENERGY=rapl|software|off,\n"
      "               default auto = RAPL when readable, else software model)\n"
      "  flame        sampling-profiler top table (self/total samples):\n"
      "               flame [--scale S] [--cache-dir D]  profile a live run\n"
      "               flame --input report.json          table from a report\n"
      "  profile      run any command under the sampling CPU profiler:\n"
      "               profile [--hz N] [--out out.folded] <command> [flags]\n"
      "               prints the flame table after the run; --out writes\n"
      "               folded stacks for flamegraph.pl / speedscope\n"
      "  report-diff  compare two structured run reports:\n"
      "               report-diff baseline.json current.json\n"
      "                 [--max-regress pct] [--max-eer-delta x]\n"
      "                 [--max-cavg-delta x] [--max-cllr-delta x]\n"
      "                 [--max-adoption-precision-drop x]\n"
      "                 [--max-energy-delta-pct pct] [--min-span-s s]\n"
      "                 [--max-self-share-delta x]\n"
      "                 [--max-serve-p99-regress pct]\n"
      "                 [--max-serve-throughput-drop pct]\n"
      "                 [--max-phase-p99-regress pct]\n"
      "               exits 1 when a threshold is violated\n"
      "  freeze       train and freeze a self-contained model bundle:\n"
      "               freeze --out bundle/ [--v N] [--mode m1|m2|both]\n"
      "               (front ends, VSM heads, fusion — servable without the\n"
      "               training corpus; verify/inspect via MANIFEST.json)\n"
      "  serve        scoring daemon over a frozen bundle:\n"
      "               serve --bundle bundle/ [--port N] [--port-file f]\n"
      "                 [--max-batch N] [--batch-window-ms W]\n"
      "                 [--queue-depth N] [--queue-max-mb MB]\n"
      "                 [--allow-swap 0|1] [--swap-root dir]\n"
      "                 [--admin-port N] [--admin-port-file f]\n"
      "                 [--slow-log N]\n"
      "               (port 0 = kernel-assigned; SIGTERM drains gracefully;\n"
      "               binary protocol in src/serve/protocol.h; the socket is\n"
      "               loopback-only and unauthenticated — gate model swaps\n"
      "               with --allow-swap 0 or confine them to --swap-root;\n"
      "               --admin-port serves live GET /metrics /healthz\n"
      "               /statusz /flamez over loopback HTTP)\n"
      "  version      print schema/format versions and build flags\n"
      "  pipeline     artifact-store maintenance:\n"
      "               pipeline status [--cache-dir D]  entry count + bytes\n"
      "               pipeline gc     [--cache-dir D] [--max-bytes N]\n"
      "                                               drop corrupt/stale\n"
      "                                               entries + orphan temps;\n"
      "                                               --max-bytes also evicts\n"
      "                                               oldest entries beyond\n"
      "                                               the byte budget\n"
      "global flags: --scale quick|default|full  --seed N\n"
      "              --report out.json  (corpus/decode/run/det/votes: write\n"
      "              a structured JSON run report)\n"
      "              --ledger out.jsonl  (run/det/votes/export/explain: write\n"
      "              the per-utterance decision ledger, deterministic JSONL)\n"
      "              --cache-dir D  persist stage artifacts (front-end\n"
      "              models, supervectors, VSMs) so re-runs skip training\n"
      "              and decoding; $PHONOLID_CACHE is the env fallback\n"
      "env: PHONOLID_TRACE=t.json PHONOLID_PROM=m.prom  record and export a\n"
      "     flight-recorder trace / Prometheus metrics from any command\n"
      "     PHONOLID_PROFILE=cpu PHONOLID_PROFILE_HZ=N  sample CPU stacks\n"
      "     PHONOLID_PROFILE_OUT=out.folded  write folded stacks at exit\n");
}

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;
  std::vector<std::string> positionals;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  /// Strict integer parse: any junk ("3x", "", "1e3") is a hard error, not a
  /// silent 0 — a mistyped --v or --seed must not quietly change the run.
  [[nodiscard]] long get_int(const std::string& key, long fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const std::string& text = it->second;
    long value = 0;
    const char* begin = text.data();
    const char* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end || text.empty()) {
      std::fprintf(stderr, "error: flag --%s expects an integer, got '%s'\n",
                   key.c_str(), text.c_str());
      std::exit(2);
    }
    return value;
  }
  /// Same strictness for floating-point flags (report-diff thresholds).
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const std::string& text = it->second;
    double value = 0.0;
    const char* begin = text.data();
    const char* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end || text.empty()) {
      std::fprintf(stderr, "error: flag --%s expects a number, got '%s'\n",
                   key.c_str(), text.c_str());
      std::exit(2);
    }
    return value;
  }
};

/// Every flag each command accepts; anything else is a usage error, not a
/// silent no-op (a typoed --sclae must not quietly run at default scale).
const std::map<std::string, std::set<std::string>>& command_flags() {
  static const std::map<std::string, std::set<std::string>> flags = {
      {"corpus", {"scale", "seed", "report", "cache-dir"}},
      {"decode",
       {"scale", "seed", "report", "frontend", "utterance", "cache-dir",
        "chunk-ms", "stream-checkpoint-s"}},
      {"run",
       {"scale", "seed", "report", "v", "mode", "cache-dir", "ledger",
        "chunk-ms", "stream-checkpoint-s"}},
      {"det", {"scale", "seed", "report", "points", "cache-dir", "ledger"}},
      {"votes", {"scale", "seed", "report", "cache-dir", "ledger"}},
      {"export", {"scale", "seed", "v", "trace", "prom", "cache-dir", "ledger"}},
      {"explain", {"scale", "seed", "v", "cache-dir", "ledger"}},
      {"diag", {"ledger", "report"}},
      {"power", {"scale", "seed", "report", "cache-dir", "input"}},
      {"flame", {"scale", "seed", "report", "cache-dir", "input"}},
      {"report-diff",
       {"max-regress", "max-eer-delta", "max-cavg-delta", "max-cllr-delta",
        "max-adoption-precision-drop", "max-energy-delta-pct", "min-span-s",
        "max-self-share-delta", "max-serve-p99-regress",
        "max-serve-throughput-drop", "max-phase-p99-regress"}},
      {"pipeline", {"cache-dir", "max-bytes"}},
      {"freeze", {"scale", "seed", "out", "v", "mode", "cache-dir", "report"}},
      {"serve",
       {"bundle", "port", "port-file", "max-batch", "batch-window-ms",
        "queue-depth", "queue-max-mb", "allow-swap", "swap-root",
        "admin-port", "admin-port-file", "slow-log"}},
      {"version", {}},
  };
  return flags;
}

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2 && argv[1][0] != '-') args.command = argv[1];
  const auto known = command_flags().find(args.command);
  if (!args.command.empty() && known == command_flags().end()) {
    std::fprintf(stderr, "error: unknown command '%s'\n",
                 args.command.c_str());
    usage();
    std::exit(2);
  }
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (known == command_flags().end() || known->second.count(key) == 0) {
        std::fprintf(stderr, "error: unknown flag --%s for command '%s'\n",
                     key.c_str(), args.command.c_str());
        usage();
        std::exit(2);
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: flag --%s expects a value\n",
                     key.c_str());
        usage();
        std::exit(2);
      }
      args.flags[key] = argv[++i];
    } else {
      args.positionals.push_back(token);
    }
  }
  return args;
}

core::ExperimentConfig config_from(const Args& args) {
  const std::string scale_text =
      args.get("scale", util::to_string(util::scale_from_env()));
  if (scale_text != "quick" && scale_text != "default" &&
      scale_text != "full") {
    std::fprintf(stderr,
                 "error: flag --scale expects quick|default|full, got '%s'\n",
                 scale_text.c_str());
    std::exit(2);
  }
  const auto scale = util::parse_scale(scale_text);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long>(util::master_seed())));
  auto cfg = core::ExperimentConfig::preset(scale, seed);
  cfg.report_path = args.get("report", "");
  cfg.cache_dir = args.get("cache-dir", "");
  cfg.ledger_path = args.get("ledger", "");
  if (args.flags.count("chunk-ms") != 0) {
    const long ms = args.get_int("chunk-ms", 0);
    if (ms <= 0) {
      std::fprintf(stderr,
                   "error: flag --chunk-ms expects a positive integer, got "
                   "'%ld'\n",
                   ms);
      std::exit(2);
    }
    cfg.batch_chunk_samples = static_cast<std::size_t>(
        static_cast<double>(ms) * cfg.corpus.sample_rate / 1000.0);
    if (cfg.batch_chunk_samples == 0) cfg.batch_chunk_samples = 1;
  }
  return cfg;
}

/// --stream-checkpoint-s: checkpoint cadence in seconds (0 = off; anything
/// non-positive when the flag IS given is a usage error).
double checkpoint_interval_from(const Args& args) {
  if (args.flags.count("stream-checkpoint-s") == 0) return 0.0;
  const double s = args.get_double("stream-checkpoint-s", 0.0);
  if (s <= 0.0) {
    std::fprintf(stderr,
                 "error: flag --stream-checkpoint-s expects a positive "
                 "number of seconds\n");
    std::exit(2);
  }
  return s;
}

obs::Json checkpoints_json(const std::vector<core::StreamingCheckpoint>& cps) {
  obs::Json out = obs::Json::array();
  for (const auto& cp : cps) {
    obs::Json entry = obs::Json::object();
    entry["audio_s"] = obs::Json(cp.audio_s);
    entry["frames"] = obs::Json(cp.frames);
    if (!cp.llr.empty()) {
      obs::Json llr = obs::Json::array();
      for (float v : cp.llr) llr.push_back(obs::Json(v));
      entry["llr"] = std::move(llr);
      entry["best_language"] = obs::Json(cp.best_language);
    }
    out.push_back(std::move(entry));
  }
  return out;
}

obs::Json tier_metrics_json(const core::EvalResult& result) {
  static const char* tiers[] = {"30s", "10s", "3s"};
  obs::Json out = obs::Json::object();
  for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
    obs::Json entry = obs::Json::object();
    entry["eer"] = obs::Json(result.tier[t].eer);
    entry["cavg"] = obs::Json(result.tier[t].cavg);
    out[tiers[t]] = std::move(entry);
  }
  return out;
}

/// Run report for commands that don't hold a full Experiment (corpus,
/// decode); same schema as Experiment::write_report minus its sections.
void write_plain_report(const core::ExperimentConfig& cfg,
                        const std::string& command, obs::Json results) {
  obs::ReportMeta meta;
  meta.tool = "phonolid";
  meta.command = command;
  meta.scale = util::to_string(cfg.scale);
  meta.seed = cfg.seed;
  meta.threads = util::ThreadPool::global().num_threads();
  obs::Json extra = obs::Json::object();
  extra["results"] = std::move(results);
  obs::write_report_file(cfg.report_path,
                         obs::build_report(meta, std::move(extra)));
}

obs::Json load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  std::stringstream buf;
  buf << in.rdbuf();
  try {
    return obs::Json::parse(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error("parsing '" + path + "': " + e.what());
  }
}

int cmd_corpus(const Args& args) {
  const auto cfg = config_from(args);
  const auto corpus = corpus::LreCorpus::build(cfg.corpus);
  std::printf("phone inventory : %zu universal phones\n",
              corpus.inventory().size());
  std::printf("target languages: %zu (", corpus.num_target_languages());
  for (const auto& l : corpus.target_languages()) std::printf(" %s", l.name().c_str());
  std::printf(" )\n");
  std::printf("native languages: %zu\n", corpus.native_languages().size());
  std::printf("vsm train       : %zu utterances\n", corpus.vsm_train().size());
  std::printf("dev             : %zu utterances\n", corpus.dev().size());
  std::printf("test            : %zu utterances\n", corpus.test().size());
  obs::Json tiers_json = obs::Json::object();
  for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
    const auto tier = static_cast<corpus::DurationTier>(t);
    const auto idx = corpus.test_indices(tier);
    double seconds = 0.0;
    for (std::size_t i : idx) {
      seconds += static_cast<double>(corpus.test()[i].samples.size()) /
                 cfg.corpus.sample_rate;
    }
    const double mean_s =
        idx.empty() ? 0.0 : seconds / static_cast<double>(idx.size());
    std::printf("  tier %-4s: %4zu utterances, mean %.2fs audio\n",
                corpus::to_string(tier), idx.size(), mean_s);
    obs::Json tier_entry = obs::Json::object();
    tier_entry["utterances"] = obs::Json(idx.size());
    tier_entry["mean_audio_s"] = obs::Json(mean_s);
    tiers_json[corpus::to_string(tier)] = std::move(tier_entry);
  }
  // Pairwise language distinctness.
  double min_dist = 1e9, max_dist = 0.0;
  const auto& langs = corpus.target_languages();
  for (std::size_t i = 0; i < langs.size(); ++i) {
    for (std::size_t j = i + 1; j < langs.size(); ++j) {
      const double d = corpus::LanguageSpec::bigram_distance(langs[i], langs[j]);
      min_dist = std::min(min_dist, d);
      max_dist = std::max(max_dist, d);
    }
  }
  std::printf("bigram distance : min %.3f  max %.3f (pairwise TV)\n", min_dist,
              max_dist);

  if (!cfg.report_path.empty()) {
    obs::Json results = obs::Json::object();
    results["phone_inventory"] = obs::Json(corpus.inventory().size());
    results["target_languages"] = obs::Json(corpus.num_target_languages());
    results["native_languages"] = obs::Json(corpus.native_languages().size());
    results["vsm_train_utterances"] = obs::Json(corpus.vsm_train().size());
    results["dev_utterances"] = obs::Json(corpus.dev().size());
    results["test_utterances"] = obs::Json(corpus.test().size());
    results["test_tiers"] = std::move(tiers_json);
    results["bigram_distance_min"] = obs::Json(min_dist);
    results["bigram_distance_max"] = obs::Json(max_dist);
    write_plain_report(cfg, "corpus", std::move(results));
  }
  return 0;
}

int cmd_decode(const Args& args) {
  auto cfg = config_from(args);
  const auto q = static_cast<std::size_t>(args.get_int("frontend", 0));
  if (q >= cfg.frontends.size()) {
    std::fprintf(stderr, "error: frontend %zu out of range (have %zu)\n", q,
                 cfg.frontends.size());
    return 1;
  }
  const auto corpus = corpus::LreCorpus::build(cfg.corpus);
  // Pull the trained front-end from the artifact store when possible —
  // decoding one utterance needs no TFLLR fit, so a warm decode skips all
  // training (a disabled store just computes).
  pipeline::ArtifactStore store(
      pipeline::ArtifactStore::resolve_root(cfg.cache_dir));
  const auto fe_key = core::frontend_stage_key(
      core::corpus_stage_key(cfg.corpus, cfg.scale, cfg.seed),
      cfg.frontends[q], cfg.seed);
  auto fe = store.get_or_compute<core::TrainedFrontEnd>(
      fe_key,
      [](std::istream& in) { return core::TrainedFrontEnd::deserialize(in); },
      [](std::ostream& out, const core::TrainedFrontEnd& v) {
        v.serialize(out);
      },
      [&] {
        return core::Subsystem::train_front_end(corpus, cfg.frontends[q],
                                                cfg.seed);
      });
  const auto sub =
      core::Subsystem::assemble(corpus, cfg.frontends[q], std::move(fe));
  sub->set_batch_chunk_samples(cfg.batch_chunk_samples);
  const double checkpoint_s = checkpoint_interval_from(args);
  const auto utt_index =
      static_cast<std::size_t>(args.get_int("utterance", 0)) %
      corpus.test().size();
  const auto& utt = corpus.test()[utt_index];
  std::printf("front-end : %s\n", sub->name().c_str());
  std::printf("utterance : #%zu, language %d, tier %s, %.2fs audio\n",
              utt_index, utt.language, corpus::to_string(utt.tier),
              static_cast<double>(utt.samples.size()) / cfg.corpus.sample_rate);
  std::vector<core::StreamingCheckpoint> checkpoints;
  decoder::Lattice lattice = [&] {
    if (checkpoint_s <= 0.0) return sub->decode(utt);
    core::StreamingOptions opts;
    opts.chunk_samples = cfg.batch_chunk_samples;
    opts.checkpoint_interval_s = checkpoint_s;
    opts.apply_tfllr = false;  // no TFLLR fit in lattice-only decode
    auto res = sub->score_stream(utt.samples, opts);
    checkpoints = std::move(res.checkpoints);
    return std::move(res.lattice);
  }();
  for (const auto& cp : checkpoints) {
    std::printf("checkpoint: %.2fs audio, %zu frames resolved\n", cp.audio_s,
                cp.frames);
  }
  std::printf("lattice   : %zu frames, %zu edges\n", lattice.num_frames(),
              lattice.edges().size());
  std::printf("1-best    :");
  for (std::uint32_t p : lattice.best_path()) std::printf(" %u", p);
  std::printf("\nedges (start end phone posterior):\n");
  const std::size_t show = std::min<std::size_t>(lattice.edges().size(), 40);
  for (std::size_t i = 0; i < show; ++i) {
    const auto& e = lattice.edges()[i];
    std::printf("  %4u %4u  p%02u  %.3f\n", e.start_node, e.end_node, e.phone,
                e.posterior);
  }
  if (show < lattice.edges().size()) {
    std::printf("  ... (%zu more)\n", lattice.edges().size() - show);
  }

  if (!cfg.report_path.empty()) {
    obs::Json results = obs::Json::object();
    results["frontend"] = obs::Json(sub->name());
    results["frontend_index"] = obs::Json(q);
    results["utterance_index"] = obs::Json(utt_index);
    results["utterance_language"] = obs::Json(utt.language);
    results["utterance_tier"] = obs::Json(corpus::to_string(utt.tier));
    results["lattice_frames"] = obs::Json(lattice.num_frames());
    results["lattice_edges"] = obs::Json(lattice.edges().size());
    results["best_path_length"] = obs::Json(lattice.best_path().size());
    if (checkpoint_s > 0.0) {
      obs::Json streaming = obs::Json::object();
      streaming["version"] = obs::Json(1);
      streaming["chunk_samples"] = obs::Json(cfg.batch_chunk_samples);
      streaming["checkpoint_interval_s"] = obs::Json(checkpoint_s);
      streaming["checkpoints"] = checkpoints_json(checkpoints);
      results["streaming"] = std::move(streaming);
    }
    write_plain_report(cfg, "decode", std::move(results));
  }
  return 0;
}

int cmd_run(const Args& args) {
  const auto cfg = config_from(args);
  const auto exp = core::Experiment::build(cfg);
  const auto v = static_cast<std::size_t>(
      args.get_int("v", static_cast<long>(std::min<std::size_t>(3, exp->num_subsystems()))));
  const std::string mode = args.get("mode", "both");

  std::vector<const core::SubsystemScores*> blocks;
  for (const auto& b : exp->baseline_scores()) blocks.push_back(&b);
  const auto baseline = exp->evaluate(blocks);

  const auto selection = exp->select(v);
  std::printf("Tr_DBA(V=%zu): %zu utterances, label error %.2f%%\n", v,
              selection.utt_index.size(),
              100.0 * core::selection_error_rate(selection, exp->test_labels()));

  std::vector<core::SubsystemScores> m1, m2;
  std::vector<const core::SubsystemScores*> dba_blocks;
  std::vector<double> weights;
  if (mode == "m1" || mode == "both") {
    m1 = exp->run_dba(v, core::DbaMode::kM1);
    for (const auto& b : m1) dba_blocks.push_back(&b);
    for (std::size_t c : selection.subsystem_fit_counts) {
      weights.push_back(static_cast<double>(c));
    }
  }
  if (mode == "m2" || mode == "both") {
    m2 = exp->run_dba(v, core::DbaMode::kM2);
    for (const auto& b : m2) dba_blocks.push_back(&b);
    for (std::size_t c : selection.subsystem_fit_counts) {
      weights.push_back(static_cast<double>(c));
    }
  }
  if (dba_blocks.empty()) {
    std::fprintf(stderr, "error: --mode must be m1, m2 or both\n");
    return 1;
  }
  const auto dba = exp->evaluate(dba_blocks, std::move(weights));

  std::printf("\n%-8s %18s %18s\n", "tier", "baseline EER/Cavg",
              "DBA EER/Cavg");
  static const char* tiers[] = {"30s", "10s", "3s"};
  for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
    std::printf("%-8s %8.2f / %-7.2f %8.2f / %-7.2f\n", tiers[t],
                100.0 * baseline.tier[t].eer, 100.0 * baseline.tier[t].cavg,
                100.0 * dba.tier[t].eer, 100.0 * dba.tier[t].cavg);
  }

  // Early-decision demonstration: re-stream the longest-tier test
  // utterances with per-checkpoint LLRs from the baseline VSMs.
  const double checkpoint_s = checkpoint_interval_from(args);
  obs::Json streaming_section = obs::Json::object();
  if (checkpoint_s > 0.0) {
    const auto& corpus = exp->corpus();
    const auto tier30 =
        corpus.test_indices(static_cast<corpus::DurationTier>(0));
    const std::size_t n_utts = std::min<std::size_t>(2, tier30.size());
    const std::size_t k = exp->num_languages();
    std::printf("\nstreaming checkpoints (every %.1fs):\n", checkpoint_s);
    obs::Json utts_json = obs::Json::array();
    for (std::size_t u = 0; u < n_utts; ++u) {
      const std::size_t utt_index = tier30[u];
      const auto& utt = corpus.test()[utt_index];
      obs::Json utt_json = obs::Json::object();
      utt_json["utterance"] = obs::Json(utt_index);
      utt_json["language"] = obs::Json(utt.language);
      utt_json["audio_s"] =
          obs::Json(static_cast<double>(utt.samples.size()) /
                    cfg.corpus.sample_rate);
      obs::Json subs_json = obs::Json::array();
      for (std::size_t s = 0; s < exp->num_subsystems(); ++s) {
        const svm::VsmModel& vsm = exp->baseline_vsm(s);
        core::StreamingOptions opts;
        opts.chunk_samples = cfg.batch_chunk_samples;
        opts.checkpoint_interval_s = checkpoint_s;
        opts.scorer = [&vsm, k](const phonotactic::SparseVec& sv) {
          std::vector<float> out(k);
          vsm.score(sv, std::span<float>(out));
          return out;
        };
        const core::StreamingResult res =
            exp->subsystem(s).score_stream(utt.samples, opts);
        std::printf("  utt #%-4zu %-16s:", utt_index,
                    exp->subsystem(s).name().c_str());
        for (const auto& cp : res.checkpoints) {
          std::printf(" %.0fs->%s", cp.audio_s,
                      cp.best_language < k
                          ? corpus.target_languages()[cp.best_language]
                                .name()
                                .c_str()
                          : "?");
        }
        std::printf("  (true %s)\n",
                    corpus.target_languages()[static_cast<std::size_t>(
                                                  utt.language)]
                        .name()
                        .c_str());
        obs::Json sub_json = obs::Json::object();
        sub_json["subsystem"] = obs::Json(exp->subsystem(s).name());
        sub_json["checkpoints"] = checkpoints_json(res.checkpoints);
        subs_json.push_back(std::move(sub_json));
      }
      utt_json["subsystems"] = std::move(subs_json);
      utts_json.push_back(std::move(utt_json));
    }
    streaming_section["version"] = obs::Json(1);
    streaming_section["chunk_samples"] = obs::Json(cfg.batch_chunk_samples);
    streaming_section["checkpoint_interval_s"] = obs::Json(checkpoint_s);
    streaming_section["utterances"] = std::move(utts_json);
  }

  if (!cfg.ledger_path.empty()) exp->write_ledger(cfg.ledger_path);
  if (!cfg.report_path.empty()) {
    obs::Json results = obs::Json::object();
    results["baseline"] = tier_metrics_json(baseline);
    results["dba"] = tier_metrics_json(dba);
    results["mode"] = obs::Json(mode);
    results["min_votes"] = obs::Json(v);
    obs::Json extra = obs::Json::object();
    extra["results"] = std::move(results);
    if (checkpoint_s > 0.0) {
      extra["streaming"] = std::move(streaming_section);
    }
    exp->write_report(cfg.report_path, "run", std::move(extra));
  }
  return 0;
}

int cmd_det(const Args& args) {
  const auto cfg = config_from(args);
  const auto exp = core::Experiment::build(cfg);
  const auto points = static_cast<std::size_t>(args.get_int("points", 50));

  std::vector<const core::SubsystemScores*> blocks;
  for (const auto& b : exp->baseline_scores()) blocks.push_back(&b);
  const auto result = exp->evaluate(blocks);

  std::printf("tier,p_fa,p_miss,probit_fa,probit_miss\n");
  static const char* tiers[] = {"30s", "10s", "3s"};
  for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
    for (const auto& p : eval::thin_det_curve(result.det[t], points)) {
      std::printf("%s,%.6f,%.6f,%.4f,%.4f\n", tiers[t], p.p_fa, p.p_miss,
                  util::probit(std::max(p.p_fa, 1e-6)),
                  util::probit(std::max(p.p_miss, 1e-6)));
    }
  }

  if (!cfg.ledger_path.empty()) exp->write_ledger(cfg.ledger_path);
  if (!cfg.report_path.empty()) {
    obs::Json results = obs::Json::object();
    results["baseline"] = tier_metrics_json(result);
    obs::Json det = obs::Json::object();
    for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
      det[tiers[t]] = obs::Json(result.det[t].size());
    }
    results["det_points"] = std::move(det);
    obs::Json extra = obs::Json::object();
    extra["results"] = std::move(results);
    exp->write_report(cfg.report_path, "det", std::move(extra));
  }
  return 0;
}

int cmd_votes(const Args& args) {
  const auto cfg = config_from(args);
  const auto exp = core::Experiment::build(cfg);
  const auto& votes = exp->votes();
  std::vector<std::size_t> hist(exp->num_subsystems() + 1, 0);
  for (std::size_t j = 0; j < votes.num_utts; ++j) {
    std::uint16_t best = 0;
    for (std::size_t k = 0; k < votes.num_classes; ++k) {
      best = std::max(best, votes.count(j, k));
    }
    ++hist[best];
  }
  std::printf("max-votes histogram over %zu test utterances:\n",
              votes.num_utts);
  for (std::size_t c = 0; c < hist.size(); ++c) {
    std::printf("  %zu: %zu\n", c, hist[c]);
  }
  std::printf("\nTr_DBA per threshold:\n");
  obs::Json thresholds = obs::Json::array();
  for (std::size_t v = exp->num_subsystems(); v >= 1; --v) {
    const auto sel = exp->select(v);
    std::printf("  V=%zu: %5zu adopted, label error %.2f%%\n", v,
                sel.utt_index.size(),
                100.0 * core::selection_error_rate(sel, exp->test_labels()));
    const double label_error =
        core::selection_error_rate(sel, exp->test_labels());
    obs::Json entry = obs::Json::object();
    entry["min_votes"] = obs::Json(v);
    entry["adopted"] = obs::Json(sel.utt_index.size());
    entry["label_error"] = obs::Json(label_error);
    thresholds.push_back(std::move(entry));
  }

  if (!cfg.ledger_path.empty()) exp->write_ledger(cfg.ledger_path);
  if (!cfg.report_path.empty()) {
    obs::Json histogram = obs::Json::array();
    for (std::size_t c = 0; c < hist.size(); ++c) {
      histogram.push_back(obs::Json(hist[c]));
    }
    obs::Json results = obs::Json::object();
    results["max_votes_histogram"] = std::move(histogram);
    results["trdba_per_threshold"] = std::move(thresholds);
    obs::Json extra = obs::Json::object();
    extra["results"] = std::move(results);
    exp->write_report(cfg.report_path, "votes", std::move(extra));
  }
  return 0;
}

int cmd_export(const Args& args) {
  const std::string trace_path = args.get("trace", "");
  const std::string prom_path = args.get("prom", "");
  if (trace_path.empty() && prom_path.empty()) {
    std::fprintf(stderr, "error: export needs --trace and/or --prom\n");
    usage();
    return 2;
  }
  if (!trace_path.empty() && !obs::FlightRecorder::enabled()) {
    obs::FlightRecorder::enable();
    obs::FlightRecorder::set_thread_name("main");
  }
  // Exercise the full pipeline — build, baseline fusion, one M1 DBA round —
  // so the exported timeline covers decode, VSM training, DBA, and fusion.
  const auto cfg = config_from(args);
  const auto exp = core::Experiment::build(cfg);
  const auto v = static_cast<std::size_t>(args.get_int(
      "v", static_cast<long>(std::min<std::size_t>(3, exp->num_subsystems()))));
  std::vector<const core::SubsystemScores*> blocks;
  for (const auto& b : exp->baseline_scores()) blocks.push_back(&b);
  (void)exp->evaluate(blocks);
  const auto m1 = exp->run_dba(v, core::DbaMode::kM1);
  std::vector<const core::SubsystemScores*> dba_blocks;
  for (const auto& b : m1) dba_blocks.push_back(&b);
  (void)exp->evaluate(dba_blocks);

  if (!cfg.ledger_path.empty()) exp->write_ledger(cfg.ledger_path);
  if (!trace_path.empty()) {
    obs::write_chrome_trace(trace_path);
    std::printf("wrote Chrome trace to %s (open in ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  if (!prom_path.empty()) {
    obs::write_prometheus(prom_path);
    std::printf("wrote Prometheus metrics to %s\n", prom_path.c_str());
  }
  return 0;
}

int cmd_explain(const Args& args) {
  if (args.positionals.size() != 1) {
    std::fprintf(stderr,
                 "error: explain needs exactly one utterance id: "
                 "explain <utt-id> [--ledger l.jsonl]\n");
    usage();
    return 2;
  }
  const std::string& text = args.positionals[0];
  std::uint64_t id = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, id);
  if (ec != std::errc() || ptr != end || text.empty()) {
    std::fprintf(stderr, "error: explain expects an utterance id, got '%s'\n",
                 text.c_str());
    return 2;
  }

  obs::DecisionLedger ledger;
  const std::string ledger_path = args.get("ledger", "");
  if (!ledger_path.empty()) {
    try {
      ledger = obs::DecisionLedger::read_jsonl_file(ledger_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  } else {
    // No ledger file: run the pipeline (baseline eval, one M1 DBA round,
    // fused eval) so the explanation covers scores, votes, and adoption.
    const auto cfg = config_from(args);
    const auto exp = core::Experiment::build(cfg);
    const auto v = static_cast<std::size_t>(args.get_int(
        "v",
        static_cast<long>(std::min<std::size_t>(3, exp->num_subsystems()))));
    std::vector<const core::SubsystemScores*> blocks;
    for (const auto& b : exp->baseline_scores()) blocks.push_back(&b);
    (void)exp->evaluate(blocks);
    const auto m1 = exp->run_dba(v, core::DbaMode::kM1);
    std::vector<const core::SubsystemScores*> dba_blocks;
    for (const auto& b : m1) dba_blocks.push_back(&b);
    (void)exp->evaluate(dba_blocks);
    ledger = exp->ledger();
  }

  const obs::LedgerEntry* entry = ledger.find(id);
  if (entry == nullptr) {
    std::fprintf(stderr,
                 "error: utterance id %llu not in the ledger (%zu entries)\n",
                 static_cast<unsigned long long>(id), ledger.entries.size());
    return 2;
  }
  std::fputs(obs::format_explain(ledger, *entry).c_str(), stdout);
  return 0;
}

int cmd_diag(const Args& args) {
  const std::string ledger_path = args.get("ledger", "");
  if (ledger_path.empty()) {
    std::fprintf(stderr, "error: diag needs --ledger <file.jsonl>\n");
    usage();
    return 2;
  }
  obs::DecisionLedger ledger;
  try {
    ledger = obs::DecisionLedger::read_jsonl_file(ledger_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (ledger.empty()) {
    std::fprintf(stderr, "error: ledger '%s' has no entries\n",
                 ledger_path.c_str());
    return 2;
  }
  const eval::DiagnosticsResult diag = eval::compute_diagnostics(ledger);
  std::fputs(eval::format_diagnostics(diag).c_str(), stdout);

  // Echo this process's resource usage (same numbers as the report's
  // "resource" section) so a diag run doubles as a quick cost check.
  const obs::ResourceUsage usage = obs::current_resource_usage();
  std::printf("\nresource: wall %.3f s", usage.wall_s);
  if (usage.valid) {
    std::printf(", user CPU %.3f s, system CPU %.3f s, peak RSS %.1f MiB, "
                "ctx switches %ju voluntary / %ju involuntary",
                usage.user_cpu_s, usage.system_cpu_s,
                static_cast<double>(usage.peak_rss_bytes) / (1024.0 * 1024.0),
                static_cast<std::uintmax_t>(usage.voluntary_ctx_switches),
                static_cast<std::uintmax_t>(usage.involuntary_ctx_switches));
  }
  std::printf("\n");

  if (const std::string report_path = args.get("report", "");
      !report_path.empty()) {
    eval::publish_quality_gauges(diag);
    obs::ReportMeta meta;
    meta.tool = "phonolid";
    meta.command = "diag";
    meta.scale = ledger.scale;
    meta.seed = ledger.seed;
    meta.threads = util::ThreadPool::global().num_threads();
    obs::Json extra = obs::Json::object();
    extra["quality"] = eval::diagnostics_json(diag);
    obs::write_report_file(report_path,
                           obs::build_report(meta, std::move(extra)));
  }
  return 0;
}

/// Per-stage energy/counter table from a schema-v1 report.  Shared by the
/// live `phonolid power` run and `power --input report.json`, so committed
/// BENCH_*.json baselines can be inspected the same way as a fresh run.
std::string format_power_table(const obs::Json& report) {
  std::ostringstream out;
  char line[256];

  const obs::Json* energy = report.find("energy");
  const obs::Json* hw = report.find("hw");
  const auto num = [](const obs::Json* obj, const char* key) {
    const obs::Json* v = obj == nullptr ? nullptr : obj->find(key);
    return v != nullptr && v->is_number() ? v->as_double() : 0.0;
  };
  const obs::Json* source =
      energy == nullptr ? nullptr : energy->find("source");
  const std::string source_text =
      source != nullptr && source->is_string() ? source->as_string() : "off";
  const double total_j = num(energy, "total_joules");

  out << "energy source : " << source_text;
  if (source_text == "software") {
    std::snprintf(line, sizeof(line), " (%.3g J/GFLOP)",
                  num(energy, "joules_per_gflop"));
    out << line;
  }
  out << '\n';
  std::snprintf(line, sizeof(line), "total joules  : %.6f\n", total_j);
  out << line;
  std::snprintf(line, sizeof(line), "total GFLOPs  : %.3f\n",
                num(energy, "total_gflops"));
  out << line;
  std::snprintf(line, sizeof(line), "GFLOP per J   : %.3f\n",
                num(energy, "gflops_per_watt"));
  out << line;
  const obs::Json* hw_avail = hw == nullptr ? nullptr : hw->find("available");
  if (hw_avail != nullptr && hw_avail->is_bool() && hw_avail->as_bool()) {
    std::snprintf(line, sizeof(line),
                  "hw counters   : IPC %.2f, LLC miss rate %.3f, branch miss "
                  "rate %.3f\n",
                  num(hw, "ipc"), num(hw, "llc_miss_rate"),
                  num(hw, "branch_miss_rate"));
    out << line;
  } else {
    const obs::Json* reason =
        hw == nullptr ? nullptr : hw->find("unavailable_reason");
    out << "hw counters   : unavailable"
        << (reason != nullptr && reason->is_string()
                ? " (" + reason->as_string() + ")"
                : std::string())
        << '\n';
  }

  // One row per span that carries energy or counters, heaviest first.
  struct Row {
    std::string path;
    double joules = 0.0;
    double cycles = 0.0;
    double instructions = 0.0;
    double llc_misses = 0.0;
  };
  std::vector<Row> rows;
  double attributed = 0.0;
  if (const obs::Json* spans = report.find("spans");
      spans != nullptr && spans->is_array()) {
    for (const obs::Json& s : spans->as_array()) {
      const obs::Json* path = s.find("path");
      const obs::Json* joules = s.find("joules");
      const obs::Json* span_hw = s.find("hw");
      if (path == nullptr || !path->is_string()) continue;
      if (joules == nullptr && span_hw == nullptr) continue;
      Row row;
      row.path = path->as_string();
      if (joules != nullptr && joules->is_number()) {
        row.joules = joules->as_double();
        attributed += row.joules;
      }
      row.cycles = num(span_hw, "cycles");
      row.instructions = num(span_hw, "instructions");
      row.llc_misses = num(span_hw, "llc_misses");
      rows.push_back(std::move(row));
    }
  }
  if (total_j > attributed) {
    rows.push_back({"(unattributed)", total_j - attributed, 0, 0, 0});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.joules > b.joules; });

  out << '\n';
  std::snprintf(line, sizeof(line), "%-64s %12s %6s %12s %12s %10s\n", "stage",
                "joules", "%", "cycles", "instr", "llc-miss");
  out << line;
  for (const Row& row : rows) {
    const double pct = total_j > 0.0 ? 100.0 * row.joules / total_j : 0.0;
    std::snprintf(line, sizeof(line),
                  "%-64s %12.6f %5.1f%% %12.0f %12.0f %10.0f\n",
                  row.path.c_str(), row.joules, pct, row.cycles,
                  row.instructions, row.llc_misses);
    out << line;
  }
  const double sum = attributed + std::max(0.0, total_j - attributed);
  std::snprintf(line, sizeof(line), "%-64s %12.6f %5.1f%%\n", "(sum)", sum,
                total_j > 0.0 ? 100.0 * sum / total_j : 0.0);
  out << line;
  return out.str();
}

int cmd_power(const Args& args) {
  if (const std::string input = args.get("input", ""); !input.empty()) {
    std::fputs(format_power_table(load_json_file(input)).c_str(), stdout);
    return 0;
  }
  const auto cfg = config_from(args);
  const auto exp = core::Experiment::build(cfg);
  // Score the baseline fusion so VSM scoring and calibration show up in the
  // table alongside the build-time stages (training, decoding, features).
  std::vector<const core::SubsystemScores*> blocks;
  for (const auto& b : exp->baseline_scores()) blocks.push_back(&b);
  (void)exp->evaluate(blocks);

  obs::ReportMeta meta;
  meta.tool = "phonolid";
  meta.command = "power";
  meta.scale = util::to_string(cfg.scale);
  meta.seed = cfg.seed;
  meta.threads = util::ThreadPool::global().num_threads();
  const obs::Json report = obs::build_report(meta);
  std::fputs(format_power_table(report).c_str(), stdout);
  if (!cfg.report_path.empty()) {
    obs::write_report_file(cfg.report_path, report);
  }
  return 0;
}

/// Top-functions / per-span table from a report's "profile" section (or a
/// live Profiler::profile_json() document).  Shared by `phonolid flame`,
/// `flame --input report.json`, and the `profile` wrapper's exit summary.
std::string format_flame_table(const obs::Json* profile) {
  std::ostringstream out;
  char line[512];
  if (profile == nullptr || !profile->is_object()) {
    out << "profile       : (no profile section in this report)\n";
    return out.str();
  }
  const auto num = [&](const char* key) {
    const obs::Json* v = profile->find(key);
    return v != nullptr && v->is_number() ? v->as_double() : 0.0;
  };
  const obs::Json* available = profile->find("available");
  if (available == nullptr || !available->is_bool() ||
      !available->as_bool()) {
    const obs::Json* source = profile->find("source");
    const obs::Json* reason = profile->find("unavailable_reason");
    out << "profile       : unavailable";
    if (source != nullptr && source->is_string() &&
        source->as_string() == "off") {
      out << " (profiling was off; set PHONOLID_PROFILE=cpu or use "
             "`phonolid profile`)";
    } else if (reason != nullptr && reason->is_string()) {
      out << " (" << reason->as_string() << ")";
    }
    out << '\n';
    return out.str();
  }
  const double samples = num("samples");
  std::snprintf(line, sizeof(line), "profile       : cpu @ %.0f Hz\n",
                num("hz"));
  out << line;
  std::snprintf(line, sizeof(line), "samples       : %.0f (%.0f dropped)\n",
                samples, num("dropped"));
  out << line;
  std::snprintf(line, sizeof(line),
                "symbolized    : %.1f%% of frames, %.1f%% of samples "
                "attributed to a named function\n",
                100.0 * num("symbolized_share"),
                100.0 * num("attributed_share"));
  out << line;

  out << "\ntop functions by self time:\n";
  std::snprintf(line, sizeof(line), "%7s %7s %9s %9s  %s\n", "self%",
                "total%", "self", "total", "function");
  out << line;
  if (const obs::Json* functions = profile->find("functions");
      functions != nullptr && functions->is_array()) {
    for (const obs::Json& fn : functions->as_array()) {
      const obs::Json* name = fn.find("name");
      const auto fnum = [&](const char* key) {
        const obs::Json* v = fn.find(key);
        return v != nullptr && v->is_number() ? v->as_double() : 0.0;
      };
      std::snprintf(line, sizeof(line), "%6.1f%% %6.1f%% %9.0f %9.0f  %s\n",
                    100.0 * fnum("self_share"), 100.0 * fnum("total_share"),
                    fnum("self"), fnum("total"),
                    name != nullptr && name->is_string()
                        ? name->as_string().c_str()
                        : "?");
      out << line;
    }
  }

  out << "\nsamples by span:\n";
  std::snprintf(line, sizeof(line), "%7s %9s  %s\n", "share%", "samples",
                "span");
  out << line;
  if (const obs::Json* spans = profile->find("spans");
      spans != nullptr && spans->is_array()) {
    for (const obs::Json& span : spans->as_array()) {
      const obs::Json* path = span.find("path");
      const auto snum = [&](const char* key) {
        const obs::Json* v = span.find(key);
        return v != nullptr && v->is_number() ? v->as_double() : 0.0;
      };
      std::snprintf(line, sizeof(line), "%6.1f%% %9.0f  %s\n",
                    100.0 * snum("share"), snum("samples"),
                    path != nullptr && path->is_string()
                        ? path->as_string().c_str()
                        : "?");
      out << line;
    }
  }
  return out.str();
}

int cmd_flame(const Args& args) {
  if (const std::string input = args.get("input", ""); !input.empty()) {
    const obs::Json report = load_json_file(input);
    std::fputs(format_flame_table(report.find("profile")).c_str(), stdout);
    return 0;
  }
  // Live mode: profile the same pipeline `power` runs.  An unavailable
  // profiler still runs the pipeline and reports why the table is empty.
  if (!obs::Profiler::enabled() && !obs::Profiler::start(0)) {
    std::fprintf(stderr,
                 "phonolid: CPU profiler unavailable (%s); running "
                 "unprofiled\n",
                 std::strerror(obs::Profiler::unavailable_errno()));
  }
  const auto cfg = config_from(args);
  const auto exp = core::Experiment::build(cfg);
  std::vector<const core::SubsystemScores*> blocks;
  for (const auto& b : exp->baseline_scores()) blocks.push_back(&b);
  (void)exp->evaluate(blocks);

  obs::ReportMeta meta;
  meta.tool = "phonolid";
  meta.command = "flame";
  meta.scale = util::to_string(cfg.scale);
  meta.seed = cfg.seed;
  meta.threads = util::ThreadPool::global().num_threads();
  obs::Profiler::stop();
  const obs::Json report = obs::build_report(meta);
  std::fputs(format_flame_table(report.find("profile")).c_str(), stdout);
  if (!cfg.report_path.empty()) {
    obs::write_report_file(cfg.report_path, report);
  }
  return 0;
}

int cmd_freeze(const Args& args) {
  const auto cfg = config_from(args);
  const std::string out_dir = args.get("out", "");
  if (out_dir.empty()) {
    std::fprintf(stderr, "error: freeze needs --out <bundle-dir>\n");
    usage();
    return 2;
  }
  const std::string mode = args.get("mode", "both");
  if (mode != "m1" && mode != "m2" && mode != "both") {
    std::fprintf(stderr, "error: --mode must be m1, m2 or both\n");
    return 2;
  }
  const auto exp = core::Experiment::build(cfg);
  const auto v = static_cast<std::size_t>(args.get_int(
      "v", static_cast<long>(std::min<std::size_t>(3, exp->num_subsystems()))));
  const std::size_t num_subs = exp->num_subsystems();

  // Same training sequence as `phonolid run`, capturing the boosted VSMs
  // and fitting the same count-weighted fusion — so a frozen bundle scores
  // bit-identically to the offline run that would have produced it.
  const auto selection = exp->select(v);
  std::vector<core::SubsystemScores> m1, m2;
  std::vector<const core::SubsystemScores*> blocks;
  std::vector<double> weights;
  std::vector<svm::VsmModel> models;
  if (mode == "m1" || mode == "both") {
    m1 = exp->run_dba(v, core::DbaMode::kM1, &models);
    for (const auto& b : m1) blocks.push_back(&b);
    for (std::size_t c : selection.subsystem_fit_counts) {
      weights.push_back(static_cast<double>(c));
    }
  }
  if (mode == "m2" || mode == "both") {
    m2 = exp->run_dba(v, core::DbaMode::kM2, &models);
    for (const auto& b : m2) blocks.push_back(&b);
    for (std::size_t c : selection.subsystem_fit_counts) {
      weights.push_back(static_cast<double>(c));
    }
  }
  if (models.size() != blocks.size()) {
    std::fprintf(stderr,
                 "error: freeze captured %zu VSMs for %zu score blocks\n",
                 models.size(), blocks.size());
    return 1;
  }
  const backend::ScoreFusion fusion = exp->fit_fusion(blocks, weights);

  std::vector<core::FrozenHead> heads;
  heads.reserve(models.size());
  for (std::size_t h = 0; h < models.size(); ++h) {
    heads.push_back(core::FrozenHead{h % num_subs, std::move(models[h])});
  }
  core::FrozenModel::write_bundle(out_dir, *exp, heads, fusion);
  std::printf("froze %zu subsystems, %zu heads (mode %s, V=%zu) -> %s\n",
              num_subs, heads.size(), mode.c_str(), v, out_dir.c_str());
  std::printf("bundle format v%u, %zu languages, serve with:\n",
              static_cast<unsigned>(core::kBundleFormatVersion),
              exp->num_languages());
  std::printf("  phonolid serve --bundle %s --port 0\n", out_dir.c_str());

  if (!cfg.report_path.empty()) {
    obs::Json results = obs::Json::object();
    results["bundle_dir"] = obs::Json(out_dir);
    results["bundle_format"] = obs::Json(core::kBundleFormatVersion);
    results["subsystems"] = obs::Json(num_subs);
    results["heads"] = obs::Json(heads.size());
    results["languages"] = obs::Json(exp->num_languages());
    results["mode"] = obs::Json(mode);
    results["min_votes"] = obs::Json(v);
    write_plain_report(cfg, "freeze", std::move(results));
  }
  return 0;
}

// SIGTERM/SIGINT → graceful drain.  The handler only touches the
// async-signal-safe request_shutdown() (atomic store + pipe write).
std::atomic<serve::ScoreServer*> g_serve_instance{nullptr};

void serve_signal_handler(int) {
  if (auto* server = g_serve_instance.load()) server->request_shutdown();
}

int cmd_serve(const Args& args) {
  const std::string bundle_dir = args.get("bundle", "");
  if (bundle_dir.empty()) {
    std::fprintf(stderr, "error: serve needs --bundle <bundle-dir>\n");
    usage();
    return 2;
  }
  serve::ServerConfig scfg;
  scfg.port = static_cast<int>(args.get_int("port", 0));
  scfg.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 32));
  scfg.batch_window_ms = args.get_double("batch-window-ms", 2.0);
  scfg.queue_depth =
      static_cast<std::size_t>(args.get_int("queue-depth", 256));
  const long queue_max_mb = args.get_int("queue-max-mb", 256);
  scfg.allow_swap = args.get_int("allow-swap", 1) != 0;
  scfg.swap_root = args.get("swap-root", "");
  scfg.admin_port = static_cast<int>(args.get_int("admin-port", -1));
  const long slow_log = args.get_int("slow-log", 8);
  if (scfg.max_batch == 0 || scfg.queue_depth == 0 || queue_max_mb <= 0 ||
      scfg.batch_window_ms < 0.0 || scfg.admin_port < -1 || slow_log < 0) {
    std::fprintf(stderr,
                 "error: --max-batch/--queue-depth/--queue-max-mb expect "
                 "positive integers, --batch-window-ms a non-negative "
                 "number, --admin-port -1 (off), 0 (ephemeral) or a port, "
                 "--slow-log a non-negative count\n");
    return 2;
  }
  scfg.queue_max_bytes = static_cast<std::size_t>(queue_max_mb) << 20;
  scfg.slow_log = static_cast<std::size_t>(slow_log);

  auto model = std::make_shared<const core::FrozenModel>(
      core::FrozenModel::load_bundle(bundle_dir));
  std::printf("serve: loaded bundle %s (scale %s, seed %llu, %zu languages, "
              "%zu subsystems, %zu heads)\n",
              bundle_dir.c_str(), model->scale().c_str(),
              static_cast<unsigned long long>(model->seed()),
              model->num_languages(), model->num_subsystems(),
              model->num_heads());

  serve::ScoreServer server(std::move(model), scfg);
  const int port = server.start();
  g_serve_instance.store(&server);
  struct sigaction sa = {};
  sa.sa_handler = serve_signal_handler;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::printf("serve: listening on 127.0.0.1:%d (protocol v%u, max batch "
              "%zu, window %.1f ms, queue %zu / %ld MB, swap %s)\n",
              port, static_cast<unsigned>(serve::kServeProtocolVersion),
              scfg.max_batch, scfg.batch_window_ms, scfg.queue_depth,
              queue_max_mb,
              !scfg.allow_swap          ? "disabled"
              : scfg.swap_root.empty()  ? "any path"
                                        : scfg.swap_root.c_str());
  if (server.admin_port() >= 0) {
    std::printf("serve: admin endpoint on http://127.0.0.1:%d "
                "(/metrics /healthz /statusz /flamez, admin http v%u)\n",
                server.admin_port(),
                static_cast<unsigned>(serve::kAdminHttpVersion));
  }
  std::fflush(stdout);
  if (const std::string port_file = args.get("port-file", "");
      !port_file.empty()) {
    std::ofstream out(port_file);
    out << port << '\n';
    if (!out) {
      std::fprintf(stderr, "error: cannot write --port-file %s\n",
                   port_file.c_str());
      server.shutdown();
      g_serve_instance.store(nullptr);
      return 1;
    }
  }
  if (const std::string admin_port_file = args.get("admin-port-file", "");
      !admin_port_file.empty()) {
    std::ofstream out(admin_port_file);
    out << server.admin_port() << '\n';
    if (!out) {
      std::fprintf(stderr, "error: cannot write --admin-port-file %s\n",
                   admin_port_file.c_str());
      server.shutdown();
      g_serve_instance.store(nullptr);
      return 1;
    }
  }

  server.wait();  // blocks until SIGTERM/SIGINT, then drains
  g_serve_instance.store(nullptr);
  // A daemon normally dies by signal, so flush the PHONOLID_PROM /
  // PHONOLID_TRACE / PHONOLID_PROFILE_OUT artifacts here, right after the
  // drain — not only in main()'s at-exit hook (obs/exporters.h), which a
  // future non-graceful teardown path might never reach.
  obs::export_from_env();
  std::printf("serve: drained and stopped\n");
  return 0;
}

int cmd_version() {
  std::printf("phonolid version surface\n");
  std::printf("  report schema     : v%d\n", obs::kReportSchemaVersion);
  std::printf("  pipeline format   : v%u\n",
              static_cast<unsigned>(pipeline::kPipelineFormatVersion));
  std::printf("  decision ledger   : v%d\n", obs::kLedgerVersion);
  std::printf("  quality section   : v%d\n", eval::kQualityVersion);
  std::printf("  model bundle      : v%u\n",
              static_cast<unsigned>(core::kBundleFormatVersion));
  std::printf("  serve protocol    : v%u (min v%u)\n",
              static_cast<unsigned>(serve::kServeProtocolVersion),
              static_cast<unsigned>(serve::kMinServeProtocolVersion));
  std::printf("  serve admin http  : v%u\n",
              static_cast<unsigned>(serve::kAdminHttpVersion));
  std::printf("build flags\n");
#if defined(PHONOLID_BUILD_TYPE)
  std::printf("  build type        : %s\n", PHONOLID_BUILD_TYPE);
#endif
#if defined(PHONOLID_SANITIZE)
  std::printf("  sanitizer         : %s\n",
              PHONOLID_SANITIZE[0] != '\0' ? PHONOLID_SANITIZE : "none");
#endif
#if defined(__VERSION__)
  std::printf("  compiler          : %s\n", __VERSION__);
#endif
#if defined(NDEBUG)
  std::printf("  assertions        : off (NDEBUG)\n");
#else
  std::printf("  assertions        : on\n");
#endif
  std::printf("  profiler default  : %d Hz\n", obs::kDefaultProfileHz);
  return 0;
}

int cmd_pipeline(const Args& args) {
  const std::string verb =
      args.positionals.empty() ? "status" : args.positionals[0];
  const std::string root =
      pipeline::ArtifactStore::resolve_root(args.get("cache-dir", ""));
  if (root.empty()) {
    std::fprintf(stderr,
                 "error: no cache directory (pass --cache-dir or set "
                 "$PHONOLID_CACHE)\n");
    return 2;
  }
  pipeline::ArtifactStore store(root);
  if (verb == "status") {
    const auto st = store.status();
    std::printf("cache dir : %s\n", store.root().c_str());
    std::printf("format    : v%u\n",
                static_cast<unsigned>(pipeline::kPipelineFormatVersion));
    std::printf("entries   : %zu\n", st.entries);
    std::printf("bytes     : %ju\n", static_cast<std::uintmax_t>(st.bytes));
    return 0;
  }
  if (verb == "gc") {
    const long max_bytes = args.get_int("max-bytes", 0);
    if (max_bytes < 0) {
      std::fprintf(stderr,
                   "error: flag --max-bytes expects a non-negative integer\n");
      return 2;
    }
    const auto r = store.gc(static_cast<std::uintmax_t>(max_bytes));
    std::printf("kept %zu entries, removed %zu (%ju bytes reclaimed",
                r.kept, r.removed,
                static_cast<std::uintmax_t>(r.reclaimed_bytes));
    if (max_bytes > 0) {
      std::printf(", %zu evicted for the %ld-byte budget", r.evicted,
                  max_bytes);
    }
    std::printf(")\n");
    return 0;
  }
  std::fprintf(stderr, "error: unknown pipeline verb '%s' (status|gc)\n",
               verb.c_str());
  usage();
  return 2;
}

int cmd_report_diff(const Args& args) {
  if (args.positionals.size() != 2) {
    std::fprintf(stderr,
                 "error: report-diff needs exactly two report files: "
                 "report-diff <baseline.json> <current.json>\n");
    usage();
    return 2;
  }
  obs::ReportDiffOptions options;
  options.max_regress_pct = args.get_double("max-regress", -1.0);
  options.max_eer_delta = args.get_double("max-eer-delta", -1.0);
  options.max_cavg_delta = args.get_double("max-cavg-delta", -1.0);
  options.max_cllr_delta = args.get_double("max-cllr-delta", -1.0);
  options.max_adoption_precision_drop =
      args.get_double("max-adoption-precision-drop", -1.0);
  options.max_energy_delta_pct = args.get_double("max-energy-delta-pct", -1.0);
  options.max_self_share_delta = args.get_double("max-self-share-delta", -1.0);
  options.max_serve_p99_regress_pct =
      args.get_double("max-serve-p99-regress", -1.0);
  options.max_serve_throughput_drop_pct =
      args.get_double("max-serve-throughput-drop", -1.0);
  options.max_phase_p99_regress_pct =
      args.get_double("max-phase-p99-regress", -1.0);
  options.min_span_s = args.get_double("min-span-s", options.min_span_s);
  const obs::Json baseline = load_json_file(args.positionals[0]);
  const obs::Json current = load_json_file(args.positionals[1]);
  const obs::ReportDiffResult result =
      obs::diff_reports(baseline, current, options);
  std::fputs(result.format().c_str(), stdout);
  return result.violated ? 1 : 0;
}

int dispatch(const Args& args) {
  if (args.command == "corpus") return cmd_corpus(args);
  if (args.command == "decode") return cmd_decode(args);
  if (args.command == "run") return cmd_run(args);
  if (args.command == "det") return cmd_det(args);
  if (args.command == "votes") return cmd_votes(args);
  if (args.command == "export") return cmd_export(args);
  if (args.command == "explain") return cmd_explain(args);
  if (args.command == "diag") return cmd_diag(args);
  if (args.command == "power") return cmd_power(args);
  if (args.command == "flame") return cmd_flame(args);
  if (args.command == "pipeline") return cmd_pipeline(args);
  if (args.command == "report-diff") return cmd_report_diff(args);
  if (args.command == "freeze") return cmd_freeze(args);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "version") return cmd_version();
  usage();
  return args.command.empty() ? 1 : 2;
}

/// `phonolid profile [--hz N] [--out f.folded] <command> [flags...]`: run
/// any other command under the sampling profiler and print the flame table
/// (plus optional folded stacks) when it finishes.  Wrapper flags come
/// before the subcommand; everything after it is parsed by the subcommand's
/// own (strict) flag table.
int run_profile_wrapper(int argc, char** argv) {
  long hz = 0;
  std::string out_path;
  int i = 2;
  for (; i < argc && std::strncmp(argv[i], "--", 2) == 0; ++i) {
    const std::string key = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: flag %s expects a value\n", key.c_str());
      return 2;
    }
    if (key == "--hz") {
      hz = std::strtol(argv[++i], nullptr, 10);
      if (hz <= 0) {
        std::fprintf(stderr, "error: --hz expects a positive integer\n");
        return 2;
      }
    } else if (key == "--out") {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "error: unknown profile flag %s (profile flags: --hz N "
                   "--out f.folded, before the subcommand)\n",
                   key.c_str());
      return 2;
    }
  }
  if (i >= argc) {
    std::fprintf(stderr,
                 "error: profile needs a subcommand: phonolid profile "
                 "[--hz N] [--out f.folded] <command> [flags]\n");
    usage();
    return 2;
  }
  if (std::strcmp(argv[i], "profile") == 0) {
    std::fprintf(stderr, "error: profile cannot wrap itself\n");
    return 2;
  }
  std::vector<char*> inner;
  inner.push_back(argv[0]);
  for (int j = i; j < argc; ++j) inner.push_back(argv[j]);
  const Args args =
      parse_args(static_cast<int>(inner.size()), inner.data());

  obs::enable_recorder_from_env();
  if (!obs::Profiler::start(static_cast<int>(hz))) {
    std::fprintf(stderr,
                 "phonolid: CPU profiler unavailable (%s); running "
                 "unprofiled\n",
                 std::strerror(obs::Profiler::unavailable_errno()));
  }
  int rc = 0;
  try {
    rc = dispatch(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  obs::Profiler::stop();
  const obs::Json profile = obs::Profiler::profile_json();
  std::printf("\n");
  std::fputs(format_flame_table(&profile).c_str(), stdout);
  if (!out_path.empty()) {
    try {
      obs::write_folded_stacks(out_path);
      std::fprintf(stderr,
                   "phonolid: wrote folded stacks to %s (render with "
                   "flamegraph.pl or load into speedscope.app)\n",
                   out_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "phonolid: folded-stack export failed: %s\n",
                   e.what());
    }
  }
  obs::export_from_env();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "profile") == 0) {
    return run_profile_wrapper(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--version") == 0) {
    return cmd_version();
  }
  const Args args = parse_args(argc, argv);
  obs::enable_recorder_from_env();
  int rc = 0;
  try {
    rc = dispatch(args);
  } catch (const std::exception& e) {
    // E.g. an unwritable --report path; don't lose the run to a terminate().
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  // Flush PHONOLID_TRACE / PHONOLID_PROM even on failure — a trace of a
  // failed run is exactly when you want one.
  obs::export_from_env();
  return rc;
}
