// phonolid — command-line driver for the library.
//
//   phonolid corpus  [--scale S] [--seed N]         corpus statistics
//   phonolid decode  [--frontend Q] [--utterance I] decode + lattice dump
//   phonolid run     [--v N] [--mode m1|m2|both]    baseline vs DBA summary
//   phonolid det     [--v N] [--points N]           DET series (CSV)
//   phonolid votes                                  vote histogram (Table 1)
//
// Global flags: --scale quick|default|full, --seed <uint>,
// --report out.json (run/det/votes: structured JSON run report).
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/math_util.h"
#include "util/options.h"

namespace {

using namespace phonolid;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  /// Strict integer parse: any junk ("3x", "", "1e3") is a hard error, not a
  /// silent 0 — a mistyped --v or --seed must not quietly change the run.
  [[nodiscard]] long get_int(const std::string& key, long fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const std::string& text = it->second;
    long value = 0;
    const char* begin = text.data();
    const char* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end || text.empty()) {
      std::fprintf(stderr, "error: flag --%s expects an integer, got '%s'\n",
                   key.c_str(), text.c_str());
      std::exit(2);
    }
    return value;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2 && argv[1][0] != '-') args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0 && i + 1 < argc) {
      args.flags[key.substr(2)] = argv[++i];
    }
  }
  return args;
}

core::ExperimentConfig config_from(const Args& args) {
  const auto scale = util::parse_scale(
      args.get("scale", util::to_string(util::scale_from_env())));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long>(util::master_seed())));
  auto cfg = core::ExperimentConfig::preset(scale, seed);
  cfg.report_path = args.get("report", "");
  return cfg;
}

obs::Json tier_metrics_json(const core::EvalResult& result) {
  static const char* tiers[] = {"30s", "10s", "3s"};
  obs::Json out = obs::Json::object();
  for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
    obs::Json entry = obs::Json::object();
    entry["eer"] = obs::Json(result.tier[t].eer);
    entry["cavg"] = obs::Json(result.tier[t].cavg);
    out[tiers[t]] = std::move(entry);
  }
  return out;
}

int cmd_corpus(const Args& args) {
  const auto cfg = config_from(args);
  const auto corpus = corpus::LreCorpus::build(cfg.corpus);
  std::printf("phone inventory : %zu universal phones\n",
              corpus.inventory().size());
  std::printf("target languages: %zu (", corpus.num_target_languages());
  for (const auto& l : corpus.target_languages()) std::printf(" %s", l.name().c_str());
  std::printf(" )\n");
  std::printf("native languages: %zu\n", corpus.native_languages().size());
  std::printf("vsm train       : %zu utterances\n", corpus.vsm_train().size());
  std::printf("dev             : %zu utterances\n", corpus.dev().size());
  std::printf("test            : %zu utterances\n", corpus.test().size());
  for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
    const auto tier = static_cast<corpus::DurationTier>(t);
    const auto idx = corpus.test_indices(tier);
    double seconds = 0.0;
    for (std::size_t i : idx) {
      seconds += static_cast<double>(corpus.test()[i].samples.size()) /
                 cfg.corpus.sample_rate;
    }
    std::printf("  tier %-4s: %4zu utterances, mean %.2fs audio\n",
                corpus::to_string(tier), idx.size(),
                idx.empty() ? 0.0 : seconds / static_cast<double>(idx.size()));
  }
  // Pairwise language distinctness.
  double min_dist = 1e9, max_dist = 0.0;
  const auto& langs = corpus.target_languages();
  for (std::size_t i = 0; i < langs.size(); ++i) {
    for (std::size_t j = i + 1; j < langs.size(); ++j) {
      const double d = corpus::LanguageSpec::bigram_distance(langs[i], langs[j]);
      min_dist = std::min(min_dist, d);
      max_dist = std::max(max_dist, d);
    }
  }
  std::printf("bigram distance : min %.3f  max %.3f (pairwise TV)\n", min_dist,
              max_dist);
  return 0;
}

int cmd_decode(const Args& args) {
  auto cfg = config_from(args);
  const auto q = static_cast<std::size_t>(args.get_int("frontend", 0));
  if (q >= cfg.frontends.size()) {
    std::fprintf(stderr, "error: frontend %zu out of range (have %zu)\n", q,
                 cfg.frontends.size());
    return 1;
  }
  const auto corpus = corpus::LreCorpus::build(cfg.corpus);
  const auto sub = core::Subsystem::build(corpus, cfg.frontends[q], cfg.seed);
  const auto utt_index =
      static_cast<std::size_t>(args.get_int("utterance", 0)) %
      corpus.test().size();
  const auto& utt = corpus.test()[utt_index];
  std::printf("front-end : %s\n", sub->name().c_str());
  std::printf("utterance : #%zu, language %d, tier %s, %.2fs audio\n",
              utt_index, utt.language, corpus::to_string(utt.tier),
              static_cast<double>(utt.samples.size()) / cfg.corpus.sample_rate);
  const auto lattice = sub->decode(utt);
  std::printf("lattice   : %zu frames, %zu edges\n", lattice.num_frames(),
              lattice.edges().size());
  std::printf("1-best    :");
  for (std::uint32_t p : lattice.best_path()) std::printf(" %u", p);
  std::printf("\nedges (start end phone posterior):\n");
  const std::size_t show = std::min<std::size_t>(lattice.edges().size(), 40);
  for (std::size_t i = 0; i < show; ++i) {
    const auto& e = lattice.edges()[i];
    std::printf("  %4u %4u  p%02u  %.3f\n", e.start_node, e.end_node, e.phone,
                e.posterior);
  }
  if (show < lattice.edges().size()) {
    std::printf("  ... (%zu more)\n", lattice.edges().size() - show);
  }
  return 0;
}

int cmd_run(const Args& args) {
  const auto cfg = config_from(args);
  const auto exp = core::Experiment::build(cfg);
  const auto v = static_cast<std::size_t>(
      args.get_int("v", static_cast<long>(std::min<std::size_t>(3, exp->num_subsystems()))));
  const std::string mode = args.get("mode", "both");

  std::vector<const core::SubsystemScores*> blocks;
  for (const auto& b : exp->baseline_scores()) blocks.push_back(&b);
  const auto baseline = exp->evaluate(blocks);

  const auto selection = exp->select(v);
  std::printf("Tr_DBA(V=%zu): %zu utterances, label error %.2f%%\n", v,
              selection.utt_index.size(),
              100.0 * core::selection_error_rate(selection, exp->test_labels()));

  std::vector<core::SubsystemScores> m1, m2;
  std::vector<const core::SubsystemScores*> dba_blocks;
  std::vector<double> weights;
  if (mode == "m1" || mode == "both") {
    m1 = exp->run_dba(v, core::DbaMode::kM1);
    for (const auto& b : m1) dba_blocks.push_back(&b);
    for (std::size_t c : selection.subsystem_fit_counts) {
      weights.push_back(static_cast<double>(c));
    }
  }
  if (mode == "m2" || mode == "both") {
    m2 = exp->run_dba(v, core::DbaMode::kM2);
    for (const auto& b : m2) dba_blocks.push_back(&b);
    for (std::size_t c : selection.subsystem_fit_counts) {
      weights.push_back(static_cast<double>(c));
    }
  }
  if (dba_blocks.empty()) {
    std::fprintf(stderr, "error: --mode must be m1, m2 or both\n");
    return 1;
  }
  const auto dba = exp->evaluate(dba_blocks, std::move(weights));

  std::printf("\n%-8s %18s %18s\n", "tier", "baseline EER/Cavg",
              "DBA EER/Cavg");
  static const char* tiers[] = {"30s", "10s", "3s"};
  for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
    std::printf("%-8s %8.2f / %-7.2f %8.2f / %-7.2f\n", tiers[t],
                100.0 * baseline.tier[t].eer, 100.0 * baseline.tier[t].cavg,
                100.0 * dba.tier[t].eer, 100.0 * dba.tier[t].cavg);
  }

  if (!cfg.report_path.empty()) {
    obs::Json results = obs::Json::object();
    results["baseline"] = tier_metrics_json(baseline);
    results["dba"] = tier_metrics_json(dba);
    results["mode"] = obs::Json(mode);
    results["min_votes"] = obs::Json(v);
    obs::Json extra = obs::Json::object();
    extra["results"] = std::move(results);
    exp->write_report(cfg.report_path, "run", std::move(extra));
  }
  return 0;
}

int cmd_det(const Args& args) {
  const auto cfg = config_from(args);
  const auto exp = core::Experiment::build(cfg);
  const auto points = static_cast<std::size_t>(args.get_int("points", 50));

  std::vector<const core::SubsystemScores*> blocks;
  for (const auto& b : exp->baseline_scores()) blocks.push_back(&b);
  const auto result = exp->evaluate(blocks);

  std::printf("tier,p_fa,p_miss,probit_fa,probit_miss\n");
  static const char* tiers[] = {"30s", "10s", "3s"};
  for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
    for (const auto& p : eval::thin_det_curve(result.det[t], points)) {
      std::printf("%s,%.6f,%.6f,%.4f,%.4f\n", tiers[t], p.p_fa, p.p_miss,
                  util::probit(std::max(p.p_fa, 1e-6)),
                  util::probit(std::max(p.p_miss, 1e-6)));
    }
  }

  if (!cfg.report_path.empty()) {
    obs::Json results = obs::Json::object();
    results["baseline"] = tier_metrics_json(result);
    obs::Json det = obs::Json::object();
    for (std::size_t t = 0; t < corpus::kNumTiers; ++t) {
      det[tiers[t]] = obs::Json(result.det[t].size());
    }
    results["det_points"] = std::move(det);
    obs::Json extra = obs::Json::object();
    extra["results"] = std::move(results);
    exp->write_report(cfg.report_path, "det", std::move(extra));
  }
  return 0;
}

int cmd_votes(const Args& args) {
  const auto cfg = config_from(args);
  const auto exp = core::Experiment::build(cfg);
  const auto& votes = exp->votes();
  std::vector<std::size_t> hist(exp->num_subsystems() + 1, 0);
  for (std::size_t j = 0; j < votes.num_utts; ++j) {
    std::uint16_t best = 0;
    for (std::size_t k = 0; k < votes.num_classes; ++k) {
      best = std::max(best, votes.count(j, k));
    }
    ++hist[best];
  }
  std::printf("max-votes histogram over %zu test utterances:\n",
              votes.num_utts);
  for (std::size_t c = 0; c < hist.size(); ++c) {
    std::printf("  %zu: %zu\n", c, hist[c]);
  }
  std::printf("\nTr_DBA per threshold:\n");
  obs::Json thresholds = obs::Json::array();
  for (std::size_t v = exp->num_subsystems(); v >= 1; --v) {
    const auto sel = exp->select(v);
    std::printf("  V=%zu: %5zu adopted, label error %.2f%%\n", v,
                sel.utt_index.size(),
                100.0 * core::selection_error_rate(sel, exp->test_labels()));
    obs::Json entry = obs::Json::object();
    entry["min_votes"] = obs::Json(v);
    entry["adopted"] = obs::Json(sel.utt_index.size());
    entry["label_error"] =
        obs::Json(core::selection_error_rate(sel, exp->test_labels()));
    thresholds.push_back(std::move(entry));
  }

  if (!cfg.report_path.empty()) {
    obs::Json histogram = obs::Json::array();
    for (std::size_t c = 0; c < hist.size(); ++c) {
      histogram.push_back(obs::Json(hist[c]));
    }
    obs::Json results = obs::Json::object();
    results["max_votes_histogram"] = std::move(histogram);
    results["trdba_per_threshold"] = std::move(thresholds);
    obs::Json extra = obs::Json::object();
    extra["results"] = std::move(results);
    exp->write_report(cfg.report_path, "votes", std::move(extra));
  }
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: phonolid <command> [flags]\n"
               "  corpus   corpus statistics\n"
               "  decode   decode one test utterance (--frontend N --utterance I)\n"
               "  run      baseline vs DBA summary (--v N --mode m1|m2|both)\n"
               "  det      DET curve CSV for the baseline fusion (--points N)\n"
               "  votes    vote histogram and Tr_DBA sizes\n"
               "global flags: --scale quick|default|full  --seed N\n"
               "              --report out.json  (run/det/votes: write a\n"
               "              structured JSON run report)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    if (args.command == "corpus") return cmd_corpus(args);
    if (args.command == "decode") return cmd_decode(args);
    if (args.command == "run") return cmd_run(args);
    if (args.command == "det") return cmd_det(args);
    if (args.command == "votes") return cmd_votes(args);
  } catch (const std::exception& e) {
    // E.g. an unwritable --report path; don't lose the run to a terminate().
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return args.command.empty() ? 1 : 2;
}
