#include "serve/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/serialize.h"

namespace phonolid::serve {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(std::exchange(other.next_id_, 1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = std::exchange(other.next_id_, 1);
  }
  return *this;
}

void Client::connect(const std::string& host, int port) {
  close();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &result);
  if (rc != 0) {
    throw std::runtime_error("serve client: resolve " + host + ": " +
                             ::gai_strerror(rc));
  }
  std::string err;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      fd_ = fd;
      break;
    }
    err = std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(result);
  if (fd_ < 0) {
    throw std::runtime_error("serve client: connect " + host + ":" +
                             std::to_string(port) + ": " +
                             (err.empty() ? "no address" : err));
  }
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Response Client::call(const Request& request) {
  if (fd_ < 0) throw std::runtime_error("serve client: not connected");
  if (!write_frame(fd_, encode_request(request))) {
    throw std::runtime_error("serve client: connection lost on send");
  }
  std::string body;
  if (!read_frame(fd_, body)) {
    throw std::runtime_error("serve client: connection closed by server");
  }
  return decode_response(body);
}

Response Client::score(std::span<const float> samples,
                       std::uint32_t deadline_ms, std::uint64_t trace_id) {
  Request request;
  request.type = FrameType::kScore;
  request.request_id = next_id_++;
  request.deadline_ms = deadline_ms;
  request.trace_id = trace_id;
  request.samples.assign(samples.begin(), samples.end());
  return call(request);
}

Response Client::ping() {
  Request request;
  request.type = FrameType::kPing;
  request.request_id = next_id_++;
  return call(request);
}

Response Client::stats() {
  Request request;
  request.type = FrameType::kStats;
  request.request_id = next_id_++;
  return call(request);
}

Response Client::swap(const std::string& bundle_dir) {
  Request request;
  request.type = FrameType::kSwap;
  request.request_id = next_id_++;
  request.text = bundle_dir;
  return call(request);
}

}  // namespace phonolid::serve
