// The `phonolid serve` scoring daemon.
//
// A long-lived TCP server over a FrozenModel bundle (core/frozen_model.h):
//
//   accept thread ── one reader thread per connection ── bounded queue ──
//   batcher thread ── FrozenModel::score_batch on the helping-wait pool
//
// Dynamic micro-batching: the batcher pops the first queued request, waits
// up to `batch_window_ms` for co-arrivals (or until `max_batch`), and scores
// the coalesced batch as one la-kernel-backed pass.  Because every scoring
// stage is row-independent (see frozen_model.h), batching changes latency
// and throughput but never the bytes of an answer.
//
// Overload and deadlines are explicit, never silent: a full queue answers
// kOverloaded immediately; a request whose deadline lapses before its batch
// starts is shed with kDeadlineExceeded; scores arriving after a shutdown
// request get kShuttingDown.  Warm model swap (kSwap frame) loads the new
// bundle off the hot path and atomically flips a shared_ptr — in-flight
// batches finish on the generation they started with, so zero requests fail
// across a swap.
//
// Observability: serve.* registry metrics (queue depth gauge, batch-size and
// latency histograms, shed/swap/error counters) flow into the Prometheus
// exporter and run reports; the kStats frame returns a JSON snapshot of this
// server's own counters (per-instance, so tests and bench_serve see only
// their server).
#pragma once

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/frozen_model.h"
#include "obs/metrics.h"
#include "serve/protocol.h"

namespace phonolid::serve {

struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 = kernel-assigned (read it from start()).
  int port = 0;
  /// Micro-batch size cap.
  std::size_t max_batch = 32;
  /// How long the batcher waits for co-arrivals after popping the first
  /// request of a batch (0 = score whatever is queued immediately).
  double batch_window_ms = 2.0;
  /// Bounded request queue; a score arriving at a full queue is answered
  /// kOverloaded immediately.
  std::size_t queue_depth = 256;
};

class ScoreServer {
 public:
  ScoreServer(std::shared_ptr<const core::FrozenModel> model,
              ServerConfig config = {});
  ~ScoreServer();

  ScoreServer(const ScoreServer&) = delete;
  ScoreServer& operator=(const ScoreServer&) = delete;

  /// Bind + listen on 127.0.0.1 and spawn the accept/batcher threads.
  /// Returns the bound port (the ephemeral one when config.port == 0).
  int start();

  /// Async-signal-safe graceful-drain trigger (SIGTERM/SIGINT handlers):
  /// sets a flag and pokes the wake pipe; the actual drain runs in wait().
  void request_shutdown() noexcept;

  /// Block until a shutdown is requested, then drain and tear down.
  void wait();

  /// Graceful drain (idempotent): stop accepting, answer everything queued,
  /// unblock and join every thread.
  void shutdown();

  [[nodiscard]] int port() const noexcept { return port_; }
  [[nodiscard]] std::shared_ptr<const core::FrozenModel> model() const;

 private:
  struct Connection;
  struct Pending {
    Request request;
    std::shared_ptr<Connection> conn;
    std::chrono::steady_clock::time_point arrival;
  };

  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> conn);
  void handle_request(const std::shared_ptr<Connection>& conn,
                      Request request);
  void batch_loop();
  void process_batch(std::vector<Pending> batch);
  void respond(const std::shared_ptr<Connection>& conn, Response response);
  [[nodiscard]] std::string stats_json() const;

  std::shared_ptr<const core::FrozenModel> model_;
  mutable std::mutex model_mu_;
  ServerConfig config_;

  int listen_fd_ = -1;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> shutdown_requested_{false};
  bool started_ = false;
  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;

  std::thread accept_thread_;
  std::thread batch_thread_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;  // guarded by queue_mu_

  // Per-instance stats for the kStats frame (registry serve.* metrics are
  // process-global and would bleed across servers in one test process).
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> sheds_overloaded_{0};
  std::atomic<std::uint64_t> sheds_deadline_{0};
  std::atomic<std::uint64_t> sheds_shutdown_{0};
  std::atomic<std::uint64_t> bad_frames_{0};
  std::atomic<std::uint64_t> score_errors_{0};
  std::atomic<std::uint64_t> swaps_{0};
  obs::Histogram batch_hist_;
  obs::Histogram latency_hist_;
};

}  // namespace phonolid::serve
