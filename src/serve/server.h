// The `phonolid serve` scoring daemon.
//
// A long-lived TCP server over a FrozenModel bundle (core/frozen_model.h):
//
//   accept thread ── one reader thread per connection ── bounded queue ──
//   batcher thread ── FrozenModel::score_batch on the helping-wait pool
//
// Dynamic micro-batching: the batcher pops the first queued request, waits
// up to `batch_window_ms` for co-arrivals (or until `max_batch`), and scores
// the coalesced batch as one la-kernel-backed pass.  Because every scoring
// stage is row-independent (see frozen_model.h), batching changes latency
// and throughput but never the bytes of an answer.
//
// Overload and deadlines are explicit, never silent: a full queue answers
// kOverloaded immediately; a request whose deadline lapses before its batch
// starts is shed with kDeadlineExceeded; scores arriving after a shutdown
// request get kShuttingDown.  Warm model swap (kSwap frame) loads the new
// bundle off the hot path and atomically flips a shared_ptr — in-flight
// batches finish on the generation they started with, so zero requests fail
// across a swap.
//
// Trust model: the daemon binds 127.0.0.1 only and speaks an
// unauthenticated protocol, so every local process that can open the port
// is fully trusted — including kSwap, which loads a filesystem path as the
// serving model.  Deployments that share a host with untrusted local users
// should set ServerConfig::allow_swap = false (CLI `--allow-swap 0`) or
// confine swap targets with ServerConfig::swap_root (CLI `--swap-root`).
//
// Observability: serve.* registry metrics (queue depth gauge, batch-size,
// latency, and per-phase histograms, shed/swap/error counters) flow into the
// Prometheus exporter and run reports; the kStats frame returns a JSON
// snapshot of this server's own counters (per-instance, so tests and
// bench_serve see only their server).
//
// Live observability plane (ServerConfig::admin_port, admin_http.h): an
// embedded loopback HTTP endpoint serves /metrics (live prometheus_text()),
// /healthz (readiness: accepting, not draining, queue below shed limits),
// /statusz (the kStats JSON plus admin/build versions and the slow-request
// log), and /flamez (profiler folded stacks under PHONOLID_PROFILE=cpu).
//
// Request-scoped tracing: every admitted score carries a trace id (client
// supplied via a PLSV v2 frame, or minted at admission) and per-phase
// monotonic timestamps — queue_wait (admission → batcher pop), batch_wait
// (pop → compute start), compute (score_batch), write (response encode +
// send) — recorded into serve.phase.*_ms histograms, emitted as
// flight-recorder events, and folded into a bounded worst-N slow-request
// log exposed via kStats//statusz.
#pragma once

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/frozen_model.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/protocol.h"

namespace phonolid::serve {

struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 = kernel-assigned (read it from start()).
  int port = 0;
  /// Micro-batch size cap.
  std::size_t max_batch = 32;
  /// How long the batcher waits for co-arrivals after popping the first
  /// request of a batch (0 = score whatever is queued immediately).
  double batch_window_ms = 2.0;
  /// Bounded request queue; a score arriving at a full queue is answered
  /// kOverloaded immediately.
  std::size_t queue_depth = 256;
  /// Byte budget over queued kScore PCM payloads.  The count bound alone
  /// admits queue_depth × kMaxFrameBytes (~16 GB at the defaults) of pinned
  /// samples; a score that would push the queue past this budget is
  /// answered kOverloaded instead.
  std::size_t queue_max_bytes = 256u << 20;
  /// kSwap gate (see the trust model above): false rejects every swap
  /// frame with kBadRequest.
  bool allow_swap = true;
  /// When non-empty, swap targets must resolve inside this directory tree;
  /// anything else is rejected with kBadRequest.  Empty = any path.
  std::string swap_root;
  /// Admin HTTP plane (admin_http.h) port on 127.0.0.1: -1 disables it,
  /// 0 asks the kernel (read it back from admin_port()), >0 binds fixed.
  int admin_port = -1;
  /// Capacity of the slow-request log: the N worst-latency completed
  /// requests (by total time) kept for kStats//statusz.  0 disables it.
  std::size_t slow_log = 8;
};

class AdminHttpServer;

class ScoreServer {
 public:
  ScoreServer(std::shared_ptr<const core::FrozenModel> model,
              ServerConfig config = {});
  ~ScoreServer();

  ScoreServer(const ScoreServer&) = delete;
  ScoreServer& operator=(const ScoreServer&) = delete;

  /// Bind + listen on 127.0.0.1 and spawn the accept/batcher threads.
  /// Returns the bound port (the ephemeral one when config.port == 0).
  int start();

  /// Async-signal-safe graceful-drain trigger (SIGTERM/SIGINT handlers):
  /// sets a flag and pokes the wake pipe; the actual drain runs in wait().
  void request_shutdown() noexcept;

  /// Block until a shutdown is requested, then drain and tear down.
  void wait();

  /// Graceful drain (idempotent): stop accepting, answer everything queued,
  /// unblock and join every thread.
  void shutdown();

  [[nodiscard]] int port() const noexcept { return port_; }
  /// Bound admin HTTP port, or -1 when the admin plane is disabled.
  [[nodiscard]] int admin_port() const noexcept { return admin_port_; }
  [[nodiscard]] std::shared_ptr<const core::FrozenModel> model() const;

  /// Readiness as served by /healthz: started, accept loop alive, not
  /// draining, and the queue below both shed thresholds.  `reason` names
  /// the first failing check when not ready.
  struct HealthStatus {
    bool ready = false;
    std::string reason;
  };
  [[nodiscard]] HealthStatus health() const;

 private:
  struct Connection;
  struct Pending {
    Request request;
    std::shared_ptr<Connection> conn;
    std::chrono::steady_clock::time_point arrival;
    /// When the batcher popped this request off the queue (end of the
    /// queue_wait phase, start of batch_wait).
    std::chrono::steady_clock::time_point dequeued;
  };
  /// One completed request in the worst-N slow log (kStats//statusz).
  struct SlowRequest {
    std::uint64_t trace_id = 0;
    std::uint64_t request_id = 0;
    double total_ms = 0;
    double queue_wait_ms = 0;
    double batch_wait_ms = 0;
    double compute_ms = 0;
    double write_ms = 0;
    std::size_t batch_size = 0;
    const char* outcome = "ok";  // "ok" / "error" / "deadline"
  };

  void accept_loop();
  /// Join connection threads that finished since the last call (the reader
  /// threads park their own handles in finished_threads_ on exit).
  void reap_connection_threads();
  void connection_loop(std::shared_ptr<Connection> conn);
  void handle_request(const std::shared_ptr<Connection>& conn,
                      Request request);
  [[nodiscard]] bool swap_path_allowed(const std::string& path) const;
  void batch_loop();
  /// Pop the head of queue_ and release its byte accounting; queue_mu_
  /// must be held and queue_ non-empty.
  Pending pop_front_locked();
  void process_batch(std::vector<Pending> batch);
  void respond(const std::shared_ptr<Connection>& conn, Response response);
  /// Record a completed score's phase breakdown into the histograms, the
  /// flight recorder, and (when slow enough) the slow-request log.
  /// queue_wait is derived from the Pending itself; the later phases are
  /// passed in because only the batcher knows where compute started.
  void record_request_phases(const Pending& p, double batch_wait_ms,
                             double compute_ms, double write_ms,
                             std::size_t batch_size, const char* outcome);
  void start_admin();
  /// The kStats snapshot as a document (shared by stats_json / statusz).
  [[nodiscard]] obs::Json stats_doc() const;
  [[nodiscard]] std::string stats_json() const;
  /// stats_doc() plus admin/build version block — the /statusz body.
  [[nodiscard]] std::string statusz_json() const;

  std::shared_ptr<const core::FrozenModel> model_;
  mutable std::mutex model_mu_;
  ServerConfig config_;

  int listen_fd_ = -1;
  int port_ = 0;
  int admin_port_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> accept_alive_{false};
  std::atomic<bool> started_flag_{false};  // health() reads this lock-free
  bool started_ = false;
  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;

  std::thread accept_thread_;
  std::thread batch_thread_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;
  /// Exited reader threads awaiting join (guarded by conns_mu_); the accept
  /// loop reaps these each iteration so connection churn never accumulates
  /// unjoined threads.
  std::vector<std::thread> finished_threads_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  std::size_t queue_bytes_ = 0;  // guarded by queue_mu_
  bool stopping_ = false;        // guarded by queue_mu_

  // Per-instance stats for the kStats frame (registry serve.* metrics are
  // process-global and would bleed across servers in one test process).
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> sheds_overloaded_{0};
  std::atomic<std::uint64_t> sheds_deadline_{0};
  std::atomic<std::uint64_t> sheds_shutdown_{0};
  std::atomic<std::uint64_t> bad_frames_{0};
  std::atomic<std::uint64_t> score_errors_{0};
  std::atomic<std::uint64_t> accept_errors_{0};
  std::atomic<std::uint64_t> swaps_{0};
  obs::Histogram batch_hist_;
  obs::Histogram latency_hist_;

  // Per-phase latency histograms (same per-instance rationale as above).
  obs::Histogram phase_queue_wait_hist_;
  obs::Histogram phase_batch_wait_hist_;
  obs::Histogram phase_compute_hist_;
  obs::Histogram phase_write_hist_;

  /// Source of server-minted trace ids (client-supplied ids win).  Starts
  /// at 1 so 0 always means "no trace id".
  std::atomic<std::uint64_t> next_trace_id_{1};
  std::chrono::steady_clock::time_point start_time_{};

  mutable std::mutex slow_mu_;
  std::vector<SlowRequest> slow_log_;  // guarded by slow_mu_

  std::unique_ptr<AdminHttpServer> admin_;
};

}  // namespace phonolid::serve
