// Minimal embedded HTTP/1.1 admin plane for the scoring daemon.
//
// One acceptor thread on 127.0.0.1, serial request handling, GET-only,
// dependency-free.  The surface is read-only diagnostics — /metrics,
// /healthz, /statusz, /flamez — wired up by ScoreServer (server.cpp); this
// class only owns the socket plumbing and the request/response framing.
//
// Trust model matches the PLSV swap gate: loopback-only bind, no
// authentication — any local process is trusted.  Robustness contract
// (tests/test_serve.cpp): a malformed, oversized, or truncated request gets
// exactly one `400 Bad Request` (405/404 for wrong method/path) followed by
// connection close; the acceptor never crashes and never wedges on a slow
// or silent client (bounded read size + poll timeout).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace phonolid::serve {

/// Version of the admin HTTP surface (paths + response shapes).  Bumped
/// when an endpoint is added, removed, or changes meaning; printed by
/// `phonolid version` and reported in /statusz.
inline constexpr std::uint32_t kAdminHttpVersion = 1;

/// Upper bound on one admin request (request line + headers).  Admin
/// requests are tiny GETs; anything larger is garbage and gets a 400.
inline constexpr std::size_t kMaxAdminRequestBytes = 8192;

/// How long a connection may sit without completing its request before the
/// acceptor gives up on it (400 + close).  Keeps a silent client from
/// wedging the serial admin loop.
inline constexpr int kAdminReadTimeoutMs = 2000;

struct AdminResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class AdminHttpServer {
 public:
  using Handler = std::function<AdminResponse()>;

  /// port 0 asks the kernel for an ephemeral port (see port() after start).
  explicit AdminHttpServer(int port) : requested_port_(port) {}
  ~AdminHttpServer();

  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  /// Register a handler for an exact path (query strings are stripped
  /// before lookup).  Must be called before start(); the route table is
  /// read-only once the acceptor thread runs.
  void route(std::string path, Handler handler);

  /// Bind 127.0.0.1, start the acceptor thread, return the bound port.
  /// Throws std::runtime_error when the socket cannot be set up.
  int start();

  /// Stop the acceptor and close the listening socket.  Idempotent; also
  /// run by the destructor.
  void shutdown();

  [[nodiscard]] int port() const noexcept { return port_; }

  /// Admin requests answered / rejected since start.  Deliberately separate
  /// from the PLSV `serve.requests` counters so scraping the daemon never
  /// perturbs the scoring metrics it reports.
  [[nodiscard]] std::uint64_t requests() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bad_requests() const noexcept {
    return bad_requests_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);
  void send_simple(int fd, int status, const std::string& body);

  int requested_port_ = 0;
  int port_ = -1;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::map<std::string, Handler> routes_;
  std::thread acceptor_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
};

}  // namespace phonolid::serve
