#include "serve/admin_http.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "serve/protocol.h"  // write_all

namespace phonolid::serve {

namespace {

const char* reason_phrase(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

std::string render(int status, const std::string& content_type,
                   const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    reason_phrase(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

// Read until the end of the header block ("\r\n\r\n"), EOF, the byte
// budget, or the deadline.  Returns false when the request never completed
// (truncated / oversized / timed out) — the caller answers 400 either way.
bool read_request_head(int fd, std::string& head) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(kAdminReadTimeoutMs);
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos) {
    if (head.size() > kMaxAdminRequestBytes) return false;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return false;
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) return false;  // timed out: partial request
    const ssize_t got = ::read(fd, buf, sizeof buf);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return false;  // EOF (or error) before the head completed
    }
    head.append(buf, static_cast<std::size_t>(got));
  }
  return true;
}

struct AdminCounters {
  obs::Counter& http_requests;
  obs::Counter& http_bad;
};

AdminCounters& counters() {
  static AdminCounters c{
      obs::Metrics::counter("serve.admin.http_requests"),
      obs::Metrics::counter("serve.admin.http_bad"),
  };
  return c;
}

}  // namespace

AdminHttpServer::~AdminHttpServer() { shutdown(); }

void AdminHttpServer::route(std::string path, Handler handler) {
  if (started_.load(std::memory_order_acquire)) {
    throw std::runtime_error("admin routes must be registered before start");
  }
  routes_[std::move(path)] = std::move(handler);
}

int AdminHttpServer::start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) return port_;
  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error("admin: pipe failed");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("admin: socket failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(requested_port_));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw std::runtime_error("admin: bind to 127.0.0.1:" +
                             std::to_string(requested_port_) + " failed: " +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) != 0) {
    throw std::runtime_error("admin: listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = static_cast<int>(ntohs(bound.sin_port));
  acceptor_ = std::thread([this] { accept_loop(); });
  return port_;
}

void AdminHttpServer::shutdown() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  const char byte = 'x';
  [[maybe_unused]] ssize_t rc = ::write(wake_pipe_[1], &byte, 1);
  if (acceptor_.joinable()) acceptor_.join();
  for (int* fd : {&listen_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

void AdminHttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    struct pollfd pfds[2] = {};
    pfds[0].fd = listen_fd_;
    pfds[0].events = POLLIN;
    pfds[1].fd = wake_pipe_[0];
    pfds[1].events = POLLIN;
    const int rc = ::poll(pfds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[1].revents != 0) break;  // shutdown wake
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;  // transient accept failure; keep serving
    serve_connection(fd);
    ::close(fd);
  }
}

void AdminHttpServer::send_simple(int fd, int status,
                                  const std::string& body) {
  const std::string wire = render(status, "text/plain; charset=utf-8", body);
  write_all(fd, wire.data(), wire.size());
}

void AdminHttpServer::serve_connection(int fd) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  counters().http_requests.add(1);

  std::string head;
  if (!read_request_head(fd, head)) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    counters().http_bad.add(1);
    send_simple(fd, 400, "bad request\n");
    return;
  }

  // Request line: METHOD SP target SP HTTP/1.x
  const std::size_t eol = head.find("\r\n");
  const std::string line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1 ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    counters().http_bad.add(1);
    send_simple(fd, 400, "bad request\n");
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);

  if (method != "GET") {
    send_simple(fd, 405, "only GET is supported\n");
    return;
  }
  const auto it = routes_.find(target);
  if (it == routes_.end()) {
    std::string known = "no such endpoint; try:";
    for (const auto& [path, handler] : routes_) known += " " + path;
    send_simple(fd, 404, known + "\n");
    return;
  }

  AdminResponse response;
  try {
    response = it->second();
  } catch (const std::exception& e) {
    send_simple(fd, 500, std::string("handler failed: ") + e.what() + "\n");
    return;
  }
  const std::string wire =
      render(response.status, response.content_type, response.body);
  write_all(fd, wire.data(), wire.size());
}

}  // namespace phonolid::serve
