// Wire protocol of the `phonolid serve` scoring daemon.
//
// Length-prefixed binary frames over a stream socket:
//
//   u32 frame_length                    (bytes that follow; little-endian)
//   frame body (util::BinaryWriter layout):
//     "PLSV" magic + u32 protocol version
//     request:  u32 type, u64 request_id, u32 deadline_ms,
//               [v2+: u64 trace_id], payload
//     response: u64 request_id, u32 status, [v2+: u64 trace_id],
//               f32[] llr, u32 best, string text
//
// Version negotiation is per-frame and implicit: the daemon accepts any
// version in [1, kServeProtocolVersion] and echoes the request's version in
// its response, so a v1 client exchanges byte-identical v1 frames forever
// while a v2 client gains the optional trace-id field.  trace_id 0 on a v2
// request means "mint one for me" — the daemon assigns an id at admission
// and returns it in the response so the client can correlate slow-request
// log entries and flight-recorder spans.
//
// Request payloads by type: kScore carries an f32 PCM vector (at the
// bundle's sample rate); kSwap a bundle directory string; kPing / kStats
// nothing.  Responses reuse one layout for every type — llr/best are empty
// except for a successful kScore, text carries the stats JSON (kStats) or a
// human-readable error.
//
// Robustness contract (tests/test_serve.cpp): a malformed frame — bad
// magic, wrong version, truncated body, oversized length prefix — gets a
// clean kBadRequest/kError response (request_id 0 when the id could not be
// parsed) followed by connection close; the daemon never crashes and never
// drops a frame silently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phonolid::serve {

inline constexpr std::uint32_t kServeProtocolVersion = 2;
/// Oldest frame version the daemon still decodes (v1 = no trace-id field).
inline constexpr std::uint32_t kMinServeProtocolVersion = 1;

/// Upper bound on one frame body; a length prefix beyond this is corruption
/// (64 MB ≈ 35 minutes of f32 PCM at 8 kHz — far past any utterance).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class FrameType : std::uint32_t {
  kScore = 1,
  kPing = 2,
  kStats = 3,
  kSwap = 4,
};

enum class Status : std::uint32_t {
  kOk = 0,
  kBadRequest = 1,
  kOverloaded = 2,
  kDeadlineExceeded = 3,
  kShuttingDown = 4,
  kError = 5,
};

const char* to_string(Status status) noexcept;

struct Request {
  FrameType type = FrameType::kScore;
  std::uint64_t request_id = 0;
  /// Per-request deadline from enqueue time (0 = none); requests whose
  /// deadline lapses before their batch starts scoring are shed with an
  /// explicit kDeadlineExceeded, never dropped.
  std::uint32_t deadline_ms = 0;
  /// Request-scoped trace id (v2 frames only; 0 = let the daemon mint one).
  std::uint64_t trace_id = 0;
  /// Frame version this request was (or should be) encoded with.  Decoding
  /// sets it to the version seen on the wire; the daemon echoes it back so
  /// responses match what the client speaks.
  std::uint32_t wire_version = kServeProtocolVersion;
  std::vector<float> samples;  // kScore PCM payload
  std::string text;            // kSwap bundle directory
};

struct Response {
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
  /// Trace id assigned at admission (v2 frames only; 0 on v1 / non-score).
  std::uint64_t trace_id = 0;
  /// Frame version to encode with; the daemon copies the request's.
  std::uint32_t wire_version = kServeProtocolVersion;
  std::vector<float> llr;           // per-language calibrated LLRs (kScore)
  std::uint32_t best_language = 0;  // argmax LLR (kScore)
  std::string text;                 // stats JSON / error message
};

/// Encode a frame body (no length prefix — the socket helpers add it).
std::string encode_request(const Request& request);
std::string encode_response(const Response& response);

/// Decode a frame body; throws util::SerializeError on malformed input.
Request decode_request(const std::string& body);
Response decode_response(const std::string& body);

/// Blocking exact-size socket IO (EINTR-safe).  false = clean EOF or error
/// before any byte (read) / peer gone (write); a short read or I/O error
/// mid-buffer throws.
bool read_exact(int fd, void* buf, std::size_t n);
bool write_all(int fd, const void* buf, std::size_t n);

/// Read one length-prefixed frame body into `body`.  false on clean EOF;
/// throws util::SerializeError on an oversized length prefix or a body
/// truncated mid-frame.
bool read_frame(int fd, std::string& body);
/// Write one length-prefixed frame; false when the peer is gone.
bool write_frame(int fd, const std::string& body);

}  // namespace phonolid::serve
