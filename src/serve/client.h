// Blocking client for the `phonolid serve` daemon — used by bench_serve,
// tests/test_serve.cpp, and anything that wants one-call scoring against a
// running daemon.  One request in flight per client; run several clients
// (bench_serve does) to exercise micro-batching.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "serve/protocol.h"

namespace phonolid::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to a daemon; throws std::runtime_error on failure.
  void connect(const std::string& host, int port);
  void close() noexcept;
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  /// Raw socket, for tests that write deliberately malformed bytes.
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Send one request and block for its response.  Throws
  /// util::SerializeError / std::runtime_error when the connection breaks.
  Response call(const Request& request);

  /// Score one utterance of f32 PCM at the bundle's sample rate.
  /// trace_id 0 lets the daemon mint one; either way the id assigned at
  /// admission comes back in Response::trace_id (v2 frames).
  Response score(std::span<const float> samples, std::uint32_t deadline_ms = 0,
                 std::uint64_t trace_id = 0);
  Response ping();
  /// Server stats snapshot; response.text carries the JSON document.
  Response stats();
  /// Ask the daemon to warm-swap to the bundle at `bundle_dir`.
  Response swap(const std::string& bundle_dir);

 private:
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
};

}  // namespace phonolid::serve
