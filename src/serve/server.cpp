#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "serve/admin_http.h"
#include "util/serialize.h"

namespace phonolid::serve {

namespace {

const std::vector<double> kBatchEdges = {1, 2, 4, 8, 16, 32};
const std::vector<double> kLatencyEdgesMs = {1,   2,   5,   10,  20,  50,
                                             100, 200, 500, 1000, 5000};
// Phase histograms need sub-millisecond resolution: batch_wait and write
// are often tens of microseconds while queue_wait under load reaches the
// full end-to-end latency.
const std::vector<double> kPhaseEdgesMs = {0.1, 0.2, 0.5, 1,   2,    5,
                                           10,  20,  50,  100, 200,  500,
                                           1000, 5000};

struct RegistryMetrics {
  obs::Counter& requests = obs::Metrics::counter("serve.requests");
  obs::Counter& ok = obs::Metrics::counter("serve.responses.ok");
  obs::Counter& bad_frames = obs::Metrics::counter("serve.errors.bad_frame");
  obs::Counter& score_errors = obs::Metrics::counter("serve.errors.score");
  obs::Counter& accept_errors = obs::Metrics::counter("serve.errors.accept");
  obs::Counter& sheds_overloaded =
      obs::Metrics::counter("serve.sheds.overloaded");
  obs::Counter& sheds_deadline = obs::Metrics::counter("serve.sheds.deadline");
  obs::Counter& sheds_shutdown = obs::Metrics::counter("serve.sheds.shutdown");
  obs::Counter& swaps = obs::Metrics::counter("serve.swaps");
  obs::Gauge& queue_depth = obs::Metrics::gauge("serve.queue.depth");
  obs::Histogram& batch_size =
      obs::Metrics::histogram("serve.batch.size", kBatchEdges);
  obs::Histogram& latency_ms =
      obs::Metrics::histogram("serve.latency_ms", kLatencyEdgesMs);
  obs::Histogram& phase_queue_wait =
      obs::Metrics::histogram("serve.phase.queue_wait_ms", kPhaseEdgesMs);
  obs::Histogram& phase_batch_wait =
      obs::Metrics::histogram("serve.phase.batch_wait_ms", kPhaseEdgesMs);
  obs::Histogram& phase_compute =
      obs::Metrics::histogram("serve.phase.compute_ms", kPhaseEdgesMs);
  obs::Histogram& phase_write =
      obs::Metrics::histogram("serve.phase.write_ms", kPhaseEdgesMs);
};

RegistryMetrics& registry() {
  static RegistryMetrics m;
  return m;
}

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Percentile by bucket upper edge: the edge of the first bucket whose
/// cumulative count reaches q * total (overflow bucket reports the last
/// edge — good enough for gating, which only needs a monotone estimate).
double percentile(const obs::Histogram& h, double q) {
  const std::uint64_t total = h.total_count();
  if (total == 0) return 0.0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.num_buckets(); ++i) {
    cum += h.bucket_count(i);
    if (cum >= target && cum > 0) {
      return i < h.edges().size() ? h.edges()[i] : h.edges().back();
    }
  }
  return h.edges().back();
}

obs::Json histogram_json(const obs::Histogram& h) {
  obs::Json j = obs::Json::object();
  j["count"] = h.total_count();
  j["sum"] = h.sum();
  j["mean"] = h.total_count() > 0
                  ? h.sum() / static_cast<double>(h.total_count())
                  : 0.0;
  j["p50"] = percentile(h, 0.50);
  j["p95"] = percentile(h, 0.95);
  j["p99"] = percentile(h, 0.99);
  j["p999"] = percentile(h, 0.999);
  obs::Json edges = obs::Json::array();
  for (double e : h.edges()) edges.push_back(e);
  obs::Json counts = obs::Json::array();
  for (std::size_t i = 0; i < h.num_buckets(); ++i) {
    counts.push_back(h.bucket_count(i));
  }
  j["edges"] = std::move(edges);
  j["counts"] = std::move(counts);
  return j;
}

}  // namespace

/// One accepted socket.  The reader thread and the batcher both hold a
/// shared_ptr; responses serialize on write_mu so a batch response never
/// interleaves with an inline one.  The last owner closes the fd.
struct ScoreServer::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  bool send(const Response& response) {
    std::lock_guard<std::mutex> lock(write_mu);
    return write_frame(fd, encode_response(response));
  }

  void shut() noexcept { ::shutdown(fd, SHUT_RDWR); }

  int fd;
  std::mutex write_mu;
};

ScoreServer::ScoreServer(std::shared_ptr<const core::FrozenModel> model,
                         ServerConfig config)
    : model_(std::move(model)),
      config_(config),
      batch_hist_(kBatchEdges),
      latency_hist_(kLatencyEdgesMs),
      phase_queue_wait_hist_(kPhaseEdgesMs),
      phase_batch_wait_hist_(kPhaseEdgesMs),
      phase_compute_hist_(kPhaseEdgesMs),
      phase_write_hist_(kPhaseEdgesMs) {
  if (model_ == nullptr) throw std::invalid_argument("serve: null model");
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.queue_depth == 0) config_.queue_depth = 1;
  if (config_.queue_max_bytes == 0) config_.queue_max_bytes = kMaxFrameBytes;
}

ScoreServer::~ScoreServer() {
  shutdown();
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

int ScoreServer::start() {
  if (started_) throw std::logic_error("serve: start() called twice");
  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error("serve: pipe: " +
                             std::string(std::strerror(errno)));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: socket: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: bind/listen 127.0.0.1:" +
                             std::to_string(config_.port) + ": " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  started_ = true;
  start_time_ = std::chrono::steady_clock::now();
  accept_alive_.store(true, std::memory_order_release);
  started_flag_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&ScoreServer::accept_loop, this);
  batch_thread_ = std::thread(&ScoreServer::batch_loop, this);
  start_admin();
  return port_;
}

void ScoreServer::start_admin() {
  if (config_.admin_port < 0) return;
  admin_ = std::make_unique<AdminHttpServer>(config_.admin_port);
  admin_->route("/metrics", [] {
    return AdminResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                         obs::prometheus_text()};
  });
  admin_->route("/healthz", [this] {
    const HealthStatus h = health();
    return AdminResponse{h.ready ? 200 : 503, "text/plain; charset=utf-8",
                         h.reason + "\n"};
  });
  admin_->route("/statusz", [this] {
    return AdminResponse{200, "application/json", statusz_json()};
  });
  admin_->route("/flamez", [] {
    if (!obs::Profiler::enabled()) {
      return AdminResponse{
          404, "text/plain; charset=utf-8",
          "profiler off; restart the daemon with PHONOLID_PROFILE=cpu\n"};
    }
    return AdminResponse{200, "text/plain; charset=utf-8",
                         obs::folded_stacks_text()};
  });
  admin_port_ = admin_->start();
}

ScoreServer::HealthStatus ScoreServer::health() const {
  if (!started_flag_.load(std::memory_order_acquire)) {
    return {false, "not started"};
  }
  if (shutdown_requested_.load(std::memory_order_acquire)) {
    return {false, "draining"};
  }
  if (!accept_alive_.load(std::memory_order_acquire)) {
    return {false, "accept loop dead"};
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) return {false, "draining"};
    if (queue_.size() >= config_.queue_depth) {
      return {false, "request queue full"};
    }
    if (queue_bytes_ >= config_.queue_max_bytes) {
      return {false, "request queue byte budget exhausted"};
    }
  }
  return {true, "ok"};
}

void ScoreServer::request_shutdown() noexcept {
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    // The byte is never consumed: poll() is level-triggered, so one write
    // wakes the accept loop and every wait()-er, now and forever.
    [[maybe_unused]] ssize_t rc = ::write(wake_pipe_[1], &byte, 1);
  }
}

void ScoreServer::wait() {
  pollfd pfd{wake_pipe_[0], POLLIN, 0};
  while (!shutdown_requested_.load(std::memory_order_acquire)) {
    if (::poll(&pfd, 1, 1000) < 0 && errno != EINTR) break;
  }
  shutdown();
}

void ScoreServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shutdown_done_ || !started_) return;
    shutdown_done_ = true;
  }
  request_shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Reject new scores, then let the batcher answer everything already
  // queued before it exits — drain, not drop.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (batch_thread_.joinable()) batch_thread_.join();
  // Unblock connection readers stuck in read_frame and collect them, plus
  // any exited threads the accept loop had not reaped yet.
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
    threads.swap(conn_threads_);
    for (auto& t : finished_threads_) threads.push_back(std::move(t));
    finished_threads_.clear();
  }
  for (auto& conn : conns) conn->shut();
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  // The admin plane outlives the drain (so /healthz reports 503 while
  // queued requests are being answered) and stops last.
  if (admin_) admin_->shutdown();
}

std::shared_ptr<const core::FrozenModel> ScoreServer::model() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_;
}

void ScoreServer::reap_connection_threads() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    done.swap(finished_threads_);
  }
  for (auto& t : done) {
    if (t.joinable()) t.join();
  }
}

void ScoreServer::accept_loop() {
  // Flipped on every exit path so /healthz can report a dead acceptor —
  // a daemon whose accept loop died unrecoverably runs but never answers.
  struct AliveGuard {
    std::atomic<bool>& flag;
    ~AliveGuard() { flag.store(false, std::memory_order_release); }
  } guard{accept_alive_};
  for (;;) {
    reap_connection_threads();
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // shutdown requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM || errno == EAGAIN || errno == EWOULDBLOCK) {
        // Transient resource exhaustion (fd limit, socket buffers).  Dying
        // here would leave a daemon that runs but never answers again, so
        // count it, back off briefly (still watching the wake pipe for
        // shutdown), and retry.
        accept_errors_.fetch_add(1, std::memory_order_relaxed);
        registry().accept_errors.add();
        std::fprintf(stderr, "serve: accept: %s (backing off)\n",
                     std::strerror(errno));
        pollfd wake{wake_pipe_[0], POLLIN, 0};
        ::poll(&wake, 1, 100);
        continue;
      }
      return;  // unrecoverable, e.g. EBADF after the listener closed
    }
    auto conn = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back(&ScoreServer::connection_loop, this,
                               std::move(conn));
  }
}

void ScoreServer::connection_loop(std::shared_ptr<Connection> conn) {
  std::string body;
  bool poisoned = false;
  while (!poisoned) {
    try {
      if (!read_frame(conn->fd, body)) break;  // clean EOF
    } catch (const util::SerializeError& e) {
      // Oversized length prefix or mid-frame truncation: answer once,
      // then stop trusting the stream.
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      registry().bad_frames.add();
      Response err;
      err.status = Status::kBadRequest;
      err.text = e.what();
      // The peer's version is unknowable here; v1 frames decode under
      // every client version, so answer with the oldest layout.
      err.wire_version = kMinServeProtocolVersion;
      conn->send(err);
      poisoned = true;
      continue;
    }
    Request request;
    try {
      request = decode_request(body);
    } catch (const util::SerializeError& e) {
      // Bad magic / wrong version / garbage body: the framing may still be
      // intact, but resyncing against an incompatible peer is not worth it.
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      registry().bad_frames.add();
      Response err;
      err.status = Status::kBadRequest;
      err.text = e.what();
      err.wire_version = kMinServeProtocolVersion;
      conn->send(err);
      poisoned = true;
      continue;
    }
    handle_request(conn, std::move(request));
  }
  // A poisoned stream is closed outright.  On clean EOF the peer may have
  // half-closed its write side and still be reading — queued responses for
  // this connection go out through the batcher's shared_ptr, so leave the
  // socket open and let the last owner close it.
  if (poisoned) conn->shut();
  // Deregister: drop the registry's shared_ptr (the fd closes as soon as
  // the last queued response for this peer goes out) and park this thread's
  // handle for the accept loop to join.  Without this a long-lived daemon
  // leaks one fd plus one unjoined thread per disconnected client.
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(std::remove(conns_.begin(), conns_.end(), conn), conns_.end());
  for (auto it = conn_threads_.begin(); it != conn_threads_.end(); ++it) {
    if (it->get_id() == std::this_thread::get_id()) {
      finished_threads_.push_back(std::move(*it));
      conn_threads_.erase(it);
      break;
    }
  }
}

void ScoreServer::handle_request(const std::shared_ptr<Connection>& conn,
                                 Request request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  registry().requests.add();
  Response response;
  response.request_id = request.request_id;
  response.wire_version = request.wire_version;
  response.trace_id = request.trace_id;
  switch (request.type) {
    case FrameType::kPing:
      respond(conn, std::move(response));
      return;
    case FrameType::kStats:
      response.text = stats_json();
      respond(conn, std::move(response));
      return;
    case FrameType::kSwap: {
      // Unauthenticated protocol: any peer that can open the loopback port
      // may retarget the serving model (see the trust model in server.h),
      // so honour the operator's gate before touching the filesystem.
      if (!config_.allow_swap) {
        response.status = Status::kBadRequest;
        response.text = "model swap is disabled on this server";
        respond(conn, std::move(response));
        return;
      }
      if (!swap_path_allowed(request.text)) {
        response.status = Status::kBadRequest;
        response.text = "swap target is outside the configured swap root";
        respond(conn, std::move(response));
        return;
      }
      try {
        auto next = std::make_shared<const core::FrozenModel>(
            core::FrozenModel::load_bundle(request.text));
        {
          std::lock_guard<std::mutex> lock(model_mu_);
          model_ = std::move(next);
        }
        swaps_.fetch_add(1, std::memory_order_relaxed);
        registry().swaps.add();
        response.text = "swapped to " + request.text;
      } catch (const std::exception& e) {
        response.status = Status::kError;
        response.text = e.what();
      }
      respond(conn, std::move(response));
      return;
    }
    case FrameType::kScore:
      break;
  }
  if (request.samples.empty()) {
    response.status = Status::kBadRequest;
    response.text = "empty PCM payload";
    respond(conn, std::move(response));
    return;
  }
  // Admission: give the request its trace id (client-supplied wins) and
  // mark the start of the queue_wait phase.
  if (request.trace_id == 0) {
    request.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }
  response.trace_id = request.trace_id;
  PHONOLID_EVENT("serve_admit", "trace_id",
                 static_cast<std::int64_t>(request.trace_id), "samples",
                 static_cast<std::int64_t>(request.samples.size()));
  const std::size_t request_bytes = request.samples.size() * sizeof(float);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      sheds_shutdown_.fetch_add(1, std::memory_order_relaxed);
      registry().sheds_shutdown.add();
      response.status = Status::kShuttingDown;
      response.text = "server is draining";
    } else if (queue_.size() >= config_.queue_depth ||
               queue_bytes_ + request_bytes > config_.queue_max_bytes) {
      sheds_overloaded_.fetch_add(1, std::memory_order_relaxed);
      registry().sheds_overloaded.add();
      response.status = Status::kOverloaded;
      response.text = queue_.size() >= config_.queue_depth
                          ? "request queue full"
                          : "request queue byte budget exceeded";
    } else {
      queue_bytes_ += request_bytes;
      Pending pending;
      pending.request = std::move(request);
      pending.conn = conn;
      pending.arrival = std::chrono::steady_clock::now();
      queue_.push_back(std::move(pending));
      registry().queue_depth.set(static_cast<std::int64_t>(queue_.size()));
      queue_cv_.notify_one();
      return;  // answered by the batcher
    }
  }
  respond(conn, std::move(response));
}

ScoreServer::Pending ScoreServer::pop_front_locked() {
  Pending p = std::move(queue_.front());
  queue_.pop_front();
  const std::size_t bytes = p.request.samples.size() * sizeof(float);
  queue_bytes_ -= bytes <= queue_bytes_ ? bytes : queue_bytes_;
  p.dequeued = std::chrono::steady_clock::now();  // queue_wait ends here
  return p;
}

bool ScoreServer::swap_path_allowed(const std::string& path) const {
  if (config_.swap_root.empty()) return true;
  std::error_code ec;
  const auto root = std::filesystem::weakly_canonical(config_.swap_root, ec);
  if (ec) return false;
  const auto target = std::filesystem::weakly_canonical(path, ec);
  if (ec) return false;
  const auto rel = target.lexically_relative(root);
  return !rel.empty() && *rel.begin() != "..";
}

void ScoreServer::batch_loop() {
  const auto window = std::chrono::duration<double, std::milli>(
      config_.batch_window_ms);
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      batch.push_back(pop_front_locked());
      // Hold the batch open for co-arrivals; under drain, score whatever
      // is already queued without waiting for traffic that won't come.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(window);
      while (batch.size() < config_.max_batch) {
        while (!queue_.empty() && batch.size() < config_.max_batch) {
          batch.push_back(pop_front_locked());
        }
        if (batch.size() >= config_.max_batch || stopping_) break;
        if (queue_cv_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
          while (!queue_.empty() && batch.size() < config_.max_batch) {
            batch.push_back(pop_front_locked());
          }
          break;
        }
      }
      registry().queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    }
    process_batch(std::move(batch));
  }
}

void ScoreServer::process_batch(std::vector<Pending> batch) {
  PHONOLID_SPAN("serve_batch");
  // Shed requests whose deadline lapsed while queued — explicitly.
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (auto& p : batch) {
    if (p.request.deadline_ms > 0 &&
        elapsed_ms(p.arrival) >
            static_cast<double>(p.request.deadline_ms)) {
      sheds_deadline_.fetch_add(1, std::memory_order_relaxed);
      registry().sheds_deadline.add();
      Response shed;
      shed.request_id = p.request.request_id;
      shed.status = Status::kDeadlineExceeded;
      shed.text = "deadline exceeded after " +
                  std::to_string(p.request.deadline_ms) + " ms in queue";
      shed.trace_id = p.request.trace_id;
      shed.wire_version = p.request.wire_version;
      respond(p.conn, std::move(shed));
      record_request_phases(p, elapsed_ms(p.dequeued), 0.0, 0.0,
                            batch.size(), "deadline");
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;
  batch_hist_.observe(static_cast<double>(live.size()));
  registry().batch_size.observe(static_cast<double>(live.size()));

  // Snapshot the model once per batch: a concurrent swap flips model_ for
  // the *next* batch, this one finishes on the generation it started with.
  const std::shared_ptr<const core::FrozenModel> model = this->model();
  std::vector<std::span<const float>> utterances;
  utterances.reserve(live.size());
  for (const auto& p : live) utterances.emplace_back(p.request.samples);

  // The compute phase starts here for every request in the batch; what each
  // one spent between its dequeue and this point is batch_wait.
  const auto compute_start = std::chrono::steady_clock::now();
  core::BatchScore scores;
  {
    obs::Span compute_span("serve_compute");
    compute_span.annotate("batch", static_cast<std::int64_t>(live.size()));
    compute_span.annotate(
        "trace_id", static_cast<std::int64_t>(live.front().request.trace_id));
    try {
      scores = model->score_batch(utterances);
    } catch (const std::exception& e) {
      const double compute_ms = elapsed_ms(compute_start);
      score_errors_.fetch_add(static_cast<std::uint64_t>(live.size()),
                              std::memory_order_relaxed);
      registry().score_errors.add(static_cast<std::uint64_t>(live.size()));
      for (auto& p : live) {
        Response err;
        err.request_id = p.request.request_id;
        err.status = Status::kError;
        err.text = e.what();
        err.trace_id = p.request.trace_id;
        err.wire_version = p.request.wire_version;
        const double batch_wait_ms =
            std::chrono::duration<double, std::milli>(compute_start -
                                                      p.dequeued)
                .count();
        const auto write_start = std::chrono::steady_clock::now();
        respond(p.conn, std::move(err));
        record_request_phases(p, batch_wait_ms, compute_ms,
                              elapsed_ms(write_start), live.size(), "error");
      }
      return;
    }
  }
  const double compute_ms = elapsed_ms(compute_start);
  for (std::size_t i = 0; i < live.size(); ++i) {
    Response ok;
    ok.request_id = live[i].request.request_id;
    ok.llr.assign(scores.llr.row(i).begin(), scores.llr.row(i).end());
    ok.best_language = static_cast<std::uint32_t>(scores.best[i]);
    ok.trace_id = live[i].request.trace_id;
    ok.wire_version = live[i].request.wire_version;
    const double ms = elapsed_ms(live[i].arrival);
    latency_hist_.observe(ms);
    registry().latency_ms.observe(ms);
    ok_.fetch_add(1, std::memory_order_relaxed);
    registry().ok.add();
    const double batch_wait_ms =
        std::chrono::duration<double, std::milli>(compute_start -
                                                  live[i].dequeued)
            .count();
    const auto write_start = std::chrono::steady_clock::now();
    respond(live[i].conn, std::move(ok));
    record_request_phases(live[i], batch_wait_ms, compute_ms,
                          elapsed_ms(write_start), live.size(), "ok");
  }
}

void ScoreServer::record_request_phases(const Pending& p, double batch_wait_ms,
                                        double compute_ms, double write_ms,
                                        std::size_t batch_size,
                                        const char* outcome) {
  const double queue_wait_ms =
      std::chrono::duration<double, std::milli>(p.dequeued - p.arrival)
          .count();
  phase_queue_wait_hist_.observe(queue_wait_ms);
  phase_batch_wait_hist_.observe(batch_wait_ms);
  phase_compute_hist_.observe(compute_ms);
  phase_write_hist_.observe(write_ms);
  registry().phase_queue_wait.observe(queue_wait_ms);
  registry().phase_batch_wait.observe(batch_wait_ms);
  registry().phase_compute.observe(compute_ms);
  registry().phase_write.observe(write_ms);
  const double total_ms =
      queue_wait_ms + batch_wait_ms + compute_ms + write_ms;
  PHONOLID_EVENT("serve_reply", "trace_id",
                 static_cast<std::int64_t>(p.request.trace_id), "total_us",
                 static_cast<std::int64_t>(total_ms * 1000.0));
  if (config_.slow_log == 0) return;
  std::lock_guard<std::mutex> lock(slow_mu_);
  SlowRequest entry{p.request.trace_id, p.request.request_id,
                    total_ms,          queue_wait_ms,
                    batch_wait_ms,     compute_ms,
                    write_ms,          batch_size,
                    outcome};
  if (slow_log_.size() < config_.slow_log) {
    slow_log_.push_back(entry);
    return;
  }
  // Ring of the N worst by total latency: evict the fastest entry when the
  // newcomer is slower than it.
  auto fastest = std::min_element(
      slow_log_.begin(), slow_log_.end(),
      [](const SlowRequest& a, const SlowRequest& b) {
        return a.total_ms < b.total_ms;
      });
  if (entry.total_ms > fastest->total_ms) *fastest = entry;
}

void ScoreServer::respond(const std::shared_ptr<Connection>& conn,
                          Response response) {
  // A peer that hung up early just loses its answer; shedding and error
  // accounting already happened at the decision point.
  (void)conn->send(response);
}

obs::Json ScoreServer::stats_doc() const {
  obs::Json j = obs::Json::object();
  j["protocol_version"] = kServeProtocolVersion;
  j["bundle_format"] = core::kBundleFormatVersion;
  j["uptime_s"] =
      started_flag_.load(std::memory_order_acquire)
          ? std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_time_)
                .count()
          : 0.0;
  {
    const auto model = this->model();
    obs::Json m = obs::Json::object();
    m["scale"] = model->scale();
    m["seed"] = model->seed();
    m["languages"] = model->num_languages();
    m["subsystems"] = model->num_subsystems();
    m["heads"] = model->num_heads();
    j["model"] = std::move(m);
  }
  j["requests"] = requests_.load(std::memory_order_relaxed);
  // Alias of "requests" so the kStats frame stays field-compatible with the
  // Prometheus scrape (phonolid_serve_requests_total) and /statusz.
  j["requests_total"] = requests_.load(std::memory_order_relaxed);
  j["ok"] = ok_.load(std::memory_order_relaxed);
  obs::Json sheds = obs::Json::object();
  sheds["overloaded"] = sheds_overloaded_.load(std::memory_order_relaxed);
  sheds["deadline"] = sheds_deadline_.load(std::memory_order_relaxed);
  sheds["shutdown"] = sheds_shutdown_.load(std::memory_order_relaxed);
  j["sheds"] = std::move(sheds);
  obs::Json errors = obs::Json::object();
  errors["bad_frame"] = bad_frames_.load(std::memory_order_relaxed);
  errors["score"] = score_errors_.load(std::memory_order_relaxed);
  errors["accept"] = accept_errors_.load(std::memory_order_relaxed);
  j["errors"] = std::move(errors);
  j["swaps"] = swaps_.load(std::memory_order_relaxed);
  {
    obs::Json q = obs::Json::object();
    std::lock_guard<std::mutex> lock(queue_mu_);
    q["depth"] = queue_.size();
    q["limit"] = config_.queue_depth;
    q["bytes"] = queue_bytes_;
    q["bytes_limit"] = config_.queue_max_bytes;
    j["queue"] = std::move(q);
  }
  j["batch"] = histogram_json(batch_hist_);
  j["latency_ms"] = histogram_json(latency_hist_);
  {
    obs::Json phases = obs::Json::object();
    phases["queue_wait_ms"] = histogram_json(phase_queue_wait_hist_);
    phases["batch_wait_ms"] = histogram_json(phase_batch_wait_hist_);
    phases["compute_ms"] = histogram_json(phase_compute_hist_);
    phases["write_ms"] = histogram_json(phase_write_hist_);
    j["phases"] = std::move(phases);
  }
  {
    obs::Json slow = obs::Json::array();
    std::vector<SlowRequest> entries;
    {
      std::lock_guard<std::mutex> lock(slow_mu_);
      entries = slow_log_;
    }
    std::sort(entries.begin(), entries.end(),
              [](const SlowRequest& a, const SlowRequest& b) {
                return a.total_ms > b.total_ms;
              });
    for (const SlowRequest& e : entries) {
      obs::Json row = obs::Json::object();
      row["trace_id"] = e.trace_id;
      row["request_id"] = e.request_id;
      row["total_ms"] = e.total_ms;
      row["queue_wait_ms"] = e.queue_wait_ms;
      row["batch_wait_ms"] = e.batch_wait_ms;
      row["compute_ms"] = e.compute_ms;
      row["write_ms"] = e.write_ms;
      row["batch_size"] = e.batch_size;
      row["outcome"] = e.outcome;
      slow.push_back(std::move(row));
    }
    j["slow_requests"] = std::move(slow);
  }
  return j;
}

std::string ScoreServer::stats_json() const { return stats_doc().dump_string(0); }

std::string ScoreServer::statusz_json() const {
  obs::Json j = stats_doc();
  obs::Json admin = obs::Json::object();
  admin["http_version"] = kAdminHttpVersion;
  if (admin_) {
    admin["requests"] = admin_->requests();
    admin["bad_requests"] = admin_->bad_requests();
  }
  j["admin"] = std::move(admin);
#if defined(PHONOLID_BUILD_TYPE)
  j["build_type"] = PHONOLID_BUILD_TYPE;
#endif
  return j.dump_string(0);
}

}  // namespace phonolid::serve
