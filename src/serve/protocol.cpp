#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "util/serialize.h"

namespace phonolid::serve {

namespace {
constexpr char kFrameMagic[4] = {'P', 'L', 'S', 'V'};

// Peek the frame version from the raw body so decode can accept every
// version in [kMinServeProtocolVersion, kServeProtocolVersion].
// (BinaryReader::expect_magic rejects anything but one exact version, so
// the peeked value is what we then tell it to expect.)
std::uint32_t peek_frame_version(const std::string& body) {
  if (body.size() < 8 || std::memcmp(body.data(), kFrameMagic, 4) != 0) {
    throw util::SerializeError("bad PLSV frame magic");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, body.data() + 4, sizeof version);
  if (version < kMinServeProtocolVersion || version > kServeProtocolVersion) {
    throw util::SerializeError("unsupported PLSV frame version " +
                               std::to_string(version));
  }
  return version;
}
}  // namespace

const char* to_string(Status status) noexcept {
  switch (status) {
    case Status::kOk: return "OK";
    case Status::kBadRequest: return "BAD_REQUEST";
    case Status::kOverloaded: return "OVERLOADED";
    case Status::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case Status::kShuttingDown: return "SHUTTING_DOWN";
    case Status::kError: return "ERROR";
  }
  return "?";
}

std::string encode_request(const Request& request) {
  std::ostringstream out;
  util::BinaryWriter w(out);
  w.write_magic(kFrameMagic, request.wire_version);
  w.write_u32(static_cast<std::uint32_t>(request.type));
  w.write_u64(request.request_id);
  w.write_u32(request.deadline_ms);
  if (request.wire_version >= 2) w.write_u64(request.trace_id);
  switch (request.type) {
    case FrameType::kScore:
      w.write_f32_vec(request.samples);
      break;
    case FrameType::kSwap:
      w.write_string(request.text);
      break;
    case FrameType::kPing:
    case FrameType::kStats:
      break;
  }
  return std::move(out).str();
}

Request decode_request(const std::string& body) {
  const std::uint32_t version = peek_frame_version(body);
  std::istringstream in(body);
  util::BinaryReader r(in);
  r.expect_magic(kFrameMagic, version);
  Request request;
  request.wire_version = version;
  const std::uint32_t type = r.read_u32();
  if (type < static_cast<std::uint32_t>(FrameType::kScore) ||
      type > static_cast<std::uint32_t>(FrameType::kSwap)) {
    throw util::SerializeError("unknown request frame type " +
                               std::to_string(type));
  }
  request.type = static_cast<FrameType>(type);
  request.request_id = r.read_u64();
  request.deadline_ms = r.read_u32();
  if (version >= 2) request.trace_id = r.read_u64();
  switch (request.type) {
    case FrameType::kScore:
      request.samples = r.read_f32_vec();
      break;
    case FrameType::kSwap:
      request.text = r.read_string();
      break;
    case FrameType::kPing:
    case FrameType::kStats:
      break;
  }
  return request;
}

std::string encode_response(const Response& response) {
  std::ostringstream out;
  util::BinaryWriter w(out);
  w.write_magic(kFrameMagic, response.wire_version);
  w.write_u64(response.request_id);
  w.write_u32(static_cast<std::uint32_t>(response.status));
  if (response.wire_version >= 2) w.write_u64(response.trace_id);
  w.write_f32_vec(response.llr);
  w.write_u32(response.best_language);
  w.write_string(response.text);
  return std::move(out).str();
}

Response decode_response(const std::string& body) {
  const std::uint32_t version = peek_frame_version(body);
  std::istringstream in(body);
  util::BinaryReader r(in);
  r.expect_magic(kFrameMagic, version);
  Response response;
  response.wire_version = version;
  response.request_id = r.read_u64();
  const std::uint32_t status = r.read_u32();
  if (status > static_cast<std::uint32_t>(Status::kError)) {
    throw util::SerializeError("unknown response status " +
                               std::to_string(status));
  }
  response.status = static_cast<Status>(status);
  if (version >= 2) response.trace_id = r.read_u64();
  response.llr = r.read_f32_vec();
  response.best_language = r.read_u32();
  response.text = r.read_string();
  return response;
}

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::read(fd, p + got, n - got);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (got == 0) return false;
      // An I/O error after bytes were already consumed is a truncated
      // frame, not a clean close — same contract as the rc == 0 case.
      throw util::SerializeError(std::string("read error mid-frame: ") +
                                 std::strerror(errno));
    }
    if (rc == 0) {
      if (got == 0) return false;
      throw util::SerializeError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(rc);
  }
  return true;
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const char*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a vanished peer is a false return, not a process-killing
    // SIGPIPE.
    const ssize_t rc = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(rc);
  }
  return true;
}

bool read_frame(int fd, std::string& body) {
  std::uint32_t length = 0;
  if (!read_exact(fd, &length, sizeof length)) return false;
  if (length > kMaxFrameBytes) {
    throw util::SerializeError("frame length " + std::to_string(length) +
                               " exceeds limit");
  }
  body.assign(length, '\0');
  if (length > 0 && !read_exact(fd, body.data(), length)) {
    throw util::SerializeError("connection closed mid-frame");
  }
  return true;
}

bool write_frame(int fd, const std::string& body) {
  const auto length = static_cast<std::uint32_t>(body.size());
  if (!write_all(fd, &length, sizeof length)) return false;
  return body.empty() || write_all(fd, body.data(), body.size());
}

}  // namespace phonolid::serve
