#include "decoder/phone_loop_decoder.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/energy.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace phonolid::decoder {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

PhoneLoopDecoder::PhoneLoopDecoder(const am::AcousticModel& model,
                                   am::HmmTopology topology,
                                   am::HmmTransitions transitions,
                                   const DecoderConfig& config)
    : model_(&model),
      topology_(topology),
      transitions_(std::move(transitions)),
      config_(config) {
  if (model.num_states() != topology_.num_states()) {
    throw std::invalid_argument("decoder: model/topology state mismatch");
  }
  if (config_.phone_insertion_penalty == 0.0) {
    config_.phone_insertion_penalty =
        std::log(1.0 / static_cast<double>(std::max<std::size_t>(
                          topology_.num_phones, 1)));
  }
}

Lattice PhoneLoopDecoder::decode(const util::Matrix& features) const {
  util::Matrix am_scores;
  model_->score(features, am_scores);
  return decode_from_scores(am_scores);
}

Lattice PhoneLoopDecoder::decode_from_scores(
    const util::Matrix& am_scores) const {
  // Batch decode is the single-chunk degenerate case of the session.
  DecodeSession session(*this);
  session.advance(am_scores);
  return session.finalize();
}

DecodeSession::DecodeSession(const PhoneLoopDecoder& decoder)
    : decoder_(&decoder) {
  const auto& topology = decoder_->topology_;
  cur_.resize(topology.num_states());
  prev_.resize(topology.num_states());
  exits_.resize(topology.num_phones);
  state_sums_.assign(topology.num_states(), 0.0f);
  boundaries_.resize(1);  // boundary 0 is never harvested
}

double DecodeSession::harvest_boundary(std::size_t boundary) {
  // Called once per boundary t in 1..frames with `cur_` holding the frame
  // t-1 tokens.  Computes exit candidates, records lattice edges within the
  // beam, and returns the entry score for new phones.
  const auto& topology = decoder_->topology_;
  const std::size_t num_phones = topology.num_phones;
  const std::size_t sp = topology.states_per_phone;
  double best = kNegInf;
  std::uint32_t best_p = 0;
  for (std::size_t p = 0; p < num_phones; ++p) {
    const Token& tok = cur_[p * sp + (sp - 1)];
    ExitCand& cand = exits_[p];
    if (tok.score == kNegInf) {
      cand.score = kNegInf;
      continue;
    }
    const double exit_score =
        tok.score +
        decoder_->transitions_.log_advance[topology.state_of(p, sp - 1)];
    cand.score = exit_score;
    cand.entry = tok.entry;
    cand.entry_base = tok.entry_base;
    if (exit_score > best) {
      best = exit_score;
      best_p = static_cast<std::uint32_t>(p);
    }
  }
  assert(boundaries_.size() == boundary);
  Boundary b;
  b.best_exit = best;
  b.best_phone = best_p;
  b.best_entry = (best == kNegInf) ? 0 : exits_[best_p].entry;
  boundaries_.push_back(b);
  if (best == kNegInf) return kNegInf;
  for (std::size_t p = 0; p < num_phones; ++p) {
    const ExitCand& cand = exits_[p];
    if (cand.score == kNegInf ||
        cand.score < best - decoder_->config_.lattice_beam) {
      continue;
    }
    LatticeEdge e;
    e.start_node = cand.entry;
    e.end_node = static_cast<std::uint32_t>(boundary);
    e.phone = static_cast<std::uint32_t>(p);
    e.score = static_cast<float>(cand.score - cand.entry_base);
    edges_.push_back(e);
  }
  return best;
}

void DecodeSession::advance_frame(std::span<const float> row, std::size_t t,
                                  double entry_score) {
  const auto& topology = decoder_->topology_;
  const auto& transitions = decoder_->transitions_;
  const std::size_t num_phones = topology.num_phones;
  const std::size_t sp = topology.states_per_phone;
  const double penalty = decoder_->config_.phone_insertion_penalty;
  for (std::size_t p = 0; p < num_phones; ++p) {
    for (std::size_t j = 0; j < sp; ++j) {
      const std::size_t state = topology.state_of(p, j);
      const Token& stay_tok = prev_[p * sp + j];
      double stay = kNegInf, advance = kNegInf;
      if (stay_tok.score != kNegInf) {
        stay = stay_tok.score + transitions.log_self[state];
      }
      if (j > 0 && prev_[p * sp + j - 1].score != kNegInf) {
        advance = prev_[p * sp + j - 1].score +
                  transitions.log_advance[topology.state_of(p, j - 1)];
      }
      Token& out = cur_[p * sp + j];
      double enter = kNegInf;
      if (j == 0 && entry_score != kNegInf) {
        enter = entry_score + penalty;
      }
      if (stay >= advance && stay >= enter) {
        if (stay == kNegInf) {
          out.score = kNegInf;
          continue;
        }
        out = stay_tok;
        out.score = stay;
      } else if (advance >= enter) {
        out = prev_[p * sp + j - 1];
        out.score = advance;
      } else {
        out.score = enter;
        out.entry = static_cast<std::uint32_t>(t);
        out.entry_base = entry_score;
      }
      out.score += row[state];
    }
  }
}

void DecodeSession::advance(const util::Matrix& am_scores) {
  static obs::Counter& frames_in = obs::Metrics::counter("decoder.frames");
  if (finalized_) {
    throw std::logic_error("DecodeSession: advance() after finalize()");
  }
  const std::size_t rows = am_scores.rows();
  if (rows == 0) return;
  const auto& topology = decoder_->topology_;
  if (am_scores.cols() != topology.num_states()) {
    throw std::invalid_argument("DecodeSession: state count mismatch");
  }
  PHONOLID_SPAN("viterbi");
  frames_in.add(rows);
  // Software energy model: the DP visits every (frame, state) cell with a
  // handful of compare/add operations plus the per-boundary harvest.
  obs::Energy::charge_flops(8.0 * static_cast<double>(rows) *
                            static_cast<double>(topology.num_states()));

  const std::size_t num_phones = topology.num_phones;
  const std::size_t sp = topology.states_per_phone;
  const double penalty = decoder_->config_.phone_insertion_penalty;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t t = frames_seen_;
    const auto row = am_scores.row(r);
    for (std::size_t s = 0; s < topology.num_states(); ++s) {
      state_sums_[s] += row[s];
    }
    if (t == 0) {
      // Frame 0: every phone may start.
      for (std::size_t p = 0; p < num_phones; ++p) {
        Token& tok = cur_[p * sp];
        tok.entry_base = 0.0;
        tok.entry = 0;
        tok.score = penalty + row[topology.state_of(p, 0)];
      }
    } else {
      // Exits after frame t-1 (boundary t) — harvest reads `cur_`, which
      // still holds the frame t-1 tokens, and also emits lattice edges.
      const double entry_score = harvest_boundary(t);
      std::swap(cur_, prev_);  // prev_ = frame t-1 tokens, cur_ = scratch
      advance_frame(row, t, entry_score);
    }
    ++frames_seen_;
  }
}

Lattice DecodeSession::finalize() {
  static obs::Counter& lattices_out =
      obs::Metrics::counter("decoder.lattices");
  static obs::Counter& edges_out = obs::Metrics::counter("decoder.edges");
  if (finalized_) {
    throw std::logic_error("DecodeSession: finalize() called twice");
  }
  finalized_ = true;
  const std::size_t frames = frames_seen_;
  if (frames == 0) return Lattice(0, {});
  PHONOLID_SPAN("viterbi");
  const auto& topology = decoder_->topology_;
  const auto& config = decoder_->config_;

  // Final boundary.
  const double final_best = harvest_boundary(frames);
  if (final_best == kNegInf) {
    // Pathological (e.g. single-frame utterance shorter than one HMM):
    // fall back to a single best-state edge so downstream code sees a
    // non-empty, sound lattice.  state_sums_ accumulated per advance() in
    // the same order the batch fallback sums, so the pick is identical.
    std::size_t best_state = 0;
    float best_score = -std::numeric_limits<float>::infinity();
    for (std::size_t s = 0; s < topology.num_states(); ++s) {
      if (state_sums_[s] > best_score) {
        best_score = state_sums_[s];
        best_state = s;
      }
    }
    LatticeEdge e;
    e.start_node = 0;
    e.end_node = static_cast<std::uint32_t>(frames);
    e.phone = static_cast<std::uint32_t>(topology.phone_of(best_state));
    e.score = best_score;
    Lattice lat(frames, {e});
    lat.compute_posteriors(config.acoustic_scale, config.posterior_prune);
    lat.set_best_path({e.phone});
    lattices_out.add();
    edges_out.add(1);
    return lat;
  }

  lattices_out.add();
  edges_out.add(edges_.size());
  Lattice lattice(frames, std::move(edges_));
  lattice.compute_posteriors(config.acoustic_scale, config.posterior_prune);

  // 1-best phone sequence by boundary traceback.
  std::vector<std::uint32_t> path;
  std::size_t t = frames;
  while (t > 0) {
    const Boundary& b = boundaries_[t];
    path.push_back(b.best_phone);
    assert(b.best_entry < t);
    t = b.best_entry;
  }
  std::reverse(path.begin(), path.end());
  lattice.set_best_path(std::move(path));
  return lattice;
}

}  // namespace phonolid::decoder
