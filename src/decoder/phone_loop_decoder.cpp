#include "decoder/phone_loop_decoder.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/energy.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace phonolid::decoder {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

PhoneLoopDecoder::PhoneLoopDecoder(const am::AcousticModel& model,
                                   am::HmmTopology topology,
                                   am::HmmTransitions transitions,
                                   const DecoderConfig& config)
    : model_(&model),
      topology_(topology),
      transitions_(std::move(transitions)),
      config_(config) {
  if (model.num_states() != topology_.num_states()) {
    throw std::invalid_argument("decoder: model/topology state mismatch");
  }
  if (config_.phone_insertion_penalty == 0.0) {
    config_.phone_insertion_penalty =
        std::log(1.0 / static_cast<double>(std::max<std::size_t>(
                          topology_.num_phones, 1)));
  }
}

Lattice PhoneLoopDecoder::decode(const util::Matrix& features) const {
  util::Matrix am_scores;
  model_->score(features, am_scores);
  return decode_from_scores(am_scores);
}

Lattice PhoneLoopDecoder::decode_from_scores(
    const util::Matrix& am_scores) const {
  static obs::Counter& lattices_out =
      obs::Metrics::counter("decoder.lattices");
  static obs::Counter& frames_in = obs::Metrics::counter("decoder.frames");
  static obs::Counter& edges_out = obs::Metrics::counter("decoder.edges");
  PHONOLID_SPAN("viterbi");

  const std::size_t frames = am_scores.rows();
  const std::size_t num_phones = topology_.num_phones;
  const std::size_t sp = topology_.states_per_phone;
  if (frames > 0 && am_scores.cols() != topology_.num_states()) {
    throw std::invalid_argument("decode_from_scores: state count mismatch");
  }
  frames_in.add(frames);
  if (frames == 0) return Lattice(0, {});
  // Software energy model: the DP visits every (frame, state) cell with a
  // handful of compare/add operations plus the per-boundary harvest.
  obs::Energy::charge_flops(8.0 * static_cast<double>(frames) *
                            static_cast<double>(topology_.num_states()));

  // DP state per (phone, position): path score, entry frame, path score at
  // entry (excluding this phone's own contributions).
  struct Token {
    double score = kNegInf;
    std::uint32_t entry = 0;
    double entry_base = 0.0;
  };
  std::vector<Token> cur(num_phones * sp), prev(num_phones * sp);
  const auto idx = [sp](std::size_t p, std::size_t j) { return p * sp + j; };

  // Boundary records: for boundary time t (phone ends after frame t-1),
  // the best exiting phone and its entry frame (for 1-best traceback).
  struct Boundary {
    double best_exit = kNegInf;
    std::uint32_t best_phone = 0;
    std::uint32_t best_entry = 0;
  };
  std::vector<Boundary> boundaries(frames + 1);

  std::vector<LatticeEdge> edges;
  edges.reserve(frames * 4);

  const double penalty = config_.phone_insertion_penalty;

  // --- Frame 0: every phone may start. ---
  for (std::size_t p = 0; p < num_phones; ++p) {
    Token& tok = cur[idx(p, 0)];
    tok.entry_base = 0.0;
    tok.entry = 0;
    tok.score = penalty + am_scores(0, topology_.state_of(p, 0));
  }

  // Per-boundary scratch for exit candidates: (phone, exit score, entry,
  // entry_base).
  struct ExitCand {
    double score;
    std::uint32_t entry;
    double entry_base;
  };
  std::vector<ExitCand> exits(num_phones);

  const auto harvest_boundary = [&](std::size_t boundary) {
    // Called once per boundary t in 1..frames using `cur` == tokens after
    // frame boundary-1.  Computes exit candidates, records lattice edges
    // within the beam, and returns the entry score for new phones.
    double best = kNegInf;
    std::uint32_t best_p = 0;
    for (std::size_t p = 0; p < num_phones; ++p) {
      const Token& tok = cur[idx(p, sp - 1)];
      ExitCand& cand = exits[p];
      if (tok.score == kNegInf) {
        cand.score = kNegInf;
        continue;
      }
      const double exit_score =
          tok.score +
          transitions_.log_advance[topology_.state_of(p, sp - 1)];
      cand.score = exit_score;
      cand.entry = tok.entry;
      cand.entry_base = tok.entry_base;
      if (exit_score > best) {
        best = exit_score;
        best_p = static_cast<std::uint32_t>(p);
      }
    }
    Boundary& b = boundaries[boundary];
    b.best_exit = best;
    b.best_phone = best_p;
    b.best_entry = (best == kNegInf) ? 0 : exits[best_p].entry;
    if (best == kNegInf) return kNegInf;
    for (std::size_t p = 0; p < num_phones; ++p) {
      const ExitCand& cand = exits[p];
      if (cand.score == kNegInf || cand.score < best - config_.lattice_beam) {
        continue;
      }
      LatticeEdge e;
      e.start_node = cand.entry;
      e.end_node = static_cast<std::uint32_t>(boundary);
      e.phone = static_cast<std::uint32_t>(p);
      e.score = static_cast<float>(cand.score - cand.entry_base);
      edges.push_back(e);
    }
    return best;
  };

  for (std::size_t t = 1; t < frames; ++t) {
    // Exits after frame t-1 (boundary t) — harvest reads `cur`, which still
    // holds the frame t-1 tokens, and also emits lattice edges.
    const double entry_score = harvest_boundary(t);
    std::swap(cur, prev);  // prev = frame t-1 tokens, cur = scratch

    for (std::size_t p = 0; p < num_phones; ++p) {
      for (std::size_t j = 0; j < sp; ++j) {
        const std::size_t state = topology_.state_of(p, j);
        const Token& stay_tok = prev[idx(p, j)];
        double stay = kNegInf, advance = kNegInf;
        if (stay_tok.score != kNegInf) {
          stay = stay_tok.score + transitions_.log_self[state];
        }
        if (j > 0 && prev[idx(p, j - 1)].score != kNegInf) {
          advance = prev[idx(p, j - 1)].score +
                    transitions_.log_advance[topology_.state_of(p, j - 1)];
        }
        Token& out = cur[idx(p, j)];
        double enter = kNegInf;
        if (j == 0 && entry_score != kNegInf) {
          enter = entry_score + penalty;
        }
        if (stay >= advance && stay >= enter) {
          if (stay == kNegInf) {
            out.score = kNegInf;
            continue;
          }
          out = stay_tok;
          out.score = stay;
        } else if (advance >= enter) {
          out = prev[idx(p, j - 1)];
          out.score = advance;
        } else {
          out.score = enter;
          out.entry = static_cast<std::uint32_t>(t);
          out.entry_base = entry_score;
        }
        out.score += am_scores(t, state);
      }
    }
  }
  // Final boundary.
  const double final_best = harvest_boundary(frames);
  if (final_best == kNegInf) {
    // Pathological (e.g. single-frame utterance shorter than one HMM):
    // fall back to a single best-state edge so downstream code sees a
    // non-empty, sound lattice.
    std::size_t best_state = 0;
    float best_score = -std::numeric_limits<float>::infinity();
    for (std::size_t s = 0; s < topology_.num_states(); ++s) {
      float total = 0.0f;
      for (std::size_t t = 0; t < frames; ++t) total += am_scores(t, s);
      if (total > best_score) {
        best_score = total;
        best_state = s;
      }
    }
    LatticeEdge e;
    e.start_node = 0;
    e.end_node = static_cast<std::uint32_t>(frames);
    e.phone = static_cast<std::uint32_t>(topology_.phone_of(best_state));
    e.score = best_score;
    Lattice lat(frames, {e});
    lat.compute_posteriors(config_.acoustic_scale, config_.posterior_prune);
    lat.set_best_path({e.phone});
    lattices_out.add();
    edges_out.add(1);
    return lat;
  }

  lattices_out.add();
  edges_out.add(edges.size());
  Lattice lattice(frames, std::move(edges));
  lattice.compute_posteriors(config_.acoustic_scale, config_.posterior_prune);

  // 1-best phone sequence by boundary traceback.
  std::vector<std::uint32_t> path;
  std::size_t t = frames;
  while (t > 0) {
    const Boundary& b = boundaries[t];
    path.push_back(b.best_phone);
    assert(b.best_entry < t);
    t = b.best_entry;
  }
  std::reverse(path.begin(), path.end());
  lattice.set_best_path(std::move(path));
  return lattice;
}

}  // namespace phonolid::decoder
