// Time-synchronous Viterbi phone-loop decoder with lattice output.
//
// The stand-in for HTK's HVite in the paper's pipeline (§4.1): speech is
// tokenised by an unconstrained phone loop (no language model, as is
// standard for LRE phonotactics) and a lattice of competitive phone
// segmentations is emitted for expected-count analysis.
//
// Lattice generation: for each frame t and phone p the decoder keeps the
// best score of a path that *ends* phone p at t along with the frame at
// which that phone occurrence was entered.  Every (t, p) hypothesis within
// `lattice_beam` of the frame-best exit score becomes a lattice edge with a
// segment-local score — the classic Viterbi-lattice construction.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "am/hmm.h"
#include "decoder/lattice.h"
#include "util/matrix.h"

namespace phonolid::decoder {

class DecodeSession;

struct DecoderConfig {
  /// Log-score beam for admitting phone-end hypotheses into the lattice.
  double lattice_beam = 10.0;
  /// Uniform phone-loop transition penalty added at each phone boundary
  /// (0 = log(1/num_phones) chosen automatically).
  double phone_insertion_penalty = 0.0;
  /// Acoustic scale used when computing lattice posteriors.
  double acoustic_scale = 0.3;
  /// Posterior floor below which edges are pruned after forward-backward.
  double posterior_prune = 1e-4;
};

class PhoneLoopDecoder {
 public:
  PhoneLoopDecoder(const am::AcousticModel& model, am::HmmTopology topology,
                   am::HmmTransitions transitions,
                   const DecoderConfig& config = {});

  [[nodiscard]] std::size_t num_phones() const noexcept {
    return topology_.num_phones;
  }
  [[nodiscard]] const DecoderConfig& config() const noexcept { return config_; }

  /// Decode a feature matrix into a posterior-annotated lattice.
  /// The returned lattice already has posteriors computed and pruned and
  /// its 1-best phone path filled in.
  [[nodiscard]] Lattice decode(const util::Matrix& features) const;

  /// Viterbi over a precomputed frames x num_states acoustic score matrix
  /// (as produced by AcousticModel::score).  Implemented as a single-chunk
  /// DecodeSession, so batch and streaming share one beam-advance code path.
  [[nodiscard]] Lattice decode_from_scores(const util::Matrix& am_scores) const;

 private:
  friend class DecodeSession;
  const am::AcousticModel* model_;
  am::HmmTopology topology_;
  am::HmmTransitions transitions_;
  DecoderConfig config_;
};

/// Incremental Viterbi beam advance: feed AM score rows chunk by chunk, then
/// finalize() into the posterior-annotated lattice.  The session owns every
/// piece of search state (token rows, boundary records, harvested edges), so
/// concurrent sessions — even several on one thread — are independent.  For
/// any chunking of the same score matrix the finalized lattice is
/// bit-identical to PhoneLoopDecoder::decode_from_scores on the whole.
class DecodeSession {
 public:
  /// `decoder` must outlive the session.
  explicit DecodeSession(const PhoneLoopDecoder& decoder);

  /// Advances the beam over `am_scores` (rows are global frames
  /// [frames_seen(), frames_seen() + rows)).  Throws std::logic_error after
  /// finalize().
  void advance(const util::Matrix& am_scores);

  /// Harvests the final boundary and builds the lattice (posteriors +
  /// 1-best path, like the batch call).  Throws std::logic_error if called
  /// twice.
  [[nodiscard]] Lattice finalize();

  [[nodiscard]] std::size_t frames_seen() const noexcept {
    return frames_seen_;
  }
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

 private:
  // DP state per (phone, position): path score, entry frame, path score at
  // entry (excluding this phone's own contributions).
  struct Token {
    double score = -std::numeric_limits<double>::infinity();
    std::uint32_t entry = 0;
    double entry_base = 0.0;
  };
  // Boundary records: for boundary time t (phone ends after frame t-1),
  // the best exiting phone and its entry frame (for 1-best traceback).
  struct Boundary {
    double best_exit = -std::numeric_limits<double>::infinity();
    std::uint32_t best_phone = 0;
    std::uint32_t best_entry = 0;
  };
  struct ExitCand {
    double score;
    std::uint32_t entry;
    double entry_base;
  };

  double harvest_boundary(std::size_t boundary);
  void advance_frame(std::span<const float> row, std::size_t t,
                     double entry_score);

  const PhoneLoopDecoder* decoder_;
  std::vector<Token> cur_, prev_;
  std::vector<Boundary> boundaries_;  // index = boundary time, [0] unused
  std::vector<LatticeEdge> edges_;
  std::vector<ExitCand> exits_;       // per-boundary scratch
  // Running per-state score sums (t-ascending float adds, matching the
  // batch fallback) so utterances shorter than one HMM still produce the
  // same single-edge lattice.
  std::vector<float> state_sums_;
  std::size_t frames_seen_ = 0;
  bool finalized_ = false;
};

}  // namespace phonolid::decoder
