// Time-synchronous Viterbi phone-loop decoder with lattice output.
//
// The stand-in for HTK's HVite in the paper's pipeline (§4.1): speech is
// tokenised by an unconstrained phone loop (no language model, as is
// standard for LRE phonotactics) and a lattice of competitive phone
// segmentations is emitted for expected-count analysis.
//
// Lattice generation: for each frame t and phone p the decoder keeps the
// best score of a path that *ends* phone p at t along with the frame at
// which that phone occurrence was entered.  Every (t, p) hypothesis within
// `lattice_beam` of the frame-best exit score becomes a lattice edge with a
// segment-local score — the classic Viterbi-lattice construction.
#pragma once

#include <cstdint>

#include "am/hmm.h"
#include "decoder/lattice.h"
#include "util/matrix.h"

namespace phonolid::decoder {

struct DecoderConfig {
  /// Log-score beam for admitting phone-end hypotheses into the lattice.
  double lattice_beam = 10.0;
  /// Uniform phone-loop transition penalty added at each phone boundary
  /// (0 = log(1/num_phones) chosen automatically).
  double phone_insertion_penalty = 0.0;
  /// Acoustic scale used when computing lattice posteriors.
  double acoustic_scale = 0.3;
  /// Posterior floor below which edges are pruned after forward-backward.
  double posterior_prune = 1e-4;
};

class PhoneLoopDecoder {
 public:
  PhoneLoopDecoder(const am::AcousticModel& model, am::HmmTopology topology,
                   am::HmmTransitions transitions,
                   const DecoderConfig& config = {});

  [[nodiscard]] std::size_t num_phones() const noexcept {
    return topology_.num_phones;
  }
  [[nodiscard]] const DecoderConfig& config() const noexcept { return config_; }

  /// Decode a feature matrix into a posterior-annotated lattice.
  /// The returned lattice already has posteriors computed and pruned and
  /// its 1-best phone path filled in.
  [[nodiscard]] Lattice decode(const util::Matrix& features) const;

  /// Viterbi over a precomputed frames x num_states acoustic score matrix
  /// (as produced by AcousticModel::score).  Lets callers batch the model
  /// evaluation separately from the search.
  [[nodiscard]] Lattice decode_from_scores(const util::Matrix& am_scores) const;

 private:
  const am::AcousticModel* model_;
  am::HmmTopology topology_;
  am::HmmTransitions transitions_;
  DecoderConfig config_;
};

}  // namespace phonolid::decoder
