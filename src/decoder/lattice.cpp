#include "decoder/lattice.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/math_util.h"

namespace phonolid::decoder {

Lattice::Lattice(std::size_t num_frames, std::vector<LatticeEdge> edges)
    : num_frames_(num_frames), edges_(std::move(edges)) {
  for (const auto& e : edges_) {
    if (e.end_node <= e.start_node || e.end_node > num_frames_) {
      throw std::invalid_argument("Lattice: malformed edge");
    }
  }
}

const std::vector<std::vector<std::uint32_t>>& Lattice::adjacency() const {
  if (!adjacency_valid_) {
    adjacency_.assign(num_nodes(), {});
    for (std::uint32_t i = 0; i < edges_.size(); ++i) {
      adjacency_[edges_[i].start_node].push_back(i);
    }
    adjacency_valid_ = true;
  }
  return adjacency_;
}

double Lattice::forward_backward(double acoustic_scale,
                                 std::vector<double>& alpha,
                                 std::vector<double>& beta) const {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const std::size_t nodes = num_nodes();
  alpha.assign(nodes, kNegInf);
  beta.assign(nodes, kNegInf);
  if (nodes == 0) return kNegInf;
  alpha[0] = 0.0;
  beta[nodes - 1] = 0.0;
  if (edges_.empty()) return kNegInf;

  // Edges sorted by start node give a topological order over this
  // time-indexed DAG (end > start always).
  std::vector<std::uint32_t> order(edges_.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::uint32_t a, std::uint32_t b) {
    return edges_[a].start_node < edges_[b].start_node;
  });

  for (std::uint32_t i : order) {
    const auto& e = edges_[i];
    if (alpha[e.start_node] == kNegInf) continue;
    const double w = alpha[e.start_node] + acoustic_scale * e.score;
    alpha[e.end_node] = util::log_add(alpha[e.end_node], w);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto& e = edges_[*it];
    if (beta[e.end_node] == kNegInf) continue;
    const double w = beta[e.end_node] + acoustic_scale * e.score;
    beta[e.start_node] = util::log_add(beta[e.start_node], w);
  }
  return alpha[nodes - 1];
}

double Lattice::compute_posteriors(double acoustic_scale,
                                   double prune_threshold) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  if (edges_.empty()) return kNegInf;

  std::vector<double> alpha, beta;
  const double total = forward_backward(acoustic_scale, alpha, beta);
  if (total == kNegInf) {
    // No complete path (should not happen for decoder output).
    for (auto& e : edges_) e.posterior = 0.0;
    return total;
  }

  for (auto& e : edges_) {
    if (alpha[e.start_node] == kNegInf || beta[e.end_node] == kNegInf) {
      e.posterior = 0.0;
      continue;
    }
    const double logp = alpha[e.start_node] + acoustic_scale * e.score +
                        beta[e.end_node] - total;
    e.posterior = std::exp(std::min(logp, 0.0));
  }

  if (prune_threshold > 0.0) {
    edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                                [&](const LatticeEdge& e) {
                                  return e.posterior < prune_threshold;
                                }),
                 edges_.end());
    adjacency_valid_ = false;
  }
  return total;
}

std::vector<double> Lattice::frame_occupancy() const {
  std::vector<double> occ(num_frames_, 0.0);
  for (const auto& e : edges_) {
    for (std::uint32_t t = e.start_node; t < e.end_node; ++t) {
      occ[t] += e.posterior;
    }
  }
  return occ;
}

}  // namespace phonolid::decoder
