// Phone lattices.
//
// The decoder emits a time-indexed DAG: nodes are frame boundaries
// (0..num_frames), edges are phone hypotheses with segment-local
// log-scores (acoustic + HMM transitions).  Forward-backward over the DAG
// produces the edge posteriors ξ(e) and node probabilities α/β used by the
// paper's expected-count formula (its Eq. for c_E(h_i..h_{i+N-1}|ℓ)).
#pragma once

#include <cstdint>
#include <vector>

namespace phonolid::decoder {

struct LatticeEdge {
  std::uint32_t start_node = 0;  // frame index where the phone begins
  std::uint32_t end_node = 0;    // frame index one past the phone end
  std::uint32_t phone = 0;       // front-end phone id
  float score = 0.0f;            // segment log-score (unscaled)
  /// Filled by compute_posteriors(): P(edge on path | lattice).
  double posterior = 0.0;
};

class Lattice {
 public:
  Lattice() = default;
  Lattice(std::size_t num_frames, std::vector<LatticeEdge> edges);

  [[nodiscard]] std::size_t num_frames() const noexcept { return num_frames_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_frames_ + 1; }
  [[nodiscard]] const std::vector<LatticeEdge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] std::vector<LatticeEdge>& edges() noexcept { return edges_; }

  [[nodiscard]] const std::vector<std::uint32_t>& best_path() const noexcept {
    return best_path_;
  }
  void set_best_path(std::vector<std::uint32_t> path) {
    best_path_ = std::move(path);
  }

  /// Edge indices leaving each node (built lazily, invalidated by edits).
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& adjacency() const;

  /// Forward-backward node scores under `acoustic_scale`; returns the total
  /// scaled log-probability (alpha of the final node), -inf if no complete
  /// path exists.  alpha/beta are resized to num_nodes().
  double forward_backward(double acoustic_scale, std::vector<double>& alpha,
                          std::vector<double>& beta) const;

  /// Runs forward-backward with the given acoustic scale, fills every
  /// edge's `posterior`, removes edges with posterior < `prune_threshold`
  /// (and any edge off every complete path), and returns the total scaled
  /// log-probability of the lattice.  Returns -inf for an empty lattice.
  double compute_posteriors(double acoustic_scale,
                            double prune_threshold = 1e-6);

  /// Sum of posteriors of edges covering each frame; == 1 for every frame
  /// of a sound lattice (test invariant).
  [[nodiscard]] std::vector<double> frame_occupancy() const;

 private:
  std::size_t num_frames_ = 0;
  std::vector<LatticeEdge> edges_;
  std::vector<std::uint32_t> best_path_;
  mutable std::vector<std::vector<std::uint32_t>> adjacency_;
  mutable bool adjacency_valid_ = false;
};

}  // namespace phonolid::decoder
