#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/math_util.h"

namespace phonolid::eval {

TrialSet TrialSet::from_scores(const util::Matrix& scores,
                               std::span<const std::int32_t> labels) {
  if (scores.rows() != labels.size()) {
    throw std::invalid_argument("TrialSet: label count mismatch");
  }
  TrialSet trials;
  trials.target_scores.reserve(scores.rows());
  trials.nontarget_scores.reserve(scores.rows() * (scores.cols() - 1));
  for (std::size_t i = 0; i < scores.rows(); ++i) {
    auto row = scores.row(i);
    for (std::size_t k = 0; k < scores.cols(); ++k) {
      // Non-finite scores (degenerate upstream models) are mapped to the
      // worst possible value for their trial type, keeping every metric
      // well defined instead of poisoning the threshold sweep.
      double s = row[k];
      if (!std::isfinite(s)) {
        s = (static_cast<std::size_t>(labels[i]) == k) ? -1e300 : 1e300;
      }
      if (static_cast<std::size_t>(labels[i]) == k) {
        trials.target_scores.push_back(s);
      } else {
        trials.nontarget_scores.push_back(s);
      }
    }
  }
  return trials;
}

std::vector<DetPoint> det_curve(const TrialSet& trials) {
  std::vector<DetPoint> curve;
  const std::size_t nt = trials.target_scores.size();
  const std::size_t nn = trials.nontarget_scores.size();
  if (nt == 0 || nn == 0) return curve;

  // Merge-sort sweep from the highest threshold downwards.
  std::vector<double> targets = trials.target_scores;
  std::vector<double> nontargets = trials.nontarget_scores;
  std::sort(targets.begin(), targets.end(), std::greater<>());
  std::sort(nontargets.begin(), nontargets.end(), std::greater<>());

  curve.reserve(nt + nn + 1);
  std::size_t ti = 0, ni = 0;
  // At threshold +inf: accept nothing -> P_miss = 1, P_fa = 0.
  curve.push_back({0.0, 1.0});
  while (ti < nt || ni < nn) {
    // Lower the threshold past the next highest score(s).
    const double next =
        (ti < nt && (ni >= nn || targets[ti] >= nontargets[ni]))
            ? targets[ti]
            : nontargets[ni];
    while (ti < nt && targets[ti] >= next) ++ti;
    while (ni < nn && nontargets[ni] >= next) ++ni;
    curve.push_back({static_cast<double>(ni) / static_cast<double>(nn),
                     1.0 - static_cast<double>(ti) / static_cast<double>(nt)});
  }
  return curve;
}

double equal_error_rate(const TrialSet& trials) {
  const auto curve = det_curve(trials);
  if (curve.empty()) return 0.0;
  // Walk the curve until P_fa >= P_miss, then interpolate with the previous
  // point along the segment crossing the diagonal.
  DetPoint prev = curve.front();
  for (const DetPoint& p : curve) {
    if (p.p_fa >= p.p_miss) {
      const double d_prev = prev.p_miss - prev.p_fa;  // >= 0
      const double d_cur = p.p_fa - p.p_miss;         // >= 0
      const double denom = d_prev + d_cur;
      if (denom <= 0.0) return 0.5 * (p.p_fa + p.p_miss);
      const double w = d_prev / denom;
      return (1.0 - w) * 0.5 * (prev.p_fa + prev.p_miss) +
             w * 0.5 * (p.p_fa + p.p_miss);
    }
    prev = p;
  }
  return 0.5 * (prev.p_fa + prev.p_miss);
}

std::vector<DetPoint> thin_det_curve(const std::vector<DetPoint>& curve,
                                     std::size_t max_points) {
  if (curve.size() <= max_points || max_points < 2) return curve;
  std::vector<DetPoint> out;
  out.reserve(max_points);
  const double step = static_cast<double>(curve.size() - 1) /
                      static_cast<double>(max_points - 1);
  for (std::size_t i = 0; i < max_points; ++i) {
    out.push_back(curve[static_cast<std::size_t>(i * step)]);
  }
  return out;
}

util::Matrix log_posteriors_to_llr(const util::Matrix& log_posteriors) {
  const std::size_t k = log_posteriors.cols();
  if (k < 2) throw std::invalid_argument("llr: need >= 2 classes");
  util::Matrix llr(log_posteriors.rows(), k);
  std::vector<float> others(k - 1);
  for (std::size_t i = 0; i < log_posteriors.rows(); ++i) {
    auto row = log_posteriors.row(i);
    for (std::size_t c = 0; c < k; ++c) {
      std::size_t m = 0;
      for (std::size_t j = 0; j < k; ++j) {
        if (j != c) others[m++] = row[j];
      }
      const float denom =
          util::log_sum_exp(std::span<const float>(others.data(), others.size())) -
          std::log(static_cast<float>(k - 1));
      llr(i, c) = row[c] - denom;
    }
  }
  return llr;
}

double cavg(const util::Matrix& llr_scores,
            std::span<const std::int32_t> labels, std::size_t num_classes,
            double p_target, double threshold) {
  if (llr_scores.rows() != labels.size() || llr_scores.cols() != num_classes) {
    throw std::invalid_argument("cavg: shape mismatch");
  }
  std::vector<std::size_t> class_count(num_classes, 0);
  for (std::int32_t l : labels) ++class_count[static_cast<std::size_t>(l)];

  double total = 0.0;
  std::size_t active_classes = 0;
  for (std::size_t k = 0; k < num_classes; ++k) {
    if (class_count[k] == 0) continue;
    ++active_classes;
    // P_miss(k): target-language utterances rejected by model k.
    std::size_t misses = 0;
    // P_fa(k, j): language-j utterances accepted by model k.
    std::vector<std::size_t> false_accepts(num_classes, 0);
    for (std::size_t i = 0; i < llr_scores.rows(); ++i) {
      const auto truth = static_cast<std::size_t>(labels[i]);
      const bool accepted = llr_scores(i, k) >= threshold;
      if (truth == k) {
        if (!accepted) ++misses;
      } else if (accepted) {
        ++false_accepts[truth];
      }
    }
    double cost = p_target * static_cast<double>(misses) /
                  static_cast<double>(class_count[k]);
    double fa_sum = 0.0;
    std::size_t fa_classes = 0;
    for (std::size_t j = 0; j < num_classes; ++j) {
      if (j == k || class_count[j] == 0) continue;
      ++fa_classes;
      fa_sum += static_cast<double>(false_accepts[j]) /
                static_cast<double>(class_count[j]);
    }
    if (fa_classes > 0) {
      cost += (1.0 - p_target) * fa_sum / static_cast<double>(fa_classes);
    }
    total += cost;
  }
  return active_classes > 0 ? total / static_cast<double>(active_classes) : 0.0;
}

namespace {

/// log2(1 + e^x) without overflow for large |x|.
double log2_1p_exp(double x) {
  constexpr double kLog2E = 1.4426950408889634;
  if (x > 36.0) return x * kLog2E;  // 1 is lost to rounding beyond this
  return std::log1p(std::exp(x)) * kLog2E;
}

}  // namespace

double cllr(const TrialSet& trials) {
  const std::size_t nt = trials.target_scores.size();
  const std::size_t nn = trials.nontarget_scores.size();
  if (nt == 0 || nn == 0) return 0.0;
  double target_cost = 0.0;
  for (double s : trials.target_scores) target_cost += log2_1p_exp(-s);
  double nontarget_cost = 0.0;
  for (double s : trials.nontarget_scores) nontarget_cost += log2_1p_exp(s);
  return 0.5 * (target_cost / static_cast<double>(nt) +
                nontarget_cost / static_cast<double>(nn));
}

double min_cllr(const TrialSet& trials) {
  const std::size_t nt = trials.target_scores.size();
  const std::size_t nn = trials.nontarget_scores.size();
  if (nt == 0 || nn == 0) return 0.0;

  // Pool trials sorted by (score, is_target); the secondary key makes ties
  // deterministic and pessimistic (nontargets first at equal score).
  struct Trial {
    double score;
    bool target;
  };
  std::vector<Trial> pooled;
  pooled.reserve(nt + nn);
  for (double s : trials.nontarget_scores) pooled.push_back({s, false});
  for (double s : trials.target_scores) pooled.push_back({s, true});
  std::sort(pooled.begin(), pooled.end(), [](const Trial& a, const Trial& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.target < b.target;
  });

  // Pool-adjacent-violators: isotonic (non-decreasing) fit of the target
  // indicator in score order.  Each block keeps (sum of indicators, size);
  // violating neighbours merge until the fitted means are monotone.
  struct Block {
    double sum;
    double size;
    [[nodiscard]] double mean() const { return sum / size; }
  };
  std::vector<Block> blocks;
  blocks.reserve(pooled.size());
  for (const Trial& t : pooled) {
    blocks.push_back({t.target ? 1.0 : 0.0, 1.0});
    while (blocks.size() >= 2 &&
           blocks[blocks.size() - 2].mean() >= blocks.back().mean()) {
      blocks[blocks.size() - 2].sum += blocks.back().sum;
      blocks[blocks.size() - 2].size += blocks.back().size;
      blocks.pop_back();
    }
  }

  // Convert fitted posteriors back to LLRs at the empirical prior odds.
  // Blocks with p == 0 or p == 1 map to -inf/+inf LLRs, but such blocks are
  // pure nontarget/target runs: their trials contribute exactly 0 to Cllr,
  // so a large finite stand-in keeps the arithmetic exact.
  const double log_prior_odds = std::log(static_cast<double>(nt)) -
                                std::log(static_cast<double>(nn));
  TrialSet calibrated;
  calibrated.target_scores.reserve(nt);
  calibrated.nontarget_scores.reserve(nn);
  std::size_t i = 0;
  for (const Block& b : blocks) {
    const double p = b.mean();
    double llr = 0.0;
    if (p <= 0.0) {
      llr = -1e6;
    } else if (p >= 1.0) {
      llr = 1e6;
    } else {
      llr = std::log(p) - std::log1p(-p) - log_prior_odds;
    }
    for (double n = 0.0; n < b.size; n += 1.0, ++i) {
      if (pooled[i].target) {
        calibrated.target_scores.push_back(llr);
      } else {
        calibrated.nontarget_scores.push_back(llr);
      }
    }
  }
  return cllr(calibrated);
}

double identification_accuracy(const util::Matrix& scores,
                               std::span<const std::int32_t> labels) {
  if (scores.rows() != labels.size()) {
    throw std::invalid_argument("identification_accuracy: shape mismatch");
  }
  if (scores.rows() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < scores.rows(); ++i) {
    if (util::argmax(scores.row(i)) == static_cast<std::size_t>(labels[i])) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(scores.rows());
}

}  // namespace phonolid::eval
