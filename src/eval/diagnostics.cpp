#include "eval/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/matrix.h"

namespace phonolid::eval {

namespace {

/// Fixed histogram edges: fine around the decision threshold (LLR 0) where
/// calibration errors live, coarse in the tails.  Fixed edges keep ledgers
/// from different runs directly comparable bucket-by-bucket.
const std::vector<double> kHistogramEdges = {-10.0, -8.0, -6.0, -5.0, -4.0,
                                             -3.0,  -2.0, -1.0, 0.0,  1.0,
                                             2.0,   3.0,  4.0,  5.0,  6.0,
                                             8.0,   10.0};

std::size_t bucket_of(double s, const std::vector<double>& edges) {
  std::size_t b = 0;
  while (b < edges.size() && s > edges[b]) ++b;
  return b;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

DiagnosticsResult compute_diagnostics(const obs::DecisionLedger& ledger) {
  if (ledger.empty()) {
    throw std::invalid_argument("compute_diagnostics: empty ledger");
  }
  const std::size_t n = ledger.entries.size();
  const std::size_t k = ledger.num_classes;
  if (k < 2) {
    throw std::invalid_argument("compute_diagnostics: need >= 2 classes");
  }

  DiagnosticsResult d;
  d.num_utts = n;
  d.num_classes = ledger.num_classes;
  d.num_subsystems = ledger.num_subsystems;
  d.calibrated =
      std::all_of(ledger.entries.begin(), ledger.entries.end(),
                  [&](const obs::LedgerEntry& e) {
                    return e.fused_llr.size() == k;
                  });

  // Per-utterance score matrix: fused LLRs when every entry has them,
  // otherwise the mean baseline subsystem score (vote-only runs).
  util::Matrix scores(n, k);
  std::vector<std::int32_t> labels(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const obs::LedgerEntry& e = ledger.entries[i];
    labels[i] = e.true_label;
    if (d.calibrated) {
      for (std::size_t c = 0; c < k; ++c) {
        scores(i, c) = static_cast<float>(e.fused_llr[c]);
      }
    } else {
      for (std::size_t c = 0; c < k; ++c) {
        double sum = 0.0;
        for (const std::vector<double>& f : e.scores) sum += f[c];
        scores(i, c) = static_cast<float>(
            e.scores.empty() ? 0.0
                             : sum / static_cast<double>(e.scores.size()));
      }
    }
  }

  const TrialSet pooled = TrialSet::from_scores(scores, labels);
  d.eer = equal_error_rate(pooled);
  d.cavg = cavg(scores, labels, k);
  d.cllr = cllr(pooled);
  d.min_cllr = min_cllr(pooled);
  d.accuracy = identification_accuracy(scores, labels);
  d.det = thin_det_curve(det_curve(pooled), 64);

  d.histogram.edges = kHistogramEdges;
  d.histogram.target_counts.assign(kHistogramEdges.size() + 1, 0);
  d.histogram.nontarget_counts.assign(kHistogramEdges.size() + 1, 0);
  for (double s : pooled.target_scores) {
    ++d.histogram.target_counts[bucket_of(s, kHistogramEdges)];
  }
  for (double s : pooled.nontarget_scores) {
    ++d.histogram.nontarget_counts[bucket_of(s, kHistogramEdges)];
  }

  // Confusion matrix + per-language one-vs-rest quality.
  d.confusion.assign(k * k, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t pred = 0;
    for (std::size_t c = 1; c < k; ++c) {
      if (scores(i, c) > scores(i, pred)) pred = c;
    }
    d.confusion[static_cast<std::size_t>(labels[i]) * k + pred] += 1;
  }
  d.languages.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    LanguageDiag lang;
    lang.language = ledger.language_name(static_cast<std::int32_t>(c));
    TrialSet one_vs_rest;
    for (std::size_t i = 0; i < n; ++i) {
      if (static_cast<std::size_t>(labels[i]) == c) {
        one_vs_rest.target_scores.push_back(scores(i, c));
      } else {
        one_vs_rest.nontarget_scores.push_back(scores(i, c));
      }
    }
    lang.trials = one_vs_rest.target_scores.size();
    lang.correct = d.confusion[c * k + c];
    lang.accuracy = lang.trials == 0
                        ? 0.0
                        : static_cast<double>(lang.correct) /
                              static_cast<double>(lang.trials);
    lang.eer = equal_error_rate(one_vs_rest);
    lang.cllr = cllr(one_vs_rest);
    d.languages.push_back(std::move(lang));
  }

  // Adoption quality per DBA round.  Rounds are keyed by their 1-based
  // number; the mode string comes from the first utterance that saw the
  // round (all utterances see the same mode).
  std::map<std::uint32_t, AdoptionRoundDiag> rounds;
  for (const obs::LedgerEntry& e : ledger.entries) {
    for (const obs::LedgerRound& r : e.rounds) {
      AdoptionRoundDiag& agg = rounds[r.round];
      agg.round = r.round;
      if (agg.mode.empty()) agg.mode = r.mode;
      if (r.adopted) {
        ++agg.adopted;
        if (r.correct) ++agg.correct;
      }
      if (r.flip) ++agg.flips;
    }
  }
  for (auto& [round, agg] : rounds) {
    agg.precision = agg.adopted == 0 ? 1.0
                                     : static_cast<double>(agg.correct) /
                                           static_cast<double>(agg.adopted);
    agg.recall =
        static_cast<double>(agg.correct) / static_cast<double>(n);
    d.adopted += agg.adopted;
    d.adopted_correct += agg.correct;
    d.flips += agg.flips;
    d.rounds.push_back(agg);
  }
  d.adoption_precision = d.adopted == 0
                             ? 1.0
                             : static_cast<double>(d.adopted_correct) /
                                   static_cast<double>(d.adopted);
  d.adoption_recall =
      static_cast<double>(d.adopted_correct) / static_cast<double>(n);
  return d;
}

obs::Json diagnostics_json(const DiagnosticsResult& d) {
  using obs::Json;
  Json doc = Json::object();
  doc["quality_version"] = Json(kQualityVersion);
  doc["num_utts"] = Json(d.num_utts);
  doc["num_classes"] = Json(d.num_classes);
  doc["num_subsystems"] = Json(d.num_subsystems);
  doc["calibrated"] = Json(d.calibrated);
  doc["eer"] = Json(d.eer);
  doc["cavg"] = Json(d.cavg);
  doc["cllr"] = Json(d.cllr);
  doc["min_cllr"] = Json(d.min_cllr);
  doc["accuracy"] = Json(d.accuracy);

  Json adoption = Json::object();
  adoption["adopted"] = Json(d.adopted);
  adoption["correct"] = Json(d.adopted_correct);
  adoption["flips"] = Json(d.flips);
  adoption["precision"] = Json(d.adoption_precision);
  adoption["recall"] = Json(d.adoption_recall);
  Json rounds = Json::array();
  for (const AdoptionRoundDiag& r : d.rounds) {
    Json row = Json::object();
    row["round"] = Json(r.round);
    row["mode"] = Json(r.mode);
    row["adopted"] = Json(r.adopted);
    row["correct"] = Json(r.correct);
    row["flips"] = Json(r.flips);
    row["precision"] = Json(r.precision);
    row["recall"] = Json(r.recall);
    rounds.push_back(std::move(row));
  }
  adoption["rounds"] = std::move(rounds);
  doc["adoption"] = std::move(adoption);

  Json languages = Json::array();
  for (const LanguageDiag& lang : d.languages) {
    Json row = Json::object();
    row["language"] = Json(lang.language);
    row["trials"] = Json(lang.trials);
    row["correct"] = Json(lang.correct);
    row["accuracy"] = Json(lang.accuracy);
    row["eer"] = Json(lang.eer);
    row["cllr"] = Json(lang.cllr);
    languages.push_back(std::move(row));
  }
  doc["languages"] = std::move(languages);

  Json confusion = Json::array();
  for (std::size_t t = 0; t < d.num_classes; ++t) {
    Json row = Json::array();
    for (std::size_t p = 0; p < d.num_classes; ++p) {
      row.push_back(Json(d.confusion[t * d.num_classes + p]));
    }
    confusion.push_back(std::move(row));
  }
  doc["confusion"] = std::move(confusion);

  Json hist = Json::object();
  Json edges = Json::array();
  for (double e : d.histogram.edges) edges.push_back(Json(e));
  Json targets = Json::array();
  for (std::uint64_t c : d.histogram.target_counts) targets.push_back(Json(c));
  Json nontargets = Json::array();
  for (std::uint64_t c : d.histogram.nontarget_counts) {
    nontargets.push_back(Json(c));
  }
  hist["edges"] = std::move(edges);
  hist["target_counts"] = std::move(targets);
  hist["nontarget_counts"] = std::move(nontargets);
  doc["histogram"] = std::move(hist);

  Json det = Json::array();
  for (const DetPoint& p : d.det) {
    Json row = Json::object();
    row["p_fa"] = Json(p.p_fa);
    row["p_miss"] = Json(p.p_miss);
    det.push_back(std::move(row));
  }
  doc["det"] = std::move(det);
  return doc;
}

std::string format_diagnostics(const DiagnosticsResult& d) {
  std::ostringstream out;
  out << "quality diagnostics over " << d.num_utts << " utterances, "
      << d.num_classes << " languages, " << d.num_subsystems
      << " subsystems"
      << (d.calibrated ? "" : " (baseline scores: no fused LLRs in ledger)")
      << "\n";
  out << "  pooled: EER " << format_double(d.eer * 100.0) << "%  Cavg "
      << format_double(d.cavg * 100.0) << "%  Cllr "
      << format_double(d.cllr) << "  minCllr " << format_double(d.min_cllr)
      << "  accuracy " << format_double(d.accuracy * 100.0) << "%\n";
  out << "  adoption: " << d.adopted_correct << "/" << d.adopted
      << " correct (precision " << format_double(d.adoption_precision)
      << ", recall " << format_double(d.adoption_recall) << "), " << d.flips
      << " label flips\n";
  for (const AdoptionRoundDiag& r : d.rounds) {
    out << "    round " << r.round << " [" << r.mode << "]: adopted "
        << r.adopted << " (" << r.correct << " correct, precision "
        << format_double(r.precision) << ", recall "
        << format_double(r.recall) << ", flips " << r.flips << ")\n";
  }
  out << "  per-language:\n";
  for (const LanguageDiag& lang : d.languages) {
    out << "    " << lang.language << ": " << lang.correct << "/"
        << lang.trials << " correct (accuracy "
        << format_double(lang.accuracy * 100.0) << "%), EER "
        << format_double(lang.eer * 100.0) << "%, Cllr "
        << format_double(lang.cllr) << "\n";
  }
  out << "  confusion (rows = true, cols = predicted):\n";
  for (std::size_t t = 0; t < d.num_classes; ++t) {
    out << "    " << d.languages[t].language << ":";
    for (std::size_t p = 0; p < d.num_classes; ++p) {
      out << ' ' << d.confusion[t * d.num_classes + p];
    }
    out << "\n";
  }
  return out.str();
}

void publish_quality_gauges(const DiagnosticsResult& d) {
  obs::Metrics::float_gauge("quality.eer").set(d.eer);
  obs::Metrics::float_gauge("quality.cavg").set(d.cavg);
  obs::Metrics::float_gauge("quality.cllr").set(d.cllr);
  obs::Metrics::float_gauge("quality.min_cllr").set(d.min_cllr);
  obs::Metrics::float_gauge("quality.accuracy").set(d.accuracy);
  obs::Metrics::float_gauge("quality.adoption_precision")
      .set(d.adoption_precision);
  obs::Metrics::float_gauge("quality.adoption_recall").set(d.adoption_recall);
  for (const LanguageDiag& lang : d.languages) {
    obs::Metrics::float_gauge("quality.lang." + lang.language + ".eer")
        .set(lang.eer);
    obs::Metrics::float_gauge("quality.lang." + lang.language + ".cllr")
        .set(lang.cllr);
    obs::Metrics::float_gauge("quality.lang." + lang.language + ".accuracy")
        .set(lang.accuracy);
  }
}

}  // namespace phonolid::eval
