// Quality diagnostics derived from a decision ledger.
//
// compute_diagnostics() turns an obs::DecisionLedger into the numbers a
// regression gate can act on: pooled EER / Cavg / Cllr / min-Cllr over the
// final fused LLRs, a DET staircase, a per-language confusion matrix with
// one-vs-rest EER + Cllr per language, pooled score histograms, and
// per-DBA-round adoption precision / recall / flip counts.  The JSON
// rendering (diagnostics_json) is the versioned "quality" report section;
// report-diff gates on its leaves (--max-cllr-delta,
// --max-adoption-precision-drop) and the per-language leaves are also
// published as float gauges for the Prometheus exporter.
//
// When a ledger has no fused LLRs (the run never evaluated a fusion) the
// per-utterance score falls back to the mean of the baseline subsystem
// scores, so diagnostics stay defined for vote-only runs; `calibrated`
// records which source was used.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "obs/json.h"
#include "obs/ledger.h"

namespace phonolid::eval {

/// Version of the "quality" report section schema.
inline constexpr int kQualityVersion = 1;

/// Adoption outcome of one DBA round, aggregated over all utterances.
struct AdoptionRoundDiag {
  std::uint32_t round = 0;
  std::string mode;  // "DBA-M1" / "DBA-M2"
  std::uint64_t adopted = 0;
  std::uint64_t correct = 0;  // adopted with hyp == true label
  std::uint64_t flips = 0;    // hyp label changed vs. an earlier adoption
  double precision = 1.0;     // correct / adopted; 1.0 when nothing adopted
  double recall = 0.0;        // correct / total utterances
};

/// One-vs-rest detection quality for a single language.
struct LanguageDiag {
  std::string language;
  std::uint64_t trials = 0;   // utterances whose true label is this language
  std::uint64_t correct = 0;  // of those, arg-max picked this language
  double accuracy = 0.0;
  double eer = 0.0;
  double cllr = 0.0;
};

/// Pooled score histogram with fixed, deterministic edges.
struct ScoreHistogram {
  std::vector<double> edges;  // bucket i covers (edges[i-1], edges[i]]
  std::vector<std::uint64_t> target_counts;     // edges.size() + 1 buckets
  std::vector<std::uint64_t> nontarget_counts;  // (underflow ... overflow)
};

struct DiagnosticsResult {
  std::uint64_t num_utts = 0;
  std::uint32_t num_classes = 0;
  std::uint32_t num_subsystems = 0;
  bool calibrated = false;  // scores were fused LLRs (vs. baseline fallback)

  // Pooled detection quality over the per-utterance score matrix.
  double eer = 0.0;
  double cavg = 0.0;
  double cllr = 0.0;
  double min_cllr = 0.0;
  double accuracy = 0.0;  // arg-max identification accuracy

  /// confusion[t * num_classes + p]: true label t predicted as p.
  std::vector<std::uint64_t> confusion;
  std::vector<LanguageDiag> languages;
  std::vector<AdoptionRoundDiag> rounds;

  // Overall adoption quality across every round.
  std::uint64_t adopted = 0;
  std::uint64_t adopted_correct = 0;
  std::uint64_t flips = 0;
  double adoption_precision = 1.0;
  double adoption_recall = 0.0;

  ScoreHistogram histogram;
  std::vector<DetPoint> det;  // thinned staircase, ready for plotting
};

/// Derive diagnostics from a ledger.  Deterministic: same ledger bytes ->
/// same result.  Throws std::invalid_argument on an empty ledger.
DiagnosticsResult compute_diagnostics(const obs::DecisionLedger& ledger);

/// The versioned "quality" report section.
obs::Json diagnostics_json(const DiagnosticsResult& d);

/// Human rendering for `phonolid diag`.
std::string format_diagnostics(const DiagnosticsResult& d);

/// Publish the scalar + per-language leaves as obs float gauges
/// ("quality.cllr", "quality.lang.<name>.eer", ...) so the Prometheus
/// exporter picks them up.
void publish_quality_gauges(const DiagnosticsResult& d);

}  // namespace phonolid::eval
