// Language-recognition metrics: pooled EER, NIST LRE Cavg, DET curves.
//
// Trials follow the LRE convention: every (utterance, target language)
// pair is a detection trial; the pair is a *target* trial when the
// utterance is in that language.  EER is computed on the pooled trial set,
// Cavg with the LRE09 cost model (C_miss = C_fa = 1, P_target = 0.5) at
// the Bayes threshold for log-likelihood-ratio scores.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/matrix.h"

namespace phonolid::eval {

/// A pooled detection trial set.
struct TrialSet {
  std::vector<double> target_scores;
  std::vector<double> nontarget_scores;

  /// Build from a score matrix (rows = utterances, cols = languages) and
  /// per-utterance true labels.
  static TrialSet from_scores(const util::Matrix& scores,
                              std::span<const std::int32_t> labels);
};

/// Equal error rate in [0, 1]; linear interpolation between the ROC points
/// bracketing P_miss = P_fa.  Returns 0 for empty target or nontarget sets.
double equal_error_rate(const TrialSet& trials);

struct DetPoint {
  double p_fa = 0.0;
  double p_miss = 0.0;
};

/// Full DET staircase (one point per distinct threshold), sorted by
/// increasing P_fa.  Suitable for probit-probit plotting.
std::vector<DetPoint> det_curve(const TrialSet& trials);

/// Downsample a DET curve to ~`max_points` for printing.
std::vector<DetPoint> thin_det_curve(const std::vector<DetPoint>& curve,
                                     std::size_t max_points);

/// Convert per-class log-posterior scores to detection log-likelihood
/// ratios: llr_k = log p(x|k) - log( mean_{j != k} p(x|j) ).
util::Matrix log_posteriors_to_llr(const util::Matrix& log_posteriors);

/// NIST LRE09-style average detection cost (%/100 scale like EER) over
/// LLR scores at the Bayes threshold (0 for flat priors):
///   Cavg = (1/K) Σ_k [ P_t · P_miss(k) + (1-P_t)/(K-1) Σ_{j≠k} P_fa(k, j) ].
double cavg(const util::Matrix& llr_scores,
            std::span<const std::int32_t> labels, std::size_t num_classes,
            double p_target = 0.5, double threshold = 0.0);

/// Utterance-level identification accuracy (arg-max decision).
double identification_accuracy(const util::Matrix& scores,
                               std::span<const std::int32_t> labels);

/// Log-likelihood-ratio cost (Brümmer's Cllr, bits/trial):
///   Cllr = 1/(2 N_t) Σ_t log2(1 + e^-s) + 1/(2 N_n) Σ_n log2(1 + e^s).
/// 0 for perfectly calibrated, perfectly separating scores; 1 for a system
/// whose LLRs carry no information (s = 0 everywhere); > 1 indicates
/// actively miscalibrated scores.  Returns 0 for empty target or nontarget
/// sets.
double cllr(const TrialSet& trials);

/// Discrimination-only Cllr: scores are first optimally recalibrated with
/// the PAV algorithm (isotonic fit of the target posterior in score order,
/// converted back to LLRs at the trial-set prior odds), then scored with
/// cllr().  min_cllr(t) <= cllr(t) up to rounding; the gap is the
/// calibration loss of the backend.  Returns 0 for empty sets.
double min_cllr(const TrialSet& trials);

}  // namespace phonolid::eval
