#include "dsp/streaming_features.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace phonolid::dsp {

StreamingFeatures::StreamingFeatures(const FeaturePipeline& pipeline)
    : pipeline_(pipeline) {
  const auto& cfg = pipeline.config();
  const bool mfcc = cfg.kind == FeatureKind::kMfcc;
  base_dim_ = mfcc ? cfg.mfcc.num_ceps : cfg.plp.num_ceps;
  frame_length_ = mfcc ? cfg.mfcc.frame_length : cfg.plp.frame_length;
  frame_shift_ = mfcc ? cfg.mfcc.frame_shift : cfg.plp.frame_shift;
  pre_emph_ = mfcc ? cfg.mfcc.pre_emph : cfg.plp.pre_emph;
  if (mfcc) {
    mfcc_ws_ = pipeline.mfcc()->make_workspace();
  } else {
    plp_ws_ = pipeline.plp()->make_workspace();
  }
  deltas_on_ = cfg.deltas;
  if (deltas_on_) {
    delta_window_ = static_cast<std::ptrdiff_t>(cfg.delta_window);
    dim_ = base_dim_ * 3;
    ring_rows_ = 2 * cfg.delta_window + 1;
    statics_ring_.resize(ring_rows_ * base_dim_);
    deltas_ring_.resize(ring_rows_ * base_dim_);
    delta_tmp_.resize(base_dim_);
    ddelta_tmp_.resize(base_dim_);
    // Same normaliser arithmetic as add_deltas (double sum, float inverse).
    double denom = 0.0;
    for (std::ptrdiff_t k = 1; k <= delta_window_; ++k) {
      denom += 2.0 * static_cast<double>(k * k);
    }
    inv_denom_ = static_cast<float>(1.0 / denom);
  } else {
    dim_ = base_dim_;
  }
  static_tmp_.resize(base_dim_);
}

void StreamingFeatures::push(std::span<const float> samples) {
  if (finished_) {
    throw std::logic_error("StreamingFeatures: push() after finish()");
  }
  if (samples.empty()) return;
  // Streaming pre-emphasis: identical to pre_emphasis() on the whole signal
  // (y[0] = x[0]*(1-c), then y[i] = x[i] - c*x[i-1] with a one-sample carry
  // across chunk boundaries).
  const std::size_t old = buf_.size();
  buf_.resize(old + samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const float v = samples[i];
    float e;
    if (!have_prev_sample_) {
      e = v * (1.0f - pre_emph_);
      have_prev_sample_ = true;
    } else {
      e = v - pre_emph_ * prev_raw_sample_;
    }
    prev_raw_sample_ = v;
    buf_[old + i] = e;
  }
  total_samples_ += samples.size();
  extract_ready_frames();
}

void StreamingFeatures::extract_ready_frames() {
  const bool mfcc = pipeline_.config().kind == FeatureKind::kMfcc;
  while (next_frame_ * frame_shift_ + frame_length_ <= total_samples_) {
    const std::size_t offset = next_frame_ * frame_shift_ - buf_start_;
    const std::span<const float> frame(buf_.data() + offset, frame_length_);
    if (mfcc) {
      pipeline_.mfcc()->extract_frame(frame, mfcc_ws_, static_tmp_);
    } else {
      pipeline_.plp()->extract_frame(frame, plp_ws_, static_tmp_);
    }
    ++next_frame_;
    on_static_row(static_tmp_);
  }
  // Drop samples no future frame can touch; the buffer stays bounded by
  // frame_length + the largest chunk ever pushed.
  const std::size_t keep_from =
      std::min(next_frame_ * frame_shift_, total_samples_);
  if (keep_from > buf_start_) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(keep_from - buf_start_));
    buf_start_ = keep_from;
  }
}

void StreamingFeatures::on_static_row(std::span<const float> statics) {
  if (!deltas_on_) {
    out_.insert(out_.end(), statics.begin(), statics.end());
    ++statics_done_;
    ++rows_done_;
    return;
  }
  const auto slot = ring_slot(statics_ring_, statics_done_);
  std::copy(statics.begin(), statics.end(), slot.begin());
  ++statics_done_;
  // Cascade immediately per static row so each ring only ever needs its
  // 2*delta_window + 1 most recent rows.
  cascade(/*flush=*/false);
}

void StreamingFeatures::regress(const std::vector<float>& ring, std::size_t t,
                                std::size_t last, std::span<float> out) const {
  // Element-for-element the same operation sequence as add_deltas'
  // compute_delta (k ascending, float accumulate, one final multiply), so
  // streamed rows are bit-identical to the batch matrix.
  for (std::size_t d = 0; d < base_dim_; ++d) out[d] = 0.0f;
  for (std::ptrdiff_t k = 1; k <= delta_window_; ++k) {
    const auto tt = static_cast<std::ptrdiff_t>(t);
    const std::size_t fwd = static_cast<std::size_t>(
        std::min(tt + k, static_cast<std::ptrdiff_t>(last)));
    const std::size_t bwd =
        static_cast<std::size_t>(std::max(tt - k, std::ptrdiff_t{0}));
    const auto f = ring_row(ring, fwd);
    const auto b = ring_row(ring, bwd);
    const float fk = static_cast<float>(k);
    for (std::size_t d = 0; d < base_dim_; ++d) {
      out[d] += fk * (f[d] - b[d]);
    }
  }
  for (std::size_t d = 0; d < base_dim_; ++d) out[d] *= inv_denom_;
}

void StreamingFeatures::emit_full_row(std::size_t u, std::size_t last) {
  regress(deltas_ring_, u, last, ddelta_tmp_);
  const auto statics = ring_row(statics_ring_, u);
  const auto deltas = ring_row(deltas_ring_, u);
  out_.insert(out_.end(), statics.begin(), statics.end());
  out_.insert(out_.end(), deltas.begin(), deltas.end());
  out_.insert(out_.end(), ddelta_tmp_.begin(), ddelta_tmp_.end());
  ++rows_done_;
}

void StreamingFeatures::cascade(bool flush) {
  if (!deltas_on_) return;
  const std::size_t w = static_cast<std::size_t>(delta_window_);
  // Deltas: frame t is computable once static t+w exists (no forward clamp
  // fires before then); at flush the remaining tail clamps at the now-known
  // last frame, exactly like the batch edge handling.
  while (deltas_done_ < statics_done_ &&
         (flush || deltas_done_ + w < statics_done_)) {
    const std::size_t t = deltas_done_;
    regress(statics_ring_, t, statics_done_ - 1, delta_tmp_);
    const auto slot = ring_slot(deltas_ring_, t);
    std::copy(delta_tmp_.begin(), delta_tmp_.end(), slot.begin());
    ++deltas_done_;
    // Delta-deltas ride the same rule one level down.
    while (rows_done_ + w < deltas_done_) {
      emit_full_row(rows_done_, deltas_done_ - 1);
    }
  }
  if (flush) {
    while (rows_done_ < deltas_done_) {
      emit_full_row(rows_done_, deltas_done_ - 1);
    }
  }
}

void StreamingFeatures::finish() {
  if (finished_) return;
  cascade(/*flush=*/true);
  buf_.clear();
  buf_.shrink_to_fit();
  finished_ = true;
}

util::Matrix StreamingFeatures::prefix(std::size_t end) const {
  assert(end <= rows_done_);
  util::Matrix m(end, dim_);
  std::copy(out_.begin(), out_.begin() + static_cast<std::ptrdiff_t>(end * dim_),
            m.data());
  return m;
}

util::Matrix StreamingFeatures::take() {
  if (!finished_) {
    throw std::logic_error("StreamingFeatures: take() before finish()");
  }
  util::Matrix m(rows_done_, dim_);
  std::copy(out_.begin(), out_.end(), m.data());
  return m;
}

}  // namespace phonolid::dsp
