#include "dsp/window.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace phonolid::dsp {

std::vector<float> make_window(WindowType type, std::size_t length) {
  std::vector<float> w(length, 1.0f);
  if (length <= 1) return w;
  const double denom = static_cast<double>(length - 1);
  switch (type) {
    case WindowType::kRectangular:
      break;
    case WindowType::kHamming:
      for (std::size_t i = 0; i < length; ++i) {
        w[i] = static_cast<float>(
            0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * static_cast<double>(i) / denom));
      }
      break;
    case WindowType::kHann:
      for (std::size_t i = 0; i < length; ++i) {
        w[i] = static_cast<float>(
            0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * static_cast<double>(i) / denom));
      }
      break;
  }
  return w;
}

void pre_emphasis(std::span<float> signal, float coeff) noexcept {
  if (signal.empty()) return;
  float prev = signal[0];
  signal[0] = signal[0] * (1.0f - coeff);
  for (std::size_t i = 1; i < signal.size(); ++i) {
    const float cur = signal[i];
    signal[i] = cur - coeff * prev;
    prev = cur;
  }
}

Framer::Framer(std::size_t frame_length, std::size_t frame_shift)
    : frame_length_(frame_length), frame_shift_(frame_shift) {
  if (frame_length == 0 || frame_shift == 0) {
    throw std::invalid_argument("frame length/shift must be positive");
  }
}

std::size_t Framer::num_frames(std::size_t num_samples) const noexcept {
  if (num_samples < frame_length_) return 0;
  return (num_samples - frame_length_) / frame_shift_ + 1;
}

void Framer::extract(std::span<const float> signal, std::size_t index,
                     std::span<const float> window, std::span<float> out) const {
  assert(out.size() == frame_length_);
  const std::size_t start = index * frame_shift_;
  assert(start + frame_length_ <= signal.size());
  if (window.empty()) {
    std::copy_n(signal.begin() + static_cast<std::ptrdiff_t>(start),
                frame_length_, out.begin());
  } else {
    assert(window.size() == frame_length_);
    for (std::size_t i = 0; i < frame_length_; ++i) {
      out[i] = signal[start + i] * window[i];
    }
  }
}

}  // namespace phonolid::dsp
