// Feature post-processing: delta/delta-delta appending, per-utterance
// cepstral mean/variance normalisation, and the FeaturePipeline that the
// acoustic front-ends consume (paper §4.1: "13-dimensional PLP features
// plus their first order and second order derivatives ... normalized to
// have zero mean and unit variance").
#pragma once

#include <memory>
#include <span>
#include <variant>

#include "dsp/mfcc.h"
#include "dsp/plp.h"
#include "util/matrix.h"

namespace phonolid::dsp {

/// Appends delta and delta-delta columns: D -> 3D.
/// Deltas use the standard regression formula with window `delta_window`.
[[nodiscard]] util::Matrix add_deltas(const util::Matrix& features,
                                      std::size_t delta_window = 2);

/// In-place cepstral mean subtraction (always) and variance normalisation
/// (if `normalize_variance`), computed per utterance over frames.
void cmvn_inplace(util::Matrix& features, bool normalize_variance = true);

enum class FeatureKind { kMfcc, kPlp };

struct FeaturePipelineConfig {
  FeatureKind kind = FeatureKind::kMfcc;
  MfccConfig mfcc;
  PlpConfig plp;
  bool deltas = true;
  std::size_t delta_window = 2;
  bool cmvn = true;
  bool cmvn_variance = true;
};

/// Raw signal -> normalised feature matrix (frames x dim).
class FeaturePipeline {
 public:
  explicit FeaturePipeline(const FeaturePipelineConfig& config = {});

  [[nodiscard]] std::size_t feature_dim() const noexcept;
  [[nodiscard]] const FeaturePipelineConfig& config() const noexcept {
    return config_;
  }

  /// Active extractor (exactly one is non-null, per config().kind).
  [[nodiscard]] const MfccExtractor* mfcc() const noexcept { return mfcc_.get(); }
  [[nodiscard]] const PlpExtractor* plp() const noexcept { return plp_.get(); }

  /// Software energy-model cost of one fully post-processed frame
  /// (extraction + deltas + CMVN terms); deterministic for a given config.
  [[nodiscard]] double flops_per_frame() const noexcept;

  /// Batch entry point: a single-chunk pass through the streaming extractor
  /// (dsp::StreamingFeatures) followed by per-utterance CMVN.
  [[nodiscard]] util::Matrix process(std::span<const float> signal) const;

 private:
  FeaturePipelineConfig config_;
  std::unique_ptr<MfccExtractor> mfcc_;
  std::unique_ptr<PlpExtractor> plp_;
};

}  // namespace phonolid::dsp
