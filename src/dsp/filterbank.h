// Mel / Bark filterbanks and DCT-II, the spectral-integration stage shared
// by the MFCC and PLP front-ends.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace phonolid::dsp {

double hz_to_mel(double hz) noexcept;
double mel_to_hz(double mel) noexcept;
double hz_to_bark(double hz) noexcept;

enum class FilterbankScale { kMel, kBark };

/// Triangular filterbank over FFT power-spectrum bins.
class Filterbank {
 public:
  /// `num_bins` = n_fft/2 + 1 power-spectrum bins; filters span
  /// [low_hz, high_hz] on the chosen perceptual scale.
  Filterbank(std::size_t num_filters, std::size_t num_bins, double sample_rate,
             double low_hz, double high_hz,
             FilterbankScale scale = FilterbankScale::kMel);

  [[nodiscard]] std::size_t num_filters() const noexcept { return num_filters_; }
  [[nodiscard]] std::size_t num_bins() const noexcept { return num_bins_; }

  /// out[f] = sum_b weight[f][b] * power[b]
  void apply(std::span<const float> power, std::span<float> out) const;

  /// Filter weights for bin inspection / tests.
  [[nodiscard]] std::span<const float> filter(std::size_t f) const;

 private:
  std::size_t num_filters_;
  std::size_t num_bins_;
  // Dense (filters are narrow, but simplicity wins at these sizes).
  std::vector<float> weights_;  // num_filters x num_bins
};

/// Orthonormal DCT-II: c[k] = sqrt(2/N) * sum_n x[n] cos(pi k (2n+1) / 2N),
/// with c[0] scaled by 1/sqrt(2).
class Dct {
 public:
  Dct(std::size_t num_inputs, std::size_t num_outputs);
  void apply(std::span<const float> in, std::span<float> out) const;
  [[nodiscard]] std::size_t num_inputs() const noexcept { return num_inputs_; }
  [[nodiscard]] std::size_t num_outputs() const noexcept { return num_outputs_; }

 private:
  std::size_t num_inputs_;
  std::size_t num_outputs_;
  std::vector<float> table_;  // num_outputs x num_inputs
};

}  // namespace phonolid::dsp
