#include "dsp/plp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace phonolid::dsp {

double levinson_durbin(std::span<const double> autocorr, std::span<double> lpc) {
  const std::size_t order = lpc.size();
  assert(autocorr.size() >= order + 1);
  if (autocorr[0] <= 0.0) {
    throw std::invalid_argument("levinson_durbin: R[0] must be positive");
  }
  std::vector<double> a(order + 1, 0.0);  // a[0] unused convention: a[0]=1
  std::vector<double> tmp(order + 1, 0.0);
  double err = autocorr[0];
  for (std::size_t i = 1; i <= order; ++i) {
    double acc = autocorr[i];
    for (std::size_t j = 1; j < i; ++j) acc -= a[j] * autocorr[i - j];
    const double k = acc / err;
    std::copy(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(i), tmp.begin());
    a[i] = k;
    for (std::size_t j = 1; j < i; ++j) a[j] = tmp[j] - k * tmp[i - j];
    err *= (1.0 - k * k);
    if (err <= 0.0) {
      // Degenerate (perfectly predictable) signal; floor the error so the
      // caller still gets a usable gain term.
      err = 1e-12;
    }
  }
  for (std::size_t j = 0; j < order; ++j) lpc[j] = a[j + 1];
  return err;
}

void lpc_to_cepstrum(std::span<const double> lpc, double gain2,
                     std::span<double> cepstrum) {
  const std::size_t order = lpc.size();
  const std::size_t num_ceps = cepstrum.size();
  if (num_ceps == 0) return;
  cepstrum[0] = std::log(std::max(gain2, 1e-300));
  for (std::size_t n = 1; n < num_ceps; ++n) {
    // c_n = a_n + sum_{k=1}^{n-1} (k/n) c_k a_{n-k}; a_m = 0 for m > order.
    double c = (n <= order) ? lpc[n - 1] : 0.0;
    for (std::size_t k = 1; k < n; ++k) {
      const std::size_t m = n - k;
      if (m <= order) {
        c += (static_cast<double>(k) / static_cast<double>(n)) * cepstrum[k] *
             lpc[m - 1];
      }
    }
    cepstrum[n] = c;
  }
}

PlpExtractor::PlpExtractor(const PlpConfig& config)
    : config_(config),
      framer_(config.frame_length, config.frame_shift),
      window_(make_window(config.window, config.frame_length)),
      fft_(config.n_fft),
      filterbank_(config.num_filters, config.n_fft / 2 + 1, config.sample_rate,
                  config.low_hz, config.high_hz, FilterbankScale::kBark) {
  if (config.frame_length > config.n_fft) {
    throw std::invalid_argument("frame_length must be <= n_fft");
  }
  if (config.num_ceps > config.lpc_order + 1 && config.num_ceps > 64) {
    throw std::invalid_argument("num_ceps unreasonably large");
  }
  // Equal-loudness curve sampled at the band centre frequencies
  // (approximate 40-phon curve, Hermansky eq. 4).
  equal_loudness_.resize(config.num_filters);
  const double lo = hz_to_bark(config.low_hz);
  const double hi = hz_to_bark(config.high_hz);
  for (std::size_t f = 0; f < config.num_filters; ++f) {
    const double bark = lo + (hi - lo) * static_cast<double>(f + 1) /
                                 static_cast<double>(config.num_filters + 1);
    // Invert Traunmüller to get Hz back for the loudness formula.
    const double hz = 1960.0 * (bark + 0.53) / (26.28 - bark);
    const double w2 = hz * hz;
    const double el = (w2 / (w2 + 1.6e5)) * (w2 / (w2 + 1.6e5)) *
                      ((w2 + 1.44e6) / (w2 + 9.61e6));
    equal_loudness_[f] = el;
  }
}

PlpExtractor::Workspace PlpExtractor::make_workspace() const {
  Workspace ws;
  ws.frame.assign(config_.n_fft, 0.0f);
  ws.power.resize(config_.n_fft / 2 + 1);
  ws.bands.resize(config_.num_filters);
  ws.fft.resize(config_.n_fft);
  ws.loud.resize(config_.num_filters);
  ws.autocorr.resize(config_.lpc_order + 1);
  ws.lpc.resize(config_.lpc_order);
  ws.ceps.resize(config_.num_ceps);
  return ws;
}

void PlpExtractor::extract_frame(std::span<const float> samples, Workspace& ws,
                                 std::span<float> out) const {
  assert(samples.size() == config_.frame_length);
  const std::size_t nb = config_.num_filters;
  std::fill(ws.frame.begin(), ws.frame.end(), 0.0f);
  for (std::size_t i = 0; i < config_.frame_length; ++i) {
    ws.frame[i] = samples[i] * window_[i];
  }
  fft_.power_spectrum(ws.frame, ws.power, ws.fft);
  filterbank_.apply(ws.power, ws.bands);
  for (std::size_t f = 0; f < nb; ++f) {
    const double compressed = std::pow(
        std::max(static_cast<double>(ws.bands[f]), 1e-10) * equal_loudness_[f],
        config_.compress_power);
    ws.loud[f] = compressed;
  }
  // Inverse DFT of the (symmetric) loudness spectrum gives autocorrelation
  // of the perceptually warped signal.  Treat bands as samples of an even
  // spectrum at angles pi*(f+0.5)/nb.
  for (std::size_t lag = 0; lag <= config_.lpc_order; ++lag) {
    double acc = 0.0;
    for (std::size_t f = 0; f < nb; ++f) {
      const double angle = std::numbers::pi * (static_cast<double>(f) + 0.5) *
                           static_cast<double>(lag) / static_cast<double>(nb);
      acc += ws.loud[f] * std::cos(angle);
    }
    ws.autocorr[lag] = acc / static_cast<double>(nb);
  }
  if (ws.autocorr[0] <= 0.0) ws.autocorr[0] = 1e-10;
  const double gain2 = levinson_durbin(ws.autocorr, ws.lpc);
  lpc_to_cepstrum(ws.lpc, gain2, ws.ceps);
  for (std::size_t k = 0; k < config_.num_ceps; ++k) {
    out[k] = static_cast<float>(ws.ceps[k]);
  }
}

util::Matrix PlpExtractor::extract(std::span<const float> signal) const {
  std::vector<float> emphasized(signal.begin(), signal.end());
  pre_emphasis(emphasized, config_.pre_emph);

  const std::size_t frames = framer_.num_frames(emphasized.size());
  util::Matrix features(frames, config_.num_ceps);

  Workspace ws = make_workspace();
  for (std::size_t t = 0; t < frames; ++t) {
    extract_frame(std::span<const float>(emphasized)
                      .subspan(t * config_.frame_shift, config_.frame_length),
                  ws, features.row(t));
  }
  return features;
}

}  // namespace phonolid::dsp
