// Incremental front-end feature extraction for streaming sessions.
//
// StreamingFeatures accepts raw audio in arbitrary chunks and emits
// *pre-CMVN* feature rows (statics [+ deltas + delta-deltas]) exactly as the
// batch FeaturePipeline would compute them — bit-identical, because the
// per-frame arithmetic (pre-emphasis carry, windowing, FFT, cepstra, delta
// regression order) is shared with the batch path and applied in the same
// order.  Per-utterance CMVN is deliberately *not* applied here: it depends
// on whole-utterance statistics, so normalisation belongs to whoever ends
// the utterance (core::StreamingSession at finalize, FeaturePipeline at the
// end of process()).
//
// Internal state is bounded by the lookahead, not the utterance:
//   - an emphasized-sample buffer holding at most one frame plus one chunk
//     (consumed samples are dropped as frames complete),
//   - delta/delta-delta regression rings of 2*delta_window + 1 rows each
//     (a row is emitted once its +delta_window lookahead exists; the tail
//     is flushed with batch-identical edge clamping at finish()).
// The emitted rows themselves accumulate here because every downstream
// consumer (CMVN, decoder lattice) is per-utterance O(T) anyway.
//
// All scratch (FFT transform buffers, filterbank outputs, rings) is owned
// by the object: one StreamingFeatures per session, no thread_local, so
// sessions are independently usable from any mix of threads.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/features.h"
#include "util/matrix.h"

namespace phonolid::dsp {

class StreamingFeatures {
 public:
  /// `pipeline` must outlive the session (it owns the immutable extractor
  /// tables; this object owns all mutable state).
  explicit StreamingFeatures(const FeaturePipeline& pipeline);

  /// Feed the next chunk of raw samples; completes and emits any feature
  /// rows whose lookahead is now available.  Throws std::logic_error after
  /// finish().
  void push(std::span<const float> samples);

  /// Flush the delta lookahead tail with end-of-utterance clamping.  No
  /// further push() is accepted.  Idempotent.
  void finish();

  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] std::size_t samples_pushed() const noexcept {
    return total_samples_;
  }

  /// Emitted (pre-CMVN) rows so far, in frame order.
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_done_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::span<const float> row(std::size_t t) const {
    return {out_.data() + t * dim_, dim_};
  }

  /// Copy of rows [0, end) — the pre-CMVN feature prefix (checkpoints).
  [[nodiscard]] util::Matrix prefix(std::size_t end) const;

  /// All emitted rows as a matrix; requires finish() first.
  [[nodiscard]] util::Matrix take();

 private:
  void extract_ready_frames();
  void cascade(bool flush);
  void on_static_row(std::span<const float> statics);
  void regress(const std::vector<float>& ring, std::size_t t, std::size_t last,
               std::span<float> out) const;
  void emit_full_row(std::size_t u, std::size_t last);
  [[nodiscard]] std::span<const float> ring_row(const std::vector<float>& ring,
                                                std::size_t index) const {
    return {ring.data() + (index % ring_rows_) * base_dim_, base_dim_};
  }
  [[nodiscard]] std::span<float> ring_slot(std::vector<float>& ring,
                                           std::size_t index) {
    return {ring.data() + (index % ring_rows_) * base_dim_, base_dim_};
  }

  const FeaturePipeline& pipeline_;
  std::size_t base_dim_ = 0;   // cepstra per frame
  std::size_t dim_ = 0;        // emitted row width (3x with deltas)
  bool deltas_on_ = false;
  std::size_t frame_length_ = 0;
  std::size_t frame_shift_ = 0;
  std::ptrdiff_t delta_window_ = 0;  // 0 = deltas disabled
  float pre_emph_ = 0.0f;
  float inv_denom_ = 0.0f;     // delta regression normaliser

  // Extractor scratch (exactly one of the two is active).
  MfccExtractor::Workspace mfcc_ws_;
  PlpExtractor::Workspace plp_ws_;

  // Pre-emphasis carry + bounded sample buffer.
  bool have_prev_sample_ = false;
  float prev_raw_sample_ = 0.0f;
  std::vector<float> buf_;        // emphasized, starting at buf_start_
  std::size_t buf_start_ = 0;     // global index of buf_[0]
  std::size_t total_samples_ = 0;
  std::size_t next_frame_ = 0;

  // Delta cascade state.
  std::size_t ring_rows_ = 1;     // 2*delta_window + 1
  std::vector<float> statics_ring_;
  std::vector<float> deltas_ring_;
  std::vector<float> static_tmp_;
  std::vector<float> delta_tmp_;
  std::vector<float> ddelta_tmp_;
  std::size_t statics_done_ = 0;
  std::size_t deltas_done_ = 0;
  std::size_t rows_done_ = 0;     // == ddeltas done when deltas are on

  std::vector<float> out_;        // rows_done_ x dim_, row-major
  bool finished_ = false;
};

}  // namespace phonolid::dsp
