// MFCC front-end (paper §4.1: one of the acoustic feature choices that
// diversifies the parallel phone recognizers).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "dsp/fft.h"
#include "dsp/filterbank.h"
#include "dsp/window.h"
#include "util/matrix.h"

namespace phonolid::dsp {

struct MfccConfig {
  double sample_rate = 8000.0;
  std::size_t frame_length = 200;   // 25 ms @ 8 kHz
  std::size_t frame_shift = 80;     // 10 ms @ 8 kHz
  std::size_t n_fft = 256;
  std::size_t num_filters = 23;
  std::size_t num_ceps = 13;        // including c0
  double low_hz = 100.0;
  double high_hz = 3800.0;
  float pre_emph = 0.97f;
  WindowType window = WindowType::kHamming;
  float log_floor = 1e-10f;
};

class MfccExtractor {
 public:
  explicit MfccExtractor(const MfccConfig& config = {});

  [[nodiscard]] const MfccConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t feature_dim() const noexcept { return config_.num_ceps; }

  /// Extracts one feature row per frame; returns num_frames x num_ceps.
  [[nodiscard]] util::Matrix extract(std::span<const float> signal) const;

 private:
  MfccConfig config_;
  Framer framer_;
  std::vector<float> window_;
  Fft fft_;
  Filterbank filterbank_;
  Dct dct_;
};

}  // namespace phonolid::dsp
