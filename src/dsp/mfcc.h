// MFCC front-end (paper §4.1: one of the acoustic feature choices that
// diversifies the parallel phone recognizers).
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "dsp/fft.h"
#include "dsp/filterbank.h"
#include "dsp/window.h"
#include "util/matrix.h"

namespace phonolid::dsp {

struct MfccConfig {
  double sample_rate = 8000.0;
  std::size_t frame_length = 200;   // 25 ms @ 8 kHz
  std::size_t frame_shift = 80;     // 10 ms @ 8 kHz
  std::size_t n_fft = 256;
  std::size_t num_filters = 23;
  std::size_t num_ceps = 13;        // including c0
  double low_hz = 100.0;
  double high_hz = 3800.0;
  float pre_emph = 0.97f;
  WindowType window = WindowType::kHamming;
  float log_floor = 1e-10f;
};

class MfccExtractor {
 public:
  /// Per-call working memory.  The extractor itself is immutable and shared
  /// across threads and streaming sessions; each caller owns one Workspace,
  /// so concurrent extraction (even two sessions on one thread) never
  /// touches shared or thread-local scratch.
  struct Workspace {
    std::vector<float> frame;                 // n_fft, zero-padded
    std::vector<float> power;                 // n_fft/2 + 1
    std::vector<float> fbank;                 // num_filters
    std::vector<std::complex<float>> fft;     // n_fft transform scratch
  };

  explicit MfccExtractor(const MfccConfig& config = {});

  [[nodiscard]] const MfccConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t feature_dim() const noexcept { return config_.num_ceps; }

  [[nodiscard]] Workspace make_workspace() const;

  /// One frame of *pre-emphasized* samples (size frame_length, window not
  /// yet applied) -> one cepstral row (size num_ceps).
  void extract_frame(std::span<const float> samples, Workspace& ws,
                     std::span<float> out) const;

  /// Extracts one feature row per frame; returns num_frames x num_ceps.
  /// Implemented as a loop over extract_frame, so batch and streaming share
  /// one per-frame code path.
  [[nodiscard]] util::Matrix extract(std::span<const float> signal) const;

 private:
  MfccConfig config_;
  Framer framer_;
  std::vector<float> window_;
  Fft fft_;
  Filterbank filterbank_;
  Dct dct_;
};

}  // namespace phonolid::dsp
