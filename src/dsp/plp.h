// PLP-style front-end (perceptual linear prediction, Hermansky 1990).
//
// Power spectrum -> Bark-scaled critical-band integration -> equal-loudness
// pre-emphasis -> intensity-loudness (cube-root) compression -> inverse DFT
// to autocorrelation -> Levinson-Durbin LPC -> cepstral recursion.
// This is the paper's "PLP feature" diversification axis (§4.1(b): 13-dim
// PLP plus deltas feeding the DNN front-end).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "dsp/fft.h"
#include "dsp/filterbank.h"
#include "dsp/window.h"
#include "util/matrix.h"

namespace phonolid::dsp {

/// Solves Toeplitz normal equations R a = r via Levinson-Durbin.
/// `autocorr` holds R[0..order]; outputs LPC coefficients a[1..order] into
/// `lpc` (size order) and returns the prediction error (gain^2).
/// R[0] must be > 0.
double levinson_durbin(std::span<const double> autocorr, std::span<double> lpc);

/// Converts LPC coefficients (+ gain) to `num_ceps` cepstra via the standard
/// recursion; c[0] = ln(gain^2).
void lpc_to_cepstrum(std::span<const double> lpc, double gain2,
                     std::span<double> cepstrum);

struct PlpConfig {
  double sample_rate = 8000.0;
  std::size_t frame_length = 200;
  std::size_t frame_shift = 80;
  std::size_t n_fft = 256;
  std::size_t num_filters = 21;   // critical bands
  std::size_t lpc_order = 12;
  std::size_t num_ceps = 13;      // c0..c12
  double low_hz = 100.0;
  double high_hz = 3800.0;
  float pre_emph = 0.97f;
  WindowType window = WindowType::kHamming;
  double compress_power = 1.0 / 3.0;  // intensity-loudness law
};

class PlpExtractor {
 public:
  /// Per-call working memory (see MfccExtractor::Workspace): the extractor
  /// is immutable and shared; every caller/session owns its own scratch.
  struct Workspace {
    std::vector<float> frame;                 // n_fft, zero-padded
    std::vector<float> power;                 // n_fft/2 + 1
    std::vector<float> bands;                 // num_filters
    std::vector<std::complex<float>> fft;     // n_fft transform scratch
    std::vector<double> loud;                 // num_filters
    std::vector<double> autocorr;             // lpc_order + 1
    std::vector<double> lpc;                  // lpc_order
    std::vector<double> ceps;                 // num_ceps
  };

  explicit PlpExtractor(const PlpConfig& config = {});

  [[nodiscard]] const PlpConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t feature_dim() const noexcept { return config_.num_ceps; }

  [[nodiscard]] Workspace make_workspace() const;

  /// One frame of *pre-emphasized* samples (size frame_length, window not
  /// yet applied) -> one cepstral row (size num_ceps).
  void extract_frame(std::span<const float> samples, Workspace& ws,
                     std::span<float> out) const;

  [[nodiscard]] util::Matrix extract(std::span<const float> signal) const;

 private:
  PlpConfig config_;
  Framer framer_;
  std::vector<float> window_;
  Fft fft_;
  Filterbank filterbank_;
  std::vector<double> equal_loudness_;  // per critical band
};

}  // namespace phonolid::dsp
