#include "dsp/filterbank.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace phonolid::dsp {

double hz_to_mel(double hz) noexcept {
  return 2595.0 * std::log10(1.0 + hz / 700.0);
}

double mel_to_hz(double mel) noexcept {
  return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

double hz_to_bark(double hz) noexcept {
  // Traunmüller (1990).
  return 26.81 * hz / (1960.0 + hz) - 0.53;
}

namespace {
double bark_to_hz(double bark) noexcept {
  return 1960.0 * (bark + 0.53) / (26.28 - bark);
}
}  // namespace

Filterbank::Filterbank(std::size_t num_filters, std::size_t num_bins,
                       double sample_rate, double low_hz, double high_hz,
                       FilterbankScale scale)
    : num_filters_(num_filters), num_bins_(num_bins) {
  if (num_filters == 0 || num_bins < 3) {
    throw std::invalid_argument("filterbank dimensions too small");
  }
  if (!(low_hz >= 0.0 && high_hz > low_hz && high_hz <= sample_rate / 2.0)) {
    throw std::invalid_argument("invalid filterbank frequency range");
  }
  const auto fwd = (scale == FilterbankScale::kMel) ? hz_to_mel : hz_to_bark;
  const auto inv = (scale == FilterbankScale::kMel) ? mel_to_hz : bark_to_hz;

  // num_filters + 2 equally spaced centre frequencies on the warped scale.
  const double lo = fwd(low_hz);
  const double hi = fwd(high_hz);
  std::vector<double> centers_hz(num_filters + 2);
  for (std::size_t i = 0; i < centers_hz.size(); ++i) {
    const double warped =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(num_filters + 1);
    centers_hz[i] = inv(warped);
  }

  const double bin_hz = sample_rate / (2.0 * static_cast<double>(num_bins - 1));
  weights_.assign(num_filters * num_bins, 0.0f);
  for (std::size_t f = 0; f < num_filters; ++f) {
    const double left = centers_hz[f];
    const double center = centers_hz[f + 1];
    const double right = centers_hz[f + 2];
    for (std::size_t b = 0; b < num_bins; ++b) {
      const double hz = static_cast<double>(b) * bin_hz;
      double w = 0.0;
      if (hz > left && hz < center) {
        w = (hz - left) / (center - left);
      } else if (hz >= center && hz < right) {
        w = (right - hz) / (right - center);
      }
      weights_[f * num_bins + b] = static_cast<float>(w);
    }
  }
}

void Filterbank::apply(std::span<const float> power, std::span<float> out) const {
  assert(power.size() == num_bins_ && out.size() == num_filters_);
  for (std::size_t f = 0; f < num_filters_; ++f) {
    const float* w = &weights_[f * num_bins_];
    float acc = 0.0f;
    for (std::size_t b = 0; b < num_bins_; ++b) acc += w[b] * power[b];
    out[f] = acc;
  }
}

std::span<const float> Filterbank::filter(std::size_t f) const {
  assert(f < num_filters_);
  return {weights_.data() + f * num_bins_, num_bins_};
}

Dct::Dct(std::size_t num_inputs, std::size_t num_outputs)
    : num_inputs_(num_inputs), num_outputs_(num_outputs) {
  if (num_inputs == 0 || num_outputs == 0 || num_outputs > num_inputs) {
    throw std::invalid_argument("invalid DCT dimensions");
  }
  table_.resize(num_outputs * num_inputs);
  const double scale = std::sqrt(2.0 / static_cast<double>(num_inputs));
  for (std::size_t k = 0; k < num_outputs; ++k) {
    const double row_scale = (k == 0) ? scale / std::sqrt(2.0) : scale;
    for (std::size_t n = 0; n < num_inputs; ++n) {
      table_[k * num_inputs + n] = static_cast<float>(
          row_scale * std::cos(std::numbers::pi * static_cast<double>(k) *
                               (2.0 * static_cast<double>(n) + 1.0) /
                               (2.0 * static_cast<double>(num_inputs))));
    }
  }
}

void Dct::apply(std::span<const float> in, std::span<float> out) const {
  assert(in.size() == num_inputs_ && out.size() == num_outputs_);
  for (std::size_t k = 0; k < num_outputs_; ++k) {
    const float* row = &table_[k * num_inputs_];
    float acc = 0.0f;
    for (std::size_t n = 0; n < num_inputs_; ++n) acc += row[n] * in[n];
    out[k] = acc;
  }
}

}  // namespace phonolid::dsp
