#include "dsp/features.h"

#include "dsp/streaming_features.h"

#include <cassert>
#include <cmath>

#include "obs/energy.h"

namespace phonolid::dsp {

util::Matrix add_deltas(const util::Matrix& features, std::size_t delta_window) {
  const std::size_t frames = features.rows();
  const std::size_t dim = features.cols();
  util::Matrix out(frames, dim * 3);
  if (frames == 0) return out;

  const auto w = static_cast<std::ptrdiff_t>(delta_window);
  double denom = 0.0;
  for (std::ptrdiff_t k = 1; k <= w; ++k) denom += 2.0 * static_cast<double>(k * k);
  const float inv_denom = static_cast<float>(1.0 / denom);

  // value(t) clamped at utterance edges, applied to an arbitrary source.
  const auto compute_delta = [&](const auto& src, std::size_t t, std::size_t d) {
    float acc = 0.0f;
    for (std::ptrdiff_t k = 1; k <= w; ++k) {
      const auto tt = static_cast<std::ptrdiff_t>(t);
      const auto last = static_cast<std::ptrdiff_t>(frames) - 1;
      const std::size_t fwd = static_cast<std::size_t>(std::min(tt + k, last));
      const std::size_t bwd = static_cast<std::size_t>(std::max(tt - k, std::ptrdiff_t{0}));
      acc += static_cast<float>(k) * (src(fwd, d) - src(bwd, d));
    }
    return acc * inv_denom;
  };

  // Statics.
  for (std::size_t t = 0; t < frames; ++t) {
    for (std::size_t d = 0; d < dim; ++d) out(t, d) = features(t, d);
  }
  // Deltas over the statics.
  const auto statics = [&](std::size_t t, std::size_t d) { return features(t, d); };
  for (std::size_t t = 0; t < frames; ++t) {
    for (std::size_t d = 0; d < dim; ++d) {
      out(t, dim + d) = compute_delta(statics, t, d);
    }
  }
  // Delta-deltas over the deltas just written.
  const auto deltas = [&](std::size_t t, std::size_t d) { return out(t, dim + d); };
  for (std::size_t t = 0; t < frames; ++t) {
    for (std::size_t d = 0; d < dim; ++d) {
      out(t, 2 * dim + d) = compute_delta(deltas, t, d);
    }
  }
  return out;
}

void cmvn_inplace(util::Matrix& features, bool normalize_variance) {
  const std::size_t frames = features.rows();
  const std::size_t dim = features.cols();
  if (frames == 0) return;
  for (std::size_t d = 0; d < dim; ++d) {
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t t = 0; t < frames; ++t) {
      const double v = features(t, d);
      sum += v;
      sum2 += v * v;
    }
    const double m = sum / static_cast<double>(frames);
    double inv_std = 1.0;
    if (normalize_variance) {
      const double var = sum2 / static_cast<double>(frames) - m * m;
      inv_std = 1.0 / std::sqrt(std::max(var, 1e-10));
    }
    for (std::size_t t = 0; t < frames; ++t) {
      features(t, d) =
          static_cast<float>((features(t, d) - m) * inv_std);
    }
  }
}

FeaturePipeline::FeaturePipeline(const FeaturePipelineConfig& config)
    : config_(config) {
  if (config_.kind == FeatureKind::kMfcc) {
    mfcc_ = std::make_unique<MfccExtractor>(config_.mfcc);
  } else {
    plp_ = std::make_unique<PlpExtractor>(config_.plp);
  }
}

std::size_t FeaturePipeline::feature_dim() const noexcept {
  const std::size_t base = (config_.kind == FeatureKind::kMfcc)
                               ? config_.mfcc.num_ceps
                               : config_.plp.num_ceps;
  return config_.deltas ? base * 3 : base;
}

double FeaturePipeline::flops_per_frame() const noexcept {
  // Software energy model: per-frame FFT (~5 N log2 N), filterbank
  // (~2 * filters * N/2), and cepstral projection (~2 * ceps * filters),
  // plus delta regression and CMVN terms.  Depends only on the config, so
  // the charge is deterministic for a given input.
  const bool mfcc = config_.kind == FeatureKind::kMfcc;
  const double n_fft =
      static_cast<double>(mfcc ? config_.mfcc.n_fft : config_.plp.n_fft);
  const double n_filters = static_cast<double>(
      mfcc ? config_.mfcc.num_filters : config_.plp.num_filters);
  const double n_ceps = static_cast<double>(mfcc ? config_.mfcc.num_ceps
                                                 : config_.plp.num_ceps);
  double per_frame = 5.0 * n_fft * std::log2(n_fft) +
                     n_filters * n_fft + 2.0 * n_ceps * n_filters;
  const double cols = static_cast<double>(feature_dim());
  if (config_.deltas) {
    per_frame += 4.0 * static_cast<double>(config_.delta_window) * cols;
  }
  if (config_.cmvn) per_frame += 4.0 * cols;
  return per_frame;
}

util::Matrix FeaturePipeline::process(std::span<const float> signal) const {
  // One code path with the streaming front end: batch is a single chunk.
  StreamingFeatures stream(*this);
  stream.push(signal);
  stream.finish();
  util::Matrix feats = stream.take();
  if (config_.cmvn) cmvn_inplace(feats, config_.cmvn_variance);
  obs::Energy::charge_flops(static_cast<double>(feats.rows()) *
                            flops_per_frame());
  return feats;
}

}  // namespace phonolid::dsp
