// Iterative radix-2 FFT.
//
// Sized for speech frames (N = 128..1024).  Twiddle factors are cached per
// size inside the Fft object, so per-frame transforms allocate nothing.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace phonolid::dsp {

class Fft {
 public:
  /// `n` must be a power of two >= 2.
  explicit Fft(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// In-place forward transform of `data` (size n).
  void forward(std::span<std::complex<float>> data) const;

  /// In-place inverse transform (unscaled conjugate method; divides by n).
  void inverse(std::span<std::complex<float>> data) const;

  /// Power spectrum |X_k|^2 for k = 0..n/2 of a real signal.
  /// `in` has size n (zero-padded by the caller), `out` has size n/2 + 1.
  /// `scratch` is caller-owned working memory (resized to n on first use):
  /// one Fft object is shared by concurrent feature sessions, so transform
  /// state must live with the caller, never in the object or a thread_local.
  void power_spectrum(std::span<const float> in, std::span<float> out,
                      std::vector<std::complex<float>>& scratch) const;

  static bool is_power_of_two(std::size_t n) noexcept {
    return n >= 2 && (n & (n - 1)) == 0;
  }

 private:
  std::size_t n_;
  std::vector<std::size_t> bitrev_;
  std::vector<std::complex<float>> twiddle_;  // forward
};

}  // namespace phonolid::dsp
