#include "dsp/fft.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace phonolid::dsp {

Fft::Fft(std::size_t n) : n_(n) {
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("Fft size must be a power of two >= 2");
  }
  // Bit-reversal permutation table.
  bitrev_.resize(n);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n; ++b) {
      r = (r << 1) | ((i >> b) & 1u);
    }
    bitrev_[i] = r;
  }
  // Twiddles for each butterfly span: W_m^j = exp(-2*pi*i*j/m), packed by
  // stage (m = 2, 4, ..., n) contiguously: total n-1 entries.
  twiddle_.reserve(n - 1);
  for (std::size_t m = 2; m <= n; m <<= 1) {
    for (std::size_t j = 0; j < m / 2; ++j) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(j) /
                           static_cast<double>(m);
      twiddle_.emplace_back(static_cast<float>(std::cos(angle)),
                            static_cast<float>(std::sin(angle)));
    }
  }
}

void Fft::forward(std::span<std::complex<float>> data) const {
  assert(data.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  std::size_t tw_base = 0;
  for (std::size_t m = 2; m <= n_; m <<= 1) {
    const std::size_t half = m / 2;
    for (std::size_t k = 0; k < n_; k += m) {
      for (std::size_t j = 0; j < half; ++j) {
        const auto w = twiddle_[tw_base + j];
        const auto t = w * data[k + j + half];
        const auto u = data[k + j];
        data[k + j] = u + t;
        data[k + j + half] = u - t;
      }
    }
    tw_base += half;
  }
}

void Fft::inverse(std::span<std::complex<float>> data) const {
  assert(data.size() == n_);
  for (auto& v : data) v = std::conj(v);
  forward(data);
  const float inv_n = 1.0f / static_cast<float>(n_);
  for (auto& v : data) v = std::conj(v) * inv_n;
}

void Fft::power_spectrum(std::span<const float> in, std::span<float> out,
                         std::vector<std::complex<float>>& scratch) const {
  assert(in.size() == n_ && out.size() == n_ / 2 + 1);
  scratch.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) scratch[i] = {in[i], 0.0f};
  forward(scratch);
  for (std::size_t k = 0; k <= n_ / 2; ++k) {
    out[k] = std::norm(scratch[k]);
  }
}

}  // namespace phonolid::dsp
