#include "dsp/mfcc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace phonolid::dsp {

MfccExtractor::MfccExtractor(const MfccConfig& config)
    : config_(config),
      framer_(config.frame_length, config.frame_shift),
      window_(make_window(config.window, config.frame_length)),
      fft_(config.n_fft),
      filterbank_(config.num_filters, config.n_fft / 2 + 1, config.sample_rate,
                  config.low_hz, config.high_hz, FilterbankScale::kMel),
      dct_(config.num_filters, config.num_ceps) {
  if (config.frame_length > config.n_fft) {
    throw std::invalid_argument("frame_length must be <= n_fft");
  }
}

util::Matrix MfccExtractor::extract(std::span<const float> signal) const {
  // Pre-emphasis operates on a copy so callers keep their raw signal.
  std::vector<float> emphasized(signal.begin(), signal.end());
  pre_emphasis(emphasized, config_.pre_emph);

  const std::size_t frames = framer_.num_frames(emphasized.size());
  util::Matrix features(frames, config_.num_ceps);

  std::vector<float> frame(config_.n_fft, 0.0f);
  std::vector<float> power(config_.n_fft / 2 + 1);
  std::vector<float> fbank(config_.num_filters);
  for (std::size_t t = 0; t < frames; ++t) {
    std::fill(frame.begin(), frame.end(), 0.0f);
    framer_.extract(emphasized, t, window_,
                    std::span<float>(frame.data(), config_.frame_length));
    fft_.power_spectrum(frame, power);
    filterbank_.apply(power, fbank);
    for (auto& v : fbank) v = std::log(std::max(v, config_.log_floor));
    dct_.apply(fbank, features.row(t));
  }
  return features;
}

}  // namespace phonolid::dsp
