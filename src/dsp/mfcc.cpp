#include "dsp/mfcc.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace phonolid::dsp {

MfccExtractor::MfccExtractor(const MfccConfig& config)
    : config_(config),
      framer_(config.frame_length, config.frame_shift),
      window_(make_window(config.window, config.frame_length)),
      fft_(config.n_fft),
      filterbank_(config.num_filters, config.n_fft / 2 + 1, config.sample_rate,
                  config.low_hz, config.high_hz, FilterbankScale::kMel),
      dct_(config.num_filters, config.num_ceps) {
  if (config.frame_length > config.n_fft) {
    throw std::invalid_argument("frame_length must be <= n_fft");
  }
}

MfccExtractor::Workspace MfccExtractor::make_workspace() const {
  Workspace ws;
  ws.frame.assign(config_.n_fft, 0.0f);
  ws.power.resize(config_.n_fft / 2 + 1);
  ws.fbank.resize(config_.num_filters);
  ws.fft.resize(config_.n_fft);
  return ws;
}

void MfccExtractor::extract_frame(std::span<const float> samples, Workspace& ws,
                                  std::span<float> out) const {
  assert(samples.size() == config_.frame_length);
  std::fill(ws.frame.begin(), ws.frame.end(), 0.0f);
  for (std::size_t i = 0; i < config_.frame_length; ++i) {
    ws.frame[i] = samples[i] * window_[i];
  }
  fft_.power_spectrum(ws.frame, ws.power, ws.fft);
  filterbank_.apply(ws.power, ws.fbank);
  for (auto& v : ws.fbank) v = std::log(std::max(v, config_.log_floor));
  dct_.apply(ws.fbank, out);
}

util::Matrix MfccExtractor::extract(std::span<const float> signal) const {
  // Pre-emphasis operates on a copy so callers keep their raw signal.
  std::vector<float> emphasized(signal.begin(), signal.end());
  pre_emphasis(emphasized, config_.pre_emph);

  const std::size_t frames = framer_.num_frames(emphasized.size());
  util::Matrix features(frames, config_.num_ceps);

  Workspace ws = make_workspace();
  for (std::size_t t = 0; t < frames; ++t) {
    extract_frame(std::span<const float>(emphasized)
                      .subspan(t * config_.frame_shift, config_.frame_length),
                  ws, features.row(t));
  }
  return features;
}

}  // namespace phonolid::dsp
