// Frame extraction and windowing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace phonolid::dsp {

enum class WindowType { kRectangular, kHamming, kHann };

/// Precomputed analysis window coefficients.
std::vector<float> make_window(WindowType type, std::size_t length);

/// y[t] = x[t] - coeff * x[t-1]  (y[0] = x[0] * (1 - coeff)).
void pre_emphasis(std::span<float> signal, float coeff) noexcept;

/// Splits `signal` into overlapping frames.
class Framer {
 public:
  Framer(std::size_t frame_length, std::size_t frame_shift);

  /// Number of fully-contained frames in a signal of `num_samples` samples.
  [[nodiscard]] std::size_t num_frames(std::size_t num_samples) const noexcept;

  /// Copy frame `index` into `out` (size frame_length), applying `window`
  /// (empty span = rectangular).
  void extract(std::span<const float> signal, std::size_t index,
               std::span<const float> window, std::span<float> out) const;

  [[nodiscard]] std::size_t frame_length() const noexcept { return frame_length_; }
  [[nodiscard]] std::size_t frame_shift() const noexcept { return frame_shift_; }

 private:
  std::size_t frame_length_;
  std::size_t frame_shift_;
};

}  // namespace phonolid::dsp
