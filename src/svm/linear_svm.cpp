#include "svm/linear_svm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "la/kernels.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace phonolid::svm {

double LinearSvm::score(const phonotactic::SparseVec& x) const noexcept {
  return x.dot_dense(weights_) + bias_value_;
}

std::size_t LinearSvm::train(std::span<const phonotactic::SparseVec* const> x,
                             std::span<const std::int8_t> y,
                             std::size_t dimension, const SvmConfig& config) {
  const std::size_t n = x.size();
  if (n == 0 || y.size() != n) {
    throw std::invalid_argument("LinearSvm::train: bad inputs");
  }
  for (std::int8_t label : y) {
    if (label != 1 && label != -1) {
      throw std::invalid_argument("LinearSvm::train: labels must be +-1");
    }
  }

  // Dual coordinate descent (Hsieh et al. 2008, Algorithm 1).
  const double diag = config.l2_loss ? 1.0 / (2.0 * config.C) : 0.0;
  const double upper =
      config.l2_loss ? std::numeric_limits<double>::infinity() : config.C;

  weights_.assign(dimension, 0.0f);
  bias_scale_ = config.bias;
  double w_bias = 0.0;  // weight of the constant bias feature
  std::vector<double> alpha(n, 0.0);
  std::vector<double> q_ii(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& vals = x[i]->values();
    const double sq = la::dot(vals, vals);
    q_ii[i] = sq + config.bias * config.bias + diag;
  }

  util::Rng rng(config.seed);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  std::size_t epoch = 0;
  for (; epoch < config.max_epochs; ++epoch) {
    rng.shuffle(order);
    double max_violation = 0.0;
    for (const std::size_t i : order) {
      const double yi = y[i];
      const double wx =
          x[i]->dot_dense(weights_) + w_bias * config.bias;
      const double grad = yi * wx - 1.0 + diag * alpha[i];

      // Projected gradient.
      double pg = grad;
      if (alpha[i] <= 0.0) {
        pg = std::min(grad, 0.0);
      } else if (alpha[i] >= upper) {
        pg = std::max(grad, 0.0);
      }
      max_violation = std::max(max_violation, std::abs(pg));
      if (pg == 0.0) continue;

      const double old_alpha = alpha[i];
      alpha[i] = std::clamp(old_alpha - grad / q_ii[i], 0.0, upper);
      const double delta = (alpha[i] - old_alpha) * yi;
      if (delta != 0.0) {
        x[i]->add_to_dense(static_cast<float>(delta), weights_);
        w_bias += delta * config.bias;
      }
    }
    if (max_violation < config.epsilon) {
      ++epoch;
      break;
    }
  }

  bias_value_ = w_bias * config.bias;

  // Dual objective: 0.5 ||w||^2 (incl. bias & diag term) - sum alpha.
  const double wnorm = w_bias * w_bias + la::dot(weights_, weights_);
  double obj = 0.5 * wnorm;
  for (std::size_t i = 0; i < n; ++i) {
    obj += 0.5 * diag * alpha[i] * alpha[i] - alpha[i];
  }
  dual_obj_ = obj;
  return epoch;
}

void LinearSvm::serialize(std::ostream& out) const {
  util::BinaryWriter w(out);
  w.write_magic("PSVM", 1);
  w.write_f32_vec(weights_);
  w.write_f64(bias_value_);
  w.write_f64(bias_scale_);
}

LinearSvm LinearSvm::deserialize(std::istream& in) {
  util::BinaryReader r(in);
  r.expect_magic("PSVM", 1);
  LinearSvm svm;
  svm.weights_ = r.read_f32_vec();
  svm.bias_value_ = r.read_f64();
  svm.bias_scale_ = r.read_f64();
  return svm;
}

}  // namespace phonolid::svm
