#include "svm/vsm.h"

#include <algorithm>
#include <stdexcept>

#include "la/kernels.h"
#include "obs/energy.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace phonolid::svm {

VsmModel VsmModel::train(std::span<const phonotactic::SparseVec> x,
                         std::span<const std::int32_t> labels,
                         std::size_t num_classes, std::size_t dimension,
                         const VsmTrainConfig& config) {
  std::vector<const phonotactic::SparseVec*> xptr(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xptr[i] = &x[i];
  return train(std::span<const phonotactic::SparseVec* const>(xptr), labels,
               num_classes, dimension, config);
}

VsmModel VsmModel::train(std::span<const phonotactic::SparseVec* const> xptr,
                         std::span<const std::int32_t> labels,
                         std::size_t num_classes, std::size_t dimension,
                         const VsmTrainConfig& config) {
  static obs::Counter& trainings = obs::Metrics::counter("vsm.trainings");
  static obs::Counter& train_examples =
      obs::Metrics::counter("vsm.train_examples");
  PHONOLID_SPAN("vsm_train");

  const std::size_t n = xptr.size();
  if (n == 0 || labels.size() != n || num_classes == 0) {
    throw std::invalid_argument("VsmModel::train: bad inputs");
  }
  trainings.add();
  train_examples.add(n);
  for (std::int32_t l : labels) {
    if (l < 0 || static_cast<std::size_t>(l) >= num_classes) {
      throw std::invalid_argument("VsmModel::train: label out of range");
    }
  }

  VsmModel model;
  model.classifiers_.resize(num_classes);
  util::parallel_for(0, num_classes, [&](std::size_t k) {
    std::vector<std::int8_t> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = (static_cast<std::size_t>(labels[i]) == k) ? 1 : -1;
    }
    SvmConfig svm_cfg = config.svm;
    svm_cfg.seed = util::derive_stream(config.seed, 0xE000 + k);
    model.classifiers_[k].train(xptr, y, dimension, svm_cfg);
  });
  model.rebuild_packed();
  return model;
}

void VsmModel::rebuild_packed() {
  packed_weights_ = util::Matrix();
  packed_bias_.clear();
  const std::size_t k = classifiers_.size();
  if (k == 0) return;
  const std::size_t dim = classifiers_[0].dimension();
  for (const auto& c : classifiers_) {
    if (c.dimension() != dim) return;
  }
  // ~256 MB dense-pack ceiling; beyond it, per-classifier dots win anyway
  // because the pack would thrash the cache.
  constexpr std::size_t kMaxPackedFloats = std::size_t{1} << 26;
  if (dim == 0 || dim * k > kMaxPackedFloats) return;
  packed_weights_.resize(dim, k);
  for (std::size_t c = 0; c < k; ++c) {
    const auto& w = classifiers_[c].weights();
    for (std::size_t j = 0; j < dim; ++j) packed_weights_(j, c) = w[j];
  }
  packed_bias_.resize(k);
  for (std::size_t c = 0; c < k; ++c) {
    packed_bias_[c] = static_cast<float>(classifiers_[c].bias_value());
  }
}

void VsmModel::score(const phonotactic::SparseVec& x,
                     std::span<float> out) const {
  if (out.size() != classifiers_.size()) {
    throw std::invalid_argument("VsmModel::score: bad output span");
  }
  if (packed_weights_.rows() > 0) {
    // One pass over the non-zeros scores every classifier: out += v_i *
    // packed_weights[row idx_i], then the biases.
    std::copy(packed_bias_.begin(), packed_bias_.end(), out.begin());
    const auto& idx = x.indices();
    const auto& val = x.values();
    for (std::size_t i = 0; i < idx.size(); ++i) {
      la::axpy(val[i], packed_weights_.row(idx[i]), out);
    }
    return;
  }
  for (std::size_t k = 0; k < classifiers_.size(); ++k) {
    out[k] = static_cast<float>(classifiers_[k].score(x));
  }
}

util::Matrix VsmModel::score_all(
    std::span<const phonotactic::SparseVec> x) const {
  static obs::Counter& scored = obs::Metrics::counter("vsm.scored_utterances");
  PHONOLID_SPAN("vsm_score");
  scored.add(x.size());
  // Software energy model: scoring one utterance is an axpy per non-zero
  // over all K classifiers.  Charged here (on the span's thread) rather
  // than inside the per-nnz axpy calls on pool workers.
  double nnz = 0.0;
  for (const phonotactic::SparseVec& v : x) {
    nnz += static_cast<double>(v.indices().size());
  }
  obs::Energy::charge_flops(2.0 * nnz *
                            static_cast<double>(classifiers_.size()));
  util::Matrix scores(x.size(), classifiers_.size());
  util::parallel_for(0, x.size(), [&](std::size_t i) {
    score(x[i], scores.row(i));
  });
  return scores;
}

void VsmModel::serialize(std::ostream& out) const {
  util::BinaryWriter w(out);
  w.write_magic("PVSM", 1);
  w.write_u64(classifiers_.size());
  for (const auto& c : classifiers_) c.serialize(out);
}

VsmModel VsmModel::deserialize(std::istream& in) {
  util::BinaryReader r(in);
  r.expect_magic("PVSM", 1);
  const std::uint64_t k = r.read_u64();
  VsmModel model;
  model.classifiers_.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) {
    model.classifiers_.push_back(LinearSvm::deserialize(in));
  }
  model.rebuild_packed();
  return model;
}

}  // namespace phonolid::svm
