// Linear SVM trained by dual coordinate descent.
//
// The optimiser inside LIBLINEAR (Hsieh et al., ICML 2008), which is what
// the paper uses for its VSM classifiers (§4.1).  L2-regularised L1- or
// L2-loss SVM on sparse inputs; the bias term of paper Eq. 4 is realised by
// augmenting every example with a constant feature.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "phonotactic/sparse.h"

namespace phonolid::svm {

struct SvmConfig {
  double C = 1.0;
  /// L2 (squared hinge) when true, else L1 hinge.
  bool l2_loss = true;
  std::size_t max_epochs = 200;
  /// Stop when the maximal projected-gradient violation over an epoch falls
  /// below this.
  double epsilon = 0.01;
  /// Weight of the constant bias feature (0 disables the bias).
  double bias = 1.0;
  std::uint64_t seed = 1;
};

class LinearSvm {
 public:
  LinearSvm() = default;

  /// Decision value w·x + b for one example.
  [[nodiscard]] double score(const phonotactic::SparseVec& x) const noexcept;

  [[nodiscard]] std::size_t dimension() const noexcept {
    return weights_.size();
  }
  [[nodiscard]] const std::vector<float>& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] double bias_value() const noexcept { return bias_value_; }

  /// Trains on examples `x` with labels `y` in {+1, -1}.
  /// `dimension` = feature-space size (indices must be < dimension).
  /// Returns the number of epochs run.
  std::size_t train(std::span<const phonotactic::SparseVec* const> x,
                    std::span<const std::int8_t> y, std::size_t dimension,
                    const SvmConfig& config);

  /// Dual objective value of the last training run (for convergence tests).
  [[nodiscard]] double dual_objective() const noexcept { return dual_obj_; }

  void serialize(std::ostream& out) const;
  static LinearSvm deserialize(std::istream& in);

 private:
  std::vector<float> weights_;
  double bias_value_ = 0.0;
  double bias_scale_ = 0.0;  // config.bias used in training
  double dual_obj_ = 0.0;
};

}  // namespace phonolid::svm
