// Vector space model: the paper's per-subsystem language classifier.
//
// One-versus-rest linear SVMs over TFLLR-scaled phonotactic supervectors
// (paper §2.3).  A VsmModel is one row M_q = {mdl_q1 .. mdl_qK} of the
// language-model matrix in paper Eq. 7; scoring a test set produces one
// block F_q of the score matrix in Eq. 8-9.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "svm/linear_svm.h"
#include "util/matrix.h"

namespace phonolid::svm {

struct VsmTrainConfig {
  SvmConfig svm;
  std::uint64_t seed = 1;
};

class VsmModel {
 public:
  VsmModel() = default;

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return classifiers_.size();
  }
  [[nodiscard]] const LinearSvm& classifier(std::size_t k) const {
    return classifiers_.at(k);
  }

  /// One-versus-rest training: class k's machine sees label +1 for
  /// utterances of language k and -1 for everything else (paper Eq. 6).
  /// Classes are trained in parallel.
  static VsmModel train(std::span<const phonotactic::SparseVec> x,
                        std::span<const std::int32_t> labels,
                        std::size_t num_classes, std::size_t dimension,
                        const VsmTrainConfig& config);

  /// Pointer-based overload (avoids copying supervectors when composing
  /// derived training sets such as Tr_DBA).
  static VsmModel train(std::span<const phonotactic::SparseVec* const> x,
                        std::span<const std::int32_t> labels,
                        std::size_t num_classes, std::size_t dimension,
                        const VsmTrainConfig& config);

  /// Confidence scores f(φ(x)) against every language model (one row of
  /// paper Eq. 9).
  void score(const phonotactic::SparseVec& x, std::span<float> out) const;

  /// Score a whole collection: rows = utterances, cols = classes.
  [[nodiscard]] util::Matrix score_all(
      std::span<const phonotactic::SparseVec> x) const;

  void serialize(std::ostream& out) const;
  static VsmModel deserialize(std::istream& in);

 private:
  void rebuild_packed();
  std::vector<LinearSvm> classifiers_;
  // dim x K column-packed classifier weights: one pass over a
  // supervector's non-zeros scores all K classifiers at once.  Left empty
  // (fall back to per-classifier dots) when the dense pack would be
  // excessively large.
  util::Matrix packed_weights_;
  std::vector<float> packed_bias_;
};

}  // namespace phonolid::svm
