// Wall-clock timers for real-time-factor accounting (paper Table 5).
#pragma once

#include <chrono>

namespace phonolid::util {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates elapsed time into a double on destruction; used to attribute
/// wall time to pipeline stages without restructuring the code.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) : sink_(sink) {}
  ~ScopedAccumulator() { sink_ += timer_.seconds(); }
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& sink_;
  WallTimer timer_;
};

}  // namespace phonolid::util
