// Minimal leveled logger.
//
// Thread-safe (one mutex around the sink), level controlled at runtime via
// set_level() or the PHONOLID_LOG env var (trace|debug|info|warn|error|off).
// Every line is prefixed with an ISO-8601 UTC timestamp and a compact
// per-thread id:  [2026-08-06T12:34:56.789Z T00 INFO  core] message
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>

namespace phonolid::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= level_;
  }

  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Logger();
  LogLevel level_;
  std::mutex mutex_;
};

const char* to_string(LogLevel level) noexcept;
LogLevel parse_log_level(const std::string& text) noexcept;

/// ISO-8601 UTC with millisecond precision: "2026-08-06T12:34:56.789Z".
std::string format_log_timestamp(std::chrono::system_clock::time_point tp);

/// Small sequential id of the calling thread (0 for the first thread that
/// logs, 1 for the next, ...) — far more readable than the OS thread id.
std::uint32_t current_log_thread_id() noexcept;

/// The full line prefix: "[<iso8601> T<id> <LEVEL> <component>]".
/// Split out from Logger::write so the format is unit-testable.
std::string format_log_prefix(LogLevel level, const std::string& component,
                              std::chrono::system_clock::time_point tp,
                              std::uint32_t thread_id);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* component)
      : level_(level), component_(component) {}
  ~LogLine() {
    if (Logger::instance().enabled(level_)) {
      Logger::instance().write(level_, component_, stream_.str());
    }
  }
  template <typename T>
  LogLine& operator<<(const T& value) {
    if (Logger::instance().enabled(level_)) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace phonolid::util

#define PHONOLID_LOG(level, component) \
  ::phonolid::util::detail::LogLine(level, component)
#define PHONOLID_INFO(component) \
  PHONOLID_LOG(::phonolid::util::LogLevel::kInfo, component)
#define PHONOLID_DEBUG(component) \
  PHONOLID_LOG(::phonolid::util::LogLevel::kDebug, component)
#define PHONOLID_WARN(component) \
  PHONOLID_LOG(::phonolid::util::LogLevel::kWarn, component)
#define PHONOLID_ERROR(component) \
  PHONOLID_LOG(::phonolid::util::LogLevel::kError, component)
