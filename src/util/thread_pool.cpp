#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace phonolid::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("PHONOLID_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    return std::size_t{0};
  }());
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_block) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.num_threads();
  if (workers <= 1 || n <= min_block) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Over-decompose 4x for load balance; clamp block size to min_block.
  std::size_t blocks = std::min(n, workers * 4);
  std::size_t block = std::max(min_block, (n + blocks - 1) / blocks);

  std::vector<std::future<void>> futures;
  futures.reserve((n + block - 1) / block);
  std::atomic<bool> failed{false};
  for (std::size_t lo = begin; lo < end; lo += block) {
    const std::size_t hi = std::min(end, lo + block);
    futures.push_back(pool.submit([lo, hi, &body, &failed] {
      // Skip work if another block already threw; its exception wins.
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        throw;
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_block) {
  parallel_for(ThreadPool::global(), begin, end, body, min_block);
}

}  // namespace phonolid::util
