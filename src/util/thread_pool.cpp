#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace phonolid::util {

namespace {

// Latency buckets spanning sub-microsecond queue waits up to multi-second
// stalls (seconds, upper edges).
const std::vector<double>& latency_edges() {
  static const std::vector<double> edges = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2,
                                            1e-1, 1.0,  10.0};
  return edges;
}

struct PoolMetrics {
  obs::Counter& submitted = obs::Metrics::counter("threadpool.tasks_submitted");
  obs::Counter& completed = obs::Metrics::counter("threadpool.tasks_completed");
  obs::Gauge& queue_depth = obs::Metrics::gauge("threadpool.queue_depth");
  obs::Histogram& wait_s =
      obs::Metrics::histogram("threadpool.task_wait_s", latency_edges());
  obs::Histogram& run_s =
      obs::Metrics::histogram("threadpool.task_run_s", latency_edges());
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  PoolMetrics& metrics = pool_metrics();
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push({std::move(pt), std::chrono::steady_clock::now()});
  }
  metrics.submitted.add();
  const std::int64_t depth = metrics.queue_depth.add(1);
  PHONOLID_COUNTER_SAMPLE("threadpool.queue_depth",
                          static_cast<double>(depth));
  cv_.notify_one();
  return fut;
}

void ThreadPool::run_task(QueuedTask& item) {
  using clock = std::chrono::steady_clock;
  PoolMetrics& metrics = pool_metrics();
  const std::int64_t depth = metrics.queue_depth.add(-1);
  PHONOLID_COUNTER_SAMPLE("threadpool.queue_depth",
                          static_cast<double>(depth));
  const auto start = clock::now();
  metrics.wait_s.observe(
      std::chrono::duration<double>(start - item.enqueued).count());
  item.task();  // packaged_task captures exceptions into the future
  metrics.run_s.observe(
      std::chrono::duration<double>(clock::now() - start).count());
  metrics.completed.add();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  obs::FlightRecorder::set_thread_name("pool-worker-" +
                                       std::to_string(worker_index));
  // Register with the sampling profiler up front so a profiled run samples
  // workers from their first task (arms this thread's timer if running).
  obs::Profiler::register_thread();
  for (;;) {
    QueuedTask item;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      item = std::move(tasks_.front());
      tasks_.pop();
    }
    run_task(item);
  }
}

bool ThreadPool::try_run_one() {
  QueuedTask item;
  {
    std::lock_guard lock(mutex_);
    if (tasks_.empty()) return false;
    item = std::move(tasks_.front());
    tasks_.pop();
  }
  run_task(item);
  return true;
}

void ThreadPool::wait_helping(std::future<void>& future) {
  using namespace std::chrono_literals;
  while (future.wait_for(0s) != std::future_status::ready) {
    if (!try_run_one()) {
      // Queue empty but our task still runs elsewhere; back off briefly.
      future.wait_for(100us);
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("PHONOLID_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    return std::size_t{0};
  }());
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_block) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.num_threads();
  if (workers <= 1 || n <= min_block) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Over-decompose 4x for load balance; clamp block size to min_block.
  std::size_t blocks = std::min(n, workers * 4);
  std::size_t block = std::max(min_block, (n + blocks - 1) / blocks);

  std::vector<std::future<void>> futures;
  futures.reserve((n + block - 1) / block);
  std::atomic<bool> failed{false};
  for (std::size_t lo = begin; lo < end; lo += block) {
    const std::size_t hi = std::min(end, lo + block);
    futures.push_back(pool.submit([lo, hi, &body, &failed] {
      // Skip work if another block already threw; its exception wins.
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        throw;
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    pool.wait_helping(f);
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_block) {
  parallel_for(ThreadPool::global(), begin, end, body, min_block);
}

}  // namespace phonolid::util
