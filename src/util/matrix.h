// Dense row-major matrix / vector math used throughout phonolid.
//
// Deliberately minimal: contiguous storage, bounds-checked accessors in
// debug builds, and the handful of BLAS-1/2/3 style kernels the acoustic
// models and SVM need.  All hot loops operate on raw spans so the compiler
// can vectorise them.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <span>
#include <vector>

namespace phonolid::util {

using Vec = std::vector<float>;

/// Minimal over-aligned allocator: matrix rows handed to the src/la kernels
/// start on a cache-line boundary, so blocked GEMM tiles never straddle
/// lines and the compiler's vector loads stay aligned.
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0);
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// 64-byte-aligned float storage (one x86 cache line / AVX-512 vector).
using AlignedVec = std::vector<float, AlignedAllocator<float, 64>>;

/// Row-major dense matrix of float.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<float> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }

  void resize(std::size_t rows, std::size_t cols, float fill = 0.0f) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  bool operator==(const Matrix& o) const noexcept {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedVec data_;
};

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept;

/// Dot product.
float dot(std::span<const float> a, std::span<const float> b) noexcept;

/// Euclidean norm.
float norm2(std::span<const float> a) noexcept;

/// x *= alpha
void scale(float alpha, std::span<float> x) noexcept;

/// out = A * x  (A: m x n, x: n, out: m).  out may not alias x.
void matvec(const Matrix& a, std::span<const float> x, std::span<float> out) noexcept;

/// out = A^T * x (A: m x n, x: m, out: n).  out may not alias x.
void matvec_transposed(const Matrix& a, std::span<const float> x,
                       std::span<float> out) noexcept;

/// C = A * B (A: m x k, B: k x n, C: m x n).  C may not alias A or B.
void matmul(const Matrix& a, const Matrix& b, Matrix& c) noexcept;

/// Rank-1 update: A += alpha * x * y^T (x: m, y: n, A: m x n).
void ger(float alpha, std::span<const float> x, std::span<const float> y,
         Matrix& a) noexcept;

}  // namespace phonolid::util
