// Shared-memory parallelism substrate.
//
// A fixed-size worker pool with a blocking task queue, plus a
// `parallel_for` that block-partitions an index range across the pool.
// Parallel results must be written to disjoint, pre-sized slots so the
// outcome is independent of scheduling order (keeps experiments
// deterministic under any thread count).
//
// The pool is instrumented via obs::Metrics (shared across all pools):
//   threadpool.tasks_submitted / threadpool.tasks_completed   counters
//   threadpool.queue_depth                                    gauge (+max)
//   threadpool.task_wait_s / threadpool.task_run_s            histograms
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace phonolid::util {

class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Pop one queued task and run it on the *calling* thread; returns false
  /// when the queue is empty.  This is how blocked waiters (parallel_for,
  /// pipeline::StageRunner) help drain the queue instead of deadlocking
  /// when every worker is itself waiting on nested tasks.
  bool try_run_one();

  /// Wait for `future`, executing queued tasks while it is not ready.
  /// Safe to call from pool workers (nested parallelism cannot deadlock:
  /// the waiter makes progress on whatever is queued).
  void wait_helping(std::future<void>& future);

  /// Process-wide pool, sized from PHONOLID_THREADS or hardware concurrency.
  static ThreadPool& global();

 private:
  struct QueuedTask {
    std::packaged_task<void()> task;
    std::chrono::steady_clock::time_point enqueued;
  };

  void run_task(QueuedTask& item);
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Run body(i) for i in [begin, end) across the pool, in contiguous blocks.
/// Blocks until every index is done.  Exceptions from the body propagate
/// (the first one encountered is rethrown).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_block = 1);

/// Convenience overload on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_block = 1);

}  // namespace phonolid::util
