// Experiment-scale configuration.
//
// Every bench/example reads its corpus scale from here so "quick" CI runs
// and "full" paper-shaped runs share one switch:
//   PHONOLID_SCALE=quick|default|full   (env var), or set explicitly.
#pragma once

#include <cstdint>
#include <string>

namespace phonolid::util {

enum class Scale { kQuick, kDefault, kFull };

/// Parse "quick"/"default"/"full" (anything else -> kDefault).
Scale parse_scale(const std::string& text) noexcept;

/// Reads PHONOLID_SCALE, defaulting to kDefault.
Scale scale_from_env() noexcept;

const char* to_string(Scale scale) noexcept;

/// Integer env override helper: returns `fallback` when unset/invalid.
std::int64_t env_int(const char* name, std::int64_t fallback) noexcept;

/// Master seed for experiments (PHONOLID_SEED, default 20090704 — the LRE09
/// vintage makes a memorable default).
std::uint64_t master_seed() noexcept;

}  // namespace phonolid::util
