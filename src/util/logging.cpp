#include "util/logging.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace phonolid::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(LogLevel::kWarn) {
  if (const char* env = std::getenv("PHONOLID_LOG")) {
    level_ = parse_log_level(env);
  }
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  using clock = std::chrono::steady_clock;
  static const auto start = clock::now();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  std::lock_guard lock(mutex_);
  std::fprintf(stderr, "[%9.3fs %-5s %s] %s\n", elapsed, to_string(level),
               component.c_str(), message.c_str());
}

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& text) noexcept {
  if (text == "trace") return LogLevel::kTrace;
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

}  // namespace phonolid::util
