#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace phonolid::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(LogLevel::kWarn) {
  if (const char* env = std::getenv("PHONOLID_LOG")) {
    level_ = parse_log_level(env);
  }
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  const std::string prefix =
      format_log_prefix(level, component, std::chrono::system_clock::now(),
                        current_log_thread_id());
  std::lock_guard lock(mutex_);
  std::fprintf(stderr, "%s %s\n", prefix.c_str(), message.c_str());
}

std::string format_log_timestamp(std::chrono::system_clock::time_point tp) {
  using namespace std::chrono;
  const auto since_epoch = tp.time_since_epoch();
  const auto secs = duration_cast<seconds>(since_epoch);
  const auto millis = duration_cast<milliseconds>(since_epoch - secs).count();
  const std::time_t t = static_cast<std::time_t>(secs.count());
  std::tm utc{};
  gmtime_r(&t, &utc);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  return buf;
}

std::uint32_t current_log_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string format_log_prefix(LogLevel level, const std::string& component,
                              std::chrono::system_clock::time_point tp,
                              std::uint32_t thread_id) {
  std::string prefix = "[";
  prefix += format_log_timestamp(tp);
  char tid[16];
  std::snprintf(tid, sizeof(tid), " T%02u ", thread_id);
  prefix += tid;
  char lvl[8];
  std::snprintf(lvl, sizeof(lvl), "%-5s ", to_string(level));
  prefix += lvl;
  prefix += component;
  prefix += "]";
  return prefix;
}

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& text) noexcept {
  if (text == "trace") return LogLevel::kTrace;
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

}  // namespace phonolid::util
