// Deterministic, stream-splittable random number generation.
//
// All stochastic components of phonolid (corpus synthesis, model
// initialisation, SGD shuffling) draw from Rng instances derived from a
// single master seed, so every experiment in the paper reproduction is
// bit-reproducible and parallel loops can derive independent per-item
// streams without sharing state.
#pragma once

#include <cstdint>
#include <vector>

namespace phonolid::util {

/// SplitMix64 step: the canonical 64-bit finaliser used both as a simple
/// generator and to expand seeds for Xoshiro.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Derive an independent stream seed from (seed, stream_id).  Uses two
/// SplitMix64 rounds over a mixed key; distinct (seed, id) pairs produce
/// decorrelated streams suitable for per-utterance generators.
std::uint64_t derive_stream(std::uint64_t seed, std::uint64_t stream_id) noexcept;

/// xoshiro256** PRNG (Blackman & Vigna).  Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Construct a decorrelated sub-stream for item `stream_id`.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept;

  std::uint64_t next_u64() noexcept;

  /// UniformReal in [0, 1).
  double uniform() noexcept;
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Standard normal via Box-Muller with caching.
  double gaussian() noexcept;
  double gaussian(double mean, double stddev) noexcept;
  /// Sample an index from an (unnormalised) non-negative weight vector.
  std::size_t categorical(const std::vector<double>& weights) noexcept;
  /// Bernoulli trial.
  bool bernoulli(double p) noexcept;
  /// In-place Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() noexcept { return next_u64(); }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
  double cached_gauss_ = 0.0;
  bool has_cached_gauss_ = false;
};

}  // namespace phonolid::util
