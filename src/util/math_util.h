// Numerics shared by the acoustic models, backends and metrics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace phonolid::util {

/// Natural log of a value clamped away from zero.
double safe_log(double x) noexcept;

/// log(exp(a) + exp(b)) without overflow.
double log_add(double a, double b) noexcept;

/// log(sum exp(v_i)) without overflow; returns -inf for empty input.
double log_sum_exp(std::span<const double> values) noexcept;
float log_sum_exp(std::span<const float> values) noexcept;

/// Numerically stable logistic function.
double sigmoid(double x) noexcept;

/// In-place softmax over `values`.
void softmax_inplace(std::span<float> values) noexcept;
void softmax_inplace(std::span<double> values) noexcept;

/// In-place log-softmax over `values`.
void log_softmax_inplace(std::span<float> values) noexcept;

/// Inverse of the standard normal CDF (Acklam's rational approximation).
/// Used for DET-curve probit axes.  p must lie in (0, 1).
double probit(double p) noexcept;

/// Standard normal CDF.
double normal_cdf(double x) noexcept;

/// Mean of a span (0 for empty input).
double mean(std::span<const double> values) noexcept;

/// Unbiased sample variance (0 for n < 2).
double variance(std::span<const double> values) noexcept;

/// argmax index; 0 for empty input.
std::size_t argmax(std::span<const float> values) noexcept;
std::size_t argmax(std::span<const double> values) noexcept;

}  // namespace phonolid::util
