#include "util/matrix.h"

#include <cmath>

namespace phonolid::util {

void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

float dot(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  // Four accumulators break the dependency chain and let GCC vectorise.
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

float norm2(std::span<const float> a) noexcept {
  return std::sqrt(dot(a, a));
}

void scale(float alpha, std::span<float> x) noexcept {
  for (auto& v : x) v *= alpha;
}

void matvec(const Matrix& a, std::span<const float> x, std::span<float> out) noexcept {
  assert(x.size() == a.cols() && out.size() == a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) out[r] = dot(a.row(r), x);
}

void matvec_transposed(const Matrix& a, std::span<const float> x,
                       std::span<float> out) noexcept {
  assert(x.size() == a.rows() && out.size() == a.cols());
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t r = 0; r < a.rows(); ++r) axpy(x[r], a.row(r), out);
}

void matmul(const Matrix& a, const Matrix& b, Matrix& c) noexcept {
  assert(a.cols() == b.rows());
  c.resize(a.rows(), b.cols());
  // i-k-j order: streams through B and C rows contiguously.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto ci = c.row(i);
    auto ai = a.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = ai[k];
      if (aik == 0.0f) continue;
      axpy(aik, b.row(k), ci);
    }
  }
}

void ger(float alpha, std::span<const float> x, std::span<const float> y,
         Matrix& a) noexcept {
  assert(x.size() == a.rows() && y.size() == a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) axpy(alpha * x[r], y, a.row(r));
}

}  // namespace phonolid::util
