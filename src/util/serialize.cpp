#include "util/serialize.h"

#include <cstring>

#include "util/matrix.h"

namespace phonolid::util {

void BinaryWriter::raw(const void* data, std::size_t bytes) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  if (!out_) throw SerializeError("write failed");
}

void BinaryWriter::write_magic(const char magic[4], std::uint32_t version) {
  raw(magic, 4);
  write_u32(version);
}

void BinaryWriter::write_u32(std::uint32_t v) { raw(&v, sizeof v); }
void BinaryWriter::write_u64(std::uint64_t v) { raw(&v, sizeof v); }
void BinaryWriter::write_i64(std::int64_t v) { raw(&v, sizeof v); }
void BinaryWriter::write_f32(float v) { raw(&v, sizeof v); }
void BinaryWriter::write_f64(double v) { raw(&v, sizeof v); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  if (!s.empty()) raw(s.data(), s.size());
}

void BinaryWriter::write_bytes(const std::string& bytes) {
  write_u64(bytes.size());
  if (!bytes.empty()) raw(bytes.data(), bytes.size());
}

void BinaryWriter::write_f32_vec(const std::vector<float>& v) {
  write_u64(v.size());
  if (!v.empty()) raw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::write_f64_vec(const std::vector<double>& v) {
  write_u64(v.size());
  if (!v.empty()) raw(v.data(), v.size() * sizeof(double));
}

void BinaryWriter::write_u32_vec(const std::vector<std::uint32_t>& v) {
  write_u64(v.size());
  if (!v.empty()) raw(v.data(), v.size() * sizeof(std::uint32_t));
}

void BinaryReader::raw(void* data, std::size_t bytes) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in_.gcount()) != bytes) {
    throw SerializeError("unexpected end of stream");
  }
}

void BinaryReader::expect_magic(const char magic[4],
                                std::uint32_t expected_version) {
  char got[4];
  raw(got, 4);
  if (std::memcmp(got, magic, 4) != 0) {
    throw SerializeError(std::string("bad magic, expected '") +
                         std::string(magic, 4) + "'");
  }
  const std::uint32_t version = read_u32();
  if (version != expected_version) {
    throw SerializeError("unsupported format version " +
                         std::to_string(version));
  }
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v;
  raw(&v, sizeof v);
  return v;
}
std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v;
  raw(&v, sizeof v);
  return v;
}
std::int64_t BinaryReader::read_i64() {
  std::int64_t v;
  raw(&v, sizeof v);
  return v;
}
float BinaryReader::read_f32() {
  float v;
  raw(&v, sizeof v);
  return v;
}
double BinaryReader::read_f64() {
  double v;
  raw(&v, sizeof v);
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  if (n > kMaxStringBytes) throw SerializeError("string too long");
  std::string s(n, '\0');
  if (n > 0) raw(s.data(), n);
  return s;
}

std::string BinaryReader::read_bytes() {
  const std::uint64_t n = read_u64();
  if (n > kMaxElements) throw SerializeError("byte blob too long");
  std::string s(n, '\0');
  if (n > 0) raw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::read_f32_vec() {
  const std::uint64_t n = read_u64();
  if (n > kMaxElements) throw SerializeError("vector too long");
  std::vector<float> v(n);
  if (n > 0) raw(v.data(), n * sizeof(float));
  return v;
}

std::vector<double> BinaryReader::read_f64_vec() {
  const std::uint64_t n = read_u64();
  if (n > kMaxElements) throw SerializeError("vector too long");
  std::vector<double> v(n);
  if (n > 0) raw(v.data(), n * sizeof(double));
  return v;
}

void write_matrix(BinaryWriter& w, const Matrix& m) {
  w.write_u64(m.rows());
  w.write_u64(m.cols());
  if (m.rows() * m.cols() > 0) {
    w.raw(m.data(), m.rows() * m.cols() * sizeof(float));
  }
}

Matrix read_matrix(BinaryReader& r) {
  const std::uint64_t rows = r.read_u64();
  const std::uint64_t cols = r.read_u64();
  if (rows > BinaryReader::kMaxElements || cols > BinaryReader::kMaxElements ||
      (cols > 0 && rows > BinaryReader::kMaxElements / cols)) {
    throw SerializeError("matrix too large");
  }
  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  if (rows * cols > 0) r.raw(m.data(), rows * cols * sizeof(float));
  return m;
}

std::vector<std::uint32_t> BinaryReader::read_u32_vec() {
  const std::uint64_t n = read_u64();
  if (n > kMaxElements) throw SerializeError("vector too long");
  std::vector<std::uint32_t> v(n);
  if (n > 0) raw(v.data(), n * sizeof(std::uint32_t));
  return v;
}

}  // namespace phonolid::util
