#include "util/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace phonolid::util {

double safe_log(double x) noexcept {
  return std::log(std::max(x, 1e-300));
}

double log_add(double a, double b) noexcept {
  if (a < b) std::swap(a, b);
  if (b == -std::numeric_limits<double>::infinity()) return a;
  return a + std::log1p(std::exp(b - a));
}

double log_sum_exp(std::span<const double> values) noexcept {
  if (values.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(values.begin(), values.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double v : values) sum += std::exp(v - m);
  return m + std::log(sum);
}

float log_sum_exp(std::span<const float> values) noexcept {
  if (values.empty()) return -std::numeric_limits<float>::infinity();
  const float m = *std::max_element(values.begin(), values.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (float v : values) sum += std::exp(static_cast<double>(v - m));
  return m + static_cast<float>(std::log(sum));
}

double sigmoid(double x) noexcept {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

void softmax_inplace(std::span<float> values) noexcept {
  if (values.empty()) return;
  const float m = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (auto& v : values) {
    v = std::exp(v - m);
    sum += v;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (auto& v : values) v *= inv;
}

void softmax_inplace(std::span<double> values) noexcept {
  if (values.empty()) return;
  const double m = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (auto& v : values) {
    v = std::exp(v - m);
    sum += v;
  }
  const double inv = 1.0 / sum;
  for (auto& v : values) v *= inv;
}

void log_softmax_inplace(std::span<float> values) noexcept {
  if (values.empty()) return;
  const float lse = log_sum_exp(std::span<const float>(values.data(), values.size()));
  for (auto& v : values) v -= lse;
}

double probit(double p) noexcept {
  // Peter Acklam's inverse-normal approximation, |relative error| < 1.15e-9.
  p = std::clamp(p, 1e-300, 1.0 - 1e-16);
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  constexpr double phigh = 1.0 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > phigh) {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double variance(std::span<const double> values) noexcept {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  const double m = mean(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return s / static_cast<double>(n - 1);
}

std::size_t argmax(std::span<const float> values) noexcept {
  if (values.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

std::size_t argmax(std::span<const double> values) noexcept {
  if (values.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

}  // namespace phonolid::util
