#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace phonolid::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t derive_stream(std::uint64_t seed, std::uint64_t stream_id) noexcept {
  // Mix the stream id into the seed with two finaliser rounds; the golden
  // ratio multiplier decorrelates adjacent ids.
  std::uint64_t s = seed ^ (stream_id * 0xD1B54A32D192ED03ull + 0x8BB84B93962EACC9ull);
  (void)splitmix64(s);
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  // Expand the seed with SplitMix64 as recommended by the xoshiro authors;
  // guarantees the state is never all-zero.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t stream_id) const noexcept {
  return Rng(derive_stream(seed_, stream_id));
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire's multiply-shift rejection method for unbiased bounded ints.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0ull - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::gaussian() noexcept {
  if (has_cached_gauss_) {
    has_cached_gauss_ = false;
    return cached_gauss_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gauss_ = r * std::sin(theta);
  has_cached_gauss_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.empty() ? 0 : uniform_index(weights.size());
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // numerical slack
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

}  // namespace phonolid::util
