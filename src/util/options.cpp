#include "util/options.h"

#include <cstdlib>

namespace phonolid::util {

Scale parse_scale(const std::string& text) noexcept {
  if (text == "quick") return Scale::kQuick;
  if (text == "full") return Scale::kFull;
  return Scale::kDefault;
}

Scale scale_from_env() noexcept {
  if (const char* env = std::getenv("PHONOLID_SCALE")) {
    return parse_scale(env);
  }
  return Scale::kDefault;
}

const char* to_string(Scale scale) noexcept {
  switch (scale) {
    case Scale::kQuick: return "quick";
    case Scale::kDefault: return "default";
    case Scale::kFull: return "full";
  }
  return "?";
}

std::int64_t env_int(const char* name, std::int64_t fallback) noexcept {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env) return v;
  }
  return fallback;
}

std::uint64_t master_seed() noexcept {
  return static_cast<std::uint64_t>(env_int("PHONOLID_SEED", 20090704));
}

}  // namespace phonolid::util
