// Binary model serialization.
//
// A tagged little-endian stream: every model file starts with a 4-byte
// magic and a format version so load errors are explicit rather than
// garbage reads.  Readers validate sizes before allocating.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace phonolid::util {

class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Matrix;

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void write_magic(const char magic[4], std::uint32_t version);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  /// Length-prefixed raw byte blob (artifact payloads); no interpretation.
  void write_bytes(const std::string& bytes);
  void write_f32_vec(const std::vector<float>& v);
  void write_f64_vec(const std::vector<double>& v);
  void write_u32_vec(const std::vector<std::uint32_t>& v);

 private:
  friend void write_matrix(BinaryWriter& w, const Matrix& m);
  void raw(const void* data, std::size_t bytes);
  std::ostream& out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  /// Throws SerializeError if magic or version mismatch.
  void expect_magic(const char magic[4], std::uint32_t expected_version);
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();
  /// Counterpart of write_bytes; rejects blobs larger than kMaxElements.
  std::string read_bytes();
  std::vector<float> read_f32_vec();
  std::vector<double> read_f64_vec();
  std::vector<std::uint32_t> read_u32_vec();

 private:
  friend Matrix read_matrix(BinaryReader& r);
  void raw(void* data, std::size_t bytes);
  std::istream& in_;
  // Guard against hostile / corrupt length prefixes.
  static constexpr std::uint64_t kMaxElements = 1ull << 32;
  // Strings are identifiers/paths, never bulk data: a multi-gigabyte length
  // prefix is always corruption, so cap them far tighter than the vectors.
  static constexpr std::uint64_t kMaxStringBytes = 1ull << 20;
};

/// Dense row-major float matrix: u64 rows, u64 cols, then rows*cols f32.
/// Matrix storage is contiguous, so this is one raw write/read.
void write_matrix(BinaryWriter& w, const Matrix& m);
Matrix read_matrix(BinaryReader& r);

}  // namespace phonolid::util
