// Batched compute kernels: the numeric substrate under every hot path.
//
// All heavy linear algebra in phonolid (MLP forward/backward, batched
// Gaussian evaluation, LDA projections, supervector products) funnels into
// the handful of kernels declared here.  Design rules:
//
//  * Deterministic and thread-count independent.  Work is tiled into
//    *fixed-size* row blocks (kRowTile) that are distributed over the
//    thread pool; each output element is produced by exactly one task with
//    a fixed reduction order over k.  No cross-thread reductions, so the
//    result is bit-identical for 1, 2 or 64 threads — and across repeated
//    runs.
//  * SIMD-friendly without -ffast-math.  Inner loops are written as
//    independent accumulator lanes (explicit reassociation) over
//    contiguous, restrict-qualified spans so GCC/Clang vectorise them at
//    -O2 with strict FP semantics.
//  * Nested-parallelism safe.  Parallel tiles run through
//    util::parallel_for, which uses the thread pool's helping-wait: a
//    caller already running on a pool worker drains queued tiles itself
//    instead of deadlocking.
//
// PHONOLID_KERNEL=generic selects the naive reference implementations in
// la::ref (same results up to floating-point reassociation; used to
// bisect kernel bugs).  Anything else (default "blocked") uses the tiled
// kernels.
#pragma once

#include <cstdint>
#include <span>

#include "util/matrix.h"

namespace phonolid::util {
class ThreadPool;
}

namespace phonolid::la {

/// Which implementation the dispatchers use (read once from
/// PHONOLID_KERNEL: "generic" or "blocked"/unset).
enum class KernelImpl { kBlocked, kGeneric };
[[nodiscard]] KernelImpl active_impl() noexcept;

/// Fixed row-tile size used when parallelising over output rows.  Part of
/// the determinism contract: tile boundaries never depend on the thread
/// count.
inline constexpr std::size_t kRowTile = 32;

/// Per-row epilogue fused into gemm_nt (the MLP forward pass).
enum class Epilogue {
  kNone,        // plain product
  kBias,        // += bias[j]
  kBiasSigmoid, // sigmoid(c + bias[j])
};

/// C = A * B            (A: m x k, B: k x n, C resized to m x n).
/// C may not alias A or B.
void gemm(const util::Matrix& a, const util::Matrix& b, util::Matrix& c,
          util::ThreadPool* pool = nullptr);

/// C = A * B^T [+ bias, + sigmoid]   (A: m x k, B: n x k, C: m x n).
/// `bias` (size n) is required for Epilogue::kBias*.  This is the MLP
/// forward kernel: B holds out x in row-major weights.
void gemm_nt(const util::Matrix& a, const util::Matrix& b, util::Matrix& c,
             std::span<const float> bias = {}, Epilogue ep = Epilogue::kNone,
             util::ThreadPool* pool = nullptr);

/// C (+)= alpha * A^T * B   (A: k x m, B: k x n, C: m x n).
/// With accumulate=false C is resized and overwritten; with true it must
/// already be m x n and is added into.  This is the gradient /
/// sufficient-statistics kernel (delta^T * activations, gamma^T * frames).
void gemm_tn(const util::Matrix& a, const util::Matrix& b, util::Matrix& c,
             float alpha = 1.0f, bool accumulate = false,
             util::ThreadPool* pool = nullptr);

/// out = A * x   (A: m x n, x: n, out: m).
void gemv(const util::Matrix& a, std::span<const float> x,
          std::span<float> out) noexcept;

/// out = A^T * x (A: m x n, x: m, out: n).
void gemv_t(const util::Matrix& a, std::span<const float> x,
            std::span<float> out) noexcept;

/// Dot product with eight independent accumulator lanes.
[[nodiscard]] float dot(std::span<const float> a,
                        std::span<const float> b) noexcept;

/// y += alpha * x.
void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept;

/// Numerically stable float sigmoid (the fused epilogue's nonlinearity).
[[nodiscard]] float sigmoid(float x) noexcept;

/// Sparse gather kernels for phonotactic supervectors: index/value pairs
/// against a dense vector indexed by feature id.
[[nodiscard]] float sparse_dot(std::span<const std::uint32_t> idx,
                               std::span<const float> val,
                               std::span<const float> dense) noexcept;
void sparse_axpy(float alpha, std::span<const std::uint32_t> idx,
                 std::span<const float> val, std::span<float> dense) noexcept;

/// Naive reference implementations (also what PHONOLID_KERNEL=generic
/// dispatches to).  Tests compare the blocked kernels against these.
namespace ref {
void gemm(const util::Matrix& a, const util::Matrix& b, util::Matrix& c);
void gemm_nt(const util::Matrix& a, const util::Matrix& b, util::Matrix& c,
             std::span<const float> bias = {}, Epilogue ep = Epilogue::kNone);
void gemm_tn(const util::Matrix& a, const util::Matrix& b, util::Matrix& c,
             float alpha = 1.0f, bool accumulate = false);
}  // namespace ref

}  // namespace phonolid::la
