// Batched diagonal-Gaussian log-density evaluation as one GEMM.
//
// For a diagonal Gaussian, the log-density expands quadratically:
//
//   log N(x; mu, var) = K + sum_d x_d * (mu_d / var_d)
//                         - sum_d x_d^2 * (0.5 / var_d)
//   with  K = -0.5 * (D log 2pi + sum_d log var_d + sum_d mu_d^2 / var_d)
//
// so evaluating M Gaussians against T frames is a single T x M product of
// the extended frame matrix [X | X^2] (T x 2D) against the packed
// component matrix [mu/var ; -0.5/var] (M x 2D), plus per-component
// constants.  That turns per-frame per-Gaussian scalar loops (GMM-HMM
// decoding, UBM posteriors, the Gaussian backend) into cache-blocked GEMM
// calls — the paper's "decoding dominates runtime" hot path.
//
// An optional per-component bias folds a mixture log-weight (or a class
// log-prior) into the constant so softmax/log-sum-exp consumers need no
// second pass.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/matrix.h"

namespace phonolid::util {
class ThreadPool;
}

namespace phonolid::la {

class BatchedGaussians {
 public:
  BatchedGaussians() = default;

  [[nodiscard]] std::size_t num_components() const noexcept {
    return consts_.size();
  }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] bool empty() const noexcept { return consts_.empty(); }

  /// Incrementally packs components; every add() must pass `dim`-sized
  /// spans.  Variances must already be floored by the caller.
  class Builder {
   public:
    explicit Builder(std::size_t dim, std::size_t expected_components = 0);
    /// `bias` is added to the component's constant (e.g. a log mixture
    /// weight).
    Builder& add(std::span<const float> mean, std::span<const float> var,
                 float bias = 0.0f);
    [[nodiscard]] BatchedGaussians build();

   private:
    std::size_t dim_;
    std::vector<float> packed_;  // M x 2D, row-major, grows per add()
    std::vector<float> consts_;
  };

  /// out(t, m) = bias_m + log N(frames_t; mu_m, var_m); out is resized to
  /// frames.rows() x num_components().  Frames are processed in fixed-size
  /// blocks so the [X | X^2] scratch stays cache-resident; results are
  /// bit-identical for any thread count.
  void score(const util::Matrix& frames, util::Matrix& out,
             util::ThreadPool* pool = nullptr) const;

  /// Multiply-add count of one score() call per frame (for GFLOP/s
  /// counters): one 2D-wide dot per component plus the squaring pass.
  [[nodiscard]] double flops_per_frame() const noexcept {
    return 2.0 * static_cast<double>(num_components()) * 2.0 *
               static_cast<double>(dim_) +
           static_cast<double>(dim_);
  }

 private:
  util::Matrix packed_;        // M x 2D: [mu/var ; -0.5/var]
  std::vector<float> consts_;  // M: K + bias
  std::size_t dim_ = 0;
};

/// log(sum exp) over each row segment [seg_begin[s], seg_begin[s+1]) of a
/// packed score row — the per-state / per-language mixture reduction that
/// follows a BatchedGaussians::score.  Fixed left-to-right order.
void logsumexp_segments(std::span<const float> row,
                        std::span<const std::size_t> seg_begin,
                        std::span<float> out) noexcept;

}  // namespace phonolid::la
