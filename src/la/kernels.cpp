#include "la/kernels.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/energy.h"
#include "util/thread_pool.h"

namespace phonolid::la {

namespace {

// Below this many multiply-adds a parallel dispatch costs more than it
// saves; run the tiles inline.  A fixed constant (never derived from the
// thread count), so it cannot affect results either way.
constexpr std::size_t kParallelFlopThreshold = 1 << 17;

// k-panel size for the blocked kernels: one panel of B (kPanelK rows)
// stays resident in L1/L2 while a row tile of C streams over it.
constexpr std::size_t kPanelK = 128;

void check_gemm_shapes(const util::Matrix& a, const util::Matrix& b,
                       std::size_t a_inner, std::size_t b_inner,
                       const char* who) {
  if (a_inner != b_inner) {
    throw std::invalid_argument(std::string(who) + ": inner dim mismatch");
  }
  (void)a;
  (void)b;
}

inline void apply_epilogue(float* __restrict__ row, std::size_t n,
                           const float* __restrict__ bias, Epilogue ep) {
  switch (ep) {
    case Epilogue::kNone:
      return;
    case Epilogue::kBias:
      for (std::size_t j = 0; j < n; ++j) row[j] += bias[j];
      return;
    case Epilogue::kBiasSigmoid:
      for (std::size_t j = 0; j < n; ++j) row[j] = sigmoid(row[j] + bias[j]);
      return;
  }
}

// Runs body(tile_begin, tile_end) over [0, rows) in kRowTile chunks,
// in parallel when the total work is worth it.  Tile boundaries are fixed
// by kRowTile alone, and every output row belongs to exactly one tile, so
// scheduling cannot change results.
void for_each_row_tile(std::size_t rows, std::size_t flops,
                       util::ThreadPool* pool,
                       const std::function<void(std::size_t, std::size_t)>& body) {
  if (rows == 0) return;
  const std::size_t tiles = (rows + kRowTile - 1) / kRowTile;
  if (tiles == 1 || flops < kParallelFlopThreshold) {
    for (std::size_t t = 0; t < tiles; ++t) {
      body(t * kRowTile, std::min(rows, (t + 1) * kRowTile));
    }
    return;
  }
  util::ThreadPool& p = pool ? *pool : util::ThreadPool::global();
  util::parallel_for(p, 0, tiles, [&](std::size_t t) {
    body(t * kRowTile, std::min(rows, (t + 1) * kRowTile));
  });
}

// ---- blocked kernels ------------------------------------------------------

// C rows [r0, r1) of C = A * B, axpy form: streams B and C rows
// contiguously; k order fixed (0..k) regardless of tiling.
void gemm_nn_tile(const util::Matrix& a, const util::Matrix& b,
                  util::Matrix& c, std::size_t r0, std::size_t r1) {
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i = r0; i < r1; ++i) {
    float* __restrict__ ci = c.row(i).data();
    std::memset(ci, 0, n * sizeof(float));
    const float* __restrict__ ai = a.row(i).data();
    for (std::size_t kb = 0; kb < k; kb += kPanelK) {
      const std::size_t ke = std::min(k, kb + kPanelK);
      for (std::size_t kk = kb; kk < ke; ++kk) {
        const float aik = ai[kk];
        if (aik == 0.0f) continue;
        const float* __restrict__ bk = b.row(kk).data();
        for (std::size_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
      }
    }
  }
}

// Eight-lane dot product: explicit reassociation into independent
// accumulators lets the compiler vectorise without -ffast-math.
float dot8(const float* __restrict__ a, const float* __restrict__ b,
           std::size_t n) noexcept {
  float s0 = 0, s1 = 0, s2 = 0, s3 = 0, s4 = 0, s5 = 0, s6 = 0, s7 = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
    s4 += a[i + 4] * b[i + 4];
    s5 += a[i + 5] * b[i + 5];
    s6 += a[i + 6] * b[i + 6];
    s7 += a[i + 7] * b[i + 7];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7));
}

// C rows [r0, r1) of C = A * B^T: each element is a dot of two contiguous
// rows.  j is tiled by 4 so a_i stays in registers across four B rows.
void gemm_nt_tile(const util::Matrix& a, const util::Matrix& b,
                  util::Matrix& c, std::span<const float> bias, Epilogue ep,
                  std::size_t r0, std::size_t r1) {
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  for (std::size_t i = r0; i < r1; ++i) {
    const float* __restrict__ ai = a.row(i).data();
    float* __restrict__ ci = c.row(i).data();
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      ci[j] = dot8(ai, b.row(j).data(), k);
      ci[j + 1] = dot8(ai, b.row(j + 1).data(), k);
      ci[j + 2] = dot8(ai, b.row(j + 2).data(), k);
      ci[j + 3] = dot8(ai, b.row(j + 3).data(), k);
    }
    for (; j < n; ++j) ci[j] = dot8(ai, b.row(j).data(), k);
    apply_epilogue(ci, n, bias.data(), ep);
  }
}

// C rows [r0, r1) of C (+)= alpha * A^T * B, axpy form over k: for each k,
// row k of B is scaled into the C rows owned by this tile.  k order fixed.
void gemm_tn_tile(const util::Matrix& a, const util::Matrix& b,
                  util::Matrix& c, float alpha, bool accumulate,
                  std::size_t r0, std::size_t r1) {
  const std::size_t k = a.rows();
  const std::size_t n = b.cols();
  for (std::size_t i = r0; i < r1; ++i) {
    if (!accumulate) {
      std::memset(c.row(i).data(), 0, n * sizeof(float));
    }
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* __restrict__ ak = a.row(kk).data();
    const float* __restrict__ bk = b.row(kk).data();
    for (std::size_t i = r0; i < r1; ++i) {
      const float w = alpha * ak[i];
      if (w == 0.0f) continue;
      float* __restrict__ ci = c.row(i).data();
      for (std::size_t j = 0; j < n; ++j) ci[j] += w * bk[j];
    }
  }
}

}  // namespace

KernelImpl active_impl() noexcept {
  static const KernelImpl impl = [] {
    if (const char* env = std::getenv("PHONOLID_KERNEL")) {
      if (std::strcmp(env, "generic") == 0) return KernelImpl::kGeneric;
    }
    return KernelImpl::kBlocked;
  }();
  return impl;
}

float sigmoid(float x) noexcept {
  if (x >= 0.0f) {
    return 1.0f / (1.0f + std::exp(-x));
  }
  const float e = std::exp(x);
  return e / (1.0f + e);
}

float dot(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  return dot8(a.data(), b.data(), a.size());
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  const float* __restrict__ xp = x.data();
  float* __restrict__ yp = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) yp[i] += alpha * xp[i];
}

void gemv(const util::Matrix& a, std::span<const float> x,
          std::span<float> out) noexcept {
  assert(x.size() == a.cols() && out.size() == a.rows());
  obs::Energy::charge_flops(2.0 * static_cast<double>(a.rows()) *
                            static_cast<double>(a.cols()));
  for (std::size_t r = 0; r < a.rows(); ++r) {
    out[r] = dot8(a.row(r).data(), x.data(), a.cols());
  }
}

void gemv_t(const util::Matrix& a, std::span<const float> x,
            std::span<float> out) noexcept {
  assert(x.size() == a.rows() && out.size() == a.cols());
  obs::Energy::charge_flops(2.0 * static_cast<double>(a.rows()) *
                            static_cast<double>(a.cols()));
  std::memset(out.data(), 0, out.size() * sizeof(float));
  for (std::size_t r = 0; r < a.rows(); ++r) {
    axpy(x[r], a.row(r), out);
  }
}

float sparse_dot(std::span<const std::uint32_t> idx, std::span<const float> val,
                 std::span<const float> dense) noexcept {
  const std::size_t nnz = idx.size();
  const std::uint32_t* __restrict__ ip = idx.data();
  const float* __restrict__ vp = val.data();
  const float* __restrict__ dp = dense.data();
  float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= nnz; i += 4) {
    s0 += vp[i] * dp[ip[i]];
    s1 += vp[i + 1] * dp[ip[i + 1]];
    s2 += vp[i + 2] * dp[ip[i + 2]];
    s3 += vp[i + 3] * dp[ip[i + 3]];
  }
  for (; i < nnz; ++i) s0 += vp[i] * dp[ip[i]];
  return (s0 + s1) + (s2 + s3);
}

void sparse_axpy(float alpha, std::span<const std::uint32_t> idx,
                 std::span<const float> val, std::span<float> dense) noexcept {
  const std::size_t nnz = idx.size();
  const std::uint32_t* __restrict__ ip = idx.data();
  const float* __restrict__ vp = val.data();
  float* __restrict__ dp = dense.data();
  for (std::size_t i = 0; i < nnz; ++i) dp[ip[i]] += alpha * vp[i];
}

// ---- reference implementations --------------------------------------------

namespace ref {

void gemm(const util::Matrix& a, const util::Matrix& b, util::Matrix& c) {
  check_gemm_shapes(a, b, a.cols(), b.rows(), "gemm");
  c.resize(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < a.cols(); ++kk) acc += a(i, kk) * b(kk, j);
      c(i, j) = acc;
    }
  }
}

void gemm_nt(const util::Matrix& a, const util::Matrix& b, util::Matrix& c,
             std::span<const float> bias, Epilogue ep) {
  check_gemm_shapes(a, b, a.cols(), b.cols(), "gemm_nt");
  c.resize(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < a.cols(); ++kk) acc += a(i, kk) * b(j, kk);
      c(i, j) = acc;
    }
    apply_epilogue(c.row(i).data(), b.rows(), bias.data(), ep);
  }
}

void gemm_tn(const util::Matrix& a, const util::Matrix& b, util::Matrix& c,
             float alpha, bool accumulate) {
  check_gemm_shapes(a, b, a.rows(), b.rows(), "gemm_tn");
  if (!accumulate) {
    c.resize(a.cols(), b.cols());
  } else if (c.rows() != a.cols() || c.cols() != b.cols()) {
    throw std::invalid_argument("gemm_tn: accumulate into mismatched C");
  }
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < a.rows(); ++kk) acc += a(kk, i) * b(kk, j);
      c(i, j) += alpha * acc;
    }
  }
}

}  // namespace ref

// ---- dispatchers -----------------------------------------------------------

void gemm(const util::Matrix& a, const util::Matrix& b, util::Matrix& c,
          util::ThreadPool* pool) {
  obs::Energy::charge_flops(2.0 * static_cast<double>(a.rows()) *
                            static_cast<double>(a.cols()) *
                            static_cast<double>(b.cols()));
  if (active_impl() == KernelImpl::kGeneric) {
    ref::gemm(a, b, c);
    return;
  }
  check_gemm_shapes(a, b, a.cols(), b.rows(), "gemm");
  c.resize(a.rows(), b.cols());
  const std::size_t flops = a.rows() * a.cols() * b.cols();
  for_each_row_tile(a.rows(), flops, pool, [&](std::size_t r0, std::size_t r1) {
    gemm_nn_tile(a, b, c, r0, r1);
  });
}

void gemm_nt(const util::Matrix& a, const util::Matrix& b, util::Matrix& c,
             std::span<const float> bias, Epilogue ep, util::ThreadPool* pool) {
  if (ep != Epilogue::kNone && bias.size() != b.rows()) {
    throw std::invalid_argument("gemm_nt: bias size mismatch");
  }
  obs::Energy::charge_flops(2.0 * static_cast<double>(a.rows()) *
                            static_cast<double>(a.cols()) *
                            static_cast<double>(b.rows()));
  if (active_impl() == KernelImpl::kGeneric) {
    ref::gemm_nt(a, b, c, bias, ep);
    return;
  }
  check_gemm_shapes(a, b, a.cols(), b.cols(), "gemm_nt");
  c.resize(a.rows(), b.rows());
  const std::size_t flops = a.rows() * a.cols() * b.rows();
  for_each_row_tile(a.rows(), flops, pool, [&](std::size_t r0, std::size_t r1) {
    gemm_nt_tile(a, b, c, bias, ep, r0, r1);
  });
}

void gemm_tn(const util::Matrix& a, const util::Matrix& b, util::Matrix& c,
             float alpha, bool accumulate, util::ThreadPool* pool) {
  obs::Energy::charge_flops(2.0 * static_cast<double>(a.rows()) *
                            static_cast<double>(a.cols()) *
                            static_cast<double>(b.cols()));
  if (active_impl() == KernelImpl::kGeneric) {
    ref::gemm_tn(a, b, c, alpha, accumulate);
    return;
  }
  check_gemm_shapes(a, b, a.rows(), b.rows(), "gemm_tn");
  if (!accumulate) {
    c.resize(a.cols(), b.cols());
  } else if (c.rows() != a.cols() || c.cols() != b.cols()) {
    throw std::invalid_argument("gemm_tn: accumulate into mismatched C");
  }
  const std::size_t flops = a.rows() * a.cols() * b.cols();
  for_each_row_tile(a.cols(), flops, pool, [&](std::size_t r0, std::size_t r1) {
    gemm_tn_tile(a, b, c, alpha, accumulate, r0, r1);
  });
}

}  // namespace phonolid::la
