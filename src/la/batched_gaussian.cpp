#include "la/batched_gaussian.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "la/kernels.h"
#include "util/math_util.h"

namespace phonolid::la {

namespace {
// Frames per GEMM block: bounds the [X | X^2] scratch to block * 2D floats
// regardless of utterance length.  Fixed, so blocking never changes
// results.
constexpr std::size_t kFrameBlock = 256;
}  // namespace

BatchedGaussians::Builder::Builder(std::size_t dim,
                                   std::size_t expected_components)
    : dim_(dim) {
  packed_.reserve(expected_components * 2 * dim);
  consts_.reserve(expected_components);
}

BatchedGaussians::Builder& BatchedGaussians::Builder::add(
    std::span<const float> mean, std::span<const float> var, float bias) {
  if (mean.size() != dim_ || var.size() != dim_) {
    throw std::invalid_argument("BatchedGaussians: component dim mismatch");
  }
  double log_det = 0.0;
  double mahal = 0.0;
  const std::size_t base = packed_.size();
  packed_.resize(base + 2 * dim_);
  for (std::size_t d = 0; d < dim_; ++d) {
    const double v = var[d];
    assert(v > 0.0);
    packed_[base + d] = static_cast<float>(mean[d] / v);
    packed_[base + dim_ + d] = static_cast<float>(-0.5 / v);
    log_det += std::log(v);
    mahal += static_cast<double>(mean[d]) * mean[d] / v;
  }
  consts_.push_back(static_cast<float>(
      static_cast<double>(bias) -
      0.5 * (static_cast<double>(dim_) * std::log(2.0 * std::numbers::pi) +
             log_det + mahal)));
  return *this;
}

BatchedGaussians BatchedGaussians::Builder::build() {
  BatchedGaussians out;
  out.dim_ = dim_;
  out.consts_ = std::move(consts_);
  out.packed_.resize(out.consts_.size(), 2 * dim_);
  std::copy(packed_.begin(), packed_.end(), out.packed_.data());
  return out;
}

void BatchedGaussians::score(const util::Matrix& frames, util::Matrix& out,
                             util::ThreadPool* pool) const {
  if (frames.cols() != dim_) {
    throw std::invalid_argument("BatchedGaussians::score: frame dim mismatch");
  }
  const std::size_t t_total = frames.rows();
  const std::size_t m = num_components();
  out.resize(t_total, m);
  util::Matrix extended(std::min(kFrameBlock, std::max<std::size_t>(t_total, 1)),
                        2 * dim_);
  util::Matrix block_scores;
  for (std::size_t t0 = 0; t0 < t_total; t0 += kFrameBlock) {
    const std::size_t t1 = std::min(t_total, t0 + kFrameBlock);
    const std::size_t bt = t1 - t0;
    extended.resize(bt, 2 * dim_);
    for (std::size_t t = 0; t < bt; ++t) {
      const float* __restrict__ x = frames.row(t0 + t).data();
      float* __restrict__ e = extended.row(t).data();
      for (std::size_t d = 0; d < dim_; ++d) {
        e[d] = x[d];
        e[dim_ + d] = x[d] * x[d];
      }
    }
    gemm_nt(extended, packed_, block_scores, {}, Epilogue::kNone, pool);
    for (std::size_t t = 0; t < bt; ++t) {
      const float* __restrict__ src = block_scores.row(t).data();
      float* __restrict__ dst = out.row(t0 + t).data();
      const float* __restrict__ k = consts_.data();
      for (std::size_t c = 0; c < m; ++c) dst[c] = src[c] + k[c];
    }
  }
}

void logsumexp_segments(std::span<const float> row,
                        std::span<const std::size_t> seg_begin,
                        std::span<float> out) noexcept {
  assert(seg_begin.size() == out.size() + 1);
  for (std::size_t s = 0; s + 1 < seg_begin.size(); ++s) {
    const std::size_t lo = seg_begin[s];
    const std::size_t hi = seg_begin[s + 1];
    out[s] = util::log_sum_exp(row.subspan(lo, hi - lo));
  }
}

}  // namespace phonolid::la
