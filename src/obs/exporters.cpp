#include "obs/exporters.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/energy.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "obs/profiler.h"

namespace phonolid::obs {

namespace {

// All events share one process; the constant keeps traces from separate
// runs mergeable by offsetting pid externally if ever needed.
constexpr int kTracePid = 1;

Json event_args(const TraceEvent& e) {
  Json args = Json::object();
  for (std::size_t i = 0; i < e.num_args; ++i) {
    args[e.args[i].key] = Json(e.args[i].value);
  }
  return args;
}

Json event_base(const char* phase, std::uint32_t tid, std::uint64_t ts_ns,
                const char* name) {
  Json ev = Json::object();
  ev["ph"] = Json(phase);
  ev["pid"] = Json(kTracePid);
  ev["tid"] = Json(tid);
  ev["ts"] = Json(static_cast<double>(ts_ns) / 1000.0);  // microseconds
  ev["name"] = Json(name);
  ev["cat"] = Json("phonolid");
  return ev;
}

}  // namespace

Json chrome_trace_json() {
  Json events = Json::array();
  for (const ThreadEvents& t : FlightRecorder::snapshot()) {
    Json meta = Json::object();
    meta["ph"] = Json("M");
    meta["pid"] = Json(kTracePid);
    meta["tid"] = Json(t.tid);
    meta["name"] = Json("thread_name");
    Json meta_args = Json::object();
    meta_args["name"] = Json(t.name);
    meta["args"] = std::move(meta_args);
    events.push_back(std::move(meta));

    // Names of spans whose begin is in the window but whose end has not
    // been seen yet; used to drop orphaned ends (begin lost to ring
    // wraparound) and to close still-open spans at export time.
    std::vector<const char*> open;
    std::uint64_t last_ts = 0;
    for (const TraceEvent& e : t.events) {
      last_ts = e.ts_ns;
      switch (e.phase) {
        case TraceEvent::Phase::kBegin: {
          events.push_back(event_base("B", t.tid, e.ts_ns, e.name));
          open.push_back(e.name);
          break;
        }
        case TraceEvent::Phase::kEnd: {
          if (open.empty()) break;  // matching begin was overwritten
          open.pop_back();
          Json ev = event_base("E", t.tid, e.ts_ns, e.name);
          if (e.num_args > 0) ev["args"] = event_args(e);
          events.push_back(std::move(ev));
          break;
        }
        case TraceEvent::Phase::kInstant: {
          Json ev = event_base("i", t.tid, e.ts_ns, e.name);
          ev["s"] = Json("t");  // thread-scoped instant
          if (e.num_args > 0) ev["args"] = event_args(e);
          events.push_back(std::move(ev));
          break;
        }
        case TraceEvent::Phase::kCounter: {
          Json ev = event_base("C", t.tid, e.ts_ns, e.name);
          Json args = Json::object();
          args["value"] = Json(e.value);
          ev["args"] = std::move(args);
          events.push_back(std::move(ev));
          break;
        }
      }
    }
    // Close spans still open at export time (e.g. the scope doing the
    // export), innermost first, so every "B" has a matching "E".
    while (!open.empty()) {
      events.push_back(event_base("E", t.tid, last_ts, open.back()));
      open.pop_back();
    }
  }
  Json doc = Json::object();
  doc["displayTimeUnit"] = Json("ms");
  doc["traceEvents"] = std::move(events);
  return doc;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_chrome_trace: cannot open '" + path + "'");
  }
  chrome_trace_json().dump(out);
  out << '\n';
  if (!out.good()) {
    throw std::runtime_error("write_chrome_trace: write failed for '" + path +
                             "'");
  }
}

namespace {

/// "decoder.lattices" -> "phonolid_decoder_lattices".
std::string prom_name(const std::string& name) {
  std::string out = "phonolid_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prom_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string prometheus_text() {
  // Each metric renders into one (exported name, block) pair; the blocks
  // are then sorted by name so the export is byte-stable regardless of the
  // metric kind or registration order — diffable across runs.
  std::vector<std::pair<std::string, std::string>> blocks;
  for (const auto& [name, value] : Metrics::counters()) {
    const std::string n = prom_name(name) + "_total";
    std::ostringstream out;
    out << "# TYPE " << n << " counter\n";
    out << n << ' ' << value << '\n';
    blocks.emplace_back(n, out.str());
  }
  for (const auto& [name, g] : Metrics::gauges()) {
    const std::string n = prom_name(name);
    std::ostringstream out;
    out << "# TYPE " << n << " gauge\n";
    out << n << ' ' << g.value << '\n';
    out << "# TYPE " << n << "_max gauge\n";
    out << n << "_max " << g.max << '\n';
    blocks.emplace_back(n, out.str());
  }
  for (const auto& [name, value] : Metrics::float_gauges()) {
    const std::string n = prom_name(name);
    std::ostringstream out;
    out << "# TYPE " << n << " gauge\n";
    out << n << ' ' << prom_number(value) << '\n';
    blocks.emplace_back(n, out.str());
  }
  for (const auto& [name, h] : Metrics::histograms()) {
    const std::string n = prom_name(name);
    std::ostringstream out;
    out << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      const std::string le =
          i < h.edges.size() ? prom_number(h.edges[i]) : "+Inf";
      out << n << "_bucket{le=\"" << le << "\"} " << cumulative << '\n';
    }
    out << n << "_sum " << prom_number(h.sum) << '\n';
    out << n << "_count " << h.count << '\n';
    blocks.emplace_back(n, out.str());
  }
  std::sort(blocks.begin(), blocks.end());
  std::string text;
  for (const auto& [name, block] : blocks) text += block;
  return text;
}

void write_prometheus(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_prometheus: cannot open '" + path + "'");
  }
  out << prometheus_text();
  if (!out.good()) {
    throw std::runtime_error("write_prometheus: write failed for '" + path +
                             "'");
  }
}

namespace {

/// A frame name inside a folded line must not contain the separators the
/// format assigns meaning to: ';' splits frames and the *last* space splits
/// the count off, so embedded newlines/semicolons are rewritten.
std::string folded_frame(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ';' || c == '\n' || c == '\r') c = ':';
  }
  return out;
}

}  // namespace

std::string folded_stacks_text() {
  const ProfileData data = Profiler::snapshot();
  // Byte-stable output: one line per aggregated stack, sorted by line text.
  std::vector<std::string> lines;
  lines.reserve(data.stacks.size());
  for (const ProfileStack& stack : data.stacks) {
    std::string line;
    // Span-path components become synthetic root frames, so the flamegraph
    // groups statistical stacks under the spans that ran them.
    if (!stack.span_path.empty()) {
      std::size_t begin = 0;
      while (begin <= stack.span_path.size()) {
        const std::size_t slash = stack.span_path.find('/', begin);
        const std::size_t end =
            slash == std::string::npos ? stack.span_path.size() : slash;
        line += "span:";
        line += folded_frame(stack.span_path.substr(begin, end - begin));
        line.push_back(';');
        if (slash == std::string::npos) break;
        begin = slash + 1;
      }
    }
    for (std::size_t i = 0; i < stack.frames.size(); ++i) {
      if (i > 0) line.push_back(';');
      line += folded_frame(stack.frames[i]);
    }
    line.push_back(' ');
    line += std::to_string(stack.count);
    line.push_back('\n');
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string text;
  for (const std::string& line : lines) text += line;
  return text;
}

void write_folded_stacks(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_folded_stacks: cannot open '" + path +
                             "'");
  }
  out << folded_stacks_text();
  if (!out.good()) {
    throw std::runtime_error("write_folded_stacks: write failed for '" +
                             path + "'");
  }
}

void enable_recorder_from_env() {
  // Counter and energy accounting are on for every entry point (they cost a
  // few relaxed atomics per span); only the flight recorder is gated on
  // PHONOLID_TRACE below.
  Perf::init_from_env();
  Energy::init_from_env();
  Profiler::init_from_env();
  const char* path = std::getenv("PHONOLID_TRACE");
  if (path == nullptr || *path == '\0') return;
  std::size_t capacity = 0;
  if (const char* cap = std::getenv("PHONOLID_TRACE_CAPACITY")) {
    const long long n = std::strtoll(cap, nullptr, 10);
    if (n > 0) capacity = static_cast<std::size_t>(n);
  }
  FlightRecorder::enable(capacity);
  FlightRecorder::set_thread_name("main");
}

void export_from_env() noexcept {
  // Stop the RAPL sampler (final sample included) and publish energy gauges
  // before any exporter snapshots the metrics registry.
  Energy::shutdown();
  try {
    Energy::publish_gauges();
  } catch (...) {
  }
  if (const char* path = std::getenv("PHONOLID_TRACE");
      path != nullptr && *path != '\0') {
    try {
      write_chrome_trace(path);
      std::fprintf(stderr, "phonolid: wrote Chrome trace to %s\n", path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "phonolid: trace export failed: %s\n", e.what());
    }
  }
  if (const char* path = std::getenv("PHONOLID_PROM");
      path != nullptr && *path != '\0') {
    try {
      write_prometheus(path);
      std::fprintf(stderr, "phonolid: wrote Prometheus metrics to %s\n", path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "phonolid: prometheus export failed: %s\n",
                   e.what());
    }
  }
  if (const char* path = std::getenv("PHONOLID_PROFILE_OUT");
      path != nullptr && *path != '\0') {
    Profiler::stop();  // quiesce sampling before the final drain
    try {
      write_folded_stacks(path);
      std::fprintf(stderr, "phonolid: wrote folded stacks to %s\n", path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "phonolid: folded-stack export failed: %s\n",
                   e.what());
    }
  }
}

}  // namespace phonolid::obs
