#include "obs/report.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/energy.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace phonolid::obs {

namespace {

/// Steady-clock reference for resource.wall_s.  Static initialization runs
/// within a millisecond or two of process start, which is plenty for a
/// whole-run wall-clock figure.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

}  // namespace

ResourceUsage current_resource_usage() noexcept {
  ResourceUsage u;
  u.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           g_process_start)
                 .count();
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    u.peak_rss_bytes = ru.ru_maxrss;  // bytes on macOS
#else
    u.peak_rss_bytes = ru.ru_maxrss * 1024;  // KiB on Linux
#endif
    u.user_cpu_s = static_cast<double>(ru.ru_utime.tv_sec) +
                   static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
    u.system_cpu_s = static_cast<double>(ru.ru_stime.tv_sec) +
                     static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
    u.voluntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nvcsw);
    u.involuntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nivcsw);
    u.valid = true;
  }
#endif
  return u;
}

namespace {

/// Process resource usage + flight-recorder health.  Peak RSS and CPU time
/// make "fast but fat" regressions visible in report-diff; the ring drop
/// counts surface silent event loss (a trace that quietly wrapped is worse
/// than no trace).
Json resource_json() {
  Json resource = Json::object();
  const ResourceUsage u = current_resource_usage();
  resource["wall_s"] = Json(u.wall_s);
  if (u.valid) {
    resource["peak_rss_bytes"] = Json(u.peak_rss_bytes);
    resource["user_cpu_s"] = Json(u.user_cpu_s);
    resource["system_cpu_s"] = Json(u.system_cpu_s);
    resource["voluntary_ctx_switches"] = Json(u.voluntary_ctx_switches);
    resource["involuntary_ctx_switches"] = Json(u.involuntary_ctx_switches);
  }
  std::uint64_t threads = 0, events = 0, dropped = 0;
  for (const ThreadEvents& t : FlightRecorder::snapshot()) {
    ++threads;
    events += t.events.size();
    dropped += t.dropped;
  }
  Json recorder = Json::object();
  recorder["enabled"] = Json(FlightRecorder::enabled());
  recorder["threads"] = Json(threads);
  recorder["events"] = Json(events);
  recorder["dropped_events"] = Json(dropped);
  resource["flight_recorder"] = std::move(recorder);
  return resource;
}

}  // namespace

std::string iso8601_utc_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const auto ms =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[96];  // covers snprintf's worst-case %d widths (format-truncation)
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

namespace {

/// Round a joule figure to 1 µJ so software-model reports are byte-stable
/// across thread counts (see Energy::energy_json).
double round_uj(double joules) {
  return std::round(joules * 1e6) / 1e6;
}

}  // namespace

Json build_report(const ReportMeta& meta, Json extra) {
  if (!extra.is_object()) {
    throw std::invalid_argument("build_report: extra must be an object");
  }
  // Fold energy totals into metrics.values before the registry snapshot so
  // the Prometheus exporter and the report agree.
  Energy::publish_gauges();
  Json doc = Json::object();
  doc["schema_version"] = Json(kReportSchemaVersion);
  doc["generated_at"] = Json(iso8601_utc_now());

  Json meta_obj = Json::object();
  meta_obj["tool"] = Json(meta.tool);
  meta_obj["command"] = Json(meta.command);
  meta_obj["scale"] = Json(meta.scale);
  meta_obj["seed"] = Json(meta.seed);
  meta_obj["threads"] = Json(meta.threads);
  doc["meta"] = std::move(meta_obj);

  Json counters = Json::object();
  for (const auto& [name, value] : Metrics::counters()) {
    counters[name] = Json(value);
  }
  Json gauges = Json::object();
  for (const auto& [name, g] : Metrics::gauges()) {
    Json entry = Json::object();
    entry["value"] = Json(g.value);
    entry["max"] = Json(g.max);
    gauges[name] = std::move(entry);
  }
  Json histograms = Json::object();
  for (const auto& [name, h] : Metrics::histograms()) {
    Json entry = Json::object();
    Json edges = Json::array();
    for (double e : h.edges) edges.push_back(Json(e));
    Json counts = Json::array();
    for (std::uint64_t c : h.counts) counts.push_back(Json(c));
    entry["edges"] = std::move(edges);
    entry["counts"] = std::move(counts);
    entry["count"] = Json(h.count);
    entry["sum"] = Json(h.sum);
    histograms[name] = std::move(entry);
  }
  Json values = Json::object();
  for (const auto& [name, value] : Metrics::float_gauges()) {
    values[name] = Json(value);
  }
  Json metrics = Json::object();
  metrics["counters"] = std::move(counters);
  metrics["gauges"] = std::move(gauges);
  metrics["values"] = std::move(values);
  metrics["histograms"] = std::move(histograms);
  doc["metrics"] = std::move(metrics);

  const std::map<std::string, double> span_joules = Energy::joules_by_span();
  Json spans = Json::array();
  for (const SpanSnapshot& s : Trace::snapshot()) {
    Json entry = Json::object();
    entry["path"] = Json(s.path);
    entry["count"] = Json(s.total.count);
    entry["total_s"] = Json(s.total.total_s);
    entry["cpu_s"] = Json(s.total.cpu_s);
    entry["mean_s"] = Json(s.total.count == 0
                               ? 0.0
                               : s.total.total_s /
                                     static_cast<double>(s.total.count));
    entry["min_s"] = Json(s.total.count == 0 ? 0.0 : s.total.min_s);
    entry["max_s"] = Json(s.total.max_s);
    if (const auto it = span_joules.find(s.path); it != span_joules.end()) {
      entry["joules"] = Json(round_uj(it->second));
    }
    if (s.total.hw.any()) {
      Json hw = Json::object();
      hw["cycles"] = Json(s.total.hw.cycles);
      hw["instructions"] = Json(s.total.hw.instructions);
      hw["llc_misses"] = Json(s.total.hw.llc_misses);
      hw["branch_misses"] = Json(s.total.hw.branch_misses);
      entry["hw"] = std::move(hw);
    }
    Json by_thread = Json::array();
    for (const auto& [thread, stats] : s.by_thread) {
      Json t = Json::object();
      t["thread"] = Json(thread);
      t["count"] = Json(stats.count);
      t["total_s"] = Json(stats.total_s);
      by_thread.push_back(std::move(t));
    }
    entry["by_thread"] = std::move(by_thread);
    spans.push_back(std::move(entry));
  }
  doc["spans"] = std::move(spans);
  doc["resource"] = resource_json();
  doc["energy"] = Energy::energy_json();
  doc["hw"] = Perf::hw_json();
  doc["profile"] = Profiler::profile_json();

  for (auto& [key, value] : extra.as_object()) {
    doc[key] = std::move(value);
  }
  return doc;
}

void write_report_file(const std::string& path, const Json& report) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_report_file: cannot open '" + path + "'");
  }
  report.dump(out);
  out << '\n';
  if (!out.good()) {
    throw std::runtime_error("write_report_file: write failed for '" + path +
                             "'");
  }
}

}  // namespace phonolid::obs
