// Event-level flight recorder: a bounded per-thread ring buffer of
// timestamped begin/end/instant/counter events.
//
// The aggregate span statistics in obs/trace.h answer "how much time went
// where"; the flight recorder answers "when, and in what order" — the
// question behind DBA-round convergence and thread-pool stall debugging.
// Recording is off by default: every emit site first does one relaxed
// atomic load and bails, so instrumented hot paths cost nothing in normal
// runs.  When enabled (PHONOLID_TRACE, `phonolid export`, or
// FlightRecorder::enable()), each thread appends fixed-size events to a
// private ring it alone writes; the ring's mutex is only ever contended by
// snapshot(), so steady-state recording is an uncontended lock plus a
// struct store.  The ring is bounded: once full it overwrites the oldest
// events (`dropped` counts them), so a trace of the last N events per
// thread survives arbitrarily long runs.
//
// Sources of events:
//   - every PHONOLID_SPAN (obs/trace.h) emits kBegin/kEnd around its scope,
//     so the whole already-instrumented pipeline gets timelines for free;
//   - PHONOLID_EVENT("name", "key", v, ...) emits an instant;
//   - PHONOLID_COUNTER_SAMPLE("name", value) emits a counter sample
//     (rendered as a counter track, e.g. thread-pool queue depth).
//
// Exporters (obs/exporters.h) turn a snapshot into Chrome trace-event JSON
// (Perfetto / chrome://tracing) or serve the metrics registry as
// Prometheus text.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phonolid::obs {

/// One optional key/value annotation attached to an event.  Keys must be
/// string literals (or otherwise outlive the recorder) — events store the
/// pointer, not a copy.
struct EventArg {
  const char* key = nullptr;
  std::int64_t value = 0;
};

inline constexpr std::size_t kMaxEventArgs = 2;

/// Fixed-size ring slot.  `name` must outlive the recorder (PHONOLID_SPAN /
/// PHONOLID_EVENT pass string literals).
struct TraceEvent {
  enum class Phase : std::uint8_t { kBegin, kEnd, kInstant, kCounter };

  Phase phase = Phase::kInstant;
  std::uint8_t num_args = 0;
  std::uint64_t ts_ns = 0;  // steady-clock time since the recorder epoch
  const char* name = nullptr;
  double value = 0.0;  // counter samples only
  EventArg args[kMaxEventArgs];
};

/// All retained events of one thread, oldest first.
struct ThreadEvents {
  std::uint32_t tid = 0;     // small sequential index (registration order)
  std::string name;          // set_thread_name(), else "thread-<tid>"
  std::uint64_t dropped = 0; // events overwritten by ring wraparound
  std::vector<TraceEvent> events;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 15;  // per thread

  /// Start recording.  `capacity_per_thread` bounds each thread's ring
  /// (0 = kDefaultCapacity); it applies to rings created after this call —
  /// existing rings keep their size.  Idempotent.
  static void enable(std::size_t capacity_per_thread = 0);
  /// Stop recording.  Retained events survive for snapshot()/export.
  static void disable() noexcept;
  [[nodiscard]] static bool enabled() noexcept;

  /// Drop every retained event (live and exited threads); keeps the
  /// enabled/disabled state and thread names.
  static void reset();

  /// Name the calling thread in exported traces (e.g. "pool-worker-3").
  /// Works while disabled, so threads can name themselves at startup.
  static void set_thread_name(std::string name);

  // Emit sites.  All are no-ops (one relaxed load) while disabled.
  static void begin(const char* name) noexcept;
  static void end(const char* name, const EventArg* args = nullptr,
                  std::size_t num_args = 0) noexcept;
  static void instant(const char* name) noexcept;
  static void instant(const char* name, const char* k1,
                      std::int64_t v1) noexcept;
  static void instant(const char* name, const char* k1, std::int64_t v1,
                      const char* k2, std::int64_t v2) noexcept;
  static void counter_sample(const char* name, double value) noexcept;

  /// Every thread that ever recorded an event (or set a name), sorted by
  /// tid; events oldest-to-newest.  Safe to call while other threads
  /// record — each sees a consistent per-thread prefix.
  [[nodiscard]] static std::vector<ThreadEvents> snapshot();
};

/// Emits an instant event: PHONOLID_EVENT("checkpoint"),
/// PHONOLID_EVENT("dba_round", "round", 2, "trdba", 1234).
#define PHONOLID_EVENT(...) \
  ::phonolid::obs::FlightRecorder::instant(__VA_ARGS__)
/// Emits a counter sample rendered as a counter track in trace viewers.
#define PHONOLID_COUNTER_SAMPLE(name, value) \
  ::phonolid::obs::FlightRecorder::counter_sample(name, value)

}  // namespace phonolid::obs
