// Hardware performance counters via perf_event_open (Linux).
//
// Two independent views over one fixed counter group — cycles, instructions,
// LLC references/misses, branches/branch misses:
//
//   - a *per-thread* counter group, opened lazily on first use and read at
//     span begin/end (obs/trace.h), so every PHONOLID_SPAN aggregates
//     hardware-counter deltas next to its wall/CPU time;
//   - a *process-wide* set of inheritable counters opened once at
//     Perf::init_from_env() on the main thread, whose totals feed the "hw"
//     report section (IPC, LLC miss rate, branch miss rate).
//
// Availability is probed exactly once: perf_event_open commonly fails with
// EACCES/EPERM (perf_event_paranoid, containers) or ENOSYS (non-Linux,
// seccomp).  When the probe fails every later call is a cheap no-op — spans
// record zero hardware deltas, hw_json() reports `"available": false` with
// the errno, and nothing else in the observability stack changes.  Counts
// are scaled by time_enabled/time_running, so PMU multiplexing (more groups
// than hardware slots) degrades precision, not correctness.
//
// PHONOLID_PERF=off disables the layer outright (no probe, no syscalls).
#pragma once

#include <cstdint>

#include "obs/json.h"

namespace phonolid::obs {

/// Cumulative (or delta) values of the fixed hardware counter group.
struct HwCounters {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_references = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branches = 0;
  std::uint64_t branch_misses = 0;

  void merge(const HwCounters& o) noexcept {
    cycles += o.cycles;
    instructions += o.instructions;
    llc_references += o.llc_references;
    llc_misses += o.llc_misses;
    branches += o.branches;
    branch_misses += o.branch_misses;
  }
  /// this - since, saturating at 0 per field (counters never run backwards,
  /// but multiplex scaling can jitter by a count or two).
  [[nodiscard]] HwCounters delta(const HwCounters& since) const noexcept {
    const auto sub = [](std::uint64_t a, std::uint64_t b) {
      return a > b ? a - b : 0;
    };
    HwCounters d;
    d.cycles = sub(cycles, since.cycles);
    d.instructions = sub(instructions, since.instructions);
    d.llc_references = sub(llc_references, since.llc_references);
    d.llc_misses = sub(llc_misses, since.llc_misses);
    d.branches = sub(branches, since.branches);
    d.branch_misses = sub(branch_misses, since.branch_misses);
    return d;
  }
  [[nodiscard]] bool any() const noexcept {
    return (cycles | instructions | llc_references | llc_misses | branches |
            branch_misses) != 0;
  }
};

class Perf {
 public:
  /// Probe availability and open the process-wide counters.  Honors
  /// PHONOLID_PERF=off.  Idempotent; called by every entry point via
  /// obs::enable_recorder_from_env().
  static void init_from_env();

  /// True when the probe succeeded and counters are live.
  [[nodiscard]] static bool available() noexcept;
  /// errno of the failed probe (0 when available or never probed).
  [[nodiscard]] static int unavailable_errno() noexcept;

  /// Read the calling thread's cumulative counter group (opened lazily on
  /// this thread's first call).  Returns false — leaving `out` untouched —
  /// when perf is unavailable.
  static bool read_thread(HwCounters& out) noexcept;

  /// Process-wide totals across all threads spawned after init_from_env().
  static bool read_process(HwCounters& out) noexcept;

  /// The "hw" report section: availability + process totals + derived
  /// ratios (ipc, llc_miss_rate, branch_miss_rate).
  [[nodiscard]] static Json hw_json();

  /// Test hook: force every perf_event_open to fail with `err` (pass 0 to
  /// restore normal probing).  Drops any already-open descriptors and
  /// re-runs the probe on the next init/read, so the EACCES/ENOSYS fallback
  /// paths are testable on machines where perf works.
  static void force_open_error_for_test(int err);
};

}  // namespace phonolid::obs
