// Structured JSON run reports.
//
// Every entry point (phonolid CLI commands, bench binaries, tests) emits the
// same schema, so BENCH_*.json trajectories and --report files are directly
// comparable:
//
//   {
//     "schema_version": 1,
//     "generated_at": "2026-08-06T12:34:56.789Z",
//     "meta":    { "tool": ..., "command": ..., ... },
//     "metrics": { "counters": {...}, "gauges": {...}, "values": {...},
//                  "histograms": {...} },
//     "spans":   [ { "path", "count", "total_s", "cpu_s", "mean_s", "min_s",
//                    "max_s", "by_thread": [{ "thread", "count",
//                    "total_s" }] } ],
//     "resource": { "wall_s", "peak_rss_bytes", "user_cpu_s", "system_cpu_s",
//                   "voluntary_ctx_switches", "involuntary_ctx_switches",
//                   "flight_recorder": { "enabled", "threads", "events",
//                                        "dropped_events" } },
//     "energy":  { "source": "rapl"|"software"|"off", "total_joules",
//                  "total_gflops", "gflops_per_watt", "joules_per_utterance",
//                  ...source-specific fields (obs/energy.h) },
//     "hw":      { "available", "source", "cycles", "instructions", "ipc",
//                  "llc_references", "llc_misses", "llc_miss_rate",
//                  "branches", "branch_misses", "branch_miss_rate" },
//     ...caller-provided extra sections (e.g. "dba", "results", "quality")...
//   }
//
// Spans additionally carry "joules" (when energy accounting attributed any
// to that path) and "hw" counter deltas (when perf counters are available).
//
// See DESIGN.md "Observability" for the full field reference.
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.h"

namespace phonolid::obs {

inline constexpr int kReportSchemaVersion = 1;

/// Common identification fields for the "meta" section.
struct ReportMeta {
  std::string tool;     // e.g. "phonolid" or "bench_table5_rtf"
  std::string command;  // e.g. "run"; empty for benches
  std::string scale;
  std::uint64_t seed = 0;
  std::size_t threads = 0;
};

/// Process resource usage, as reported under the report's "resource"
/// section.  `wall_s` is measured from static initialization; the rusage
/// fields are zero with valid == false where getrusage is unavailable.
struct ResourceUsage {
  double wall_s = 0.0;
  std::int64_t peak_rss_bytes = 0;
  double user_cpu_s = 0.0;
  double system_cpu_s = 0.0;
  std::uint64_t voluntary_ctx_switches = 0;
  std::uint64_t involuntary_ctx_switches = 0;
  bool valid = false;
};

/// Sample the current process resource usage (also used by `phonolid diag`).
[[nodiscard]] ResourceUsage current_resource_usage() noexcept;

/// Current UTC time as ISO-8601 with millisecond precision ("...Z").
std::string iso8601_utc_now();

/// Snapshot the metrics and trace registries into a full report document.
/// `extra` must be an object; its fields are appended at the top level.
Json build_report(const ReportMeta& meta, Json extra = Json::object());

/// Serialize `report` to `path` (pretty-printed, trailing newline).
/// Throws std::runtime_error when the file cannot be written.
void write_report_file(const std::string& path, const Json& report);

}  // namespace phonolid::obs
