// Structural comparison of two schema-v1 run reports (obs/report.h).
//
// Turns the committed BENCH_*.json trajectory into an enforced regression
// signal: `phonolid report-diff baseline.json current.json` prints a delta
// table over span means, counters, and the results section (EER/Cavg), and
// the caller exits nonzero when a configured threshold is violated.
//
// Gating semantics:
//   - span means gate on relative regression: a span whose baseline mean is
//     at least `min_span_s` and whose current mean grew by more than
//     `max_regress_pct` percent is a violation (negative deltas — speedups —
//     never violate).  Spans below `min_span_s` are reported but not gated;
//     sub-10ms means are timer noise, not signal.
//   - numeric leaves under "results" and "quality" named "eer" or "cavg"
//     gate on absolute regression: current - baseline > max_eer_delta
//     (cavg leaves prefer max_cavg_delta when set, falling back to
//     max_eer_delta) is a violation (improvements never violate).  Values
//     are fractions, so 0.02 = 2 percentage points.
//   - "quality" leaves named "cllr" / "min_cllr" gate on absolute increase
//     via max_cllr_delta; adoption "precision" leaves gate on absolute
//     *drop* (baseline - current) via max_adoption_precision_drop.  The
//     bulky quality subtrees (det, histogram, confusion) are not diffed.
//   - counters are compared and reported when they differ but never gate:
//     they are deterministic diagnostics (e.g. thread counts legitimately
//     change threadpool.* volume across machines).
//   - "resource" leaves (peak RSS, CPU time, recorder drops) are reported
//     when they differ but never gate — they vary across machines.
//   - "profile" share leaves (per-function self/total sample shares, per-
//     span sample shares from the sampling CPU profiler) are compared by
//     *name*, and function self_share leaves gate on absolute increase via
//     max_self_share_delta; raw sample counts are report-only.  Nonzero
//     flight-recorder or profiler drop counts on either side are surfaced
//     as warning notes — a truncated trace or profile must not pass a gate
//     silently.
//   - "energy" leaves gate on relative increase: total_joules and
//     joules-per-utterance leaves growing by more than max_energy_delta_pct
//     percent are violations; other energy leaves (and everything under
//     "hw") are report-only.  A differing energy.source is a note, since
//     RAPL joules and software-model joules are not comparable.
//   - "serve" leaves (emitted by bench_serve) are compared numerically;
//     serve/latency_ms/p99 gates on relative *growth* via
//     max_serve_p99_regress_pct, serve/throughput_rps gates on relative
//     *drop* via max_serve_throughput_drop_pct, and the per-phase
//     serve/phases/*/p99 + p999 leaves gate on relative growth via
//     max_phase_p99_regress_pct.  Everything else in the
//     section (shed counts, connection counts) is report-only.
//   - a schema_version mismatch between the two documents is itself a
//     violation (the comparison would be meaningless).
//   - sections/keys present on only one side are reported as notes, never
//     violations, so reports from different commands stay comparable.
//     Top-level sections this tool does not understand (added by newer
//     binaries) are likewise surfaced as notes and skipped, never errors —
//     an old report-diff must not reject a new report outright.
//
// Thresholds set to a negative value (the default) disable that gate, so a
// bare `report-diff a.json b.json` is a pure inspection tool that always
// exits 0.
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"

namespace phonolid::obs {

struct ReportDiffOptions {
  /// Max allowed span-mean growth in percent; negative = don't gate timing.
  double max_regress_pct = -1.0;
  /// Max allowed absolute EER/Cavg increase; negative = don't gate accuracy.
  double max_eer_delta = -1.0;
  /// Max allowed absolute Cavg increase; negative = fall back to
  /// max_eer_delta for cavg leaves (backward compatible).
  double max_cavg_delta = -1.0;
  /// Max allowed absolute Cllr / min-Cllr increase on "quality" leaves;
  /// negative = don't gate calibration.
  double max_cllr_delta = -1.0;
  /// Max allowed absolute drop (baseline - current) of adoption precision
  /// leaves under "quality"; negative = don't gate adoption.
  double max_adoption_precision_drop = -1.0;
  /// Max allowed relative increase (percent) of energy/total_joules and the
  /// per-utterance joule leaves; negative = don't gate energy.  Meaningful
  /// when both reports used the same energy source (the diff notes a source
  /// mismatch); software-model joules are deterministic, so a tight
  /// threshold (~1%) works in CI.
  double max_energy_delta_pct = -1.0;
  /// Max allowed absolute increase of a function's profile self-time share
  /// (profile/functions/<name>/self_share, a 0..1 fraction of all samples);
  /// negative = don't gate the profile.  Raw sample counts are
  /// machine-dependent and never gate; only shares of the same function on
  /// both sides do, and a missing "profile" section stays a note, so old
  /// baselines diff clean.
  double max_self_share_delta = -1.0;
  /// Max allowed relative growth (percent) of serve/latency_ms/p99 from a
  /// bench_serve report; negative = don't gate serving latency.  Bucketed
  /// p99 on a loaded daemon is noisy, so CI thresholds should be generous
  /// (hundreds of percent) — the gate exists to catch order-of-magnitude
  /// regressions, not jitter.
  double max_serve_p99_regress_pct = -1.0;
  /// Max allowed relative *drop* (percent, baseline -> current) of
  /// serve/throughput_rps; negative = don't gate serving throughput.
  double max_serve_throughput_drop_pct = -1.0;
  /// Max allowed relative growth (percent) of the per-phase percentiles
  /// serve/phases/<phase>/p99 and .../p999 (phase ∈ queue_wait_ms,
  /// batch_wait_ms, compute_ms, write_ms); negative = don't gate phases.
  /// Gating per phase is what separates a queue-wait regression (admission
  /// or batching bug) from a compute regression (kernel slowdown).  Phase
  /// percentiles are bucket-edge estimates on sub-millisecond buckets, so
  /// deltas under 1 ms never violate regardless of their relative size.
  double max_phase_p99_regress_pct = -1.0;
  /// Spans with a baseline mean below this (seconds) are never gated.
  double min_span_s = 0.01;
};

struct ReportDiffRow {
  std::string kind;  // "span" | "counter" | "result" | "quality" |
                     // "resource" | "energy" | "hw" | "profile" | "serve"
  std::string key;   // span path, counter name, or results/...-style path
  double base = 0.0;
  double cur = 0.0;
  bool gated = false;      // a threshold was applied to this row
  bool violation = false;  // ... and it fired
  std::string gate;        // gate name when gated (e.g. "max-eer-delta")
  double threshold = 0.0;  // the threshold that was applied when gated
};

struct ReportDiffResult {
  std::vector<ReportDiffRow> rows;
  std::vector<std::string> notes;  // added/removed keys, schema issues
  bool violated = false;

  /// Human-readable delta table (rows that changed, notes, verdict line).
  [[nodiscard]] std::string format() const;
};

/// Compare two parsed schema-v1 reports.  Never throws on missing
/// sections — absent pieces become notes.
[[nodiscard]] ReportDiffResult diff_reports(const Json& baseline,
                                            const Json& current,
                                            const ReportDiffOptions& options = {});

}  // namespace phonolid::obs
