#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace phonolid::obs {

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)) {
  if (edges_.empty()) {
    throw std::invalid_argument("Histogram: need at least one bucket edge");
  }
  if (!std::is_sorted(edges_.begin(), edges_.end())) {
    throw std::invalid_argument("Histogram: edges must be sorted ascending");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(edges_.size() + 1);
  for (std::size_t i = 0; i <= edges_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  // First edge >= v; values above every edge land in the overflow bucket.
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), v) - edges_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= edges_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Metrics& Metrics::instance() {
  // Leaked on purpose: worker threads may record metrics during static
  // destruction (e.g. while the global thread pool joins), so the registry
  // must outlive every other static.
  static Metrics* metrics = new Metrics();
  return *metrics;
}

Counter& Metrics::counter(const std::string& name) {
  Metrics& m = instance();
  std::lock_guard lock(m.mutex_);
  auto& slot = m.counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name) {
  Metrics& m = instance();
  std::lock_guard lock(m.mutex_);
  auto& slot = m.gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

FloatGauge& Metrics::float_gauge(const std::string& name) {
  Metrics& m = instance();
  std::lock_guard lock(m.mutex_);
  auto& slot = m.float_gauges_[name];
  if (!slot) slot = std::make_unique<FloatGauge>();
  return *slot;
}

Histogram& Metrics::histogram(const std::string& name,
                              const std::vector<double>& upper_edges) {
  Metrics& m = instance();
  std::lock_guard lock(m.mutex_);
  auto& slot = m.histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(upper_edges);
  } else if (slot->edges() != upper_edges) {
    throw std::invalid_argument("Metrics::histogram: edge mismatch for '" +
                                name + "'");
  }
  return *slot;
}

std::map<std::string, std::uint64_t> Metrics::counters() {
  Metrics& m = instance();
  std::lock_guard lock(m.mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : m.counters_) out[name] = c->value();
  return out;
}

std::map<std::string, GaugeSnapshot> Metrics::gauges() {
  Metrics& m = instance();
  std::lock_guard lock(m.mutex_);
  std::map<std::string, GaugeSnapshot> out;
  for (const auto& [name, g] : m.gauges_) {
    out[name] = GaugeSnapshot{g->value(), g->max()};
  }
  return out;
}

std::map<std::string, double> Metrics::float_gauges() {
  Metrics& m = instance();
  std::lock_guard lock(m.mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : m.float_gauges_) out[name] = g->value();
  return out;
}

std::map<std::string, HistogramSnapshot> Metrics::histograms() {
  Metrics& m = instance();
  std::lock_guard lock(m.mutex_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : m.histograms_) {
    HistogramSnapshot snap;
    snap.edges = h->edges();
    snap.counts.resize(h->num_buckets());
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      snap.counts[i] = h->bucket_count(i);
    }
    snap.count = h->total_count();
    snap.sum = h->sum();
    out[name] = std::move(snap);
  }
  return out;
}

void Metrics::reset() {
  Metrics& m = instance();
  std::lock_guard lock(m.mutex_);
  for (auto& [name, c] : m.counters_) c->reset();
  for (auto& [name, g] : m.gauges_) g->reset();
  for (auto& [name, g] : m.float_gauges_) g->reset();
  for (auto& [name, h] : m.histograms_) h->reset();
}

}  // namespace phonolid::obs
