#include "obs/trace.h"

#include <algorithm>
#include <ctime>
#include <mutex>
#include <unordered_map>

namespace phonolid::obs {

namespace {

/// Calling thread's CPU time in seconds (0 where the clock is unavailable).
double thread_cpu_seconds() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

/// Per-thread span state.  The table mutex is only ever contended by
/// snapshot()/reset() — the owning thread takes it uncontended on each span
/// exit, which on Linux is a couple of uncontended atomic ops.
struct ThreadTable {
  std::mutex mutex;
  std::unordered_map<std::string, SpanStats> stats;
  std::string path;    // '/'-joined stack of active span names
  std::uint32_t index = 0;

  ~ThreadTable();
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<ThreadTable*> live;
  /// Stats of exited threads, keyed by (path, thread index).
  std::map<std::pair<std::string, std::uint32_t>, SpanStats> retired;
  std::uint32_t next_index = 0;
};

TraceRegistry& registry() {
  // Leaked on purpose: pool worker threads flush their tables here when they
  // exit, which can happen during static destruction.
  static TraceRegistry* reg = new TraceRegistry();
  return *reg;
}

ThreadTable::~ThreadTable() {
  TraceRegistry& reg = registry();
  std::lock_guard reg_lock(reg.mutex);
  std::lock_guard lock(mutex);
  for (auto& [path, s] : stats) {
    reg.retired[{path, index}].merge(s);
  }
  std::erase(reg.live, this);
}

ThreadTable& thread_table() {
  thread_local ThreadTable t;
  thread_local bool registered = [] {
    TraceRegistry& reg = registry();
    std::lock_guard lock(reg.mutex);
    t.index = reg.next_index++;
    reg.live.push_back(&t);
    return true;
  }();
  (void)registered;
  return t;
}

}  // namespace

Span::Span(const char* name) noexcept : name_(name) {
  ThreadTable& t = thread_table();
  parent_len_ = t.path.size();
  if (!t.path.empty()) t.path.push_back('/');
  t.path.append(name);
  FlightRecorder::begin(name);
  cpu_start_s_ = thread_cpu_seconds();
  start_ = std::chrono::steady_clock::now();
}

double Span::stop() noexcept {
  if (stopped_) return 0.0;
  stopped_ = true;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double cpu_seconds =
      std::max(0.0, thread_cpu_seconds() - cpu_start_s_);
  FlightRecorder::end(name_, args_, num_args_);
  ThreadTable& t = thread_table();
  {
    std::lock_guard lock(t.mutex);
    t.stats[t.path].record(seconds, cpu_seconds);
  }
  t.path.resize(parent_len_);
  return seconds;
}

void Span::annotate(const char* key, std::int64_t value) noexcept {
  if (num_args_ < kMaxEventArgs) {
    args_[num_args_] = EventArg{key, value};
    ++num_args_;
  }
}

Span::~Span() { stop(); }

std::vector<SpanSnapshot> Trace::snapshot() {
  TraceRegistry& reg = registry();
  std::map<std::string, SpanSnapshot> merged;
  const auto absorb = [&merged](const std::string& path, std::uint32_t thread,
                                const SpanStats& s) {
    SpanSnapshot& snap = merged[path];
    snap.path = path;
    snap.total.merge(s);
    snap.by_thread[thread].merge(s);
  };
  std::lock_guard reg_lock(reg.mutex);
  for (ThreadTable* t : reg.live) {
    std::lock_guard lock(t->mutex);
    for (const auto& [path, s] : t->stats) absorb(path, t->index, s);
  }
  for (const auto& [key, s] : reg.retired) absorb(key.first, key.second, s);

  std::vector<SpanSnapshot> out;
  out.reserve(merged.size());
  for (auto& [path, snap] : merged) out.push_back(std::move(snap));
  return out;
}

void Trace::reset() {
  TraceRegistry& reg = registry();
  std::lock_guard reg_lock(reg.mutex);
  for (ThreadTable* t : reg.live) {
    std::lock_guard lock(t->mutex);
    t->stats.clear();
  }
  reg.retired.clear();
}

}  // namespace phonolid::obs
