#include "obs/trace.h"

#include "obs/profiler.h"

#include <algorithm>
#include <ctime>
#include <mutex>
#include <unordered_map>

#if defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#endif

namespace phonolid::obs {

namespace {

/// Calling thread's CPU time in seconds (0 where the clock is unavailable).
double thread_cpu_seconds() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

/// Per-thread span state.  The table mutex is only ever contended by
/// snapshot()/reset() and the energy sampler — the owning thread takes it
/// uncontended on each span enter/exit, which on Linux is a couple of
/// uncontended atomic ops.  `path` is written by the owner and read by
/// Trace::active_threads(), so both sides hold the mutex.
struct ThreadTable {
  std::mutex mutex;
  std::unordered_map<std::string, SpanStats> stats;
  std::string path;    // '/'-joined stack of active span names
  std::uint32_t index = 0;
#if defined(__unix__) || defined(__APPLE__)
  pthread_t handle{};
#endif

  ~ThreadTable();
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<ThreadTable*> live;
  /// Stats of exited threads, keyed by (path, thread index).
  std::map<std::pair<std::string, std::uint32_t>, SpanStats> retired;
  std::uint32_t next_index = 0;
};

TraceRegistry& registry() {
  // Leaked on purpose: pool worker threads flush their tables here when they
  // exit, which can happen during static destruction.
  static TraceRegistry* reg = new TraceRegistry();
  return *reg;
}

ThreadTable::~ThreadTable() {
  TraceRegistry& reg = registry();
  std::lock_guard reg_lock(reg.mutex);
  std::lock_guard lock(mutex);
  for (auto& [span_path, s] : stats) {
    reg.retired[{span_path, index}].merge(s);
  }
  std::erase(reg.live, this);
}

ThreadTable& thread_table() {
  thread_local ThreadTable t;
  thread_local bool registered = [] {
    TraceRegistry& reg = registry();
    std::lock_guard lock(reg.mutex);
    t.index = reg.next_index++;
#if defined(__unix__) || defined(__APPLE__)
    t.handle = pthread_self();
#endif
    reg.live.push_back(&t);
    return true;
  }();
  (void)registered;
  return t;
}

}  // namespace

Span::Span(const char* name) noexcept : name_(name) {
  ThreadTable& t = thread_table();
  parent_len_ = t.path.size();
  {
    std::lock_guard lock(t.mutex);
    if (!t.path.empty()) t.path.push_back('/');
    t.path.append(name);
  }
  Profiler::on_span_enter(name);
  FlightRecorder::begin(name);
  hw_valid_ = Perf::read_thread(hw_start_);
  cpu_start_s_ = thread_cpu_seconds();
  start_ = std::chrono::steady_clock::now();
}

double Span::stop() noexcept {
  if (stopped_) return 0.0;
  stopped_ = true;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double cpu_seconds =
      std::max(0.0, thread_cpu_seconds() - cpu_start_s_);
  HwCounters hw_now;
  HwCounters hw_delta;
  const bool hw_ok = hw_valid_ && Perf::read_thread(hw_now);
  if (hw_ok) hw_delta = hw_now.delta(hw_start_);
  FlightRecorder::end(name_, args_, num_args_);
  Profiler::on_span_exit();
  ThreadTable& t = thread_table();
  {
    std::lock_guard lock(t.mutex);
    t.stats[t.path].record(seconds, cpu_seconds,
                           hw_ok ? &hw_delta : nullptr);
    t.path.resize(parent_len_);
  }
  return seconds;
}

void Span::annotate(const char* key, std::int64_t value) noexcept {
  if (num_args_ < kMaxEventArgs) {
    args_[num_args_] = EventArg{key, value};
    ++num_args_;
  }
}

Span::~Span() { stop(); }

std::vector<SpanSnapshot> Trace::snapshot() {
  TraceRegistry& reg = registry();
  std::map<std::string, SpanSnapshot> merged;
  const auto absorb = [&merged](const std::string& path, std::uint32_t thread,
                                const SpanStats& s) {
    SpanSnapshot& snap = merged[path];
    snap.path = path;
    snap.total.merge(s);
    snap.by_thread[thread].merge(s);
  };
  std::lock_guard reg_lock(reg.mutex);
  for (ThreadTable* t : reg.live) {
    std::lock_guard lock(t->mutex);
    for (const auto& [path, s] : t->stats) absorb(path, t->index, s);
  }
  for (const auto& [key, s] : reg.retired) absorb(key.first, key.second, s);

  std::vector<SpanSnapshot> out;
  out.reserve(merged.size());
  for (auto& [path, snap] : merged) out.push_back(std::move(snap));
  return out;
}

const std::string& Trace::current_thread_path() noexcept {
  return thread_table().path;
}

std::vector<ActiveThread> Trace::active_threads() {
  TraceRegistry& reg = registry();
  std::vector<ActiveThread> out;
  std::lock_guard reg_lock(reg.mutex);
  out.reserve(reg.live.size());
  for (ThreadTable* t : reg.live) {
    ActiveThread a;
    a.index = t->index;
    {
      std::lock_guard lock(t->mutex);
      a.path = t->path;
    }
#if defined(__unix__) && defined(CLOCK_THREAD_CPUTIME_ID)
    clockid_t cid;
    timespec ts{};
    if (pthread_getcpuclockid(t->handle, &cid) == 0 &&
        clock_gettime(cid, &ts) == 0) {
      a.cpu_s = static_cast<double>(ts.tv_sec) +
                static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    out.push_back(std::move(a));
  }
  return out;
}

void Trace::reset() {
  TraceRegistry& reg = registry();
  std::lock_guard reg_lock(reg.mutex);
  for (ThreadTable* t : reg.live) {
    std::lock_guard lock(t->mutex);
    t->stats.clear();
  }
  reg.retired.clear();
}

}  // namespace phonolid::obs
