// Minimal JSON document model for run reports: build, serialize, parse.
//
// Objects preserve insertion order so reports are stable and diffable.
// Non-finite doubles serialize as null (JSON has no NaN/Inf).  The parser
// accepts exactly the documents the emitter produces (standard JSON with
// UTF-8 passed through verbatim); it exists so tests and downstream tools
// can round-trip reports without an external dependency.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace phonolid::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(int i) : v_(static_cast<std::int64_t>(i)) {}
  Json(long i) : v_(static_cast<std::int64_t>(i)) {}
  Json(long long i) : v_(static_cast<std::int64_t>(i)) {}
  Json(unsigned u) : v_(static_cast<std::int64_t>(u)) {}
  Json(unsigned long u) : v_(static_cast<std::int64_t>(u)) {}
  Json(unsigned long long u) : v_(static_cast<std::int64_t>(u)) {}
  Json(double d) : v_(d) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  /// Numeric value as double (works for both int and double nodes).
  [[nodiscard]] double as_double() const {
    return is_int() ? static_cast<double>(std::get<std::int64_t>(v_))
                    : std::get<double>(v_);
  }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(v_); }
  [[nodiscard]] Array& as_array() { return std::get<Array>(v_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(v_); }
  [[nodiscard]] Object& as_object() { return std::get<Object>(v_); }

  /// Object field access; appends the key if absent (object nodes only).
  Json& operator[](const std::string& key);
  /// Read-only lookup: nullptr when missing or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;

  void push_back(Json v) { as_array().push_back(std::move(v)); }

  void dump(std::ostream& out, int indent = 2) const;
  [[nodiscard]] std::string dump_string(int indent = 2) const;

  /// Parse a complete JSON document; throws std::runtime_error with a byte
  /// offset on malformed input.
  static Json parse(const std::string& text);

 private:
  void dump_impl(std::ostream& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      v_;
};

}  // namespace phonolid::obs
