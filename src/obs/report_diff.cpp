#include "obs/report_diff.h"

#include <cstdio>
#include <initializer_list>
#include <map>
#include <set>
#include <sstream>
#include <string>

namespace phonolid::obs {

namespace {

std::map<std::string, double> span_means(const Json& report) {
  std::map<std::string, double> out;
  const Json* spans = report.find("spans");
  if (spans == nullptr || !spans->is_array()) return out;
  for (const Json& s : spans->as_array()) {
    const Json* path = s.find("path");
    const Json* mean = s.find("mean_s");
    if (path != nullptr && path->is_string() && mean != nullptr &&
        mean->is_number()) {
      out[path->as_string()] = mean->as_double();
    }
  }
  return out;
}

std::map<std::string, double> counter_values(const Json& report) {
  std::map<std::string, double> out;
  const Json* metrics = report.find("metrics");
  const Json* counters =
      metrics == nullptr ? nullptr : metrics->find("counters");
  if (counters == nullptr || !counters->is_object()) return out;
  for (const auto& [name, v] : counters->as_object()) {
    if (v.is_number()) out[name] = v.as_double();
  }
  return out;
}

/// Flatten every numeric leaf under "results" into "results/a/b"-style keys
/// (array elements indexed numerically), so reports from any command
/// compare structurally.
void collect_numeric_leaves(const Json& node, const std::string& prefix,
                            std::map<std::string, double>& out) {
  if (node.is_object()) {
    for (const auto& [key, value] : node.as_object()) {
      collect_numeric_leaves(value, prefix + "/" + key, out);
    }
  } else if (node.is_array()) {
    const auto& arr = node.as_array();
    for (std::size_t i = 0; i < arr.size(); ++i) {
      collect_numeric_leaves(arr[i], prefix + "/" + std::to_string(i), out);
    }
  } else if (node.is_number()) {
    out[prefix] = node.as_double();
  }
}

std::map<std::string, double> result_leaves(const Json& report) {
  std::map<std::string, double> out;
  const Json* results = report.find("results");
  if (results != nullptr) collect_numeric_leaves(*results, "results", out);
  return out;
}

/// Scalar + per-language/per-round "quality" leaves.  The bulky subtrees
/// (DET staircase, histograms, confusion counts) are deliberately not
/// diffed — they change shape freely and gating happens on the derived
/// scalars instead.
std::map<std::string, double> quality_leaves(const Json& report) {
  std::map<std::string, double> out;
  const Json* quality = report.find("quality");
  if (quality == nullptr || !quality->is_object()) return out;
  for (const auto& [key, value] : quality->as_object()) {
    if (key == "det" || key == "histogram" || key == "confusion") continue;
    collect_numeric_leaves(value, "quality/" + key, out);
  }
  return out;
}

std::map<std::string, double> resource_leaves(const Json& report) {
  std::map<std::string, double> out;
  const Json* resource = report.find("resource");
  if (resource != nullptr) collect_numeric_leaves(*resource, "resource", out);
  return out;
}

std::map<std::string, double> section_leaves(const Json& report,
                                             const std::string& section) {
  std::map<std::string, double> out;
  const Json* node = report.find(section);
  if (node != nullptr) collect_numeric_leaves(*node, section, out);
  return out;
}

/// The "energy" leaves that --max-energy-delta-pct gates; everything else
/// in the section (gflops, watts, sampler stats) is report-only.
bool is_gated_energy_leaf(const std::string& key) {
  return key == "energy/total_joules" || key == "energy/joules_per_utterance" ||
         key == "energy/joules_per_test_utterance";
}

const char* energy_source(const Json& report) {
  const Json* energy = report.find("energy");
  const Json* source = energy == nullptr ? nullptr : energy->find("source");
  return source != nullptr && source->is_string() ? source->as_string().c_str()
                                                  : nullptr;
}

/// Flatten the "profile" section's *share* leaves, keyed by function name /
/// span path rather than array index so the comparison is stable when the
/// top-N ordering shifts between runs.  Raw sample counts are machine- and
/// duration-dependent, so only the section scalars that are meaningful to
/// compare (hz, symbolized_share) and the 0..1 share leaves are emitted.
std::map<std::string, double> profile_leaves(const Json& report) {
  std::map<std::string, double> out;
  const Json* profile = report.find("profile");
  if (profile == nullptr || !profile->is_object()) return out;
  for (const char* key : {"hz", "symbolized_share"}) {
    if (const Json* v = profile->find(key); v != nullptr && v->is_number()) {
      out[std::string("profile/") + key] = v->as_double();
    }
  }
  if (const Json* functions = profile->find("functions");
      functions != nullptr && functions->is_array()) {
    for (const Json& fn : functions->as_array()) {
      const Json* name = fn.find("name");
      if (name == nullptr || !name->is_string()) continue;
      const std::string prefix = "profile/functions/" + name->as_string();
      for (const char* key : {"self_share", "total_share"}) {
        if (const Json* v = fn.find(key); v != nullptr && v->is_number()) {
          out[prefix + "/" + key] = v->as_double();
        }
      }
    }
  }
  if (const Json* spans = profile->find("spans");
      spans != nullptr && spans->is_array()) {
    for (const Json& span : spans->as_array()) {
      const Json* path = span.find("path");
      const Json* share = span.find("share");
      if (path != nullptr && path->is_string() && share != nullptr &&
          share->is_number()) {
        out["profile/spans/" + path->as_string() + "/share"] =
            share->as_double();
      }
    }
  }
  return out;
}

/// A numeric leaf fetched by path, or 0 when absent/non-numeric.
double numeric_at(const Json& report,
                  std::initializer_list<const char*> path) {
  const Json* node = &report;
  for (const char* key : path) {
    node = node->is_object() ? node->find(key) : nullptr;
    if (node == nullptr) return 0.0;
  }
  return node->is_number() ? node->as_double() : 0.0;
}

/// Nonzero ring-drop counts mean the trace/profile under comparison is
/// incomplete; say so loudly instead of letting a truncated run pass a gate.
void note_drops(const Json& report, const char* side,
                ReportDiffResult& result) {
  const double recorder_drops =
      numeric_at(report, {"resource", "flight_recorder", "dropped_events"});
  if (recorder_drops > 0) {
    result.notes.push_back(
        "WARNING: " + std::string(side) + " dropped " +
        std::to_string(static_cast<long long>(recorder_drops)) +
        " flight-recorder events — its trace is truncated");
  }
  const double profile_drops = numeric_at(report, {"profile", "dropped"});
  if (profile_drops > 0) {
    result.notes.push_back(
        "WARNING: " + std::string(side) + " dropped " +
        std::to_string(static_cast<long long>(profile_drops)) +
        " profiler samples — its profile is incomplete");
  }
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Absolute floor under the serve/phases/*/p99[9] gate: the phase
/// histograms have 0.1 ms buckets, so a one-bucket wobble is a huge
/// relative change on a fast phase; require the regression to also exceed
/// this many milliseconds before it can violate.
constexpr double kPhaseP99SlackMs = 1.0;

/// Forward compatibility: a newer binary may emit top-level sections this
/// tool has never heard of.  They must surface as notes and be skipped, not
/// rejected — otherwise every schema extension would break every committed
/// baseline at once.
void note_unknown_sections(const Json& report, const char* side,
                           ReportDiffResult& result) {
  static const std::set<std::string> kKnownSections = {
      "schema_version", "generated_at", "meta",      "metrics",
      "spans",          "resource",     "energy",    "hw",
      "profile",        "results",      "quality",   "streaming",
      "serve",          "experiment",   "dba",       "cache"};
  if (!report.is_object()) return;
  for (const auto& [key, value] : report.as_object()) {
    (void)value;
    if (kKnownSections.find(key) == kKnownSections.end()) {
      result.notes.push_back("unknown section \"" + key + "\" in " + side +
                             " — skipped (not compared, not gated)");
    }
  }
}

/// Walk two keyed maps in lockstep: common keys produce rows via `on_both`,
/// one-sided keys produce notes.
template <typename OnBoth>
void compare_maps(const std::map<std::string, double>& base,
                  const std::map<std::string, double>& cur,
                  const std::string& kind, ReportDiffResult& result,
                  OnBoth on_both) {
  for (const auto& [key, b] : base) {
    const auto it = cur.find(key);
    if (it == cur.end()) {
      result.notes.push_back(kind + " only in baseline: " + key);
    } else {
      on_both(key, b, it->second);
    }
  }
  for (const auto& [key, c] : cur) {
    (void)c;
    if (base.find(key) == base.end()) {
      result.notes.push_back(kind + " only in current: " + key);
    }
  }
}

}  // namespace

ReportDiffResult diff_reports(const Json& baseline, const Json& current,
                              const ReportDiffOptions& options) {
  ReportDiffResult result;

  const Json* bs = baseline.find("schema_version");
  const Json* cs = current.find("schema_version");
  const std::int64_t bv = bs != nullptr && bs->is_int() ? bs->as_int() : -1;
  const std::int64_t cv = cs != nullptr && cs->is_int() ? cs->as_int() : -1;
  if (bv != cv || bv < 0) {
    result.notes.push_back("schema_version mismatch (baseline " +
                           std::to_string(bv) + ", current " +
                           std::to_string(cv) + ")");
    result.violated = true;
  }

  compare_maps(span_means(baseline), span_means(current), "span", result,
               [&](const std::string& path, double b, double c) {
                 ReportDiffRow row;
                 row.kind = "span";
                 row.key = path;
                 row.base = b;
                 row.cur = c;
                 row.gated = options.max_regress_pct >= 0.0 &&
                             b >= options.min_span_s && b > 0.0;
                 if (row.gated) {
                   row.gate = "max-regress-pct";
                   row.threshold = options.max_regress_pct;
                   const double pct = 100.0 * (c - b) / b;
                   row.violation = pct > options.max_regress_pct;
                 }
                 result.rows.push_back(std::move(row));
               });

  compare_maps(counter_values(baseline), counter_values(current), "counter",
               result, [&](const std::string& name, double b, double c) {
                 ReportDiffRow row;
                 row.kind = "counter";
                 row.key = name;
                 row.base = b;
                 row.cur = c;
                 result.rows.push_back(std::move(row));
               });

  // Accuracy/calibration leaves share one gating rule set so "results" and
  // "quality" sections behave identically.
  const auto accuracy_row = [&](const std::string& kind,
                                const std::string& key, double b, double c) {
    ReportDiffRow row;
    row.kind = kind;
    row.key = key;
    row.base = b;
    row.cur = c;
    const double cavg_delta = options.max_cavg_delta >= 0.0
                                  ? options.max_cavg_delta
                                  : options.max_eer_delta;
    if (ends_with(key, "/eer") && options.max_eer_delta >= 0.0) {
      row.gated = true;
      row.gate = "max-eer-delta";
      row.threshold = options.max_eer_delta;
      row.violation = (c - b) > options.max_eer_delta;
    } else if (ends_with(key, "/cavg") && cavg_delta >= 0.0) {
      row.gated = true;
      row.gate = "max-cavg-delta";
      row.threshold = cavg_delta;
      row.violation = (c - b) > cavg_delta;
    } else if ((ends_with(key, "/cllr") || ends_with(key, "/min_cllr")) &&
               options.max_cllr_delta >= 0.0) {
      row.gated = true;
      row.gate = "max-cllr-delta";
      row.threshold = options.max_cllr_delta;
      row.violation = (c - b) > options.max_cllr_delta;
    } else if (ends_with(key, "/precision") &&
               key.find("/adoption") != std::string::npos &&
               options.max_adoption_precision_drop >= 0.0) {
      row.gated = true;
      row.gate = "max-adoption-precision-drop";
      row.threshold = options.max_adoption_precision_drop;
      row.violation = (b - c) > options.max_adoption_precision_drop;
    }
    result.rows.push_back(std::move(row));
  };

  compare_maps(result_leaves(baseline), result_leaves(current), "result",
               result, [&](const std::string& key, double b, double c) {
                 accuracy_row("result", key, b, c);
               });

  compare_maps(quality_leaves(baseline), quality_leaves(current), "quality",
               result, [&](const std::string& key, double b, double c) {
                 accuracy_row("quality", key, b, c);
               });

  compare_maps(resource_leaves(baseline), resource_leaves(current),
               "resource", result,
               [&](const std::string& key, double b, double c) {
                 ReportDiffRow row;
                 row.kind = "resource";
                 row.key = key;
                 row.base = b;
                 row.cur = c;
                 result.rows.push_back(std::move(row));
               });

  const char* base_source = energy_source(baseline);
  const char* cur_source = energy_source(current);
  const bool sources_match =
      base_source != nullptr && cur_source != nullptr &&
      std::string(base_source) == cur_source;
  if (base_source != nullptr && cur_source != nullptr && !sources_match) {
    result.notes.push_back(std::string("energy source differs (baseline ") +
                           base_source + ", current " + cur_source +
                           ") — joule leaves not gated");
  }
  compare_maps(section_leaves(baseline, "energy"),
               section_leaves(current, "energy"), "energy", result,
               [&](const std::string& key, double b, double c) {
                 ReportDiffRow row;
                 row.kind = "energy";
                 row.key = key;
                 row.base = b;
                 row.cur = c;
                 row.gated = options.max_energy_delta_pct >= 0.0 &&
                             sources_match && is_gated_energy_leaf(key) &&
                             b > 0.0;
                 if (row.gated) {
                   row.gate = "max-energy-delta-pct";
                   row.threshold = options.max_energy_delta_pct;
                   const double pct = 100.0 * (c - b) / b;
                   row.violation = pct > options.max_energy_delta_pct;
                 }
                 result.rows.push_back(std::move(row));
               });

  compare_maps(section_leaves(baseline, "hw"), section_leaves(current, "hw"),
               "hw", result, [&](const std::string& key, double b, double c) {
                 ReportDiffRow row;
                 row.kind = "hw";
                 row.key = key;
                 row.base = b;
                 row.cur = c;
                 result.rows.push_back(std::move(row));
               });

  compare_maps(profile_leaves(baseline), profile_leaves(current), "profile",
               result, [&](const std::string& key, double b, double c) {
                 ReportDiffRow row;
                 row.kind = "profile";
                 row.key = key;
                 row.base = b;
                 row.cur = c;
                 row.gated = options.max_self_share_delta >= 0.0 &&
                             key.rfind("profile/functions/", 0) == 0 &&
                             ends_with(key, "/self_share");
                 if (row.gated) {
                   row.gate = "max-self-share-delta";
                   row.threshold = options.max_self_share_delta;
                   row.violation = (c - b) > options.max_self_share_delta;
                 }
                 result.rows.push_back(std::move(row));
               });

  compare_maps(section_leaves(baseline, "serve"),
               section_leaves(current, "serve"), "serve", result,
               [&](const std::string& key, double b, double c) {
                 ReportDiffRow row;
                 row.kind = "serve";
                 row.key = key;
                 row.base = b;
                 row.cur = c;
                 if (key == "serve/latency_ms/p99" &&
                     options.max_serve_p99_regress_pct >= 0.0 && b > 0.0) {
                   row.gated = true;
                   row.gate = "max-serve-p99-regress";
                   row.threshold = options.max_serve_p99_regress_pct;
                   const double pct = 100.0 * (c - b) / b;
                   row.violation = pct > options.max_serve_p99_regress_pct;
                 } else if (key == "serve/throughput_rps" &&
                            options.max_serve_throughput_drop_pct >= 0.0 &&
                            b > 0.0) {
                   row.gated = true;
                   row.gate = "max-serve-throughput-drop";
                   row.threshold = options.max_serve_throughput_drop_pct;
                   const double drop_pct = 100.0 * (b - c) / b;
                   row.violation =
                       drop_pct > options.max_serve_throughput_drop_pct;
                 } else if (key.rfind("serve/phases/", 0) == 0 &&
                            (ends_with(key, "/p99") ||
                             ends_with(key, "/p999")) &&
                            options.max_phase_p99_regress_pct >= 0.0 &&
                            b > 0.0) {
                   row.gated = true;
                   row.gate = "max-phase-p99-regress";
                   row.threshold = options.max_phase_p99_regress_pct;
                   const double pct = 100.0 * (c - b) / b;
                   // Sub-millisecond absolute deltas are bucket-edge noise
                   // on the fine phase buckets (e.g. 0.1 → 0.5 ms is
                   // +400 %), not a regression worth failing CI over.
                   row.violation = pct > options.max_phase_p99_regress_pct &&
                                   (c - b) > kPhaseP99SlackMs;
                 }
                 result.rows.push_back(std::move(row));
               });

  note_unknown_sections(baseline, "baseline", result);
  note_unknown_sections(current, "current", result);
  note_drops(baseline, "baseline", result);
  note_drops(current, "current", result);

  for (const ReportDiffRow& row : result.rows) {
    if (row.violation) result.violated = true;
  }
  return result;
}

std::string ReportDiffResult::format() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-8s %-48s %14s %14s %12s\n", "kind",
                "key", "baseline", "current", "delta");
  out << line;
  std::size_t hidden = 0;
  for (const ReportDiffRow& row : rows) {
    // Unchanged counter/resource/hw rows are the bulk of a same-machine
    // diff; elide them.
    if ((row.kind == "counter" || row.kind == "resource" ||
         row.kind == "hw" || row.kind == "profile" || row.kind == "serve") &&
        row.base == row.cur && !row.violation) {
      ++hidden;
      continue;
    }
    const double delta = row.cur - row.base;
    char delta_text[48];
    if (row.kind == "span" && row.base > 0.0) {
      std::snprintf(delta_text, sizeof(delta_text), "%+.1f%%",
                    100.0 * delta / row.base);
    } else {
      std::snprintf(delta_text, sizeof(delta_text), "%+.6g", delta);
    }
    std::snprintf(line, sizeof(line), "%-8s %-48s %14.6g %14.6g %12s%s%s\n",
                  row.kind.c_str(), row.key.c_str(), row.base, row.cur,
                  delta_text, row.gated ? "  [gated]" : "",
                  row.violation ? "  VIOLATION" : "");
    out << line;
  }
  if (hidden > 0) {
    out << "(" << hidden << " unchanged counter/resource rows elided)\n";
  }
  for (const std::string& note : notes) {
    out << "note: " << note << '\n';
  }
  // One line per violation with everything needed to act on it — the table
  // above can be long, but these lines alone identify the failures.
  std::size_t violations = 0;
  for (const ReportDiffRow& row : rows) {
    if (!row.violation) continue;
    ++violations;
    std::snprintf(line, sizeof(line),
                  "violation: %s %s: baseline %.6g, current %.6g, "
                  "threshold %.6g\n",
                  row.gate.c_str(), row.key.c_str(), row.base, row.cur,
                  row.threshold);
    out << line;
  }
  if (violated) {
    out << "report-diff: FAIL (" << violations
        << (violations == 1 ? " violation" : " violations");
    if (violations == 0) out << "; schema mismatch";  // only non-row failure
    out << ")\n";
  } else {
    out << "report-diff: OK\n";
  }
  return out.str();
}

}  // namespace phonolid::obs
