#include "obs/ledger.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace phonolid::obs {

namespace {

std::uint64_t get_u64(const Json& doc, const char* key, std::uint64_t dflt) {
  const Json* v = doc.find(key);
  return v != nullptr && v->is_int()
             ? static_cast<std::uint64_t>(v->as_int())
             : dflt;
}

std::int64_t get_i64(const Json& doc, const char* key, std::int64_t dflt) {
  const Json* v = doc.find(key);
  return v != nullptr && v->is_int() ? v->as_int() : dflt;
}

bool get_bool(const Json& doc, const char* key, bool dflt) {
  const Json* v = doc.find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : dflt;
}

std::string get_string(const Json& doc, const char* key) {
  const Json* v = doc.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

Json doubles_to_json(const std::vector<double>& values) {
  Json arr = Json::array();
  for (double v : values) arr.push_back(Json(v));
  return arr;
}

std::vector<double> doubles_from_json(const Json* arr) {
  std::vector<double> out;
  if (arr == nullptr || !arr->is_array()) return out;
  out.reserve(arr->as_array().size());
  for (const Json& v : arr->as_array()) {
    out.push_back(v.is_number() ? v.as_double() : 0.0);
  }
  return out;
}

}  // namespace

const LedgerEntry* DecisionLedger::find(std::uint64_t id) const noexcept {
  if (id < entries.size() && entries[id].utt == id) return &entries[id];
  for (const LedgerEntry& e : entries) {
    if (e.utt == id || e.corpus_id == id) return &e;
  }
  return nullptr;
}

std::string DecisionLedger::language_name(std::int32_t k) const {
  if (k >= 0 && static_cast<std::size_t>(k) < languages.size()) {
    return languages[static_cast<std::size_t>(k)];
  }
  return k < 0 ? std::string("-") : "lang" + std::to_string(k);
}

Json DecisionLedger::entry_to_json(const LedgerEntry& entry) {
  Json doc = Json::object();
  doc["utt"] = Json(entry.utt);
  doc["id"] = Json(entry.corpus_id);
  doc["true_label"] = Json(entry.true_label);
  doc["tier"] = Json(entry.tier);
  Json scores = Json::array();
  for (const auto& row : entry.scores) scores.push_back(doubles_to_json(row));
  doc["scores"] = std::move(scores);
  Json rounds = Json::array();
  for (const LedgerRound& r : entry.rounds) {
    Json rj = Json::object();
    rj["round"] = Json(r.round);
    rj["mode"] = Json(r.mode);
    rj["min_votes"] = Json(r.min_votes);
    rj["best_class"] = Json(r.best_class);
    rj["vote_count"] = Json(r.vote_count);
    rj["tie"] = Json(r.tie);
    Json votes = Json::array();
    for (std::uint8_t v : r.votes) votes.push_back(Json(v != 0));
    rj["votes"] = std::move(votes);
    rj["margins"] = doubles_to_json(r.margins);
    rj["adopted"] = Json(r.adopted);
    rj["hyp_label"] = Json(r.hyp_label);
    rj["correct"] = Json(r.correct);
    rj["flip"] = Json(r.flip);
    rounds.push_back(std::move(rj));
  }
  doc["rounds"] = std::move(rounds);
  doc["fused_llr"] = doubles_to_json(entry.fused_llr);
  return doc;
}

LedgerEntry DecisionLedger::entry_from_json(const Json& doc) {
  LedgerEntry entry;
  entry.utt = get_u64(doc, "utt", 0);
  entry.corpus_id = get_u64(doc, "id", 0);
  entry.true_label = static_cast<std::int32_t>(get_i64(doc, "true_label", -1));
  entry.tier = get_string(doc, "tier");
  if (const Json* scores = doc.find("scores");
      scores != nullptr && scores->is_array()) {
    for (const Json& row : scores->as_array()) {
      entry.scores.push_back(doubles_from_json(&row));
    }
  }
  if (const Json* rounds = doc.find("rounds");
      rounds != nullptr && rounds->is_array()) {
    for (const Json& rj : rounds->as_array()) {
      LedgerRound r;
      r.round = static_cast<std::uint32_t>(get_u64(rj, "round", 0));
      r.mode = get_string(rj, "mode");
      r.min_votes = static_cast<std::uint32_t>(get_u64(rj, "min_votes", 0));
      r.best_class = static_cast<std::int32_t>(get_i64(rj, "best_class", -1));
      r.vote_count = static_cast<std::uint32_t>(get_u64(rj, "vote_count", 0));
      r.tie = get_bool(rj, "tie", false);
      if (const Json* votes = rj.find("votes");
          votes != nullptr && votes->is_array()) {
        for (const Json& v : votes->as_array()) {
          r.votes.push_back(v.is_bool() && v.as_bool() ? 1 : 0);
        }
      }
      r.margins = doubles_from_json(rj.find("margins"));
      r.adopted = get_bool(rj, "adopted", false);
      r.hyp_label = static_cast<std::int32_t>(get_i64(rj, "hyp_label", -1));
      r.correct = get_bool(rj, "correct", false);
      r.flip = get_bool(rj, "flip", false);
      entry.rounds.push_back(std::move(r));
    }
  }
  entry.fused_llr = doubles_from_json(doc.find("fused_llr"));
  return entry;
}

void DecisionLedger::write_jsonl(std::ostream& out) const {
  Json header = Json::object();
  header["ledger_version"] = Json(kLedgerVersion);
  header["num_classes"] = Json(num_classes);
  header["num_subsystems"] = Json(num_subsystems);
  Json langs = Json::array();
  for (const std::string& l : languages) langs.push_back(Json(l));
  header["languages"] = std::move(langs);
  header["scale"] = Json(scale);
  header["seed"] = Json(seed);
  header["utterances"] = Json(entries.size());
  header.dump(out, 0);
  out << '\n';
  for (const LedgerEntry& entry : entries) {
    entry_to_json(entry).dump(out, 0);
    out << '\n';
  }
}

void DecisionLedger::write_jsonl_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("ledger: cannot open '" + path + "' for writing");
  }
  write_jsonl(out);
  if (!out.good()) {
    throw std::runtime_error("ledger: write failed for '" + path + "'");
  }
}

DecisionLedger DecisionLedger::read_jsonl(std::istream& in) {
  DecisionLedger ledger;
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("ledger: empty input");
  }
  const Json header = Json::parse(line);
  const std::int64_t version = get_i64(header, "ledger_version", -1);
  if (version != kLedgerVersion) {
    throw std::runtime_error("ledger: unsupported ledger_version " +
                             std::to_string(version));
  }
  ledger.num_classes =
      static_cast<std::uint32_t>(get_u64(header, "num_classes", 0));
  ledger.num_subsystems =
      static_cast<std::uint32_t>(get_u64(header, "num_subsystems", 0));
  if (const Json* langs = header.find("languages");
      langs != nullptr && langs->is_array()) {
    for (const Json& l : langs->as_array()) {
      ledger.languages.push_back(l.is_string() ? l.as_string() : std::string());
    }
  }
  ledger.scale = get_string(header, "scale");
  ledger.seed = get_u64(header, "seed", 0);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ledger.entries.push_back(entry_from_json(Json::parse(line)));
  }
  return ledger;
}

DecisionLedger DecisionLedger::read_jsonl_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ledger: cannot open '" + path + "'");
  }
  return read_jsonl(in);
}

std::string format_explain(const DecisionLedger& ledger,
                           const LedgerEntry& entry) {
  std::ostringstream out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "utterance #%llu (corpus id %llu)\n",
                static_cast<unsigned long long>(entry.utt),
                static_cast<unsigned long long>(entry.corpus_id));
  out << buf;
  std::snprintf(buf, sizeof(buf), "  true language : %s (%d)   tier: %s\n",
                ledger.language_name(entry.true_label).c_str(),
                entry.true_label, entry.tier.c_str());
  out << buf;

  out << "  baseline scores f_qk (* = true class, ^ = argmax):\n";
  for (std::size_t q = 0; q < entry.scores.size(); ++q) {
    const auto& row = entry.scores[q];
    std::size_t argmax = 0;
    for (std::size_t k = 1; k < row.size(); ++k) {
      if (row[k] > row[argmax]) argmax = k;
    }
    std::snprintf(buf, sizeof(buf), "    q%zu:", q);
    out << buf;
    for (std::size_t k = 0; k < row.size(); ++k) {
      const bool is_true = static_cast<std::int32_t>(k) == entry.true_label;
      const char* mark = k == argmax ? (is_true ? "^*" : "^ ")
                                     : (is_true ? "* " : "  ");
      std::snprintf(buf, sizeof(buf), " %+8.4f%s", row[k], mark);
      out << buf;
    }
    out << '\n';
  }

  if (entry.rounds.empty()) {
    out << "  rounds: none recorded (no DBA pass in this run)\n";
  }
  for (const LedgerRound& r : entry.rounds) {
    std::snprintf(buf, sizeof(buf), "  round %u [%s, V>=%u]: ", r.round,
                  r.mode.c_str(), r.min_votes);
    out << buf;
    if (r.best_class < 0) {
      out << "no votes\n";
      continue;
    }
    std::snprintf(buf, sizeof(buf), "leading %s with %u/%u votes%s\n",
                  ledger.language_name(r.best_class).c_str(), r.vote_count,
                  static_cast<unsigned>(
                      r.votes.empty() ? ledger.num_subsystems
                                      : static_cast<std::uint32_t>(
                                            r.votes.size())),
                  r.tie ? " (tie)" : "");
    out << buf;
    out << "    votes:";
    for (std::size_t q = 0; q < r.votes.size(); ++q) {
      const double m = q < r.margins.size() ? r.margins[q] : 0.0;
      std::snprintf(buf, sizeof(buf), " q%zu%c(%+.4f)", q,
                    r.votes[q] != 0 ? '+' : '-', m);
      out << buf;
    }
    out << '\n';
    if (r.adopted) {
      std::snprintf(buf, sizeof(buf),
                    "    ADOPTED as %s (%s)%s\n",
                    ledger.language_name(r.hyp_label).c_str(),
                    r.correct ? "correct" : "WRONG",
                    r.flip ? "  [label flip]" : "");
      out << buf;
    } else {
      out << "    not adopted\n";
    }
  }

  if (!entry.fused_llr.empty()) {
    out << "  fused LLR (calibrated):\n   ";
    std::size_t argmax = 0;
    for (std::size_t k = 1; k < entry.fused_llr.size(); ++k) {
      if (entry.fused_llr[k] > entry.fused_llr[argmax]) argmax = k;
    }
    for (std::size_t k = 0; k < entry.fused_llr.size(); ++k) {
      std::snprintf(buf, sizeof(buf), " %+8.4f%c", entry.fused_llr[k],
                    k == argmax ? '^' : ' ');
      out << buf;
    }
    std::snprintf(buf, sizeof(buf), "\n  fused decision : %s (%s)\n",
                  ledger.language_name(static_cast<std::int32_t>(argmax))
                      .c_str(),
                  static_cast<std::int32_t>(argmax) == entry.true_label
                      ? "correct"
                      : "WRONG");
    out << buf;
  }
  return out.str();
}

}  // namespace phonolid::obs
