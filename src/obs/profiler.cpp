#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_set>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>
#endif

#include "obs/symbolize.h"

namespace phonolid::obs {

namespace {

// A platform where both the per-thread CPU timers and the frame-pointer
// unwinder exist.  Elsewhere the probe reports ENOSYS and everything else
// degrades to no-ops.
#if defined(__linux__) && (defined(__x86_64__) || defined(__aarch64__))
#define PHONOLID_PROFILER_SUPPORTED 1
#else
#define PHONOLID_PROFILER_SUPPORTED 0
#endif

constexpr std::size_t kMaxFrames = 30;
constexpr std::size_t kMaxSpanDepth = 8;
constexpr std::size_t kDefaultRingCapacity = 1u << 12;  // samples per thread

/// Fixed-size ring slot written from signal context: raw return addresses
/// (leaf first) plus the open span-name stack (outermost first, pointers to
/// string literals).
struct RawSample {
  std::uint16_t num_frames = 0;
  std::uint16_t span_depth = 0;
  std::uintptr_t frames[kMaxFrames];
  const char* spans[kMaxSpanDepth];
};

/// Per-thread sampling state.  The SIGPROF handler receives the pointer via
/// the timer's sigev_value, so it never touches thread-local storage.  The
/// struct is owned by the (leaked) registry and outlives its thread: a
/// timer signal that was already queued when the timer was deleted finds
/// `armed == false` and backs out without touching the ring.
struct ThreadState {
  // Span-name stack: written by the owning thread (Span enter/exit), read
  // only by that same thread's signal handler.  `depth` may exceed
  // kMaxSpanDepth (deeper names are not recorded but the count stays
  // balanced); release stores keep the slot writes ordered before the
  // depth update at every instruction boundary the handler can observe.
  const char* span_names[kMaxSpanDepth] = {};
  std::atomic<std::uint32_t> span_depth{0};

  // SPSC sample ring: the handler writes, drains read.  head/tail are
  // monotonic; slot publication rides the release store of `head`.
  RawSample* ring = nullptr;
  std::size_t capacity = 0;
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
  std::atomic<std::uint64_t> dropped{0};

  std::uintptr_t stack_lo = 0, stack_hi = 0;  // fp-walk bounds

  std::atomic<bool> armed{false};
  bool timer_valid = false;
#if defined(__linux__)
  timer_t timer{};
  pid_t tid = 0;
#endif
  pthread_t handle{};
  bool dead = false;  // guarded by the registry mutex

  std::mutex drain_mutex;  // serializes ring readers (owner vs snapshot)
};

/// Aggregation key: the exact span-name stack and pc stack of a sample.
/// Span names are string literals, so pointer identity is stable.
using AggKey =
    std::pair<std::vector<const char*>, std::vector<std::uintptr_t>>;

struct Registry {
  std::mutex mutex;                   // thread list + arm/disarm
  std::vector<ThreadState*> threads;  // leaked on purpose (see trace.cpp)
  std::mutex agg_mutex;
  std::map<AggKey, std::uint64_t> agg;
  std::uint64_t retired_dropped = 0;
};

Registry& registry() {
  static Registry* reg = new Registry();
  return *reg;
}

std::atomic<bool> g_enabled{false};
// 0 = unprobed, 1 = available, 2 = unavailable (same scheme as perf.cpp).
std::atomic<int> g_state{0};
std::atomic<int> g_errno{0};
std::atomic<int> g_forced_errno{0};
std::atomic<int> g_hz{kDefaultProfileHz};
std::atomic<std::size_t> g_ring_capacity{kDefaultRingCapacity};
std::mutex g_control_mutex;  // start/stop/probe/test hooks

thread_local ThreadState* tls_state = nullptr;
thread_local bool tls_torn_down = false;

void teardown_thread() noexcept;

struct ThreadExitGuard {
  bool active = false;
  ~ThreadExitGuard() {
    if (active) teardown_thread();
  }
};
thread_local ThreadExitGuard tls_exit_guard;

#if PHONOLID_PROFILER_SUPPORTED

#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

/// timer_create with the test-forced failure applied (like perf_open).
int checked_timer_create(clockid_t clock, sigevent* sev,
                         timer_t* out) noexcept {
  if (const int forced = g_forced_errno.load(std::memory_order_relaxed);
      forced != 0) {
    errno = forced;
    return -1;
  }
  return timer_create(clock, sev, out);
}

/// Async-signal-safe frame-pointer walk of the interrupted context.
/// Every dereference is bounds-checked against the thread's stack extent,
/// so a frame-pointer-less or corrupted chain terminates instead of
/// faulting; the leaf pc (frame 0) is always valid regardless.
void unwind_context(const ThreadState* s, void* ucv,
                    RawSample& out) noexcept {
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucv);
#if defined(__x86_64__)
  auto pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  auto fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  auto sp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  auto pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  auto fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
  auto sp = static_cast<std::uintptr_t>(uc->uc_mcontext.sp);
#endif
  std::uint16_t n = 0;
  out.frames[n++] = pc;
  const std::uintptr_t lo = sp;  // frames live at or above the current sp
  const std::uintptr_t hi =
      s->stack_hi > lo ? s->stack_hi : lo + (1u << 20);
  while (n < kMaxFrames) {
    if (fp < lo || fp > hi - 2 * sizeof(std::uintptr_t) ||
        (fp & (sizeof(std::uintptr_t) - 1)) != 0) {
      break;
    }
    const auto* frame = reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t next_fp = frame[0];
    const std::uintptr_t ret = frame[1];
    if (ret < 0x1000) break;  // not a plausible code address
    out.frames[n++] = ret;
    if (next_fp <= fp) break;  // stacks grow down; chain must ascend
    fp = next_fp;
  }
  out.num_frames = n;
}

void sigprof_handler(int, siginfo_t* info, void* ucv) {
  const int saved_errno = errno;
  auto* s = static_cast<ThreadState*>(info->si_value.sival_ptr);
  if (s != nullptr && s->armed.load(std::memory_order_acquire) &&
      g_enabled.load(std::memory_order_relaxed)) {
    const std::uint64_t h = s->head.load(std::memory_order_relaxed);
    const std::uint64_t t = s->tail.load(std::memory_order_acquire);
    if (h - t >= s->capacity) {
      s->dropped.fetch_add(1, std::memory_order_relaxed);
    } else {
      RawSample& slot = s->ring[h % s->capacity];
      unwind_context(s, ucv, slot);
      std::uint32_t depth = s->span_depth.load(std::memory_order_relaxed);
      if (depth > kMaxSpanDepth) depth = kMaxSpanDepth;
      for (std::uint32_t i = 0; i < depth; ++i) {
        slot.spans[i] = s->span_names[i];
      }
      slot.span_depth = static_cast<std::uint16_t>(depth);
      s->head.store(h + 1, std::memory_order_release);
    }
  }
  errno = saved_errno;
}

/// Install the SIGPROF handler and verify a per-thread CPU timer can be
/// created.  Caller holds g_control_mutex.
bool probe_locked() noexcept {
  struct sigaction sa {};
  sa.sa_sigaction = sigprof_handler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, nullptr) != 0) {
    g_errno.store(errno, std::memory_order_relaxed);
    return false;
  }
  sigevent sev{};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = static_cast<pid_t>(syscall(SYS_gettid));
  sev.sigev_value.sival_ptr = nullptr;  // handler ignores null states
  timer_t probe{};
  if (checked_timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &probe) != 0) {
    g_errno.store(errno, std::memory_order_relaxed);
    return false;
  }
  timer_delete(probe);
  g_errno.store(0, std::memory_order_relaxed);
  return true;
}

/// Arm one registered thread: allocate its ring, create a timer on that
/// thread's CPU clock delivering SIGPROF to that thread.  Caller holds the
/// registry mutex.
void arm_locked(ThreadState* s) noexcept {
  if (s->dead || s->timer_valid) return;
  if (s->ring == nullptr) {
    const std::size_t cap = g_ring_capacity.load(std::memory_order_relaxed);
    s->ring = new (std::nothrow) RawSample[cap];
    if (s->ring == nullptr) return;
    s->capacity = cap;
  }
  clockid_t clock{};
  if (pthread_getcpuclockid(s->handle, &clock) != 0) return;
  sigevent sev{};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = s->tid;
  sev.sigev_value.sival_ptr = s;
  if (checked_timer_create(clock, &sev, &s->timer) != 0) return;
  s->timer_valid = true;
  s->armed.store(true, std::memory_order_release);
  const long ns =
      std::max(1L, 1000000000L / g_hz.load(std::memory_order_relaxed));
  itimerspec its{};
  its.it_value.tv_sec = ns / 1000000000L;
  its.it_value.tv_nsec = ns % 1000000000L;
  its.it_interval = its.it_value;
  timer_settime(s->timer, 0, &its, nullptr);
}

/// Disarm one thread's timer; retained samples stay in the ring.  Caller
/// holds the registry mutex.  `armed` is cleared before timer_delete so a
/// signal that was already queued backs out instead of writing.
void disarm_locked(ThreadState* s) noexcept {
  if (!s->timer_valid) return;
  s->armed.store(false, std::memory_order_release);
  timer_delete(s->timer);
  s->timer_valid = false;
}

#else  // !PHONOLID_PROFILER_SUPPORTED

bool probe_locked() noexcept {
  g_errno.store(ENOSYS, std::memory_order_relaxed);
  return false;
}
void arm_locked(ThreadState*) noexcept {}
void disarm_locked(ThreadState*) noexcept {}

#endif  // PHONOLID_PROFILER_SUPPORTED

/// Move every retained sample of `s` into the central aggregation map.
/// Takes the drain mutex (owner-thread drains race with snapshot) but not
/// the registry mutex — callers differ.
void drain_state(ThreadState* s) {
  if (s->ring == nullptr) return;
  std::lock_guard drain_lock(s->drain_mutex);
  const std::uint64_t h = s->head.load(std::memory_order_acquire);
  std::uint64_t t = s->tail.load(std::memory_order_relaxed);
  if (t == h) return;
  Registry& reg = registry();
  std::lock_guard agg_lock(reg.agg_mutex);
  for (; t != h; ++t) {
    const RawSample& raw = s->ring[t % s->capacity];
    AggKey key;
    key.first.assign(raw.spans, raw.spans + raw.span_depth);
    key.second.assign(raw.frames, raw.frames + raw.num_frames);
    ++reg.agg[std::move(key)];
  }
  s->tail.store(t, std::memory_order_release);
}

void teardown_thread() noexcept {
  ThreadState* s = tls_state;
  tls_state = nullptr;
  tls_torn_down = true;
  if (s == nullptr) return;
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  disarm_locked(s);
  try {
    drain_state(s);
  } catch (...) {
  }
  reg.retired_dropped += s->dropped.load(std::memory_order_relaxed);
  s->dropped.store(0, std::memory_order_relaxed);
  // The ring can go (no signal can reach it past the armed=false store on
  // this same thread); the state struct stays for the registry.
  delete[] s->ring;
  s->ring = nullptr;
  s->capacity = 0;
  s->dead = true;
}

int resolve_hz(int hz) noexcept {
  if (hz <= 0) {
    if (const char* env = std::getenv("PHONOLID_PROFILE_HZ")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) hz = static_cast<int>(v);
    }
  }
  if (hz <= 0) hz = kDefaultProfileHz;
  return std::min(hz, 10000);
}

}  // namespace

void Profiler::register_thread() noexcept {
  if (tls_state != nullptr || tls_torn_down) return;
  auto* s = new (std::nothrow) ThreadState();
  if (s == nullptr) return;
  s->handle = pthread_self();
#if defined(__linux__)
  s->tid = static_cast<pid_t>(syscall(SYS_gettid));
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
      s->stack_lo = reinterpret_cast<std::uintptr_t>(addr);
      s->stack_hi = s->stack_lo + size;
    }
    pthread_attr_destroy(&attr);
  }
#endif
  Registry& reg = registry();
  {
    std::lock_guard lock(reg.mutex);
    reg.threads.push_back(s);
    tls_state = s;
    if (g_enabled.load(std::memory_order_relaxed)) arm_locked(s);
  }
  tls_exit_guard.active = true;
}

namespace {

/// Span names reach us as `const char*` with no lifetime guarantee —
/// pipeline stages pass `std::string::c_str()` of strings that die before
/// the rings drain (see pipeline/stage_runner.cpp).  Ring slots and the
/// aggregation map hold these pointers until flush, so every name is
/// interned once into a leaked pool; node-based unordered_set keeps c_str()
/// stable across rehashes.
const char* intern_span_name(const char* name) noexcept {
  static std::mutex* mutex = new std::mutex();
  static std::unordered_set<std::string>* pool =
      new std::unordered_set<std::string>();
  try {
    std::lock_guard lock(*mutex);
    return pool->emplace(name).first->c_str();
  } catch (...) {
    return "(intern-failed)";
  }
}

}  // namespace

void Profiler::on_span_enter(const char* name) noexcept {
  ThreadState* s = tls_state;
  if (s == nullptr) {
    if (tls_torn_down) return;
    register_thread();
    s = tls_state;
    if (s == nullptr) return;
  }
  const std::uint32_t depth = s->span_depth.load(std::memory_order_relaxed);
  if (depth < kMaxSpanDepth) s->span_names[depth] = intern_span_name(name);
  s->span_depth.store(depth + 1, std::memory_order_release);
  // Opportunistic drain keeps ring memory bounded on long runs without any
  // background thread; only pays the locks when a backlog actually built.
  if (s->armed.load(std::memory_order_relaxed) &&
      s->head.load(std::memory_order_relaxed) -
              s->tail.load(std::memory_order_relaxed) >=
          s->capacity / 2) {
    try {
      drain_state(s);
    } catch (...) {
    }
  }
}

void Profiler::on_span_exit() noexcept {
  ThreadState* s = tls_state;
  if (s == nullptr) return;
  const std::uint32_t depth = s->span_depth.load(std::memory_order_relaxed);
  if (depth > 0) s->span_depth.store(depth - 1, std::memory_order_release);
}

bool Profiler::start(int hz) {
  std::lock_guard control(g_control_mutex);
  if (g_state.load(std::memory_order_acquire) == 0) {
    g_state.store(probe_locked() ? 1 : 2, std::memory_order_release);
  }
  if (g_state.load(std::memory_order_acquire) != 1) return false;
  g_hz.store(resolve_hz(hz), std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_release);
  register_thread();
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (ThreadState* s : reg.threads) arm_locked(s);
  return true;
}

void Profiler::stop() noexcept {
  std::lock_guard control(g_control_mutex);
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  g_enabled.store(false, std::memory_order_release);
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (ThreadState* s : reg.threads) disarm_locked(s);
}

bool Profiler::enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

bool Profiler::available() noexcept {
  return g_state.load(std::memory_order_acquire) == 1;
}

int Profiler::unavailable_errno() noexcept {
  return g_errno.load(std::memory_order_relaxed);
}

int Profiler::rate_hz() noexcept {
  return g_hz.load(std::memory_order_relaxed);
}

void Profiler::init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* mode = std::getenv("PHONOLID_PROFILE");
    if (mode == nullptr || *mode == '\0' || std::strcmp(mode, "off") == 0) {
      return;
    }
    if (std::strcmp(mode, "cpu") != 0) {
      std::fprintf(stderr,
                   "phonolid: unknown PHONOLID_PROFILE '%s' (off|cpu); "
                   "profiling disabled\n",
                   mode);
      return;
    }
    if (!start(0)) {
      std::fprintf(stderr,
                   "phonolid: CPU profiler unavailable (%s); continuing "
                   "unprofiled\n",
                   std::strerror(unavailable_errno()));
    }
  });
}

ProfileData Profiler::snapshot() {
  ProfileData data;
  data.available = available();
  data.error = unavailable_errno();
  data.hz = rate_hz();

  Registry& reg = registry();
  std::uint64_t dropped = 0;
  {
    std::lock_guard lock(reg.mutex);
    for (ThreadState* s : reg.threads) {
      if (!s->dead) drain_state(s);
      dropped += s->dropped.load(std::memory_order_relaxed);
    }
    std::lock_guard agg_lock(reg.agg_mutex);
    dropped += reg.retired_dropped;
    data.dropped = dropped;

    Symbolizer symbolizer;
    // Re-aggregate by symbolized name stacks: distinct pcs inside one
    // function collapse onto one folded stack.
    std::map<std::pair<std::string, std::vector<std::string>>, std::uint64_t>
        folded;
    std::map<std::string, ProfileFunction> functions;
    std::map<std::string, std::uint64_t> spans;
    for (const auto& [key, count] : reg.agg) {
      data.samples += count;
      std::string span_path;
      for (const char* name : key.first) {
        if (!span_path.empty()) span_path.push_back('/');
        span_path.append(name);
      }
      spans[span_path] += count;

      std::vector<std::string> names;    // root-first
      std::vector<bool> symbolized;      // parallel to names
      names.reserve(key.second.size());
      symbolized.reserve(key.second.size());
      for (auto it = key.second.rbegin(); it != key.second.rend(); ++it) {
        const Symbol& sym = symbolizer.lookup(*it);
        data.total_frames += count;
        if (sym.symbolized) data.symbolized_frames += count;
        names.push_back(sym.name);
        symbolized.push_back(sym.symbolized);
      }
      // Function rollup: self time is charged to the innermost symbolized
      // frame (stripped-library internals like "libm.so.6+0x..." roll up
      // to their nearest named caller); every distinct name on the stack
      // accrues total time once (recursion counted once).
      if (!names.empty()) {
        std::size_t self_idx = names.size() - 1;
        while (self_idx > 0 && !symbolized[self_idx]) --self_idx;
        if (symbolized[self_idx]) data.attributed += count;
        ProfileFunction& leaf = functions[names[self_idx]];
        leaf.name = names[self_idx];
        leaf.self += count;
        std::vector<const std::string*> unique;
        for (const std::string& n : names) unique.push_back(&n);
        std::sort(unique.begin(), unique.end(),
                  [](const std::string* a, const std::string* b) {
                    return *a < *b;
                  });
        unique.erase(std::unique(unique.begin(), unique.end(),
                                 [](const std::string* a,
                                    const std::string* b) { return *a == *b; }),
                     unique.end());
        for (const std::string* n : unique) {
          ProfileFunction& fn = functions[*n];
          fn.name = *n;
          fn.total += count;
        }
      }
      folded[{std::move(span_path), std::move(names)}] += count;
    }
    for (auto& [key, count] : folded) {
      ProfileStack stack;
      stack.span_path = key.first;
      stack.frames = key.second;
      stack.count = count;
      data.stacks.push_back(std::move(stack));
    }
    for (auto& [name, fn] : functions) data.functions.push_back(fn);
    for (auto& [path, count] : spans) {
      data.spans.push_back(ProfileSpan{path, count});
    }
  }
  std::stable_sort(data.stacks.begin(), data.stacks.end(),
                   [](const ProfileStack& a, const ProfileStack& b) {
                     return a.count > b.count;
                   });
  std::stable_sort(data.functions.begin(), data.functions.end(),
                   [](const ProfileFunction& a, const ProfileFunction& b) {
                     return a.self != b.self ? a.self > b.self
                                             : a.total > b.total;
                   });
  std::stable_sort(data.spans.begin(), data.spans.end(),
                   [](const ProfileSpan& a, const ProfileSpan& b) {
                     return a.samples > b.samples;
                   });
  return data;
}

Json Profiler::profile_json() {
  Json profile = Json::object();
  const int state = g_state.load(std::memory_order_acquire);
  if (state == 0) {
    // Never started: PHONOLID_PROFILE was off for this process.
    profile["source"] = Json("off");
    profile["available"] = Json(false);
    profile["unavailable_reason"] = Json("disabled");
    return profile;
  }
  profile["source"] = Json("cpu");
  if (state != 1) {
    const int err = unavailable_errno();
    profile["available"] = Json(false);
    profile["unavailable_errno"] = Json(err);
    profile["unavailable_reason"] =
        Json(err != 0 ? std::strerror(err) : "unavailable");
    return profile;
  }
  const ProfileData data = snapshot();
  profile["available"] = Json(true);
  profile["hz"] = Json(data.hz);
  profile["samples"] = Json(data.samples);
  profile["dropped"] = Json(data.dropped);
  profile["total_frames"] = Json(data.total_frames);
  profile["symbolized_frames"] = Json(data.symbolized_frames);
  profile["symbolized_share"] =
      Json(data.total_frames == 0
               ? 0.0
               : static_cast<double>(data.symbolized_frames) /
                     static_cast<double>(data.total_frames));
  profile["attributed_share"] =
      Json(data.samples == 0 ? 0.0
                             : static_cast<double>(data.attributed) /
                                   static_cast<double>(data.samples));
  const double total = static_cast<double>(std::max<std::uint64_t>(
      data.samples, 1));
  constexpr std::size_t kTopFunctions = 20;
  Json functions = Json::array();
  for (std::size_t i = 0;
       i < std::min(kTopFunctions, data.functions.size()); ++i) {
    const ProfileFunction& fn = data.functions[i];
    Json entry = Json::object();
    entry["name"] = Json(fn.name);
    entry["self"] = Json(fn.self);
    entry["total"] = Json(fn.total);
    entry["self_share"] = Json(static_cast<double>(fn.self) / total);
    entry["total_share"] = Json(static_cast<double>(fn.total) / total);
    functions.push_back(std::move(entry));
  }
  profile["functions"] = std::move(functions);
  Json spans = Json::array();
  for (const ProfileSpan& span : data.spans) {
    Json entry = Json::object();
    entry["path"] = Json(span.path.empty() ? "(no span)" : span.path);
    entry["samples"] = Json(span.samples);
    entry["share"] = Json(static_cast<double>(span.samples) / total);
    spans.push_back(std::move(entry));
  }
  profile["spans"] = std::move(spans);
  return profile;
}

void Profiler::reset() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (ThreadState* s : reg.threads) {
    std::lock_guard drain_lock(s->drain_mutex);
    s->tail.store(s->head.load(std::memory_order_acquire),
                  std::memory_order_release);
    s->dropped.store(0, std::memory_order_relaxed);
  }
  std::lock_guard agg_lock(reg.agg_mutex);
  reg.agg.clear();
  reg.retired_dropped = 0;
}

void Profiler::force_timer_error_for_test(int err) {
  stop();
  std::lock_guard control(g_control_mutex);
  g_forced_errno.store(err, std::memory_order_relaxed);
  g_errno.store(0, std::memory_order_relaxed);
  g_state.store(0, std::memory_order_release);  // re-probe on next start
}

void Profiler::set_ring_capacity_for_test(std::size_t samples) {
  g_ring_capacity.store(samples != 0 ? samples : kDefaultRingCapacity,
                        std::memory_order_relaxed);
}

}  // namespace phonolid::obs
