// In-process sampling CPU profiler with span attribution.
//
// The span/energy/hw-counter stack only sees code that was explicitly
// instrumented; this layer finds the hot loops nobody wrapped in a
// PHONOLID_SPAN.  Each profiled thread owns a POSIX per-thread CPU-time
// timer (timer_create on the thread's CLOCK_THREAD_CPUTIME_ID, SIGPROF via
// SIGEV_THREAD_ID), so a thread is sampled in proportion to the CPU it
// actually burns — idle threads cost nothing and emit nothing.  The SIGPROF
// handler is strictly async-signal-safe: it walks the frame-pointer chain
// of the interrupted context (bounded by the thread's stack extent, read
// once at registration), copies the calling thread's open span-name stack
// (maintained as an array of string-literal pointers with an atomic depth,
// never the std::string path in obs/trace.cpp), and appends one fixed-size
// record to a bounded lock-free per-thread ring.  When the ring is full the
// sample is counted in `dropped` and discarded — like the flight recorder,
// a profile that silently lost data is worse than no profile.
//
// Nothing allocates, locks, or symbolizes in signal context.  Rings drain
// into a central aggregation map at span boundaries (when at least half
// full) and at snapshot time; symbolization (obs/symbolize.h) happens only
// when a report, folded-stack export, or `phonolid flame` asks for names.
//
// Every sample carries the innermost open span path, so statistical
// self-time composes with the span tree: the report's "profile" section has
// both a top-functions table and per-span sample shares that line up with
// the "spans" section and the §11 energy apportionment.
//
// Environment:  PHONOLID_PROFILE=off|cpu  (default off)
//               PHONOLID_PROFILE_HZ=<n>   (per-thread CPU rate, default 99)
//               PHONOLID_PROFILE_OUT=<p>  (folded stacks written at exit)
//
// Degradation mirrors obs/perf.cpp: a failed timer_create / sigaction
// probe (ENOSYS, seccomp, unsupported architecture) leaves the profiler
// unavailable — spans and reports keep working, and the report says
// `profile.available: false` with the errno and reason.  Never an error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"

namespace phonolid::obs {

/// Default sampling rate.  99 Hz (prime-ish, off the 100 Hz tick) is the
/// classic choice: cheap enough to stay under 1% overhead, dense enough
/// that a quick-scale run collects thousands of samples.
inline constexpr int kDefaultProfileHz = 99;

/// One aggregated call stack: `count` samples observed this exact stack
/// under this span path.  `frames` is root-first (outermost caller at
/// index 0, sampled leaf last), matching the folded-stack convention.
struct ProfileStack {
  std::string span_path;            // "" when sampled outside any span
  std::vector<std::string> frames;  // symbolized, root-first
  std::uint64_t count = 0;
};

/// Per-function rollup: `self` counts samples charged to this function,
/// `total` counts samples with this function anywhere on the stack (each
/// stack counted once, recursion deduplicated).  Self time is charged to
/// the innermost *symbolized* frame: when the sampled leaf is an
/// unsymbolizable system-library internal (a stripped libc/libm ifunc
/// variant shows up as "libm.so.6+0x..."), the sample's self time rolls
/// up to its nearest named caller — the pprof/gprof convention.  The raw
/// placeholder frames are preserved in ProfileStack for flamegraphs.
struct ProfileFunction {
  std::string name;
  std::uint64_t self = 0;
  std::uint64_t total = 0;
};

/// Per-span rollup over the innermost open span path of each sample.
struct ProfileSpan {
  std::string path;
  std::uint64_t samples = 0;
};

/// A drained, symbolized view of everything sampled so far.
struct ProfileData {
  bool available = false;
  int error = 0;         // errno of the failed probe (0 when available)
  int hz = 0;            // configured per-thread sampling rate
  std::uint64_t samples = 0;  // retained samples (== sum of stack counts)
  std::uint64_t dropped = 0;  // samples lost to full rings
  std::uint64_t total_frames = 0;
  std::uint64_t symbolized_frames = 0;
  std::uint64_t attributed = 0;  // samples charged to a symbolized function
  std::vector<ProfileStack> stacks;        // sorted by count desc
  std::vector<ProfileFunction> functions;  // sorted by self desc
  std::vector<ProfileSpan> spans;          // sorted by samples desc
};

class Profiler {
 public:
  /// Honor PHONOLID_PROFILE / PHONOLID_PROFILE_HZ: starts sampling when
  /// PHONOLID_PROFILE=cpu.  Idempotent; called by every entry point via
  /// obs::enable_recorder_from_env().
  static void init_from_env();

  /// Start sampling at `hz` (0 = PHONOLID_PROFILE_HZ or the default).
  /// Probes timer/signal availability on first use; arms a timer on every
  /// registered live thread and on threads registered later.  Returns
  /// false — with the reason in unavailable_errno() — when the platform
  /// cannot sample; the process is unaffected either way.
  static bool start(int hz = 0);

  /// Disarm every timer.  Retained samples survive for snapshot()/export.
  static void stop() noexcept;

  [[nodiscard]] static bool enabled() noexcept;
  /// True when the probe succeeded (timers + SIGPROF delivery work).
  [[nodiscard]] static bool available() noexcept;
  /// errno of the failed probe (0 when available or never probed).
  [[nodiscard]] static int unavailable_errno() noexcept;
  [[nodiscard]] static int rate_hz() noexcept;

  /// Register the calling thread for sampling (allocates its ring and arms
  /// its timer when the profiler is running).  Cheap when already
  /// registered or disabled; called by thread-pool workers at startup and
  /// by every Span via the hooks below.
  static void register_thread() noexcept;

  // Called by obs::Span (trace.cpp) on every span enter/exit: maintains
  // the async-signal-safe span-name stack the handler tags samples with,
  // and opportunistically drains this thread's ring when it is at least
  // half full.  A couple of relaxed atomic ops when idle.
  static void on_span_enter(const char* name) noexcept;
  static void on_span_exit() noexcept;

  /// Drain every thread's ring and return the aggregated, symbolized view.
  /// Safe to call while sampling continues (each ring yields a consistent
  /// prefix).  Symbolization cost is paid here, once per unique pc.
  [[nodiscard]] static ProfileData snapshot();

  /// The "profile" report section: availability + totals + top-N function
  /// and per-span tables (see DESIGN.md §12 for the field reference).
  [[nodiscard]] static Json profile_json();

  /// Drop every retained sample and drop counter (tests).  Keeps timers
  /// armed when running.
  static void reset();

  /// Test hook: force every timer_create to fail with `err` (0 restores
  /// normal probing).  Disarms live timers and re-probes on next start, so
  /// the ENOSYS/EPERM degradation path is testable anywhere.
  static void force_timer_error_for_test(int err);

  /// Test hook: ring capacity (in samples) for rings created after this
  /// call; 0 restores the default.  Lets wraparound/drop tests run in
  /// milliseconds.
  static void set_ring_capacity_for_test(std::size_t samples);
};

}  // namespace phonolid::obs
