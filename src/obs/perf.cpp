#include "obs/perf.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace phonolid::obs {

namespace {

constexpr std::size_t kNumEvents = 6;

// Shared process-level state.  `g_state`: 0 = unprobed, 1 = available,
// 2 = unavailable.  Reads on the span hot path are one relaxed load.
std::atomic<int> g_state{0};
std::atomic<int> g_errno{0};
std::atomic<int> g_forced_errno{0};
std::mutex g_mutex;  // guards probing + the process fd table

#if defined(__linux__)

constexpr std::uint64_t kEventConfigs[kNumEvents] = {
    PERF_COUNT_HW_CPU_CYCLES,          PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES,    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_INSTRUCTIONS, PERF_COUNT_HW_BRANCH_MISSES};

int g_process_fds[kNumEvents] = {-1, -1, -1, -1, -1, -1};

int perf_open(std::uint64_t config, int group_fd, bool inherit) noexcept {
  if (const int forced = g_forced_errno.load(std::memory_order_relaxed);
      forced != 0) {
    errno = forced;
    return -1;
  }
  perf_event_attr attr{};
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // group leader starts the group
  attr.exclude_kernel = 1;                 // allowed at perf_event_paranoid=2
  attr.exclude_hv = 1;
  attr.inherit = inherit ? 1 : 0;
  // Group reads return every member in one syscall; inherit counters cannot
  // be grouped (kernel restriction), so the process-wide set reads each fd
  // individually.  Both carry enabled/running times for multiplex scaling.
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  if (!inherit) attr.read_format |= PERF_FORMAT_GROUP;
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          group_fd, /*flags=*/0UL);
  return static_cast<int>(fd);
}

/// Scale a raw count by time_enabled/time_running (PMU multiplexing).
std::uint64_t scaled(std::uint64_t raw, std::uint64_t enabled,
                     std::uint64_t running) noexcept {
  if (running == 0 || running >= enabled) return raw;
  return static_cast<std::uint64_t>(
      static_cast<double>(raw) *
      (static_cast<double>(enabled) / static_cast<double>(running)));
}

/// Per-thread lazily-opened counter group.  The leader fd owns the group;
/// one read() returns all six members plus enabled/running times.
struct ThreadGroup {
  int leader = -1;
  bool tried = false;

  bool open() noexcept {
    tried = true;
    int fds[kNumEvents];
    for (std::size_t i = 0; i < kNumEvents; ++i) fds[i] = -1;
    for (std::size_t i = 0; i < kNumEvents; ++i) {
      fds[i] = perf_open(kEventConfigs[i], i == 0 ? -1 : fds[0],
                         /*inherit=*/false);
      if (fds[i] < 0) {
        for (std::size_t j = 0; j < i; ++j) close(fds[j]);
        return false;
      }
    }
    // Members are closed with the leader: the kernel removes them from the
    // group only on close, so keep the leader and close nothing else —
    // but we must retain the fds to close at thread exit.  Store them all.
    leader = fds[0];
    for (std::size_t i = 1; i < kNumEvents; ++i) members[i - 1] = fds[i];
    ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    return true;
  }

  bool read_group(HwCounters& out) noexcept {
    if (leader < 0) {
      if (tried) return false;
      if (!open()) return false;
    }
    // PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING layout.
    struct {
      std::uint64_t nr;
      std::uint64_t time_enabled;
      std::uint64_t time_running;
      std::uint64_t values[kNumEvents];
    } data{};
    const ssize_t n = ::read(leader, &data, sizeof(data));
    if (n < static_cast<ssize_t>(sizeof(std::uint64_t) * 3) ||
        data.nr != kNumEvents) {
      return false;
    }
    std::uint64_t v[kNumEvents];
    for (std::size_t i = 0; i < kNumEvents; ++i) {
      v[i] = scaled(data.values[i], data.time_enabled, data.time_running);
    }
    out.cycles = v[0];
    out.instructions = v[1];
    out.llc_references = v[2];
    out.llc_misses = v[3];
    out.branches = v[4];
    out.branch_misses = v[5];
    return true;
  }

  void close_all() noexcept {
    for (std::size_t i = 0; i < kNumEvents - 1; ++i) {
      if (members[i] >= 0) close(members[i]);
      members[i] = -1;
    }
    if (leader >= 0) close(leader);
    leader = -1;
    tried = false;
  }

  ~ThreadGroup() { close_all(); }

  int members[kNumEvents - 1] = {-1, -1, -1, -1, -1};
};

ThreadGroup& thread_group() {
  thread_local ThreadGroup g;
  return g;
}

void close_process_fds() noexcept {
  for (int& fd : g_process_fds) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
}

/// Probe + open the process-wide inherit counters.  Caller holds g_mutex.
bool probe_locked() noexcept {
  close_process_fds();
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    g_process_fds[i] = perf_open(kEventConfigs[i], -1, /*inherit=*/true);
    if (g_process_fds[i] < 0) {
      g_errno.store(errno, std::memory_order_relaxed);
      close_process_fds();
      return false;
    }
    ioctl(g_process_fds[i], PERF_EVENT_IOC_RESET, 0);
    ioctl(g_process_fds[i], PERF_EVENT_IOC_ENABLE, 0);
  }
  g_errno.store(0, std::memory_order_relaxed);
  return true;
}

#endif  // __linux__

bool env_disabled() noexcept {
  const char* v = std::getenv("PHONOLID_PERF");
  return v != nullptr && std::strcmp(v, "off") == 0;
}

void probe_once() {
  if (g_state.load(std::memory_order_acquire) != 0) return;
  std::lock_guard lock(g_mutex);
  if (g_state.load(std::memory_order_acquire) != 0) return;
#if defined(__linux__)
  if (env_disabled()) {
    g_errno.store(0, std::memory_order_relaxed);
    g_state.store(2, std::memory_order_release);
    return;
  }
  g_state.store(probe_locked() ? 1 : 2, std::memory_order_release);
#else
  g_errno.store(ENOSYS, std::memory_order_relaxed);
  g_state.store(2, std::memory_order_release);
#endif
}

}  // namespace

void Perf::init_from_env() { probe_once(); }

bool Perf::available() noexcept {
  probe_once();
  return g_state.load(std::memory_order_acquire) == 1;
}

int Perf::unavailable_errno() noexcept {
  probe_once();
  return g_errno.load(std::memory_order_relaxed);
}

bool Perf::read_thread(HwCounters& out) noexcept {
  if (!available()) return false;
#if defined(__linux__)
  return thread_group().read_group(out);
#else
  (void)out;
  return false;
#endif
}

bool Perf::read_process(HwCounters& out) noexcept {
  if (!available()) return false;
#if defined(__linux__)
  std::lock_guard lock(g_mutex);
  std::uint64_t v[kNumEvents] = {0};
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    if (g_process_fds[i] < 0) return false;
    // PERF_FORMAT_TOTAL_TIME_ENABLED | _RUNNING, no group.
    struct {
      std::uint64_t value;
      std::uint64_t time_enabled;
      std::uint64_t time_running;
    } data{};
    if (::read(g_process_fds[i], &data, sizeof(data)) !=
        static_cast<ssize_t>(sizeof(data))) {
      return false;
    }
    v[i] = scaled(data.value, data.time_enabled, data.time_running);
  }
  out.cycles = v[0];
  out.instructions = v[1];
  out.llc_references = v[2];
  out.llc_misses = v[3];
  out.branches = v[4];
  out.branch_misses = v[5];
  return true;
#else
  (void)out;
  return false;
#endif
}

Json Perf::hw_json() {
  probe_once();
  Json hw = Json::object();
  HwCounters totals;
  const bool ok = read_process(totals);
  hw["available"] = Json(ok);
  hw["source"] = Json(ok ? "perf" : "none");
  if (!ok) {
    const int err = unavailable_errno();
    hw["unavailable_errno"] = Json(err);
    hw["unavailable_reason"] = Json(err != 0 ? std::strerror(err) : "disabled");
    return hw;
  }
  hw["cycles"] = Json(totals.cycles);
  hw["instructions"] = Json(totals.instructions);
  hw["ipc"] = Json(totals.cycles == 0
                       ? 0.0
                       : static_cast<double>(totals.instructions) /
                             static_cast<double>(totals.cycles));
  hw["llc_references"] = Json(totals.llc_references);
  hw["llc_misses"] = Json(totals.llc_misses);
  hw["llc_miss_rate"] = Json(totals.llc_references == 0
                                 ? 0.0
                                 : static_cast<double>(totals.llc_misses) /
                                       static_cast<double>(totals.llc_references));
  hw["branches"] = Json(totals.branches);
  hw["branch_misses"] = Json(totals.branch_misses);
  hw["branch_miss_rate"] =
      Json(totals.branches == 0
               ? 0.0
               : static_cast<double>(totals.branch_misses) /
                     static_cast<double>(totals.branches));
  return hw;
}

void Perf::force_open_error_for_test(int err) {
  std::lock_guard lock(g_mutex);
  g_forced_errno.store(err, std::memory_order_relaxed);
#if defined(__linux__)
  close_process_fds();
  thread_group().close_all();
#endif
  g_errno.store(0, std::memory_order_relaxed);
  g_state.store(0, std::memory_order_release);  // re-probe on next use
}

}  // namespace phonolid::obs
