#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace phonolid::obs {

namespace {

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_newline_indent(std::ostream& out, int indent, int depth) {
  if (indent <= 0) return;
  out << '\n';
  for (int i = 0; i < indent * depth; ++i) out << ' ';
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode the code point as UTF-8 (reports only emit \u00xx, but
          // accept the full BMP; surrogate pairs are out of scope).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    if (token.find_first_of(".eE") == std::string::npos) {
      std::int64_t i = 0;
      const auto [p, ec] =
          std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc() && p == token.data() + token.size()) return Json(i);
    }
    try {
      std::size_t used = 0;
      const double d = std::stod(token, &used);
      if (used != token.size()) fail("bad number");
      return Json(d);
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json& Json::operator[](const std::string& key) {
  Object& obj = as_object();
  for (auto& [k, v] : obj) {
    if (k == key) return v;
  }
  obj.emplace_back(key, Json());
  return obj.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::dump_impl(std::ostream& out, int indent, int depth) const {
  if (is_null()) {
    out << "null";
  } else if (is_bool()) {
    out << (as_bool() ? "true" : "false");
  } else if (is_int()) {
    out << as_int();
  } else if (is_double()) {
    const double d = std::get<double>(v_);
    if (!std::isfinite(d)) {
      out << "null";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out << buf;
    }
  } else if (is_string()) {
    write_escaped(out, as_string());
  } else if (is_array()) {
    const Array& arr = as_array();
    if (arr.empty()) {
      out << "[]";
      return;
    }
    out << '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) out << ',';
      write_newline_indent(out, indent, depth + 1);
      arr[i].dump_impl(out, indent, depth + 1);
    }
    write_newline_indent(out, indent, depth);
    out << ']';
  } else {
    const Object& obj = as_object();
    if (obj.empty()) {
      out << "{}";
      return;
    }
    out << '{';
    for (std::size_t i = 0; i < obj.size(); ++i) {
      if (i > 0) out << ',';
      write_newline_indent(out, indent, depth + 1);
      write_escaped(out, obj[i].first);
      out << (indent > 0 ? ": " : ":");
      obj[i].second.dump_impl(out, indent, depth + 1);
    }
    write_newline_indent(out, indent, depth);
    out << '}';
  }
}

void Json::dump(std::ostream& out, int indent) const {
  dump_impl(out, indent, 0);
}

std::string Json::dump_string(int indent) const {
  std::ostringstream out;
  dump(out, indent);
  return out.str();
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace phonolid::obs
