// Lazy program-counter symbolization for the sampling profiler.
//
// The profiler's signal handler records raw return addresses; nothing is
// resolved until a report or folded-stack export asks for names.  Lookup
// goes through three tiers:
//
//   1. the containing module's own ELF symbol table (.symtab, falling back
//      to .dynsym), parsed once per module from the file named by
//      dl_iterate_phdr.  This resolves *local* symbols — anonymous-namespace
//      helpers, file-static functions — that dladdr cannot see, which is
//      what gets the symbolized-frame share above 95% on a statically
//      linked binary;
//   2. dladdr(), for modules whose file cannot be read (the vDSO, ASAN
//      shims);
//   3. a "module+0x<offset>" placeholder, so a frame is never silently
//      dropped.
//
// C++ names are demangled with abi::__cxa_demangle.  All lookups are cached
// by exact pc, so symbolizing a drained profile touches each unique address
// once.  This layer is NOT async-signal-safe and must only run at flush
// time, never from the sampling handler.
#pragma once

#include <cstdint>
#include <string>

namespace phonolid::obs {

/// One resolved program counter.
struct Symbol {
  std::string name;    // demangled symbol, or "module+0x<off>" placeholder
  std::string module;  // basename of the containing object ("" if unknown)
  std::uint64_t offset = 0;  // pc - symbol start (or pc - module base)
  bool symbolized = false;   // true when a real symbol name was found
};

class Symbolizer {
 public:
  /// Snapshots the loaded-module list (dl_iterate_phdr) at construction.
  Symbolizer();
  ~Symbolizer();
  Symbolizer(const Symbolizer&) = delete;
  Symbolizer& operator=(const Symbolizer&) = delete;

  /// Resolve one pc; cached, so repeated addresses are a hash lookup.
  /// The reference stays valid for the Symbolizer's lifetime.
  const Symbol& lookup(std::uintptr_t pc);

  /// Demangle a mangled C++ name; returns the input unchanged when it is
  /// not a mangled name (or no demangler is available).
  [[nodiscard]] static std::string demangle(const char* mangled);

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace phonolid::obs
