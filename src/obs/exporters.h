// Exporters over the observability registries:
//
//   - Chrome trace-event JSON (chrome_trace_json / write_chrome_trace):
//     renders the flight recorder's event rings as a {"traceEvents": [...]}
//     document loadable in Perfetto (https://ui.perfetto.dev) and
//     chrome://tracing.  Spans become matched "B"/"E" pairs per thread,
//     PHONOLID_EVENT instants become "i" events, PHONOLID_COUNTER_SAMPLE
//     becomes "C" counter tracks, and thread names are attached via "M"
//     metadata events.  End events whose begin was lost to ring wraparound
//     are dropped, and spans still open at export time are closed with a
//     synthetic end at the thread's last timestamp, so the output always
//     contains matched pairs with per-thread non-decreasing timestamps.
//
//   - Prometheus text format (prometheus_text / write_prometheus):
//     serializes the obs::Metrics registry.  Names are prefixed with
//     "phonolid_" and sanitized ('.' -> '_'); counters gain the
//     conventional "_total" suffix, gauges additionally export their
//     high-watermark as "<name>_max", histograms emit cumulative
//     "_bucket{le=...}" series plus "_sum"/"_count".
//
// Both are reachable from the CLI (`phonolid export --trace T --prom P`)
// and, for every entry point that calls the env helpers below, via
//   PHONOLID_TRACE=out.trace.json   (also enables the flight recorder)
//   PHONOLID_PROM=out.prom
//   PHONOLID_TRACE_CAPACITY=N       (per-thread ring capacity, events)
//   PHONOLID_PROFILE_OUT=out.folded (folded stacks from the CPU profiler;
//                                    see obs/profiler.h for PHONOLID_PROFILE)
//
// At-exit semantics: the env-var exports are written by export_from_env(),
// which entry points call once on their way out — NOT continuously.  A
// process killed before reaching it (SIGKILL, crash) leaves no artifacts,
// and a long-lived process shows nothing until it exits.  Long-running
// entry points should therefore (a) call export_from_env() on their
// graceful-shutdown path as soon as draining finishes — `phonolid serve`
// does after a SIGTERM drain — and (b) expose live pull-based telemetry
// instead of relying on the files: the serve admin endpoint
// (serve/admin_http.h) serves prometheus_text() and folded_stacks_text()
// per-request via GET /metrics and /flamez.  export_from_env() is
// idempotent; calling it on the drain path and again at main() exit just
// rewrites the files with a fresher snapshot.
#pragma once

#include <string>

#include "obs/json.h"

namespace phonolid::obs {

/// The flight recorder's current snapshot as a Chrome trace-event document.
[[nodiscard]] Json chrome_trace_json();

/// Serialize chrome_trace_json() to `path` (throws std::runtime_error on
/// I/O failure).
void write_chrome_trace(const std::string& path);

/// The metrics registry in Prometheus text exposition format.
[[nodiscard]] std::string prometheus_text();

/// Serialize prometheus_text() to `path` (throws std::runtime_error on
/// I/O failure).
void write_prometheus(const std::string& path);

/// The sampling profiler's aggregated stacks in folded format — one
/// "frameA;frameB;leaf <count>" line per unique stack, root first, span
/// path components prefixed as "span:<name>" frames.  Loadable by
/// flamegraph.pl and speedscope.  Empty when nothing was sampled.
[[nodiscard]] std::string folded_stacks_text();

/// Serialize folded_stacks_text() to `path` (throws std::runtime_error on
/// I/O failure).
void write_folded_stacks(const std::string& path);

/// When PHONOLID_TRACE is set, enables the flight recorder (honoring
/// PHONOLID_TRACE_CAPACITY) and names the calling thread "main".  Call
/// once at entry-point startup, before any instrumented work runs.
void enable_recorder_from_env();

/// Writes PHONOLID_TRACE / PHONOLID_PROM output files when the respective
/// env var is set.  Call at entry-point exit; logs the paths written to
/// stderr.  I/O failures are reported to stderr, not thrown (a broken
/// export must not fail the run it observed).
void export_from_env() noexcept;

}  // namespace phonolid::obs
