#include "obs/energy.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace phonolid::obs {

const char* to_string(EnergySource source) noexcept {
  switch (source) {
    case EnergySource::kOff:
      return "off";
    case EnergySource::kSoftware:
      return "software";
    case EnergySource::kRapl:
      return "rapl";
  }
  return "off";
}

namespace {

constexpr const char* kUnattributed = "(unattributed)";

/// Lock-free add for the GFLOP accumulator (std::atomic<double>::fetch_add
/// is C++20 for floating point but not universally lowered; CAS is portable).
void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

/// Per-thread software-model charge table, registered/merged/retired with
/// the same pattern as the trace layer's span tables.
struct EnergyTable {
  std::mutex mutex;
  std::unordered_map<std::string, double> joules;

  ~EnergyTable();
};

/// One RAPL package domain (/sys/class/powercap/intel-rapl:<n>).
struct RaplPackage {
  std::string energy_path;
  double max_range_j = 0.0;
  double last_j = 0.0;
};

struct EnergyState {
  std::mutex mutex;
  std::atomic<int> source{static_cast<int>(EnergySource::kOff)};
  std::atomic<bool> initialized{false};
  std::atomic<double> gflops{0.0};
  double joules_per_gflop = kDefaultJoulesPerGflop;

  // Software model: live per-thread tables + retired merge target.
  std::vector<EnergyTable*> live;
  std::map<std::string, double> retired;

  // RAPL sampler.
  std::vector<RaplPackage> packages;
  std::map<std::string, double> rapl_joules;
  std::map<std::uint32_t, double> last_cpu_s;  // per trace thread index
  std::uint64_t ticks = 0;
  std::thread sampler;
  std::condition_variable cv;
  bool stop_requested = false;
  int sample_period_ms = 50;
};

EnergyState& state() {
  // Leaked on purpose: worker threads flush their charge tables here when
  // they exit, which can happen during static destruction.
  static EnergyState* s = new EnergyState();
  return *s;
}

EnergyTable::~EnergyTable() {
  EnergyState& s = state();
  std::lock_guard state_lock(s.mutex);
  std::lock_guard lock(mutex);
  for (const auto& [path, j] : joules) s.retired[path] += j;
  std::erase(s.live, this);
}

EnergyTable& energy_table() {
  thread_local EnergyTable t;
  thread_local bool registered = [] {
    EnergyState& s = state();
    std::lock_guard lock(s.mutex);
    s.live.push_back(&t);
    return true;
  }();
  (void)registered;
  return t;
}

/// Read one whole-number value from a sysfs file; false on any failure.
bool read_sysfs_u64(const std::string& path, std::uint64_t& out) noexcept {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  unsigned long long v = 0;
  const bool ok = std::fscanf(f, "%llu", &v) == 1;
  std::fclose(f);
  out = v;
  return ok;
}

/// Discover readable RAPL package domains.  Caller holds s.mutex.
std::vector<RaplPackage> discover_rapl() {
  std::vector<RaplPackage> pkgs;
  for (int i = 0; i < 64; ++i) {
    const std::string base =
        "/sys/class/powercap/intel-rapl:" + std::to_string(i);
    std::uint64_t uj = 0;
    if (!read_sysfs_u64(base + "/energy_uj", uj)) break;
    RaplPackage p;
    p.energy_path = base + "/energy_uj";
    std::uint64_t range = 0;
    if (read_sysfs_u64(base + "/max_energy_range_uj", range)) {
      p.max_range_j = static_cast<double>(range) * 1e-6;
    }
    p.last_j = static_cast<double>(uj) * 1e-6;
    pkgs.push_back(std::move(p));
  }
  return pkgs;
}

/// Wrap-aware package energy delta since the previous read (joules).
/// Caller holds s.mutex.
double rapl_delta_locked(EnergyState& s) noexcept {
  double delta = 0.0;
  for (RaplPackage& p : s.packages) {
    std::uint64_t uj = 0;
    if (!read_sysfs_u64(p.energy_path, uj)) continue;
    const double now_j = static_cast<double>(uj) * 1e-6;
    double d = now_j - p.last_j;
    if (d < 0.0 && p.max_range_j > 0.0) d += p.max_range_j;  // wrapped
    if (d > 0.0) delta += d;
    p.last_j = now_j;
  }
  return delta;
}

/// One sampler tick: apportion the interval's package joules to the span
/// paths open on each live thread, by CPU-time weight.  Caller holds
/// s.mutex.
void rapl_tick_locked(EnergyState& s, double interval_s) {
  const double delta_j = rapl_delta_locked(s);
  ++s.ticks;
  if (delta_j <= 0.0) return;
  if (interval_s > 0.0) {
    PHONOLID_COUNTER_SAMPLE("energy.package_watts", delta_j / interval_s);
  }

  const std::vector<ActiveThread> threads = Trace::active_threads();
  double total_weight = 0.0;
  std::vector<std::pair<std::string, double>> weights;
  weights.reserve(threads.size());
  for (const ActiveThread& t : threads) {
    const auto it = s.last_cpu_s.find(t.index);
    const double last = it == s.last_cpu_s.end() ? t.cpu_s : it->second;
    const double w = t.cpu_s > last ? t.cpu_s - last : 0.0;
    s.last_cpu_s[t.index] = t.cpu_s;
    if (w > 0.0 && !t.path.empty()) {
      weights.emplace_back(t.path, w);
      total_weight += w;
    }
  }
  if (total_weight <= 0.0) {
    s.rapl_joules[kUnattributed] += delta_j;
    return;
  }
  for (const auto& [path, w] : weights) {
    s.rapl_joules[path] += delta_j * (w / total_weight);
  }
}

void sampler_main() {
  EnergyState& s = state();
  auto last = std::chrono::steady_clock::now();
  std::unique_lock lock(s.mutex);
  while (!s.stop_requested) {
    s.cv.wait_for(lock, std::chrono::milliseconds(s.sample_period_ms),
                  [&s] { return s.stop_requested; });
    if (s.stop_requested) break;
    const auto now = std::chrono::steady_clock::now();
    rapl_tick_locked(s, std::chrono::duration<double>(now - last).count());
    last = now;
  }
  // Final sample so shutdown never loses the tail of the run.
  const auto now = std::chrono::steady_clock::now();
  rapl_tick_locked(s, std::chrono::duration<double>(now - last).count());
}

/// Resolve the configured source and start/stop machinery accordingly.
/// Caller holds s.mutex.
void activate_locked(EnergyState& s, EnergySource want) {
  if (want == EnergySource::kRapl) {
    s.packages = discover_rapl();
    if (s.packages.empty()) want = EnergySource::kSoftware;  // degrade
  }
  s.source.store(static_cast<int>(want), std::memory_order_release);
  if (want == EnergySource::kRapl && !s.sampler.joinable()) {
    s.stop_requested = false;
    s.sampler = std::thread(sampler_main);
  }
}

void stop_sampler(EnergyState& s) noexcept {
  std::thread to_join;
  {
    std::lock_guard lock(s.mutex);
    if (!s.sampler.joinable()) return;
    s.stop_requested = true;
    to_join = std::move(s.sampler);
  }
  s.cv.notify_all();
  to_join.join();
}

/// Round to 1 µJ: keeps software-model reports byte-stable across thread
/// counts (accumulation-order FP noise is far below a microjoule).
double round_uj(double joules) noexcept {
  return std::round(joules * 1e6) / 1e6;
}

}  // namespace

void Energy::init_from_env() {
  EnergyState& s = state();
  if (s.initialized.load(std::memory_order_acquire)) return;
  std::lock_guard lock(s.mutex);
  if (s.initialized.load(std::memory_order_acquire)) return;
  if (const char* rate = std::getenv("PHONOLID_JOULES_PER_GFLOP")) {
    const double v = std::strtod(rate, nullptr);
    if (v > 0.0) s.joules_per_gflop = v;
  }
  if (const char* ms = std::getenv("PHONOLID_ENERGY_SAMPLE_MS")) {
    const long v = std::strtol(ms, nullptr, 10);
    if (v >= 1 && v <= 10000) s.sample_period_ms = static_cast<int>(v);
  }
  const char* mode = std::getenv("PHONOLID_ENERGY");
  EnergySource want = EnergySource::kRapl;  // auto: rapl, degrade to software
  if (mode != nullptr) {
    if (std::strcmp(mode, "off") == 0) want = EnergySource::kOff;
    else if (std::strcmp(mode, "software") == 0) want = EnergySource::kSoftware;
    else if (std::strcmp(mode, "rapl") == 0) want = EnergySource::kRapl;
  }
  activate_locked(s, want);
  s.initialized.store(true, std::memory_order_release);
}

EnergySource Energy::source() noexcept {
  return static_cast<EnergySource>(
      state().source.load(std::memory_order_acquire));
}

void Energy::charge_flops(double flops) noexcept {
  if (flops <= 0.0) return;
  EnergyState& s = state();
  const auto src = static_cast<EnergySource>(
      s.source.load(std::memory_order_relaxed));
  if (src == EnergySource::kOff) return;
  atomic_add(s.gflops, flops * 1e-9);
  if (src != EnergySource::kSoftware) return;
  const double joules = flops * 1e-9 * s.joules_per_gflop;
  const std::string& path = Trace::current_thread_path();
  EnergyTable& t = energy_table();
  std::lock_guard lock(t.mutex);
  t.joules[path.empty() ? kUnattributed : path] += joules;
}

double Energy::joules_per_gflop() noexcept { return state().joules_per_gflop; }

double Energy::total_gflops() noexcept {
  return state().gflops.load(std::memory_order_relaxed);
}

std::map<std::string, double> Energy::joules_by_span() {
  EnergyState& s = state();
  std::map<std::string, double> out;
  std::lock_guard lock(s.mutex);
  if (source() == EnergySource::kRapl) {
    out = s.rapl_joules;
    return out;
  }
  for (EnergyTable* t : s.live) {
    std::lock_guard table_lock(t->mutex);
    for (const auto& [path, j] : t->joules) out[path] += j;
  }
  for (const auto& [path, j] : s.retired) out[path] += j;
  return out;
}

double Energy::total_joules() {
  double total = 0.0;
  for (const auto& [path, j] : joules_by_span()) total += j;
  return total;
}

Json Energy::energy_json() {
  EnergyState& s = state();
  if (source() == EnergySource::kRapl) {
    // Pull the tail of the run into the books before reporting.
    std::lock_guard lock(s.mutex);
    rapl_tick_locked(s, 0.0);
  }
  const double total = total_joules();
  const double gflops = total_gflops();
  static obs::Counter& utterances = Metrics::counter("pipeline.utterances");

  Json energy = Json::object();
  energy["source"] = Json(to_string(source()));
  energy["total_joules"] = Json(round_uj(total));
  energy["total_gflops"] = Json(gflops);
  energy["gflops_per_watt"] = Json(total > 0.0 ? gflops / total : 0.0);
  const std::uint64_t utts = utterances.value();
  energy["joules_per_utterance"] =
      Json(utts > 0 ? round_uj(total / static_cast<double>(utts)) : 0.0);
  if (source() == EnergySource::kSoftware) {
    energy["joules_per_gflop"] = Json(s.joules_per_gflop);
  }
  if (source() == EnergySource::kRapl) {
    Json rapl = Json::object();
    std::lock_guard lock(s.mutex);
    rapl["packages"] = Json(s.packages.size());
    rapl["ticks"] = Json(s.ticks);
    rapl["sample_period_ms"] = Json(s.sample_period_ms);
    const auto it = s.rapl_joules.find(kUnattributed);
    rapl["unattributed_joules"] =
        Json(round_uj(it == s.rapl_joules.end() ? 0.0 : it->second));
    energy["rapl"] = std::move(rapl);
  }
  return energy;
}

void Energy::publish_gauges() {
  if (source() == EnergySource::kOff) return;
  const double total = round_uj(total_joules());
  Metrics::float_gauge("energy.total_joules").set(total);
  Metrics::float_gauge("energy.total_gflops").set(total_gflops());
  Metrics::float_gauge("energy.gflops_per_watt")
      .set(total > 0.0 ? total_gflops() / total : 0.0);
}

void Energy::reset() {
  EnergyState& s = state();
  std::lock_guard lock(s.mutex);
  for (EnergyTable* t : s.live) {
    std::lock_guard table_lock(t->mutex);
    t->joules.clear();
  }
  s.retired.clear();
  s.rapl_joules.clear();
  s.last_cpu_s.clear();
  s.ticks = 0;
  s.gflops.store(0.0, std::memory_order_relaxed);
}

void Energy::shutdown() noexcept { stop_sampler(state()); }

void Energy::force_source_for_test(EnergySource source) {
  EnergyState& s = state();
  stop_sampler(s);
  reset();
  std::lock_guard lock(s.mutex);
  activate_locked(s, source);
  s.initialized.store(true, std::memory_order_release);
}

}  // namespace phonolid::obs
