// Decision ledger: a per-utterance record of every DBA adoption decision.
//
// The span/counter layers answer "how long" and "how often"; the ledger
// answers *why*: for every pooled test utterance it keeps the baseline
// per-subsystem scores f_{qk}, and for every DBA round the per-subsystem
// vote bits and signed vote margins, the vote tally for the leading class,
// the adoption decision with hypothesised vs. true label, and label flips
// across rounds — plus the final fused/calibrated LLR vector.  Serialized
// as JSONL: one header line (ledger_version, class/subsystem counts,
// language names, scale, seed) followed by one compact JSON object per
// utterance in pooled-test order.  Everything recorded is a deterministic
// function of the experiment config, so the artifact is byte-identical
// across thread counts and repeated runs — `cmp` is a valid regression
// check (scripts/tier1.sh does exactly that).
//
// This layer is pure data + (de)serialization: it knows nothing about
// core::Experiment or eval metrics.  core fills it in; eval/diagnostics.h
// derives DET curves, confusion matrices, adoption precision/recall and
// Cllr from it; `phonolid explain` pretty-prints one entry.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.h"

namespace phonolid::obs {

inline constexpr int kLedgerVersion = 1;

/// One DBA round as seen by one utterance.  Vote bits/margins are for
/// `best_class` (the class with the most votes this round); an utterance
/// with no votes at all has best_class = -1 and empty vote vectors.
struct LedgerRound {
  std::uint32_t round = 0;  // 1-based, matches DbaRoundStats::round
  std::string mode;         // "DBA-M1" / "DBA-M2"
  std::uint32_t min_votes = 0;
  std::int32_t best_class = -1;  // leading class by vote count; -1 = no votes
  std::uint32_t vote_count = 0;  // c_{j,best}
  bool tie = false;              // leading count shared by >= 2 classes
  /// Per subsystem: did q vote for best_class (Eq. 13)?
  std::vector<std::uint8_t> votes;
  /// Per subsystem: signed vote margin for best_class (> 0 iff votes[q]).
  std::vector<double> margins;
  bool adopted = false;
  std::int32_t hyp_label = -1;  // adopted label; -1 when not adopted
  bool correct = false;         // hyp_label == true label (adopted only)
  bool flip = false;  // hyp label differs from a previous round's adoption
};

/// Everything the ledger knows about one pooled test utterance.
struct LedgerEntry {
  std::uint64_t utt = 0;        // index into the pooled test set
  std::uint64_t corpus_id = 0;  // corpus::Utterance::id
  std::int32_t true_label = -1;
  std::string tier;  // "30s" / "10s" / "3s"
  /// Baseline per-subsystem score vectors f_q (each num_classes wide).
  std::vector<std::vector<double>> scores;
  std::vector<LedgerRound> rounds;
  /// Final fused + calibrated per-class LLR (last evaluation pass; empty if
  /// the run never evaluated a fusion).
  std::vector<double> fused_llr;
};

class DecisionLedger {
 public:
  // Header metadata (the JSONL first line).
  std::uint32_t num_classes = 0;
  std::uint32_t num_subsystems = 0;
  std::vector<std::string> languages;  // class index -> display name
  std::string scale;
  std::uint64_t seed = 0;

  /// One entry per pooled test utterance, indexed by utt.
  std::vector<LedgerEntry> entries;

  [[nodiscard]] bool empty() const noexcept { return entries.empty(); }

  /// Resolve an id the way `phonolid explain` does: first as a pooled test
  /// index, then as a corpus utterance id.  nullptr when unknown.
  [[nodiscard]] const LedgerEntry* find(std::uint64_t id) const noexcept;

  /// Class index -> name ("lang<k>" fallback when names are absent).
  [[nodiscard]] std::string language_name(std::int32_t k) const;

  // --- JSONL (de)serialization -------------------------------------------
  void write_jsonl(std::ostream& out) const;
  /// Throws std::runtime_error when the file cannot be written.
  void write_jsonl_file(const std::string& path) const;
  /// Parses a header + entry lines; throws std::runtime_error on malformed
  /// input or a ledger_version mismatch.
  static DecisionLedger read_jsonl(std::istream& in);
  static DecisionLedger read_jsonl_file(const std::string& path);

  static Json entry_to_json(const LedgerEntry& entry);
  static LedgerEntry entry_from_json(const Json& doc);
};

/// Multi-line human rendering of one entry (the `phonolid explain` body):
/// baseline scores with true/argmax markers, per-round votes with margins,
/// adoption + flip flags, fused LLRs.  Deterministic (fixed precision).
[[nodiscard]] std::string format_explain(const DecisionLedger& ledger,
                                         const LedgerEntry& entry);

}  // namespace phonolid::obs
